package cells

import (
	"context"
	"testing"

	"ageguard/internal/device"
	"ageguard/internal/spice"
	"ageguard/internal/units"
)

// Bisect the DFF setup time: latest D arrival before the clock edge that
// still captures correctly.
func TestMeasureDFFSetup(t *testing.T) {
	tech := device.Default45()
	vdd := tech.Vdd
	c := MustByName("DFF_X1")
	captures := func(tSetup float64) bool {
		ckt := spice.New(vdd)
		nodes := map[string]spice.NodeID{NodeGND: ckt.Gnd(), NodeVDD: ckt.Vdd()}
		get := func(name string) spice.NodeID {
			if id, ok := nodes[name]; ok {
				return id
			}
			id := ckt.Node(name)
			nodes[name] = id
			return id
		}
		for _, spec := range c.Topo.Devices {
			ckt.MOS(c.DeviceParams(tech, spec), get(spec.D), get(spec.G), get(spec.S))
		}
		edge := 2 * units.Ns
		ckt.Drive(get("D"), spice.Ramp{T0: edge - tSetup - 20*units.Ps, Slew: 20 * units.Ps, V0: 0, V1: vdd})
		ckt.Drive(get("CK"), spice.Ramp{T0: edge, Slew: 20 * units.Ps, V0: 0, V1: vdd})
		out := get("Q")
		ckt.C(out, ckt.Gnd(), 2*units.FF)
		res, err := ckt.Run(context.Background(), edge+1.5*units.Ns, spice.Options{})
		if err != nil {
			return false
		}
		return res.Final(out) > 0.9*vdd
	}
	lo, hi := 0.0, 60*units.Ps
	if !captures(hi) {
		t.Fatal("DFF cannot capture even with 60ps setup")
	}
	for i := 0; i < 10; i++ {
		mid := (lo + hi) / 2
		if captures(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	t.Logf("measured DFF_X1 setup ~ %s (D stable before CK 50%%)", units.PsString(hi))
}
