package cells

import (
	"context"
	"testing"

	"ageguard/internal/device"
	"ageguard/internal/spice"
	"ageguard/internal/units"
)

// TestTopologyImplementsFunction validates every combinational cell's
// transistor netlist against its declared Boolean function by DC-settling
// the circuit for every input combination and checking the output rail.
// This is the ground truth linking the SPICE level to the logic level.
func TestTopologyImplementsFunction(t *testing.T) {
	tech := device.Default45()
	vdd := tech.Vdd
	for _, c := range All() {
		if c.Seq || c.Drive != 1 {
			continue // one drive per base suffices: same topology scaled
		}
		n := c.NumInputs()
		for bits := uint(0); bits < 1<<n; bits++ {
			ckt := spice.New(vdd)
			nodes := map[string]spice.NodeID{
				NodeGND: ckt.Gnd(),
				NodeVDD: ckt.Vdd(),
			}
			get := func(name string) spice.NodeID {
				if id, ok := nodes[name]; ok {
					return id
				}
				id := ckt.Node(name)
				nodes[name] = id
				return id
			}
			for _, spec := range c.Topo.Devices {
				p := c.DeviceParams(tech, spec)
				ckt.MOS(p, get(spec.D), get(spec.G), get(spec.S))
			}
			for i, pin := range c.Inputs {
				v := 0.0
				if bits>>i&1 == 1 {
					v = vdd
				}
				ckt.Drive(get(pin), spice.DC(v))
			}
			out := get(c.Output)
			ckt.C(out, ckt.Gnd(), 1*units.FF)
			res, err := ckt.Run(context.Background(), 2*units.Ns, spice.Options{})
			if err != nil {
				t.Fatalf("%s bits=%b: %v", c.Name, bits, err)
			}
			got := res.Final(out) > vdd/2
			if want := c.Eval(bits); got != want {
				t.Errorf("%s(%0*b) = %v (%.3fV), want %v",
					c.Name, n, bits, got, res.Final(out), want)
			}
		}
	}
}

// TestDFFCapturesOnRisingEdge clocks the flip-flop topology through a
// full transient sequence and checks edge-triggered capture behaviour.
func TestDFFCapturesOnRisingEdge(t *testing.T) {
	tech := device.Default45()
	vdd := tech.Vdd
	c := MustByName("DFF_X1")
	ckt := spice.New(vdd)
	nodes := map[string]spice.NodeID{NodeGND: ckt.Gnd(), NodeVDD: ckt.Vdd()}
	get := func(name string) spice.NodeID {
		if id, ok := nodes[name]; ok {
			return id
		}
		id := ckt.Node(name)
		nodes[name] = id
		return id
	}
	for _, spec := range c.Topo.Devices {
		ckt.MOS(c.DeviceParams(tech, spec), get(spec.D), get(spec.G), get(spec.S))
	}
	// D rises well before the second clock edge and falls before the third.
	period := 2 * units.Ns
	ckt.Drive(get("D"), spice.PWL{
		T: []float64{0, 0.5 * period, 0.5*period + 50*units.Ps, 2.4 * period, 2.4*period + 50*units.Ps},
		V: []float64{0, 0, vdd, vdd, 0},
	})
	ckt.Drive(get("CK"), spice.Pulse{
		V0: 0, V1: vdd, Delay: period, Width: period / 2, Period: period, Slew: 30 * units.Ps,
	})
	out := get("Q")
	ckt.C(out, ckt.Gnd(), 2*units.FF)
	res, err := ckt.Run(context.Background(), 4*period, spice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// After edge 1 (t=period): D=1 captured -> Q=1.
	if v := res.At(out, 1.4*period); v < 0.9*vdd {
		t.Errorf("Q after first edge = %.3fV, want high", v)
	}
	// Between edges, D falls at 2.4*period; Q must hold until edge at 3*period.
	if v := res.At(out, 2.9*period); v < 0.9*vdd {
		t.Errorf("Q should hold high before next edge, got %.3fV", v)
	}
	// After edge at t=3*period with D=0: Q -> 0.
	if v := res.At(out, 3.5*period); v > 0.1*vdd {
		t.Errorf("Q after capture of 0 = %.3fV, want low", v)
	}
}
