package cells

import (
	"fmt"
	"sort"
	"sync"
)

// drives lists the drive strengths present for every base; INV and BUF
// additionally exist at X8, bringing the set to exactly 68 cells.
var drives = []int{1, 2, 4}

// All returns the complete cell set (68 cells), sorted by name.
// The returned cells are shared singletons; do not mutate them.
func All() []*Cell {
	catalogOnce.Do(buildCatalog)
	out := make([]*Cell, len(catalog))
	copy(out, catalog)
	return out
}

// ByName looks a cell up by its full name (e.g. "NAND2_X2").
func ByName(name string) (*Cell, bool) {
	catalogOnce.Do(buildCatalog)
	c, ok := catalogByName[name]
	return c, ok
}

// MustByName is ByName that panics on unknown names; for internal tables.
func MustByName(name string) *Cell {
	c, ok := ByName(name)
	if !ok {
		panic("cells: unknown cell " + name)
	}
	return c
}

// Bases returns the distinct base names in the catalog, sorted.
func Bases() []string {
	catalogOnce.Do(buildCatalog)
	set := map[string]bool{}
	for _, c := range catalog {
		set[c.Base] = true
	}
	var out []string
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Variants returns all drive-strength variants of the given base, sorted
// by ascending drive. Used by the gate-sizing optimization pass.
func Variants(base string) []*Cell {
	catalogOnce.Do(buildCatalog)
	var out []*Cell
	for _, c := range catalog {
		if c.Base == base {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Drive < out[j].Drive })
	return out
}

var (
	catalogOnce   sync.Once
	catalog       []*Cell
	catalogByName map[string]*Cell
)

func buildCatalog() {
	type def struct {
		base   string
		build  func() *Cell
		extraX bool // also produce X8
	}
	defs := []def{
		{"INV", invCell, true},
		{"BUF", bufCell, true},
		{"NAND2", func() *Cell { return nandCell(2) }, false},
		{"NAND3", func() *Cell { return nandCell(3) }, false},
		{"NAND4", func() *Cell { return nandCell(4) }, false},
		{"NOR2", func() *Cell { return norCell(2) }, false},
		{"NOR3", func() *Cell { return norCell(3) }, false},
		{"NOR4", func() *Cell { return norCell(4) }, false},
		{"AND2", func() *Cell { return andCell(2) }, false},
		{"AND3", func() *Cell { return andCell(3) }, false},
		{"AND4", func() *Cell { return andCell(4) }, false},
		{"OR2", func() *Cell { return orCell(2) }, false},
		{"OR3", func() *Cell { return orCell(3) }, false},
		{"OR4", func() *Cell { return orCell(4) }, false},
		{"AOI21", aoi21Cell, false},
		{"AOI22", aoi22Cell, false},
		{"OAI21", oai21Cell, false},
		{"OAI22", oai22Cell, false},
		{"XOR2", xorCell, false},
		{"XNOR2", xnorCell, false},
		{"MUX2", muxCell, false},
		{"DFF", dffCell, false},
	}
	catalogByName = map[string]*Cell{}
	for _, d := range defs {
		ds := drives
		if d.extraX {
			ds = []int{1, 2, 4, 8}
		}
		for _, drive := range ds {
			c := d.build()
			c.Base = d.base
			c.Drive = drive
			c.Name = fmt.Sprintf("%s_X%d", d.base, drive)
			c.AreaUm2 = area(c)
			catalog = append(catalog, c)
			catalogByName[c.Name] = c
		}
	}
	sort.Slice(catalog, func(i, j int) bool { return catalog[i].Name < catalog[j].Name })
}

func pins(n int) []string {
	p := make([]string, n)
	for i := range p {
		p[i] = fmt.Sprintf("A%d", i+1)
	}
	return p
}

func bit(bits uint, i int) bool { return bits>>i&1 == 1 }

func invCell() *Cell {
	c := &Cell{Inputs: []string{"A"}, Output: "ZN"}
	c.Topo.inv("A", "ZN", 1)
	c.eval = func(b uint) bool { return !bit(b, 0) }
	return c
}

func bufCell() *Cell {
	c := &Cell{Inputs: []string{"A"}, Output: "Z"}
	c.Topo.inv("A", "x1", 0.5)
	c.Topo.inv("x1", "Z", 1)
	c.eval = func(b uint) bool { return bit(b, 0) }
	return c
}

func nandCell(n int) *Cell {
	in := pins(n)
	c := &Cell{Inputs: in, Output: "ZN"}
	c.Topo.nSeries("ZN", NodeGND, 1, in...)
	c.Topo.pParallel("ZN", NodeVDD, 1, in...)
	c.eval = func(b uint) bool { return b != (1<<n)-1 }
	return c
}

func norCell(n int) *Cell {
	in := pins(n)
	c := &Cell{Inputs: in, Output: "ZN"}
	c.Topo.nParallel("ZN", NodeGND, 1, in...)
	c.Topo.pSeries("ZN", NodeVDD, 1, in...)
	c.eval = func(b uint) bool { return b == 0 }
	return c
}

func andCell(n int) *Cell {
	in := pins(n)
	c := &Cell{Inputs: in, Output: "Z"}
	c.Topo.nSeries("x0", NodeGND, 0.7, in...)
	c.Topo.pParallel("x0", NodeVDD, 0.7, in...)
	c.Topo.inv("x0", "Z", 1)
	c.eval = func(b uint) bool { return b == (1<<n)-1 }
	return c
}

func orCell(n int) *Cell {
	in := pins(n)
	c := &Cell{Inputs: in, Output: "Z"}
	c.Topo.nParallel("x0", NodeGND, 0.7, in...)
	c.Topo.pSeries("x0", NodeVDD, 0.7, in...)
	c.Topo.inv("x0", "Z", 1)
	c.eval = func(b uint) bool { return b != 0 }
	return c
}

// AOI21: ZN = !((A1 & A2) | B)
func aoi21Cell() *Cell {
	c := &Cell{Inputs: []string{"A1", "A2", "B"}, Output: "ZN"}
	c.Topo.nSeries("ZN", NodeGND, 1, "A1", "A2")
	c.Topo.nmos("ZN", "B", NodeGND, 1)
	c.Topo.pmos("pm", "B", NodeVDD, 1.5)
	c.Topo.pParallel("ZN", "pm", 1.5, "A1", "A2")
	c.eval = func(b uint) bool { return !(bit(b, 0) && bit(b, 1) || bit(b, 2)) }
	return c
}

// AOI22: ZN = !((A1 & A2) | (B1 & B2))
func aoi22Cell() *Cell {
	c := &Cell{Inputs: []string{"A1", "A2", "B1", "B2"}, Output: "ZN"}
	c.Topo.nSeries("ZN", NodeGND, 1, "A1", "A2")
	c.Topo.nSeries("ZN", NodeGND, 1, "B1", "B2")
	c.Topo.pParallel("pm", NodeVDD, 1.5, "A1", "A2")
	c.Topo.pParallel("ZN", "pm", 1.5, "B1", "B2")
	c.eval = func(b uint) bool { return !(bit(b, 0) && bit(b, 1) || bit(b, 2) && bit(b, 3)) }
	return c
}

// OAI21: ZN = !((A1 | A2) & B)
func oai21Cell() *Cell {
	c := &Cell{Inputs: []string{"A1", "A2", "B"}, Output: "ZN"}
	c.Topo.nParallel("nm", "ZN", 1.5, "A1", "A2") // note: drain/source chain below
	c.Topo.nmos("nm", "B", NodeGND, 1.5)
	c.Topo.pSeries("ZN", NodeVDD, 1, "A1", "A2")
	c.Topo.pmos("ZN", "B", NodeVDD, 1)
	c.eval = func(b uint) bool { return !((bit(b, 0) || bit(b, 1)) && bit(b, 2)) }
	return c
}

// OAI22: ZN = !((A1 | A2) & (B1 | B2))
func oai22Cell() *Cell {
	c := &Cell{Inputs: []string{"A1", "A2", "B1", "B2"}, Output: "ZN"}
	c.Topo.nParallel("nm", "ZN", 1.5, "A1", "A2")
	c.Topo.nParallel(NodeGND, "nm", 1.5, "B1", "B2")
	c.Topo.pSeries("ZN", NodeVDD, 1, "A1", "A2")
	c.Topo.pSeries("ZN", NodeVDD, 1, "B1", "B2")
	c.eval = func(b uint) bool { return !((bit(b, 0) || bit(b, 1)) && (bit(b, 2) || bit(b, 3))) }
	return c
}

// XOR2: Z = A ^ B. Static CMOS with internal input inverters (multi-stage:
// the internal slopes of an/bn shape the aging response, the case the
// paper's Fig. 2 libraries must capture).
func xorCell() *Cell {
	c := &Cell{Inputs: []string{"A", "B"}, Output: "Z"}
	t := &c.Topo
	t.inv("A", "an", 0.5)
	t.inv("B", "bn", 0.5)
	// Pull-up: (gate an, gate B) and (gate A, gate bn) branches.
	t.pSeries("Z", NodeVDD, 1, "an", "B")
	t.pSeries("Z", NodeVDD, 1, "A", "bn")
	// Pull-down: (A,B) and (an,bn) branches.
	t.nSeries("Z", NodeGND, 1, "A", "B")
	t.nSeries("Z", NodeGND, 1, "an", "bn")
	c.eval = func(b uint) bool { return bit(b, 0) != bit(b, 1) }
	return c
}

// XNOR2: ZN = !(A ^ B).
func xnorCell() *Cell {
	c := &Cell{Inputs: []string{"A", "B"}, Output: "ZN"}
	t := &c.Topo
	t.inv("A", "an", 0.5)
	t.inv("B", "bn", 0.5)
	t.pSeries("ZN", NodeVDD, 1, "A", "B")
	t.pSeries("ZN", NodeVDD, 1, "an", "bn")
	t.nSeries("ZN", NodeGND, 1, "A", "bn")
	t.nSeries("ZN", NodeGND, 1, "an", "B")
	c.eval = func(b uint) bool { return bit(b, 0) == bit(b, 1) }
	return c
}

// MUX2: Z = S ? B : A. Transmission-gate multiplexer with a restoring
// output buffer (multi-stage).
func muxCell() *Cell {
	c := &Cell{Inputs: []string{"A", "B", "S"}, Output: "Z"}
	t := &c.Topo
	t.inv("S", "sn", 0.5)
	t.tg("A", "m", "sn", "S", 0.7) // passes A when S=0
	t.tg("B", "m", "S", "sn", 0.7) // passes B when S=1
	t.inv("m", "mb", 0.7)
	t.inv("mb", "Z", 1)
	c.eval = func(b uint) bool {
		if bit(b, 2) {
			return bit(b, 1)
		}
		return bit(b, 0)
	}
	return c
}

// DFF: positive-edge-triggered master-slave transmission-gate flip-flop
// with local clock buffering — 22 transistors, the most deeply multi-stage
// cell in the set.
func dffCell() *Cell {
	c := &Cell{
		Inputs: []string{"D", "CK"},
		Output: "Q",
		Seq:    true,
		Clock:  "CK",
		Data:   "D",
	}
	t := &c.Topo
	t.inv("CK", "cki", 0.7)
	t.inv("cki", "ckb", 0.7)
	// Master latch: transparent while CK low.
	t.tg("D", "n1", "cki", "ckb", 0.7)
	t.inv("n1", "n2", 1)
	t.inv("n2", "n3", 0.5)
	t.tg("n3", "n1", "ckb", "cki", 0.5)
	// Slave latch: transparent while CK high.
	t.tg("n2", "n4", "ckb", "cki", 0.7)
	t.inv("n4", "n5", 1)
	t.inv("n5", "n6", 0.5)
	t.tg("n6", "n4", "cki", "ckb", 0.5)
	// Output driver: Q = !n4 = D (captured).
	t.inv("n4", "Q", 1.5)
	return c
}
