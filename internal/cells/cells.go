// Package cells defines the transistor-level standard-cell set used
// throughout the reproduction — the stand-in for the Nangate 45 nm Open
// Cell Library the paper characterizes.
//
// The set contains 68 combinational and sequential cells (22 logic bases
// at drive strengths X1/X2/X4, plus X8 inverter and buffer), mirroring the
// paper's "68 combinational and sequential gates/cells". More than half of
// the bases are multi-stage (AND/OR with output inverters, XOR/XNOR with
// input inverters, buffered MUX, transmission-gate flip-flop) — the cell
// class the paper stresses cannot be handled by closed-form aging models
// because internal signal slopes matter.
//
// Each cell carries:
//   - a transistor topology (pull-up/pull-down networks with parasitics)
//     for SPICE-level characterization,
//   - a Boolean evaluation function for logic simulation and synthesis
//     matching,
//   - layout-calibrated area and pin capacitances.
package cells

import (
	"fmt"
	"sort"

	"ageguard/internal/device"
	"ageguard/internal/units"
)

// Node names with special meaning inside a Topology.
const (
	NodeVDD = "VDD"
	NodeGND = "GND"
)

// Base transistor widths for drive strength X1.
const (
	BaseWN = 400 * units.Nm // nMOS
	BaseWP = 800 * units.Nm // pMOS (2:1 for hole mobility)
)

// MOSSpec is one transistor of a cell topology. Widths are expressed as a
// multiple of the type's base X1 width; the characterizer scales them by
// the cell's drive strength.
type MOSSpec struct {
	Type    device.Type
	D, G, S string  // node names (pins, VDD/GND, or internal)
	WMult   float64 // width multiplier relative to BaseWN/BaseWP
}

// Topology is the transistor-level structure of a cell.
type Topology struct {
	Devices []MOSSpec
	nextID  int
}

func (t *Topology) fresh() string {
	t.nextID++
	return fmt.Sprintf("x%d", t.nextID)
}

func (t *Topology) nmos(d, g, s string, w float64) {
	t.Devices = append(t.Devices, MOSSpec{Type: device.NMOS, D: d, G: g, S: s, WMult: w})
}

func (t *Topology) pmos(d, g, s string, w float64) {
	t.Devices = append(t.Devices, MOSSpec{Type: device.PMOS, D: d, G: g, S: s, WMult: w})
}

// inv adds a static CMOS inverter in -> out with width multiplier w.
func (t *Topology) inv(in, out string, w float64) {
	t.nmos(out, in, NodeGND, w)
	t.pmos(out, in, NodeVDD, w)
}

// tg adds a transmission gate between a and b controlled by ngate/pgate.
func (t *Topology) tg(a, b, ngate, pgate string, w float64) {
	t.nmos(a, ngate, b, w)
	t.pmos(a, pgate, b, w)
}

// nSeries adds an nMOS chain conducting from 'top' to 'bottom' when all
// gates are high. Series devices are widened by the stack factor.
func (t *Topology) nSeries(top, bottom string, w float64, gates ...string) {
	stack := 1 + 0.5*float64(len(gates)-1)
	cur := top
	for i, g := range gates {
		next := bottom
		if i < len(gates)-1 {
			next = t.fresh()
		}
		t.nmos(cur, g, next, w*stack)
		cur = next
	}
}

// pSeries is nSeries for pMOS (conducting when all gates are low).
func (t *Topology) pSeries(top, bottom string, w float64, gates ...string) {
	stack := 1 + 0.5*float64(len(gates)-1)
	cur := top
	for i, g := range gates {
		next := bottom
		if i < len(gates)-1 {
			next = t.fresh()
		}
		t.pmos(cur, g, next, w*stack)
		cur = next
	}
}

// nParallel adds one nMOS per gate, each between a and b.
func (t *Topology) nParallel(a, b string, w float64, gates ...string) {
	for _, g := range gates {
		t.nmos(a, g, b, w)
	}
}

// pParallel adds one pMOS per gate, each between a and b.
func (t *Topology) pParallel(a, b string, w float64, gates ...string) {
	for _, g := range gates {
		t.pmos(a, g, b, w)
	}
}

// Nodes returns the sorted set of all node names used by the topology.
func (t *Topology) Nodes() []string {
	set := map[string]bool{}
	for _, d := range t.Devices {
		set[d.D] = true
		set[d.G] = true
		set[d.S] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cell is one standard cell.
type Cell struct {
	Name   string // full name, e.g. "NAND2_X1"
	Base   string // function family, e.g. "NAND2"
	Drive  int    // 1, 2, 4 or 8
	Inputs []string
	Output string

	// Sequential-cell metadata (DFF only).
	Seq   bool
	Clock string // clock pin name
	Data  string // data pin name

	AreaUm2 float64
	Topo    Topology

	eval func(bits uint) bool
}

// NumInputs returns the number of input pins.
func (c *Cell) NumInputs() int { return len(c.Inputs) }

// Eval evaluates the combinational function; bit i of bits is the value of
// Inputs[i]. Calling Eval on a sequential cell panics (its next-state
// behaviour is handled by the gate-level simulator).
func (c *Cell) Eval(bits uint) bool {
	if c.eval == nil {
		panic("cells: Eval on sequential cell " + c.Name)
	}
	return c.eval(bits)
}

// Comb reports whether the cell is purely combinational.
func (c *Cell) Comb() bool { return !c.Seq }

// PinIndex returns the position of pin within Inputs, or -1.
func (c *Cell) PinIndex(pin string) int {
	for i, p := range c.Inputs {
		if p == pin {
			return i
		}
	}
	return -1
}

// TruthTable returns the function as a bitmask over all 2^n input
// combinations: bit k of the result is Eval(k). Used by the technology
// mapper for Boolean matching. Panics for sequential cells or >6 inputs.
func (c *Cell) TruthTable() uint64 {
	n := c.NumInputs()
	if n > 6 {
		panic("cells: truth table too wide")
	}
	var tt uint64
	for k := uint(0); k < 1<<n; k++ {
		if c.Eval(k) {
			tt |= 1 << k
		}
	}
	return tt
}

// DeviceParams returns the concrete transistor parameters for spec within
// this cell (applying the drive-strength multiplier), before aging.
func (c *Cell) DeviceParams(tech device.Tech, spec MOSSpec) device.Params {
	w := spec.WMult * float64(c.Drive)
	if spec.Type == device.NMOS {
		return tech.Transistor(device.NMOS, w*BaseWN)
	}
	return tech.Transistor(device.PMOS, w*BaseWP)
}

// PinCap returns the input capacitance of the given pin: the summed gate
// capacitance of every transistor whose gate connects to it.
func (c *Cell) PinCap(tech device.Tech, pin string) float64 {
	var sum float64
	for _, d := range c.Topo.Devices {
		if d.G == pin {
			sum += c.DeviceParams(tech, d).CGate
		}
	}
	return sum
}

// TotalWidth returns the summed channel width of all transistors [m],
// the basis for the area model.
func (c *Cell) TotalWidth() float64 {
	var sum float64
	for _, d := range c.Topo.Devices {
		w := d.WMult * float64(c.Drive)
		if d.Type == device.NMOS {
			sum += w * BaseWN
		} else {
			sum += w * BaseWP
		}
	}
	return sum
}

// area computes the layout-calibrated cell area in um^2: proportional to
// total transistor width plus fixed routing overhead, normalized so a
// minimum inverter is ~0.53 um^2 (Nangate 45 nm INV_X1).
func area(c *Cell) float64 {
	const perUm = 0.28  // um^2 per um of channel width
	const fixed = 0.196 // well/rail overhead
	return fixed + perUm*c.TotalWidth()/units.Um
}

func (c *Cell) String() string { return c.Name }
