package cells

import (
	"testing"
	"testing/quick"

	"ageguard/internal/device"
	"ageguard/internal/units"
)

func TestCatalogSize(t *testing.T) {
	all := All()
	if len(all) != 68 {
		t.Fatalf("catalog has %d cells, want 68 (paper's Nangate subset)", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if seen[c.Name] {
			t.Errorf("duplicate cell %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestByName(t *testing.T) {
	c, ok := ByName("NAND2_X1")
	if !ok || c.Base != "NAND2" || c.Drive != 1 {
		t.Fatalf("ByName(NAND2_X1) = %v, %v", c, ok)
	}
	if _, ok := ByName("NAND9_X1"); ok {
		t.Error("found nonexistent cell")
	}
}

func TestVariantsSorted(t *testing.T) {
	v := Variants("INV")
	if len(v) != 4 {
		t.Fatalf("INV variants = %d, want 4 (X1,X2,X4,X8)", len(v))
	}
	for i := 1; i < len(v); i++ {
		if v[i].Drive <= v[i-1].Drive {
			t.Error("variants not sorted by drive")
		}
	}
	if len(Variants("NAND2")) != 3 {
		t.Error("NAND2 should have 3 drives")
	}
}

func TestEvalFunctions(t *testing.T) {
	cases := []struct {
		cell string
		in   uint
		want bool
	}{
		{"INV_X1", 0, true}, {"INV_X1", 1, false},
		{"BUF_X1", 0, false}, {"BUF_X1", 1, true},
		{"NAND2_X1", 3, false}, {"NAND2_X1", 2, true}, {"NAND2_X1", 0, true},
		{"NOR2_X1", 0, true}, {"NOR2_X1", 1, false}, {"NOR2_X1", 3, false},
		{"AND3_X1", 7, true}, {"AND3_X1", 5, false},
		{"OR3_X1", 0, false}, {"OR3_X1", 4, true},
		{"NAND4_X1", 15, false}, {"NAND4_X1", 7, true},
		{"NOR4_X1", 0, true}, {"NOR4_X1", 8, false},
		{"XOR2_X1", 0, false}, {"XOR2_X1", 1, true}, {"XOR2_X1", 2, true}, {"XOR2_X1", 3, false},
		{"XNOR2_X1", 0, true}, {"XNOR2_X1", 3, true}, {"XNOR2_X1", 1, false},
		// AOI21: !((A1&A2)|B); bits: A1=1, A2=2, B=4
		{"AOI21_X1", 0, true}, {"AOI21_X1", 3, false}, {"AOI21_X1", 4, false}, {"AOI21_X1", 1, true},
		// AOI22: !((A1&A2)|(B1&B2))
		{"AOI22_X1", 0, true}, {"AOI22_X1", 3, false}, {"AOI22_X1", 12, false}, {"AOI22_X1", 5, true},
		// OAI21: !((A1|A2)&B)
		{"OAI21_X1", 0, true}, {"OAI21_X1", 5, false}, {"OAI21_X1", 4, true}, {"OAI21_X1", 3, true},
		// OAI22: !((A1|A2)&(B1|B2))
		{"OAI22_X1", 0, true}, {"OAI22_X1", 5, false}, {"OAI22_X1", 3, true}, {"OAI22_X1", 12, true},
		// MUX2: S?B:A; bits: A=1, B=2, S=4
		{"MUX2_X1", 1, true}, {"MUX2_X1", 2, false}, {"MUX2_X1", 6, true}, {"MUX2_X1", 5, false},
	}
	for _, tc := range cases {
		c := MustByName(tc.cell)
		if got := c.Eval(tc.in); got != tc.want {
			t.Errorf("%s.Eval(%b) = %v, want %v", tc.cell, tc.in, got, tc.want)
		}
	}
}

func TestDriveVariantsShareFunction(t *testing.T) {
	for _, base := range Bases() {
		vars := Variants(base)
		if vars[0].Seq {
			continue
		}
		tt := vars[0].TruthTable()
		for _, v := range vars[1:] {
			if v.TruthTable() != tt {
				t.Errorf("%s truth table differs from %s", v.Name, vars[0].Name)
			}
		}
	}
}

func TestAreaModel(t *testing.T) {
	inv1 := MustByName("INV_X1")
	if inv1.AreaUm2 < 0.3 || inv1.AreaUm2 > 1.2 {
		t.Errorf("INV_X1 area = %v um^2, want ~0.5", inv1.AreaUm2)
	}
	inv4 := MustByName("INV_X4")
	if inv4.AreaUm2 <= inv1.AreaUm2 {
		t.Error("larger drive must cost area")
	}
	dff := MustByName("DFF_X1")
	if dff.AreaUm2 <= MustByName("NAND2_X1").AreaUm2 {
		t.Error("DFF must be larger than NAND2")
	}
}

func TestPinCaps(t *testing.T) {
	tech := device.Default45()
	nand := MustByName("NAND2_X1")
	c1 := nand.PinCap(tech, "A1")
	if c1 < 0.2*units.FF || c1 > 10*units.FF {
		t.Errorf("NAND2_X1 pin cap = %s implausible", units.FFString(c1))
	}
	nand4 := MustByName("NAND2_X4")
	if nand4.PinCap(tech, "A1") <= c1 {
		t.Error("X4 pin cap should exceed X1")
	}
	if MustByName("XOR2_X1").PinCap(tech, "A") <= 0 {
		t.Error("XOR2 pin A has no gate cap")
	}
}

func TestTopologyConnectivity(t *testing.T) {
	// Every cell's output must be reachable as a device drain/source and
	// every input pin must drive at least one gate.
	for _, c := range All() {
		touched := map[string]bool{}
		gates := map[string]bool{}
		for _, d := range c.Topo.Devices {
			touched[d.D] = true
			touched[d.S] = true
			gates[d.G] = true
		}
		if !touched[c.Output] {
			t.Errorf("%s: output %s not driven", c.Name, c.Output)
		}
		for _, in := range c.Inputs {
			// Inputs normally drive gates; transmission-gate inputs
			// (MUX2 A/B, DFF D) connect to channel terminals instead.
			if !gates[in] && !touched[in] {
				t.Errorf("%s: input %s unconnected", c.Name, in)
			}
		}
		if !touched[NodeVDD] || !touched[NodeGND] {
			t.Errorf("%s: rails not connected", c.Name)
		}
	}
}

func TestSequentialMetadata(t *testing.T) {
	d := MustByName("DFF_X1")
	if !d.Seq || d.Clock != "CK" || d.Data != "D" {
		t.Errorf("DFF metadata wrong: %+v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Eval on DFF should panic")
		}
	}()
	d.Eval(0)
}

func TestTruthTableProperty(t *testing.T) {
	// TruthTable and Eval must agree for random cells and inputs.
	all := All()
	f := func(ci, in uint) bool {
		c := all[ci%uint(len(all))]
		if c.Seq {
			return true
		}
		k := in % (1 << c.NumInputs())
		return c.Eval(k) == (c.TruthTable()>>k&1 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodesSortedUnique(t *testing.T) {
	n := MustByName("NAND3_X1").Topo.Nodes()
	for i := 1; i < len(n); i++ {
		if n[i] <= n[i-1] {
			t.Fatalf("Nodes not sorted/unique: %v", n)
		}
	}
}
