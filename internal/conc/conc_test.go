package conc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if w := Workers(4); w != 4 {
		t.Errorf("Workers(4) = %d", w)
	}
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w != Workers(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", w)
	}
}

func TestParForComputesAllSlots(t *testing.T) {
	const n = 100
	out := make([]int, n)
	err := ParFor(context.Background(), 8, n, func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestParForSerialInline(t *testing.T) {
	// workers == 1 must run in order on the calling goroutine.
	var order []int
	err := ParFor(context.Background(), 1, 5, func(i int) error {
		order = append(order, i) // no lock: inline execution required
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestParForFirstErrorStopsDispatch(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := ParFor(context.Background(), 2, 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n == 1000 {
		t.Error("error did not stop dispatch")
	}
}

func TestGroupCancelPropagates(t *testing.T) {
	g, ctx := NewGroup(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("sibling failure did not cancel context")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v", err)
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	const cap, tasks = 3, 50
	lim := NewLimiter(cap)
	var cur, peak atomic.Int32
	g, ctx := NewGroup(context.Background())
	for i := 0; i < tasks; i++ {
		g.Go(func() error {
			if err := lim.Acquire(ctx); err != nil {
				return err
			}
			defer lim.Release()
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > cap {
		t.Errorf("peak concurrency %d exceeds limiter cap %d", p, cap)
	}
}

func TestLimiterAcquireHonorsCancel(t *testing.T) {
	lim := NewLimiter(1)
	if err := lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := lim.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on canceled ctx = %v", err)
	}
	lim.Release()
}

func TestFlightDeduplicates(t *testing.T) {
	var f Flight[int]
	var runs atomic.Int32
	var wg sync.WaitGroup
	release := make(chan struct{})
	results := make([]int, 16)
	for i := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.Do(context.Background(), "k", func() (int, error) {
				runs.Add(1)
				<-release // hold every other caller in flight
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	// Give followers a moment to join the in-flight call, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d", i, v)
		}
	}
}

func TestFlightErrorNotCached(t *testing.T) {
	var f Flight[int]
	calls := 0
	_, err := f.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 0, fmt.Errorf("fail %d", calls)
	})
	if err == nil {
		t.Fatal("want error")
	}
	v, err := f.Do(context.Background(), "k", func() (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 || calls != 2 {
		t.Fatalf("retry: v=%d err=%v calls=%d", v, err, calls)
	}
}

func TestFlightRetriesAfterLeaderCanceled(t *testing.T) {
	var f Flight[int]
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		f.Do(context.Background(), "k", func() (int, error) {
			close(leaderIn)
			<-release
			return 0, context.Canceled // leader's own pipeline was canceled
		})
	}()
	<-leaderIn
	done := make(chan struct{})
	var v int
	var err error
	go func() {
		defer close(done)
		v, err = f.Do(context.Background(), "k", func() (int, error) { return 9, nil })
	}()
	close(release)
	<-done
	if err != nil || v != 9 {
		t.Fatalf("follower after canceled leader: v=%d err=%v", v, err)
	}
}
