package conc

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestWrapCanceled(t *testing.T) {
	sentinel := errors.New("boom")
	cases := []struct {
		name string
		in   error
		want func(error) bool
	}{
		{"nil passes through", nil, func(e error) bool { return e == nil }},
		{"unrelated passes through", sentinel, func(e error) bool { return e == sentinel }},
		{"context.Canceled wraps both ways", context.Canceled, func(e error) bool {
			return errors.Is(e, ErrCanceled) && errors.Is(e, context.Canceled)
		}},
		{"deadline wraps both ways", context.DeadlineExceeded, func(e error) bool {
			return errors.Is(e, ErrCanceled) && errors.Is(e, context.DeadlineExceeded)
		}},
		{"nested canceled wraps", fmt.Errorf("layer: %w", context.Canceled), func(e error) bool {
			return errors.Is(e, ErrCanceled) && errors.Is(e, context.Canceled)
		}},
	}
	for _, tc := range cases {
		if got := WrapCanceled(tc.in); !tc.want(got) {
			t.Errorf("%s: WrapCanceled(%v) = %v", tc.name, tc.in, got)
		}
	}
}

// TestWrapCanceledIdempotent: wrapping an already-wrapped error must not
// stack another "pipeline canceled:" prefix (each pipeline layer calls
// WrapCanceled on the way up).
func TestWrapCanceledIdempotent(t *testing.T) {
	once := WrapCanceled(context.Canceled)
	twice := WrapCanceled(once)
	if twice != once {
		t.Errorf("double wrap changed the error: %v -> %v", once, twice)
	}
}
