// Package conc provides the small concurrency primitives the
// characterization and experiment pipelines are built on: an errgroup-style
// Group with first-error cancellation, a bounded parallel-for, a weighted
// Limiter that can be shared across nested fan-outs so the total number of
// in-flight leaf tasks stays bounded regardless of nesting depth, and a
// singleflight Flight that deduplicates concurrent identical work.
//
// Everything here is dependency-free by design (the repository is stdlib
// only) and deliberately minimal: deterministic result assembly is the
// caller's job (workers write into pre-indexed slots, never append).
package conc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrCanceled is the sentinel every pipeline layer wraps (with %w) when
// work stops because its context was canceled, so callers distinguish
// "the user interrupted the run" from real failures with errors.Is
// instead of string matching. Errors wrapped via WrapCanceled also match
// the underlying context.Canceled / context.DeadlineExceeded.
var ErrCanceled = errors.New("pipeline canceled")

// WrapCanceled converts a context cancellation error into one that also
// matches ErrCanceled; nil and unrelated errors pass through unchanged.
func WrapCanceled(err error) error {
	if err == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// Workers resolves a Parallelism knob to a worker count: values <= 0 select
// GOMAXPROCS (all available CPUs), 1 means serial, anything else is taken
// as-is.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Group runs tasks on goroutines and collects the first error. Unlike a
// bare WaitGroup it cancels the derived context as soon as any task fails,
// so siblings can stop early. The zero value is not usable; construct with
// NewGroup.
type Group struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	sem    chan struct{} // non-nil after SetLimit

	once sync.Once
	err  error
}

// NewGroup returns a Group and a context derived from ctx that is canceled
// when any task returns a non-nil error or when Wait returns.
func NewGroup(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &Group{cancel: cancel}, ctx
}

// SetLimit bounds the number of concurrently running tasks; Go blocks while
// the limit is reached. Must be called before the first Go.
func (g *Group) SetLimit(n int) {
	g.sem = make(chan struct{}, n)
}

// Go schedules fn on a new goroutine (blocking first if a limit is set and
// exhausted). The first non-nil error is retained and cancels the group
// context.
func (g *Group) Go(fn func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		if err := fn(); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until every scheduled task has returned, cancels the group
// context, and reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// ParFor runs fn(i) for every i in [0, n) on up to workers goroutines
// (Workers-resolved) and returns the first error; remaining iterations are
// skipped once an error occurs. workers == 1 (or n <= 1) executes inline
// with no goroutines, preserving exact serial behavior. fn must be safe for
// concurrent invocation with distinct i; writing result i into slot i of a
// pre-sized slice keeps assembly deterministic.
func ParFor(ctx context.Context, workers, n int, fn func(i int) error) error {
	workers = Workers(workers)
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	g, ctx := NewGroup(ctx)
	g.SetLimit(workers)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break // a sibling failed; stop dispatching
		}
		g.Go(func() error { return fn(i) })
	}
	return g.Wait()
}

// Limiter bounds the number of concurrently executing leaf tasks. It is a
// counting semaphore intended to be shared across nested fan-outs (e.g.
// scenarios -> cells -> grid points): only the leaves acquire tokens, so
// the bound holds globally and nesting cannot deadlock.
type Limiter chan struct{}

// NewLimiter returns a Limiter admitting Workers(n) concurrent holders.
func NewLimiter(n int) Limiter { return make(Limiter, Workers(n)) }

// Cap returns the number of tokens (the concurrency bound).
func (l Limiter) Cap() int { return cap(l) }

// Acquire blocks until a token is available or ctx is done. A done ctx
// wins over an available token: without the up-front check, select picks
// randomly when both cases are ready, and after a cancellation roughly
// half of the queued waiters would still grab tokens and start work.
func (l Limiter) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token acquired with Acquire.
func (l Limiter) Release() { <-l }

// Flight deduplicates concurrent calls that would perform identical work:
// while a call for a key is in flight, later callers with the same key wait
// for and share its result instead of repeating the work. Calls that fail
// are not cached — the next caller retries. The zero value is ready to use.
type Flight[T any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[T]
}

type flightCall[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Do executes fn for key, unless an identical call is already in flight, in
// which case it waits and returns that call's result. If the shared call
// failed with context.Canceled but ctx itself is still live (the leader
// belonged to a different, since-canceled pipeline), the work is retried
// rather than failing an unrelated caller.
func (f *Flight[T]) Do(ctx context.Context, key string, fn func() (T, error)) (T, error) {
	for {
		f.mu.Lock()
		if f.m == nil {
			f.m = map[string]*flightCall[T]{}
		}
		if c, ok := f.m[key]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				var zero T
				return zero, ctx.Err()
			}
			if errors.Is(c.err, context.Canceled) && ctx.Err() == nil {
				continue // leader was canceled, we are not: take over
			}
			return c.val, c.err
		}
		c := &flightCall[T]{done: make(chan struct{})}
		f.m[key] = c
		f.mu.Unlock()

		c.val, c.err = fn()
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		close(c.done)
		return c.val, c.err
	}
}
