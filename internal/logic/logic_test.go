package logic

import (
	"testing"
	"testing/quick"
)

func TestLitOps(t *testing.T) {
	a := New()
	x := a.Input("x")
	if x.Not().Not() != x {
		t.Error("double complement")
	}
	if !x.Not().Compl() || x.Compl() {
		t.Error("Compl wrong")
	}
	if x.NotIf(true) != x.Not() || x.NotIf(false) != x {
		t.Error("NotIf wrong")
	}
	if x.Node() != x.Not().Node() {
		t.Error("Node must ignore complement")
	}
}

func TestConstantFolding(t *testing.T) {
	a := New()
	x := a.Input("x")
	if a.And(x, False) != False {
		t.Error("x&0 != 0")
	}
	if a.And(x, True) != x {
		t.Error("x&1 != x")
	}
	if a.And(x, x) != x {
		t.Error("x&x != x")
	}
	if a.And(x, x.Not()) != False {
		t.Error("x&!x != 0")
	}
	if a.NumAnds() != 0 {
		t.Errorf("folding created %d nodes", a.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	n1 := a.And(x, y)
	n2 := a.And(y, x)
	if n1 != n2 {
		t.Error("commuted AND not hashed")
	}
	if a.NumAnds() != 1 {
		t.Errorf("NumAnds = %d", a.NumAnds())
	}
}

func TestEval64TruthTables(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	z := a.Input("z")
	a.AddOutput("and", a.And(x, y))
	a.AddOutput("or", a.Or(x, y))
	a.AddOutput("xor", a.Xor(x, y))
	a.AddOutput("xnor", a.Xnor(x, y))
	a.AddOutput("mux", a.Mux(z, x, y))
	a.AddOutput("maj", a.Maj(x, y, z))
	a.AddOutput("nand", a.Nand(x, y))
	a.AddOutput("nor", a.Nor(x, y))

	// Exhaustive over the 8 input combinations, bit-parallel.
	var xv, yv, zv uint64
	for k := uint(0); k < 8; k++ {
		xv |= uint64(k&1) << k
		yv |= uint64(k>>1&1) << k
		zv |= uint64(k>>2&1) << k
	}
	out, _ := a.Eval64([]uint64{xv, yv, zv}, nil)
	const m = 0xff
	checks := []struct {
		name string
		want uint64
	}{
		{"and", xv & yv & m},
		{"or", (xv | yv) & m},
		{"xor", (xv ^ yv) & m},
		{"xnor", ^(xv ^ yv) & m},
		{"mux", (zv&xv | ^zv&yv) & m},
		{"maj", (xv&yv | xv&zv | yv&zv) & m},
		{"nand", ^(xv & yv) & m},
		{"nor", ^(xv | yv) & m},
	}
	for i, c := range checks {
		if out[i]&m != c.want {
			t.Errorf("%s = %08b, want %08b", c.name, out[i]&m, c.want)
		}
	}
}

func TestLevels(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	n1 := a.And(x, y)
	n2 := a.And(n1, x.Not())
	if a.Level(x) != 0 || a.Level(n1) != 1 || a.Level(n2) != 2 {
		t.Errorf("levels: %d %d %d", a.Level(x), a.Level(n1), a.Level(n2))
	}
	a.AddOutput("o", n2)
	if a.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d", a.MaxLevel())
	}
}

func TestFanoutCounts(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	n1 := a.And(x, y)
	n2 := a.And(n1, y.Not())
	a.AddOutput("o1", n1)
	a.AddOutput("o2", n2)
	cnt := a.FanoutCounts()
	if cnt[x.Node()] != 1 {
		t.Errorf("fanout(x) = %d", cnt[x.Node()])
	}
	if cnt[y.Node()] != 2 {
		t.Errorf("fanout(y) = %d", cnt[y.Node()])
	}
	if cnt[n1.Node()] != 2 { // used by n2 and output o1
		t.Errorf("fanout(n1) = %d", cnt[n1.Node()])
	}
}

func TestIsInputIsConst(t *testing.T) {
	a := New()
	x := a.Input("x")
	n := a.And(x, a.Input("y"))
	if !a.IsInput(x) || a.IsInput(n) || a.IsInput(False) {
		t.Error("IsInput wrong")
	}
	if !a.IsConst(False) || !a.IsConst(True) || a.IsConst(x) {
		t.Error("IsConst wrong")
	}
}

func TestXorProperty(t *testing.T) {
	// Xor built from ANDs must satisfy the truth table for random vectors.
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	a.AddOutput("xor", a.Xor(x, y))
	f := func(xv, yv uint64) bool {
		out, _ := a.Eval64([]uint64{xv, yv}, nil)
		return out[0] == xv^yv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEval64PanicsOnBadWidth(t *testing.T) {
	a := New()
	a.Input("x")
	defer func() {
		if recover() == nil {
			t.Error("want panic on wrong input count")
		}
	}()
	a.Eval64(nil, nil)
}

func TestInputNames(t *testing.T) {
	a := New()
	a.Input("alpha")
	a.Input("beta")
	if a.InputName(0) != "alpha" || a.InputName(1) != "beta" {
		t.Error("input names wrong")
	}
	if a.NumInputs() != 2 {
		t.Error("NumInputs wrong")
	}
}
