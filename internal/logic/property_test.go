package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBooleanIdentities checks algebraic identities of the AIG builders on
// random bit-parallel vectors.
func TestBooleanIdentities(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	z := a.Input("z")
	// De Morgan.
	a.AddOutput("dm1", a.Nand(x, y))
	a.AddOutput("dm2", a.Or(x.Not(), y.Not()))
	// Distribution.
	a.AddOutput("ds1", a.And(x, a.Or(y, z)))
	a.AddOutput("ds2", a.Or(a.And(x, y), a.And(x, z)))
	// Xor via mux.
	a.AddOutput("xm1", a.Xor(x, y))
	a.AddOutput("xm2", a.Mux(x, y.Not(), y))
	// Majority symmetry.
	a.AddOutput("mj1", a.Maj(x, y, z))
	a.AddOutput("mj2", a.Maj(z, x, y))

	f := func(xv, yv, zv uint64) bool {
		out, _ := a.Eval64([]uint64{xv, yv, zv}, nil)
		return out[0] == out[1] && out[2] == out[3] && out[4] == out[5] && out[6] == out[7]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRandomExpressionEquivalence builds a random expression twice — once
// directly and once through double negation of every intermediate — and
// checks both evaluate identically (structural hashing must not alter
// semantics).
func TestRandomExpressionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		a := New()
		const nin = 5
		var leaves []Lit
		for i := 0; i < nin; i++ {
			leaves = append(leaves, a.Input(string(rune('a'+i))))
		}
		pool1 := append([]Lit(nil), leaves...)
		pool2 := append([]Lit(nil), leaves...)
		ops := rng.Intn(30) + 5
		for k := 0; k < ops; k++ {
			i, j := rng.Intn(len(pool1)), rng.Intn(len(pool1))
			op := rng.Intn(4)
			var n1, n2 Lit
			switch op {
			case 0:
				n1 = a.And(pool1[i], pool1[j])
				n2 = a.And(pool2[i].Not().Not(), pool2[j])
			case 1:
				n1 = a.Or(pool1[i], pool1[j])
				n2 = a.Nand(pool2[i].Not(), pool2[j].Not())
			case 2:
				n1 = a.Xor(pool1[i], pool1[j])
				n2 = a.Xnor(pool2[i], pool2[j]).Not()
			default:
				n1 = a.Mux(pool1[i], pool1[j], pool1[(i+j)%len(pool1)])
				n2 = a.Mux(pool2[i].Not(), pool2[(i+j)%len(pool2)], pool2[j])
			}
			pool1 = append(pool1, n1)
			pool2 = append(pool2, n2)
		}
		a.AddOutput("o1", pool1[len(pool1)-1])
		a.AddOutput("o2", pool2[len(pool2)-1])
		in := make([]uint64, nin)
		for v := 0; v < 8; v++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			out, _ := a.Eval64(in, nil)
			if out[0] != out[1] {
				t.Fatalf("trial %d: equivalent constructions diverge", trial)
			}
		}
	}
}

// TestTopologicalInvariant: every AND node's fanins have smaller indexes.
func TestTopologicalInvariant(t *testing.T) {
	a := New()
	x := a.Input("x")
	y := a.Input("y")
	cur := x
	for i := 0; i < 50; i++ {
		cur = a.And(cur, y.NotIf(i%2 == 0))
		cur = a.Xor(cur, x)
	}
	a.AddOutput("o", cur)
	for node := uint32(1); node < uint32(a.NumNodes()); node++ {
		if a.IsInput(Lit(node << 1)) {
			continue
		}
		f0, f1 := a.Fanins(node)
		if f0.Node() >= node || f1.Node() >= node {
			t.Fatalf("node %d references later node", node)
		}
		if lv := a.Level(Lit(node << 1)); lv <= 0 {
			t.Fatalf("AND node %d has level %d", node, lv)
		}
	}
}
