// Package logic implements the technology-independent logic network used
// as synthesis input: an And-Inverter Graph (AIG) with structural hashing.
// RTL generators (package rtl) build AIGs; the technology mapper (package
// synth) covers them with standard cells.
//
// Literals encode a node index and a complement bit, so inversion is free —
// matching the cost model of static CMOS where most cells are inverting.
package logic

import (
	"fmt"
	"math"
)

// Lit is a literal: a node reference with a complement bit in bit 0.
type Lit uint32

// Constant literals: node 0 is the constant-false node.
const (
	False Lit = 0
	True  Lit = 1
)

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Node returns the node index.
func (l Lit) Node() uint32 { return uint32(l) >> 1 }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

const inputMark = math.MaxUint32

// AIG is an And-Inverter Graph. Create with New; nodes are appended
// bottom-up, so node indexes form a topological order.
type AIG struct {
	fan0, fan1 []Lit // per node; fan0 == inputMark flags an input node
	level      []int32
	strash     map[uint64]Lit

	inputs     []Lit
	inputNames []string
	outputs    []Output
}

// Output is a named primary output.
type Output struct {
	Name string
	L    Lit
}

// New returns an empty AIG containing only the constant node.
func New() *AIG {
	return &AIG{
		fan0:   []Lit{inputMark}, // node 0: constant (marked; never evaluated)
		fan1:   []Lit{0},
		level:  []int32{0},
		strash: map[uint64]Lit{},
	}
}

// NumNodes returns the node count including constants and inputs.
func (a *AIG) NumNodes() int { return len(a.fan0) }

// NumAnds returns the number of AND nodes.
func (a *AIG) NumAnds() int { return len(a.fan0) - 1 - len(a.inputs) }

// NumInputs returns the primary-input count.
func (a *AIG) NumInputs() int { return len(a.inputs) }

// Inputs returns the primary-input literals in creation order.
func (a *AIG) Inputs() []Lit { return a.inputs }

// InputName returns the name of the i-th input.
func (a *AIG) InputName(i int) string { return a.inputNames[i] }

// Outputs returns the primary outputs in creation order.
func (a *AIG) Outputs() []Output { return a.outputs }

// IsInput reports whether the node of l is a primary input.
func (a *AIG) IsInput(l Lit) bool {
	return l.Node() != 0 && a.fan0[l.Node()] == inputMark
}

// IsConst reports whether the node of l is the constant node.
func (a *AIG) IsConst(l Lit) bool { return l.Node() == 0 }

// Fanins returns the two fanin literals of an AND node.
func (a *AIG) Fanins(node uint32) (Lit, Lit) { return a.fan0[node], a.fan1[node] }

// Level returns the logic depth of the literal's node (inputs at 0).
func (a *AIG) Level(l Lit) int { return int(a.level[l.Node()]) }

// Input creates a named primary input and returns its literal.
func (a *AIG) Input(name string) Lit {
	n := uint32(len(a.fan0))
	a.fan0 = append(a.fan0, inputMark)
	a.fan1 = append(a.fan1, 0)
	a.level = append(a.level, 0)
	l := Lit(n << 1)
	a.inputs = append(a.inputs, l)
	a.inputNames = append(a.inputNames, name)
	return l
}

// AddOutput registers a named primary output.
func (a *AIG) AddOutput(name string, l Lit) {
	a.outputs = append(a.outputs, Output{Name: name, L: l})
}

// And returns a literal for x AND y, applying constant folding, trivial
// rules and structural hashing.
func (a *AIG) And(x, y Lit) Lit {
	// Trivial cases.
	switch {
	case x == False || y == False || x == y.Not():
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	}
	if x > y {
		x, y = y, x
	}
	key := uint64(x)<<32 | uint64(y)
	if l, ok := a.strash[key]; ok {
		return l
	}
	n := uint32(len(a.fan0))
	a.fan0 = append(a.fan0, x)
	a.fan1 = append(a.fan1, y)
	lv := a.level[x.Node()]
	if l1 := a.level[y.Node()]; l1 > lv {
		lv = l1
	}
	a.level = append(a.level, lv+1)
	l := Lit(n << 1)
	a.strash[key] = l
	return l
}

// Or returns x OR y.
func (a *AIG) Or(x, y Lit) Lit { return a.And(x.Not(), y.Not()).Not() }

// Nand returns NOT (x AND y).
func (a *AIG) Nand(x, y Lit) Lit { return a.And(x, y).Not() }

// Nor returns NOT (x OR y).
func (a *AIG) Nor(x, y Lit) Lit { return a.Or(x, y).Not() }

// Xor returns x XOR y.
func (a *AIG) Xor(x, y Lit) Lit {
	return a.Or(a.And(x, y.Not()), a.And(x.Not(), y))
}

// Xnor returns NOT (x XOR y).
func (a *AIG) Xnor(x, y Lit) Lit { return a.Xor(x, y).Not() }

// Mux returns s ? t : f.
func (a *AIG) Mux(s, t, f Lit) Lit {
	return a.Or(a.And(s, t), a.And(s.Not(), f))
}

// Maj returns the majority of three literals (full-adder carry).
func (a *AIG) Maj(x, y, z Lit) Lit {
	return a.Or(a.And(x, y), a.Or(a.And(x, z), a.And(y, z)))
}

// MaxLevel returns the largest output logic depth.
func (a *AIG) MaxLevel() int {
	m := 0
	for _, o := range a.outputs {
		if l := a.Level(o.L); l > m {
			m = l
		}
	}
	return m
}

// Eval64 evaluates the network bit-parallel over 64 input vectors at once.
// in[i] carries 64 values of input i (creation order); the result carries
// 64 values per output. The scratch slice is reused across calls when its
// capacity allows, enabling allocation-free inner loops.
func (a *AIG) Eval64(in []uint64, scratch []uint64) (out []uint64, newScratch []uint64) {
	if len(in) != len(a.inputs) {
		panic(fmt.Sprintf("logic: Eval64 got %d input words, want %d", len(in), len(a.inputs)))
	}
	n := len(a.fan0)
	if cap(scratch) < n {
		scratch = make([]uint64, n)
	}
	v := scratch[:n]
	v[0] = 0
	for i, l := range a.inputs {
		v[l.Node()] = in[i]
	}
	litVal := func(l Lit) uint64 {
		x := v[l.Node()]
		if l.Compl() {
			return ^x
		}
		return x
	}
	for node := 1; node < n; node++ {
		if a.fan0[node] == inputMark {
			continue
		}
		v[node] = litVal(a.fan0[node]) & litVal(a.fan1[node])
	}
	out = make([]uint64, len(a.outputs))
	for i, o := range a.outputs {
		out[i] = litVal(o.L)
	}
	return out, scratch
}

// FanoutCounts returns the number of references to each node from AND
// fanins and outputs — used by the mapper's area-flow heuristic.
func (a *AIG) FanoutCounts() []int {
	cnt := make([]int, len(a.fan0))
	for node := 1; node < len(a.fan0); node++ {
		if a.fan0[node] == inputMark {
			continue
		}
		cnt[a.fan0[node].Node()]++
		cnt[a.fan1[node].Node()]++
	}
	for _, o := range a.outputs {
		cnt[o.L.Node()]++
	}
	return cnt
}
