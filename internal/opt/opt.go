// Package opt is the shared functional-options pattern used by the
// pipeline's configuration structs (char.Config, sta.Config, core.Flow):
// each package aliases Option[T] for its config type and exports small
// With* setters, so construction reads
//
//	cfg := char.New(char.WithParallelism(8), char.WithCacheDir(dir))
//
// instead of post-hoc field pokes on a half-initialized struct.
package opt

// Option mutates a configuration value under construction.
type Option[T any] func(*T)

// Apply returns base with every option applied in order.
func Apply[T any](base T, opts ...Option[T]) T {
	for _, o := range opts {
		if o != nil {
			o(&base)
		}
	}
	return base
}
