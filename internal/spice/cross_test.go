package spice

import (
	"math/rand"
	"testing"
)

// crossLinear is the reference implementation of Result.Cross: a plain
// left-to-right scan with no binary search. The production version must
// agree with it exactly on every waveform.
func crossLinear(r *Result, n NodeID, v float64, rising bool, after float64) (float64, bool) {
	for i := 1; i < len(r.T); i++ {
		if r.T[i] < after {
			continue
		}
		a, b := r.Voltage(i-1, n), r.Voltage(i, n)
		if rising && a < v && b >= v || !rising && a > v && b <= v {
			f := (v - a) / (b - a)
			return r.T[i-1] + (r.T[i]-r.T[i-1])*f, true
		}
	}
	return 0, false
}

// randomResult builds a Result with nn nodes and samples strictly
// ascending in time, voltages wandering within [-0.2, 1.3] so threshold
// crossings at typical levels are common but not guaranteed.
func randomResult(rng *rand.Rand, nn, samples int) *Result {
	r := &Result{nn: nn}
	t := 0.0
	vs := make([]float64, nn)
	for j := range vs {
		vs[j] = rng.Float64()
	}
	for i := 0; i < samples; i++ {
		t += 1e-12 * (0.1 + rng.Float64())
		for j := range vs {
			vs[j] += 0.4 * (rng.Float64() - 0.5)
			if vs[j] < -0.2 {
				vs[j] = -0.2
			}
			if vs[j] > 1.3 {
				vs[j] = 1.3
			}
		}
		r.appendSample(t, vs)
	}
	return r
}

// TestCrossMatchesLinearScan drives Result.Cross (binary-searched start
// point) against the linear reference on randomized waveforms, thresholds
// and start times, in both directions.
func TestCrossMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		nn := 1 + rng.Intn(3)
		samples := 2 + rng.Intn(60)
		r := randomResult(rng, nn, samples)
		for probe := 0; probe < 20; probe++ {
			n := NodeID(rng.Intn(nn))
			v := -0.3 + 1.8*rng.Float64()
			rising := rng.Intn(2) == 0
			// after: inside the trace, before it, or past its end.
			var after float64
			switch rng.Intn(4) {
			case 0:
				after = 0
			case 1:
				after = r.T[len(r.T)-1] * 1.1
			default:
				after = r.T[0] + (r.T[len(r.T)-1]-r.T[0])*rng.Float64()
			}
			gt, gok := r.Cross(n, v, rising, after)
			wt, wok := crossLinear(r, n, v, rising, after)
			if gok != wok || (gok && gt != wt) {
				t.Fatalf("trial %d probe %d: Cross(n=%d v=%v rising=%v after=%v) = (%v, %v), linear scan = (%v, %v)",
					trial, probe, n, v, rising, after, gt, gok, wt, wok)
			}
			if gok && gt < after && after <= r.T[len(r.T)-1] {
				// A crossing in the pair straddling 'after' may start
				// before it; the interpolated time must still come from
				// a segment ending at or after 'after'.
				i := 1
				for ; i < len(r.T) && r.T[i] < after; i++ {
				}
				if i < len(r.T) && gt < r.T[i-1] {
					t.Fatalf("trial %d: crossing at %v before segment start %v", trial, gt, r.T[i-1])
				}
			}
		}
	}
}

// TestCrossKnownWaveform pins Cross behavior on a hand-built ramp.
func TestCrossKnownWaveform(t *testing.T) {
	r := &Result{nn: 1}
	for i := 0; i <= 10; i++ {
		r.appendSample(float64(i), []float64{float64(i) / 10})
	}
	ct, ok := r.Cross(0, 0.55, true, 0)
	if !ok || ct < 5.5-1e-9 || ct > 5.5+1e-9 {
		t.Errorf("rising cross = %v, %v; want 5.5, true", ct, ok)
	}
	if _, ok := r.Cross(0, 0.55, false, 0); ok {
		t.Error("found a falling crossing on a rising ramp")
	}
	// after=6 still sees the [5,6] segment (it ends at 'after'); after=7
	// starts past the crossing entirely.
	if _, ok := r.Cross(0, 0.55, true, 7); ok {
		t.Error("found a crossing after it already happened")
	}
	if _, ok := r.Cross(0, 2.0, true, 0); ok {
		t.Error("crossed a level above the waveform")
	}
}
