package spice

import (
	"context"
	"math/rand"
	"testing"

	"ageguard/internal/units"
)

// TestTransientAllocsPerStep pins the zero-allocation contract of the
// stepping loop: once the solver pool is warm, a whole transient run
// allocates only the escaping Result (header, time axis, sample arena) —
// a handful of allocations regardless of how many steps it takes, so the
// per-accepted-step rate must be ~0.
func TestTransientAllocsPerStep(t *testing.T) {
	c, in, _ := inverter(4*units.FF, 0, 1, 0, 1)
	t0 := 100 * units.Ps
	c.Drive(in, Ramp{T0: t0, Slew: 100 * units.Ps, V0: 0, V1: vdd})
	tstop := 2 * units.Ns
	opts := Options{MaxStep: 10 * units.Ps}

	var steps int
	run := func() {
		res, err := c.Run(context.Background(), tstop, opts)
		if err != nil {
			t.Fatal(err)
		}
		steps = res.Samples() - 1
	}
	run() // warm: compile, pool, metric names
	allocs := testing.AllocsPerRun(20, run)
	if steps < 100 {
		t.Fatalf("transient too short to be meaningful: %d steps", steps)
	}
	// The Result escapes (header + 2 slice pre-allocations) and the pool
	// can be emptied by a GC mid-measurement; 16 allocations per *run*
	// leaves room for both while still proving the loop itself is clean.
	if allocs > 16 {
		t.Errorf("transient run allocated %.0f times (%d steps)", allocs, steps)
	}
	if perStep := allocs / float64(steps); perStep > 0.1 {
		t.Errorf("%.3f allocs per accepted step, want ~0", perStep)
	}
}

// TestCrossBinarySearchMatchesLinearScan is the regression guard for the
// binary-search 'after' seek in Result.Cross: on randomized waveforms it
// must return exactly what the straightforward linear scan returns, for
// both directions and for 'after' values before, inside and beyond the
// trace.
func TestCrossBinarySearchMatchesLinearScan(t *testing.T) {
	linearCross := func(r *Result, n NodeID, v float64, rising bool, after float64) (float64, bool) {
		for i := 1; i < len(r.T); i++ {
			if r.T[i] < after {
				continue
			}
			a, b := r.Voltage(i-1, n), r.Voltage(i, n)
			if rising && a < v && b >= v || !rising && a > v && b <= v {
				f := (v - a) / (b - a)
				return units.Lerp(r.T[i-1], r.T[i], f), true
			}
		}
		return 0, false
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		ns := 2 + rng.Intn(40)
		r := &Result{nn: 1}
		tt := 0.0
		for i := 0; i < ns; i++ {
			tt += rng.Float64()
			r.T = append(r.T, tt)
			r.v = append(r.v, rng.Float64()*2-1)
		}
		for _, rising := range []bool{true, false} {
			v := rng.Float64()*2 - 1
			for _, after := range []float64{-1, 0, r.T[0], tt * rng.Float64(), r.T[ns-1], tt + 1} {
				gt, gok := r.Cross(0, v, rising, after)
				wt, wok := linearCross(r, 0, v, rising, after)
				if gt != wt || gok != wok {
					t.Fatalf("trial %d rising=%v after=%v: Cross = (%v,%v), linear scan = (%v,%v)",
						trial, rising, after, gt, gok, wt, wok)
				}
			}
		}
	}
}
