package spice

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ageguard/internal/obs"
	"ageguard/internal/units"
)

// TestClassify maps representative errors onto their failure classes,
// through wrapping layers.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, FailNone},
		{ErrNoConvergence, FailConvergence},
		{fmt.Errorf("arc: %w", fmt.Errorf("point: %w", ErrNoConvergence)), FailConvergence},
		{context.Canceled, FailCanceled},
		{context.DeadlineExceeded, FailCanceled},
		{fmt.Errorf("run: %w", context.Canceled), FailCanceled},
		{errors.New("output did not cross 50%"), FailOther},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestEscalate: rung 0 leaves options untouched; later rungs shrink the
// step bounds and voltage targets geometrically, with the Newton clamp
// floored at 0.05 V.
func TestEscalate(t *testing.T) {
	o := Options{MaxStep: 16 * units.Ps, MinStep: 1e-14, DVTarget: 0.04, NewtonClamp: 0.4}
	if got := o.escalate(units.Ns, 0); got.MaxStep != o.MaxStep || got.MinStep != o.MinStep ||
		got.DVTarget != o.DVTarget || got.NewtonClamp != o.NewtonClamp {
		t.Errorf("rung 0 changed options: %+v", got)
	}
	e := o.escalate(units.Ns, 2)
	if e.MaxStep != o.MaxStep/16 {
		t.Errorf("rung 2 MaxStep = %g, want %g", e.MaxStep, o.MaxStep/16)
	}
	if e.MinStep != o.MinStep/256 {
		t.Errorf("rung 2 MinStep = %g, want %g", e.MinStep, o.MinStep/256)
	}
	if e.DVTarget != o.DVTarget/4 {
		t.Errorf("rung 2 DVTarget = %g, want %g", e.DVTarget, o.DVTarget/4)
	}
	if e.NewtonClamp != 0.1 {
		t.Errorf("rung 2 NewtonClamp = %g, want 0.1", e.NewtonClamp)
	}
	if deep := o.escalate(units.Ns, 6); deep.NewtonClamp != 0.05 {
		t.Errorf("deep rung NewtonClamp = %g, want floor 0.05", deep.NewtonClamp)
	}
	// Escalating zero-valued options fills defaults first, so each rung is
	// strictly more conservative than the defaulted first attempt.
	d := Options{}.escalate(units.Ns, 1)
	if d.MaxStep >= units.Ns/200 {
		t.Errorf("escalated default MaxStep = %g, want < %g", d.MaxStep, units.Ns/200)
	}
}

// TestRetryRecovers injects non-convergence on the first two rungs and
// verifies the third succeeds, with the recovery metrics recorded.
func TestRetryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	ckt, _, _ := inverter(units.FF, 0, 1, 0, 1)
	var rungs []int
	opts := Options{
		MaxStep: 25 * units.Ps,
		FaultHook: func(attempt int) error {
			rungs = append(rungs, attempt)
			if attempt < 2 {
				return ErrNoConvergence
			}
			return nil
		},
	}
	res, err := ckt.RunRetry(ctx, units.Ns, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.T) == 0 {
		t.Error("recovered transient produced no waveform")
	}
	if want := []int{0, 1, 2}; fmt.Sprint(rungs) != fmt.Sprint(want) {
		t.Errorf("attempt rungs = %v, want %v", rungs, want)
	}
	if n := reg.Counter("spice.retry.recovered").Value(); n != 1 {
		t.Errorf("spice.retry.recovered = %d, want 1", n)
	}
	if n := reg.Counter("spice.retry.attempts").Value(); n != 2 {
		t.Errorf("spice.retry.attempts = %d, want 2", n)
	}
	if n := reg.Counter("spice.retry.exhausted").Value(); n != 0 {
		t.Errorf("spice.retry.exhausted = %d, want 0", n)
	}
	if n := reg.Counter("spice.faults.injected").Value(); n != 2 {
		t.Errorf("spice.faults.injected = %d, want 2", n)
	}
}

// TestRetryExhausted: a fault on every rung exhausts the ladder; the
// error still matches ErrNoConvergence and the exhaustion is counted.
func TestRetryExhausted(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	ckt, _, _ := inverter(units.FF, 0, 1, 0, 1)
	opts := Options{
		MaxStep:   25 * units.Ps,
		FaultHook: func(int) error { return ErrNoConvergence },
	}
	_, err := ckt.RunRetry(ctx, units.Ns, opts, 2)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("got %v, want ErrNoConvergence", err)
	}
	if n := reg.Counter("spice.retry.exhausted").Value(); n != 1 {
		t.Errorf("spice.retry.exhausted = %d, want 1", n)
	}
	if n := reg.Counter("spice.retry.attempts").Value(); n != 2 {
		t.Errorf("spice.retry.attempts = %d, want 2", n)
	}
	if n := reg.Counter("spice.retry.recovered").Value(); n != 0 {
		t.Errorf("spice.retry.recovered = %d, want 0", n)
	}
}

// TestRetryZeroBehavesLikeRun: retries <= 0 returns the first failure
// unwrapped by any ladder message.
func TestRetryZeroBehavesLikeRun(t *testing.T) {
	ckt, _, _ := inverter(units.FF, 0, 1, 0, 1)
	calls := 0
	opts := Options{
		MaxStep:   25 * units.Ps,
		FaultHook: func(int) error { calls++; return ErrNoConvergence },
	}
	_, err := ckt.RunRetry(context.Background(), units.Ns, opts, 0)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("got %v, want ErrNoConvergence", err)
	}
	if calls != 1 {
		t.Errorf("ran %d attempts with retries=0, want 1", calls)
	}
}

// TestNoRetryOnNonConvergence: deterministic (non-convergence-class)
// failures never climb the ladder.
func TestNoRetryOnOtherFailure(t *testing.T) {
	ckt, _, _ := inverter(units.FF, 0, 1, 0, 1)
	boom := errors.New("deterministic structural failure")
	calls := 0
	opts := Options{
		MaxStep:   25 * units.Ps,
		FaultHook: func(int) error { calls++; return boom },
	}
	_, err := ckt.RunRetry(context.Background(), units.Ns, opts, 3)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected error", err)
	}
	if calls != 1 {
		t.Errorf("ran %d attempts for a non-retryable failure, want 1", calls)
	}
}

// TestNoRetryOnCancel: cancellation propagates immediately without
// consuming ladder rungs.
func TestNoRetryOnCancel(t *testing.T) {
	ckt, _, _ := inverter(units.FF, 0, 1, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	opts := Options{
		MaxStep:   25 * units.Ps,
		FaultHook: func(int) error { calls++; return nil },
	}
	_, err := ckt.RunRetry(ctx, units.Ns, opts, 3)
	if Classify(err) != FailCanceled {
		t.Fatalf("got %v (class %v), want a canceled-class error", err, Classify(err))
	}
	if calls > 1 {
		t.Errorf("canceled run consumed %d attempts, want at most 1", calls)
	}
}
