// Package spice implements a compact transistor-level transient circuit
// simulator — the reproduction's substitute for HSPICE in the paper's
// library-characterization flow (Fig. 4a).
//
// It performs nodal analysis with Backward-Euler integration and damped
// Newton-Raphson solution of the nonlinear system at each time step.
// Supported elements are MOSFETs (package device), capacitors, resistors
// and driven voltage nodes with arbitrary waveforms. Circuits of interest
// are standard cells (4-30 transistors, <25 nodes), so a dense LU solver
// is used.
//
// Crucially for the paper's argument, the simulator resolves contention
// (short-circuit) currents between partially-on pull-up and pull-down
// networks during slow input ramps. This is the physical mechanism that
// makes the delay impact of BTI depend on the operating conditions (input
// slew, output load) of each gate, and it emerges here from the device
// equations rather than being modelled explicitly.
//
// # Concurrency
//
// The package holds no global mutable state, so independent Circuit
// instances may be built and Run concurrently from many goroutines — this
// is what the parallel characterizer (package char) relies on: one private
// Circuit per transient simulation. A single Circuit, however, is NOT safe
// for concurrent use: Run mutates solver bookkeeping stored on the circuit
// (node unknown indices), and element constructors append to its slices.
// Waveform implementations passed to Drive must be stateless (the provided
// DC and Ramp are), and device.Params.Ids must stay pure (it is).
package spice

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/obs"
	"ageguard/internal/units"
)

// NodeID identifies a circuit node. The zero value is the ground node of
// the circuit that created it.
type NodeID int

type nodeKind int

const (
	kindFree nodeKind = iota
	kindGround
	kindSupply
	kindDriven
)

type node struct {
	name string
	kind nodeKind
	wave Waveform // for kindDriven
	idx  int      // unknown index for kindFree, else -1
}

type mosInst struct {
	p       device.Params
	d, g, s NodeID
}

type capInst struct {
	a, b NodeID
	c    float64
}

type resInst struct {
	a, b NodeID
	g    float64 // conductance
}

// Circuit is a device-level circuit under construction. Create with New,
// add elements, then call Run. A Circuit must be confined to one goroutine
// (or externally synchronized), but any number of distinct Circuits may be
// used concurrently — see the package documentation.
type Circuit struct {
	vdd   float64
	nodes []node
	mos   []mosInst
	caps  []capInst
	res   []resInst
}

// New returns an empty circuit with ground (NodeID 0) and a supply node
// (NodeID 1) fixed at vdd volts.
func New(vdd float64) *Circuit {
	return &Circuit{
		vdd: vdd,
		nodes: []node{
			{name: "gnd", kind: kindGround, idx: -1},
			{name: "vdd", kind: kindSupply, idx: -1},
		},
	}
}

// Gnd returns the ground node.
func (c *Circuit) Gnd() NodeID { return 0 }

// Vdd returns the supply node.
func (c *Circuit) Vdd() NodeID { return 1 }

// Supply returns the supply voltage the circuit was created with.
func (c *Circuit) Supply() float64 { return c.vdd }

// Node creates a new free (solved-for) node with the given name.
func (c *Circuit) Node(name string) NodeID {
	c.nodes = append(c.nodes, node{name: name, kind: kindFree, idx: -1})
	return NodeID(len(c.nodes) - 1)
}

// NodeName returns the name given to n at creation.
func (c *Circuit) NodeName(n NodeID) string { return c.nodes[n].name }

// NumNodes returns the total node count including ground and supply.
func (c *Circuit) NumNodes() int { return len(c.nodes) }

// Drive converts node n into a driven node following waveform w.
// Driving ground or supply is an error surfaced at Run time.
func (c *Circuit) Drive(n NodeID, w Waveform) {
	c.nodes[n].kind = kindDriven
	c.nodes[n].wave = w
}

// Input creates a new driven node with the given waveform.
func (c *Circuit) Input(name string, w Waveform) NodeID {
	n := c.Node(name)
	c.Drive(n, w)
	return n
}

// MOS adds a MOSFET with the given parameters between drain d, gate g and
// source s. The device's gate and drain parasitic capacitances are added
// automatically (gate-to-ground and drain-to-ground lumps).
func (c *Circuit) MOS(p device.Params, d, g, s NodeID) {
	c.mos = append(c.mos, mosInst{p: p, d: d, g: g, s: s})
	if p.CGate > 0 {
		c.C(g, c.Gnd(), p.CGate)
	}
	if p.CDrain > 0 {
		c.C(d, c.Gnd(), p.CDrain)
		// Source diffusion contributes a comparable junction cap.
		c.C(s, c.Gnd(), p.CDrain)
	}
}

// C adds a capacitor of value farads between nodes a and b.
func (c *Circuit) C(a, b NodeID, farads float64) {
	if farads <= 0 {
		return
	}
	c.caps = append(c.caps, capInst{a: a, b: b, c: farads})
}

// R adds a resistor of value ohms between nodes a and b.
func (c *Circuit) R(a, b NodeID, ohms float64) {
	c.res = append(c.res, resInst{a: a, b: b, g: 1 / ohms})
}

// Options tunes the transient analysis. The zero value selects defaults
// suitable for standard-cell characterization.
type Options struct {
	MaxStep  float64 // largest time step [s]; default tstop/200
	MinStep  float64 // smallest step before giving up [s]; default 1e-16
	DVTarget float64 // per-step voltage change target [V]; default 0.03
	// NewtonClamp limits each Newton voltage update [V]; default 0.4.
	// Smaller values damp the iteration harder: slower convergence on
	// well-behaved circuits, but far more robust on stiff ones — the
	// retry ladder lowers it rung by rung.
	NewtonClamp float64
	InitV       func(name string) (float64, bool)
	// InitV optionally provides initial voltages for free nodes by name;
	// unspecified nodes start at 0 V.

	// FaultHook, when non-nil, is consulted at the start of every
	// transient attempt with the escalation-ladder rung (0 = first try,
	// see RunRetry). A non-nil return aborts the attempt with that
	// error exactly as if the solver had failed. It is a deterministic
	// fault-injection seam for exercising retry/salvage/resume paths in
	// tests; production configurations leave it nil.
	FaultHook func(attempt int) error

	// FiniteDiffJacobian selects the legacy finite-difference MOS
	// Jacobian (one Ids evaluation per free terminal per Newton
	// iteration) instead of the analytic device.IdsDeriv stamps. The
	// residual — and therefore the converged waveform — is the same
	// either way; this escape hatch exists to cross-check the analytic
	// derivatives end to end (differential tests characterize the full
	// cell catalog in both modes) and to debug suspected derivative
	// regressions after compact-model changes. Default false (analytic).
	FiniteDiffJacobian bool

	attempt int // escalation-ladder rung, set by RunRetry
}

func (o *Options) fill(tstop float64) {
	if o.MaxStep == 0 {
		o.MaxStep = tstop / 200
	}
	if o.MinStep == 0 {
		o.MinStep = 1e-16
	}
	if o.DVTarget == 0 {
		o.DVTarget = 0.03
	}
	if o.NewtonClamp == 0 {
		o.NewtonClamp = 0.4
	}
}

// Result holds sampled waveforms for every node of a transient run.
// Voltages are stored in one flat arena (stride = node count) appended to
// in place as steps are accepted, so the transient loop performs no
// per-step slice allocation; read them through At, Voltage, Final, Cross
// and Slew.
type Result struct {
	c  *Circuit
	T  []float64 // sample times, ascending
	nn int       // voltages per sample (total node count)
	v  []float64 // flat sample arena: sample i starts at i*nn
}

// Samples returns the number of recorded time samples.
func (r *Result) Samples() int { return len(r.T) }

// Voltage returns the voltage of node n at sample index i.
func (r *Result) Voltage(i int, n NodeID) float64 { return r.v[i*r.nn+int(n)] }

// ErrNoConvergence is returned when Newton iteration fails even at the
// minimum time step.
var ErrNoConvergence = errors.New("spice: newton iteration did not converge")

// Run performs a transient analysis from t=0 to tstop. The circuit
// is first settled: a DC-like relaxation with all waveforms held at their
// t=0 values, so feedback structures (latches) reach a consistent state
// before time begins.
//
// Cancellation of ctx is honoured at every time step, so an interrupted
// sweep stops within one simulation step; the error then matches both
// conc.ErrCanceled and the context's own error. Solver effort (accepted
// and rejected steps, Newton iterations, wall time) is recorded into the
// metrics registry carried by ctx (obs.From).
func (c *Circuit) Run(ctx context.Context, tstop float64, opts Options) (*Result, error) {
	reg := obs.From(ctx)
	s := acquireSolver(reg)
	defer s.release()
	return c.runTransient(ctx, tstop, opts, s, reg)
}

// runTransient performs one transient attempt on a caller-owned solver.
// The solver's compiled stamp program is reused when it already belongs
// to this circuit (the retry ladder passes one solver through every
// rung); only the voltage state is reinitialized per attempt.
func (c *Circuit) runTransient(ctx context.Context, tstop float64, opts Options, s *solver, reg *obs.Registry) (*Result, error) {
	opts.fill(tstop)
	if s.c != c {
		s.compile(c)
	}
	s.initState(opts)
	if opts.FiniteDiffJacobian {
		reg.Counter("spice.jacobian.fd").Inc()
	} else {
		reg.Counter("spice.jacobian.analytic").Inc()
	}

	t0 := time.Now()
	accepted, rejected := int64(0), int64(0)
	defer func() {
		reg.Counter("spice.transients").Inc()
		reg.Counter("spice.steps.accepted").Add(accepted)
		reg.Counter("spice.steps.rejected").Add(rejected)
		reg.Counter("spice.newton.iterations").Add(s.iters)
		reg.Histogram("spice.transient.seconds").Since(t0)
	}()

	// Check before the DC settle: it is the most expensive single solve of
	// the run, and a canceled caller should not pay for it.
	if err := ctx.Err(); err != nil {
		reg.Counter("spice.canceled").Inc()
		return nil, fmt.Errorf("spice: transient canceled before settle: %w",
			conc.WrapCanceled(err))
	}
	if opts.FaultHook != nil {
		if err := opts.FaultHook(opts.attempt); err != nil {
			reg.Counter("spice.faults.injected").Inc()
			if errors.Is(err, ErrNoConvergence) {
				reg.Counter("spice.noconverge").Inc()
			}
			return nil, fmt.Errorf("injected fault (attempt %d): %w", opts.attempt, err)
		}
	}
	if err := s.settle(); err != nil {
		reg.Counter("spice.noconverge").Inc()
		return nil, err
	}
	// Pre-size the sample arena for the expected step count; adaptive
	// stepping may exceed it, in which case append's amortized doubling
	// takes over.
	est := int(tstop/opts.MaxStep) + 16
	res := &Result{
		c:  c,
		nn: len(c.nodes),
		T:  make([]float64, 0, 2*est),
		v:  make([]float64, 0, 2*est*len(c.nodes)),
	}
	res.appendSample(0, s.vPrev)
	t, h := 0.0, opts.MaxStep/16
	for t < tstop {
		if err := ctx.Err(); err != nil {
			reg.Counter("spice.canceled").Inc()
			return nil, fmt.Errorf("spice: transient canceled at t=%s: %w",
				units.PsString(t), conc.WrapCanceled(err))
		}
		if t+h > tstop {
			h = tstop - t
		}
		ok, dvmax := s.step(t+h, h)
		switch {
		case !ok:
			rejected++
			h /= 4
			if h < opts.MinStep {
				reg.Counter("spice.noconverge").Inc()
				return nil, fmt.Errorf("%w at t=%s", ErrNoConvergence, units.PsString(t))
			}
		case dvmax > 2*opts.DVTarget && h > 64*opts.MinStep:
			s.reject()
			rejected++
			h /= 2
		default:
			s.acceptStep(h)
			accepted++
			t += h
			res.appendSample(t, s.vPrev)
			if dvmax < opts.DVTarget/4 {
				h = math.Min(h*1.5, opts.MaxStep)
			}
		}
	}
	return res, nil
}

// appendSample records one accepted time sample by copying v (the
// committed node voltages) onto the end of the flat arena.
func (r *Result) appendSample(t float64, v []float64) {
	r.T = append(r.T, t)
	r.v = append(r.v, v...)
}

// At returns the voltage of node n at time t by linear interpolation.
func (r *Result) At(n NodeID, t float64) float64 {
	ts := r.T
	if t <= ts[0] {
		return r.Voltage(0, n)
	}
	if t >= ts[len(ts)-1] {
		return r.Voltage(len(ts)-1, n)
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, len(ts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - ts[lo]) / (ts[hi] - ts[lo])
	return units.Lerp(r.Voltage(lo, n), r.Voltage(hi, n), f)
}

// Final returns the last sampled voltage of node n.
func (r *Result) Final(n NodeID) float64 { return r.Voltage(len(r.T)-1, n) }

// Cross returns the first time after 'after' at which node n crosses
// voltage v in the given direction (rising: from below to at-or-above).
// ok is false if no crossing is found. The scan starts at the first
// sample at or after 'after' (binary search, not a walk from t=0), so
// measuring a late transition does not pay for the whole trace; Slew
// calls Cross twice per measurement.
func (r *Result) Cross(n NodeID, v float64, rising bool, after float64) (t float64, ok bool) {
	// First candidate pair (i-1, i) has T[i] >= after.
	i := sort.SearchFloat64s(r.T, after)
	if i < 1 {
		i = 1
	}
	for ; i < len(r.T); i++ {
		a, b := r.Voltage(i-1, n), r.Voltage(i, n)
		if rising && a < v && b >= v || !rising && a > v && b <= v {
			f := (v - a) / (b - a)
			return units.Lerp(r.T[i-1], r.T[i], f), true
		}
	}
	return 0, false
}

// Slew measures the 20%-80% transition time of node n (for the first
// transition in the given direction after 'after'), scaled by 1/0.6 to a
// full-swing-equivalent slew — the same convention used for input ramps,
// so characterized output slews can be fed back as input slews.
func (r *Result) Slew(n NodeID, vdd float64, rising bool, after float64) (float64, bool) {
	lo, hi := 0.2*vdd, 0.8*vdd
	var t1, t2 float64
	var ok bool
	if rising {
		if t1, ok = r.Cross(n, lo, true, after); !ok {
			return 0, false
		}
		if t2, ok = r.Cross(n, hi, true, t1); !ok {
			return 0, false
		}
	} else {
		if t1, ok = r.Cross(n, hi, false, after); !ok {
			return 0, false
		}
		if t2, ok = r.Cross(n, lo, false, t1); !ok {
			return 0, false
		}
	}
	return (t2 - t1) / 0.6, true
}
