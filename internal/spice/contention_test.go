package spice

import (
	"context"
	"math"
	"testing"

	"ageguard/internal/device"
	"ageguard/internal/units"
)

// nand2 wires a CMOS NAND2 with the given device degradations.
func nand2(load float64, degP, degN func(device.Params) device.Params) (*Circuit, NodeID, NodeID, NodeID) {
	tech := device.Default45()
	c := New(vdd)
	a := c.Node("a")
	b := c.Node("b")
	out := c.Node("out")
	mid := c.Node("mid")
	nm1 := degN(tech.Transistor(device.NMOS, 400*units.Nm))
	nm2 := degN(tech.Transistor(device.NMOS, 400*units.Nm))
	pm1 := degP(tech.Transistor(device.PMOS, 800*units.Nm))
	pm2 := degP(tech.Transistor(device.PMOS, 800*units.Nm))
	c.MOS(nm1, out, a, mid)
	c.MOS(nm2, mid, b, c.Gnd())
	c.MOS(pm1, out, a, c.Vdd())
	c.MOS(pm2, out, b, c.Vdd())
	c.C(out, c.Gnd(), load)
	return c, a, b, out
}

func ident(p device.Params) device.Params { return p }

// nandRiseDelay measures the output-rise delay for an input fall on pin a
// with b held high, at the given input slew.
func nandRiseDelay(t *testing.T, slew, load float64, degP, degN func(device.Params) device.Params) float64 {
	t.Helper()
	c, a, b, out := nand2(load, degP, degN)
	c.Drive(b, DC(vdd))
	t0 := 200 * units.Ps
	c.Drive(a, Ramp{T0: t0, Slew: slew, V0: vdd, V1: 0})
	res, err := c.Run(context.Background(), t0+slew+3*units.Ns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tout, ok := res.Cross(out, vdd/2, true, t0)
	if !ok {
		t.Fatal("no output rise")
	}
	return tout - (t0 + slew/2)
}

// TestContentionAmplifiesAging verifies, at the raw simulator level, the
// paper's central physical claim: the *relative* aging impact on a NAND's
// rise delay grows strongly with input slew because the slow ramp keeps
// the pull-down network conducting while the weakened pull-up fights it.
func TestContentionAmplifiesAging(t *testing.T) {
	degP := func(p device.Params) device.Params { return p.Degrade(0.065, 0.89) }
	degN := func(p device.Params) device.Params { return p.Degrade(0.031, 0.99) }
	load := 1 * units.FF
	rel := func(slew float64) float64 {
		fresh := nandRiseDelay(t, slew, load, ident, ident)
		aged := nandRiseDelay(t, slew, load, degP, degN)
		return (aged - fresh) / fresh
	}
	fast := rel(10 * units.Ps)
	slow := rel(500 * units.Ps)
	if slow < 2*fast {
		t.Errorf("slow-slew aging impact %.1f%% not much larger than fast %.1f%%",
			slow*100, fast*100)
	}
	if fast < 0.03 || fast > 0.5 {
		t.Errorf("fast-slew aging impact %.1f%% implausible", fast*100)
	}
}

// TestShortCircuitCurrentExists checks that during a slow input ramp both
// networks conduct: the output waveform dips/settles rather than switching
// rail-to-rail instantaneously, which is the mechanism behind the
// contention effects.
func TestShortCircuitCurrentExists(t *testing.T) {
	c, a, b, out := nand2(0.5*units.FF, ident, ident)
	c.Drive(b, DC(vdd))
	t0 := 100 * units.Ps
	slew := 900 * units.Ps
	c.Drive(a, Ramp{T0: t0, Slew: slew, V0: vdd, V1: 0})
	res, err := c.Run(context.Background(), t0+slew+1*units.Ns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The output must cross mid-rail while the input is still ramping:
	// during that interval both networks conduct (ratioed contention).
	tc, ok := res.Cross(out, vdd/2, true, t0)
	if !ok {
		t.Fatal("output never rose")
	}
	if tc >= t0+slew {
		t.Errorf("output crossed only after the ramp ended: no overlap window")
	}
	// And at the crossing instant the input is far from the rails.
	vin := res.At(a, tc)
	if vin < 0.1*vdd || vin > 0.9*vdd {
		t.Errorf("input at crossing = %.3fV: networks not simultaneously on", vin)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.fill(1e-9)
	if math.Abs(o.MaxStep-5e-12) > 1e-18 || o.MinStep <= 0 || o.DVTarget != 0.03 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{MaxStep: 1e-12, MinStep: 1e-15, DVTarget: 0.01}
	o2.fill(1e-9)
	if o2.MaxStep != 1e-12 || o2.MinStep != 1e-15 || o2.DVTarget != 0.01 {
		t.Error("explicit options overridden")
	}
}

func TestInitVRespected(t *testing.T) {
	// A floating node (only gmin to ground) holds its initial voltage for
	// a short run.
	c := New(vdd)
	n := c.Node("fl")
	c.C(n, c.Gnd(), 1*units.FF)
	res, err := c.Run(context.Background(), 10*units.Ps, Options{
		InitV: func(name string) (float64, bool) {
			if name == "fl" {
				return 0.7, true
			}
			return 0, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Final(n); math.Abs(v-0.7) > 0.01 {
		t.Errorf("InitV ignored: %v", v)
	}
}

func TestNodeNames(t *testing.T) {
	c := New(vdd)
	n := c.Node("foo")
	if c.NodeName(n) != "foo" || c.NodeName(c.Gnd()) != "gnd" || c.NodeName(c.Vdd()) != "vdd" {
		t.Error("node names wrong")
	}
	if c.Supply() != vdd {
		t.Error("supply wrong")
	}
	if c.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
}

func TestZeroCapIgnored(t *testing.T) {
	c := New(vdd)
	n := c.Node("x")
	c.C(n, c.Gnd(), 0)
	c.C(n, c.Gnd(), -1)
	if len(c.caps) != 0 {
		t.Error("non-positive caps should be ignored")
	}
}
