package spice

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"ageguard/internal/device"
	"ageguard/internal/units"
)

const vdd = 1.1

// inverter wires a CMOS inverter with the given load and aged device
// parameters and returns (circuit, in, out).
func inverter(load float64, dvthP, muP, dvthN, muN float64) (*Circuit, NodeID, NodeID) {
	tech := device.Default45()
	c := New(vdd)
	in := c.Node("in")
	out := c.Node("out")
	nm := tech.Transistor(device.NMOS, 400*units.Nm).Degrade(dvthN, muN)
	pm := tech.Transistor(device.PMOS, 800*units.Nm).Degrade(dvthP, muP)
	c.MOS(nm, out, in, c.Gnd())
	c.MOS(pm, out, in, c.Vdd())
	c.C(out, c.Gnd(), load)
	return c, in, out
}

func TestRCStepResponse(t *testing.T) {
	// 1kOhm + 10fF driven by a step: tau = 10ps; V(tau) ~ 63.2% of Vdd.
	c := New(vdd)
	in := c.Input("in", Ramp{T0: 10 * units.Ps, Slew: 0.01 * units.Ps, V0: 0, V1: vdd})
	out := c.Node("out")
	c.R(in, out, 1000)
	c.C(out, c.Gnd(), 10*units.FF)
	res, err := c.Run(context.Background(), 100*units.Ps, Options{MaxStep: 0.2 * units.Ps})
	if err != nil {
		t.Fatal(err)
	}
	got := res.At(out, 20*units.Ps) // one tau after the step
	want := vdd * (1 - math.Exp(-1))
	if math.Abs(got-want) > 0.03*vdd {
		t.Errorf("V(tau) = %v, want %v", got, want)
	}
	if f := res.Final(out); math.Abs(f-vdd) > 1e-3 {
		t.Errorf("final = %v, want %v", f, vdd)
	}
}

func TestInverterStatic(t *testing.T) {
	c, in, out := inverter(2*units.FF, 0, 1, 0, 1)
	c.Drive(in, DC(0))
	res, err := c.Run(context.Background(), 500*units.Ps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Final(out); math.Abs(v-vdd) > 0.01 {
		t.Errorf("inv(0) = %v, want %v", v, vdd)
	}
	c2, in2, out2 := inverter(2*units.FF, 0, 1, 0, 1)
	c2.Drive(in2, DC(vdd))
	res2, err := c2.Run(context.Background(), 500*units.Ps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res2.Final(out2); math.Abs(v) > 0.01 {
		t.Errorf("inv(1) = %v, want 0", v)
	}
}

// invDelay measures the input-rise (output-fall) 50%-50% delay.
func invDelay(t *testing.T, load, slew float64, dvthP, muP, dvthN, muN float64) float64 {
	t.Helper()
	c, in, out := inverter(load, dvthP, muP, dvthN, muN)
	t0 := 200 * units.Ps
	c.Drive(in, Ramp{T0: t0, Slew: slew, V0: 0, V1: vdd})
	res, err := c.Run(context.Background(), t0+slew+3*units.Ns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tin, ok := res.Cross(in, vdd/2, true, 0)
	if !ok {
		t.Fatal("no input crossing")
	}
	tout, ok := res.Cross(out, vdd/2, false, t0)
	if !ok {
		t.Fatal("no output crossing")
	}
	return tout - tin
}

func TestInverterDelayPlausible(t *testing.T) {
	d := invDelay(t, 2*units.FF, 20*units.Ps, 0, 1, 0, 1)
	// 45nm-class FO-ish inverter: a few ps.
	if d < 0.2*units.Ps || d > 50*units.Ps {
		t.Errorf("inverter delay = %s, implausible", units.PsString(d))
	}
}

func TestDelayIncreasesWithLoad(t *testing.T) {
	d1 := invDelay(t, 1*units.FF, 20*units.Ps, 0, 1, 0, 1)
	d2 := invDelay(t, 5*units.FF, 20*units.Ps, 0, 1, 0, 1)
	d3 := invDelay(t, 20*units.FF, 20*units.Ps, 0, 1, 0, 1)
	if !(d1 < d2 && d2 < d3) {
		t.Errorf("delay not monotone in load: %s %s %s",
			units.PsString(d1), units.PsString(d2), units.PsString(d3))
	}
}

func TestAgedInverterSlower(t *testing.T) {
	fresh := invDelay(t, 4*units.FF, 50*units.Ps, 0, 1, 0, 1)
	// Output fall is driven by the nMOS: degrade it.
	aged := invDelay(t, 4*units.FF, 50*units.Ps, 0, 1, 0.033, 0.99)
	if aged <= fresh {
		t.Errorf("aged fall delay %s not above fresh %s",
			units.PsString(aged), units.PsString(fresh))
	}
	rel := (aged - fresh) / fresh
	if rel > 0.5 {
		t.Errorf("aging impact %v%% implausibly large", rel*100)
	}
}

func TestOutputSlewMeasurement(t *testing.T) {
	c, in, out := inverter(10*units.FF, 0, 1, 0, 1)
	t0 := 100 * units.Ps
	c.Drive(in, Ramp{T0: t0, Slew: 20 * units.Ps, V0: 0, V1: vdd})
	res, err := c.Run(context.Background(), t0+4*units.Ns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Slew(out, vdd, false, t0)
	if !ok {
		t.Fatal("no output slew measured")
	}
	if s <= 0 || s > 1*units.Ns {
		t.Errorf("output slew = %s implausible", units.PsString(s))
	}
}

func TestTransmissionGatePassesBothRails(t *testing.T) {
	// TG with both gates on must pass 0 and Vdd to within a millivolt.
	tech := device.Default45()
	for _, level := range []float64{0, vdd} {
		c := New(vdd)
		src := c.Input("src", DC(level))
		out := c.Node("out")
		nm := tech.Transistor(device.NMOS, 200*units.Nm)
		pm := tech.Transistor(device.PMOS, 200*units.Nm)
		c.MOS(nm, out, c.Vdd(), src) // nMOS gate high
		c.MOS(pm, out, c.Gnd(), src) // pMOS gate low
		c.C(out, c.Gnd(), 1*units.FF)
		res, err := c.Run(context.Background(), 2*units.Ns, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if v := res.Final(out); math.Abs(v-level) > 2*units.MV {
			t.Errorf("TG output = %v, want %v", v, level)
		}
	}
}

func TestCrossLinearInterpolation(t *testing.T) {
	r := &Result{T: []float64{0, 1, 2}, nn: 1, v: []float64{0, 1, 0}}
	tc, ok := r.Cross(0, 0.5, true, 0)
	if !ok || math.Abs(tc-0.5) > 1e-12 {
		t.Errorf("rising cross = %v, %v", tc, ok)
	}
	tf, ok := r.Cross(0, 0.5, false, 0)
	if !ok || math.Abs(tf-1.5) > 1e-12 {
		t.Errorf("falling cross = %v, %v", tf, ok)
	}
	if _, ok := r.Cross(0, 2.0, true, 0); ok {
		t.Error("found impossible crossing")
	}
}

func TestWaveforms(t *testing.T) {
	r := Ramp{T0: 10, Slew: 10, V0: 0, V1: 1}
	for _, tc := range []struct{ t, want float64 }{{0, 0}, {10, 0}, {15, 0.5}, {20, 1}, {99, 1}} {
		if got := r.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Ramp.At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	p := PWL{T: []float64{0, 1, 2}, V: []float64{0, 1, 0}}
	if got := p.At(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PWL.At(0.5) = %v", got)
	}
	if got := p.At(-1); got != 0 {
		t.Errorf("PWL before first point = %v", got)
	}
	pu := Pulse{V0: 0, V1: 1, Delay: 10, Width: 20, Period: 50, Slew: 2}
	if got := pu.At(0); got != 0 {
		t.Errorf("Pulse.At(0) = %v", got)
	}
	if got := pu.At(11); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Pulse mid-edge = %v", got)
	}
	if got := pu.At(20); got != 1 {
		t.Errorf("Pulse high = %v", got)
	}
	if got := pu.At(45); got != 0 {
		t.Errorf("Pulse low = %v", got)
	}
	if got := pu.At(70); got != 1 {
		t.Errorf("Pulse second period high = %v", got)
	}
	if got := DC(0.7).At(123); got != 0.7 {
		t.Errorf("DC = %v", got)
	}
}

func TestResultAt(t *testing.T) {
	r := &Result{T: []float64{0, 2}, nn: 1, v: []float64{0, 2}}
	if got := r.At(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("At = %v", got)
	}
	if got := r.At(0, -5); got != 0 {
		t.Errorf("At before start = %v", got)
	}
	if got := r.At(0, 99); got != 2 {
		t.Errorf("At after end = %v", got)
	}
}

// TestConcurrentIndependentCircuits validates the documented concurrency
// contract: distinct Circuit instances built and Run from many goroutines
// (as the parallel characterizer does) share no state and produce results
// identical to serial runs. Run under -race this also proves the package
// has no hidden globals.
func TestConcurrentIndependentCircuits(t *testing.T) {
	loads := []float64{0.5 * units.FF, 2 * units.FF, 8 * units.FF, 20 * units.FF}
	simulate := func(load float64) (float64, error) {
		c, in, out := inverter(load, 0.03, 0.9, 0.02, 0.95)
		c.Drive(in, Ramp{T0: 50 * units.Ps, Slew: 100 * units.Ps, V0: 0, V1: vdd})
		res, err := c.Run(context.Background(), 2*units.Ns, Options{MaxStep: 25 * units.Ps})
		if err != nil {
			return 0, err
		}
		tf, ok := res.Cross(out, vdd/2, false, 50*units.Ps)
		if !ok {
			return 0, fmt.Errorf("no output crossing at load %v", load)
		}
		return tf, nil
	}
	want := make([]float64, len(loads))
	for i, l := range loads {
		w, err := simulate(l)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	const replicas = 8
	var wg sync.WaitGroup
	got := make([]float64, len(loads)*replicas)
	errs := make([]error, len(loads)*replicas)
	for r := 0; r < replicas; r++ {
		for i, l := range loads {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got[r*len(loads)+i], errs[r*len(loads)+i] = simulate(l)
			}()
		}
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", k, err)
		}
		if got[k] != want[k%len(loads)] {
			t.Errorf("concurrent run %d: crossing %v differs from serial %v",
				k, got[k], want[k%len(loads)])
		}
	}
}
