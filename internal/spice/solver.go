package spice

import (
	"fmt"
	"math"
	"sync"

	"ageguard/internal/device"
	"ageguard/internal/obs"
	"ageguard/internal/units"
)

// This file is the transient solver's hot path. Three decisions keep the
// per-Newton-iteration cost down (see DESIGN.md §5.3):
//
//   - per-element stamp programs are compiled once per run: every
//     resistor, capacitor and MOSFET carries the pre-resolved flat
//     Jacobian offsets of the cells it touches, so the assembly loop is
//     branch-light and performs no node-table lookups;
//   - the Jacobian is one row-major []float64 with a cache-friendly LU
//     kernel, not a [][]float64 of per-row allocations;
//   - MOS conductances come from the analytic derivatives of the compact
//     model (device.IdsDeriv, evaluated through the precomputed
//     device.Model form) instead of finite differences, and a linear
//     predictor seeds each Newton solve from the previous step's slope
//     (Options.FiniteDiffJacobian restores the legacy behaviour).
//
// Solver state is recycled through a sync.Pool (spice.pool.{hits,misses}).
// The pool is safe under the package's concurrency contract: each
// Run/RunRetry call owns its solver exclusively between
// acquire and release, and the retry ladder reuses one solver — including
// its compiled stamps — across all rungs.

// drivenStamp updates one driven node's voltage each time step.
type drivenStamp struct {
	node int32
	wave Waveform
}

// freeStamp is one solved-for node: its node-array index and the flat
// offset of its Jacobian diagonal (for the gmin conditioning term). The
// k-th freeStamp owns unknown k.
type freeStamp struct {
	node int32
	diag int32
}

// linStamp is a compiled resistor: conductance, terminal node indices,
// unknown rows (or -1) and the flat Jacobian offsets of the up-to-four
// cells it touches (-1 when the row or column is not an unknown).
type linStamp struct {
	a, b               int32
	ia, ib             int32
	paa, pab, pba, pbb int32
	g                  float64
}

// capStamp is a compiled capacitor (same layout, value instead of g).
type capStamp struct {
	a, b               int32
	ia, ib             int32
	paa, pab, pba, pbb int32
	c                  float64
}

// mosStamp is a compiled MOSFET: the precomputed compact model (hot,
// first for locality), terminal node indices, drain/gate/source unknown
// indices (-1 when fixed) and the flat offsets of the six Jacobian cells
// its conductances touch. The full Params is retained only for the
// finite-difference fallback path.
type mosStamp struct {
	m             device.Model
	d, g, s       int32
	id, ig, is    int32
	pdd, pdg, pds int32 // row id × columns (d, g, s)
	psd, psg, pss int32 // row is × columns (d, g, s)
	p             device.Params
}

// solver holds per-run mutable state: the compiled stamp program plus the
// Newton/LU scratch vectors. Instances are pooled; see acquireSolver.
type solver struct {
	c    *Circuit
	nn   int // total node count
	nu   int // unknown (free-node) count
	opts Options

	vPrev []float64 // committed node voltages (all nodes)
	vCur  []float64 // trial node voltages (all nodes)
	vOld  []float64 // committed voltages one accepted step back (predictor)
	jac   []float64 // nu×nu Jacobian, row-major
	rhs   []float64
	dx    []float64

	// Predictor state: linear extrapolation of the last accepted step
	// seeds the Newton iteration in analytic mode (see step). Disabled in
	// FiniteDiffJacobian mode to preserve the legacy trajectory exactly.
	predict  bool
	havePrev bool
	hPrev    float64

	driven []drivenStamp
	frees  []freeStamp
	lins   []linStamp
	caps   []capStamp
	mos    []mosStamp

	iters int64 // Newton iterations performed (incl. settle), for metrics
}

// solverPool recycles solver state across transient runs. Entries hold no
// circuit references between uses (release clears them), so pooled
// solvers never pin caller-owned waveforms or circuits.
var solverPool sync.Pool

// acquireSolver returns a pooled solver (or a fresh one) and records the
// pool outcome in the run's metrics registry.
func acquireSolver(reg *obs.Registry) *solver {
	if v := solverPool.Get(); v != nil {
		reg.Counter("spice.pool.hits").Inc()
		return v.(*solver)
	}
	reg.Counter("spice.pool.misses").Inc()
	return &solver{}
}

// release returns the solver to the pool, dropping all references to the
// circuit it ran so the pool retains only float scratch.
func (s *solver) release() {
	s.c = nil
	for i := range s.driven {
		s.driven[i].wave = nil
	}
	s.driven = s.driven[:0]
	solverPool.Put(s)
}

// growF resizes a float scratch slice to n, reusing capacity.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// compile assigns unknown indices to the circuit's free nodes and builds
// the stamp program. It runs once per acquire (the retry ladder reuses
// the compiled program across rungs); elements that touch no unknown are
// dropped entirely — they cannot contribute to the system.
func (s *solver) compile(c *Circuit) {
	s.c = c
	s.nn = len(c.nodes)
	nu := 0
	for i := range c.nodes {
		if c.nodes[i].kind == kindFree {
			c.nodes[i].idx = nu
			nu++
		} else {
			c.nodes[i].idx = -1
		}
	}
	s.nu = nu
	s.vPrev = growF(s.vPrev, s.nn)
	s.vCur = growF(s.vCur, s.nn)
	s.vOld = growF(s.vOld, s.nn)
	s.jac = growF(s.jac, nu*nu)
	s.rhs = growF(s.rhs, nu)
	s.dx = growF(s.dx, nu)

	pos := func(row, col int32) int32 {
		if row < 0 || col < 0 {
			return -1
		}
		return row*int32(nu) + col
	}
	idx := func(n NodeID) int32 { return int32(c.nodes[n].idx) }

	s.driven = s.driven[:0]
	s.frees = s.frees[:0]
	for i, nd := range c.nodes {
		switch nd.kind {
		case kindDriven:
			s.driven = append(s.driven, drivenStamp{node: int32(i), wave: nd.wave})
		case kindFree:
			k := int32(nd.idx)
			s.frees = append(s.frees, freeStamp{node: int32(i), diag: pos(k, k)})
		}
	}
	s.lins = s.lins[:0]
	for _, r := range c.res {
		ia, ib := idx(r.a), idx(r.b)
		if ia < 0 && ib < 0 {
			continue
		}
		s.lins = append(s.lins, linStamp{
			a: int32(r.a), b: int32(r.b), ia: ia, ib: ib,
			paa: pos(ia, ia), pab: pos(ia, ib), pba: pos(ib, ia), pbb: pos(ib, ib),
			g: r.g,
		})
	}
	s.caps = s.caps[:0]
	for _, cp := range c.caps {
		ia, ib := idx(cp.a), idx(cp.b)
		if ia < 0 && ib < 0 {
			continue
		}
		s.caps = append(s.caps, capStamp{
			a: int32(cp.a), b: int32(cp.b), ia: ia, ib: ib,
			paa: pos(ia, ia), pab: pos(ia, ib), pba: pos(ib, ia), pbb: pos(ib, ib),
			c: cp.c,
		})
	}
	s.mos = s.mos[:0]
	for _, m := range c.mos {
		id, ig, is := idx(m.d), idx(m.g), idx(m.s)
		if id < 0 && is < 0 {
			continue
		}
		s.mos = append(s.mos, mosStamp{
			m: m.p.Model(),
			p: m.p, d: int32(m.d), g: int32(m.g), s: int32(m.s),
			id: id, ig: ig, is: is,
			pdd: pos(id, id), pdg: pos(id, ig), pds: pos(id, is),
			psd: pos(is, id), psg: pos(is, ig), pss: pos(is, is),
		})
	}
}

// initState resets the committed voltages to the t=0 state for a fresh
// transient attempt (each retry rung restarts from here) and installs the
// attempt's options.
func (s *solver) initState(opts Options) {
	s.opts = opts
	s.iters = 0
	s.predict = !opts.FiniteDiffJacobian
	s.havePrev = false
	for i, nd := range s.c.nodes {
		switch nd.kind {
		case kindGround:
			s.vPrev[i] = 0
		case kindSupply:
			s.vPrev[i] = s.c.vdd
		case kindDriven:
			s.vPrev[i] = nd.wave.At(0)
		default:
			s.vPrev[i] = 0
			if opts.InitV != nil {
				if v, ok := opts.InitV(nd.name); ok {
					s.vPrev[i] = v
				}
			}
		}
	}
	copy(s.vCur, s.vPrev)
}

// settle relaxes the circuit at t=0 by taking a sequence of large backward
// Euler steps with frozen inputs until the state stops changing.
func (s *solver) settle() error {
	const settleStep = 50 * units.Ps
	for iter := 0; iter < 400; iter++ {
		ok, dv := s.step(0, settleStep)
		if !ok {
			// Retry with a smaller pseudo-step; latches starting from
			// all-zero may need gentler relaxation.
			if ok2, _ := s.step(0, settleStep/100); !ok2 {
				return fmt.Errorf("%w during DC settle", ErrNoConvergence)
			}
		}
		s.accept()
		if ok && dv < 1e-7 {
			return nil
		}
	}
	return fmt.Errorf("%w: DC settle did not stabilize", ErrNoConvergence)
}

func (s *solver) accept() { copy(s.vPrev, s.vCur) }
func (s *solver) reject() { copy(s.vCur, s.vPrev) }

// acceptStep commits a transient step and records the (state, step-size)
// history the predictor extrapolates from. The DC settle uses plain
// accept, so the first transient step always starts unpredicted.
func (s *solver) acceptStep(h float64) {
	copy(s.vOld, s.vPrev)
	copy(s.vPrev, s.vCur)
	s.hPrev = h
	s.havePrev = true
}

// step attempts one backward-Euler step to absolute time t with step h.
// It returns whether Newton converged and the largest node-voltage change
// relative to the previous committed state.
func (s *solver) step(t, h float64) (bool, float64) {
	// Trial point: previous values everywhere (ground/supply are already
	// correct in vPrev), driven nodes advanced to the new time. With step
	// history available, free nodes start from a linear extrapolation of
	// the last accepted step instead — typically one Newton iteration
	// cheaper. The converged solution is unchanged (same residual, same
	// tolerance); only the iteration path differs, so the predictor is
	// disabled in FiniteDiffJacobian mode to keep the legacy trajectory
	// reproducible bit for bit.
	copy(s.vCur, s.vPrev)
	if s.predict && s.havePrev && s.hPrev > 0 {
		r := h / s.hPrev
		for k := range s.frees {
			n := s.frees[k].node
			s.vCur[n] += r * (s.vPrev[n] - s.vOld[n])
		}
	}
	for i := range s.driven {
		d := &s.driven[i]
		s.vCur[d.node] = d.wave.At(t)
	}
	const maxIter = 40
	clamp := s.opts.NewtonClamp
	for iter := 0; iter < maxIter; iter++ {
		s.iters++
		s.assemble(h)
		if !s.luSolve() {
			return false, 0
		}
		var dmax float64
		for k := range s.frees {
			// Voltage limiting stabilizes Newton on stiff MOS curves.
			d := units.Clamp(s.dx[k], -clamp, clamp)
			s.vCur[s.frees[k].node] += d
			if a := math.Abs(d); a > dmax {
				dmax = a
			}
		}
		if dmax < 1e-7 {
			var dv float64
			for i := range s.vCur {
				if a := math.Abs(s.vCur[i] - s.vPrev[i]); a > dv {
					dv = a
				}
			}
			return true, dv
		}
	}
	return false, 0
}

// assemble builds the Newton system J*dx = -F at the current trial point
// by executing the compiled stamp program. F_i is the sum of currents
// leaving free node i. MOS conductances are analytic (device.IdsDeriv)
// unless Options.FiniteDiffJacobian selects the legacy finite-difference
// evaluation; caps and resistors are always stamped analytically.
func (s *solver) assemble(h float64) {
	jac, rhs := s.jac, s.rhs
	for i := range jac {
		jac[i] = 0
	}
	for i := range rhs {
		rhs[i] = 0
	}
	vc, vp := s.vCur, s.vPrev

	// gmin to ground keeps isolated nodes well-conditioned.
	const gmin = 1e-12
	for k := range s.frees {
		f := &s.frees[k]
		rhs[k] -= gmin * vc[f.node]
		jac[f.diag] += gmin
	}

	for i := range s.lins {
		r := &s.lins[i]
		cur := r.g * (vc[r.a] - vc[r.b])
		if r.ia >= 0 {
			rhs[r.ia] -= cur
			jac[r.paa] += r.g
			if r.pab >= 0 {
				jac[r.pab] -= r.g
			}
		}
		if r.ib >= 0 {
			rhs[r.ib] += cur
			jac[r.pbb] += r.g
			if r.pba >= 0 {
				jac[r.pba] -= r.g
			}
		}
	}

	for i := range s.caps {
		cp := &s.caps[i]
		geq := cp.c / h
		cur := geq * ((vc[cp.a] - vc[cp.b]) - (vp[cp.a] - vp[cp.b]))
		if cp.ia >= 0 {
			rhs[cp.ia] -= cur
			jac[cp.paa] += geq
			if cp.pab >= 0 {
				jac[cp.pab] -= geq
			}
		}
		if cp.ib >= 0 {
			rhs[cp.ib] += cur
			jac[cp.pbb] += geq
			if cp.pba >= 0 {
				jac[cp.pba] -= geq
			}
		}
	}

	if s.opts.FiniteDiffJacobian {
		s.assembleMOSFD()
		return
	}
	for i := range s.mos {
		m := &s.mos[i]
		ids, gds, gm, gms := m.m.Eval(vc[m.d], vc[m.g], vc[m.s])
		if m.id >= 0 {
			rhs[m.id] -= ids
			if m.pdd >= 0 {
				jac[m.pdd] += gds
			}
			if m.pdg >= 0 {
				jac[m.pdg] += gm
			}
			if m.pds >= 0 {
				jac[m.pds] += gms
			}
		}
		if m.is >= 0 {
			rhs[m.is] += ids
			if m.psd >= 0 {
				jac[m.psd] -= gds
			}
			if m.psg >= 0 {
				jac[m.psg] -= gm
			}
			if m.pss >= 0 {
				jac[m.pss] -= gms
			}
		}
	}
}

// assembleMOSFD is the legacy finite-difference MOS Jacobian: one Ids
// evaluation for the residual plus one forward-difference evaluation per
// free terminal. Kept as Options.FiniteDiffJacobian so the analytic
// derivatives can be cross-checked end to end (see the differential
// characterization test in package char).
func (s *solver) assembleMOSFD() {
	const fd = 1e-5 // finite-difference perturbation [V]
	jac, rhs := s.jac, s.rhs
	vc := s.vCur
	for i := range s.mos {
		m := &s.mos[i]
		vd, vg, vs := vc[m.d], vc[m.g], vc[m.s]
		ids := m.p.Ids(vd, vg, vs)
		if m.id >= 0 {
			rhs[m.id] -= ids
		}
		if m.is >= 0 {
			rhs[m.is] += ids
		}
		if m.id >= 0 {
			g := (m.p.Ids(vd+fd, vg, vs) - ids) / fd
			if m.pdd >= 0 {
				jac[m.pdd] += g
			}
			if m.psd >= 0 {
				jac[m.psd] -= g
			}
		}
		if m.ig >= 0 {
			g := (m.p.Ids(vd, vg+fd, vs) - ids) / fd
			if m.pdg >= 0 {
				jac[m.pdg] += g
			}
			if m.psg >= 0 {
				jac[m.psg] -= g
			}
		}
		if m.is >= 0 {
			g := (m.p.Ids(vd, vg, vs+fd) - ids) / fd
			if m.pds >= 0 {
				jac[m.pds] += g
			}
			if m.pss >= 0 {
				jac[m.pss] -= g
			}
		}
	}
}

// luSolve factorizes the assembled Jacobian in place (partial pivoting)
// and solves for the Newton update dx. Returns false on singularity.
func (s *solver) luSolve() bool {
	n := s.nu
	a := s.jac
	b := s.rhs
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		piv, pmax := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > pmax {
				piv, pmax = i, v
			}
		}
		if pmax < 1e-30 {
			return false
		}
		if piv != k {
			// Columns < k of both rows are already eliminated (zero), so
			// swapping the trailing parts is a full row exchange.
			rk, rp := a[k*n:(k+1)*n], a[piv*n:(piv+1)*n]
			for j := k; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			b[k], b[piv] = b[piv], b[k]
		}
		inv := 1 / a[k*n+k]
		rk := a[k*n : (k+1)*n]
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] * inv
			if f == 0 {
				continue
			}
			row := a[i*n : (i+1)*n]
			row[k] = 0
			for j := k + 1; j < n; j++ {
				row[j] -= f * rk[j]
			}
			b[i] -= f * b[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		x := b[i]
		row := a[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			x -= row[j] * s.dx[j]
		}
		s.dx[i] = x / row[i]
	}
	return true
}
