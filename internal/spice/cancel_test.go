package spice

import (
	"context"
	"errors"
	"testing"

	"ageguard/internal/conc"
	"ageguard/internal/obs"
	"ageguard/internal/units"
)

// TestRunContextCanceled: a canceled context stops the transient at the
// next time step, the error matches both conc.ErrCanceled and
// context.Canceled, and the spice.canceled counter records it.
func TestRunContextCanceled(t *testing.T) {
	c := New(vdd)
	in := c.Input("in", Ramp{T0: 10 * units.Ps, Slew: 5 * units.Ps, V0: 0, V1: vdd})
	out := c.Node("out")
	c.R(in, out, 1000)
	c.C(out, c.Gnd(), 10*units.FF)

	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(obs.With(context.Background(), reg))
	cancel()
	_, err := c.Run(ctx, 100*units.Ps, Options{MaxStep: 0.2 * units.Ps})
	if err == nil {
		t.Fatal("canceled transient returned nil error")
	}
	if !errors.Is(err, conc.ErrCanceled) {
		t.Errorf("error %v does not match conc.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
	if n := reg.Counter("spice.canceled").Value(); n != 1 {
		t.Errorf("spice.canceled = %d, want 1", n)
	}
	// spice.transients counts attempts (deferred), so the canceled run
	// still registers, but no steps were accepted.
	if n := reg.Counter("spice.steps.accepted").Value(); n != 0 {
		t.Errorf("spice.steps.accepted = %d for a pre-canceled run, want 0", n)
	}
}

// TestRunContextMetrics: a completed transient records step and Newton
// iteration counters plus a duration sample.
func TestRunContextMetrics(t *testing.T) {
	c := New(vdd)
	in := c.Input("in", Ramp{T0: 10 * units.Ps, Slew: 5 * units.Ps, V0: 0, V1: vdd})
	out := c.Node("out")
	c.R(in, out, 1000)
	c.C(out, c.Gnd(), 10*units.FF)

	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	if _, err := c.Run(ctx, 100*units.Ps, Options{MaxStep: 0.2 * units.Ps}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("spice.transients").Value(); n != 1 {
		t.Errorf("spice.transients = %d, want 1", n)
	}
	if n := reg.Counter("spice.steps.accepted").Value(); n == 0 {
		t.Error("spice.steps.accepted = 0")
	}
	if n := reg.Counter("spice.newton.iterations").Value(); n == 0 {
		t.Error("spice.newton.iterations = 0")
	}
	if st := reg.Histogram("spice.transient.seconds").Stat(); st.Count != 1 {
		t.Errorf("spice.transient.seconds count = %d, want 1", st.Count)
	}
}
