package spice

import "ageguard/internal/units"

// Waveform is a driven-node voltage as a function of time.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant voltage waveform.
type DC float64

// At returns the constant value.
func (d DC) At(float64) float64 { return float64(d) }

// Ramp is a single linear transition from V0 to V1 starting at T0.
//
// Slew is expressed in the library convention (20%-80% time divided by
// 0.6); the full 0-100% ramp therefore takes exactly Slew seconds, making
// characterized output slews directly reusable as input slews.
type Ramp struct {
	T0   float64 // transition start time [s]
	Slew float64 // full-swing transition time [s]
	V0   float64 // initial voltage [V]
	V1   float64 // final voltage [V]
}

// At evaluates the ramp.
func (r Ramp) At(t float64) float64 {
	if t <= r.T0 {
		return r.V0
	}
	if r.Slew <= 0 || t >= r.T0+r.Slew {
		return r.V1
	}
	return units.Lerp(r.V0, r.V1, (t-r.T0)/r.Slew)
}

// PWL is a piecewise-linear waveform through the given (T[i], V[i]) points.
// Before the first point it holds V[0]; after the last, V[len-1].
type PWL struct {
	T []float64
	V []float64
}

// At evaluates the piecewise-linear waveform.
func (p PWL) At(t float64) float64 {
	if len(p.T) == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	for i := 1; i < len(p.T); i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return units.Lerp(p.V[i-1], p.V[i], f)
		}
	}
	return p.V[len(p.V)-1]
}

// Pulse is a periodic two-level waveform with linear edges, used as a
// clock during sequential-cell characterization.
type Pulse struct {
	V0, V1 float64 // low and high levels [V]
	Delay  float64 // time of the first leading edge [s]
	Width  float64 // high time, measured edge-start to edge-start [s]
	Period float64 // repetition period [s]
	Slew   float64 // edge transition time [s]
}

// At evaluates the pulse train.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.V0
	}
	tc := t - p.Delay
	if p.Period > 0 {
		n := int(tc / p.Period)
		tc -= float64(n) * p.Period
	}
	switch {
	case tc < p.Slew:
		return units.Lerp(p.V0, p.V1, tc/p.Slew)
	case tc < p.Width:
		return p.V1
	case tc < p.Width+p.Slew:
		return units.Lerp(p.V1, p.V0, (tc-p.Width)/p.Slew)
	default:
		return p.V0
	}
}
