package spice

import (
	"math"
	"testing"
)

func TestRampEdgeCases(t *testing.T) {
	// Zero slew: an ideal step — V0 up to and including T0, V1 after.
	step := Ramp{T0: 5, Slew: 0, V0: 0.2, V1: 1.1}
	for _, tc := range []struct{ t, want float64 }{
		{-1, 0.2}, {0, 0.2}, {5, 0.2}, {5.0000001, 1.1}, {100, 1.1},
	} {
		if got := step.At(tc.t); got != tc.want {
			t.Errorf("zero-slew Ramp.At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	// Negative slew must behave like zero slew, not extrapolate.
	neg := Ramp{T0: 5, Slew: -3, V0: 0, V1: 1}
	if got := neg.At(6); got != 1 {
		t.Errorf("negative-slew Ramp.At(6) = %v, want 1", got)
	}
	// Falling ramp: V0 > V1, interpolates downward.
	fall := Ramp{T0: 10, Slew: 10, V0: 1.1, V1: 0}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1.1}, {10, 1.1}, {15, 0.55}, {20, 0}, {99, 0},
	} {
		if got := fall.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("falling Ramp.At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	// Exactly at the endpoints of the ramp interval.
	r := Ramp{T0: 1, Slew: 2, V0: 0, V1: 1}
	if got := r.At(1); got != 0 {
		t.Errorf("Ramp.At(T0) = %v, want V0", got)
	}
	if got := r.At(3); got != 1 {
		t.Errorf("Ramp.At(T0+Slew) = %v, want V1", got)
	}
}

func TestPWLEdgeCases(t *testing.T) {
	// Empty PWL is defined as 0 V at all times.
	var empty PWL
	if got := empty.At(42); got != 0 {
		t.Errorf("empty PWL.At = %v, want 0", got)
	}
	// Single point: constant before and after.
	one := PWL{T: []float64{5}, V: []float64{0.7}}
	for _, tt := range []float64{-1, 5, 9} {
		if got := one.At(tt); got != 0.7 {
			t.Errorf("single-point PWL.At(%v) = %v, want 0.7", tt, got)
		}
	}
	// Exactly on interior breakpoints, and beyond the last.
	p := PWL{T: []float64{0, 1, 3}, V: []float64{0, 1, -1}}
	for _, tc := range []struct{ t, want float64 }{
		{0, 0}, {1, 1}, {2, 0}, {3, -1}, {10, -1},
	} {
		if got := p.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PWL.At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestPulseEdgeCases(t *testing.T) {
	// Non-periodic pulse (Period = 0): one pulse, then V0 forever.
	p := Pulse{V0: 0, V1: 1, Delay: 10, Width: 20, Slew: 2}
	for _, tc := range []struct{ t, want float64 }{
		{0, 0}, {9.999, 0}, {11, 0.5}, {12, 1}, {25, 1}, {31, 0.5}, {32, 0}, {1e6, 0},
	} {
		if got := p.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("non-periodic Pulse.At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	// Period boundary: the waveform restarts exactly at Delay + n*Period.
	pp := Pulse{V0: 0.1, V1: 1, Delay: 10, Width: 20, Period: 50, Slew: 2}
	if got := pp.At(60); got != 0.1 {
		t.Errorf("Pulse at period start = %v, want V0", got)
	}
	if got := pp.At(61); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("Pulse mid rising edge, 2nd period = %v, want 0.55", got)
	}
	if got := pp.At(112); got != 1 {
		t.Errorf("Pulse high, 3rd period = %v, want 1", got)
	}
}
