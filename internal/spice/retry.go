package spice

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ageguard/internal/conc"
	"ageguard/internal/obs"
)

// FailureClass partitions transient-analysis errors for retry decisions:
// only convergence failures are worth re-running with more conservative
// solver options; cancellations must propagate immediately and anything
// else (measurement or structural errors) is deterministic and would fail
// identically on every rung.
type FailureClass int

const (
	// FailNone classifies a nil error.
	FailNone FailureClass = iota
	// FailConvergence is a Newton/settle non-convergence (retryable).
	FailConvergence
	// FailCanceled is a context cancellation or deadline expiry.
	FailCanceled
	// FailOther is any remaining failure (not retryable).
	FailOther
)

// String names the class for logs and span attributes.
func (f FailureClass) String() string {
	switch f {
	case FailNone:
		return "none"
	case FailConvergence:
		return "convergence"
	case FailCanceled:
		return "canceled"
	default:
		return "other"
	}
}

// Classify maps an error returned by Run or RunRetry onto
// its failure class, looking through any number of %w wrapping layers.
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return FailNone
	case errors.Is(err, conc.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return FailCanceled
	case errors.Is(err, ErrNoConvergence):
		return FailConvergence
	default:
		return FailOther
	}
}

// escalate returns the solver options for the given retry rung. Rung 0 is
// o unchanged; every later rung is progressively more conservative —
// smaller maximum and minimum time steps, a tighter per-step voltage
// target and a harder-damped Newton update — trading simulation time for
// robustness on stiff circuits.
func (o Options) escalate(tstop float64, rung int) Options {
	if rung == 0 {
		return o
	}
	e := o
	e.fill(tstop)
	pow4 := math.Pow(4, float64(rung))
	pow2 := math.Pow(2, float64(rung))
	e.MaxStep /= pow4
	e.MinStep /= pow4 * pow4
	e.DVTarget /= pow2
	e.NewtonClamp = math.Max(e.NewtonClamp/pow2, 0.05)
	return e
}

// RunRetry performs a transient analysis with a non-convergence
// escalation ladder: the first attempt runs with opts as given; each of
// up to `retries` further attempts re-runs the whole transient with
// progressively conservative options (see escalate). Only convergence
// failures climb the ladder — cancellations and deterministic errors
// return immediately. retries <= 0 behaves exactly like Run.
//
// Solver effort is recorded per attempt as in Run; additionally
// spice.retry.attempts counts ladder re-runs, spice.retry.recovered
// counts transients rescued by a later rung, and spice.retry.exhausted
// counts transients that failed even at the most conservative rung.
//
// The whole ladder runs on one pooled solver: the circuit's stamp
// program is compiled once on the first rung and every later rung reuses
// it (and all solver scratch), so climbing the ladder allocates nothing
// beyond the per-attempt result arena.
func (c *Circuit) RunRetry(ctx context.Context, tstop float64, opts Options, retries int) (*Result, error) {
	if retries < 0 {
		retries = 0
	}
	reg := obs.From(ctx)
	s := acquireSolver(reg)
	defer s.release()
	var lastErr error
	for rung := 0; rung <= retries; rung++ {
		o := opts.escalate(tstop, rung)
		o.attempt = rung
		res, err := c.runTransient(ctx, tstop, o, s, reg)
		if err == nil {
			if rung > 0 {
				reg.Counter("spice.retry.recovered").Inc()
			}
			return res, nil
		}
		lastErr = err
		if Classify(err) != FailConvergence {
			return nil, err
		}
		if rung < retries {
			reg.Counter("spice.retry.attempts").Inc()
		}
	}
	if retries > 0 {
		reg.Counter("spice.retry.exhausted").Inc()
		return nil, fmt.Errorf("spice: escalation ladder exhausted after %d attempts: %w",
			retries+1, lastErr)
	}
	return nil, lastErr
}
