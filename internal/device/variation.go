package device

import (
	"fmt"
	"math"
)

// This file implements per-instance process variation: every placed cell
// instance receives its own threshold-voltage shift and relative mobility
// change, drawn from seeded normal distributions. The generator is
// counter-based: each draw is a pure function of (seed, sample index,
// instance name, channel), with no shared stream state, so a Monte Carlo
// run produces bit-identical samples no matter how the work is split
// across goroutines or re-run across processes.

// Perturb is a deterministic device-parameter perturbation applied on top
// of scenario degradation: absolute threshold shifts and relative mobility
// changes, per polarity. The zero value is a no-op.
type Perturb struct {
	DVthP float64 // added to pMOS |Vth0| [V]
	DVthN float64 // added to nMOS |Vth0| [V]
	DMuP  float64 // relative pMOS mobility change: mu *= (1 + DMuP)
	DMuN  float64 // relative nMOS mobility change: mu *= (1 + DMuN)
}

// IsZero reports whether the perturbation changes nothing.
func (pb Perturb) IsZero() bool { return pb == Perturb{} }

// Add composes two perturbations: threshold shifts sum, relative mobility
// changes compose multiplicatively.
func (pb Perturb) Add(q Perturb) Perturb {
	return Perturb{
		DVthP: pb.DVthP + q.DVthP,
		DVthN: pb.DVthN + q.DVthN,
		DMuP:  (1+pb.DMuP)*(1+q.DMuP) - 1,
		DMuN:  (1+pb.DMuN)*(1+q.DMuN) - 1,
	}
}

// String renders the perturbation for logs and config hashes.
func (pb Perturb) String() string {
	return fmt.Sprintf("dvthp=%g dvthn=%g dmup=%g dmun=%g", pb.DVthP, pb.DVthN, pb.DMuP, pb.DMuN)
}

// Perturbed applies the perturbation matching p's polarity. Like Degrade
// it returns a copy; applying the zero Perturb is bit-identical to not
// applying it (adding 0 and scaling by 1 are exact).
func (p Params) Perturbed(pb Perturb) Params {
	q := p
	if p.Type == PMOS {
		q.Vth += pb.DVthP
		q.Mu *= 1 + pb.DMuP
	} else {
		q.Vth += pb.DVthN
		q.Mu *= 1 + pb.DMuN
	}
	return q
}

// Variation describes the magnitude of per-instance process variation:
// independent normal distributions for the threshold voltage (absolute)
// and the mobility (relative), shared by both polarities.
type Variation struct {
	SigmaVth   float64 // std dev of the per-instance Vth0 shift [V]
	SigmaMuRel float64 // std dev of the relative mobility variation
}

// DefaultVariation returns local-variation magnitudes typical of a 45 nm
// class process: sigma(Vth0) = 15 mV, sigma(mu)/mu = 3%.
func DefaultVariation() Variation {
	return Variation{SigmaVth: 0.015, SigmaMuRel: 0.03}
}

// IsZero reports whether the variation draws nothing.
func (v Variation) IsZero() bool { return v == Variation{} }

// Perturbation safety clamps: a pathological sigma (or an adversarial
// request) must not push a device into an unphysical regime where the
// compact model misbehaves (mobility <= 0, threshold far outside the
// supply). Draws this far out are > 10 sigma for any sane configuration,
// so the clamp never fires in practice.
const (
	maxDVth   = 0.3 // [V]
	maxDMuRel = 0.8 // relative
)

func clampDraw(x, lim float64) float64 {
	if x > lim {
		return lim
	}
	if x < -lim {
		return -lim
	}
	return x
}

// Sample draws the perturbation of one instance in one Monte Carlo
// sample. It is a pure function of (seed, sample, inst): bit-identical
// across runs, processes and any partitioning of samples over goroutines.
// The four channels (pMOS/nMOS threshold and mobility) are independent.
func (v Variation) Sample(seed, sample uint64, inst string) Perturb {
	h := instHash(inst)
	return Perturb{
		DVthP: clampDraw(v.SigmaVth*normal(seed, sample, h, 0), maxDVth),
		DVthN: clampDraw(v.SigmaVth*normal(seed, sample, h, 1), maxDVth),
		DMuP:  clampDraw(v.SigmaMuRel*normal(seed, sample, h, 2), maxDMuRel),
		DMuN:  clampDraw(v.SigmaMuRel*normal(seed, sample, h, 3), maxDMuRel),
	}
}

// instHash is FNV-1a over the instance name: stable across processes
// (unlike Go's randomized map/string hashes).
func instHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// counterBits derives one uniform 64-bit word from the draw coordinates.
// Chained mixes (rather than a linear combination) keep distinct
// coordinates from colliding.
func counterBits(seed, sample, inst, ctr uint64) uint64 {
	return mix(seed ^ mix(sample^mix(inst^mix(ctr))))
}

// uniform maps the coordinates to (0, 1), never returning an endpoint
// (Box-Muller needs log(u) finite).
func uniform(seed, sample, inst, ctr uint64) float64 {
	return (float64(counterBits(seed, sample, inst, ctr)>>11) + 0.5) / (1 << 53)
}

// normal draws one standard-normal variate for the given channel via the
// Box-Muller transform over two counter-indexed uniforms.
func normal(seed, sample, inst uint64, channel uint64) float64 {
	u1 := uniform(seed, sample, inst, 2*channel)
	u2 := uniform(seed, sample, inst, 2*channel+1)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
