package device

import (
	"math"
	"testing"
	"testing/quick"

	"ageguard/internal/units"
)

func freshN() Params { return Default45().Transistor(NMOS, 400*units.Nm) }
func freshP() Params { return Default45().Transistor(PMOS, 800*units.Nm) }

func TestOnCurrentMagnitude(t *testing.T) {
	tech := Default45()
	n, p := freshN(), freshP()
	in := n.OnCurrent(tech.Vdd)
	ip := p.OnCurrent(tech.Vdd)
	// 45nm-class on-currents: order 0.1-1 mA for sub-micron widths.
	if in < 50*units.UA || in > 2*units.MA {
		t.Errorf("nMOS Ion = %g A out of plausible range", in)
	}
	if ip < 50*units.UA || ip > 2*units.MA {
		t.Errorf("pMOS Ion = %g A out of plausible range", ip)
	}
	// The 2:1 width ratio should roughly balance n/p drive.
	if r := in / ip; r < 0.6 || r > 1.8 {
		t.Errorf("Ion ratio n/p = %v, want near 1 for 2:1 sizing", r)
	}
}

func TestCutoff(t *testing.T) {
	n := freshN()
	if got := n.Ids(1.1, 0, 0); got != 0 {
		t.Errorf("nMOS with Vgs=0 should be off, got %g", got)
	}
	p := freshP()
	if got := p.Ids(0, 1.1, 1.1); got != 0 {
		t.Errorf("pMOS with Vgs=0 should be off, got %g", got)
	}
}

func TestSymmetry(t *testing.T) {
	// Swapping drain and source must negate the current (transmission
	// gates rely on this).
	n := freshN()
	f := func(vd, vg, vs float64) bool {
		vd = units.Clamp(vd, 0, 1.1)
		vg = units.Clamp(vg, 0, 1.1)
		vs = units.Clamp(vs, 0, 1.1)
		a := n.Ids(vd, vg, vs)
		b := n.Ids(vs, vg, vd)
		return math.Abs(a+b) <= 1e-12*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInVgs(t *testing.T) {
	n := freshN()
	prev := -1.0
	for vg := 0.0; vg <= 1.1; vg += 0.01 {
		i := n.Ids(1.1, vg, 0)
		if i < prev-1e-15 {
			t.Fatalf("Ids not monotone in Vgs at vg=%v", vg)
		}
		prev = i
	}
}

func TestContinuityAcrossVdsat(t *testing.T) {
	n := freshN()
	vov := 1.1 - n.Vth
	el := n.EsatL()
	vdsat := vov * el / (vov + el)
	below := n.Ids(vdsat-1e-7, 1.1, 0)
	above := n.Ids(vdsat+1e-7, 1.1, 0)
	if rel := math.Abs(above-below) / above; rel > 1e-3 {
		t.Errorf("current discontinuity at Vdsat: %g vs %g", below, above)
	}
}

func TestDegradeReducesCurrent(t *testing.T) {
	n := freshN()
	aged := n.Degrade(0.05, 0.9)
	iFresh := n.OnCurrent(1.1)
	iAged := aged.OnCurrent(1.1)
	if iAged >= iFresh {
		t.Errorf("aged current %g not below fresh %g", iAged, iFresh)
	}
	// Degrading only Vth must reduce current less than Vth+mu together.
	vthOnly := n.Degrade(0.05, 1.0)
	if vo := vthOnly.OnCurrent(1.1); vo <= iAged {
		t.Errorf("Vth-only current %g should exceed Vth+mu current %g", vo, iAged)
	}
}

func TestDegradeDoesNotMutate(t *testing.T) {
	n := freshN()
	vth := n.Vth
	_ = n.Degrade(0.1, 0.5)
	if n.Vth != vth {
		t.Error("Degrade mutated the receiver")
	}
}

func TestGmGdsPositiveInSaturation(t *testing.T) {
	n := freshN()
	if gm := n.Gm(1.1, 0.8, 0); gm <= 0 {
		t.Errorf("gm = %g, want > 0", gm)
	}
	if gds := n.Gds(1.1, 0.8, 0); gds <= 0 {
		t.Errorf("gds = %g, want > 0", gds)
	}
}

func TestParasiticCaps(t *testing.T) {
	n := freshN()
	if n.CGate <= 0 || n.CDrain <= 0 {
		t.Fatal("parasitic caps must be positive")
	}
	// Gate cap of a 400nm/45nm device: order of a femtofarad.
	if n.CGate < 0.1*units.FF || n.CGate > 10*units.FF {
		t.Errorf("CGate = %v out of plausible range", units.FFString(n.CGate))
	}
}

func TestEffectiveResistance(t *testing.T) {
	n := freshN()
	r := n.EffectiveResistance(1.1)
	if r < 100 || r > 100e3 {
		t.Errorf("Reff = %v ohm out of plausible range", r)
	}
	aged := n.Degrade(0.06, 0.88)
	if aged.EffectiveResistance(1.1) <= r {
		t.Error("aged device should have higher effective resistance")
	}
}

func TestPMOSCurrentSign(t *testing.T) {
	p := freshP()
	// Source at Vdd, gate low, drain low: current flows INTO drain node
	// (charging it), i.e. Ids (drain current, d->s) is negative.
	if i := p.Ids(0, 0, 1.1); i >= 0 {
		t.Errorf("pMOS pull-up current sign wrong: %g", i)
	}
}

// TestIdsDerivMatchesValue: the ids returned by IdsDeriv must be
// bit-identical to Ids at every bias (the solver uses it for the residual,
// so any discrepancy would change simulated waveforms, not just the
// Newton path).
func TestIdsDerivMatchesValue(t *testing.T) {
	for _, p := range []Params{freshN(), freshP(), freshN().Degrade(0.065, 0.89), freshP().Degrade(0.031, 0.97)} {
		for vd := -0.2; vd <= 1.3; vd += 0.05 {
			for vg := -0.2; vg <= 1.3; vg += 0.05 {
				for vs := -0.2; vs <= 1.3; vs += 0.05 {
					ids, _, _, _ := p.IdsDeriv(vd, vg, vs)
					if want := p.Ids(vd, vg, vs); ids != want {
						t.Fatalf("%s IdsDeriv(%g,%g,%g) value %g != Ids %g",
							p.Type, vd, vg, vs, ids, want)
					}
				}
			}
		}
	}
}

// TestIdsDerivMatchesFiniteDifference: each analytic partial derivative
// must agree with a central finite difference of Ids away from the
// piecewise-model boundaries (cutoff, drain/source exchange, vdsat), where
// one-sided slopes legitimately differ.
func TestIdsDerivMatchesFiniteDifference(t *testing.T) {
	const h = 1e-6
	near := func(a, b float64) bool { return math.Abs(a-b) < 10*h }
	for _, p := range []Params{freshN(), freshP(), freshN().Degrade(0.065, 0.89), freshP().Degrade(0.031, 0.97)} {
		checked := 0
		for vd := 0.0; vd <= 1.21; vd += 0.11 {
			for vg := 0.0; vg <= 1.21; vg += 0.11 {
				for vs := 0.0; vs <= 1.21; vs += 0.11 {
					// Skip biases within 10h of a piecewise boundary: the
					// central difference would straddle two branches there.
					if near(vd, vs) {
						continue
					}
					vgs, vds := vg-vs, vd-vs
					if p.Type == PMOS {
						vgs, vds = vs-vg, vs-vd
					}
					if vds < 0 {
						vgs, vds = vgs+vds, -vds
					}
					vov := vgs - p.Vth
					if near(vov, 0) {
						continue
					}
					if el := p.EsatL(); vov > 0 && near(vds, vov*el/(vov+el)) {
						continue
					}
					_, gds, gm, gms := p.IdsDeriv(vd, vg, vs)
					fd := func(f func(h float64) float64) float64 {
						return (f(h) - f(-h)) / (2 * h)
					}
					wantGds := fd(func(e float64) float64 { return p.Ids(vd+e, vg, vs) })
					wantGm := fd(func(e float64) float64 { return p.Ids(vd, vg+e, vs) })
					wantGms := fd(func(e float64) float64 { return p.Ids(vd, vg, vs+e) })
					scale := math.Max(1e-6, math.Abs(wantGds)+math.Abs(wantGm)+math.Abs(wantGms))
					for _, c := range []struct {
						name      string
						got, want float64
					}{{"gds", gds, wantGds}, {"gm", gm, wantGm}, {"gms", gms, wantGms}} {
						if math.Abs(c.got-c.want) > 1e-5*scale+1e-9 {
							t.Fatalf("%s %s(%g,%g,%g) = %g, finite difference %g",
								p.Type, c.name, vd, vg, vs, c.got, c.want)
						}
					}
					checked++
				}
			}
		}
		if checked < 500 {
			t.Fatalf("only %d interior biases checked for %s", checked, p.Type)
		}
	}
}

// TestIdsDerivDifferenceIdentity: the model depends on terminal voltages
// only through differences, so the derivative sum must vanish.
func TestIdsDerivDifferenceIdentity(t *testing.T) {
	p := freshN()
	for vd := 0.0; vd <= 1.1; vd += 0.1 {
		for vg := 0.0; vg <= 1.1; vg += 0.1 {
			_, gds, gm, gms := p.IdsDeriv(vd, vg, 0.3)
			if s := gds + gm + gms; math.Abs(s) > 1e-12 {
				t.Fatalf("gds+gm+gms = %g at (%g,%g,0.3)", s, vd, vg)
			}
		}
	}
}

// TestModelMatchesIdsDeriv: the precomputed Model form used by the
// transient solver's inner loop must be bit-identical to IdsDeriv — the
// prefactors are folded in the same association order, so every output
// must match exactly, not just within tolerance.
func TestModelMatchesIdsDeriv(t *testing.T) {
	for _, p := range []Params{freshN(), freshP(), freshN().Degrade(0.065, 0.89), freshP().Degrade(0.031, 0.97)} {
		m := p.Model()
		for vd := -0.2; vd <= 1.3; vd += 0.05 {
			for vg := -0.2; vg <= 1.3; vg += 0.05 {
				for vs := -0.2; vs <= 1.3; vs += 0.05 {
					i0, gds0, gm0, gms0 := p.IdsDeriv(vd, vg, vs)
					i1, gds1, gm1, gms1 := m.Eval(vd, vg, vs)
					if i0 != i1 || gds0 != gds1 || gm0 != gm1 || gms0 != gms1 {
						t.Fatalf("%s Model.Eval(%g,%g,%g) = (%g,%g,%g,%g) != IdsDeriv (%g,%g,%g,%g)",
							p.Type, vd, vg, vs, i1, gds1, gm1, gms1, i0, gds0, gm0, gms0)
					}
				}
			}
		}
	}
}
