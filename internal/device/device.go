// Package device implements a 45 nm-class MOSFET compact model in the
// spirit of the high-performance Predictive Technology Model (PTM) used by
// the paper. The model is a velocity-saturated square law (a reduced BSIM4
// form) with channel-length modulation; it captures the interdependencies
// that matter for aging analysis: the drain current — and hence gate delay —
// depends jointly on threshold voltage (Vth) and carrier mobility (mu), so
// BTI-induced degradations of either parameter propagate to delay.
//
// Aged devices are expressed as a fresh parameter set plus a Vth shift and a
// mobility multiplier produced by package aging; see Degrade.
package device

import (
	"fmt"
	"math"

	"ageguard/internal/units"
)

// Type distinguishes n-channel from p-channel transistors.
type Type int

const (
	// NMOS is an n-channel MOSFET (subject to PBTI).
	NMOS Type = iota
	// PMOS is a p-channel MOSFET (subject to NBTI).
	PMOS
)

// String returns "nmos" or "pmos".
func (t Type) String() string {
	if t == PMOS {
		return "pmos"
	}
	return "nmos"
}

// Tech bundles technology-level constants shared by all transistors of one
// process corner. The defaults model a 45 nm high-k/metal-gate process at
// Vdd = 1.1 V (PTM 45 nm HP class; the paper uses the same family).
type Tech struct {
	Vdd  float64 // nominal supply voltage [V]
	L    float64 // drawn channel length [m]
	Cox  float64 // areal gate-oxide capacitance [F/m^2]
	TOxE float64 // effective oxide thickness [m] (for reference/reporting)

	// Per-type zero-bias parameters.
	VthN, VthP float64 // |Vth0| [V]
	MuN, MuP   float64 // low-field effective mobility [m^2/Vs]
	VsatN      float64 // electron saturation velocity [m/s]
	VsatP      float64 // hole saturation velocity [m/s]
	LambdaCLM  float64 // channel-length modulation [1/V]

	// Parasitic capacitance coefficients.
	CgOverlap float64 // gate overlap cap per unit width [F/m]
	CjDrain   float64 // drain junction cap per unit width [F/m]
}

// Default45 returns the 45 nm high-k technology card used throughout the
// reproduction. Values are PTM-45HP-flavoured; absolute currents are within
// a small factor of silicon, which preserves all delay *ratios* the paper's
// evaluation depends on.
func Default45() Tech {
	return Tech{
		Vdd:       1.1,
		L:         45 * units.Nm,
		Cox:       3.45e-2, // ~1.0 nm EOT -> 34.5 fF/um^2
		TOxE:      1.0 * units.Nm,
		VthN:      0.466,
		VthP:      0.412,
		MuN:       0.0350,
		MuP:       0.0190,
		VsatN:     1.00e5,
		VsatP:     0.85e5,
		LambdaCLM: 0.08,
		CgOverlap: 0.35e-9, // 0.35 fF/um
		CjDrain:   0.70e-9, // 0.70 fF/um
	}
}

// Params is one transistor instance: geometry plus (possibly aged)
// electrical parameters. The zero value is not usable; construct with
// Tech.Transistor and optionally apply Degrade.
type Params struct {
	Type Type
	W    float64 // channel width [m]
	L    float64 // channel length [m]

	Vth  float64 // threshold voltage magnitude [V] (aged value)
	Mu   float64 // effective mobility [m^2/Vs] (aged value)
	Vsat float64 // saturation velocity [m/s]
	CLM  float64 // channel-length modulation [1/V]
	Cox  float64 // areal gate-oxide capacitance [F/m^2]

	// Parasitics derived from geometry.
	CGate  float64 // total gate capacitance (channel + overlap) [F]
	CDrain float64 // drain junction capacitance [F]
}

// Transistor builds a fresh transistor of the given type and width.
func (t Tech) Transistor(typ Type, w float64) Params {
	p := Params{Type: typ, W: w, L: t.L, CLM: t.LambdaCLM, Cox: t.Cox}
	switch typ {
	case NMOS:
		p.Vth, p.Mu, p.Vsat = t.VthN, t.MuN, t.VsatN
	case PMOS:
		p.Vth, p.Mu, p.Vsat = t.VthP, t.MuP, t.VsatP
	}
	p.CGate = t.Cox*w*t.L + t.CgOverlap*w
	p.CDrain = t.CjDrain * w
	return p
}

// Degrade returns a copy of p with the threshold voltage shifted by dVth
// (magnitude, volts) and the mobility scaled by muFactor in (0, 1].
// This is how BTI aging (package aging) is applied to a device.
func (p Params) Degrade(dVth, muFactor float64) Params {
	q := p
	q.Vth += dVth
	q.Mu *= muFactor
	return q
}

// EsatL returns the velocity-saturation critical voltage Esat*L for the
// device, where Esat = 2*vsat/mu.
func (p Params) EsatL() float64 { return 2 * p.Vsat / p.Mu * p.L }

// Ids returns the drain-to-source channel current for terminal voltages
// vd, vg, vs (all referred to ground). The sign convention is physical:
// for NMOS, positive current flows from the higher of (vd,vs) to the lower;
// the returned value is the current flowing INTO the "d" terminal
// (i.e. out of the node wired as drain), so it can be stamped directly into
// nodal analysis: I(d) = +Ids, I(s) = -Ids.
//
// The model is symmetric in drain/source (required for transmission gates)
// and C1-continuous across cutoff/linear/saturation boundaries, which keeps
// Newton iteration in the transient simulator well-behaved.
func (p Params) Ids(vd, vg, vs float64) float64 {
	switch p.Type {
	case NMOS:
		if vd >= vs {
			return p.channel(vg-vs, vd-vs)
		}
		return -p.channel(vg-vd, vs-vd)
	default: // PMOS: mirror voltages
		if vd <= vs {
			return -p.channel(vs-vg, vs-vd)
		}
		return p.channel(vd-vg, vd-vs)
	}
}

// IdsDeriv returns the channel current together with its partial
// derivatives with respect to the three terminal voltages:
//
//	gds = dIds/dVd, gm = dIds/dVg, gms = dIds/dVs
//
// evaluated analytically from the same piecewise model as Ids (the
// returned ids is bit-identical to Ids at the same bias). The transient
// solver stamps these directly into the Newton Jacobian, replacing the
// finite-difference evaluation that costs up to four Ids calls per device
// per iteration. Because the model depends only on voltage differences,
// gms == -(gds+gm) holds identically; it is returned anyway so callers
// can stamp without re-deriving the identity.
//
// The derivatives are those of the exact piecewise expressions. The model
// is continuous everywhere and C1 except exactly at the linear/saturation
// boundary when CLM > 0 (a measure-zero set where finite differences are
// equally arbitrary); Newton iteration only requires the residual to be
// exact, which it is.
func (p Params) IdsDeriv(vd, vg, vs float64) (ids, gds, gm, gms float64) {
	switch p.Type {
	case NMOS:
		if vd >= vs {
			i, dg, dd := p.channelDeriv(vg-vs, vd-vs)
			return i, dd, dg, -(dg + dd)
		}
		i, dg, dd := p.channelDeriv(vg-vd, vs-vd)
		return -i, dg + dd, -dg, -dd
	default: // PMOS: mirror voltages
		if vd <= vs {
			i, dg, dd := p.channelDeriv(vs-vg, vs-vd)
			return -i, dd, dg, -(dg + dd)
		}
		i, dg, dd := p.channelDeriv(vd-vg, vd-vs)
		return i, dg + dd, -dg, -dd
	}
}

// channel evaluates the velocity-saturated square-law current for
// vgs, vds >= 0 in the NMOS frame, returning a non-negative current.
func (p Params) channel(vgs, vds float64) float64 {
	vov := vgs - p.Vth
	if vov <= 0 {
		return 0 // long-term aging study: subthreshold leakage irrelevant
	}
	el := p.EsatL()
	// Velocity-saturated model (Toh-Ko-Meyer form):
	//   Vdsat = vov*EL/(vov+EL)
	//   Isat  = W*vsat*Cox*vov^2/(vov+EL)
	//   Ilin  = mu*Cox*(W/L)*(vov - vds/2)*vds / (1 + vds/EL)
	vdsat := vov * el / (vov + el)
	if vds >= vdsat {
		isat := p.W * p.Vsat * p.Cox * vov * vov / (vov + el)
		return isat * (1 + p.CLM*(vds-vdsat))
	}
	return p.Mu * p.Cox * (p.W / p.L) * (vov - vds/2) * vds / (1 + vds/el)
}

// channelDeriv evaluates channel together with its partial derivatives
// with respect to vgs and vds. The value path mirrors channel exactly so
// that ids from IdsDeriv is bit-identical to Ids.
func (p Params) channelDeriv(vgs, vds float64) (i, dg, dd float64) {
	vov := vgs - p.Vth
	if vov <= 0 {
		return 0, 0, 0
	}
	el := p.EsatL()
	vdsat := vov * el / (vov + el)
	if vds >= vdsat {
		den := vov + el
		isat := p.W * p.Vsat * p.Cox * vov * vov / den
		clm := 1 + p.CLM*(vds-vdsat)
		i = isat * clm
		// d(isat)/dvov and d(vdsat)/dvov chain through vov = vgs - Vth.
		dIsat := p.W * p.Vsat * p.Cox * vov * (vov + 2*el) / (den * den)
		dVdsat := el * el / (den * den)
		dg = dIsat*clm - isat*p.CLM*dVdsat
		dd = isat * p.CLM
		return i, dg, dd
	}
	g := p.Mu * p.Cox * (p.W / p.L)
	den := 1 + vds/el
	i = g * (vov - vds/2) * vds / den
	dg = g * vds / den
	// Quotient rule on N/den with N = vov*vds - vds^2/2, den' = 1/el.
	dd = g * ((vov-vds)*den - (vov*vds-vds*vds/2)/el) / (den * den)
	return i, dg, dd
}

// Model is the precomputed hot-path form of a device's compact model: the
// bias-independent parameter combinations (EsatL, the saturation and
// linear-region current prefactors) folded into six scalars so the
// transient solver's inner loop neither copies a full Params value per
// evaluation nor recomputes them. Eval is bit-identical to IdsDeriv — the
// prefactors are folded in the exact association order the Params methods
// use, and a device test asserts exact equality over a bias grid.
type Model struct {
	pmos bool
	vth  float64
	el   float64 // EsatL
	kSat float64 // W*Vsat*Cox
	kLin float64 // Mu*Cox*(W/L)
	clm  float64
}

// Model precomputes the compact-model constants of p.
func (p Params) Model() Model {
	return Model{
		pmos: p.Type == PMOS,
		vth:  p.Vth,
		el:   p.EsatL(),
		kSat: p.W * p.Vsat * p.Cox,
		kLin: p.Mu * p.Cox * (p.W / p.L),
		clm:  p.CLM,
	}
}

// Eval is IdsDeriv evaluated through the precomputed constants; see
// IdsDeriv for the sign conventions and derivative definitions.
func (m *Model) Eval(vd, vg, vs float64) (ids, gds, gm, gms float64) {
	if m.pmos {
		if vd <= vs {
			i, dg, dd := m.channelDeriv(vs-vg, vs-vd)
			return -i, dd, dg, -(dg + dd)
		}
		i, dg, dd := m.channelDeriv(vd-vg, vd-vs)
		return i, dg + dd, -dg, -dd
	}
	if vd >= vs {
		i, dg, dd := m.channelDeriv(vg-vs, vd-vs)
		return i, dd, dg, -(dg + dd)
	}
	i, dg, dd := m.channelDeriv(vg-vd, vs-vd)
	return -i, dg + dd, -dg, -dd
}

func (m *Model) channelDeriv(vgs, vds float64) (i, dg, dd float64) {
	vov := vgs - m.vth
	if vov <= 0 {
		return 0, 0, 0
	}
	el := m.el
	vdsat := vov * el / (vov + el)
	if vds >= vdsat {
		den := vov + el
		isat := m.kSat * vov * vov / den
		clm := 1 + m.clm*(vds-vdsat)
		i = isat * clm
		dIsat := m.kSat * vov * (vov + 2*el) / (den * den)
		dVdsat := el * el / (den * den)
		dg = dIsat*clm - isat*m.clm*dVdsat
		dd = isat * m.clm
		return i, dg, dd
	}
	den := 1 + vds/el
	i = m.kLin * (vov - vds/2) * vds / den
	dg = m.kLin * vds / den
	dd = m.kLin * ((vov-vds)*den - (vov*vds-vds*vds/2)/el) / (den * den)
	return i, dg, dd
}

// Gm returns the numerical transconductance dIds/dVg at the operating point.
func (p Params) Gm(vd, vg, vs float64) float64 {
	const h = 1e-4
	return (p.Ids(vd, vg+h, vs) - p.Ids(vd, vg-h, vs)) / (2 * h)
}

// Gds returns the numerical output conductance dIds/dVd.
func (p Params) Gds(vd, vg, vs float64) float64 {
	const h = 1e-4
	return (p.Ids(vd+h, vg, vs) - p.Ids(vd-h, vg, vs)) / (2 * h)
}

// String describes the device ("pmos W=630nm Vth=412.0mV mu=0.0190").
func (p Params) String() string {
	return fmt.Sprintf("%s W=%.0fnm Vth=%s mu=%.4f", p.Type, p.W/units.Nm, units.MVString(p.Vth), p.Mu)
}

// OnCurrent returns the saturated on-current at full gate drive with the
// given supply, a convenient figure of merit for tests and calibration.
func (p Params) OnCurrent(vdd float64) float64 {
	if p.Type == NMOS {
		return p.Ids(vdd, vdd, 0)
	}
	return -p.Ids(0, 0, vdd)
}

// EffectiveResistance estimates the switching resistance Vdd/(2*Ion),
// used for quick RC delay sanity checks in tests.
func (p Params) EffectiveResistance(vdd float64) float64 {
	ion := p.OnCurrent(vdd)
	if ion <= 0 {
		return math.Inf(1)
	}
	return vdd / (2 * ion)
}
