package device

import (
	"math"
	"sync"
	"testing"
)

func TestPerturbedZeroIsIdentity(t *testing.T) {
	tech := Default45()
	for _, typ := range []Type{PMOS, NMOS} {
		p := tech.Transistor(typ, 4e-7)
		q := p.Perturbed(Perturb{})
		if q != p {
			t.Fatalf("zero perturb changed params: %+v vs %+v", q, p)
		}
	}
}

func TestPerturbedPolarity(t *testing.T) {
	pb := Perturb{DVthP: 0.02, DVthN: -0.01, DMuP: 0.05, DMuN: -0.03}
	p := Params{Type: PMOS, Vth: 0.4, Mu: 0.02}
	n := Params{Type: NMOS, Vth: 0.45, Mu: 0.05}
	gp, gn := p.Perturbed(pb), n.Perturbed(pb)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(gp.Vth, 0.42) || !approx(gp.Mu, 0.021) {
		t.Fatalf("pMOS perturb wrong: %+v", gp)
	}
	if !approx(gn.Vth, 0.44) || !approx(gn.Mu, 0.0485) {
		t.Fatalf("nMOS perturb wrong: %+v", gn)
	}
}

func TestPerturbAdd(t *testing.T) {
	a := Perturb{DVthP: 0.01, DMuN: 0.1}
	b := Perturb{DVthP: 0.02, DMuN: 0.2}
	c := a.Add(b)
	if c.DVthP != 0.03 {
		t.Fatalf("Vth shifts should sum: %v", c.DVthP)
	}
	if want := 1.1*1.2 - 1; math.Abs(c.DMuN-want) > 1e-15 {
		t.Fatalf("Mu changes should compose: %v want %v", c.DMuN, want)
	}
}

// Same coordinates must give bit-identical draws regardless of call
// order, goroutine, or process (the constants are fixed).
func TestSampleDeterministic(t *testing.T) {
	v := DefaultVariation()
	want := v.Sample(42, 7, "u13")

	// Re-draw interleaved with other coordinates, from many goroutines.
	var wg sync.WaitGroup
	got := make([]Perturb, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = v.Sample(uint64(i), 3, "other")
			got[i] = v.Sample(42, 7, "u13")
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("draw %d not bit-identical: %+v vs %+v", i, g, want)
		}
	}
}

// Distinct coordinates must give distinct draws: instances decorrelated
// within a sample, samples decorrelated for an instance, seeds decorrelate
// everything.
func TestSampleDecorrelated(t *testing.T) {
	v := DefaultVariation()
	base := v.Sample(1, 0, "u0")
	for _, other := range []Perturb{
		v.Sample(1, 0, "u1"),
		v.Sample(1, 1, "u0"),
		v.Sample(2, 0, "u0"),
	} {
		if other == base {
			t.Fatalf("coordinates collide: %+v", base)
		}
	}
}

// The empirical moments of the draws must match the configured sigmas.
func TestSampleMoments(t *testing.T) {
	v := Variation{SigmaVth: 0.015, SigmaMuRel: 0.03}
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := v.Sample(9, uint64(i), "uX").DVthN
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 4*v.SigmaVth/math.Sqrt(n) {
		t.Fatalf("mean %v too far from 0", mean)
	}
	if math.Abs(std-v.SigmaVth) > 0.05*v.SigmaVth {
		t.Fatalf("std %v want ~%v", std, v.SigmaVth)
	}
}

func TestSampleZeroVariation(t *testing.T) {
	var v Variation
	if !v.IsZero() {
		t.Fatal("zero Variation not IsZero")
	}
	if pb := v.Sample(5, 5, "u5"); !pb.IsZero() {
		t.Fatalf("zero variation drew nonzero perturb: %+v", pb)
	}
}

func TestSampleClamped(t *testing.T) {
	v := Variation{SigmaVth: 10, SigmaMuRel: 10} // pathological
	for i := 0; i < 200; i++ {
		pb := v.Sample(3, uint64(i), "u")
		for _, x := range []float64{pb.DVthP, pb.DVthN} {
			if math.Abs(x) > maxDVth {
				t.Fatalf("DVth %v exceeds clamp", x)
			}
		}
		for _, x := range []float64{pb.DMuP, pb.DMuN} {
			if math.Abs(x) > maxDMuRel {
				t.Fatalf("DMu %v exceeds clamp", x)
			}
		}
	}
}
