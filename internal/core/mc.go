package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
)

// This file implements process-variation Monte Carlo guardband estimation:
// instead of the single-corner guardband AgedCP - FreshCP, it samples N
// per-instance device perturbations (package device's counter-based
// streams), re-times fresh and aged critical paths per sample through
// sensitivity-materialized instance libraries (char.Sensitivity +
// sta.BatchTimer), and reduces the per-sample guardbands to distribution
// statistics. Identical draws are applied to the fresh and the aged
// timing of each sample, so the per-sample guardband isolates aging from
// the process spread itself.

// Default Monte Carlo knobs.
const (
	DefaultMCSamples = 256
	DefaultMCBins    = 32
)

// MCConfig controls one Monte Carlo guardband estimation.
type MCConfig struct {
	// Samples is the number of Monte Carlo samples (0 = DefaultMCSamples).
	Samples int

	// Seed selects the deterministic sample stream; equal seeds reproduce
	// bit-identical results at any parallelism.
	Seed uint64

	// Variation sets the per-instance sigma magnitudes. The zero value
	// draws nothing (every sample reproduces the nominal guardband);
	// callers wanting typical process spread use device.DefaultVariation.
	Variation device.Variation

	// Exact replaces the first-order sensitivity tables with a full
	// per-sample per-instance SPICE re-characterization — the validation
	// reference. Orders of magnitude slower; samples run serially so the
	// characterization can use all workers internally.
	Exact bool

	// Bins is the guardband histogram bin count (0 = DefaultMCBins).
	Bins int

	// Parallelism bounds concurrently timed samples (conc.Workers
	// semantics). Ignored in Exact mode.
	Parallelism int
}

func (mc MCConfig) samples() int {
	if mc.Samples > 0 {
		return mc.Samples
	}
	return DefaultMCSamples
}

func (mc MCConfig) bins() int {
	if mc.Bins > 0 {
		return mc.Bins
	}
	return DefaultMCBins
}

func (mc MCConfig) workers() int {
	if mc.Exact {
		return 1
	}
	return conc.Workers(mc.Parallelism)
}

// MCHistogram is a fixed-width histogram of the per-sample guardbands
// over [LoS, HiS] (the observed min and max).
type MCHistogram struct {
	LoS    float64 `json:"lo_s"`
	HiS    float64 `json:"hi_s"`
	Counts []int   `json:"counts"`
}

// MCResult is the outcome of one Monte Carlo guardband estimation: the
// nominal (zero-variation) point values, the per-sample guardbands in
// sample order, and their distribution statistics. Quantiles interpolate
// linearly between order statistics (see quantile).
type MCResult struct {
	Circuit   string
	Scenario  aging.Scenario
	Samples   int
	Seed      uint64
	Variation device.Variation
	Exact     bool

	FreshCPS float64 // nominal fresh critical path [s]
	AgedCPS  float64 // nominal aged critical path [s]

	Guardbands []float64 // per-sample guardband [s], index = sample

	MeanS, StdS       float64
	P50S, P95S, P999S float64
	MinS, MaxS        float64
	Hist              MCHistogram
}

// MCGuardband synthesizes the benchmark the traditional way (matching
// StaticGuardband's baseline) and runs the Monte Carlo estimation on it.
func (f Flow) MCGuardband(ctx context.Context, circuit string, s aging.Scenario, mc MCConfig) (*MCResult, error) {
	nl, err := f.SynthesizeTraditional(ctx, circuit)
	if err != nil {
		return nil, err
	}
	return f.MCGuardbandNetlist(ctx, circuit, nl, s, mc)
}

// MCGuardbandNetlist runs the Monte Carlo guardband estimation on an
// already-synthesized netlist. Results are bit-identical for equal
// (netlist, scenario, MCConfig) regardless of MCConfig.Parallelism.
func (f Flow) MCGuardbandNetlist(ctx context.Context, circuit string, nl *netlist.Netlist, s aging.Scenario, mc MCConfig) (*MCResult, error) {
	ctx, sp := obs.StartSpan(ctx, "core.guardband.mc")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	sp.SetAttr("scenario", s.String())
	n := mc.samples()
	sp.SetAttr("samples", n)
	reg := obs.From(ctx)
	t0 := time.Now()
	defer func() {
		reg.Counter("core.mc.runs").Inc()
		reg.Counter("core.mc.samples").Add(int64(n))
		reg.Histogram("core.mc.seconds").Since(t0)
	}()

	snFresh, err := f.Char.Sensitivities(ctx, aging.Fresh())
	if err != nil {
		return nil, err
	}
	snAged, err := f.Char.Sensitivities(ctx, s)
	if err != nil {
		return nil, err
	}

	// Nominal point guardband, exactly StaticGuardband's arithmetic.
	fcp, err := f.CP(ctx, nl, snFresh.Base)
	if err != nil {
		return nil, err
	}
	acp, err := f.CP(ctx, nl, snAged.Base)
	if err != nil {
		return nil, err
	}

	// The instance-variant netlist: every instance references its own
	// per-instance cell. Pin capacitances are geometry-only, so loads —
	// and the compiled topology — are shared by all samples and both
	// scenarios.
	vnl := nl.Clone()
	insts := make([]char.InstDraw, len(vnl.Insts))
	for i, in := range vnl.Insts {
		insts[i] = char.InstDraw{Inst: in.Name, Cell: in.Cell}
		in.Cell = char.VariantCell(in.Cell, in.Name)
	}
	template, err := snFresh.SampleLibrary("mc_template", insts)
	if err != nil {
		return nil, err
	}
	bt, err := sta.NewBatchTimer(ctx, vnl, template, f.STA)
	if err != nil {
		return nil, err
	}

	res := &MCResult{
		Circuit:   circuit,
		Scenario:  s,
		Samples:   n,
		Seed:      mc.Seed,
		Variation: mc.Variation,
		Exact:     mc.Exact,
		FreshCPS:  fcp,
		AgedCPS:   acp,
	}
	res.Guardbands = make([]float64, n)

	// Exact mode shares one simulation limiter across the serial sample
	// loop so the per-cell SPICE sweeps keep every worker busy.
	var exactLim conc.Limiter
	if mc.Exact {
		exactLim = conc.NewLimiter(conc.Workers(f.Char.Parallelism))
	}

	err = conc.ParFor(ctx, mc.workers(), n, func(i int) error {
		draws := make([]char.InstDraw, len(insts))
		copy(draws, insts)
		for k := range draws {
			draws[k].Pb = mc.Variation.Sample(mc.Seed, uint64(i), draws[k].Inst)
		}
		var freshLib, agedLib *liberty.Library
		var err error
		if mc.Exact {
			freshLib, err = f.exactSampleLibrary(ctx, exactLim, snFresh, aging.Fresh(), draws, i)
			if err == nil {
				agedLib, err = f.exactSampleLibrary(ctx, exactLim, snAged, s, draws, i)
			}
		} else {
			freshLib, err = snFresh.SampleLibrary(fmt.Sprintf("mc_fresh_%d", i), draws)
			if err == nil {
				agedLib, err = snAged.SampleLibrary(fmt.Sprintf("mc_aged_%d", i), draws)
			}
		}
		if err != nil {
			return err
		}
		sf, err := bt.CP(ctx, freshLib)
		if err != nil {
			return err
		}
		sa, err := bt.CP(ctx, agedLib)
		if err != nil {
			return err
		}
		res.Guardbands[i] = sa - sf
		return nil
	})
	if err != nil {
		return nil, conc.WrapCanceled(err)
	}

	res.reduce(mc.bins())
	return res, nil
}

// exactSampleLibrary re-characterizes every drawn instance with its full
// perturbation through the SPICE sweep and assembles the instance-variant
// library — the Monte Carlo validation reference.
func (f Flow) exactSampleLibrary(ctx context.Context, lim conc.Limiter, sn *char.Sensitivity, s aging.Scenario, draws []char.InstDraw, sample int) (*liberty.Library, error) {
	lib := &liberty.Library{
		Name:     fmt.Sprintf("mc_exact_%s_%d", sn.Base.Name, sample),
		Scenario: sn.Base.Scenario,
		Vdd:      sn.Base.Vdd,
		Slews:    sn.Base.Slews,
		Loads:    sn.Base.Loads,
		Cells:    make(map[string]*liberty.CellTiming, len(draws)),
	}
	for _, d := range draws {
		ct, err := f.Char.CharacterizeCellPerturbed(ctx, lim, d.Cell, s, d.Pb)
		if err != nil {
			return nil, err
		}
		cp := *ct
		cp.Name = char.VariantCell(d.Cell, d.Inst)
		lib.Cells[cp.Name] = &cp
	}
	return lib, nil
}

// reduce fills the distribution statistics from the per-sample guardbands.
func (r *MCResult) reduce(bins int) {
	n := len(r.Guardbands)
	var sum, sum2 float64
	for _, g := range r.Guardbands {
		sum += g
		sum2 += g * g
	}
	r.MeanS = sum / float64(n)
	if v := sum2/float64(n) - r.MeanS*r.MeanS; v > 0 {
		r.StdS = math.Sqrt(v)
	}
	sorted := append([]float64(nil), r.Guardbands...)
	sort.Float64s(sorted)
	r.MinS, r.MaxS = sorted[0], sorted[n-1]
	r.P50S = quantile(sorted, 0.50)
	r.P95S = quantile(sorted, 0.95)
	r.P999S = quantile(sorted, 0.999)
	r.Hist = histogram(sorted, bins)
}

// quantile interpolates linearly between order statistics of an ascending
// sample: the q-quantile sits at fractional rank q*(n-1).
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// histogram bins an ascending sample over [min, max]. A degenerate
// distribution (max == min) lands entirely in bin 0.
func histogram(sorted []float64, bins int) MCHistogram {
	lo, hi := sorted[0], sorted[len(sorted)-1]
	h := MCHistogram{LoS: lo, HiS: hi, Counts: make([]int, bins)}
	span := hi - lo
	for _, g := range sorted {
		idx := 0
		if span > 0 {
			idx = int((g - lo) / span * float64(bins))
			if idx >= bins {
				idx = bins - 1
			}
		}
		h.Counts[idx]++
	}
	return h
}
