package core

import (
	"testing"

	"ageguard/internal/char"
	"ageguard/internal/sta"
)

func TestNewDefaults(t *testing.T) {
	f := New()
	d := Default()
	if f.Lifetime != d.Lifetime || f.Char.CacheDir != d.Char.CacheDir {
		t.Errorf("New() = %+v differs from Default() = %+v", f, d)
	}
}

func TestNewOptionsApplyInOrder(t *testing.T) {
	f := New(
		WithLifetime(7),
		WithParallelism(3),
		WithCacheDir("first"),
		WithCacheDir("second"),
	)
	if f.Lifetime != 7 {
		t.Errorf("Lifetime = %v, want 7", f.Lifetime)
	}
	if f.Parallelism != 3 {
		t.Errorf("Parallelism = %v, want 3", f.Parallelism)
	}
	if f.Char.CacheDir != "second" {
		t.Errorf("CacheDir = %q, want last-wins %q", f.Char.CacheDir, "second")
	}
}

func TestNewSubConfigOptions(t *testing.T) {
	cc := char.New(char.WithCacheDir("cc"), char.WithParallelism(2))
	sc := sta.New(sta.WithInputSlew(11), sta.WithWireCap(0.5))
	f := New(WithCharConfig(cc), WithSTAConfig(sc))
	if f.Char.CacheDir != "cc" || f.Char.Parallelism != 2 {
		t.Errorf("char config not applied: %+v", f.Char)
	}
	if f.STA.InputSlew != 11 || f.STA.WireCap != 0.5 {
		t.Errorf("sta config not applied: %+v", f.STA)
	}
}

func TestWithCacheDirAfterCharConfig(t *testing.T) {
	// WithCacheDir must compose with an earlier WithCharConfig instead of
	// being clobbered by option ordering surprises.
	f := New(WithCharConfig(char.New(char.WithCacheDir("a"))), WithCacheDir("b"))
	if f.Char.CacheDir != "b" {
		t.Errorf("CacheDir = %q, want %q", f.Char.CacheDir, "b")
	}
}
