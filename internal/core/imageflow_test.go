package core

import (
	"context"
	"math/rand"
	"testing"

	"ageguard/internal/image"
	"ageguard/internal/rtl"
	"ageguard/internal/sta"
)

// TestCircuitTransformMatchesFixedPoint drives the synthesized DCT
// netlist through the timed simulator at a relaxed clock and checks the
// streamed results bit-exactly against the fixed-point golden model —
// validating the whole netlist+timing+pipeline plumbing end to end.
func TestCircuitTransformMatchesFixedPoint(t *testing.T) {
	f := Default()
	lib, err := f.FreshLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := f.SynthesizeTraditional(context.Background(), "DCT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sta.Analyze(context.Background(), nl, lib, f.STA)
	if err != nil {
		t.Fatal(err)
	}
	// Generous clock: no timing errors possible.
	tr, err := f.circuitTransform(context.Background(), nl, lib, res.CP*1.5, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rows := make([][8]int64, 12)
	for i := range rows {
		for k := 0; k < 8; k++ {
			rows[i][k] = int64(rng.Intn(256) - 128)
		}
	}
	got := tr(rows)
	m := rtl.DCTCoeff()
	for i, row := range rows {
		want := fixedDCT(m, row)
		if got[i] != want {
			t.Fatalf("row %d: circuit %v != golden %v", i, got[i], want)
		}
	}
}

// fixedDCT is the bit-exact fixed-point model of the DCT circuit.
func fixedDCT(m [8][8]int64, x [8]int64) [8]int64 {
	var y [8]int64
	for k := 0; k < 8; k++ {
		var sum int64
		for n := 0; n < 8; n++ {
			sum += x[n] * m[k][n]
		}
		v := (sum + 1<<(rtl.DCTFrac-1)) >> rtl.DCTFrac
		lim := int64(1)<<(rtl.DCTWidth-1) - 1
		if v > lim {
			v = lim
		}
		if v < -lim-1 {
			v = -lim - 1
		}
		y[k] = v
	}
	return y
}

// TestCircuitTransformErrsWhenOverclocked checks that an absurdly tight
// clock corrupts the streamed results — the error-injection mechanism of
// the Fig. 6c study.
func TestCircuitTransformErrsWhenOverclocked(t *testing.T) {
	f := Default()
	lib, err := f.FreshLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := f.SynthesizeTraditional(context.Background(), "DCT")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sta.Analyze(context.Background(), nl, lib, f.STA)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.circuitTransform(context.Background(), nl, lib, res.CP*0.4, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rows := make([][8]int64, 12)
	for i := range rows {
		for k := 0; k < 8; k++ {
			rows[i][k] = int64(rng.Intn(256) - 128)
		}
	}
	got := tr(rows)
	m := rtl.DCTCoeff()
	errs := 0
	for i, row := range rows {
		if got[i] != fixedDCT(m, row) {
			errs++
		}
	}
	if errs == 0 {
		t.Error("no timing errors at 0.4x clock period")
	}
}

// TestGoldenBatchAgreesWithScalarChain cross-checks the batch chain used
// by the hardware study against the scalar reference chain.
func TestGoldenBatchAgreesWithScalarChain(t *testing.T) {
	img := image.TestImage(32, 32)
	a := image.RunChain(img, image.GoldenDCT(), image.GoldenIDCT())
	b := image.RunChainBatch(img, image.GoldenDCT().Batch(), image.GoldenIDCT().Batch())
	if image.PSNR(a, b) < 100 { // effectively identical
		t.Errorf("batch chain diverges from scalar chain: PSNR %v", image.PSNR(a, b))
	}
}
