package core

import (
	"context"
	"os"
	"testing"

	"ageguard/internal/image"
	"ageguard/internal/liberty"
)

// TestFig5Shapes runs the paper's Fig. 5 comparisons on a two-circuit
// subset (artifacts cached under .libcache, so this is fast after the
// first run) and asserts the papers' qualitative claims:
//
//	(a) Vth-only analysis underestimates guardbands (~-19%),
//	(b) single-OPC analysis grossly overestimates (~+214%),
//	(c) the initially-critical path underestimates the aged CP (<= 0).
func TestFig5Shapes(t *testing.T) {
	f := Default()
	circuits := []string{"RISC-5P", "VLIW"}

	a, err := f.Fig5a(context.Background(), circuits)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPct > -10 || a.AvgPct < -35 {
		t.Errorf("Fig5a avg = %+.1f%%, want around -19%%", a.AvgPct)
	}
	for _, row := range a.Rows {
		if row.DeltaPct >= 0 {
			t.Errorf("Fig5a %s: Vth-only should underestimate, got %+.1f%%", row.Circuit, row.DeltaPct)
		}
	}

	b, err := f.Fig5b(context.Background(), circuits)
	if err != nil {
		t.Fatal(err)
	}
	if b.AvgPct < 50 {
		t.Errorf("Fig5b avg = %+.1f%%, want large overestimation", b.AvgPct)
	}

	c, err := f.Fig5c(context.Background(), circuits)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range c.Rows {
		if row.DeltaPct > 1e-9 {
			t.Errorf("Fig5c %s: initial-CP estimate must not exceed the true aged CP (%+.2f%%)",
				row.Circuit, row.DeltaPct)
		}
	}
}

// TestFig3Switches asserts the criticality-switch example reproduces.
func TestFig3Switches(t *testing.T) {
	f := Default()
	r, err := f.Fig3PathSwitch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Switched {
		t.Fatalf("no criticality switch found:\n%s", r.Format())
	}
	if r.Path1Fresh <= r.Path2Fresh || r.Path2Aged <= r.Path1Aged {
		t.Errorf("switch direction inconsistent: %+v", r)
	}
}

// TestFig2Shape asserts the delay-change distribution has the paper's
// structure: the single-OPC view degrades everything mildly, the
// multi-OPC view spans from improvements to several-hundred-percent
// amplification.
func TestFig2Shape(t *testing.T) {
	f := Default()
	d, err := f.DelayChangeDistribution(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.ImprovedFractionSingle() != 0 {
		t.Errorf("single OPC shows improvements (%.1f%%); paper: all degrade",
			d.ImprovedFractionSingle()*100)
	}
	if frac := d.ImprovedFractionMulti(); frac <= 0.01 || frac > 0.4 {
		t.Errorf("multi-OPC improved fraction = %.1f%%, want a clear population", frac*100)
	}
	lo, hi := d.Range()
	if lo > -10 {
		t.Errorf("multi-OPC range low = %.1f%%, want improvements below -10%%", lo)
	}
	if hi < 100 {
		t.Errorf("multi-OPC range high = %.1f%%, want amplification beyond +100%%", hi)
	}
}

// TestContainmentShape runs the Fig. 6a comparison on the circuit where
// the aging-aware flow has the most room (VLIW) and asserts the paper's
// direction: a positive guardband reduction at small area cost.
func TestContainmentShape(t *testing.T) {
	f := Default()
	row, err := f.Containment(context.Background(), "VLIW")
	if err != nil {
		t.Fatal(err)
	}
	if row.RequiredGB <= 0 {
		t.Fatalf("required guardband %v not positive", row.RequiredGB)
	}
	if row.ReductionPct <= 0 {
		t.Errorf("VLIW containment = %+.1f%%, want positive", row.ReductionPct)
	}
	if row.AreaOvhPct > 15 || row.AreaOvhPct < -15 {
		t.Errorf("area overhead %+.1f%% out of plausible band", row.AreaOvhPct)
	}
}

// TestImageStudyFull runs the complete Fig. 6c study; it takes several
// minutes of gate-level simulation, so it is gated behind an environment
// variable (the benchmark suite also regenerates it).
func TestImageStudyFull(t *testing.T) {
	if os.Getenv("AGEGUARD_FULL") == "" {
		t.Skip("set AGEGUARD_FULL=1 to run the full image study")
	}
	f := Default()
	img := image.TestImage(48, 48)
	out, err := f.ImageStudy(context.Background(), img, StandardImageCases())
	if err != nil {
		t.Fatal(err)
	}
	psnr := map[string]float64{}
	for _, r := range out {
		psnr[r.Label] = r.PSNR
		t.Logf("%-22s %7.2f dB", r.Label, r.PSNR)
	}
	if psnr["unaware-year0"] < 40 {
		t.Errorf("fresh pipeline PSNR %v below fixed-point baseline", psnr["unaware-year0"])
	}
	if psnr["unaware-worst-10y"] > 30 {
		t.Errorf("unguardbanded aged design should fail the 30dB bar, got %v", psnr["unaware-worst-10y"])
	}
	if psnr["aware-worst-10y"] < psnr["unaware-worst-10y"] {
		t.Errorf("aware design (%v dB) should not be worse than unaware (%v dB)",
			psnr["aware-worst-10y"], psnr["unaware-worst-10y"])
	}
}

// TestIterativeTighteningBaseline checks the [14]-style baseline runs and
// reports a bounded result.
func TestIterativeTighteningBaseline(t *testing.T) {
	f := Default()
	row, err := f.IterativeTightening(context.Background(), "VLIW")
	if err != nil {
		t.Fatal(err)
	}
	if row.RequiredGB <= 0 || row.TightenedGB <= 0 {
		t.Fatalf("degenerate guardbands: %+v", row)
	}
	// The baseline must not beat this work's aware flow on its home turf.
	if row.BaselinePct > row.AgingAwarePct+10 {
		t.Errorf("[14] baseline (%+.1f%%) unexpectedly beats aging-aware flow (%+.1f%%)",
			row.BaselinePct, row.AgingAwarePct)
	}
}

// TestLibertyExportOfAgedLibrary smoke-checks the .lib emission of a real
// characterized library.
func TestLibertyExportOfAgedLibrary(t *testing.T) {
	f := Default()
	lib, err := f.WorstLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(t.TempDir(), "*.lib")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := liberty.WriteLiberty(tmp, lib); err != nil {
		t.Fatal(err)
	}
	st, _ := tmp.Stat()
	if st.Size() < 100_000 {
		t.Errorf("emitted library suspiciously small: %d bytes", st.Size())
	}
}
