package core

import (
	"ageguard/internal/char"
	"ageguard/internal/opt"
	"ageguard/internal/sta"
	"ageguard/internal/synth"
)

// Option configures a Flow under construction; see New.
type Option = opt.Option[Flow]

// New returns the Default flow with the options applied:
//
//	f := core.New(core.WithParallelism(8), core.WithLifetime(10))
func New(opts ...Option) Flow {
	return opt.Apply(Default(), opts...)
}

// WithLifetime sets the projected lifetime in years.
func WithLifetime(years float64) Option { return func(f *Flow) { f.Lifetime = years } }

// WithParallelism bounds concurrently analyzed circuits (0 = all CPUs).
func WithParallelism(n int) Option { return func(f *Flow) { f.Parallelism = n } }

// WithCharConfig replaces the characterization configuration.
func WithCharConfig(cfg char.Config) Option { return func(f *Flow) { f.Char = cfg } }

// WithSTAConfig replaces the static-timing-analysis configuration.
func WithSTAConfig(cfg sta.Config) Option { return func(f *Flow) { f.STA = cfg } }

// WithSynthConfig replaces the synthesis configuration.
func WithSynthConfig(cfg synth.Config) Option { return func(f *Flow) { f.Synth = cfg } }

// WithCacheDir points the library and netlist caches at dir ("" disables
// both).
func WithCacheDir(dir string) Option { return func(f *Flow) { f.Char.CacheDir = dir } }

// WithRetries sets the characterization solver retry-ladder depth
// (0 = char.DefaultRetries, negative = disabled).
func WithRetries(n int) Option { return func(f *Flow) { f.Char.Retries = n } }

// WithStrict toggles strict characterization: failed grid points abort
// instead of being salvaged by interpolation.
func WithStrict(on bool) Option { return func(f *Flow) { f.Char.Strict = on } }
