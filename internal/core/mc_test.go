package core

import (
	"context"
	"math"
	"os"
	"sync"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/device"
	"ageguard/internal/netlist"
	"ageguard/internal/units"
)

// mcCacheDir is the characterization cache shared by every MC test; it
// outlives individual tests (unlike t.TempDir) and TestMain removes it.
var mcCacheDir string

func TestMain(m *testing.M) {
	code := m.Run()
	if mcCacheDir != "" {
		os.RemoveAll(mcCacheDir)
	}
	os.Exit(code)
}

// mcNetlist builds the small registered pipeline the Monte Carlo tests
// time: two capture flops feeding a NAND/INV cone into a launch flop.
func mcNetlist() *netlist.Netlist {
	nl := netlist.New("mcchain")
	nl.Inputs = []string{"a", "b"}
	nl.Outputs = []string{"y"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "w0"})
	nl.AddInst("rb", "DFF_X1", map[string]string{"D": "b", "CK": netlist.ClockNet, "Q": "w1"})
	nl.AddInst("g0", "NAND2_X1", map[string]string{"A1": "w0", "A2": "w1", "ZN": "w2"})
	nl.AddInst("g1", "INV_X1", map[string]string{"A": "w2", "ZN": "w3"})
	nl.AddInst("g2", "INV_X1", map[string]string{"A": "w3", "ZN": "w4"})
	nl.AddInst("rout", "DFF_X1", map[string]string{"D": "w4", "CK": netlist.ClockNet, "Q": "y"})
	return nl
}

var (
	mcFlowOnce sync.Once
	mcFlowVal  Flow
)

// mcFlow returns a flow with a reduced characterization grid restricted
// to the cells mcNetlist uses, sharing one cache directory across every
// MC test so the ten sensitivity characterizations run once.
func mcFlow(t *testing.T) Flow {
	t.Helper()
	mcFlowOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ageguard-mc-test-*")
		if err != nil {
			t.Fatal(err)
		}
		mcCacheDir = dir
		cfg := char.TestConfig()
		cfg.Cells = []string{"DFF_X1", "NAND2_X1", "INV_X1"}
		cfg.CacheDir = dir
		mcFlowVal = New(WithCharConfig(cfg), WithLifetime(10))
	})
	return mcFlowVal
}

func TestMCGuardbandDeterministicAcrossParallelism(t *testing.T) {
	f := mcFlow(t)
	ctx := context.Background()
	nl := mcNetlist()
	s := aging.WorstCase(10)
	mc := MCConfig{Samples: 24, Seed: 7, Variation: device.DefaultVariation()}

	mc.Parallelism = 1
	serial, err := f.MCGuardbandNetlist(ctx, "mcchain", nl, s, mc)
	if err != nil {
		t.Fatal(err)
	}
	mc.Parallelism = 8
	par, err := f.MCGuardbandNetlist(ctx, "mcchain", nl, s, mc)
	if err != nil {
		t.Fatal(err)
	}

	for i := range serial.Guardbands {
		if serial.Guardbands[i] != par.Guardbands[i] {
			t.Fatalf("sample %d: serial %v != parallel %v",
				i, serial.Guardbands[i], par.Guardbands[i])
		}
	}
	if serial.MeanS != par.MeanS || serial.StdS != par.StdS ||
		serial.P50S != par.P50S || serial.P95S != par.P95S ||
		serial.P999S != par.P999S || serial.MinS != par.MinS ||
		serial.MaxS != par.MaxS {
		t.Errorf("statistics differ across parallelism:\nserial %+v\npar    %+v", serial, par)
	}

	// The distribution is genuinely spread and ordered sanely.
	if serial.StdS <= 0 {
		t.Error("default variation produced a degenerate distribution")
	}
	if !(serial.MinS <= serial.P50S && serial.P50S <= serial.P95S &&
		serial.P95S <= serial.P999S && serial.P999S <= serial.MaxS) {
		t.Errorf("quantiles out of order: %+v", serial)
	}
	total := 0
	for _, c := range serial.Hist.Counts {
		total += c
	}
	if total != serial.Samples {
		t.Errorf("histogram holds %d of %d samples", total, serial.Samples)
	}
}

func TestMCGuardbandZeroVariationIsNominal(t *testing.T) {
	f := mcFlow(t)
	res, err := f.MCGuardbandNetlist(context.Background(), "mcchain", mcNetlist(),
		aging.WorstCase(10), MCConfig{Samples: 4, Seed: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	nominal := res.AgedCPS - res.FreshCPS
	if nominal <= 0 {
		t.Fatalf("nominal guardband %v not positive", nominal)
	}
	for i, g := range res.Guardbands {
		if g != nominal {
			t.Errorf("sample %d: zero-variation guardband %v != nominal %v", i, g, nominal)
		}
	}
	if res.StdS != 0 || res.MinS != nominal || res.MaxS != nominal {
		t.Errorf("zero-variation statistics not degenerate: %+v", res)
	}
}

func TestMCGuardbandSensitivityMatchesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPICE re-characterization in -short mode")
	}
	f := mcFlow(t)
	ctx := context.Background()
	s := aging.WorstCase(10)
	mc := MCConfig{Samples: 3, Seed: 3, Variation: device.DefaultVariation()}

	sens, err := f.MCGuardbandNetlist(ctx, "mcchain", mcNetlist(), s, mc)
	if err != nil {
		t.Fatal(err)
	}
	mc.Exact = true
	exact, err := f.MCGuardbandNetlist(ctx, "mcchain", mcNetlist(), s, mc)
	if err != nil {
		t.Fatal(err)
	}

	// First-order sensitivity truncation error, measured against the full
	// per-sample SPICE re-characterization, must stay a small fraction of
	// the nominal guardband on every sample.
	nominal := exact.AgedCPS - exact.FreshCPS
	for i := range exact.Guardbands {
		diff := math.Abs(sens.Guardbands[i] - exact.Guardbands[i])
		if diff > 0.05*nominal+0.05*units.Ps {
			t.Errorf("sample %d: sensitivity %v vs exact %v (diff %s, nominal %s)",
				i, sens.Guardbands[i], exact.Guardbands[i],
				units.PsString(diff), units.PsString(nominal))
		}
	}
	if exact.FreshCPS != sens.FreshCPS || exact.AgedCPS != sens.AgedCPS {
		t.Errorf("nominal points differ between modes: %+v vs %+v", exact, sens)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.95, 4.8}, {1, 5},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile([]float64{42}, 0.5); got != 42 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestMCHistogramDegenerate(t *testing.T) {
	h := histogram([]float64{7, 7, 7}, 4)
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram = %+v, want all in bin 0", h)
	}
	if h.LoS != 7 || h.HiS != 7 {
		t.Errorf("degenerate bounds = %+v", h)
	}
}
