// Package core implements the paper's reliability-aware design flow
// (Fig. 4) end to end, and the experiment drivers that regenerate every
// figure of the evaluation:
//
//   - degradation-aware cell-library creation (Fig. 4a, package char),
//   - guardband estimation under static and dynamic (workload-driven)
//     aging stress (Fig. 4b, Sec. 4.2),
//   - guardband containment by synthesizing with the worst-case aged
//     library (Fig. 4c, Sec. 4.3),
//   - the motivational analyses (Figs. 1-3) and the evaluation
//     comparisons (Figs. 5-7) including the DCT-IDCT image study.
//
// All expensive artifacts (characterized libraries, synthesized netlists)
// are cached on disk, so experiments are cheap to re-run.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/conc"
	"ageguard/internal/gatesim"
	"ageguard/internal/liberty"
	"ageguard/internal/logic"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/rtl"
	"ageguard/internal/sta"
	"ageguard/internal/synth"
)

// Flow bundles the tool configuration of the reliability-aware design
// flow. Construct with Default and override fields as needed.
type Flow struct {
	Char     char.Config
	STA      sta.Config
	Synth    synth.Config
	Lifetime float64 // projected lifetime in years (paper: 10)

	// Parallelism bounds the number of benchmark circuits analyzed
	// concurrently by the multi-circuit experiment drivers (Fig5a/b/c,
	// ContainmentAll): each circuit's synthesis + STA legs are independent,
	// sharing only immutable libraries. 0 selects GOMAXPROCS, 1 keeps the
	// original serial loops. (Characterization concurrency is governed
	// separately by Char.Parallelism.)
	Parallelism int
}

// workers resolves the circuit-level Parallelism knob.
func (f Flow) workers() int { return conc.Workers(f.Parallelism) }

// Default returns the paper's configuration: 45 nm devices, calibrated BTI
// model, 7x7 OPC grid, 10-year lifetime, caches under the repository.
func Default() Flow {
	return Flow{
		Char:     char.CachedConfig(),
		Synth:    synth.Config{Buffering: true},
		Lifetime: 10,
	}
}

// Library characterizes (or loads) the degradation-aware library
// for a scenario. Canceling ctx stops in-flight simulations within one
// time step; the error then matches conc.ErrCanceled.
func (f Flow) Library(ctx context.Context, s aging.Scenario) (*liberty.Library, error) {
	return f.Char.Characterize(ctx, s)
}

// FreshLibrary returns the unaged (initial) library.
func (f Flow) FreshLibrary(ctx context.Context) (*liberty.Library, error) {
	return f.Library(ctx, aging.Fresh())
}

// WorstLibrary returns the worst-case static-stress library
// (lambda = 1.0/1.0) at the flow lifetime.
func (f Flow) WorstLibrary(ctx context.Context) (*liberty.Library, error) {
	return f.Library(ctx, aging.WorstCase(f.Lifetime))
}

// VthOnlyLibrary returns the worst-case library characterized with
// the mobility degradation disabled — the paper's model of
// state-of-the-art Vth-only analyses (Fig. 5a).
func (f Flow) VthOnlyLibrary(ctx context.Context) (*liberty.Library, error) {
	cfg := f.Char
	cfg.VthOnly = true
	return cfg.Characterize(ctx, aging.WorstCase(f.Lifetime))
}

// CompleteLibrary merges the libraries of the given scenarios into
// the lambda-indexed complete library (paper Sec. 4.1).
func (f Flow) CompleteLibrary(ctx context.Context, scens []aging.Scenario) (*liberty.Merged, error) {
	return f.Char.CompleteLibrary(ctx, "complete", scens)
}

// Benchmark returns the named evaluation circuit as a logic network.
func Benchmark(name string) (*logic.AIG, error) {
	gen, ok := rtl.Benchmarks()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	return gen(), nil
}

// Synthesized synthesizes the named benchmark with the given
// library, using the disk cache when Char.CacheDir is set. The run is
// traced under a "core.synthesized" span; cache outcomes count under
// core.netlist.cache.hits / core.netlist.cache.misses.
func (f Flow) Synthesized(ctx context.Context, circuit string, lib *liberty.Library) (*netlist.Netlist, error) {
	ctx, sp := obs.StartSpan(ctx, "core.synthesized")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	sp.SetAttr("lib", lib.Name)
	reg := obs.From(ctx)
	path := f.netlistCachePath(circuit, lib)
	if path != "" {
		if fh, err := os.Open(path); err == nil {
			nl, err := netlist.Read(fh)
			fh.Close()
			if err == nil {
				reg.Counter("core.netlist.cache.hits").Inc()
				sp.SetAttr("cache", "hit")
				return nl, nil
			}
		}
	}
	reg.Counter("core.netlist.cache.misses").Inc()
	sp.SetAttr("cache", "miss")
	a, err := Benchmark(circuit)
	if err != nil {
		return nil, err
	}
	nl, err := synth.Synthesize(ctx, a, lib, circuit, f.synthConfig())
	if err != nil {
		return nil, conc.WrapCanceled(err)
	}
	if path != "" {
		if err := storeNetlistCache(path, nl); err != nil {
			return nil, fmt.Errorf("core: caching netlist %s: %w", path, err)
		}
	}
	return nl, nil
}

// storeNetlistCache writes the netlist atomically via a unique temp file,
// so concurrent experiment legs synthesizing the same (circuit, library)
// never observe or produce a torn cache entry.
func storeNetlistCache(path string, nl *netlist.Netlist) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	fh, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := netlist.Write(fh, nl); err != nil {
		fh.Close()
		os.Remove(fh.Name())
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(fh.Name())
		return err
	}
	if err := os.Rename(fh.Name(), path); err != nil {
		os.Remove(fh.Name())
		return err
	}
	return nil
}

// synthConfig is the effective synthesis configuration: the flow's synth
// knobs with the flow's STA parameters threaded through, so the optimizer
// times candidates under exactly the conditions CP signs off with.
// An STA config set explicitly on Synth wins over the flow-level one.
func (f Flow) synthConfig() synth.Config {
	cfg := f.Synth
	if cfg.STA == (sta.Config{}) {
		cfg.STA = f.STA
	}
	return cfg
}

// netlistCachePath keys cached netlists by circuit, library name and a
// fingerprint of every configuration knob that shapes the synthesized
// result: the full characterization config (the library name alone does
// not encode grid axes or model constants) and the effective synthesis
// config — which includes the threaded STA parameters, so changing
// Flow.STA can never silently reuse a netlist optimized under different
// timing conditions. A changed knob therefore never reuses a stale
// netlist.
func (f Flow) netlistCachePath(circuit string, lib *liberty.Library) string {
	if f.Char.CacheDir == "" {
		return ""
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "char=%016x|synth=%v", f.Char.Hash(), f.synthConfig())
	return filepath.Join(f.Char.CacheDir,
		fmt.Sprintf("netl_%s_%s_h%016x.netl", circuit, lib.Name, h.Sum64()))
}

// SynthesizeTraditional synthesizes the benchmark the conventional
// way, with the initial (degradation-unaware) library.
func (f Flow) SynthesizeTraditional(ctx context.Context, circuit string) (*netlist.Netlist, error) {
	lib, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	return f.Synthesized(ctx, circuit, lib)
}

// SynthesizeAgingAware synthesizes with the worst-case
// degradation-aware library (paper Sec. 4.3).
func (f Flow) SynthesizeAgingAware(ctx context.Context, circuit string) (*netlist.Netlist, error) {
	lib, err := f.WorstLibrary(ctx)
	if err != nil {
		return nil, err
	}
	return f.Synthesized(ctx, circuit, lib)
}

// CP runs STA and returns the critical-path delay of the netlist
// under the library, recording the analysis in the registry carried by
// ctx.
func (f Flow) CP(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library) (float64, error) {
	res, err := sta.Analyze(ctx, nl, lib, f.STA)
	if err != nil {
		return 0, err
	}
	return res.CP, nil
}

// Guardband is one guardband estimation outcome (paper Fig. 4b): the
// timing margin that must be added on top of the fresh critical path so
// the circuit still meets timing after the projected aging.
type Guardband struct {
	Circuit   string
	FreshCP   float64 // critical path before aging [s]
	AgedCP    float64 // critical path under the aging scenario [s]
	Guardband float64 // AgedCP - FreshCP [s]
}

// StaticGuardband estimates the guardband of a netlist under a
// static aging stress scenario, traced under a "core.guardband.static"
// span.
func (f Flow) StaticGuardband(ctx context.Context, circuit string, nl *netlist.Netlist, s aging.Scenario) (Guardband, error) {
	ctx, sp := obs.StartSpan(ctx, "core.guardband.static")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	sp.SetAttr("scenario", s.String())
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return Guardband{}, err
	}
	aged, err := f.Library(ctx, s)
	if err != nil {
		return Guardband{}, err
	}
	fcp, err := f.CP(ctx, nl, fresh)
	if err != nil {
		return Guardband{}, err
	}
	acp, err := f.CP(ctx, nl, aged)
	if err != nil {
		return Guardband{}, err
	}
	return Guardband{Circuit: circuit, FreshCP: fcp, AgedCP: acp, Guardband: acp - fcp}, nil
}

// DynamicGuardband estimates the guardband under the aging stress a
// specific workload induces (paper Sec. 4.2): simulate the workload,
// extract per-instance duty cycles, annotate the netlist with lambda
// indexes, and time it against the complete degradation-aware library.
// The scenario fan-out behind the complete library dominates the cost
// and is fully cancelable; traced as "core.guardband.dynamic".
func (f Flow) DynamicGuardband(ctx context.Context, circuit string, nl *netlist.Netlist,
	stim func(step int) map[string]uint64, steps int) (Guardband, *netlist.Netlist, error) {

	ctx, sp := obs.StartSpan(ctx, "core.guardband.dynamic")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	sp.SetAttr("steps", steps)
	sim, err := gatesim.New(nl)
	if err != nil {
		return Guardband{}, nil, err
	}
	prob := sim.Activities(stim, steps)
	lambdas, err := gatesim.DeriveLambdas(nl, prob)
	if err != nil {
		return Guardband{}, nil, err
	}
	ann := nl.Annotate(lambdas)
	base := aging.WorstCase(f.Lifetime)
	scens, err := netlist.AnnotatedScenarios(ann, base)
	if err != nil {
		return Guardband{}, nil, err
	}
	sp.SetAttr("scenarios", len(scens))
	merged, err := f.CompleteLibrary(ctx, scens)
	if err != nil {
		return Guardband{}, nil, err
	}
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return Guardband{}, nil, err
	}
	fcp, err := f.CP(ctx, nl, fresh)
	if err != nil {
		return Guardband{}, nil, err
	}
	acp, err := f.CP(ctx, ann, &merged.Library)
	if err != nil {
		return Guardband{}, nil, err
	}
	return Guardband{Circuit: circuit, FreshCP: fcp, AgedCP: acp, Guardband: acp - fcp}, ann, nil
}

// Area returns the total cell area of a netlist in um^2.
func Area(nl *netlist.Netlist) (float64, error) {
	st, err := nl.ComputeStats(gatesim.CatalogLookup)
	if err != nil {
		return 0, err
	}
	return st.AreaUm2, nil
}
