package core

import (
	"context"
	"fmt"

	"ageguard/internal/aging"
	"ageguard/internal/conc"
	"ageguard/internal/gatesim"
	"ageguard/internal/image"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/rtl"
	"ageguard/internal/sta"
)

// ImageCase is one scenario of the paper's system-level study (Fig. 6c/7):
// a design style (aging-unaware vs aging-aware synthesis) operated after a
// given amount of aging stress, with NO guardband — both designs run at
// the frequency of the traditional design in the absence of aging.
type ImageCase struct {
	Label    string
	Aware    bool           // design synthesized with the degradation-aware library
	Scenario aging.Scenario // stress accumulated at evaluation time
}

// StandardImageCases returns the scenarios of Fig. 6(c): unaged,
// balance-case (the outcome of duty-cycle balancing mitigation) after 1
// year, and worst-case after 1 and 10 years, for both design styles.
func StandardImageCases() []ImageCase {
	return []ImageCase{
		{Label: "unaware-year0", Aware: false, Scenario: aging.Fresh()},
		{Label: "unaware-balance-1y", Aware: false, Scenario: aging.BalanceCase(1)},
		{Label: "unaware-worst-1y", Aware: false, Scenario: aging.WorstCase(1)},
		{Label: "unaware-worst-10y", Aware: false, Scenario: aging.WorstCase(10)},
		{Label: "aware-year0", Aware: true, Scenario: aging.Fresh()},
		{Label: "aware-worst-1y", Aware: true, Scenario: aging.WorstCase(1)},
		{Label: "aware-worst-10y", Aware: true, Scenario: aging.WorstCase(10)},
	}
}

// ImageOutcome is the measured quality of one case.
type ImageOutcome struct {
	Label string
	PSNR  float64
	Out   *image.Gray
}

// ctx cancellation is honored throughout (checked between
// cases, each of which is a full gate-level image simulation) and a
// "core.imagestudy" trace span.
func (f Flow) ImageStudy(ctx context.Context, img *image.Gray, cases []ImageCase) ([]ImageOutcome, error) {
	ctx, sp := obs.StartSpan(ctx, "core.imagestudy")
	defer sp.End()
	sp.SetAttr("cases", len(cases))
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	dctTrad, err := f.SynthesizeTraditional(ctx, "DCT")
	if err != nil {
		return nil, err
	}
	idctTrad, err := f.SynthesizeTraditional(ctx, "IDCT")
	if err != nil {
		return nil, err
	}
	dctAware, err := f.SynthesizeAgingAware(ctx, "DCT")
	if err != nil {
		return nil, err
	}
	idctAware, err := f.SynthesizeAgingAware(ctx, "IDCT")
	if err != nil {
		return nil, err
	}
	cpDCT, err := f.CP(ctx, dctTrad, fresh)
	if err != nil {
		return nil, err
	}
	cpIDCT, err := f.CP(ctx, idctTrad, fresh)
	if err != nil {
		return nil, err
	}
	period := cpDCT
	if cpIDCT > period {
		period = cpIDCT
	}

	var out []ImageOutcome
	for _, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: image study canceled before case %s: %w", c.Label, conc.WrapCanceled(err))
		}
		lib, err := f.Library(ctx, c.Scenario)
		if err != nil {
			return nil, err
		}
		dctNl, idctNl := dctTrad, idctTrad
		if c.Aware {
			dctNl, idctNl = dctAware, idctAware
		}
		dctT, err := f.circuitTransform(ctx, dctNl, lib, period, "x", "y")
		if err != nil {
			return nil, fmt.Errorf("core: case %s DCT: %w", c.Label, err)
		}
		idctT, err := f.circuitTransform(ctx, idctNl, lib, period, "z", "y")
		if err != nil {
			return nil, fmt.Errorf("core: case %s IDCT: %w", c.Label, err)
		}
		rec := image.RunChainBatch(img, dctT, idctT)
		out = append(out, ImageOutcome{Label: c.Label, PSNR: image.PSNR(img, rec), Out: rec})
	}
	return out, nil
}

// circuitTransform wraps a synthesized transform netlist, operated at the
// given clock period under the given (possibly aged) library, as a batch
// 8-point transform. Rows are streamed through the 2-stage register
// pipeline (input regs, output regs), so results emerge with a latency of
// two cycles.
func (f Flow) circuitTransform(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library,
	period float64, inPrefix, outPrefix string) (image.Transform1DBatch, error) {

	res, err := sta.Analyze(ctx, nl, lib, f.STA)
	if err != nil {
		return nil, err
	}
	ts, err := gatesim.NewTimed(nl, lib, res)
	if err != nil {
		return nil, err
	}
	const w = rtl.DCTWidth
	// Input bit names: <inPrefix><a..h>[bit]; outputs: <outPrefix><0..7>[bit].
	inName := func(k, bit int) string {
		return fmt.Sprintf("%s%c[%d]", inPrefix, 'a'+k, bit)
	}
	outName := func(k, bit int) string {
		return fmt.Sprintf("%s%d[%d]", outPrefix, k, bit)
	}
	return func(rows [][8]int64) [][8]int64 {
		results := make([][8]int64, len(rows))
		n := len(rows)
		for cyc := 0; cyc < n+2; cyc++ {
			feed := rows[min(cyc, n-1)]
			in := make(map[string]bool, 8*w)
			for k := 0; k < 8; k++ {
				v := uint64(feed[k])
				for b := 0; b < w; b++ {
					in[inName(k, b)] = v>>uint(b)&1 == 1
				}
			}
			got := ts.Cycle(in, period)
			if cyc >= 2 {
				var vec [8]int64
				for k := 0; k < 8; k++ {
					var v uint64
					for b := 0; b < w; b++ {
						if got[outName(k, b)] {
							v |= 1 << uint(b)
						}
					}
					vec[k] = signExtend(v, w)
				}
				results[cyc-2] = vec
			}
		}
		return results
	}, nil
}

func signExtend(v uint64, w int) int64 {
	if v>>(uint(w)-1)&1 == 1 {
		v |= ^uint64(0) << uint(w)
	}
	return int64(v)
}
