package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ageguard/internal/aging"
	"ageguard/internal/conc"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
	"ageguard/internal/synth"
	"ageguard/internal/units"
)

// ----------------------------------------------------------------------------
// Fig. 1: impact of aging on a gate's delay across operating conditions.

// Surface is a delay-change surface over the OPC grid for one cell arc.
type Surface struct {
	Cell     string
	Edge     liberty.Edge
	Slews    []float64   // input slew axis [s]
	Loads    []float64   // output load axis [F]
	DeltaPct [][]float64 // [slew][load] delay change in percent
}

// AgingSurface computes the paper's Fig. 1 surface: the percentage delay
// change of the cell's first timing arc, per OPC, between the fresh
// library and worst-case aging at the flow lifetime.
func (f Flow) AgingSurface(ctx context.Context, cell string, edge liberty.Edge) (*Surface, error) {
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return nil, err
	}
	fa := fresh.MustCell(cell).Arcs[0]
	aa := aged.MustCell(cell).Arcs[0]
	s := &Surface{Cell: cell, Edge: edge, Slews: fresh.Slews, Loads: fresh.Loads}
	for i := range fresh.Slews {
		row := make([]float64, len(fresh.Loads))
		for j := range fresh.Loads {
			fd := fa.Delay[edge].Values[i][j]
			ad := aa.Delay[edge].Values[i][j]
			row[j] = deltaPct(fd, ad)
		}
		s.DeltaPct = append(s.DeltaPct, row)
	}
	return s, nil
}

// deltaPct returns the percent change from fresh to aged delay, guarding
// against near-zero fresh delays (possible at extreme slews).
func deltaPct(fresh, aged float64) float64 {
	den := math.Abs(fresh)
	if den < 1*units.Ps {
		den = 1 * units.Ps
	}
	return (aged - fresh) / den * 100
}

// Format renders the surface as an aligned table (slew rows x load cols).
func (s *Surface) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (output %s) delay change %% under worst-case aging\n", s.Cell, s.Edge)
	fmt.Fprintf(&b, "%12s", "slew\\load")
	for _, l := range s.Loads {
		fmt.Fprintf(&b, "%9s", units.FFString(l))
	}
	b.WriteByte('\n')
	for i, sl := range s.Slews {
		fmt.Fprintf(&b, "%12s", units.PsString(sl))
		for j := range s.Loads {
			fmt.Fprintf(&b, "%+9.1f", s.DeltaPct[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ----------------------------------------------------------------------------
// Fig. 2: distribution of delay changes, single OPC vs all OPCs.

// Distribution summarizes per-cell delay changes under worst-case aging.
type Distribution struct {
	Single []float64 // one value per (cell, arc, edge) at the single OPC
	Multi  []float64 // one value per (cell, arc, edge, OPC)
}

// ImprovedFraction returns the fraction of observations that improved
// (negative delta) — the paper reports ~16% under multiple OPCs.
func improvedFraction(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	n := 0
	for _, x := range v {
		if x < 0 {
			n++
		}
	}
	return float64(n) / float64(len(v))
}

// ImprovedFractionMulti is the improved share across all OPCs.
func (d *Distribution) ImprovedFractionMulti() float64 { return improvedFraction(d.Multi) }

// ImprovedFractionSingle is the improved share at the single OPC.
func (d *Distribution) ImprovedFractionSingle() float64 { return improvedFraction(d.Single) }

// Range returns the min and max of the multi-OPC deltas.
func (d *Distribution) Range() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range d.Multi {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// Histogram bins values into n equal bins over [lo, hi].
func Histogram(v []float64, lo, hi float64, n int) []int {
	bins := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range v {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// DelayChangeDistribution computes the paper's Fig. 2 data over the whole
// combinational cell set. The "single OPC" column follows [12,13]: the
// slowest input slew with the smallest output capacitance.
func (f Flow) DelayChangeDistribution(ctx context.Context) (*Distribution, error) {
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return nil, err
	}
	d := &Distribution{}
	// Single-OPC reference: the nominal corner (fastest slew, smallest
	// load). This reproduces the paper's Fig. 2 single-OPC histogram, in
	// which all delays degrade by at most ~15%.
	si := 0
	for _, name := range fresh.CellNames() {
		fc := fresh.Cells[name]
		ac, ok := aged.Cells[name]
		if !ok || fc.Seq {
			continue
		}
		for ai := range fc.Arcs {
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				ft := fc.Arcs[ai].Delay[e]
				at := ac.Arcs[ai].Delay[e]
				if ft == nil || at == nil {
					continue
				}
				d.Single = append(d.Single, deltaPct(ft.Values[si][0], at.Values[si][0]))
				for i := range fresh.Slews {
					for j := range fresh.Loads {
						// Points whose fresh delay is essentially zero
						// (slow-ramp crossover artifacts) have no meaningful
						// percentage and are excluded, as in any percentage
						// histogram over measured delays.
						if math.Abs(ft.Values[i][j]) < 2*units.Ps {
							continue
						}
						d.Multi = append(d.Multi, deltaPct(ft.Values[i][j], at.Values[i][j]))
					}
				}
			}
		}
	}
	return d, nil
}

// ----------------------------------------------------------------------------
// Fig. 5 baselines.

// SingleOPCLibrary models the state-of-the-art flows [12,13] that measure
// aging at one operating condition only: each arc's aged/fresh delay ratio
// at a single pessimistic OPC (a slow slew with the smallest output
// capacitance, following the paper's "slowest signal slew along with the
// smallest output capacitance") is applied uniformly across the whole
// table, so the strong slew/load dependence of aging (Fig. 1) is lost and
// gates that would improve or degrade mildly are all penalized alike.
func SingleOPCLibrary(fresh, aged *liberty.Library) *liberty.Library {
	out := &liberty.Library{
		Name:     fresh.Name + "_singleopc",
		Scenario: aged.Scenario,
		Vdd:      fresh.Vdd,
		Slews:    fresh.Slews,
		Loads:    fresh.Loads,
		Cells:    map[string]*liberty.CellTiming{},
	}
	si := 2 * len(fresh.Slews) / 3
	for name, fc := range fresh.Cells {
		ac, ok := aged.Cells[name]
		if !ok {
			continue
		}
		cp := *fc
		cp.Arcs = make([]liberty.Arc, len(fc.Arcs))
		for ai := range fc.Arcs {
			arc := fc.Arcs[ai]
			na := arc
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				if arc.Delay[e] == nil {
					continue
				}
				fd := arc.Delay[e].Values[si][0]
				ad := ac.Arcs[ai].Delay[e].Values[si][0]
				factor := scaleFactor(fd, ad)
				na.Delay[e] = arc.Delay[e].Scale(factor)
				na.OutSlew[e] = arc.OutSlew[e].Scale(factor)
			}
			cp.Arcs[ai] = na
		}
		out.Cells[name] = &cp
	}
	return out
}

// scaleFactor converts a (fresh, aged) delay pair at the reference OPC
// into a multiplicative aging factor, guarded against tiny or negative
// reference delays and clamped to a sane range.
func scaleFactor(fresh, aged float64) float64 {
	den := fresh
	if den < 2*units.Ps {
		den = 2 * units.Ps
	}
	return units.Clamp(1+(aged-fresh)/den, 0.2, 10)
}

// Fig5Row is one circuit's guardband comparison (Fig. 5a/b/c).
type Fig5Row struct {
	Circuit string
	Full    float64 // guardband from the full degradation-aware flow [s]
	Base    float64 // guardband from the state-of-the-art baseline [s]
	// DeltaPct = (Base-Full)/Full*100: negative = underestimation.
	DeltaPct float64
}

// Fig5Report is the full comparison across the benchmark set.
type Fig5Report struct {
	Aspect string // "mu", "opc" or "cpswitch"
	Rows   []Fig5Row
	AvgPct float64
}

func summarize(aspect string, rows []Fig5Row) *Fig5Report {
	r := &Fig5Report{Aspect: aspect, Rows: rows}
	for i := range rows {
		rows[i].DeltaPct = (rows[i].Base - rows[i].Full) / rows[i].Full * 100
		r.AvgPct += rows[i].DeltaPct
	}
	r.AvgPct /= float64(len(rows))
	return r
}

// Fig5a quantifies neglecting the mobility degradation: guardbands from
// the Vth-only library versus the full (Vth + mu) library, over the given
// circuits (paper: -19% on average).
func (f Flow) Fig5a(ctx context.Context, circuits []string) (*Fig5Report, error) {
	vth, err := f.VthOnlyLibrary(ctx)
	if err != nil {
		return nil, err
	}
	return f.fig5(ctx, circuits, "mu", func(ctx context.Context, nl *netlist.Netlist, full Guardband) (float64, error) {
		fresh, err := f.FreshLibrary(ctx)
		if err != nil {
			return 0, err
		}
		fcp, err := f.CP(ctx, nl, fresh)
		if err != nil {
			return 0, err
		}
		vcp, err := f.CP(ctx, nl, vth)
		if err != nil {
			return 0, err
		}
		return vcp - fcp, nil
	})
}

// Fig5b quantifies using a single OPC: guardbands from the single-OPC
// scaled library versus the full library (paper: +214% on average).
func (f Flow) Fig5b(ctx context.Context, circuits []string) (*Fig5Report, error) {
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return nil, err
	}
	single := SingleOPCLibrary(fresh, aged)
	return f.fig5(ctx, circuits, "opc", func(ctx context.Context, nl *netlist.Netlist, full Guardband) (float64, error) {
		scp, err := f.CP(ctx, nl, single)
		if err != nil {
			return 0, err
		}
		return scp - full.FreshCP, nil
	})
}

// Fig5c quantifies neglecting critical-path switching: the aged delay of
// the *initially* critical path versus the true aged critical path
// (paper: ~-6% on average).
func (f Flow) Fig5c(ctx context.Context, circuits []string) (*Fig5Report, error) {
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return nil, err
	}
	return f.fig5(ctx, circuits, "cpswitch", func(ctx context.Context, nl *netlist.Netlist, full Guardband) (float64, error) {
		res, err := sta.Analyze(ctx, nl, fresh, f.STA)
		if err != nil {
			return 0, err
		}
		agedInitPath, err := sta.PathDelayUnder(nl, res.Worst, aged, f.STA)
		if err != nil {
			return 0, err
		}
		return agedInitPath - res.CP, nil
	})
}

// fig5 runs the per-circuit comparison concurrently: each circuit's
// synthesis + STA legs are independent (libraries are immutable and the
// characterizer deduplicates concurrent requests), and every leg writes
// only its own pre-indexed row, keeping report order deterministic. Each
// circuit leg is traced as a child of the "core.fig5" span.
func (f Flow) fig5(ctx context.Context, circuits []string, aspect string,
	baseline func(ctx context.Context, nl *netlist.Netlist, full Guardband) (float64, error)) (*Fig5Report, error) {

	ctx, sp := obs.StartSpan(ctx, "core.fig5")
	defer sp.End()
	sp.SetAttr("aspect", aspect)
	sp.SetAttr("circuits", len(circuits))
	rows := make([]Fig5Row, len(circuits))
	err := conc.ParFor(ctx, f.workers(), len(circuits), func(i int) error {
		c := circuits[i]
		nl, err := f.SynthesizeTraditional(ctx, c)
		if err != nil {
			return err
		}
		full, err := f.StaticGuardband(ctx, c, nl, aging.WorstCase(f.Lifetime))
		if err != nil {
			return err
		}
		base, err := baseline(ctx, nl, full)
		if err != nil {
			return err
		}
		rows[i] = Fig5Row{Circuit: c, Full: full.Guardband, Base: base}
		return nil
	})
	if err != nil {
		err = conc.WrapCanceled(err)
		sp.EndErr(err)
		return nil, err
	}
	return summarize(aspect, rows), nil
}

// Format renders the report as the paper's per-circuit bar data.
func (r *Fig5Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig5(%s): guardband comparison\n", r.Aspect)
	fmt.Fprintf(&b, "%-10s %12s %12s %9s\n", "circuit", "full[ps]", "baseline[ps]", "delta%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %+9.1f\n",
			row.Circuit, row.Full/units.Ps, row.Base/units.Ps, row.DeltaPct)
	}
	fmt.Fprintf(&b, "%-10s %25s %+9.1f\n", "AVERAGE", "", r.AvgPct)
	return b.String()
}

// ----------------------------------------------------------------------------
// Fig. 6a/b: guardband containment by aging-aware synthesis.

// ContainmentRow compares the traditional and aging-aware designs of one
// circuit (paper Fig. 6a/b).
type ContainmentRow struct {
	Circuit      string
	TradFreshCP  float64 // baseline: traditional design, fresh library
	TradAgedCP   float64
	AwareAgedCP  float64
	RequiredGB   float64 // TradAgedCP - TradFreshCP
	ContainedGB  float64 // AwareAgedCP - TradFreshCP
	ReductionPct float64 // guardband shrink
	FreqGainPct  float64 // aged-frequency gain of the aware design
	TradArea     float64 // um^2
	AwareArea    float64
	AreaOvhPct   float64
}

// Containment runs the Fig. 6a/b comparison for one circuit,
// traced under a "core.containment" span.
func (f Flow) Containment(ctx context.Context, circuit string) (ContainmentRow, error) {
	ctx, sp := obs.StartSpan(ctx, "core.containment")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	var row ContainmentRow
	row.Circuit = circuit
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return row, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return row, err
	}
	trad, err := f.Synthesized(ctx, circuit, fresh)
	if err != nil {
		return row, err
	}
	aware, err := f.Synthesized(ctx, circuit, aged)
	if err != nil {
		return row, err
	}
	if row.TradFreshCP, err = f.CP(ctx, trad, fresh); err != nil {
		return row, err
	}
	if row.TradAgedCP, err = f.CP(ctx, trad, aged); err != nil {
		return row, err
	}
	if row.AwareAgedCP, err = f.CP(ctx, aware, aged); err != nil {
		return row, err
	}
	row.RequiredGB = row.TradAgedCP - row.TradFreshCP
	row.ContainedGB = row.AwareAgedCP - row.TradFreshCP
	row.ReductionPct = (1 - row.ContainedGB/row.RequiredGB) * 100
	row.FreqGainPct = (row.TradAgedCP/row.AwareAgedCP - 1) * 100
	if row.TradArea, err = Area(trad); err != nil {
		return row, err
	}
	if row.AwareArea, err = Area(aware); err != nil {
		return row, err
	}
	row.AreaOvhPct = (row.AwareArea/row.TradArea - 1) * 100
	return row, nil
}

// ContainmentReport aggregates Fig. 6a/b rows.
type ContainmentReport struct {
	Rows            []ContainmentRow
	AvgReductionPct float64
	MaxReductionPct float64
	AvgFreqGainPct  float64
	AvgAreaOvhPct   float64
}

// ContainmentAll runs the comparison over the circuit list. Circuits are
// analyzed concurrently (bounded by Flow.Parallelism) into pre-indexed
// rows; the aggregation stays serial and order-stable. Canceling ctx
// stops circuit dispatch and all in-flight synthesis/characterization
// work; the error then matches conc.ErrCanceled.
func (f Flow) ContainmentAll(ctx context.Context, circuits []string) (*ContainmentReport, error) {
	ctx, sp := obs.StartSpan(ctx, "core.containment.all")
	defer sp.End()
	sp.SetAttr("circuits", len(circuits))
	rows := make([]ContainmentRow, len(circuits))
	err := conc.ParFor(ctx, f.workers(), len(circuits), func(i int) error {
		row, err := f.Containment(ctx, circuits[i])
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		err = conc.WrapCanceled(err)
		sp.EndErr(err)
		return nil, err
	}
	rep := &ContainmentReport{Rows: rows}
	for _, row := range rows {
		rep.AvgReductionPct += row.ReductionPct
		rep.MaxReductionPct = math.Max(rep.MaxReductionPct, row.ReductionPct)
		rep.AvgFreqGainPct += row.FreqGainPct
		rep.AvgAreaOvhPct += row.AreaOvhPct
	}
	n := float64(len(rep.Rows))
	rep.AvgReductionPct /= n
	rep.AvgFreqGainPct /= n
	rep.AvgAreaOvhPct /= n
	return rep, nil
}

// Format renders the containment report (Fig. 6a/b rows).
func (r *ContainmentReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig6a/b: guardband containment by aging-aware synthesis\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %9s %8s %10s %10s %8s\n",
		"circuit", "reqGB[ps]", "contGB[ps]", "reduc%", "freq+%", "areaT", "areaA", "area+%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %9.1f %8.2f %10.0f %10.0f %8.2f\n",
			row.Circuit, row.RequiredGB/units.Ps, row.ContainedGB/units.Ps,
			row.ReductionPct, row.FreqGainPct, row.TradArea, row.AwareArea, row.AreaOvhPct)
	}
	fmt.Fprintf(&b, "AVERAGE reduction %.1f%% (max %.1f%%), freq gain %.2f%%, area overhead %.2f%%\n",
		r.AvgReductionPct, r.MaxReductionPct, r.AvgFreqGainPct, r.AvgAreaOvhPct)
	return b.String()
}

// BenchmarkCircuits returns the paper's evaluation circuits in figure
// order.
func BenchmarkCircuits() []string {
	return []string{"DSP", "FFT", "RISC-6P", "RISC-5P", "VLIW", "DCT", "IDCT"}
}

// SortedKeys is a small helper for deterministic map iteration in reports.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ----------------------------------------------------------------------------
// Related-work baseline [14]: iterative tightening.

// TighteningRow compares guardband containment achieved by the
// iterative-tightening baseline of the paper's related work ([14]:
// identify the paths that become critical after aging, then let ordinary
// — degradation-unaware — synthesis tighten them) against this work's
// degradation-aware synthesis.
type TighteningRow struct {
	Circuit       string
	RequiredGB    float64 // traditional design
	TightenedGB   float64 // baseline [14]
	ContainedGB   float64 // this work (degradation-aware library)
	BaselinePct   float64 // reduction achieved by [14]
	AgingAwarePct float64 // reduction achieved by this work
}

// IterativeTightening runs the [14]-style baseline on one circuit: aged
// timing identifies critical paths, fresh-library sizing re-optimizes
// them. Its structural weakness — the re-optimization cannot see which
// replacement cells age well — is exactly the paper's criticism.
func (f Flow) IterativeTightening(ctx context.Context, circuit string) (TighteningRow, error) {
	ctx, sp := obs.StartSpan(ctx, "core.tightening")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	var row TighteningRow
	row.Circuit = circuit
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return row, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return row, err
	}
	trad, err := f.Synthesized(ctx, circuit, fresh)
	if err != nil {
		return row, err
	}
	freshCP, err := f.CP(ctx, trad, fresh)
	if err != nil {
		return row, err
	}
	tradAged, err := f.CP(ctx, trad, aged)
	if err != nil {
		return row, err
	}
	tightened, err := synth.SizeGatesDual(ctx, trad, fresh, aged, f.synthConfig())
	if err != nil {
		return row, err
	}
	tightAged, err := f.CP(ctx, tightened, aged)
	if err != nil {
		return row, err
	}
	aware, err := f.Containment(ctx, circuit)
	if err != nil {
		return row, err
	}
	row.RequiredGB = tradAged - freshCP
	row.TightenedGB = tightAged - freshCP
	row.ContainedGB = aware.ContainedGB
	row.BaselinePct = (1 - row.TightenedGB/row.RequiredGB) * 100
	row.AgingAwarePct = aware.ReductionPct
	return row, nil
}

// ----------------------------------------------------------------------------
// Duty-cycle guardband grid: one netlist re-timed under every grid library.

// GuardbandGrid is the outcome of re-timing one synthesized netlist under
// the full duty-cycle library grid (the paper's Fig. 5 estimation sweep):
// the aged critical path as a function of (lambdaP, lambdaN).
type GuardbandGrid struct {
	Circuit string
	FreshCP float64     // critical path under the fresh library [s]
	Lambdas []float64   // duty-cycle axis, aging.LambdaGrid()
	AgedCP  [][]float64 // [iP][iN] critical path under WithLambda(lp, ln) [s]
}

// Guardband returns AgedCP[iP][iN] - FreshCP.
func (g *GuardbandGrid) Guardband(iP, iN int) float64 {
	return g.AgedCP[iP][iN] - g.FreshCP
}

// Worst returns the grid point with the largest guardband.
func (g *GuardbandGrid) Worst() (lp, ln, gb float64) {
	for i, row := range g.AgedCP {
		for j, cp := range row {
			if v := cp - g.FreshCP; v > gb {
				lp, ln, gb = g.Lambdas[i], g.Lambdas[j], v
			}
		}
	}
	return lp, ln, gb
}

// Format renders the guardband grid in picoseconds, lambdaP down,
// lambdaN across.
func (g *GuardbandGrid) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: guardband [ps] over duty cycles (fresh CP %s)\n",
		g.Circuit, units.PsString(g.FreshCP))
	fmt.Fprintf(&b, "%5s", "lP\\lN")
	for _, ln := range g.Lambdas {
		fmt.Fprintf(&b, "%7.1f", ln)
	}
	b.WriteByte('\n')
	for i, row := range g.AgedCP {
		fmt.Fprintf(&b, "%5.1f", g.Lambdas[i])
		for _, cp := range row {
			fmt.Fprintf(&b, "%7.1f", (cp-g.FreshCP)/units.Ps)
		}
		b.WriteByte('\n')
	}
	lp, ln, gb := g.Worst()
	fmt.Fprintf(&b, "worst %s at lambdaP=%.1f lambdaN=%.1f\n", units.PsString(gb), lp, ln)
	return b.String()
}

// GuardbandGridFor synthesizes the circuit traditionally, then times
// the one netlist under all 121 duty-cycle libraries of the paper's grid
// in a single batched STA run (sta.AnalyzeBatch): the netlist
// topology is compiled once and every library only rebinds timing views,
// fanning out over Flow.Parallelism workers. Canceling ctx stops both the
// characterization sweep and the batch mid-flight with an error matching
// conc.ErrCanceled.
func (f Flow) GuardbandGridFor(ctx context.Context, circuit string) (*GuardbandGrid, error) {
	ctx, sp := obs.StartSpan(ctx, "core.guardband.grid")
	defer sp.End()
	sp.SetAttr("circuit", circuit)
	nl, err := f.SynthesizeTraditional(ctx, circuit)
	if err != nil {
		return nil, err
	}
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	fcp, err := f.CP(ctx, nl, fresh)
	if err != nil {
		return nil, err
	}
	scens := aging.GridScenarios(f.Lifetime)
	libs, err := f.Char.CharacterizeAll(ctx, scens)
	if err != nil {
		return nil, err
	}
	results, err := sta.AnalyzeBatch(ctx, nl, libs, f.STA, f.workers())
	if err != nil {
		return nil, err
	}
	axis := aging.LambdaGrid()
	g := &GuardbandGrid{Circuit: circuit, FreshCP: fcp, Lambdas: axis}
	g.AgedCP = make([][]float64, len(axis))
	for i := range axis {
		g.AgedCP[i] = make([]float64, len(axis))
		for j := range axis {
			g.AgedCP[i][j] = results[i*len(axis)+j].CP
		}
	}
	return g, nil
}
