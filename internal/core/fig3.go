package core

import (
	"context"
	"fmt"
	"strings"

	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

// Fig3Stage is one gate on a motivational path with its arrival under the
// fresh and aged libraries.
type Fig3Stage struct {
	Cell          string
	FreshPS       float64 // stage arrival contribution, fresh [ps]
	AgedPS        float64 // aged [ps]
	DeltaPct      float64
	FreshArrival  float64
	AgedArrivalPS float64
}

// Fig3Report reproduces the paper's Fig. 3: two register-to-register
// paths whose criticality switches under aging — the initially critical
// path ages mildly while the initially short path ages strongly.
type Fig3Report struct {
	Path1, Path2           []Fig3Stage // per-stage breakdown
	Path1Fresh, Path2Fresh float64     // endpoint arrivals, fresh [s]
	Path1Aged, Path2Aged   float64     // aged [s]
	Switched               bool        // criticality switched after aging
	Fanout1, Fanout2       int         // dummy loads used on each path
}

// Fig3PathSwitch constructs the two-path example. Path 1 is built from
// NOR-class gates (whose aging impact is mild or even negative at the
// encountered operating conditions), path 2 from NAND-class gates under
// slew/load conditions that amplify aging. A small deterministic search
// over dummy fanout loads finds a configuration where path 1 is critical
// before aging and path 2 after — demonstrating why guardbanding from the
// initial critical path alone is wrong.
func (f Flow) Fig3PathSwitch(ctx context.Context) (*Fig3Report, error) {
	fresh, err := f.FreshLibrary(ctx)
	if err != nil {
		return nil, err
	}
	aged, err := f.WorstLibrary(ctx)
	if err != nil {
		return nil, err
	}
	var best *Fig3Report
	for k1 := 0; k1 <= 10; k1++ {
		for k2 := 0; k2 <= 10; k2++ {
			rep, err := f.fig3Config(ctx, fresh, aged, k1, k2)
			if err != nil {
				return nil, err
			}
			if rep.Switched {
				return rep, nil
			}
			if best == nil || closer(rep) < closer(best) {
				best = rep
			}
		}
	}
	return best, nil
}

// closer scores how near a configuration is to switching (smaller is
// better), used only to return the most instructive non-switching config.
func closer(r *Fig3Report) float64 {
	d1 := r.Path1Fresh - r.Path2Fresh // want > 0
	d2 := r.Path2Aged - r.Path1Aged   // want > 0
	score := 0.0
	if d1 < 0 {
		score -= d1
	}
	if d2 < 0 {
		score -= d2
	}
	return score
}

// fig3Config builds one candidate two-path netlist with k1/k2 dummy loads.
func (f Flow) fig3Config(ctx context.Context, fresh, aged *liberty.Library, k1, k2 int) (*Fig3Report, error) {
	nl := netlist.New("fig3")
	nl.Inputs = []string{"d1", "d2", "en"}
	nl.Outputs = []string{"q1", "q2"}

	// Path 1: a buffer chain observed on its rising lineage — the mildest
	// sustained aging our library offers (each BUF's internal fall stage
	// even benefits from the weakened pull-up opposition).
	nl.AddInst("ff1", "DFF_X1", map[string]string{"D": "d1", "CK": netlist.ClockNet, "Q": "p1a"})
	nl.AddInst("p1g1", "BUF_X1", map[string]string{"A": "p1a", "Z": "p1b"})
	nl.AddInst("p1g2", "BUF_X1", map[string]string{"A": "p1b", "Z": "p1c0"})
	nl.AddInst("p1g3", "BUF_X1", map[string]string{"A": "p1c0", "Z": "p1c1"})
	nl.AddInst("p1g4", "BUF_X1", map[string]string{"A": "p1c1", "Z": "p1c"})
	nl.AddInst("p1g5", "BUF_X2", map[string]string{"A": "p1c", "Z": "p1d"})
	nl.AddInst("cap1", "DFF_X1", map[string]string{"D": "p1d", "CK": netlist.ClockNet, "Q": "q1"})

	// Path 2: a weak inverter with a heavy fanout load produces a slow
	// falling slew into a NAND whose rising output then fights the
	// still-conducting pull-down — the operating condition under which
	// NBTI aging is amplified several-fold (Fig. 1a).
	nl.AddInst("ff2", "DFF_X1", map[string]string{"D": "d2", "CK": netlist.ClockNet, "Q": "p2a"})
	nl.AddInst("p2g1", "INV_X1", map[string]string{"A": "p2a", "ZN": "p2b"})
	nl.AddInst("p2g2", "NAND2_X1", map[string]string{"A1": "p2b", "A2": "en", "ZN": "p2c0"})
	nl.AddInst("p2g3", "BUF_X2", map[string]string{"A": "p2c0", "Z": "p2c1"})
	nl.AddInst("p2g4", "BUF_X2", map[string]string{"A": "p2c1", "Z": "p2c"})
	nl.AddInst("p2g5", "BUF_X2", map[string]string{"A": "p2c", "Z": "p2d"})
	nl.AddInst("cap2", "DFF_X1", map[string]string{"D": "p2d", "CK": netlist.ClockNet, "Q": "q2"})

	// Dummy fanout loads shape slews and loads along each path; path 2's
	// weak driver with heavy loads produces the slow slews under which
	// NAND aging is amplified (Fig. 1a).
	for i := 0; i < k1; i++ {
		s := fmt.Sprintf("ld1_%d", i)
		nl.AddInst(s, "INV_X2", map[string]string{"A": "p1b", "ZN": s + "_o"})
	}
	for i := 0; i < k2; i++ {
		s := fmt.Sprintf("ld2_%d", i)
		nl.AddInst(s, "INV_X4", map[string]string{"A": "p2b", "ZN": s + "_o"})
	}

	rf, err := sta.Analyze(ctx, nl, fresh, f.STA)
	if err != nil {
		return nil, err
	}
	ra, err := sta.Analyze(ctx, nl, aged, f.STA)
	if err != nil {
		return nil, err
	}
	// Like the paper's HSPICE example, each path is observed on one
	// specific sensitized transition: both on their rising endpoint edges
	// (path 1's buffers stay on the mild rising lineage; path 2's rise
	// passes through the slow-slew NAND pull-up).
	arr := func(r *sta.Result, net string, e liberty.Edge) float64 {
		return r.Arrival[net][e]
	}
	rep := &Fig3Report{
		Fanout1: k1, Fanout2: k2,
		Path1Fresh: arr(rf, "p1d", liberty.Rise), Path2Fresh: arr(rf, "p2d", liberty.Rise),
		Path1Aged: arr(ra, "p1d", liberty.Rise), Path2Aged: arr(ra, "p2d", liberty.Rise),
	}
	// A switch in either direction demonstrates the effect; normalize so
	// that path 1 is the one that was critical before aging, as in the
	// paper's figure.
	rep.Switched = (rep.Path1Fresh > rep.Path2Fresh) != (rep.Path1Aged > rep.Path2Aged)
	swapped := rep.Path2Fresh > rep.Path1Fresh
	// Per-stage breakdown along each path's sensitized lineage.
	stage := func(r *sta.Result, nets []string, edges []liberty.Edge) []float64 {
		var out []float64
		prev := 0.0
		for i, n := range nets {
			a := arr(r, n, edges[i])
			out = append(out, a-prev)
			prev = a
		}
		return out
	}
	rise, fall := liberty.Rise, liberty.Fall
	p1nets := []string{"p1a", "p1b", "p1c0", "p1c1", "p1c", "p1d"}
	p2nets := []string{"p2a", "p2b", "p2c0", "p2c1", "p2c", "p2d"}
	p1cells := []string{"DFF_X1", "BUF_X1", "BUF_X1", "BUF_X1", "BUF_X1", "BUF_X2"}
	p2cells := []string{"DFF_X1", "INV_X1", "NAND2_X1", "BUF_X2", "BUF_X2", "BUF_X2"}
	p1edges := []liberty.Edge{rise, rise, rise, rise, rise, rise}
	p2edges := []liberty.Edge{rise, fall, rise, rise, rise, rise}
	f1, a1 := stage(rf, p1nets, p1edges), stage(ra, p1nets, p1edges)
	f2, a2 := stage(rf, p2nets, p2edges), stage(ra, p2nets, p2edges)
	for i := range p1nets {
		rep.Path1 = append(rep.Path1, mkStage(p1cells[i], f1[i], a1[i]))
		rep.Path2 = append(rep.Path2, mkStage(p2cells[i], f2[i], a2[i]))
	}
	if swapped {
		rep.Path1, rep.Path2 = rep.Path2, rep.Path1
		rep.Path1Fresh, rep.Path2Fresh = rep.Path2Fresh, rep.Path1Fresh
		rep.Path1Aged, rep.Path2Aged = rep.Path2Aged, rep.Path1Aged
	}
	return rep, nil
}

func mkStage(cell string, fd, ad float64) Fig3Stage {
	return Fig3Stage{
		Cell:     cell,
		FreshPS:  fd / units.Ps,
		AgedPS:   ad / units.Ps,
		DeltaPct: (ad - fd) / fd * 100,
	}
}

// Format renders the two-path comparison like the paper's Fig. 3 callout.
func (r *Fig3Report) Format() string {
	var b strings.Builder
	line := func(name string, stages []Fig3Stage, fresh, aged float64) {
		fmt.Fprintf(&b, "%s:", name)
		for _, s := range stages {
			fmt.Fprintf(&b, "  %s %.0fps->%.0fps (%+.1f%%)", s.Cell, s.FreshPS, s.AgedPS, s.DeltaPct)
		}
		fmt.Fprintf(&b, "  TOTAL %s -> %s (%+.1f%%)\n",
			units.PsString(fresh), units.PsString(aged), (aged-fresh)/fresh*100)
	}
	line("Path1", r.Path1, r.Path1Fresh, r.Path1Aged)
	line("Path2", r.Path2, r.Path2Fresh, r.Path2Aged)
	if r.Switched {
		fmt.Fprintf(&b, "criticality SWITCHED: path1 critical before aging, path2 after (fanouts %d/%d)\n",
			r.Fanout1, r.Fanout2)
	} else {
		fmt.Fprintf(&b, "no switch found in search range\n")
	}
	return b.String()
}
