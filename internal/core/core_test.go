package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

func TestBenchmarkLookup(t *testing.T) {
	for _, name := range BenchmarkCircuits() {
		a, err := Benchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NumAnds() == 0 {
			t.Errorf("%s: empty network", name)
		}
	}
	if _, err := Benchmark("NOPE"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(BenchmarkCircuits()) != 7 {
		t.Error("paper evaluates 7 circuits")
	}
}

func TestDeltaPctGuard(t *testing.T) {
	if got := deltaPct(10*units.Ps, 11*units.Ps); math.Abs(got-10) > 1e-9 {
		t.Errorf("deltaPct = %v, want 10", got)
	}
	// Near-zero fresh delay must not explode.
	if got := deltaPct(0.01*units.Ps, 1*units.Ps); got > 100 {
		t.Errorf("guarded deltaPct = %v, want <= 100", got)
	}
}

func TestScaleFactorClamped(t *testing.T) {
	if f := scaleFactor(10*units.Ps, 12*units.Ps); math.Abs(f-1.2) > 1e-9 {
		t.Errorf("factor = %v, want 1.2", f)
	}
	if f := scaleFactor(-5*units.Ps, 100*units.Ps); f > 10 {
		t.Errorf("factor = %v, want clamped <= 10", f)
	}
	if f := scaleFactor(10*units.Ps, 0); f < 0.2 {
		t.Errorf("factor = %v, want clamped >= 0.2", f)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{-100, -5, 0, 5, 14.9, 15, 400, 1000}, -60, 400, 23)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 8 {
		t.Errorf("histogram lost values: %v", h)
	}
	if h[0] == 0 {
		t.Error("below-range value not clamped into first bin")
	}
	if h[22] == 0 {
		t.Error("above-range value not clamped into last bin")
	}
}

func TestImprovedFraction(t *testing.T) {
	d := &Distribution{Multi: []float64{-1, -2, 3, 4}, Single: []float64{1, 2}}
	if f := d.ImprovedFractionMulti(); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("multi improved = %v", f)
	}
	if f := d.ImprovedFractionSingle(); f != 0 {
		t.Errorf("single improved = %v", f)
	}
}

func TestSingleOPCLibraryStructure(t *testing.T) {
	f := Default()
	fresh, err := f.FreshLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	aged, err := f.WorstLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	single := SingleOPCLibrary(fresh, aged)
	if len(single.Cells) != len(fresh.Cells) {
		t.Fatalf("cell count %d != %d", len(single.Cells), len(fresh.Cells))
	}
	// Every scaled arc delay must be fresh * constant factor; spot check:
	fc := fresh.MustCell("NAND2_X1")
	sc := single.MustCell("NAND2_X1")
	si := len(fresh.Slews) / 2
	want := sc.Arcs[0].Delay[liberty.Rise].Values[si][0] / fc.Arcs[0].Delay[liberty.Rise].Values[si][0]
	got := sc.Arcs[0].Delay[liberty.Rise].Values[0][3] / fc.Arcs[0].Delay[liberty.Rise].Values[0][3]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("non-uniform scaling: %v vs %v", got, want)
	}
	if want <= 1 {
		t.Errorf("NAND2 single-OPC factor = %v, want > 1", want)
	}
	// The original library must be untouched.
	if fresh.MustCell("NAND2_X1").Arcs[0].Delay[liberty.Rise].Values[0][0] !=
		fc.Arcs[0].Delay[liberty.Rise].Values[0][0] {
		t.Error("SingleOPCLibrary mutated its input")
	}
}

func TestAgingSurfaceShape(t *testing.T) {
	f := Default()
	s, err := f.AgingSurface(context.Background(), "NAND2_X1", liberty.Rise)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DeltaPct) != len(s.Slews) || len(s.DeltaPct[0]) != len(s.Loads) {
		t.Fatal("surface dimensions wrong")
	}
	n := len(s.Slews) - 1
	// Paper Fig. 1(a): impact grows with slew at small load, and the
	// slow-slew/small-load corner far exceeds the nominal corner.
	if s.DeltaPct[n][0] <= s.DeltaPct[0][0] {
		t.Error("NAND aging should grow with input slew")
	}
	if s.DeltaPct[n][0] < 100 {
		t.Errorf("slow-slew corner = %v%%, expected >100%%", s.DeltaPct[n][0])
	}
	if s.Format() == "" {
		t.Error("empty Format")
	}
}

func TestLibraryVariants(t *testing.T) {
	f := Default()
	fresh, err := f.FreshLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vth, err := f.VthOnlyLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	worst, err := f.WorstLibrary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Vth-only aged delays must sit between fresh and fully aged.
	pick := func(l *liberty.Library) float64 {
		return l.MustCell("INV_X1").Arcs[0].Delay[liberty.Rise].Values[1][1]
	}
	df, dv, dw := pick(fresh), pick(vth), pick(worst)
	if !(df < dv && dv < dw) {
		t.Errorf("delay ordering wrong: fresh=%v vthonly=%v worst=%v", df, dv, dw)
	}
}

func TestCompleteLibraryScenarios(t *testing.T) {
	f := Default()
	scens := []aging.Scenario{
		aging.WorstCase(10).WithLambda(0.3, 0.7),
		aging.WorstCase(10).WithLambda(1, 1),
	}
	m, err := f.CompleteLibrary(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Cell("INV_X1_0.3_0.7"); !ok {
		t.Error("missing lambda-indexed cell")
	}
	if _, ok := m.Cell("INV_X1_1.0_1.0"); !ok {
		t.Error("missing worst-case cell")
	}
}

func TestGuardbandGridWorstAndFormat(t *testing.T) {
	g := &GuardbandGrid{
		Circuit: "DSP",
		FreshCP: 100 * units.Ps,
		Lambdas: []float64{0.0, 0.5, 1.0},
		AgedCP: [][]float64{
			{100 * units.Ps, 104 * units.Ps, 108 * units.Ps},
			{103 * units.Ps, 110 * units.Ps, 118 * units.Ps},
			{106 * units.Ps, 119 * units.Ps, 131 * units.Ps},
		},
	}
	if gb := g.Guardband(0, 0); gb != 0 {
		t.Errorf("Guardband(0,0) = %v, want 0", gb)
	}
	lp, ln, gb := g.Worst()
	if lp != 1.0 || ln != 1.0 {
		t.Errorf("Worst at lambdaP=%.1f lambdaN=%.1f, want 1.0/1.0", lp, ln)
	}
	if got, want := gb, 31*units.Ps; math.Abs(got-want) > 1e-18 {
		t.Errorf("worst guardband = %v, want %v", got, want)
	}
	s := g.Format()
	for _, want := range []string{"DSP", "lP\\lN", "worst 31.00ps at lambdaP=1.0 lambdaN=1.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q:\n%s", want, s)
		}
	}
	if rows := strings.Count(s, "\n"); rows != 6 {
		t.Errorf("Format() has %d lines, want 6 (header, axis, 3 rows, worst):\n%s", rows, s)
	}
}
