// Package cli holds the process scaffolding shared by every ageguard
// command: the observability run-control flags (-metrics, -trace-out,
// -pprof, -timeout), the characterization robustness knobs (-retries,
// -strict), logger setup and the conventional error-exit taxonomy.
//
// A command wires itself in three lines:
//
//	c := cli.Register("mycmd", flag.CommandLine)
//	flag.Parse()
//	c.Main(root, func(ctx context.Context) error { return run(ctx, ...) })
//
// where root is the context minted in package main (the only place a
// root context is created).
package cli

import (
	"context"
	"errors"
	"flag"
	"log"
	"time"

	"ageguard/internal/conc"
	"ageguard/internal/obs"
)

// Common bundles the flags every command shares. Obs carries the
// observability flags (see obs.CLIFlags); Retries and Strict feed the
// characterization layer's escalation ladder and salvage policy.
type Common struct {
	Obs     *obs.CLIFlags
	Retries int
	Strict  bool
}

// Register configures the standard logger (no timestamps, "name: "
// prefix), installs the shared flags on fs (use flag.CommandLine in
// main) and returns the holder. Call flag.Parse afterwards, then Main.
func Register(name string, fs *flag.FlagSet) *Common {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	c := &Common{Obs: obs.RegisterFlags(fs)}
	fs.IntVar(&c.Retries, "retries", 0,
		"solver escalation-ladder depth per grid point (0 = default, negative = off)")
	fs.BoolVar(&c.Strict, "strict", false,
		"fail on non-convergent grid points instead of salvaging by interpolation")
	return c
}

// ServeFlags bundles the resilience knobs of the serving daemon:
// crash-safe warm start, the background cache scrubber and the drain
// grace window. Registered separately from Common because only
// daemon-shaped commands carry them.
type ServeFlags struct {
	WarmStart     bool
	ScrubInterval time.Duration
	DrainGrace    time.Duration
}

// RegisterServe installs the daemon resilience flags on fs.
func RegisterServe(fs *flag.FlagSet) *ServeFlags {
	sf := &ServeFlags{}
	fs.BoolVar(&sf.WarmStart, "warm-start", true,
		"verify the disk cache at boot and pre-populate the LRU before reporting ready")
	fs.DurationVar(&sf.ScrubInterval, "scrub-interval", 0,
		"re-verify on-disk cache entries at this period, quarantining corrupt files (0 disables)")
	fs.DurationVar(&sf.DrainGrace, "drain-grace", 0,
		"keep serving this long after SIGTERM while /readyz reports not-ready")
	return sf
}

// Main runs fn under the standard scaffolding: root (mint it in package
// main — internal code never creates root contexts) is extended with a
// fresh metrics registry, canceled on SIGINT/SIGTERM and when the
// -timeout budget elapses (obs.CLIFlags.Setup); the configured sinks
// are flushed after fn returns, on the error path too. The error is
// then mapped through the shared exit taxonomy — a deadline and an
// interrupt each get a distinct one-line diagnosis, anything else is
// fatal verbatim.
func (c *Common) Main(root context.Context, fn func(ctx context.Context) error) {
	ctx, _, finish := c.Obs.Setup(root)
	err := fn(ctx)
	finish()
	if msg, failed := Diagnose(err); failed {
		log.Fatal(msg)
	}
}

// Diagnose maps a command error to its exit message. failed reports
// whether the command should exit nonzero; msg is the one-line
// diagnosis to print when it should.
func Diagnose(err error) (msg string, failed bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline exceeded (-timeout)", true
	case errors.Is(err, conc.ErrCanceled):
		return "interrupted", true
	default:
		return err.Error(), true
	}
}
