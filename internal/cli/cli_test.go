package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"

	"ageguard/internal/conc"
)

func TestRegisterInstallsSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register("x", fs)
	err := fs.Parse([]string{
		"-retries", "3", "-strict",
		"-metrics", "-trace-out", "m.json", "-timeout", "90s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Retries != 3 || !c.Strict {
		t.Errorf("robustness flags not parsed: %+v", c)
	}
	if !c.Obs.Metrics || c.Obs.TraceOut != "m.json" || c.Obs.Timeout != 90*time.Second {
		t.Errorf("obs flags not parsed: %+v", c.Obs)
	}
}

func TestDiagnose(t *testing.T) {
	cases := []struct {
		err    error
		msg    string
		failed bool
	}{
		{nil, "", false},
		{context.DeadlineExceeded, "deadline exceeded (-timeout)", true},
		{fmt.Errorf("sweep: %w", context.DeadlineExceeded), "deadline exceeded (-timeout)", true},
		{conc.ErrCanceled, "interrupted", true},
		{fmt.Errorf("dsp: %w", conc.ErrCanceled), "interrupted", true},
		{errors.New("boom"), "boom", true},
	}
	for _, c := range cases {
		msg, failed := Diagnose(c.err)
		if msg != c.msg || failed != c.failed {
			t.Errorf("Diagnose(%v) = (%q, %v), want (%q, %v)", c.err, msg, failed, c.msg, c.failed)
		}
	}
}
