// Package netlist models gate-level netlists: instances of standard cells
// connected by nets, with primary inputs/outputs and an implicit single
// clock for sequential elements. It is the interchange format between
// synthesis (which produces netlists), static timing analysis, gate-level
// simulation and the duty-cycle annotation pass of the paper's dynamic
// aging-stress flow (Sec. 4.2).
package netlist

import (
	"fmt"
	"sort"

	"ageguard/internal/liberty"
)

// ClockNet is the reserved name of the single clock net.
const ClockNet = "clk"

// Inst is one placed cell instance.
type Inst struct {
	Name string
	Cell string            // catalog cell name, possibly lambda-annotated
	Pins map[string]string // pin name -> net name
}

// Output returns the net connected to the given output pin name.
func (in *Inst) Output(pin string) string { return in.Pins[pin] }

// Netlist is a flat gate-level design.
type Netlist struct {
	Name    string
	Inputs  []string // primary input nets (excluding the clock)
	Outputs []string // primary output nets
	Insts   []*Inst
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist { return &Netlist{Name: name} }

// AddInst appends an instance connecting the given pins.
func (n *Netlist) AddInst(name, cell string, pins map[string]string) *Inst {
	in := &Inst{Name: name, Cell: cell, Pins: pins}
	n.Insts = append(n.Insts, in)
	return in
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:    n.Name,
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
	}
	for _, in := range n.Insts {
		pins := make(map[string]string, len(in.Pins))
		for k, v := range in.Pins {
			pins[k] = v
		}
		c.AddInst(in.Name, in.Cell, pins)
	}
	return c
}

// CellInfo is the subset of cell metadata the netlist checker and
// statistics need; both liberty.Library and the raw catalog can provide it.
type CellInfo struct {
	Inputs  []string
	Output  string
	Seq     bool
	Clock   string
	Data    string
	AreaUm2 float64
}

// Lookup resolves a cell name to its interface metadata.
type Lookup func(cell string) (CellInfo, bool)

// LibraryLookup adapts a liberty library into a Lookup.
func LibraryLookup(lib *liberty.Library) Lookup {
	return func(cell string) (CellInfo, bool) {
		ct, ok := lib.Cell(cell)
		if !ok {
			return CellInfo{}, false
		}
		return CellInfo{
			Inputs: ct.Inputs, Output: ct.Output,
			Seq: ct.Seq, Clock: ct.Clock, Data: ct.Data,
			AreaUm2: ct.AreaUm2,
		}, true
	}
}

// Drivers returns a map net -> instance driving it. Primary inputs and the
// clock have no driver. An error is returned on multiple drivers.
func (n *Netlist) Drivers(look Lookup) (map[string]*Inst, error) {
	d := map[string]*Inst{}
	for _, in := range n.Insts {
		ci, ok := look(in.Cell)
		if !ok {
			return nil, fmt.Errorf("netlist: unknown cell %q (inst %s)", in.Cell, in.Name)
		}
		out := in.Pins[ci.Output]
		if out == "" {
			return nil, fmt.Errorf("netlist: inst %s output unconnected", in.Name)
		}
		if prev, dup := d[out]; dup {
			return nil, fmt.Errorf("netlist: net %q driven by %s and %s", out, prev.Name, in.Name)
		}
		d[out] = in
	}
	return d, nil
}

// Fanouts returns net -> list of (instance, input pin) loads.
type PinRef struct {
	Inst *Inst
	Pin  string
}

// FanoutMap computes all sinks of every net.
func (n *Netlist) FanoutMap(look Lookup) (map[string][]PinRef, error) {
	f := map[string][]PinRef{}
	for _, in := range n.Insts {
		ci, ok := look(in.Cell)
		if !ok {
			return nil, fmt.Errorf("netlist: unknown cell %q", in.Cell)
		}
		for _, p := range ci.Inputs {
			net := in.Pins[p]
			if net == "" {
				return nil, fmt.Errorf("netlist: inst %s pin %s unconnected", in.Name, p)
			}
			f[net] = append(f[net], PinRef{Inst: in, Pin: p})
		}
	}
	return f, nil
}

// Check validates structural sanity: known cells, fully connected pins,
// unique drivers, every non-PI net driven, and acyclic combinational logic.
func (n *Netlist) Check(look Lookup) error {
	drivers, err := n.Drivers(look)
	if err != nil {
		return err
	}
	fanouts, err := n.FanoutMap(look)
	if err != nil {
		return err
	}
	sources := map[string]bool{ClockNet: true}
	for _, pi := range n.Inputs {
		sources = setAdd(sources, pi)
	}
	for net := range fanouts {
		if !sources[net] && drivers[net] == nil {
			return fmt.Errorf("netlist: net %q has loads but no driver", net)
		}
	}
	for _, po := range n.Outputs {
		if !sources[po] && drivers[po] == nil {
			return fmt.Errorf("netlist: output %q undriven", po)
		}
	}
	if _, err := n.Levelize(look); err != nil {
		return err
	}
	return nil
}

func setAdd(m map[string]bool, k string) map[string]bool { m[k] = true; return m }

// Levelize returns the instances in topological order, treating sequential
// cells as sources/sinks (their outputs are launch points). An error is
// returned on a combinational cycle.
func (n *Netlist) Levelize(look Lookup) ([]*Inst, error) {
	drivers, err := n.Drivers(look)
	if err != nil {
		return nil, err
	}
	type state byte
	const (
		white, grey, black state = 0, 1, 2
	)
	st := make(map[*Inst]state, len(n.Insts))
	order := make([]*Inst, 0, len(n.Insts))

	var visit func(in *Inst) error
	visit = func(in *Inst) error {
		switch st[in] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("netlist: combinational cycle through %s", in.Name)
		}
		st[in] = grey
		ci, _ := look(in.Cell)
		if !ci.Seq { // sequential cells break timing loops
			for _, p := range ci.Inputs {
				if drv := drivers[in.Pins[p]]; drv != nil {
					dci, _ := look(drv.Cell)
					if !dci.Seq {
						if err := visit(drv); err != nil {
							return err
						}
					}
				}
			}
		}
		st[in] = black
		order = append(order, in)
		return nil
	}
	// Sequential instances first (launch points), then the rest in DFS
	// post-order, which yields a valid topological order.
	for _, in := range n.Insts {
		if ci, ok := look(in.Cell); ok && ci.Seq {
			st[in] = black
			order = append(order, in)
		}
	}
	for _, in := range n.Insts {
		if err := visit(in); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Stats summarizes a netlist.
type Stats struct {
	Cells     int
	Seq       int
	AreaUm2   float64
	CellCount map[string]int // per base usage
}

// ComputeStats tallies instance counts and total area.
func (n *Netlist) ComputeStats(look Lookup) (Stats, error) {
	st := Stats{CellCount: map[string]int{}}
	for _, in := range n.Insts {
		ci, ok := look(in.Cell)
		if !ok {
			return st, fmt.Errorf("netlist: unknown cell %q", in.Cell)
		}
		st.Cells++
		if ci.Seq {
			st.Seq++
		}
		st.AreaUm2 += ci.AreaUm2
		st.CellCount[in.Cell]++
	}
	return st, nil
}

// Nets returns the sorted set of all net names.
func (n *Netlist) Nets() []string {
	set := map[string]bool{}
	for _, in := range n.Insts {
		for _, net := range in.Pins {
			set[net] = true
		}
	}
	for _, s := range n.Inputs {
		set[s] = true
	}
	for _, s := range n.Outputs {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
