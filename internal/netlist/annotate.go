package netlist

import (
	"fmt"
	"strings"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
)

// Lambdas holds workload-derived duty cycles for one instance: the average
// stress fractions of its pMOS and nMOS transistors (paper Sec. 4.2). In
// static CMOS both device types share the input signals, so
// lambdaP ~= 1 - lambdaN per cell.
type Lambdas struct {
	P, N float64
}

// Annotate returns a copy of the netlist in which every instance's cell
// name carries the duty-cycle indexes the paper uses for the complete
// degradation-aware library: e.g. an AND2_X1 instance whose workload gives
// Avg(lambdaP)=0.4, Avg(lambdaN)=0.6 becomes AND2_X1_0.4_0.6. Duty cycles
// are snapped to the library's 0.1 grid. Instances missing from the map
// are annotated with worst-case stress (1.0, 1.0).
func (n *Netlist) Annotate(lambdas map[string]Lambdas) *Netlist {
	out := n.Clone()
	out.Name = n.Name + "_annotated"
	for _, in := range out.Insts {
		l, ok := lambdas[in.Name]
		if !ok {
			l = Lambdas{P: 1, N: 1}
		}
		in.Cell = liberty.IndexedName(in.Cell,
			aging.SnapLambda(l.P), aging.SnapLambda(l.N))
	}
	return out
}

// AnnotatedScenarios lists the distinct (lambdaP, lambdaN) pairs an
// annotated netlist references, as scenarios of the given base stress.
// Characterizing exactly these scenarios suffices to time the netlist
// against the merged library.
func AnnotatedScenarios(n *Netlist, base aging.Scenario) ([]aging.Scenario, error) {
	seen := map[string]aging.Scenario{}
	for _, in := range n.Insts {
		lp, ln, _, err := SplitAnnotated(in.Cell)
		if err != nil {
			return nil, err
		}
		s := base.WithLambda(lp, ln)
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("netlist: instance %s: %w", in.Name, err)
		}
		seen[s.Key()] = s
	}
	out := make([]aging.Scenario, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	return out, nil
}

// SplitAnnotated decomposes an annotated cell name into duty cycles and
// the plain cell name, e.g. "AND2_X1_0.4_0.6" -> (0.4, 0.6, "AND2_X1").
func SplitAnnotated(cell string) (lp, ln float64, plain string, err error) {
	parts := strings.Split(cell, "_")
	if len(parts) < 3 {
		return 0, 0, "", fmt.Errorf("netlist: %q is not lambda-annotated", cell)
	}
	if _, e := fmt.Sscanf(parts[len(parts)-2]+" "+parts[len(parts)-1], "%f %f", &lp, &ln); e != nil {
		return 0, 0, "", fmt.Errorf("netlist: %q is not lambda-annotated", cell)
	}
	plain = strings.Join(parts[:len(parts)-2], "_")
	return lp, ln, plain, nil
}
