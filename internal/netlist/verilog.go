package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog serializes the netlist as structural Verilog, the
// interchange format between synthesis, timing and simulation in the
// paper's tool flow. Net names containing brackets (bus bits) are emitted
// as escaped identifiers.
func WriteVerilog(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	ports := append([]string{}, n.Inputs...)
	ports = append(ports, n.Outputs...)
	seq := false
	for _, in := range n.Insts {
		if strings.HasPrefix(in.Cell, "DFF") {
			seq = true
			break
		}
	}
	if seq {
		ports = append([]string{ClockNet}, ports...)
	}
	vports := make([]string, len(ports))
	for i, p := range ports {
		vports[i] = vname(p)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", vname(n.Name), strings.Join(vports, ", "))
	if seq {
		fmt.Fprintf(bw, "  input %s;\n", vname(ClockNet))
	}
	for _, p := range n.Inputs {
		fmt.Fprintf(bw, "  input %s;\n", vname(p))
	}
	for _, p := range n.Outputs {
		fmt.Fprintf(bw, "  output %s;\n", vname(p))
	}
	// Internal wires: every net that is not a port.
	isPort := map[string]bool{ClockNet: true}
	for _, p := range ports {
		isPort[p] = true
	}
	for _, net := range n.Nets() {
		if !isPort[net] {
			fmt.Fprintf(bw, "  wire %s;\n", vname(net))
		}
	}
	for _, in := range n.Insts {
		pins := make([]string, 0, len(in.Pins))
		for p, net := range in.Pins {
			pins = append(pins, fmt.Sprintf(".%s(%s)", p, vname(net)))
		}
		sort.Strings(pins)
		fmt.Fprintf(bw, "  %s %s (%s);\n", vname(in.Cell), vname(in.Name), strings.Join(pins, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// vname escapes identifiers that are not simple Verilog names.
func vname(s string) string {
	simple := true
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				simple = false
			}
		default:
			simple = false
		}
	}
	if simple && s != "" {
		return s
	}
	return "\\" + s + " " // escaped identifier (trailing space required)
}

// ReadVerilog parses the structural-Verilog subset produced by
// WriteVerilog (single module, one instance per line, named port
// connections), enabling round trips through external tools.
func ReadVerilog(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := &Netlist{}
	var text strings.Builder
	for sc.Scan() {
		text.WriteString(sc.Text())
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Statement-split on ';'.
	for _, stmt := range strings.Split(text.String(), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || stmt == "endmodule" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "module "):
			open := strings.IndexByte(stmt, '(')
			if open < 0 {
				return nil, fmt.Errorf("netlist: bad module header")
			}
			n.Name = unvname(strings.TrimSpace(stmt[len("module "):open]))
		case strings.HasPrefix(stmt, "input "):
			for _, p := range splitNets(stmt[len("input "):]) {
				if p != ClockNet {
					n.Inputs = append(n.Inputs, p)
				}
			}
		case strings.HasPrefix(stmt, "output "):
			n.Outputs = append(n.Outputs, splitNets(stmt[len("output "):])...)
		case strings.HasPrefix(stmt, "wire "):
			// wires are implied by connections
		default:
			inst, err := parseVerilogInst(stmt)
			if err != nil {
				return nil, err
			}
			n.Insts = append(n.Insts, inst)
		}
	}
	if n.Name == "" {
		return nil, fmt.Errorf("netlist: no module found")
	}
	return n, nil
}

func splitNets(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, unvname(f))
		}
	}
	return out
}

func unvname(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "\\") {
		return strings.TrimSpace(s[1:])
	}
	return s
}

func parseVerilogInst(stmt string) (*Inst, error) {
	open := strings.IndexByte(stmt, '(')
	if open < 0 {
		return nil, fmt.Errorf("netlist: bad instance %q", stmt)
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 2 {
		return nil, fmt.Errorf("netlist: bad instance header %q", stmt[:open])
	}
	body := strings.TrimSuffix(strings.TrimSpace(stmt[open+1:]), ")")
	pins := map[string]string{}
	for _, conn := range splitTop(body) {
		conn = strings.TrimSpace(conn)
		if !strings.HasPrefix(conn, ".") {
			return nil, fmt.Errorf("netlist: positional connection %q unsupported", conn)
		}
		lp := strings.IndexByte(conn, '(')
		if lp < 0 || !strings.HasSuffix(conn, ")") {
			return nil, fmt.Errorf("netlist: bad connection %q", conn)
		}
		pin := strings.TrimSpace(conn[1:lp])
		net := unvname(conn[lp+1 : len(conn)-1])
		pins[pin] = net
	}
	return &Inst{Name: unvname(head[1]), Cell: unvname(head[0]), Pins: pins}, nil
}

// splitTop splits on commas that are outside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" {
		out = append(out, s[start:])
	}
	return out
}
