package netlist

import (
	"bytes"
	"strings"
	"testing"

	"ageguard/internal/aging"
)

// tiny catalog for structural tests.
func look(cell string) (CellInfo, bool) {
	switch {
	case strings.HasPrefix(cell, "INV"):
		return CellInfo{Inputs: []string{"A"}, Output: "ZN", AreaUm2: 0.5}, true
	case strings.HasPrefix(cell, "NAND2"):
		return CellInfo{Inputs: []string{"A1", "A2"}, Output: "ZN", AreaUm2: 0.8}, true
	case strings.HasPrefix(cell, "DFF"):
		return CellInfo{Inputs: []string{"D", "CK"}, Output: "Q", Seq: true, Clock: "CK", Data: "D", AreaUm2: 4.0}, true
	}
	return CellInfo{}, false
}

func sample() *Netlist {
	n := New("t")
	n.Inputs = []string{"a", "b"}
	n.Outputs = []string{"y"}
	n.AddInst("g1", "NAND2_X1", map[string]string{"A1": "a", "A2": "b", "ZN": "n1"})
	n.AddInst("g2", "INV_X1", map[string]string{"A": "n1", "ZN": "y"})
	return n
}

func TestCheckOK(t *testing.T) {
	if err := sample().Check(look); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesDoubleDriver(t *testing.T) {
	n := sample()
	n.AddInst("g3", "INV_X1", map[string]string{"A": "a", "ZN": "y"})
	if err := n.Check(look); err == nil {
		t.Error("double driver not caught")
	}
}

func TestCheckCatchesUndriven(t *testing.T) {
	n := sample()
	n.AddInst("g3", "INV_X1", map[string]string{"A": "ghost", "ZN": "z"})
	if err := n.Check(look); err == nil {
		t.Error("undriven net not caught")
	}
}

func TestCheckCatchesCycle(t *testing.T) {
	n := New("loop")
	n.Outputs = []string{"y"}
	n.AddInst("g1", "INV_X1", map[string]string{"A": "y", "ZN": "x"})
	n.AddInst("g2", "INV_X1", map[string]string{"A": "x", "ZN": "y"})
	if err := n.Check(look); err == nil {
		t.Error("combinational cycle not caught")
	}
}

func TestSequentialBreaksCycle(t *testing.T) {
	n := New("seqloop")
	n.Outputs = []string{"q"}
	n.AddInst("g1", "INV_X1", map[string]string{"A": "q", "ZN": "d"})
	n.AddInst("r1", "DFF_X1", map[string]string{"D": "d", "CK": ClockNet, "Q": "q"})
	if err := n.Check(look); err != nil {
		t.Fatalf("sequential loop should be legal: %v", err)
	}
}

func TestLevelizeOrder(t *testing.T) {
	n := sample()
	order, err := n.Levelize(look)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, in := range order {
		pos[in.Name] = i
	}
	if pos["g1"] > pos["g2"] {
		t.Error("g1 must precede g2")
	}
}

func TestStats(t *testing.T) {
	st, err := sample().ComputeStats(look)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 2 || st.Seq != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.AreaUm2 != 1.3 {
		t.Errorf("area = %v", st.AreaUm2)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := sample()
	c := n.Clone()
	c.Insts[0].Pins["A1"] = "zzz"
	c.Insts[1].Cell = "INV_X4"
	if n.Insts[0].Pins["A1"] != "a" || n.Insts[1].Cell != "INV_X1" {
		t.Error("Clone shares state with original")
	}
}

func TestIORoundTrip(t *testing.T) {
	n := sample()
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "t" || len(got.Insts) != 2 || len(got.Inputs) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Insts[0].Pins["A1"] != "a" {
		t.Error("pins lost")
	}
	if err := got.Check(look); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("design x\nbogus line\nend\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader("design x\n")); err == nil {
		t.Error("missing end accepted")
	}
}

func TestAnnotate(t *testing.T) {
	n := sample()
	ann := n.Annotate(map[string]Lambdas{
		"g1": {P: 0.42, N: 0.58},
		// g2 missing -> worst case
	})
	if ann.Insts[0].Cell != "NAND2_X1_0.4_0.6" {
		t.Errorf("annotated = %s", ann.Insts[0].Cell)
	}
	if ann.Insts[1].Cell != "INV_X1_1.0_1.0" {
		t.Errorf("default annotation = %s", ann.Insts[1].Cell)
	}
	// Original untouched.
	if n.Insts[0].Cell != "NAND2_X1" {
		t.Error("Annotate mutated the input")
	}
}

func TestSplitAnnotated(t *testing.T) {
	lp, ln, plain, err := SplitAnnotated("NAND2_X1_0.4_0.6")
	if err != nil || lp != 0.4 || ln != 0.6 || plain != "NAND2_X1" {
		t.Errorf("split = %v %v %q %v", lp, ln, plain, err)
	}
	if _, _, _, err := SplitAnnotated("INV"); err == nil {
		t.Error("non-annotated name accepted")
	}
}

func TestAnnotatedScenarios(t *testing.T) {
	n := sample()
	ann := n.Annotate(map[string]Lambdas{
		"g1": {P: 0.4, N: 0.6},
		"g2": {P: 0.4, N: 0.6},
	})
	scen, err := AnnotatedScenarios(ann, aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(scen) != 1 {
		t.Fatalf("scenarios = %d, want 1 (deduplicated)", len(scen))
	}
	if scen[0].Key() != "0.4_0.6" {
		t.Errorf("key = %s", scen[0].Key())
	}
}

func TestNets(t *testing.T) {
	nets := sample().Nets()
	want := []string{"a", "b", "n1", "y"}
	if len(nets) != len(want) {
		t.Fatalf("nets = %v", nets)
	}
	for i := range want {
		if nets[i] != want[i] {
			t.Fatalf("nets = %v", nets)
		}
	}
}
