package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Write serializes the netlist in the reproduction's structural format
// (a minimal structural-Verilog equivalent):
//
//	design <name>
//	input <net> ...
//	output <net> ...
//	inst <name> <cell> <pin>=<net> ...
//	end
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\n", n.Name)
	if len(n.Inputs) > 0 {
		fmt.Fprintf(bw, "input %s\n", strings.Join(n.Inputs, " "))
	}
	if len(n.Outputs) > 0 {
		fmt.Fprintf(bw, "output %s\n", strings.Join(n.Outputs, " "))
	}
	for _, in := range n.Insts {
		pins := make([]string, 0, len(in.Pins))
		for p, net := range in.Pins {
			pins = append(pins, p+"="+net)
		}
		sort.Strings(pins)
		fmt.Fprintf(bw, "inst %s %s %s\n", in.Name, in.Cell, strings.Join(pins, " "))
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Read parses a netlist produced by Write.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := &Netlist{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "design":
			n.Name = f[1]
		case "input":
			n.Inputs = append(n.Inputs, f[1:]...)
		case "output":
			n.Outputs = append(n.Outputs, f[1:]...)
		case "inst":
			if len(f) < 4 {
				return nil, fmt.Errorf("netlist: line %d: short inst", lineNo)
			}
			pins := map[string]string{}
			for _, kv := range f[3:] {
				i := strings.IndexByte(kv, '=')
				if i < 0 {
					return nil, fmt.Errorf("netlist: line %d: bad pin %q", lineNo, kv)
				}
				pins[kv[:i]] = kv[i+1:]
			}
			n.AddInst(f[1], f[2], pins)
		case "end":
			return n, sc.Err()
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown keyword %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return n, fmt.Errorf("netlist: missing end")
}
