package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func seqSample() *Netlist {
	n := New("top")
	n.Inputs = []string{"a", "b[0]"}
	n.Outputs = []string{"y"}
	n.AddInst("g1", "NAND2_X1", map[string]string{"A1": "a", "A2": "b[0]", "ZN": "n1"})
	n.AddInst("r1", "DFF_X1", map[string]string{"D": "n1", "CK": ClockNet, "Q": "y"})
	return n
}

func TestVerilogRoundTrip(t *testing.T) {
	n := seqSample()
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, n); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"module top", "input clk;", "output y;", "endmodule", "NAND2_X1 g1"} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog missing %q:\n%s", want, text)
		}
	}
	got, err := ReadVerilog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "top" || len(got.Insts) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Insts[0].Pins["A2"] != "b[0]" {
		t.Errorf("escaped bus net lost: %q", got.Insts[0].Pins["A2"])
	}
	if len(got.Inputs) != 2 || len(got.Outputs) != 1 {
		t.Errorf("ports: in=%v out=%v", got.Inputs, got.Outputs)
	}
	if err := got.Check(look); err != nil {
		t.Fatal(err)
	}
}

func TestVerilogEscapedIdentifiers(t *testing.T) {
	if vname("abc") != "abc" || vname("a_b1") != "a_b1" {
		t.Error("simple names must not be escaped")
	}
	if vname("x[3]") != "\\x[3] " {
		t.Errorf("bus bit escape = %q", vname("x[3]"))
	}
	if vname("1bad") != "\\1bad " {
		t.Error("leading digit must be escaped")
	}
	if unvname("\\x[3] ") != "x[3]" {
		t.Error("unescape failed")
	}
}

func TestReadVerilogRejectsPositional(t *testing.T) {
	src := "module m (a, y);\ninput a;\noutput y;\nINV_X1 g (a, y);\nendmodule\n"
	if _, err := ReadVerilog(strings.NewReader(src)); err == nil {
		t.Error("positional connections should be rejected")
	}
}

func TestSplitTop(t *testing.T) {
	got := splitTop(".A(n1), .B(f(x)), .C(y)")
	if len(got) != 3 {
		t.Fatalf("splitTop = %v", got)
	}
}
