package synth

import (
	"context"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

// invChain builds a registered inverter chain driving one primary output.
func invChain(n int) *netlist.Netlist {
	nl := netlist.New("loadtest")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"y"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "w0"})
	prev := "w0"
	for i := 0; i < n-1; i++ {
		out := "w" + string(rune('1'+i))
		nl.AddInst("inv"+string(rune('0'+i)), "INV_X1", map[string]string{"A": prev, "ZN": out})
		prev = out
	}
	nl.AddInst("drv", "INV_X1", map[string]string{"A": prev, "ZN": "y"})
	return nl
}

// TestOutputLoadChangesSizing is the regression test for the zero-config
// STA bug: the optimization passes used to time every candidate under
// sta.Config{} regardless of the flow's configuration, so a non-default
// OutputLoad could never influence which drive strengths win. Now the
// caller's sta.Config is threaded through Config.STA, a heavy primary-
// output load must push the PO driver to a stronger drive than the
// default load does.
func TestOutputLoadChangesSizing(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	light := Config{STA: sta.Config{OutputLoad: 1 * units.FF}}
	heavy := Config{STA: sta.Config{OutputLoad: 60 * units.FF}}

	drive := func(cfg Config) int {
		t.Helper()
		sized, err := SizeGates(context.Background(), invChain(4), lib, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range sized.Insts {
			if in.Name == "drv" {
				return lib.MustCell(in.Cell).Drive
			}
		}
		t.Fatal("drv instance lost")
		return 0
	}
	dl, dh := drive(light), drive(heavy)
	if dh <= dl {
		t.Errorf("PO driver drive under 60fF load = X%d, not above X%d under 1fF — sta.Config not threaded through sizing", dh, dl)
	}
}

// TestSizeGatesDoesNotMutateInput: the optimization passes hand their
// netlist to an incremental Analyzer that swaps cells in place, so they
// must operate on a private clone.
func TestSizeGatesDoesNotMutateInput(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	nl := invChain(4)
	before := make(map[string]string)
	for _, in := range nl.Insts {
		before[in.Name] = in.Cell
	}
	if _, err := SizeGates(context.Background(), nl, lib, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverArea(context.Background(), nl, lib, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := SizeGatesDual(context.Background(), nl, lib, lib, Config{}); err != nil {
		t.Fatal(err)
	}
	for _, in := range nl.Insts {
		if in.Cell != before[in.Name] {
			t.Errorf("input netlist mutated: %s %s -> %s", in.Name, before[in.Name], in.Cell)
		}
	}
}
