package synth

import (
	"context"
	"math/rand"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/gatesim"
	"ageguard/internal/liberty"
	"ageguard/internal/logic"
	"ageguard/internal/netlist"
	"ageguard/internal/rtl"
	"ageguard/internal/sta"
)

// testLib characterizes (or loads from the repo cache) the full library
// for a scenario.
func testLib(t testing.TB, s aging.Scenario) *liberty.Library {
	t.Helper()
	cfg := char.CachedConfig()
	lib, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// adder8 builds an 8-bit ripple adder AIG.
func adder8() *logic.AIG {
	b := rtl.NewBuilder()
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	s, c := b.Add(x, y, logic.False)
	b.Output("s", s)
	b.OutputBit("cout", c)
	return b.A
}

// mixed builds a small network exercising XOR/MUX/AOI structures.
func mixed() *logic.AIG {
	b := rtl.NewBuilder()
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	sel := b.InputBit("sel")
	xo := b.XorB(x, y)
	an := b.AndB(x, b.Not(y))
	m := b.Mux2(sel, xo, an)
	b.Output("m", m)
	b.OutputBit("eq", b.Eq(x, y))
	b.OutputBit("lt", b.LtU(x, y))
	return b.A
}

func TestTruthTableHelpers(t *testing.T) {
	if expand(0b10, []uint32{5}, []uint32{3, 5}) != 0b1100 {
		t.Errorf("expand wrong: %04b", expand(0b10, []uint32{5}, []uint32{3, 5}))
	}
	if m := mergeLeaves([]uint32{1, 3}, []uint32{2, 3}); len(m) != 3 {
		t.Errorf("merge = %v", m)
	}
	if m := mergeLeaves([]uint32{1, 2, 3}, []uint32{4, 5}); m != nil {
		t.Errorf("oversized merge should fail, got %v", m)
	}
	if ttMask(2) != 0xf || ttMask(4) != 0xffff {
		t.Error("ttMask wrong")
	}
}

func TestPermutations(t *testing.T) {
	if n := len(permutations(3)); n != 6 {
		t.Errorf("3! = %d", n)
	}
	if n := len(permutations(4)); n != 24 {
		t.Errorf("4! = %d", n)
	}
}

func TestCutEnumeration(t *testing.T) {
	a := logic.New()
	x := a.Input("x")
	y := a.Input("y")
	z := a.Input("z")
	n1 := a.And(x, y)
	n2 := a.And(n1, z)
	a.AddOutput("o", n2)
	cuts := enumerateCuts(a)
	// n2 must have a cut {x,y,z} with tt = x&y&z.
	found := false
	for _, c := range cuts[n2.Node()] {
		if len(c.leaves) == 3 && c.tt == (0xAAAA&0xCCCC&0xF0F0&ttMask(3)) {
			found = true
		}
	}
	if !found {
		t.Error("3-input AND cut not enumerated")
	}
	// Every node keeps its trivial cut.
	for node := uint32(1); node < uint32(a.NumNodes()); node++ {
		last := cuts[node][len(cuts[node])-1]
		if len(last.leaves) != 1 || last.leaves[0] != node {
			t.Fatalf("node %d missing trivial cut", node)
		}
	}
}

// checkEquiv verifies mapped netlist vs AIG on random vectors.
func checkEquiv(t *testing.T, a *logic.AIG, nl *netlist.Netlist, vectors int) {
	t.Helper()
	sim, err := gatesim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for v := 0; v < vectors; v++ {
		in := make([]uint64, a.NumInputs())
		inMap := map[string]uint64{}
		for i := range in {
			in[i] = rng.Uint64()
			inMap[a.InputName(i)] = in[i]
		}
		want, _ := a.Eval64(in, nil)
		got := sim.Eval(inMap)
		for i, o := range a.Outputs() {
			if got[o.Name] != want[i] {
				t.Fatalf("output %s mismatch: got %x want %x", o.Name, got[o.Name], want[i])
			}
		}
	}
}

func TestMapAdderEquivalence(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	a := adder8()
	nl, err := Map(a, lib, "adder8", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Check(gatesim.CatalogLookup); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, a, nl, 20)
}

func TestMapMixedEquivalence(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	a := mixed()
	nl, err := Map(a, lib, "mixed", Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, a, nl, 20)
}

func TestMapUsesVarietyOfCells(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	a := mixed()
	nl, err := Map(a, lib, "mixed", Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := nl.ComputeStats(gatesim.CatalogLookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CellCount) < 4 {
		t.Errorf("mapper used only %d distinct cells: %v", len(st.CellCount), st.CellCount)
	}
}

func TestWrapSequential(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	a := adder8()
	nl, err := Map(a, lib, "adder8", Config{})
	if err != nil {
		t.Fatal(err)
	}
	seq := WrapSequential(nl)
	st, err := seq.ComputeStats(gatesim.CatalogLookup)
	if err != nil {
		t.Fatal(err)
	}
	wantRegs := len(nl.Inputs) + len(nl.Outputs)
	if st.Seq != wantRegs {
		t.Errorf("registers = %d, want %d", st.Seq, wantRegs)
	}
	if err := seq.Check(gatesim.CatalogLookup); err != nil {
		t.Fatal(err)
	}
	// Sequential behaviour: output appears two cycles after input
	// (input register + output register).
	sim, err := gatesim.New(seq)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{}
	setBus := func(name string, w int, v uint64) {
		for i := 0; i < w; i++ {
			bit := uint64(0)
			if v>>uint(i)&1 == 1 {
				bit = ^uint64(0)
			}
			in[busBit(name, i)] = bit
		}
	}
	setBus("x", 8, 11)
	setBus("y", 8, 31)
	sim.Step(in) // capture inputs
	out := sim.Step(in)
	got := uint64(0)
	for i := 0; i < 8; i++ {
		if out[busBit("s", i)]&1 == 1 {
			got |= 1 << uint(i)
		}
	}
	if got != 42 {
		t.Errorf("pipelined sum = %d, want 42", got)
	}
}

func busBit(name string, i int) string {
	return name + "[" + string(rune('0'+i)) + "]"
}

func TestSynthesizeImprovesOrHoldsCP(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	a := adder8()
	mapped, err := Map(a, lib, "adder8", Config{})
	if err != nil {
		t.Fatal(err)
	}
	seq := WrapSequential(mapped)
	base, err := sta.Analyze(context.Background(), seq, lib, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sized, err := SizeGates(context.Background(), seq, lib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := sta.Analyze(context.Background(), sized, lib, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if after.CP > base.CP {
		t.Errorf("sizing worsened CP: %v -> %v", base.CP, after.CP)
	}
	// Equivalence must be preserved by sizing (cells swap within a base).
	checkEquiv(t, a, sized, 10)
}

func TestSynthesizeFull(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	a := mixed()
	nl, err := Synthesize(context.Background(), a, lib, "mixed", Config{Buffering: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Check(gatesim.CatalogLookup); err != nil {
		t.Fatal(err)
	}
	if _, err := sta.Analyze(context.Background(), nl, lib, sta.Config{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, a, nl, 10)
}

func TestAgedLibraryChangesMapping(t *testing.T) {
	// The core premise of Sec. 4.3: handing the synthesis flow the
	// degradation-aware library changes its cell choices.
	fresh := testLib(t, aging.Fresh())
	aged := testLib(t, aging.WorstCase(10))
	a := rtl.GenFFT()
	nlF, err := Synthesize(context.Background(), a, fresh, "fft_fresh", Config{})
	if err != nil {
		t.Fatal(err)
	}
	nlA, err := Synthesize(context.Background(), a, aged, "fft_aged", Config{})
	if err != nil {
		t.Fatal(err)
	}
	stF, _ := nlF.ComputeStats(gatesim.CatalogLookup)
	stA, _ := nlA.ComputeStats(gatesim.CatalogLookup)
	same := true
	for k, v := range stF.CellCount {
		if stA.CellCount[k] != v {
			same = false
			break
		}
	}
	if same && len(stF.CellCount) == len(stA.CellCount) {
		t.Error("aged library produced an identical mapping; expected different cell choices")
	}
	// Both netlists must implement the same function.
	checkEquiv(t, a, nlA, 5)
}
