package synth

import (
	"sort"

	"ageguard/internal/cells"
	"ageguard/internal/liberty"
)

// match is one way to implement a cut function with a library cell:
// cell pin i connects to cut leaf perm[i], with leaves in complMask
// entering complemented (their negative polarity is consumed).
type match struct {
	base      string // cell base name, e.g. "NAND2"
	perm      []int  // perm[cellPin] = leafIndex
	complMask uint
	ninputs   int
}

// matchTable maps (leafCount, truth table) to candidate matches, built
// once per library from the cell catalog's Boolean functions.
type matchTable map[uint32][]match

func matchKey(nLeaves int, tt uint16) uint32 {
	return uint32(nLeaves)<<16 | uint32(tt&ttMask(nLeaves))
}

// buildMatchTable enumerates, for every combinational multi-input cell
// base present in the library, all input permutations and complementation
// masks, recording the resulting truth tables. INV/BUF/DFF are handled
// specially by the mapper and excluded here.
func buildMatchTable(lib *liberty.Library) matchTable {
	mt := matchTable{}
	seen := map[string]bool{}
	for _, name := range lib.CellNames() {
		ct := lib.Cells[name]
		if ct.Seq || ct.Base == "INV" || ct.Base == "BUF" || seen[ct.Base] {
			continue
		}
		seen[ct.Base] = true
		cell, ok := cells.ByName(ct.Base + "_X1")
		if !ok {
			continue
		}
		k := cell.NumInputs()
		if k > maxCutSize {
			continue
		}
		tt := cell.TruthTable()
		perms := permutations(k)
		for _, p := range perms {
			for mask := uint(0); mask < 1<<uint(k); mask++ {
				// Truth table over leaves: leaf j carries bit j of the
				// assignment; cell pin i sees leaf p[i], complemented when
				// p[i] is in mask.
				var out uint16
				for a := 0; a < 1<<uint(k); a++ {
					var bits uint
					for i := 0; i < k; i++ {
						v := uint(a) >> uint(p[i]) & 1
						if mask>>uint(p[i])&1 == 1 {
							v ^= 1
						}
						bits |= v << uint(i)
					}
					if tt>>bits&1 == 1 {
						out |= 1 << uint(a)
					}
				}
				key := matchKey(k, out)
				mt[key] = append(mt[key], match{
					base: ct.Base, perm: p, complMask: mask, ninputs: k,
				})
			}
		}
	}
	// Prefer matches with fewer complemented leaves, then smaller cells.
	for key, list := range mt {
		sort.SliceStable(list, func(i, j int) bool {
			bi, bj := popcount(list[i].complMask), popcount(list[j].complMask)
			if bi != bj {
				return bi < bj
			}
			return list[i].base < list[j].base
		})
		// Deduplicate identical (base, complMask) pairs differing only in
		// permutation of symmetric pins.
		var kept []match
		seenKey := map[string]bool{}
		for _, m := range list {
			k := m.base + string(rune('0'+m.complMask))
			if seenKey[k] {
				continue
			}
			seenKey[k] = true
			kept = append(kept, m)
			if len(kept) == 6 {
				break
			}
		}
		mt[key] = kept
	}
	return mt
}

func popcount(x uint) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func permutations(k int) [][]int {
	if k == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(cur []int, used uint)
	rec = func(cur []int, used uint) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			if used>>uint(i)&1 == 0 {
				rec(append(cur, i), used|1<<uint(i))
			}
		}
	}
	rec(nil, 0)
	return out
}
