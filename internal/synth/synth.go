// Package synth implements technology mapping and timing-driven netlist
// optimization — the reproduction's stand-in for the commercial synthesis
// flow (Synopsys Design Compiler with compile_ultra) the paper plugs its
// degradation-aware libraries into.
//
// The mapper is a cut-based Boolean matcher over an And-Inverter Graph:
// priority k-feasible cuts (k=4) are enumerated per node, cut functions are
// matched against the library's cell functions under input permutation and
// complementation, and a delay-oriented dynamic program selects the cover
// using the NLDM delay tables of the *provided* library. Timing-driven
// gate sizing and buffer insertion follow, driven by full STA.
//
// Because every cost in the flow is read from the given library, providing
// a degradation-aware (aged) library makes the optimizer select, per
// operating condition, the cells that age least — which is precisely the
// mechanism of the paper's Sec. 4.3 guardband containment.
package synth

import (
	"fmt"
	"math"

	"ageguard/internal/liberty"
	"ageguard/internal/logic"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

// Config tunes the mapper. The zero value selects defaults.
type Config struct {
	InputSlew  float64 // assumed PI slew for DP estimates; default 20ps
	EstWireCap float64 // estimated wire cap per mapped net; default 0.25fF
	EstSinkCap float64 // estimated cap per fanout for DP loads; default 0.9fF
	DPDrive    int     // drive strength assumed during DP; default 2

	// UnitDelay makes the mapper library-agnostic (depth-optimal cover
	// with unit cell delays). Used as one of the multi-start seeds so the
	// fresh and aged flows share a common structural strategy.
	UnitDelay bool

	// UnitMode selects the cost profile of the library-agnostic mapping:
	// 0 = pure unit delay, 1 = unit delay with an area penalty,
	// 2 = unit delay preferring wide cells (shallower covers). Different
	// modes yield structurally different covers, diversifying the shared
	// multi-start seeds.
	UnitMode int

	// MaxTransition caps the slew the DP propagates, mirroring the
	// max_transition design rule commercial flows enforce: the later
	// sizing/buffering passes repair bad slews, so unbounded estimates
	// would only distort the covering choices. Default 200ps.
	MaxTransition float64

	SizingRounds int  // timing-driven sizing iterations; default 4
	Buffering    bool // enable buffer insertion on critical high-fanout nets

	// STA parameterizes the timing analyses that drive seed selection,
	// gate sizing, buffer insertion and area recovery. The zero value
	// selects the sta defaults. Flows must thread the same sta.Config here
	// that their final signoff analysis uses — the optimizer used to
	// always time candidates under the zero config, silently diverging
	// from the flow's input slew / output load / wire caps.
	STA sta.Config
}

func (c *Config) fill() {
	if c.InputSlew == 0 {
		c.InputSlew = 20 * units.Ps
	}
	if c.EstWireCap == 0 {
		c.EstWireCap = 2 * units.FF
	}
	if c.EstSinkCap == 0 {
		c.EstSinkCap = 0.9 * units.FF
	}
	if c.DPDrive == 0 {
		c.DPDrive = 2
	}
	if c.SizingRounds == 0 {
		c.SizingRounds = 10
	}
	if c.MaxTransition == 0 {
		c.MaxTransition = 50 * units.Ps
	}
}

// cand is the best implementation found for one (node, polarity).
// Arrival times and slews are tracked per output edge (rise/fall), since
// aged libraries are strongly edge-asymmetric and an edge-blind cost
// would systematically mislead the covering choices.
type cand struct {
	ok     bool
	arr    [2]float64 // per liberty.Edge
	slew   [2]float64
	cutIdx int
	m      match
	cell   string // concrete library cell name
	viaInv bool
	// alias (node index + 1) marks a zero-cost structural alias: the node
	// equals another node (or its complement, aliasNeg), discovered via
	// cut-function support reduction.
	alias    uint32
	aliasNeg bool
}

// worstArr is the scalar DP objective: the later of the two edge arrivals.
func (c cand) worstArr() float64 {
	if c.arr[0] > c.arr[1] {
		return c.arr[0]
	}
	return c.arr[1]
}

type mapper struct {
	cfg  Config
	a    *logic.AIG
	lib  *liberty.Library
	mt   matchTable
	cuts [][]cut
	fan  []int
	best [2][]cand // [neg][node]

	// cover state
	nl      *netlist.Netlist
	covered [2][]string // net names, "" = not covered
	nameOf  []string    // input net names per node (inputs only)
	uid     int

	// loadHint carries measured per-node output loads from a previous
	// mapping pass (0 = no hint), replacing the fanout-based estimate.
	loadHint []float64
}

// Map technology-maps the AIG onto the library and returns a purely
// combinational netlist (no registers; see WrapSequential).
func Map(a *logic.AIG, lib *liberty.Library, name string, cfg Config) (*netlist.Netlist, error) {
	cfg.fill()
	m := &mapper{
		cfg:  cfg,
		a:    a,
		lib:  lib,
		mt:   buildMatchTable(lib),
		cuts: enumerateCuts(a),
		fan:  a.FanoutCounts(),
	}
	n := a.NumNodes()
	m.best[0] = make([]cand, n)
	m.best[1] = make([]cand, n)
	m.covered[0] = make([]string, n)
	m.covered[1] = make([]string, n)
	m.nameOf = make([]string, n)
	for i, l := range a.Inputs() {
		m.nameOf[l.Node()] = a.InputName(i)
	}
	// Two mapping passes: the first uses fanout-based load estimates; the
	// second replaces them with loads measured on the first-pass netlist,
	// sharpening the delay costs the DP optimizes (important so that the
	// systematic differences between libraries — e.g. fresh vs aged —
	// dominate estimation noise).
	if err := m.dp(); err != nil {
		return nil, err
	}
	nl1, err := m.cover(name)
	if err != nil {
		return nil, err
	}
	m.loadHint = m.measureLoads(nl1)
	m.reset()
	if err := m.dp(); err != nil {
		return nil, err
	}
	return m.cover(name)
}

// reset clears DP and cover state between mapping passes.
func (m *mapper) reset() {
	n := m.a.NumNodes()
	m.best[0] = make([]cand, n)
	m.best[1] = make([]cand, n)
	m.covered[0] = make([]string, n)
	m.covered[1] = make([]string, n)
	m.uid = 0
}

// measureLoads computes, for every AIG node materialized by the previous
// cover, the real capacitive load of its (positive-polarity) output net.
func (m *mapper) measureLoads(nl *netlist.Netlist) []float64 {
	loads := map[string]float64{}
	sinkCount := map[string]int{}
	for _, in := range nl.Insts {
		ct, ok := m.lib.Cell(in.Cell)
		if !ok {
			continue
		}
		for _, p := range ct.Inputs {
			net := in.Pins[p]
			loads[net] += ct.PinCap[p]
			sinkCount[net]++
		}
	}
	hints := make([]float64, m.a.NumNodes())
	for node := range hints {
		netName := m.covered[0][node]
		if netName == "" {
			netName = m.covered[1][node]
		}
		if netName == "" {
			continue
		}
		l := loads[netName] + m.cfg.EstWireCap
		if n := sinkCount[netName]; n > 1 {
			l += float64(n-1) * 0.12e-15
		}
		if l > 0 {
			hints[node] = l
		}
	}
	return hints
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// estLoad estimates the mapped capacitive load of a node's output net.
func (m *mapper) estLoad(node uint32) float64 {
	if m.loadHint != nil && m.loadHint[node] > 0 {
		return m.loadHint[node]
	}
	f := m.fan[node]
	if f < 1 {
		f = 1
	}
	l := m.cfg.EstWireCap + float64(f)*m.cfg.EstSinkCap
	// Loads beyond this will be repaired by sizing/buffering; letting
	// them grow unboundedly would put DP estimates in the slow-slew table
	// region that the optimized design never operates in.
	if l > 12*units.FF {
		l = 12 * units.FF
	}
	return l
}

// invApply returns the edge-aware arrival/slew after an inverter driving
// the given load from a signal with the given per-edge arrival/slew.
func (m *mapper) invApply(arr, slew [2]float64, load float64) (oarr, oslew [2]float64) {
	if m.cfg.UnitDelay {
		const u = 1e-12
		return [2]float64{arr[1] + u, arr[0] + u}, slew
	}
	ct := m.lib.MustCell("INV_X1")
	a := ct.Arcs[0] // negative unate
	for e := liberty.Rise; e <= liberty.Fall; e++ {
		ie := e.Opposite()
		oarr[e] = arr[ie] + a.Delay[e].At(slew[ie], load)
		oslew[e] = math.Min(a.OutSlew[e].At(slew[ie], load), m.cfg.MaxTransition)
	}
	return oarr, oslew
}

// arcTiming returns the worst delay/slew through a cell input pin.
func arcTiming(ct *liberty.CellTiming, pin string, slew, load float64) (float64, float64, bool) {
	d, s := math.Inf(-1), 0.0
	found := false
	for _, a := range ct.Arcs {
		if a.Pin != pin {
			continue
		}
		for e := liberty.Rise; e <= liberty.Fall; e++ {
			if a.Delay[e] == nil {
				continue
			}
			found = true
			if v := a.Delay[e].At(slew, load); v > d {
				d = v
			}
			if v := a.OutSlew[e].At(slew, load); v > s {
				s = v
			}
		}
	}
	return d, s, found
}

// pinEdgeTiming returns, for one cell input pin and one OUTPUT edge, the
// worst (arrival, slew) contribution over the pin's arcs given the
// driving signal's per-edge arrival and slew.
func pinEdgeTiming(ct *liberty.CellTiming, pin string, e liberty.Edge,
	arr, slew [2]float64, load float64) (a float64, s float64, ok bool) {

	a, s = math.Inf(-1), 0.0
	for _, arc := range ct.Arcs {
		if arc.Pin != pin || arc.Delay[e] == nil {
			continue
		}
		ie := arc.Sense.InputEdge(e)
		ok = true
		if v := arr[ie] + arc.Delay[e].At(slew[ie], load); v > a {
			a = v
		}
		if v := arc.OutSlew[e].At(slew[ie], load); v > s {
			s = v
		}
	}
	return a, s, ok
}

// dp computes the best implementation per (node, polarity) in topological
// order (node indexes are already topological in the AIG).
func (m *mapper) dp() error {
	a := m.a
	n := a.NumNodes()
	for node := uint32(1); node < uint32(n); node++ {
		l := logic.Lit(node << 1)
		load := m.estLoad(node)
		if a.IsInput(l) {
			in := cand{ok: true, slew: [2]float64{m.cfg.InputSlew, m.cfg.InputSlew}}
			m.best[0][node] = in
			narr, nslew := m.invApply(in.arr, in.slew, load)
			m.best[1][node] = cand{ok: true, arr: narr, slew: nslew, viaInv: true}
			continue
		}
		for pol := 0; pol < 2; pol++ {
			best := cand{arr: [2]float64{math.Inf(1), math.Inf(1)}}
			for ci, c := range m.cuts[node] {
				if len(c.leaves) == 1 && c.leaves[0] == node {
					continue // trivial cut: not implementable
				}
				if len(c.leaves) == 1 {
					// Support-reduced alias: node == leaf or == !leaf.
					leafNeg := c.tt&ttMask(1) == 0b01
					src := m.best[boolToInt(leafNeg != (pol == 1))][c.leaves[0]]
					if src.ok && src.worstArr() < best.worstArr() {
						best = cand{ok: true, arr: src.arr, slew: src.slew,
							alias: c.leaves[0] + 1, aliasNeg: leafNeg}
					}
					continue
				}
				tt := c.tt
				if pol == 1 {
					tt = ^tt & ttMask(len(c.leaves))
				}
				for _, mt := range m.mt[matchKey(len(c.leaves), tt)] {
					if mt.ninputs != len(c.leaves) {
						continue
					}
					cellName := fmt.Sprintf("%s_X%d", mt.base, m.cfg.DPDrive)
					ct, ok := m.lib.Cell(cellName)
					if !ok {
						continue
					}
					var arr, slew [2]float64
					arr[0], arr[1] = math.Inf(-1), math.Inf(-1)
					feasible := true
					for pi, pin := range ct.Inputs {
						leafIdx := mt.perm[pi]
						leaf := c.leaves[leafIdx]
						leafNeg := mt.complMask >> uint(leafIdx) & 1
						lb := m.best[leafNeg][leaf]
						if !lb.ok {
							feasible = false
							break
						}
						if m.cfg.UnitDelay {
							u := 1e-12
							switch m.cfg.UnitMode {
							case 1:
								u += ct.AreaUm2 * 0.05e-12
							case 2:
								u -= float64(len(ct.Inputs)-1) * 0.1e-12
							}
							for e := liberty.Rise; e <= liberty.Fall; e++ {
								if v := math.Max(lb.arr[0], lb.arr[1]) + u; v > arr[e] {
									arr[e] = v
								}
								slew[e] = lb.slew[e]
							}
							continue
						}
						// Cost slews are held at the nominal corner: the
						// post-mapping sizing/buffering passes control real
						// slews, and propagating raw estimates would make
						// the DP's accuracy depend on the library's slew
						// steepness (hurting exactly the aged libraries the
						// flow is meant to exploit).
						nomSlew := [2]float64{m.cfg.InputSlew, m.cfg.InputSlew}
						for e := liberty.Rise; e <= liberty.Fall; e++ {
							a, s, found := pinEdgeTiming(ct, pin, e, lb.arr, nomSlew, load)
							if !found {
								continue
							}
							if a > arr[e] {
								arr[e] = a
							}
							if s = math.Min(s, m.cfg.MaxTransition); s > slew[e] {
								slew[e] = s
							}
						}
					}
					if !feasible || math.IsInf(arr[0], -1) || math.IsInf(arr[1], -1) {
						continue
					}
					if !m.cfg.UnitDelay {
						// Slew penalty: a slow output edge costs delay in
						// every downstream stage; folding a fraction of the
						// slew into the arrival approximates propagated-slew
						// timing without its estimate-noise sensitivity.
						for e := 0; e < 2; e++ {
							if over := slew[e] - m.cfg.InputSlew; over > 0 {
								arr[e] += 0.3 * over
							}
						}
					}
					c2 := cand{ok: true, arr: arr, slew: slew, cutIdx: ci, m: mt, cell: cellName}
					if c2.worstArr() < best.worstArr() {
						best = c2
					}
				}
			}
			m.best[pol][node] = best
		}
		// Polarity bridging through an inverter (both directions).
		for pol := 0; pol < 2; pol++ {
			other := m.best[1-pol][node]
			if !other.ok {
				continue
			}
			narr, nslew := m.invApply(other.arr, other.slew, load)
			alt := cand{ok: true, arr: narr, slew: nslew, viaInv: true}
			if !m.best[pol][node].ok || alt.worstArr() < m.best[pol][node].worstArr() {
				m.best[pol][node] = alt
			}
		}
		if !m.best[0][node].ok || !m.best[1][node].ok {
			return fmt.Errorf("synth: node %d unmappable with library %s", node, m.lib.Name)
		}
	}
	return nil
}

// cover extracts the chosen cover into a netlist.
func (m *mapper) cover(name string) (*netlist.Netlist, error) {
	m.nl = netlist.New(name)
	for i := range m.a.Inputs() {
		m.nl.Inputs = append(m.nl.Inputs, m.a.InputName(i))
	}
	for _, o := range m.a.Outputs() {
		if m.a.IsConst(o.L) {
			return nil, fmt.Errorf("synth: output %s is constant; tie cells unsupported", o.Name)
		}
		src := m.net(o.L.Node(), o.L.Compl())
		m.inst("BUF_X2", map[string]string{"A": src, "Z": o.Name})
		m.nl.Outputs = append(m.nl.Outputs, o.Name)
	}
	return m.nl, nil
}

func (m *mapper) inst(cell string, pins map[string]string) {
	m.uid++
	m.nl.AddInst(fmt.Sprintf("u%d", m.uid), cell, pins)
}

// net materializes the implementation of (node, polarity) and returns the
// driven net name, reusing shared logic via memoization.
func (m *mapper) net(node uint32, neg bool) string {
	pol := 0
	if neg {
		pol = 1
	}
	if s := m.covered[pol][node]; s != "" {
		return s
	}
	l := logic.Lit(node << 1)
	var out string
	switch {
	case m.a.IsInput(l) && !neg:
		out = m.nameOf[node]
	case m.best[pol][node].alias != 0:
		b := m.best[pol][node]
		out = m.net(b.alias-1, neg != b.aliasNeg)
	case m.best[pol][node].viaInv:
		src := m.net(node, !neg)
		out = fmt.Sprintf("n%d_%d", node, pol)
		m.inst("INV_X1", map[string]string{"A": src, "ZN": out})
	default:
		b := m.best[pol][node]
		c := m.cuts[node][b.cutIdx]
		ct := m.lib.MustCell(b.cell)
		pins := map[string]string{}
		for pi, pin := range ct.Inputs {
			leafIdx := b.m.perm[pi]
			leaf := c.leaves[leafIdx]
			leafNeg := b.m.complMask>>uint(leafIdx)&1 == 1
			pins[pin] = m.net(leaf, leafNeg)
		}
		out = fmt.Sprintf("n%d_%d", node, pol)
		pins[ct.Output] = out
		m.inst(b.cell, pins)
	}
	m.covered[pol][node] = out
	return out
}
