package synth

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"ageguard/internal/liberty"
	"ageguard/internal/logic"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

// Synthesize runs the full flow the paper drives through Design Compiler:
// technology mapping with the provided library, sequential wrapping, and
// timing-driven gate sizing plus buffer insertion with maximum effort on
// performance (the paper's compile_ultra setting). Like compile_ultra's
// multiple optimization strategies, several mapper seeds are explored and
// the fastest result *under the provided library* wins. The resulting
// netlist is optimized for the delays in that library — hand it the
// degradation-aware library and the circuit is optimized against aging.
//
// ctx is checked between mapping seeds and optimization rounds (each is
// pure in-memory CPU work, so that is the natural interruption
// granularity), and the run is traced under a "synth.synthesize" span
// with per-netlist counters.
func Synthesize(ctx context.Context, a *logic.AIG, lib *liberty.Library, name string, cfg Config) (*netlist.Netlist, error) {
	ctx, sp := obs.StartSpan(ctx, "synth.synthesize")
	defer sp.End()
	sp.SetAttr("circuit", name)
	sp.SetAttr("lib", lib.Name)
	reg := obs.From(ctx)
	t0 := time.Now()
	defer func() {
		reg.Counter("synth.netlists").Inc()
		reg.Histogram("synth.synthesize.seconds").Since(t0)
	}()
	cfg.fill()
	// Seeds: two library-driven mappings plus three library-agnostic
	// structural strategies shared by every library (so that comparisons
	// between flows given different libraries are not confounded by
	// mapping-quality luck: the library still decides the winner and all
	// sizing/buffering).
	seeds := []Config{cfg, cfg, cfg, cfg, cfg, cfg}
	seeds[1].DPDrive = 1
	seeds[2].DPDrive = 4
	seeds[3].UnitDelay = true
	seeds[4].UnitDelay = true
	seeds[4].UnitMode = 1
	seeds[5].UnitDelay = true
	seeds[5].UnitMode = 2
	var nl *netlist.Netlist
	bestCP := 0.0
	for _, seed := range seeds {
		if err := ctx.Err(); err != nil {
			sp.EndErr(err)
			return nil, fmt.Errorf("synth: %s: %w", name, err)
		}
		cand, err := synthesizeOne(ctx, a, lib, name, seed)
		if err != nil {
			return nil, err
		}
		res, err := sta.Analyze(ctx, cand, lib, cfg.STA)
		if err != nil {
			return nil, err
		}
		if nl == nil || res.CP < bestCP {
			nl, bestCP = cand, res.CP
		}
	}
	// Post-selection polish: the winning netlist gets one more full
	// sizing/buffering round before area recovery.
	nl, err := sizeGates(ctx, nl, lib, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Buffering {
		if nl, err = bufferCriticalNets(ctx, nl, lib, cfg); err != nil {
			return nil, err
		}
	}
	return recoverArea(ctx, nl, lib, cfg)
}

// synthesizeOne is one mapping seed: map, register, fix design rules,
// size, buffer.
func synthesizeOne(ctx context.Context, a *logic.AIG, lib *liberty.Library, name string, cfg Config) (*netlist.Netlist, error) {
	nl, err := Map(a, lib, name, cfg)
	if err != nil {
		return nil, err
	}
	nl = WrapSequential(nl)
	nl = FixDesignRules(nl, lib)
	nl, err = sizeGates(ctx, nl, lib, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Buffering {
		nl, err = bufferCriticalNets(ctx, nl, lib, cfg)
		if err != nil {
			return nil, err
		}
	}
	return nl, nil
}

// FixDesignRules repairs max-capacitance violations the way commercial
// flows do before timing optimization: every driver is upsized until its
// load per unit drive falls under the rule limit. This matters most for
// library-agnostic (unit-delay) mapping seeds, which are load-blind.
func FixDesignRules(nl *netlist.Netlist, lib *liberty.Library) *netlist.Netlist {
	out := nl.Clone()
	look := netlist.LibraryLookup(lib)
	fan, err := out.FanoutMap(look)
	if err != nil {
		return nl
	}
	// Load per net from sink pin caps.
	loadOf := func(net string) float64 {
		l := 2e-15 // wire estimate, matching the STA model
		for _, s := range fan[net] {
			l += lib.MustCell(s.Inst.Cell).PinCap[s.Pin]
		}
		return l
	}
	const loadPerDrive = 3.0e-15 // max cap rule: 3 fF per unit drive
	for _, in := range out.Insts {
		ct := lib.MustCell(in.Cell)
		load := loadOf(in.Pins[ct.Output])
		need := load / loadPerDrive
		if float64(ct.Drive) >= need {
			continue
		}
		for _, v := range variantsIn(lib, ct.Base) {
			if float64(v.Drive) >= need || v.Drive > ct.Drive {
				if v.Drive > ct.Drive {
					in.Cell = v.Name
				}
				if float64(v.Drive) >= need {
					break
				}
			}
		}
	}
	return out
}

// RecoverArea downsizes instances with timing slack, verifying with full
// STA that the critical path is not degraded — the standard area-recovery
// step after performance-driven optimization, run (as in real flows) down
// to small slack margins.
//
// This pass is where the provided library matters most for reliability:
// recovery driven by the fresh library happily leaves slack paths with
// weak drivers and slow slews — precisely the operating conditions under
// which BTI degradation is amplified severalfold (Fig. 1) — whereas
// recovery driven by the degradation-aware library sees those aged delays
// and keeps such paths strong. This is the mechanism behind the paper's
// observation that traditionally optimized circuits need large guardbands
// while aging-aware synthesis contains them.
func RecoverArea(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	return recoverArea(ctx, nl, lib, cfg)
}

func recoverArea(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	cfg.fill()
	cur := nl.Clone()
	a, err := sta.NewAnalyzer(ctx, cur, lib, cfg.STA)
	if err != nil {
		return nil, err
	}
	res := a.Result()
	for _, frac := range []float64{0.5, 0.3, 0.2, 0.12, 0.06} {
		threshold := frac * res.CP
		var swaps []sta.CellSwap
		for _, in := range cur.Insts {
			ct := lib.MustCell(in.Cell)
			if ct.Seq || ct.Drive == 1 {
				continue
			}
			outNet := in.Pins[ct.Output]
			if s, ok := res.Slack[outNet]; !ok || s < threshold {
				continue
			}
			smaller := fmt.Sprintf("%s_X%d", ct.Base, ct.Drive/2)
			if _, ok := lib.Cell(smaller); ok {
				swaps = append(swaps, sta.CellSwap{Inst: in.Name, Cell: smaller})
			}
		}
		if len(swaps) == 0 {
			continue
		}
		undo, err := a.Swap(ctx, swaps...)
		if err != nil {
			return nil, err
		}
		if a.CP() > res.CP*1.001 {
			// Too aggressive at this threshold: reject and try the next.
			if _, err := a.Swap(ctx, undo...); err != nil {
				return nil, err
			}
			continue
		}
		res = a.Result()
	}
	return cur, nil
}

// SizeGates iteratively resizes instances on the critical path, choosing
// per instance the drive strength that minimizes the local stage delay
// (its own arc delay at the real load plus the upstream penalty of its
// changed pin capacitance), and keeps a round only when full STA confirms
// the critical path improved.
func SizeGates(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	return sizeGates(ctx, nl, lib, cfg)
}

func sizeGates(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	cfg.fill()
	cur := nl.Clone()
	a, err := sta.NewAnalyzer(ctx, cur, lib, cfg.STA)
	if err != nil {
		return nil, err
	}
	res := a.Result()
	for round := 0; round < cfg.SizingRounds; round++ {
		// Decisions are computed on a scratch clone so that later choices
		// in the same round see earlier ones (the pin-cap deltas interact),
		// then applied to the engine as one incremental swap batch.
		next := cur.Clone()
		byName := instIndex(next)
		for _, step := range res.Worst.Steps {
			in := byName[step.Inst]
			if in == nil {
				continue
			}
			bestCell, improved := bestVariant(lib, res, in, step)
			if improved && bestCell != in.Cell {
				in.Cell = bestCell
			}
		}
		// Global phase: every instance in the near-critical region (not
		// just the single worst path) gets its locally best drive, so the
		// netlist converges to the library-specific optimum rather than
		// to whatever the worst-path ordering happened to visit.
		resizeNearCritical(lib, res, next, byName)
		swaps := diffSwaps(cur, next)
		if len(swaps) == 0 {
			break
		}
		undo, err := a.Swap(ctx, swaps...)
		if err != nil {
			return nil, err
		}
		if a.CP() >= res.CP {
			// No global gain: restore the previous netlist and stop.
			if _, err := a.Swap(ctx, undo...); err != nil {
				return nil, err
			}
			break
		}
		res = a.Result()
	}
	return cur, nil
}

// diffSwaps returns the cell substitutions that turn base into next (two
// netlists with identical instance lists, e.g. a netlist and its mutated
// clone).
func diffSwaps(base, next *netlist.Netlist) []sta.CellSwap {
	var out []sta.CellSwap
	for i, in := range base.Insts {
		if nc := next.Insts[i].Cell; nc != in.Cell {
			out = append(out, sta.CellSwap{Inst: in.Name, Cell: nc})
		}
	}
	return out
}

// resizeNearCritical applies the local drive choice to every
// combinational instance whose output slack is within 3% of the critical
// path, returning the number of changes.
func resizeNearCritical(lib *liberty.Library, res *sta.Result, nl *netlist.Netlist,
	byName map[string]*netlist.Inst) int {

	margin := 0.03 * res.CP
	changed := 0
	for _, in := range nl.Insts {
		ct := lib.MustCell(in.Cell)
		if ct.Seq {
			continue
		}
		outNet := in.Pins[ct.Output]
		s, ok := res.Slack[outNet]
		if !ok || s > margin {
			continue
		}
		outLoad := res.Load[outNet]
		cost := func(v *liberty.CellTiming) float64 {
			worst := 0.0
			for _, pin := range v.Inputs {
				inNet := in.Pins[pin]
				sl := res.Slew[inNet]
				slew := math.Max(sl[0], sl[1])
				if slew <= 0 {
					slew = 20 * units.Ps
				}
				d, _, ok := arcTiming(v, pin, slew, outLoad)
				if !ok {
					return math.Inf(1)
				}
				// Pin-cap penalty on the upstream stage.
				d += (v.PinCap[pin] - ct.PinCap[pin]) / (1 * units.FF) * 1 * units.Ps
				if d > worst {
					worst = d
				}
			}
			return worst
		}
		best, bestCost := in.Cell, cost(ct)
		for _, v := range variantsIn(lib, ct.Base) {
			if c := cost(v); c < bestCost-0.01*units.Ps {
				best, bestCost = v.Name, c
			}
		}
		if best != in.Cell {
			in.Cell = best
			changed++
		}
	}
	return changed
}

func instIndex(nl *netlist.Netlist) map[string]*netlist.Inst {
	m := make(map[string]*netlist.Inst, len(nl.Insts))
	for _, in := range nl.Insts {
		m[in.Name] = in
	}
	return m
}

// variantsIn returns the library cells sharing a base, ascending by drive.
func variantsIn(lib *liberty.Library, base string) []*liberty.CellTiming {
	var out []*liberty.CellTiming
	for _, d := range []int{1, 2, 4, 8} {
		if ct, ok := lib.Cell(fmt.Sprintf("%s_X%d", base, d)); ok {
			out = append(out, ct)
		}
	}
	return out
}

// bestVariant evaluates drive alternatives for the instance traversed by
// a critical-path step using the annotated STA result.
func bestVariant(lib *liberty.Library, res *sta.Result, in *netlist.Inst, step sta.Step) (string, bool) {
	cur := lib.MustCell(in.Cell)
	outLoad := res.Load[step.ToNet]
	inSlew := slewOf(res, step.FromNet, step.InEdge)
	inLoad := res.Load[step.FromNet]

	cost := func(ct *liberty.CellTiming) float64 {
		// Edge-specific delay of the exact critical-path transition.
		d := math.Inf(1)
		for _, arc := range ct.Arcs {
			if arc.Pin != step.Pin || arc.Delay[step.OutEdge] == nil {
				continue
			}
			if !ct.Seq && arc.Sense.InputEdge(step.OutEdge) != step.InEdge {
				continue
			}
			if v := arc.Delay[step.OutEdge].At(inSlew, outLoad); v < d {
				d = v
			}
		}
		if math.IsInf(d, 1) {
			var ok bool
			if d, _, ok = arcTiming(ct, step.Pin, inSlew, outLoad); !ok {
				return math.Inf(1)
			}
		}
		// Upstream penalty: the driver of FromNet sees the pin-cap delta.
		delta := ct.PinCap[step.Pin] - cur.PinCap[step.Pin]
		// Approximate dDelay/dLoad of the upstream stage with the slope of
		// the stage's slew/load relation: use a proportional penalty.
		penalty := 0.0
		if inLoad > 0 {
			penalty = delta / inLoad * slewOf(res, step.FromNet, step.InEdge) * 0.5
		}
		return d + penalty
	}
	best, bestCost := in.Cell, cost(cur)
	for _, v := range variantsIn(lib, cur.Base) {
		if c := cost(v); c < bestCost-0.01*units.Ps {
			best, bestCost = v.Name, c
		}
	}
	return best, best != in.Cell
}

func slewOf(res *sta.Result, net string, e liberty.Edge) float64 {
	if s, ok := res.Slew[net]; ok && s[e] > 0 {
		return s[e]
	}
	return 20 * units.Ps
}

// BufferCriticalNets splits high-fanout nets on the critical path: the
// critical sink keeps the direct connection while the remaining sinks move
// behind a buffer, unloading the critical transition. Changes are kept
// only when STA confirms an improvement.
func BufferCriticalNets(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	return bufferCriticalNets(ctx, nl, lib, cfg)
}

// bufferCriticalNets edits netlist structure (new buffer instances and
// rewired pins), which invalidates a compiled Analyzer topology, so each
// round is verified with a full analysis rather than an incremental swap.
func bufferCriticalNets(ctx context.Context, nl *netlist.Netlist, lib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	cfg.fill()
	cur := nl
	res, err := sta.Analyze(ctx, cur, lib, cfg.STA)
	if err != nil {
		return nil, err
	}
	look := netlist.LibraryLookup(lib)
	for round := 0; round < 3; round++ {
		fan, err := cur.FanoutMap(look)
		if err != nil {
			return nil, err
		}
		next := cur.Clone()
		nfan, _ := next.FanoutMap(look)
		changed := 0
		for i, step := range res.Worst.Steps {
			if i+1 >= len(res.Worst.Steps) {
				break
			}
			net := step.ToNet
			sinks := fan[net]
			if len(sinks) < 4 {
				continue
			}
			critInst := res.Worst.Steps[i+1].Inst
			critPin := res.Worst.Steps[i+1].Pin
			bufNet := net + "_buf"
			if strings.HasSuffix(net, "_buf") || netExists(next, bufNet) {
				continue
			}
			moved := 0
			for _, s := range nfan[net] {
				if s.Inst.Name == critInst && s.Pin == critPin {
					continue
				}
				s.Inst.Pins[s.Pin] = bufNet
				moved++
			}
			if moved == 0 {
				continue
			}
			next.AddInst("buf_"+net, "BUF_X4", map[string]string{"A": net, "Z": bufNet})
			changed++
		}
		if changed == 0 {
			break
		}
		nres, err := sta.Analyze(ctx, next, lib, cfg.STA)
		if err != nil {
			return nil, err
		}
		if nres.CP >= res.CP {
			break
		}
		cur, res = next, nres
	}
	return cur, nil
}

func netExists(nl *netlist.Netlist, net string) bool {
	for _, in := range nl.Insts {
		for _, n := range in.Pins {
			if n == net {
				return true
			}
		}
	}
	return false
}

// ctx is checked between rounds; STA timings are recorded into the
// registry carried by ctx.
func SizeGatesDual(ctx context.Context, nl *netlist.Netlist, costLib, critLib *liberty.Library, cfg Config) (*netlist.Netlist, error) {
	cfg.fill()
	cur := nl.Clone()
	// Two incremental engines over the same netlist, kept in lockstep: one
	// times under the aged (criticality) library, the other under the
	// fresh (costing) library.
	aCrit, err := sta.NewAnalyzer(ctx, cur, critLib, cfg.STA)
	if err != nil {
		return nil, err
	}
	aCost, err := sta.NewAnalyzer(ctx, cur, costLib, cfg.STA)
	if err != nil {
		return nil, err
	}
	crit := aCrit.Result()
	for round := 0; round < cfg.SizingRounds; round++ {
		cost := aCost.Result()
		next := cur.Clone()
		byName := instIndex(next)
		for _, step := range crit.Worst.Steps {
			in := byName[step.Inst]
			if in == nil {
				continue
			}
			bestCell, improved := bestVariant(costLib, cost, in, step)
			if improved && bestCell != in.Cell {
				in.Cell = bestCell
			}
		}
		swaps := diffSwaps(cur, next)
		if len(swaps) == 0 {
			break
		}
		// Apply to both engines; undo comes from the first (the second sees
		// already-updated cells, so its own undo would be a no-op).
		undo, err := aCrit.Swap(ctx, swaps...)
		if err != nil {
			return nil, err
		}
		if _, err := aCost.Swap(ctx, swaps...); err != nil {
			return nil, err
		}
		if aCrit.CP() >= crit.CP {
			if _, err := aCrit.Swap(ctx, undo...); err != nil {
				return nil, err
			}
			if _, err := aCost.Swap(ctx, undo...); err != nil {
				return nil, err
			}
			break
		}
		crit = aCrit.Result()
	}
	return cur, nil
}
