package synth

import (
	"sort"

	"ageguard/internal/logic"
)

// cut is a k-feasible cut of an AIG node: its leaf set (sorted node ids)
// and the cut function as a truth table over the leaves (bit a of tt is
// the function value when leaf i carries bit i of a).
type cut struct {
	leaves []uint32
	tt     uint16
}

const (
	maxCutSize  = 4
	cutsPerNode = 8
)

// ttMask returns the valid-bit mask for an n-leaf truth table.
func ttMask(n int) uint16 { return uint16(1)<<(1<<uint(n)) - 1 }

// ttVar returns the projection function of leaf i among n leaves.
func ttVar(i int) uint16 {
	switch i {
	case 0:
		return 0xAAAA
	case 1:
		return 0xCCCC
	case 2:
		return 0xF0F0
	default:
		return 0xFF00
	}
}

// expand remaps a truth table over oldLeaves onto the superset newLeaves.
func expand(tt uint16, oldLeaves, newLeaves []uint32) uint16 {
	pos := make([]int, len(oldLeaves))
	for i, l := range oldLeaves {
		for j, nl := range newLeaves {
			if nl == l {
				pos[i] = j
				break
			}
		}
	}
	var out uint16
	n := len(newLeaves)
	for a := 0; a < 1<<uint(n); a++ {
		var oa int
		for i := range oldLeaves {
			if a>>uint(pos[i])&1 == 1 {
				oa |= 1 << uint(i)
			}
		}
		if tt>>uint(oa)&1 == 1 {
			out |= 1 << uint(a)
		}
	}
	return out
}

// reduceSupport removes leaves the function does not actually depend on
// (structural redundancy the AIG hashing cannot see, e.g. absorption),
// compressing the truth table accordingly. A constant function returns an
// empty leaf set.
func reduceSupport(leaves []uint32, tt uint16) ([]uint32, uint16) {
	n := len(leaves)
	outLeaves := make([]uint32, 0, n)
	kept := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if dependsOn(tt, i, n) {
			outLeaves = append(outLeaves, leaves[i])
			kept = append(kept, i)
		}
	}
	if len(kept) == n {
		return leaves, tt
	}
	var out uint16
	for a := 0; a < 1<<uint(len(kept)); a++ {
		var full int
		for j, i := range kept {
			if a>>uint(j)&1 == 1 {
				full |= 1 << uint(i)
			}
		}
		if tt>>uint(full)&1 == 1 {
			out |= 1 << uint(a)
		}
	}
	return outLeaves, out
}

// dependsOn reports whether tt (over n leaves) depends on leaf i.
func dependsOn(tt uint16, i, n int) bool {
	for a := 0; a < 1<<uint(n); a++ {
		if a>>uint(i)&1 == 1 {
			continue
		}
		if tt>>uint(a)&1 != tt>>uint(a|1<<uint(i))&1 {
			return true
		}
	}
	return false
}

// mergeLeaves returns the sorted union of two leaf sets, or nil if it
// exceeds maxCutSize.
func mergeLeaves(a, b []uint32) []uint32 {
	out := make([]uint32, 0, maxCutSize)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > maxCutSize {
			return nil
		}
	}
	return out
}

func sameLeaves(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// enumerateCuts computes priority cuts for every node of the AIG.
// Node indexes are a topological order, so one forward pass suffices.
func enumerateCuts(a *logic.AIG) [][]cut {
	n := a.NumNodes()
	cuts := make([][]cut, n)
	triv := func(node uint32) cut {
		return cut{leaves: []uint32{node}, tt: 0xAAAA & ttMask(1)}
	}
	for node := uint32(0); node < uint32(n); node++ {
		l := logic.Lit(node << 1)
		if a.IsConst(l) || a.IsInput(l) {
			cuts[node] = []cut{triv(node)}
			continue
		}
		f0, f1 := a.Fanins(node)
		var cand []cut
		for _, c0 := range cuts[f0.Node()] {
			for _, c1 := range cuts[f1.Node()] {
				leaves := mergeLeaves(c0.leaves, c1.leaves)
				if leaves == nil {
					continue
				}
				t0 := expand(c0.tt, c0.leaves, leaves)
				t1 := expand(c1.tt, c1.leaves, leaves)
				m := ttMask(len(leaves))
				if f0.Compl() {
					t0 = ^t0 & m
				}
				if f1.Compl() {
					t1 = ^t1 & m
				}
				rl, rt := reduceSupport(leaves, t0&t1&m)
				if len(rl) == 0 {
					continue // cut function is constant: redundancy; skip
				}
				cand = append(cand, cut{leaves: rl, tt: rt})
			}
		}
		// Rank: fewer leaves first, then shallower leaves.
		depth := func(c cut) int {
			d := 0
			for _, lf := range c.leaves {
				if lv := a.Level(logic.Lit(lf << 1)); lv > d {
					d = lv
				}
			}
			return d
		}
		sort.SliceStable(cand, func(i, j int) bool {
			if len(cand[i].leaves) != len(cand[j].leaves) {
				return len(cand[i].leaves) < len(cand[j].leaves)
			}
			return depth(cand[i]) < depth(cand[j])
		})
		// Dedup and truncate, always keeping the trivial cut last so the
		// node can serve as a leaf of larger cuts.
		var kept []cut
		for _, c := range cand {
			dup := false
			for _, k := range kept {
				if sameLeaves(k.leaves, c.leaves) && k.tt == c.tt {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, c)
			}
			if len(kept) == cutsPerNode-1 {
				break
			}
		}
		kept = append(kept, triv(node))
		cuts[node] = kept
	}
	return cuts
}
