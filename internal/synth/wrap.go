package synth

import (
	"fmt"

	"ageguard/internal/netlist"
)

// WrapSequential registers every primary input and output of a
// combinational netlist with DFF cells on a single clock, producing the
// pipeline-stage structure the paper's benchmarks are timed as: paths
// launch at a flip-flop clock pin and are captured at a flip-flop data
// pin, so the critical-path delay equals the minimum clock period.
func WrapSequential(nl *netlist.Netlist) *netlist.Netlist {
	out := nl.Clone()
	out.Name = nl.Name

	// Register inputs: PI -> DFF -> <pi>_r, rewiring all loads.
	renamed := map[string]string{}
	for _, pi := range out.Inputs {
		renamed[pi] = pi + "_r"
	}
	for _, in := range out.Insts {
		for pin, net := range in.Pins {
			if r, ok := renamed[net]; ok {
				in.Pins[pin] = r
			}
		}
	}
	for i, pi := range out.Inputs {
		out.AddInst(fmt.Sprintf("reg_in_%d", i), "DFF_X1", map[string]string{
			"D": pi, "CK": netlist.ClockNet, "Q": renamed[pi],
		})
	}

	// Register outputs: driver -> <po>_c -> DFF -> PO.
	for i, po := range out.Outputs {
		comb := po + "_c"
		for _, in := range out.Insts {
			for pin, net := range in.Pins {
				if net == po {
					in.Pins[pin] = comb
				}
			}
		}
		out.AddInst(fmt.Sprintf("reg_out_%d", i), "DFF_X1", map[string]string{
			"D": comb, "CK": netlist.ClockNet, "Q": po,
		})
	}
	return out
}
