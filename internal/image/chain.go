package image

import "math"

// Transform1D is an 8-point transform: the interface between the image
// chain and whichever engine computes it (software model, functional
// gate-level simulation, or timed aged simulation).
type Transform1D func(in [8]int64) [8]int64

// GoldenDCT returns the floating-point orthonormal 8-point DCT-II,
// rounded to integers — the reference encoder.
func GoldenDCT() Transform1D {
	m := goldenMatrix()
	return func(in [8]int64) [8]int64 { return matVec(m, in) }
}

// GoldenIDCT returns the floating-point inverse (DCT-III), the reference
// decoder.
func GoldenIDCT() Transform1D {
	m := goldenMatrix()
	var tr [8][8]float64
	for i := range m {
		for j := range m {
			tr[i][j] = m[j][i]
		}
	}
	return func(in [8]int64) [8]int64 { return matVec(tr, in) }
}

func goldenMatrix() [8][8]float64 {
	var m [8][8]float64
	for k := 0; k < 8; k++ {
		s := math.Sqrt(2.0 / 8.0)
		if k == 0 {
			s = math.Sqrt(1.0 / 8.0)
		}
		for n := 0; n < 8; n++ {
			m[k][n] = s * math.Cos(float64(2*n+1)*float64(k)*math.Pi/16)
		}
	}
	return m
}

func matVec(m [8][8]float64, x [8]int64) [8]int64 {
	var y [8]int64
	for k := 0; k < 8; k++ {
		var s float64
		for n := 0; n < 8; n++ {
			s += m[k][n] * float64(x[n])
		}
		y[k] = int64(math.Round(s))
	}
	return y
}

// Block is an 8x8 sample block.
type Block [8][8]int64

// Transform2D applies the 1-D transform separably: first to every row,
// then to every column — the row/column architecture of a hardware 2-D
// DCT with a transpose buffer.
func Transform2D(b Block, f Transform1D) Block {
	var tmp, out Block
	for r := 0; r < 8; r++ {
		tmp[r] = f(b[r])
	}
	for c := 0; c < 8; c++ {
		var col [8]int64
		for r := 0; r < 8; r++ {
			col[r] = tmp[r][c]
		}
		col = f(col)
		for r := 0; r < 8; r++ {
			out[r][c] = col[r]
		}
	}
	return out
}

// RunChain encodes and decodes the image through the DCT-IDCT chain:
// level shift, per-block 2-D forward transform with dct, 2-D inverse with
// idct, and reconstruction — the paper's Fig. 6(c)/7 pipeline. Image
// dimensions must be multiples of 8.
func RunChain(img *Gray, dct, idct Transform1D) *Gray {
	if img.W%8 != 0 || img.H%8 != 0 {
		panic("image: dimensions must be multiples of 8")
	}
	out := NewGray(img.W, img.H)
	for by := 0; by < img.H; by += 8 {
		for bx := 0; bx < img.W; bx += 8 {
			var blk Block
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					blk[r][c] = int64(img.At(bx+c, by+r)) - 128
				}
			}
			coeff := Transform2D(blk, dct)
			rec := Transform2D(coeff, idct)
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					out.Set(bx+c, by+r, clamp8(float64(rec[r][c]+128)))
				}
			}
		}
	}
	return out
}

// Transform1DBatch transforms many 8-sample vectors in one call. Hardware
// engines implement it by streaming rows through a pipelined circuit;
// Batch adapts a scalar transform.
type Transform1DBatch func(rows [][8]int64) [][8]int64

// Batch lifts a scalar Transform1D to the batch interface.
func (f Transform1D) Batch() Transform1DBatch {
	return func(rows [][8]int64) [][8]int64 {
		out := make([][8]int64, len(rows))
		for i, r := range rows {
			out[i] = f(r)
		}
		return out
	}
}

// RunChainBatch is RunChain with batch transforms: each separable pass
// (block rows, then block columns, for DCT then IDCT) is streamed as one
// batch, matching how a pipelined hardware transform processes an image
// through a transpose buffer.
func RunChainBatch(img *Gray, dct, idct Transform1DBatch) *Gray {
	if img.W%8 != 0 || img.H%8 != 0 {
		panic("image: dimensions must be multiples of 8")
	}
	nbx, nby := img.W/8, img.H/8
	blocks := make([]Block, nbx*nby)
	for by := 0; by < nby; by++ {
		for bx := 0; bx < nbx; bx++ {
			b := &blocks[by*nbx+bx]
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					b[r][c] = int64(img.At(bx*8+c, by*8+r)) - 128
				}
			}
		}
	}
	pass := func(f Transform1DBatch, cols bool) {
		vecs := make([][8]int64, 0, len(blocks)*8)
		for bi := range blocks {
			for k := 0; k < 8; k++ {
				var v [8]int64
				for i := 0; i < 8; i++ {
					if cols {
						v[i] = blocks[bi][i][k]
					} else {
						v[i] = blocks[bi][k][i]
					}
				}
				vecs = append(vecs, v)
			}
		}
		res := f(vecs)
		for bi := range blocks {
			for k := 0; k < 8; k++ {
				v := res[bi*8+k]
				for i := 0; i < 8; i++ {
					if cols {
						blocks[bi][i][k] = v[i]
					} else {
						blocks[bi][k][i] = v[i]
					}
				}
			}
		}
	}
	pass(dct, false) // rows
	pass(dct, true)  // columns
	pass(idct, false)
	pass(idct, true)
	out := NewGray(img.W, img.H)
	for by := 0; by < nby; by++ {
		for bx := 0; bx < nbx; bx++ {
			b := &blocks[by*nbx+bx]
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					out.Set(bx*8+c, by*8+r, clamp8(float64(b[r][c]+128)))
				}
			}
		}
	}
	return out
}
