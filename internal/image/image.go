// Package image provides the image-processing substrate of the paper's
// system-level evaluation: 8-bit grayscale images with PGM I/O, PSNR
// measurement, deterministic photographic-like test images (substituting
// for the paper's YUV test sequences, which are not redistributable), and
// the block DCT-IDCT processing chain driven through pluggable 8-point
// transforms — so the same chain can run on the software golden model, on
// a zero-delay gate-level simulation, or on the timed aged simulation.
package image

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Gray is an 8-bit grayscale image.
type Gray struct {
	W, H int
	Pix  []uint8 // row-major, len W*H
}

// NewGray allocates a black image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y).
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y).
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// Clone returns a deep copy.
func (g *Gray) Clone() *Gray {
	c := NewGray(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// WritePGM serializes the image as binary PGM (P5).
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H)
	if _, err := bw.Write(g.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPGM parses a binary PGM (P5) image.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("image: bad PGM header: %w", err)
	}
	if magic != "P5" || maxv != 255 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("image: unsupported PGM (%s, max %d)", magic, maxv)
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after header
		return nil, err
	}
	g := NewGray(w, h)
	if _, err := io.ReadFull(br, g.Pix); err != nil {
		return nil, err
	}
	return g, nil
}

// PSNR returns the peak signal-to-noise ratio between two equally sized
// images in dB (+Inf for identical images). The paper treats 30 dB as the
// threshold of acceptable quality.
func PSNR(a, b *Gray) float64 {
	if a.W != b.W || a.H != b.H {
		panic("image: PSNR size mismatch")
	}
	var se float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}

// TestImage generates a deterministic photographic-like grayscale image:
// a smooth illumination gradient, soft disks, sharp edges and fine
// texture, giving 8x8 blocks with both low- and high-frequency content.
func TestImage(w, h int) *Gray {
	g := NewGray(w, h)
	fw, fh := float64(w), float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			v := 110 + 70*fx/fw + 30*fy/fh // illumination gradient
			// Two soft disks.
			d1 := math.Hypot(fx-fw*0.35, fy-fh*0.4) / (0.22 * fw)
			d2 := math.Hypot(fx-fw*0.7, fy-fh*0.65) / (0.18 * fw)
			v += 60 * math.Exp(-d1*d1)
			v -= 50 * math.Exp(-d2*d2)
			// Sharp vertical edge.
			if fx > fw*0.82 {
				v -= 45
			}
			// Fine texture.
			v += 12 * math.Sin(fx*0.9) * math.Cos(fy*0.7)
			g.Set(x, y, clamp8(v))
		}
	}
	return g
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(math.Round(v))
}
