package image

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	g := TestImage(32, 16)
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 32 || got.H != 16 {
		t.Fatalf("size = %dx%d", got.W, got.H)
	}
	if !bytes.Equal(got.Pix, g.Pix) {
		t.Error("pixels changed in round trip")
	}
}

func TestReadPGMRejectsGarbage(t *testing.T) {
	if _, err := ReadPGM(bytes.NewReader([]byte("P6\n2 2\n255\nxxxx"))); err == nil {
		t.Error("P6 accepted")
	}
	if _, err := ReadPGM(bytes.NewReader([]byte("hello"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPSNR(t *testing.T) {
	a := TestImage(64, 64)
	if !math.IsInf(PSNR(a, a), 1) {
		t.Error("identical images should give +Inf")
	}
	// One-off error on every pixel: MSE=1 -> PSNR = 10*log10(255^2) ~ 48.13.
	b := a.Clone()
	for i := range b.Pix {
		if b.Pix[i] < 255 {
			b.Pix[i]++
		} else {
			b.Pix[i]--
		}
	}
	got := PSNR(a, b)
	if math.Abs(got-48.13) > 0.01 {
		t.Errorf("PSNR = %v, want ~48.13", got)
	}
	// Heavily corrupted image: PSNR far below the 30 dB quality bar.
	c := a.Clone()
	rng := rand.New(rand.NewSource(1))
	for i := range c.Pix {
		c.Pix[i] = uint8(rng.Intn(256))
	}
	if p := PSNR(a, c); p > 15 {
		t.Errorf("random-noise PSNR = %v, want < 15", p)
	}
}

func TestTestImageDeterministicAndVaried(t *testing.T) {
	a := TestImage(64, 64)
	b := TestImage(64, 64)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("test image not deterministic")
	}
	// Variance must be substantial (not a flat image).
	var mean float64
	for _, p := range a.Pix {
		mean += float64(p)
	}
	mean /= float64(len(a.Pix))
	var varSum float64
	for _, p := range a.Pix {
		d := float64(p) - mean
		varSum += d * d
	}
	if sd := math.Sqrt(varSum / float64(len(a.Pix))); sd < 20 {
		t.Errorf("test image stddev = %v, too flat", sd)
	}
}

func TestGoldenChainHighQuality(t *testing.T) {
	img := TestImage(64, 64)
	rec := RunChain(img, GoldenDCT(), GoldenIDCT())
	if p := PSNR(img, rec); p < 40 {
		t.Errorf("golden DCT-IDCT PSNR = %v dB, want > 40", p)
	}
}

func TestCorruptedTransformDegradesQuality(t *testing.T) {
	img := TestImage(64, 64)
	bad := func(in [8]int64) [8]int64 {
		out := GoldenDCT()(in)
		out[0] ^= 0x40 // flip a high-magnitude DC bit sometimes
		return out
	}
	rec := RunChain(img, bad, GoldenIDCT())
	if p := PSNR(img, rec); p > 25 {
		t.Errorf("corrupted-transform PSNR = %v dB, want < 25", p)
	}
}

func TestTransform2DOrthogonality(t *testing.T) {
	// 2D golden DCT then IDCT must reconstruct within rounding.
	rng := rand.New(rand.NewSource(2))
	var b Block
	for r := range b {
		for c := range b[r] {
			b[r][c] = int64(rng.Intn(256) - 128)
		}
	}
	coeff := Transform2D(b, GoldenDCT())
	rec := Transform2D(coeff, GoldenIDCT())
	for r := range b {
		for c := range b[r] {
			if d := rec[r][c] - b[r][c]; d > 2 || d < -2 {
				t.Fatalf("reconstruction error %d at (%d,%d)", d, r, c)
			}
		}
	}
}

func TestRunChainPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-multiple-of-8 image")
		}
	}()
	RunChain(NewGray(10, 8), GoldenDCT(), GoldenIDCT())
}
