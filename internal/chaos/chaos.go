// Package chaos is a deterministic fault-injection harness for
// exercising the ageguardd client/server pair under adversity. It
// offers two injection points:
//
//   - Transport, an http.RoundTripper wrapper that delays requests,
//     fabricates connection resets and 5xx replies, and truncates or
//     corrupts response bodies at the HTTP layer;
//   - Proxy, a TCP relay that mangles the response byte stream below
//     HTTP — mid-stream resets, truncation, single-byte corruption —
//     the way a flaky network actually fails.
//
// Both draw every fault decision from one seeded PRNG behind a mutex,
// so a given seed replays the same fault sequence (per decision order),
// and both spend from a finite fault Budget: once it is exhausted the
// harness becomes a transparent pass-through. A finite budget plus a
// retrying client is what makes convergence provable — after at most
// Budget faulted exchanges every further attempt is clean, so a client
// with enough attempts always terminates with the true answer.
//
// Faults are injected only in the response direction (and before the
// request is sent, for resets/5xx). Corrupting a request in flight
// would make the server reject it with a terminal 400 and break the
// convergence guarantee; real middleboxes are equally capable of both,
// but the client property under test — no corrupt reply is ever
// accepted — is a response-side property.
package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// Config parameterizes the fault mix. Probabilities are per decision
// point in [0, 1] and are checked in a fixed order (reset, 5xx,
// truncate, corrupt, delay); the first one whose draw succeeds (and
// whose budget remains) is injected.
type Config struct {
	// Seed fixes the PRNG; the same seed replays the same decisions.
	Seed int64

	// Budget is the total number of faults the harness may inject
	// before it becomes a pass-through. Zero or negative means no
	// faults at all — an unlimited budget would void the convergence
	// guarantee, so there deliberately isn't one.
	Budget int

	// PReset fabricates a connection reset.
	PReset float64
	// P5xx fabricates a 503 reply without contacting the server
	// (Transport only; carries a Retry-After hint).
	P5xx float64
	// PTruncate cuts the response short.
	PTruncate float64
	// PCorrupt flips one response byte.
	PCorrupt float64
	// PDelay stalls the exchange for up to MaxDelay.
	PDelay float64
	// MaxDelay bounds injected latency (default 50ms when PDelay > 0).
	MaxDelay time.Duration
}

// Fault kinds, as reported by Injected().
const (
	FaultReset    = "reset"
	Fault5xx      = "5xx"
	FaultTruncate = "truncate"
	FaultCorrupt  = "corrupt"
	FaultDelay    = "delay"
)

// injector is the shared deterministic decision engine.
type injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    Config
	budget int
	counts map[string]int64
}

func newInjector(cfg Config) *injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	return &injector{
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		cfg:    cfg,
		budget: cfg.Budget,
		counts: map[string]int64{},
	}
}

// decide draws one fault decision among the given kinds, spending
// budget when a fault fires. Empty string means "no fault".
func (in *injector) decide(kinds ...string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.budget <= 0 {
		return ""
	}
	for _, k := range kinds {
		var p float64
		switch k {
		case FaultReset:
			p = in.cfg.PReset
		case Fault5xx:
			p = in.cfg.P5xx
		case FaultTruncate:
			p = in.cfg.PTruncate
		case FaultCorrupt:
			p = in.cfg.PCorrupt
		case FaultDelay:
			p = in.cfg.PDelay
		}
		if p > 0 && in.rng.Float64() < p {
			in.budget--
			in.counts[k]++
			return k
		}
	}
	return ""
}

// intn draws a deterministic integer in [0, n).
func (in *injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 1 {
		return 0
	}
	return in.rng.Intn(n)
}

// delay draws a deterministic latency in (0, MaxDelay].
func (in *injector) delay() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	d := time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay)))
	return d + 1
}

// injected returns a snapshot of the per-kind fault counts.
func (in *injector) injected() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// spent reports how much of the budget has been consumed.
func (in *injector) spent() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg.Budget - in.budget
}
