package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrInjectedReset is the transport-level error a fabricated
// connection reset surfaces as. It is indistinguishable from a real
// one to retry classification: not a context error, not an *APIError.
var ErrInjectedReset = errors.New("chaos: connection reset by peer")

// Transport is a fault-injecting http.RoundTripper. Wrap the real
// transport with NewTransport and install it on the client under test.
type Transport struct {
	in   *injector
	next http.RoundTripper
}

// NewTransport wraps next (http.DefaultTransport when nil) with the
// fault mix of cfg.
func NewTransport(cfg Config, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{in: newInjector(cfg), next: next}
}

// Injected returns the per-kind counts of faults injected so far.
func (t *Transport) Injected() map[string]int64 { return t.in.injected() }

// Spent reports how much of the fault budget has been consumed.
func (t *Transport) Spent() int { return t.in.spent() }

// RoundTrip performs one exchange, possibly faulted. Pre-flight faults
// (reset, fabricated 503, delay) fire before the server sees the
// request; post-flight faults (truncate, corrupt) mangle the response
// body of a genuine reply.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.in.decide(FaultReset, Fault5xx, FaultDelay) {
	case FaultReset:
		return nil, ErrInjectedReset
	case Fault5xx:
		body := `{"version":"v1","error":"chaos: injected overload"}`
		res := &http.Response{
			Status:        fmt.Sprintf("%d %s", http.StatusServiceUnavailable, http.StatusText(http.StatusServiceUnavailable)),
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Retry-After": []string{"0"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return res, nil
	case FaultDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(t.in.delay()):
		}
	}
	res, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch t.in.decide(FaultTruncate, FaultCorrupt) {
	case FaultTruncate:
		t.mangleBody(res, true)
	case FaultCorrupt:
		t.mangleBody(res, false)
	}
	return res, nil
}

// mangleBody buffers the response body and either cuts it short or
// flips one byte. Content-Length and the body checksum header are left
// untouched — the whole point is that they no longer match.
func (t *Transport) mangleBody(res *http.Response, truncate bool) {
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || len(raw) == 0 {
		res.Body = io.NopCloser(bytes.NewReader(raw))
		return
	}
	if truncate {
		raw = raw[:t.in.intn(len(raw))]
	} else {
		raw[t.in.intn(len(raw))] ^= 0x04
	}
	res.Body = io.NopCloser(bytes.NewReader(raw))
}
