package chaos_test

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ageguard/internal/chaos"
	"ageguard/internal/char"
	"ageguard/internal/core"
	"ageguard/internal/serve"
	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

const testCircuit = "RISC-5P"

// sharedDir is a package-wide characterization disk cache: the first
// test pays the cold cost (steep under -race), later tests re-parse.
// No test in this package mutates the cache files themselves.
var (
	sharedDirOnce sync.Once
	sharedDirPath string
)

func sharedDir(t *testing.T) string {
	sharedDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "chaos-test-cache-*")
		if err != nil {
			t.Fatal(err)
		}
		sharedDirPath = dir
	})
	return sharedDirPath
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedDirPath != "" {
		os.RemoveAll(sharedDirPath)
	}
	os.Exit(code)
}

// startDaemon runs an ageguardd over dir and returns its address plus
// a shutdown func.
func startDaemon(t *testing.T, dir string, warm bool) (string, *serve.Server, func()) {
	t.Helper()
	charCfg := char.TestConfig()
	charCfg.CacheDir = dir
	cfg := serve.Config{
		Flow:      core.New(core.WithCharConfig(charCfg), core.WithLifetime(10)),
		WarmStart: warm,
	}
	s := serve.New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	return ln.Addr().String(), s, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v on drain", err)
		}
	}
}

func waitReady(t *testing.T, cl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := cl.Readyz(context.Background()); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// auditCacheDir fails the test if dir holds a partially-written temp
// file or an unquarantined cache entry that fails verification.
func auditCacheDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("partial cache file left behind: %s", e.Name())
		}
	}
	libs, err := char.CacheLibraries(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range libs {
		if _, err := char.VerifyCacheFile(p); err != nil {
			t.Errorf("unquarantined corrupt cache file %s: %v", filepath.Base(p), err)
		}
	}
}

// chaosRetry is an aggressive retry policy for driving through faults:
// the budget bounds total faults, so enough cheap attempts always
// reach a clean exchange.
func chaosRetry() client.RetryPolicy {
	return client.RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}
}

// TestConvergesThroughChaosProxy drives a retrying, hedging client
// through a TCP proxy injecting resets, truncation, corruption and
// latency, and requires every query to converge to the bit-identical
// fault-free answer with no damage to the on-disk cache.
func TestConvergesThroughChaosProxy(t *testing.T) {
	dir := sharedDir(t)
	addr, _, stop := startDaemon(t, dir, false)
	defer stop()

	// Fault-free baseline, straight at the server.
	direct := client.New("http://" + addr)
	waitReady(t, direct)
	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}
	want, err := direct.Guardband(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctReq := api.CellTimingRequest{
		Cell: "INV_X1", Scenario: api.Scenario{Kind: "worst", Years: 10},
		InSlewS: 20e-12, LoadF: 2e-15,
	}
	wantCT, err := direct.CellTiming(context.Background(), ctReq)
	if err != nil {
		t.Fatal(err)
	}

	proxy, err := chaos.NewProxy(addr, chaos.Config{
		Seed:      42,
		Budget:    30,
		PReset:    0.15,
		PTruncate: 0.15,
		PCorrupt:  0.2,
		PDelay:    0.1,
		MaxDelay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cl := client.New("http://"+proxy.Addr(),
		WithFreshConnections(),
		client.WithRetryPolicy(chaosRetry()),
		client.WithHedgePolicy(client.HedgePolicy{Delay: 250 * time.Millisecond}))

	for i := 0; i < 40; i++ {
		got, err := cl.Guardband(context.Background(), req)
		if err != nil {
			t.Fatalf("query %d never converged: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("query %d: answer diverged under chaos:\n got %+v\nwant %+v", i, got, want)
		}
		gotCT, err := cl.CellTiming(context.Background(), ctReq)
		if err != nil {
			t.Fatalf("celltiming %d never converged: %v", i, err)
		}
		if !reflect.DeepEqual(gotCT, wantCT) {
			t.Fatalf("celltiming %d diverged under chaos", i)
		}
	}
	if proxy.Spent() == 0 {
		t.Error("proxy injected no faults — the run proved nothing")
	}
	t.Logf("proxy faults injected: %v", proxy.Injected())
	auditCacheDir(t, dir)
}

// TestConvergesThroughFaultyTransport exercises the HTTP-layer faults
// the proxy cannot fabricate precisely: clean 503s with Retry-After,
// whole-body corruption and truncation behind intact framing.
func TestConvergesThroughFaultyTransport(t *testing.T) {
	dir := sharedDir(t)
	addr, _, stop := startDaemon(t, dir, false)
	defer stop()

	direct := client.New("http://" + addr)
	waitReady(t, direct)
	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}
	want, err := direct.Guardband(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	tr := chaos.NewTransport(chaos.Config{
		Seed:      7,
		Budget:    25,
		PReset:    0.15,
		P5xx:      0.15,
		PTruncate: 0.15,
		PCorrupt:  0.15,
	}, nil)
	cl := client.New("http://"+addr,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetryPolicy(chaosRetry()))

	for i := 0; i < 40; i++ {
		got, err := cl.Guardband(context.Background(), req)
		if err != nil {
			t.Fatalf("query %d never converged: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("query %d diverged: got %+v want %+v", i, got, want)
		}
	}
	if tr.Spent() != 25 {
		t.Errorf("budget spent = %d, want all 25 (40 queries see plenty of decisions)", tr.Spent())
	}
	t.Logf("transport faults injected: %v", tr.Injected())
	auditCacheDir(t, dir)
}

// TestWarmRestartAfterChaos restarts the daemon over the cache
// directory a chaos run produced and requires the first repeat query
// to be served from the warm path — libraries from disk, zero
// re-characterization.
func TestWarmRestartAfterChaos(t *testing.T) {
	dir := sharedDir(t)
	addr, _, stop := startDaemon(t, dir, false)

	direct := client.New("http://" + addr)
	waitReady(t, direct)
	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}
	want, err := direct.Guardband(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// A short chaos burst, then kill the daemon.
	proxy, err := chaos.NewProxy(addr, chaos.Config{
		Seed: 3, Budget: 10, PReset: 0.3, PCorrupt: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New("http://"+proxy.Addr(),
		WithFreshConnections(),
		client.WithRetryPolicy(chaosRetry()))
	for i := 0; i < 10; i++ {
		if _, err := cl.Guardband(context.Background(), req); err != nil {
			t.Fatalf("chaos query %d: %v", i, err)
		}
	}
	proxy.Close()
	stop()
	auditCacheDir(t, dir)

	// Restart warm: the scan must reload both libraries, and the first
	// repeat query must miss only on what is never persisted (netlist
	// parse + analyzer compilation), never on characterization.
	addr2, s2, stop2 := startDaemon(t, dir, true)
	defer stop2()
	cl2 := client.New("http://" + addr2)
	waitReady(t, cl2)

	snap := s2.Registry().Snapshot()
	if got := snap.Counters["serve.warm.loaded"]; got != 2 {
		t.Fatalf("warm.loaded = %d, want 2", got)
	}
	got, err := cl2.Guardband(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("answer changed across restart: got %+v want %+v", got, want)
	}
	snap = s2.Registry().Snapshot()
	if misses := snap.Counters["serve.cache.misses"]; misses != 3 {
		t.Errorf("cache misses = %d, want 3 (netlist + 2 analyzers; libraries warm)", misses)
	}
	if hits := snap.Counters["serve.cache.hits"]; hits < 2 {
		t.Errorf("cache hits = %d, want >= 2 (both libraries from the warm scan)", hits)
	}
}

// TestBatchConvergesThroughChaos drives a heterogeneous /v1/batch
// workload through the chaos proxy and requires every per-item answer
// to converge to the bit-identical fault-free single-request baseline,
// with no damage to the on-disk cache. This covers the whole batched
// read path under faults: the wire exchange (checksum + retry), the
// client's partial re-dispatch of failed items, and the server-side
// planner and response memo — a memoized reply that diverged from the
// single-request answer by even one byte would fail here.
func TestBatchConvergesThroughChaos(t *testing.T) {
	dir := sharedDir(t)
	addr, _, stop := startDaemon(t, dir, false)
	defer stop()

	direct := client.New("http://" + addr)
	waitReady(t, direct)
	scen := api.Scenario{Kind: "worst", Years: 10}
	items := []api.BatchItem{
		api.GuardbandItem(api.GuardbandRequest{Circuit: testCircuit, Scenario: scen}),
		api.CellTimingItem(api.CellTimingRequest{
			Cell: "INV_X1", Scenario: scen, InSlewS: 20e-12, LoadF: 2e-15,
		}),
		api.PathsItem(api.PathsRequest{Circuit: testCircuit, Scenario: scen, K: 2}),
		api.GuardbandItem(api.GuardbandRequest{Circuit: testCircuit, Scenario: scen}),
	}

	// Fault-free baseline: the same items as single requests.
	want := make([]api.BatchItemResult, len(items))
	for i, it := range items {
		var err error
		switch it.Kind {
		case api.BatchGuardband:
			want[i].Guardband, err = direct.Guardband(context.Background(), *it.Guardband)
		case api.BatchCellTiming:
			want[i].CellTiming, err = direct.CellTiming(context.Background(), *it.CellTiming)
		default:
			want[i].Paths, err = direct.Paths(context.Background(), *it.Paths)
		}
		if err != nil {
			t.Fatalf("baseline item %d: %v", i, err)
		}
	}

	proxy, err := chaos.NewProxy(addr, chaos.Config{
		Seed:      11,
		Budget:    25,
		PReset:    0.15,
		PTruncate: 0.15,
		PCorrupt:  0.2,
		PDelay:    0.1,
		MaxDelay:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cl := client.New("http://"+proxy.Addr(),
		WithFreshConnections(),
		client.WithRetryPolicy(chaosRetry()))
	for i := 0; i < 25; i++ {
		got, err := cl.Batch(context.Background(), items)
		if err != nil {
			t.Fatalf("batch %d never converged: %v", i, err)
		}
		for j := range want {
			if e := got.Items[j].Error; e != nil {
				t.Fatalf("batch %d item %d failed under chaos: %d %s", i, j, e.Status, e.Message)
			}
			if !reflect.DeepEqual(got.Items[j], want[j]) {
				t.Fatalf("batch %d item %d diverged under chaos:\n got %+v\nwant %+v",
					i, j, got.Items[j], want[j])
			}
		}
	}
	if proxy.Spent() == 0 {
		t.Error("proxy injected no faults — the run proved nothing")
	}
	t.Logf("proxy faults injected: %v", proxy.Injected())
	auditCacheDir(t, dir)
}

// WithFreshConnections disables keep-alive pooling so every attempt
// dials the proxy anew — a mid-stream RST otherwise poisons a pooled
// connection and the next attempt can fail before the proxy sees it.
func WithFreshConnections() client.Option {
	return client.WithHTTPClient(&http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
	})
}
