package chaos

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a fault-injecting TCP relay: clients dial Addr(), the proxy
// dials the target and copies bytes both ways. The request direction is
// copied verbatim; the response direction runs through the fault
// engine, which can reset the connection mid-stream (RST via zero
// linger), truncate the remainder, flip a byte, or stall a chunk —
// failure modes an http.RoundTripper wrapper cannot express because
// they happen below HTTP framing.
type Proxy struct {
	ln     net.Listener
	target string
	in     *injector

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a loopback port relaying to target
// (host:port). Close it when done.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		in:     newInjector(cfg),
		conns:  map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the host:port clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Injected returns the per-kind counts of faults injected so far.
func (p *Proxy) Injected() map[string]int64 { return p.in.injected() }

// Spent reports how much of the fault budget has been consumed.
func (p *Proxy) Spent() int { return p.in.spent() }

// Close stops accepting, severs every open relay and waits for the
// relay goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// track registers a connection for Close; it reports false when the
// proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		sc, err := net.Dial("tcp", p.target)
		if err != nil {
			cc.Close()
			continue
		}
		if !p.track(cc) || !p.track(sc) {
			cc.Close()
			sc.Close()
			return
		}
		p.wg.Add(2)
		// Request direction: verbatim. A corrupted request would be
		// rejected with a terminal 400 and break convergence.
		go func() {
			defer p.wg.Done()
			io.Copy(sc, cc)
			halfClose(sc)
		}()
		// Response direction: through the fault engine.
		go func() {
			defer p.wg.Done()
			defer p.untrack(cc)
			defer p.untrack(sc)
			p.pump(cc, sc)
			cc.Close()
			sc.Close()
		}()
	}
}

// halfClose signals EOF to the peer without tearing down the reverse
// direction.
func halfClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// pump relays server bytes to the client, one read at a time, drawing
// a fault decision per chunk.
func (p *Proxy) pump(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			b := buf[:n]
			switch p.in.decide(FaultReset, FaultTruncate, FaultCorrupt, FaultDelay) {
			case FaultReset:
				// RST, not FIN: zero linger discards the client's view
				// of a graceful close.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				return
			case FaultTruncate:
				dst.Write(b[:p.in.intn(n)])
				return
			case FaultCorrupt:
				b[p.in.intn(n)] ^= 0x04
			case FaultDelay:
				time.Sleep(p.in.delay())
			}
			if _, err := dst.Write(b); err != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
