package aging

import "math"

// The deterministic model of this package predicts the *mean* BTI shift.
// Real BTI is stochastic: in deeply scaled devices each trap contributes a
// discrete threshold step eta = q/(Cox*W*L), so the shift follows a
// compound Poisson distribution whose variance grows with the mean
// (Kaczer/Kerber-style characterization, the paper's reference [16]).
// The paper notes that a designer can take the distribution's upper
// quantile (e.g. 6 sigma) as the guardband bound; this file provides
// exactly that extension.

// Variability describes the stochastic spread of a BTI threshold shift.
type Variability struct {
	MeanV  float64 // mean dVth [V]
	SigmaV float64 // standard deviation [V]
	EtaV   float64 // single-trap step height [V]
	MeanN  float64 // mean number of active traps in the device
}

// DeviceVariability derives the dVth spread for a device of the given
// gate area from a mean degradation: with N ~ Poisson(meanN) traps of
// exponential step heights (mean eta), the variance of dVth is
// 2*eta*mean(dVth).
func DeviceVariability(d Degradation, cox, areaM2 float64) Variability {
	const q = 1.602176634e-19
	eta := q / (cox * areaM2)
	meanN := 0.0
	if eta > 0 {
		meanN = d.DVth / eta
	}
	return Variability{
		MeanV:  d.DVth,
		SigmaV: math.Sqrt(2 * eta * d.DVth),
		EtaV:   eta,
		MeanN:  meanN,
	}
}

// Quantile returns the dVth bound at mean + k*sigma; the paper suggests
// using k = 6 as the worst-case corner for guardband estimation.
func (v Variability) Quantile(k float64) float64 {
	return v.MeanV + k*v.SigmaV
}

// SigmaCorner returns a copy of the degradation with its threshold shift
// replaced by the k-sigma upper bound for a device of the given gate
// area, so a variability-aware library can be characterized by simply
// wrapping the model outputs.
func SigmaCorner(d Degradation, cox, areaM2, k float64) Degradation {
	v := DeviceVariability(d, cox, areaM2)
	d.DVth = v.Quantile(k)
	return d
}
