// Package aging implements the physics-based BTI (Bias Temperature
// Instability) degradation model used to build degradation-aware cell
// libraries.
//
// Following the framework the paper adopts (Joshi et al., IRPS'12; Amrouch
// et al., ICCAD'14), BTI is modelled as the joint effect of
//
//   - interface traps (NIT): Si-H bond dissociation at the Si/SiO2
//     interface, following a reaction-diffusion power law ~ t^(1/6), and
//   - oxide traps (NOT): charge capture in pre-existing dielectric
//     vacancies, following a log-time capture law,
//
// both scaled by an activity factor derived from the transistor's duty
// cycle lambda (the fraction of time the device is under stress: gate low
// for pMOS/NBTI, gate high for nMOS/PBTI).
//
// The two observable degradations are exactly the paper's Eq. (2) and (3):
//
//	dVth = q/Cox * (dNIT + dNOT)                                   (2)
//	mu   = mu0 / (1 + alpha*dNIT)                                  (3)
//
// NBTI (pMOS) is stronger than PBTI (nMOS) in high-k/metal-gate nodes; the
// default constants are calibrated so that 10 years of worst-case stress
// (lambda = 1) produce a pMOS dVth of ~65 mV with ~11% mobility loss and
// an nMOS dVth of ~31 mV with <1% mobility loss — the magnitudes behind
// the paper's reported gate-delay shifts. The kinetics are capture
// dominated (log-time), so ~85% of the 10-year shift is present after the
// first year of stress.
package aging

import (
	"fmt"
	"math"

	"ageguard/internal/units"
)

// Scenario describes one aging stress condition for a whole library:
// how long, how hot, at what supply, and with which duty cycles for the
// two device polarities. The paper sweeps LambdaP x LambdaN over
// {0.0, 0.1, ..., 1.0} producing 121 scenarios (plus the fresh case).
type Scenario struct {
	Years   float64 // operational lifetime [years]
	TempK   float64 // stress temperature [K]
	Vdd     float64 // stress voltage [V]
	LambdaP float64 // duty cycle of pMOS devices (fraction of time gate=0)
	LambdaN float64 // duty cycle of nMOS devices (fraction of time gate=1)
}

// Fresh returns the no-aging scenario (t = 0).
func Fresh() Scenario { return Scenario{TempK: units.RoomTempK, Vdd: 1.1} }

// WorstCase returns the paper's worst-case static stress: both duty cycles
// at 1.0 for the given lifetime.
func WorstCase(years float64) Scenario {
	return Scenario{Years: years, TempK: units.RoomTempK + 80, Vdd: 1.1, LambdaP: 1, LambdaN: 1}
}

// BalanceCase returns the lambda = 0.5 scenario that duty-cycle-balancing
// mitigation techniques aim for.
func BalanceCase(years float64) Scenario {
	s := WorstCase(years)
	s.LambdaP, s.LambdaN = 0.5, 0.5
	return s
}

// WithLambda returns a copy of s with the duty cycles replaced.
func (s Scenario) WithLambda(lp, ln float64) Scenario {
	s.LambdaP, s.LambdaN = lp, ln
	return s
}

// Validate reports whether the scenario is physically meaningful:
// every field finite, lifetime non-negative, duty cycles in [0, 1].
// NaN must be rejected by name — it slips through plain range
// comparisons (every comparison involving NaN is false), which is
// exactly how an unguarded workload-derived duty cycle used to reach
// the degradation model and poison every downstream delay.
func (s Scenario) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"years", s.Years},
		{"temp_k", s.TempK},
		{"vdd", s.Vdd},
		{"lambda_p", s.LambdaP},
		{"lambda_n", s.LambdaN},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("aging: scenario %s = %g is not finite", f.name, f.v)
		}
	}
	if s.Years < 0 {
		return fmt.Errorf("aging: negative lifetime %g years", s.Years)
	}
	if s.LambdaP < 0 || s.LambdaP > 1 || s.LambdaN < 0 || s.LambdaN > 1 {
		return fmt.Errorf("aging: duty cycles (%g, %g) outside [0, 1]", s.LambdaP, s.LambdaN)
	}
	return nil
}

// IsFresh reports whether the scenario involves no aging at all.
func (s Scenario) IsFresh() bool {
	return s.Years == 0 || (s.LambdaP == 0 && s.LambdaN == 0)
}

// String formats the scenario as e.g. "10.0y lp=1.0 ln=1.0".
func (s Scenario) String() string {
	return fmt.Sprintf("%.1fy lp=%.1f ln=%.1f", s.Years, s.LambdaP, s.LambdaN)
}

// Key returns a compact identifier usable in cell/library names, using the
// paper's index convention, e.g. "0.4_0.6" for lambdaP=0.4, lambdaN=0.6.
func (s Scenario) Key() string {
	return fmt.Sprintf("%.1f_%.1f", s.LambdaP, s.LambdaN)
}

// Model holds the BTI model constants. The zero value is not useful;
// use DefaultModel (calibrated as described in the package comment).
type Model struct {
	// Interface-trap generation: dNIT = KitP/N * A(lambda) * (t/t0)^ExpN
	// * field and temperature acceleration.
	KitP, KitN float64 // prefactor [traps/m^2] at reference stress
	ExpN       float64 // time exponent (reaction-diffusion: 1/6)
	T0         float64 // reference time [s]

	// Oxide-trap capture: dNOT = KotP/N * A(lambda) * ln(1 + t/TauOT).
	KotP, KotN float64 // prefactor [traps/m^2]
	TauOT      float64 // capture time constant [s]

	// Field & temperature acceleration (applied to both mechanisms).
	GammaE float64 // field exponent: (Vdd/VddRef)^GammaE
	VddRef float64 // reference stress voltage [V]
	EaIT   float64 // activation energy [eV]
	TRef   float64 // reference temperature [K]

	// Activity (duty-cycle) exponent: A(lambda) = lambda^ExpLambda.
	// Sub-linear, matching measured AC/DC BTI ratios (~0.75 at 50%).
	ExpLambda float64

	// Mobility degradation coupling alpha of Eq. (3) [m^2/trap].
	AlphaMuP, AlphaMuN float64

	// Cox used in Eq. (2) [F/m^2]; must match the device technology card.
	Cox float64
}

// DefaultModel returns the calibrated 45 nm high-k BTI model.
func DefaultModel() Model {
	// The trap mix follows high-k CET-map measurements: oxide-trap capture
	// (log-time, saturating early) dominates, with a smaller
	// reaction-diffusion interface component — so roughly 85% of the
	// 10-year threshold shift is already present after the first year,
	// which is what makes unguardbanded designs fail early (Fig. 7).
	return Model{
		KitP:      2.15e15, // -> ~10 mV interface share @10y worst-case pMOS
		KitN:      0.65e15, // PBTI interface generation is weak in HKMG
		ExpN:      1.0 / 6.0,
		T0:        10 * units.SecondsPerYear,
		KotP:      6.05e14, // -> ~55 mV oxide share @10y worst-case pMOS
		KotN:      3.08e14, // PBTI is oxide-trap dominated
		TauOT:     1.0,     // fast-capture CET tail
		GammaE:    3.0,
		VddRef:    1.1,
		EaIT:      0.09,
		TRef:      units.RoomTempK + 80,
		ExpLambda: 0.35,
		AlphaMuP:  5.86e-17,
		AlphaMuN:  1.08e-17,
		Cox:       3.45e-2,
	}
}

// Degradation is the device-observable outcome of BTI stress.
type Degradation struct {
	DVth     float64 // threshold-voltage shift magnitude [V]
	MuFactor float64 // mobility multiplier mu/mu0 in (0, 1]
	NIT      float64 // generated interface traps [1/m^2]
	NOT      float64 // captured oxide traps [1/m^2]
}

// String formats the degradation for reports.
func (d Degradation) String() string {
	return fmt.Sprintf("dVth=%s mu/mu0=%.3f", units.MVString(d.DVth), d.MuFactor)
}

// accel returns the combined voltage/temperature acceleration factor.
func (m Model) accel(s Scenario) float64 {
	v := math.Pow(s.Vdd/m.VddRef, m.GammaE)
	// Arrhenius around the reference temperature (eV -> J via units.Q).
	t := math.Exp(m.EaIT * units.Q / units.Boltzmann * (1/m.TRef - 1/s.TempK))
	return v * t
}

// activity maps a duty cycle to the fraction of DC degradation observed
// under AC stress with that duty cycle.
func (m Model) activity(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	return math.Pow(units.Clamp(lambda, 0, 1), m.ExpLambda)
}

// PMOS returns the NBTI degradation of a pMOS device under scenario s.
func (m Model) PMOS(s Scenario) Degradation {
	return m.degrade(s, s.LambdaP, m.KitP, m.KotP, m.AlphaMuP)
}

// NMOS returns the PBTI degradation of an nMOS device under scenario s.
func (m Model) NMOS(s Scenario) Degradation {
	return m.degrade(s, s.LambdaN, m.KitN, m.KotN, m.AlphaMuN)
}

func (m Model) degrade(s Scenario, lambda, kit, kot, alphaMu float64) Degradation {
	if s.Years <= 0 || lambda <= 0 {
		return Degradation{MuFactor: 1}
	}
	t := s.Years * units.SecondsPerYear
	acc := m.accel(s)
	act := m.activity(lambda)
	nit := kit * act * acc * math.Pow(t/m.T0, m.ExpN)
	not := kot * act * acc * math.Log1p(t/m.TauOT)
	dvth := units.Q / m.Cox * (nit + not)
	mu := 1 / (1 + alphaMu*nit)
	return Degradation{DVth: dvth, MuFactor: mu, NIT: nit, NOT: not}
}

// VthOnly returns a copy of d with the mobility degradation removed. It is
// used to model the state-of-the-art approaches the paper compares against
// ([9,11,12,13]) which consider Vth degradation only (Fig. 5a).
func (d Degradation) VthOnly() Degradation {
	d.MuFactor = 1
	return d
}

// LambdaGrid returns the paper's duty-cycle grid {0.0, 0.1, ..., 1.0}.
func LambdaGrid() []float64 {
	g := make([]float64, 11)
	for i := range g {
		g[i] = float64(i) / 10
	}
	return g
}

// GridScenarios enumerates the paper's 121 (lambdaP, lambdaN) scenarios for
// the given lifetime, in row-major (lambdaP outer) order.
func GridScenarios(years float64) []Scenario {
	base := WorstCase(years)
	var out []Scenario
	for _, lp := range LambdaGrid() {
		for _, ln := range LambdaGrid() {
			out = append(out, base.WithLambda(lp, ln))
		}
	}
	return out
}

// SnapLambda rounds a duty cycle to the nearest grid point (0.1 step),
// used when annotating netlists with workload-extracted activities.
func SnapLambda(l float64) float64 {
	return math.Round(units.Clamp(l, 0, 1)*10) / 10
}
