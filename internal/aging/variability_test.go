package aging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceVariability(t *testing.T) {
	m := DefaultModel()
	d := m.PMOS(WorstCase(10))
	// A minimum-size 45nm device: W=400nm, L=45nm.
	area := 400e-9 * 45e-9
	v := DeviceVariability(d, m.Cox, area)
	if v.MeanV != d.DVth {
		t.Error("mean must equal the deterministic shift")
	}
	if v.SigmaV <= 0 {
		t.Error("sigma must be positive for an aged device")
	}
	// Small devices: sigma is a significant fraction of the mean.
	if v.SigmaV < 0.05*v.MeanV || v.SigmaV > v.MeanV {
		t.Errorf("sigma/mean = %v implausible for a minimum device", v.SigmaV/v.MeanV)
	}
	// Larger devices average over more traps: smaller relative spread.
	v4 := DeviceVariability(d, m.Cox, 4*area)
	if v4.SigmaV >= v.SigmaV {
		t.Error("larger area must shrink sigma")
	}
	if v4.MeanN <= v.MeanN {
		t.Error("larger area must hold more traps")
	}
}

func TestQuantileMonotone(t *testing.T) {
	m := DefaultModel()
	d := m.PMOS(WorstCase(10))
	v := DeviceVariability(d, m.Cox, 400e-9*45e-9)
	f := func(k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		k = math.Abs(math.Mod(k, 10))
		return v.Quantile(k+1) > v.Quantile(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// The paper's 6-sigma corner exceeds the mean substantially.
	if v.Quantile(6) < 1.2*v.MeanV {
		t.Errorf("6-sigma corner %v barely above mean %v", v.Quantile(6), v.MeanV)
	}
}

func TestSigmaCorner(t *testing.T) {
	m := DefaultModel()
	d := m.PMOS(WorstCase(10))
	c := SigmaCorner(d, m.Cox, 400e-9*45e-9, 6)
	if c.DVth <= d.DVth {
		t.Error("sigma corner must exceed the mean shift")
	}
	if c.MuFactor != d.MuFactor {
		t.Error("mobility unchanged by the Vth quantile")
	}
	// Fresh device: no spread.
	fresh := m.PMOS(Fresh())
	if got := SigmaCorner(fresh, m.Cox, 1e-14, 6); got.DVth != 0 {
		t.Errorf("fresh sigma corner = %v, want 0", got.DVth)
	}
}
