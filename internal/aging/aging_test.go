package aging

import (
	"math"
	"testing"
	"testing/quick"

	"ageguard/internal/units"
)

func TestWorstCaseCalibration(t *testing.T) {
	m := DefaultModel()
	p := m.PMOS(WorstCase(10))
	n := m.NMOS(WorstCase(10))
	// Calibration targets from the package comment (10y worst case).
	if p.DVth < 50*units.MV || p.DVth > 80*units.MV {
		t.Errorf("pMOS 10y dVth = %s, want 50-80mV", units.MVString(p.DVth))
	}
	if n.DVth < 20*units.MV || n.DVth > 45*units.MV {
		t.Errorf("nMOS 10y dVth = %s, want 20-45mV", units.MVString(n.DVth))
	}
	// NBTI must dominate PBTI (the asymmetry behind Fig. 1).
	if p.DVth <= n.DVth {
		t.Error("NBTI should exceed PBTI")
	}
	if p.MuFactor >= 1 || p.MuFactor < 0.8 {
		t.Errorf("pMOS mobility factor = %v, want (0.8, 1)", p.MuFactor)
	}
	if n.MuFactor >= 1 || n.MuFactor < 0.95 {
		t.Errorf("nMOS mobility factor = %v, want (0.95, 1)", n.MuFactor)
	}
}

func TestFreshScenario(t *testing.T) {
	m := DefaultModel()
	for _, d := range []Degradation{m.PMOS(Fresh()), m.NMOS(Fresh())} {
		if d.DVth != 0 || d.MuFactor != 1 {
			t.Errorf("fresh scenario degraded: %v", d)
		}
	}
	if !Fresh().IsFresh() {
		t.Error("Fresh().IsFresh() = false")
	}
	if WorstCase(10).IsFresh() {
		t.Error("WorstCase(10).IsFresh() = true")
	}
}

func TestMonotoneInTime(t *testing.T) {
	m := DefaultModel()
	prev := 0.0
	for _, y := range []float64{0.1, 0.5, 1, 2, 5, 10, 20} {
		d := m.PMOS(WorstCase(y))
		if d.DVth <= prev {
			t.Fatalf("dVth not increasing at %vy", y)
		}
		prev = d.DVth
	}
}

func TestMonotoneInLambda(t *testing.T) {
	m := DefaultModel()
	prev := -1.0
	for _, l := range LambdaGrid() {
		d := m.PMOS(WorstCase(10).WithLambda(l, l))
		if d.DVth <= prev && l > 0 {
			t.Fatalf("dVth not increasing with lambda at %v", l)
		}
		prev = d.DVth
	}
}

func TestLambdaZeroMeansNoAging(t *testing.T) {
	m := DefaultModel()
	d := m.PMOS(WorstCase(10).WithLambda(0, 1))
	if d.DVth != 0 || d.MuFactor != 1 {
		t.Errorf("lambdaP=0 should mean no pMOS aging, got %v", d)
	}
	dn := m.NMOS(WorstCase(10).WithLambda(1, 0))
	if dn.DVth != 0 || dn.MuFactor != 1 {
		t.Errorf("lambdaN=0 should mean no nMOS aging, got %v", dn)
	}
}

func TestBalanceBelowWorst(t *testing.T) {
	m := DefaultModel()
	w := m.PMOS(WorstCase(10))
	b := m.PMOS(BalanceCase(10))
	if b.DVth >= w.DVth {
		t.Error("balance-case should age less than worst-case")
	}
	// But AC/DC ratio is sub-linear: at lambda=0.5 expect well above half.
	if b.DVth < 0.5*w.DVth {
		t.Errorf("balance dVth = %v of worst, want sub-linear (>0.5)", b.DVth/w.DVth)
	}
}

func TestVthOnly(t *testing.T) {
	m := DefaultModel()
	d := m.PMOS(WorstCase(10))
	vo := d.VthOnly()
	if vo.MuFactor != 1 || vo.DVth != d.DVth {
		t.Errorf("VthOnly wrong: %v", vo)
	}
}

func TestGridScenarios(t *testing.T) {
	g := GridScenarios(10)
	if len(g) != 121 {
		t.Fatalf("grid size = %d, want 121 (the paper's library count)", len(g))
	}
	seen := map[string]bool{}
	for _, s := range g {
		if seen[s.Key()] {
			t.Fatalf("duplicate scenario key %s", s.Key())
		}
		seen[s.Key()] = true
		if s.Years != 10 {
			t.Fatalf("scenario years = %v", s.Years)
		}
	}
	if !seen["0.4_0.6"] || !seen["1.0_1.0"] || !seen["0.0_0.0"] {
		t.Error("expected canonical keys missing")
	}
}

func TestKeyFormat(t *testing.T) {
	s := WorstCase(10).WithLambda(0.4, 0.6)
	if s.Key() != "0.4_0.6" {
		t.Errorf("Key = %q, want 0.4_0.6 (paper's naming)", s.Key())
	}
}

func TestSnapLambda(t *testing.T) {
	cases := map[float64]float64{0.44: 0.4, 0.45: 0.5, 0.0: 0, 1.0: 1, 1.7: 1, -0.2: 0, 0.06: 0.1}
	for in, want := range cases {
		if got := SnapLambda(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("SnapLambda(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestSnapLambdaProperty(t *testing.T) {
	f := func(l float64) bool {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return true
		}
		s := SnapLambda(l)
		if s < 0 || s > 1 {
			return false
		}
		// Must be on the 0.1 grid.
		return math.Abs(s*10-math.Round(s*10)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTemperatureAcceleration(t *testing.T) {
	m := DefaultModel()
	hot := WorstCase(10)
	cold := hot
	cold.TempK = hot.TempK - 50
	if m.PMOS(cold).DVth >= m.PMOS(hot).DVth {
		t.Error("lower temperature should age less")
	}
}

func TestVoltageAcceleration(t *testing.T) {
	m := DefaultModel()
	nom := WorstCase(10)
	over := nom
	over.Vdd = nom.Vdd * 1.1
	if m.PMOS(over).DVth <= m.PMOS(nom).DVth {
		t.Error("overdrive should age more")
	}
}

func TestDegradationString(t *testing.T) {
	m := DefaultModel()
	s := m.PMOS(WorstCase(10)).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestScenarioValidate(t *testing.T) {
	good := []Scenario{
		Fresh(),
		WorstCase(10),
		BalanceCase(10),
		WorstCase(10).WithLambda(0, 1),
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: unexpected Validate error: %v", s, err)
		}
	}
	bad := []Scenario{
		WorstCase(10).WithLambda(math.NaN(), 0.5),
		WorstCase(10).WithLambda(0.5, math.NaN()),
		WorstCase(10).WithLambda(math.Inf(1), 0.5),
		WorstCase(10).WithLambda(-0.1, 0.5),
		WorstCase(10).WithLambda(0.5, 1.1),
		WorstCase(-1),
		{Years: math.NaN(), TempK: units.RoomTempK, Vdd: 1.1},
		{Years: 10, TempK: math.Inf(-1), Vdd: 1.1},
		{Years: 10, TempK: units.RoomTempK, Vdd: math.NaN()},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%v: Validate accepted an invalid scenario", s)
		}
	}
}
