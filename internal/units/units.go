// Package units provides physical constants and unit helpers shared across
// the device, aging and circuit-simulation packages.
//
// All internal computation is done in SI units (volts, amperes, farads,
// seconds, meters). The helpers here exist to keep magnitudes readable at
// call sites (e.g. 5*units.Ps, 20*units.FF) and to format quantities in the
// units used by the paper (ps, fF, mV).
package units

import "fmt"

// Fundamental physical constants (SI).
const (
	// Q is the elementary charge in coulombs.
	Q = 1.602176634e-19
	// Boltzmann is the Boltzmann constant in J/K.
	Boltzmann = 1.380649e-23
	// Eps0 is the vacuum permittivity in F/m.
	Eps0 = 8.8541878128e-12
	// EpsSiO2 is the relative permittivity of SiO2.
	EpsSiO2 = 3.9
	// EpsSi is the relative permittivity of silicon.
	EpsSi = 11.7
)

// Convenient scale factors. Multiply to convert into SI:
// e.g. 5 * Ps == 5e-12 s, 0.5 * FF == 5e-16 F.
const (
	Ns = 1e-9  // nanosecond in seconds
	Ps = 1e-12 // picosecond in seconds
	FF = 1e-15 // femtofarad in farads
	PF = 1e-12 // picofarad in farads
	Nm = 1e-9  // nanometer in meters
	Um = 1e-6  // micrometer in meters
	MV = 1e-3  // millivolt in volts
	MA = 1e-3  // milliampere in amperes
	UA = 1e-6  // microampere in amperes

	// SecondsPerYear is the length of a (Julian) year in seconds, used by
	// the aging model to convert lifetimes expressed in years.
	SecondsPerYear = 365.25 * 24 * 3600
)

// RoomTempK is the default junction temperature used for characterization.
// The paper characterizes libraries at a fixed elevated operating
// temperature typical for aging analysis.
const RoomTempK = 300.0

// Vt returns the thermal voltage kT/q at temperature tempK.
func Vt(tempK float64) float64 { return Boltzmann * tempK / Q }

// PsString formats a time in seconds as picoseconds with two decimals.
func PsString(sec float64) string { return fmt.Sprintf("%.2fps", sec/Ps) }

// FFString formats a capacitance in farads as femtofarads with two decimals.
func FFString(f float64) string { return fmt.Sprintf("%.2ffF", f/FF) }

// MVString formats a voltage in volts as millivolts with one decimal.
func MVString(v float64) string { return fmt.Sprintf("%.1fmV", v/MV) }

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
