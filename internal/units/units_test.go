package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVt(t *testing.T) {
	got := Vt(300)
	if math.Abs(got-0.02585) > 1e-4 {
		t.Errorf("Vt(300K) = %v, want ~25.85mV", got)
	}
}

func TestScaleFactors(t *testing.T) {
	if 5*Ps != 5e-12 {
		t.Errorf("5*Ps = %v", 5*Ps)
	}
	if 0.5*FF != 5e-16 {
		t.Errorf("0.5*FF = %v", 0.5*FF)
	}
	if 20*FF >= PF {
		t.Errorf("20fF should be < 1pF")
	}
}

func TestFormatting(t *testing.T) {
	if got := PsString(5e-12); got != "5.00ps" {
		t.Errorf("PsString = %q", got)
	}
	if got := FFString(2.5e-15); got != "2.50fF" {
		t.Errorf("FFString = %q", got)
	}
	if got := MVString(0.0654); got != "65.4mV" {
		t.Errorf("MVString = %q", got)
	}
}

func TestClampProperties(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Clamp(x, -1, 1)
		return c >= -1 && c <= 1 && (x < -1 || x > 1 || c == x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true // avoid overflow in b-a; physical values are bounded
		}
		return Lerp(a, b, 0) == a && Lerp(a, b, 1) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsPerYear(t *testing.T) {
	if SecondsPerYear < 365*24*3600 || SecondsPerYear > 366*24*3600 {
		t.Errorf("SecondsPerYear = %v out of range", SecondsPerYear)
	}
}
