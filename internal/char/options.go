package char

import (
	"ageguard/internal/aging"
	"ageguard/internal/device"
	"ageguard/internal/opt"
)

// Option configures a Config under construction; see New.
type Option = opt.Option[Config]

// New returns DefaultConfig with the options applied, so callers build a
// configuration in one expression:
//
//	cfg := char.New(char.WithParallelism(8), char.WithCacheDir(".libcache"))
func New(opts ...Option) Config {
	return opt.Apply(DefaultConfig(), opts...)
}

// WithTech selects the device technology models.
func WithTech(t device.Tech) Option { return func(c *Config) { c.Tech = t } }

// WithModel selects the aging (degradation) model.
func WithModel(m aging.Model) Option { return func(c *Config) { c.Model = m } }

// WithGrid replaces the OPC grid axes (input slews x output loads).
func WithGrid(slews, loads []float64) Option {
	return func(c *Config) { c.Slews, c.Loads = slews, loads }
}

// WithVthOnly toggles the Vth-only comparison mode (no mobility degradation).
func WithVthOnly(on bool) Option { return func(c *Config) { c.VthOnly = on } }

// WithCacheDir enables the on-disk library cache rooted at dir ("" disables).
func WithCacheDir(dir string) Option { return func(c *Config) { c.CacheDir = dir } }

// WithCells restricts characterization to the named cells (nil = all).
func WithCells(names ...string) Option { return func(c *Config) { c.Cells = names } }

// WithParallelism bounds concurrent transient simulations (0 = all CPUs).
func WithParallelism(n int) Option { return func(c *Config) { c.Parallelism = n } }

// WithProgress installs the serialized per-cell progress callback.
func WithProgress(fn func(done, total int)) Option {
	return func(c *Config) { c.Progress = fn }
}

// WithRetries sets the depth of the solver escalation ladder applied to
// non-convergent grid points (0 = DefaultRetries, negative = disabled).
func WithRetries(n int) Option { return func(c *Config) { c.Retries = n } }

// WithStrict toggles strict mode: failed grid points abort
// characterization instead of being salvaged by interpolation, and cached
// results containing salvaged points are rebuilt.
func WithStrict(on bool) Option { return func(c *Config) { c.Strict = on } }
