package char

import (
	"context"
	"fmt"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"
)

// This file implements the sensitivity-based re-characterization path of
// the process-variation Monte Carlo subsystem. Re-simulating every cell
// for every sampled device perturbation would cost a full characterization
// per sample; instead we characterize the library a handful of times —
// once nominal plus once per variation parameter at a small step — and
// build first-order per-arc sensitivity tables
//
//	S_p[i][j] = (D_{step p}[i][j] - D_nominal[i][j]) / step_p
//
// for every arc's delay and output-slew tables. A sampled instance with
// parameter draws (dVthP, dVthN, dMuP, dMuN) then gets the table
//
//	D[i][j] = D_nominal[i][j] + sum_p draw_p * S_p[i][j]
//
// Because NLDM interpolation (liberty.Table.At) is linear in the table
// values, applying the delta at the grid points is exactly equivalent to
// applying it after interpolation — the first-order model composes with
// the table lookup without additional error. The exact validation mode
// (CharacterizeCellPerturbed) re-simulates a cell with the drawn
// perturbation through the same SPICE path, so the difference between the
// two is purely the first-order truncation error, which the differential
// test and BENCH_PR10 quantify.

// Finite-difference steps for the sensitivity characterizations. The Vth
// step is chosen near the per-instance sigma so the secant slope averages
// the curvature over the region actually sampled; the mobility step is
// negative because both aging and slow-corner variation reduce mobility.
const (
	SensStepVth = 0.010 // [V]
	SensStepMu  = -0.05 // relative
)

// Variation parameter indices within ArcSens.
const (
	sensVthP = iota
	sensVthN
	sensMuP
	sensMuN
	numSensParams
)

// ArcSens holds per-unit-parameter derivative tables for one timing arc:
// Delay[p][e] is dDelay/dparam_p for output edge e, on the library's
// slew x load grid. A nil table mirrors a nil table in the base arc.
type ArcSens struct {
	Delay   [numSensParams][2]*liberty.Table
	OutSlew [numSensParams][2]*liberty.Table
}

// Sensitivity is a characterized library together with first-order
// per-arc sensitivities to the four variation parameters. Build with
// Config.Sensitivities; materialize per-sample instance libraries with
// SampleLibrary. Immutable after construction and safe for concurrent
// use.
type Sensitivity struct {
	// Base is the nominal library the sensitivities are taken around.
	Base *liberty.Library

	arcs map[string][]ArcSens // cell name -> per-arc sensitivities
}

// Sensitivities characterizes the nominal library plus one single-axis
// perturbed library per variation parameter (five characterizations, all
// cache-eligible since Config.Perturb enters the cache hash) and returns
// the finite-difference sensitivity tables. The perturbed runs execute
// sequentially — each is internally parallel under cfg.Parallelism, so
// stacking them would only oversubscribe the simulation limiter.
func (cfg Config) Sensitivities(ctx context.Context, s aging.Scenario) (*Sensitivity, error) {
	ctx, sp := obs.StartSpan(ctx, "char.sensitivities")
	defer sp.End()
	sp.SetAttr("scenario", s.String())

	base, err := cfg.Characterize(ctx, s)
	if err != nil {
		return nil, fmt.Errorf("char: sensitivity base: %w", err)
	}
	steps := [numSensParams]device.Perturb{
		sensVthP: {DVthP: SensStepVth},
		sensVthN: {DVthN: SensStepVth},
		sensMuP:  {DMuP: SensStepMu},
		sensMuN:  {DMuN: SensStepMu},
	}
	stepSize := [numSensParams]float64{SensStepVth, SensStepVth, SensStepMu, SensStepMu}
	var perturbed [numSensParams]*liberty.Library
	for p, step := range steps {
		pcfg := cfg
		pcfg.Perturb = cfg.Perturb.Add(step)
		lib, err := pcfg.Characterize(ctx, s)
		if err != nil {
			return nil, fmt.Errorf("char: sensitivity step %v: %w", step, err)
		}
		perturbed[p] = lib
	}

	sn := &Sensitivity{Base: base, arcs: make(map[string][]ArcSens, len(base.Cells))}
	for name, ct := range base.Cells {
		arcSens := make([]ArcSens, len(ct.Arcs))
		for p := 0; p < numSensParams; p++ {
			pct, ok := perturbed[p].Cells[name]
			if !ok || len(pct.Arcs) != len(ct.Arcs) {
				return nil, fmt.Errorf("char: sensitivity library %d misaligned for cell %s", p, name)
			}
			for ai := range ct.Arcs {
				b, q := &ct.Arcs[ai], &pct.Arcs[ai]
				if b.Pin != q.Pin || b.Sense != q.Sense {
					return nil, fmt.Errorf("char: sensitivity arc %d misaligned for cell %s", ai, name)
				}
				for e := 0; e < 2; e++ {
					arcSens[ai].Delay[p][e] = diffTable(q.Delay[e], b.Delay[e], stepSize[p])
					arcSens[ai].OutSlew[p][e] = diffTable(q.OutSlew[e], b.OutSlew[e], stepSize[p])
				}
			}
		}
		sn.arcs[name] = arcSens
	}
	return sn, nil
}

// diffTable returns (pert - base)/step per grid point, or nil when either
// input is nil (mirroring absent edge tables).
func diffTable(pert, base *liberty.Table, step float64) *liberty.Table {
	if pert == nil || base == nil {
		return nil
	}
	out := liberty.NewTable(base.Slews, base.Loads)
	for i, row := range base.Values {
		for j, v := range row {
			out.Values[i][j] = (pert.Values[i][j] - v) / step
		}
	}
	return out
}

// InstDraw is one placed instance together with its sampled perturbation:
// the input to per-sample library materialization.
type InstDraw struct {
	Inst string // instance name in the netlist
	Cell string // base library cell name
	Pb   device.Perturb
}

// VariantCell names the per-instance cell of inst in a Monte Carlo sample
// library ("NAND2_X1@u7"). The '@' cannot occur in catalog cell names or
// lambda-indexed merged names, so variants never collide with base cells.
func VariantCell(cell, inst string) string { return cell + "@" + inst }

// SampleLibrary materializes the instance-variant library of one Monte
// Carlo sample: for every drawn instance it adds a cell named
// VariantCell(draw.Cell, draw.Inst) whose delay and output-slew tables are
// the nominal tables plus the first-order sensitivity deltas for the
// instance's draws. Instances with a zero draw share the nominal tables
// outright. Pin capacitances are geometry-only and therefore shared
// unchanged, which keeps netlist loads — and hence the compiled STA
// topology — identical across samples.
func (sn *Sensitivity) SampleLibrary(name string, draws []InstDraw) (*liberty.Library, error) {
	lib := &liberty.Library{
		Name:     name,
		Scenario: sn.Base.Scenario,
		Vdd:      sn.Base.Vdd,
		Slews:    sn.Base.Slews,
		Loads:    sn.Base.Loads,
		Cells:    make(map[string]*liberty.CellTiming, len(draws)),
	}
	for _, d := range draws {
		ct, ok := sn.Base.Cells[d.Cell]
		if !ok {
			return nil, fmt.Errorf("char: sample library: no cell %q for instance %q", d.Cell, d.Inst)
		}
		vname := VariantCell(d.Cell, d.Inst)
		cp := *ct
		cp.Name = vname
		if !d.Pb.IsZero() {
			sens := sn.arcs[d.Cell]
			scale := [numSensParams]float64{d.Pb.DVthP, d.Pb.DVthN, d.Pb.DMuP, d.Pb.DMuN}
			arcs := make([]liberty.Arc, len(ct.Arcs))
			for ai := range ct.Arcs {
				a := ct.Arcs[ai]
				for e := 0; e < 2; e++ {
					a.Delay[e] = applyDelta(ct.Arcs[ai].Delay[e], sens[ai].Delay, e, scale)
					a.OutSlew[e] = applyDelta(ct.Arcs[ai].OutSlew[e], sens[ai].OutSlew, e, scale)
				}
				arcs[ai] = a
			}
			cp.Arcs = arcs
		}
		lib.Cells[vname] = &cp
	}
	return lib, nil
}

// applyDelta builds base + sum_p scale[p]*sens[p] for one edge table.
// Delay and slew floors at zero guard against a large negative draw driving
// a tiny fast-corner table entry below the physical floor.
func applyDelta(base *liberty.Table, sens [numSensParams][2]*liberty.Table, e int, scale [numSensParams]float64) *liberty.Table {
	if base == nil {
		return nil
	}
	out := liberty.NewTable(base.Slews, base.Loads)
	for i, row := range base.Values {
		for j, v := range row {
			for p := 0; p < numSensParams; p++ {
				if s := sens[p][e]; s != nil {
					v += scale[p] * s.Values[i][j]
				}
			}
			if v < 0 {
				v = 0
			}
			out.Values[i][j] = v
		}
	}
	return out
}

// CharacterizeCellPerturbed re-simulates one cell with an additional
// per-instance perturbation through the full SPICE sweep — the exact
// validation path of the Monte Carlo subsystem. It bypasses the disk
// cache, checkpoints and singleflight (perturbations are per-instance
// draws that would only pollute the cache); lim bounds the concurrently
// running transient simulations.
func (cfg Config) CharacterizeCellPerturbed(ctx context.Context, lim conc.Limiter, cell string, s aging.Scenario, pb device.Perturb) (*liberty.CellTiming, error) {
	c, ok := cells.ByName(cell)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCell, cell)
	}
	pcfg := cfg
	pcfg.Perturb = cfg.Perturb.Add(pb)
	ct, err := pcfg.characterizeCell(ctx, lim, c, s)
	if err != nil {
		return nil, fmt.Errorf("char: exact cell %s: %w", cell, err)
	}
	return ct, nil
}
