package char

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

// This file measures the transistor-level transient kernel — the hot path
// of every characterization run — at two levels:
//
//  1. one full per-arc characterization point (circuit build +
//     retry-ladder transient + delay/slew measurement) on a single-stage
//     INV_X1 and a multi-stage XOR2_X1 arc, with allocation tracking
//     (b.ReportAllocs), in both Jacobian modes;
//  2. a small Characterize run (wall clock), the unit of work the
//     121-library grid repeats.
//
// TestBenchPR6Emit runs the same workloads and writes BENCH_PR6.json
// ("make bench"). The embedded seed* constants are these exact workloads
// measured on the pre-PR6 tree (commit 0e6370b: finite-difference MOS
// Jacobian, [][]float64 LU, a fresh volts() slice per accepted step), so
// the recorded speedups are against the real pre-change solver, not
// against the FiniteDiffJacobian escape hatch (which already benefits
// from compiled stamps, the flat LU kernel and pooling).
const (
	seedArcINVNs      = 56437.0
	seedArcINVAllocs  = 244.0
	seedArcXORNs      = 537740.0
	seedArcXORAllocs  = 263.0
	seedCharINVNs     = 1239672.0
	seedCharINVAllocs = 4646.0
)

// benchArc returns a closure running one complete characterization point
// of the cell's first combinational arc: rise edge, 100 ps input slew,
// 4 fF load — the middle of the OPC grid.
func benchArc(tb testing.TB, cfg Config, cellName string) func() {
	tb.Helper()
	cell, ok := cells.ByName(cellName)
	if !ok {
		tb.Fatalf("no cell %s", cellName)
	}
	specs := DiscoverArcs(cell)
	if len(specs) == 0 {
		tb.Fatalf("no arcs for %s", cellName)
	}
	spec := specs[0]
	scen := aging.WorstCase(10)
	ctx := context.Background()
	pi := cell.PinIndex(spec.Pin)
	slew, load := 100*units.Ps, 4*units.FF
	return func() {
		p := Point{Cell: cell.Name, Pin: spec.Pin, Edge: liberty.Rise}
		m, err := cfg.simComb(ctx, cell, scen, spec, p, pi,
			spec.Sense.InputEdge(liberty.Rise), liberty.Rise, slew, load)
		if err != nil {
			tb.Fatal(err)
		}
		if m.delay <= 0 {
			tb.Fatalf("implausible delay %v", m.delay)
		}
	}
}

func benchArcRun(b *testing.B, cellName string, fd bool) {
	cfg := TestConfig()
	cfg.FiniteDiffJacobian = fd
	run := benchArc(b, cfg, cellName)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkArcTransientINVX1(b *testing.B)   { benchArcRun(b, "INV_X1", false) }
func BenchmarkArcTransientINVX1FD(b *testing.B) { benchArcRun(b, "INV_X1", true) }
func BenchmarkArcTransientXOR2X1(b *testing.B)  { benchArcRun(b, "XOR2_X1", false) }
func BenchmarkArcTransientXOR2X1FD(b *testing.B) {
	benchArcRun(b, "XOR2_X1", true)
}

// BenchmarkCharacterizeINVX1 measures the small Characterize unit
// (one cell, 3x3 grid, no cache) that scenario sweeps repeat 121 times.
func BenchmarkCharacterizeINVX1(b *testing.B) {
	cfg := TestConfig()
	cfg.CacheDir = ""
	cfg.Cells = []string{"INV_X1"}
	cfg.Parallelism = 1
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Characterize(ctx, aging.WorstCase(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMeasure is one measured workload: best-of-iters wall time and the
// heap allocation count of that best run.
type benchMeasure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchReport is the BENCH_PR6.json document.
type benchReport struct {
	Date       string                  `json:"date"`
	GoVersion  string                  `json:"go_version"`
	CPUs       int                     `json:"cpus"`
	Iterations int                     `json:"iterations"`
	Baseline   string                  `json:"baseline"`
	Seed       map[string]benchMeasure `json:"seed_pre_pr6"`
	Now        map[string]benchMeasure `json:"optimized"`
	Speedup    map[string]float64      `json:"speedup"`
}

func measureBest(iters int, f func()) benchMeasure {
	f() // warm up: caches, solver pool
	best := benchMeasure{NsPerOp: float64(1 << 62)}
	for i := 0; i < iters; i++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		f()
		ns := float64(time.Since(t0).Nanoseconds())
		runtime.ReadMemStats(&m1)
		if ns < best.NsPerOp {
			best = benchMeasure{NsPerOp: ns, AllocsPerOp: float64(m1.Mallocs - m0.Mallocs)}
		}
	}
	return best
}

// TestBenchPR6Emit produces BENCH_PR6.json. Skipped unless BENCH_PR6_OUT
// names the output file; BENCH_PR6_ITERS overrides the repetition count
// (1 = smoke mode for "make verify").
func TestBenchPR6Emit(t *testing.T) {
	out := os.Getenv("BENCH_PR6_OUT")
	if out == "" {
		t.Skip("set BENCH_PR6_OUT to emit the benchmark report")
	}
	iters := 10
	if s := os.Getenv("BENCH_PR6_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad BENCH_PR6_ITERS=%q", s)
		}
		iters = n
	}
	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Iterations: iters,
		Baseline: "pre-PR6 solver at commit 0e6370b: finite-difference MOS Jacobian, " +
			"[][]float64 LU with per-row allocations, fresh volts() slice per accepted step",
		Seed: map[string]benchMeasure{
			"arc_inv_x1":          {NsPerOp: seedArcINVNs, AllocsPerOp: seedArcINVAllocs},
			"arc_xor2_x1":         {NsPerOp: seedArcXORNs, AllocsPerOp: seedArcXORAllocs},
			"characterize_inv_x1": {NsPerOp: seedCharINVNs, AllocsPerOp: seedCharINVAllocs},
		},
		Now:     map[string]benchMeasure{},
		Speedup: map[string]float64{},
	}

	cfg := TestConfig()
	rep.Now["arc_inv_x1"] = measureBest(iters, benchArc(t, cfg, "INV_X1"))
	rep.Now["arc_xor2_x1"] = measureBest(iters, benchArc(t, cfg, "XOR2_X1"))

	ccfg := TestConfig()
	ccfg.CacheDir = ""
	ccfg.Cells = []string{"INV_X1"}
	ccfg.Parallelism = 1
	ctx := context.Background()
	rep.Now["characterize_inv_x1"] = measureBest(iters, func() {
		if _, err := ccfg.Characterize(ctx, aging.WorstCase(10)); err != nil {
			t.Fatal(err)
		}
	})

	for k, s := range rep.Seed {
		if n, ok := rep.Now[k]; ok && n.NsPerOp > 0 {
			rep.Speedup[k] = s.NsPerOp / n.NsPerOp
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for k, sp := range rep.Speedup {
		t.Logf("%s: seed %.1fus -> now %.1fus (%.2fx, allocs %.0f -> %.0f)",
			k, rep.Seed[k].NsPerOp/1e3, rep.Now[k].NsPerOp/1e3, sp,
			rep.Seed[k].AllocsPerOp, rep.Now[k].AllocsPerOp)
	}
	if iters > 1 {
		if sp := rep.Speedup["arc_xor2_x1"]; sp < 2 {
			t.Errorf("multi-stage per-arc transient speedup %.2fx < 2x", sp)
		}
	}
}
