package char

import (
	"context"
	"math"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

func TestLogAxis(t *testing.T) {
	a := LogAxis(5*units.Ps, 947*units.Ps, 7)
	if len(a) != 7 {
		t.Fatalf("len = %d", len(a))
	}
	if a[0] != 5*units.Ps || a[6] != 947*units.Ps {
		t.Errorf("endpoints = %v %v", a[0], a[6])
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatal("axis not ascending")
		}
	}
	// Log spacing: constant ratio.
	r0 := a[1] / a[0]
	r5 := a[6] / a[5]
	if math.Abs(r0/r5-1) > 1e-6 {
		t.Errorf("ratios differ: %v vs %v", r0, r5)
	}
	if one := LogAxis(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Errorf("n=1 axis = %v", one)
	}
}

func TestDiscoverArcs(t *testing.T) {
	nand := cells.MustByName("NAND2_X1")
	arcs := DiscoverArcs(nand)
	if len(arcs) != 2 {
		t.Fatalf("NAND2 arcs = %d, want 2", len(arcs))
	}
	for _, a := range arcs {
		if a.Sense != liberty.NegativeUnate {
			t.Errorf("NAND2 arc %s sense = %v, want negative", a.Pin, a.Sense)
		}
	}
	// NAND2 A1 arc: side input A2 must be 1 (non-controlling).
	if arcs[0].Pin != "A1" || arcs[0].When != 2 {
		t.Errorf("NAND2 A1 arc = %+v", arcs[0])
	}

	xor := cells.MustByName("XOR2_X1")
	xa := DiscoverArcs(xor)
	if len(xa) != 4 {
		t.Fatalf("XOR2 arcs = %d, want 4 (2 pins x 2 senses)", len(xa))
	}

	mux := cells.MustByName("MUX2_X1")
	ma := DiscoverArcs(mux)
	// A (1 arc), B (1 arc), S (2 arcs).
	if len(ma) != 4 {
		t.Fatalf("MUX2 arcs = %d, want 4", len(ma))
	}

	inv := cells.MustByName("INV_X1")
	ia := DiscoverArcs(inv)
	if len(ia) != 1 || ia[0].Sense != liberty.NegativeUnate {
		t.Fatalf("INV arcs = %+v", ia)
	}
}

// charSubset characterizes a small cell subset on the reduced grid.
func charSubset(t *testing.T, names []string, s aging.Scenario) *liberty.Library {
	t.Helper()
	cfg := TestConfig()
	cfg.Cells = names
	lib, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestCharacterizeInverterFresh(t *testing.T) {
	lib := charSubset(t, []string{"INV_X1"}, aging.Fresh())
	ct := lib.MustCell("INV_X1")
	if len(ct.Arcs) != 1 {
		t.Fatalf("arcs = %d", len(ct.Arcs))
	}
	a := ct.Arcs[0]
	for _, e := range []liberty.Edge{liberty.Rise, liberty.Fall} {
		d := a.Delay[e]
		if d == nil {
			t.Fatalf("missing %v delay table", e)
		}
		// Delay must increase with load at fixed (smallest) slew.
		row := d.Values[0]
		for j := 1; j < len(row); j++ {
			if row[j] <= row[j-1] {
				t.Errorf("%v delay not increasing with load: %v", e, row)
			}
		}
		// All delays plausible for an inverter. Slightly negative values
		// are legitimate at very slow input ramps (the output crosses 50%
		// before the input midpoint), as in real NLDM libraries.
		for i, r := range d.Values {
			for _, v := range r {
				if v < -200*units.Ps || v > 500*units.Ps {
					t.Errorf("%v delay %s out of range", e, units.PsString(v))
				}
				if i == 0 && v <= 0 {
					t.Errorf("%v delay %s at fastest slew should be positive", e, units.PsString(v))
				}
			}
		}
		// Output slew grows with load.
		s0 := a.OutSlew[e].Values[0]
		if s0[len(s0)-1] <= s0[0] {
			t.Errorf("%v out slew not increasing with load: %v", e, s0)
		}
	}
}

func TestAgedNANDDelayShape(t *testing.T) {
	// The paper's Fig. 1(a): NAND delay increase under worst-case aging
	// grows with input slew and shrinks with output load.
	fresh := charSubset(t, []string{"NAND2_X1"}, aging.Fresh())
	aged := charSubset(t, []string{"NAND2_X1"}, aging.WorstCase(10))
	fArc := fresh.MustCell("NAND2_X1").Arcs[0]
	aArc := aged.MustCell("NAND2_X1").Arcs[0]
	// Output rise (input fall): the pull-up fights the still-on nMOS.
	e := liberty.Rise
	incr := func(i, j int) float64 {
		f := fArc.Delay[e].Values[i][j]
		return (aArc.Delay[e].Values[i][j] - f) / f * 100
	}
	ni, nj := len(fresh.Slews)-1, len(fresh.Loads)-1
	slowSlewSmallLoad := incr(ni, 0)
	fastSlewSmallLoad := incr(0, 0)
	slowSlewBigLoad := incr(ni, nj)
	if slowSlewSmallLoad <= fastSlewSmallLoad {
		t.Errorf("aging impact should grow with slew: slow=%v%% fast=%v%%",
			slowSlewSmallLoad, fastSlewSmallLoad)
	}
	if slowSlewBigLoad >= slowSlewSmallLoad {
		t.Errorf("aging impact should shrink with load: big=%v%% small=%v%%",
			slowSlewBigLoad, slowSlewSmallLoad)
	}
	if fastSlewSmallLoad <= 0 {
		t.Errorf("NAND should age positive at fast slew: %v%%", fastSlewSmallLoad)
	}
}

func TestAgedNORFallImproves(t *testing.T) {
	// The paper's Fig. 1(b): under aging the NOR's fall delay *improves*
	// at large input slews because the weakened pMOS pull-up opposes the
	// pull-down less during the overlap.
	fresh := charSubset(t, []string{"NOR2_X1"}, aging.Fresh())
	aged := charSubset(t, []string{"NOR2_X1"}, aging.WorstCase(10))
	fArc := fresh.MustCell("NOR2_X1").Arcs[0]
	aArc := aged.MustCell("NOR2_X1").Arcs[0]
	ni := len(fresh.Slews) - 1
	f := fArc.Delay[liberty.Fall].Values[ni][0]
	a := aArc.Delay[liberty.Fall].Values[ni][0]
	if a >= f {
		t.Errorf("NOR fall delay at slow slew should improve with aging: fresh=%s aged=%s",
			units.PsString(f), units.PsString(a))
	}
	// But its rise delay (through the aged pMOS stack) must degrade.
	fr := fArc.Delay[liberty.Rise].Values[0][0]
	ar := aArc.Delay[liberty.Rise].Values[0][0]
	if ar <= fr {
		t.Errorf("NOR rise delay should degrade: fresh=%s aged=%s",
			units.PsString(fr), units.PsString(ar))
	}
}

func TestVthOnlyUnderestimates(t *testing.T) {
	// Fig. 5(a) mechanism: ignoring mu degradation underestimates delay.
	full := charSubset(t, []string{"INV_X1"}, aging.WorstCase(10))
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.VthOnly = true
	vth, err := cfg.Characterize(context.Background(), aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	fArc := full.MustCell("INV_X1").Arcs[0]
	vArc := vth.MustCell("INV_X1").Arcs[0]
	fd := fArc.Delay[liberty.Rise].Values[0][1]
	vd := vArc.Delay[liberty.Rise].Values[0][1]
	if vd >= fd {
		t.Errorf("Vth-only rise delay %s should be below full-degradation %s",
			units.PsString(vd), units.PsString(fd))
	}
}

func TestDFFClockArc(t *testing.T) {
	lib := charSubset(t, []string{"DFF_X1"}, aging.Fresh())
	ct := lib.MustCell("DFF_X1")
	if !ct.Seq || ct.SetupPS <= 0 {
		t.Fatal("DFF metadata missing")
	}
	a := ct.Arcs[0]
	if a.Pin != "CK" {
		t.Fatalf("clock arc pin = %s", a.Pin)
	}
	for _, e := range []liberty.Edge{liberty.Rise, liberty.Fall} {
		d := a.Delay[e].Values[0][0]
		if d <= 0 || d > 300*units.Ps {
			t.Errorf("CK->Q %v delay %s implausible", e, units.PsString(d))
		}
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	lib1, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Second call must hit the cache and return identical values.
	lib2, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	v1 := lib1.MustCell("INV_X1").Arcs[0].Delay[liberty.Rise].Values
	v2 := lib2.MustCell("INV_X1").Arcs[0].Delay[liberty.Rise].Values
	for i := range v1 {
		for j := range v1[i] {
			if math.Abs(v1[i][j]-v2[i][j]) > 1e-18 {
				t.Fatalf("cache mismatch at %d,%d", i, j)
			}
		}
	}
	// Vth-only must use a distinct cache entry.
	cfg2 := cfg
	cfg2.VthOnly = true
	if cfg.cachePath(s) == cfg2.cachePath(s) {
		t.Error("VthOnly shares cache path with full model")
	}
}

func TestMultiStageAndCell(t *testing.T) {
	// AND2 = NAND2 + output inverter: positive unate, internal slope real.
	lib := charSubset(t, []string{"AND2_X1"}, aging.Fresh())
	a := lib.MustCell("AND2_X1").Arcs[0]
	if a.Sense != liberty.PositiveUnate {
		t.Errorf("AND2 sense = %v", a.Sense)
	}
	d := a.Delay[liberty.Rise].Values[0][0]
	inv := charSubset(t, []string{"INV_X1"}, aging.Fresh())
	di := inv.MustCell("INV_X1").Arcs[0].Delay[liberty.Rise].Values[0][0]
	if d <= di {
		t.Errorf("AND2 (two stage) delay %s should exceed INV %s",
			units.PsString(d), units.PsString(di))
	}
}
