package char

import (
	"context"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

// monoTolerance absorbs solver-level noise when comparing delays that
// should be ordered by physics; the BTI deltas under test are orders of
// magnitude larger.
const monoTolerance = 1e-9

// monoLib characterizes the full cell set on a 1x1 grid (the smallest
// sweep that still exercises every cell and arc) for one scenario.
func monoLib(t *testing.T, dir string, s aging.Scenario) *liberty.Library {
	t.Helper()
	cfg := TestConfig()
	cfg.Slews = LogAxis(20*units.Ps, 20*units.Ps, 1)
	cfg.Loads = LogAxis(2*units.FF, 2*units.FF, 1)
	cfg.CacheDir = dir
	l, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatalf("%v: %v", s, err)
	}
	return l
}

// requireNoFaster asserts that no arc of any cell got faster going from
// the lo to the hi stress library.
func requireNoFaster(t *testing.T, what string, lo, hi *liberty.Library) {
	t.Helper()
	for name, lc := range lo.Cells {
		hc, ok := hi.Cells[name]
		if !ok || len(hc.Arcs) != len(lc.Arcs) {
			t.Fatalf("%s: cell %s arcs misaligned", what, name)
		}
		for ai := range lc.Arcs {
			for e := 0; e < 2; e++ {
				lt, ht := lc.Arcs[ai].Delay[e], hc.Arcs[ai].Delay[e]
				if (lt == nil) != (ht == nil) {
					t.Fatalf("%s: %s arc %d edge %d nil mismatch", what, name, ai, e)
				}
				if lt == nil {
					continue
				}
				for i := range lt.Values {
					for j := range lt.Values[i] {
						a, b := lt.Values[i][j], ht.Values[i][j]
						if b < a-monoTolerance*a {
							t.Errorf("%s: %s arc %d edge %d [%d][%d]: %v > %v",
								what, name, ai, e, i, j, a, b)
						}
					}
				}
			}
		}
	}
}

// TestAgedDelayMonotonic asserts the core physical property behind every
// guardband in the repo: for every cell and arc, delay never decreases
// with operational years or with duty cycle (more stress, more BTI shift,
// slower gate — the paper's Fig. 3 monotonicity).
func TestAgedDelayMonotonic(t *testing.T) {
	dir := t.TempDir()
	libs := map[string]*liberty.Library{}
	for _, c := range []struct {
		key string
		s   aging.Scenario
	}{
		{"y0", aging.Fresh()},
		{"y5", aging.WorstCase(5)},
		{"y10", aging.WorstCase(10)},
		{"l03", aging.WorstCase(10).WithLambda(0.3, 0.3)},
		{"l07", aging.WorstCase(10).WithLambda(0.7, 0.7)},
	} {
		libs[c.key] = monoLib(t, dir, c.s)
	}

	// Non-decreasing in years at worst-case duty.
	requireNoFaster(t, "0y->5y", libs["y0"], libs["y5"])
	requireNoFaster(t, "5y->10y", libs["y5"], libs["y10"])
	// Non-decreasing in duty cycle at fixed lifetime.
	requireNoFaster(t, "fresh->l0.3", libs["y0"], libs["l03"])
	requireNoFaster(t, "l0.3->l0.7", libs["l03"], libs["l07"])
	requireNoFaster(t, "l0.7->l1.0", libs["l07"], libs["y10"])

	// And the stress is not degenerate: 10 worst-case years must slow at
	// least one arc measurably.
	var grew bool
	for name, fc := range libs["y0"].Cells {
		ac := libs["y10"].Cells[name]
		for ai := range fc.Arcs {
			for e := 0; e < 2; e++ {
				ft := fc.Arcs[ai].Delay[e]
				if ft == nil {
					continue
				}
				if ac.Arcs[ai].Delay[e].Values[0][0] > ft.Values[0][0]*1.001 {
					grew = true
				}
			}
		}
	}
	if !grew {
		t.Error("10y worst-case stress slowed nothing: degradation path dead?")
	}
}
