package char

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"
	"ageguard/internal/spice"
	"ageguard/internal/units"
)

// faultConfig returns a 5x5-grid single-cell configuration: 50 points per
// arc, so the 5% salvage budget is 2 — large enough to salvage two
// isolated failures and small enough to keep tests fast.
func faultConfig() Config {
	cfg := DefaultConfig()
	cfg.Slews = LogAxis(5*units.Ps, 947*units.Ps, 5)
	cfg.Loads = LogAxis(0.5*units.FF, 20*units.FF, 5)
	cfg.Cells = []string{"INV_X1"}
	return cfg
}

// failAt builds a FaultInject hook that fails the listed points with
// non-convergence on every retry rung (so the ladder exhausts).
func failAt(pts ...Point) func(Point, int) error {
	return func(p Point, attempt int) error {
		for _, f := range pts {
			if p.Edge == f.Edge && p.I == f.I && p.J == f.J {
				return spice.ErrNoConvergence
			}
		}
		return nil
	}
}

// TestSalvageIsolatedPoints injects permanent non-convergence at exactly
// two isolated grid points and verifies both are salvaged — interpolated,
// marked in the library metadata, and counted — while every other point
// is simulated normally.
func TestSalvageIsolatedPoints(t *testing.T) {
	cfg := faultConfig()
	cfg.FaultInject = failAt(
		Point{Edge: liberty.Rise, I: 0, J: 0},
		Point{Edge: liberty.Fall, I: 4, J: 4},
	)
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	lib, err := cfg.Characterize(ctx, aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	if n := lib.SalvagedPoints(); n != 2 {
		t.Fatalf("SalvagedPoints = %d, want 2", n)
	}
	if n := reg.Counter("char.salvaged").Value(); n != 2 {
		t.Errorf("char.salvaged = %d, want 2", n)
	}
	if n := reg.Counter("spice.retry.exhausted").Value(); n != 2 {
		t.Errorf("spice.retry.exhausted = %d, want 2", n)
	}
	ct := lib.MustCell("INV_X1")
	if len(ct.Arcs) != 1 {
		t.Fatalf("INV_X1 has %d arcs, want 1", len(ct.Arcs))
	}
	arc := ct.Arcs[0]
	want := []liberty.SalvagePoint{{Edge: liberty.Rise, I: 0, J: 0}, {Edge: liberty.Fall, I: 4, J: 4}}
	if fmt.Sprint(arc.Salvaged) != fmt.Sprint(want) {
		t.Errorf("Salvaged = %v, want %v", arc.Salvaged, want)
	}
	// Interpolated entries are physical: positive, and between the
	// neighboring values they were averaged from.
	for _, sp := range want {
		d := arc.Delay[sp.Edge].Values[sp.I][sp.J]
		sl := arc.OutSlew[sp.Edge].Values[sp.I][sp.J]
		if d <= 0 || sl <= 0 {
			t.Errorf("salvaged point %v has non-physical delay %g / slew %g", sp, d, sl)
		}
	}
}

// TestSalvageRetryRecoveryNeedsNoSalvage: a point that fails only on the
// first rung is rescued by the escalation ladder, so nothing is salvaged.
func TestSalvageRetryRecoveryNeedsNoSalvage(t *testing.T) {
	cfg := faultConfig()
	cfg.FaultInject = func(p Point, attempt int) error {
		if p.Edge == liberty.Rise && p.I == 2 && p.J == 2 && attempt == 0 {
			return spice.ErrNoConvergence
		}
		return nil
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	lib, err := cfg.Characterize(ctx, aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	if n := lib.SalvagedPoints(); n != 0 {
		t.Errorf("SalvagedPoints = %d, want 0 (ladder recovered)", n)
	}
	if n := reg.Counter("spice.retry.recovered").Value(); n != 1 {
		t.Errorf("spice.retry.recovered = %d, want 1", n)
	}
	if n := reg.Counter("char.salvaged").Value(); n != 0 {
		t.Errorf("char.salvaged = %d, want 0", n)
	}
}

// TestStrictFailsWithPointError: under Strict the same isolated failure
// aborts characterization with an error identifying the exact point.
func TestStrictFailsWithPointError(t *testing.T) {
	cfg := faultConfig()
	cfg.Strict = true
	cfg.FaultInject = failAt(Point{Edge: liberty.Rise, I: 0, J: 0})
	_, err := cfg.Characterize(context.Background(), aging.WorstCase(10))
	if err == nil {
		t.Fatal("strict characterization with a failing point returned nil")
	}
	if !errors.Is(err, spice.ErrNoConvergence) {
		t.Errorf("error %v does not match spice.ErrNoConvergence", err)
	}
	for _, frag := range []string{"INV_X1", "slew=", "load=", "rise"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("strict error %q does not identify the point (missing %q)", err, frag)
		}
	}
}

// TestSalvageBudgetExceeded: three isolated failures exceed the 5x5
// grid's 2-point budget and fail the arc with ErrSalvage.
func TestSalvageBudgetExceeded(t *testing.T) {
	cfg := faultConfig()
	cfg.FaultInject = failAt(
		Point{Edge: liberty.Rise, I: 0, J: 0},
		Point{Edge: liberty.Rise, I: 2, J: 2},
		Point{Edge: liberty.Fall, I: 4, J: 4},
	)
	_, err := cfg.Characterize(context.Background(), aging.WorstCase(10))
	if !errors.Is(err, ErrSalvage) {
		t.Fatalf("got %v, want ErrSalvage", err)
	}
	if !errors.Is(err, spice.ErrNoConvergence) {
		t.Errorf("budget error %v does not expose the underlying non-convergence", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error %q does not mention the budget", err)
	}
}

// TestSalvageAdjacentRejected: two failures adjacent on the same edge's
// grid cannot both be interpolated and fail the arc with ErrSalvage.
func TestSalvageAdjacentRejected(t *testing.T) {
	cfg := faultConfig()
	cfg.FaultInject = failAt(
		Point{Edge: liberty.Rise, I: 0, J: 0},
		Point{Edge: liberty.Rise, I: 0, J: 1},
	)
	_, err := cfg.Characterize(context.Background(), aging.WorstCase(10))
	if !errors.Is(err, ErrSalvage) {
		t.Fatalf("got %v, want ErrSalvage", err)
	}
	if !strings.Contains(err.Error(), "adjacent") {
		t.Errorf("error %q does not mention adjacency", err)
	}
}

// TestSalvageOppositeEdgesNotAdjacent: the same (i, j) failing on both
// output edges is two isolated holes, not an adjacency violation.
func TestSalvageOppositeEdgesNotAdjacent(t *testing.T) {
	cfg := faultConfig()
	cfg.FaultInject = failAt(
		Point{Edge: liberty.Rise, I: 2, J: 2},
		Point{Edge: liberty.Fall, I: 2, J: 2},
	)
	lib, err := cfg.Characterize(context.Background(), aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	if n := lib.SalvagedPoints(); n != 2 {
		t.Errorf("SalvagedPoints = %d, want 2", n)
	}
}

// TestSalvagedCacheRoundtrip: salvage markers survive the .alib cache,
// and a Strict run refuses the salvaged entry and rebuilds it cleanly.
func TestSalvagedCacheRoundtrip(t *testing.T) {
	dir := t.TempDir()
	cfg := faultConfig()
	cfg.CacheDir = dir
	cfg.FaultInject = failAt(Point{Edge: liberty.Rise, I: 0, J: 0})
	s := aging.WorstCase(10)
	if _, err := cfg.Characterize(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	// Reload from disk: the marker survived serialization.
	clean := cfg
	clean.FaultInject = nil
	lib, err := clean.loadCache(s)
	if err != nil {
		t.Fatal(err)
	}
	if n := lib.SalvagedPoints(); n != 1 {
		t.Fatalf("cached SalvagedPoints = %d, want 1", n)
	}
	// A Strict config treats the salvaged entry as a miss and rebuilds a
	// fully simulated replacement.
	strict := clean
	strict.Strict = true
	if _, err := strict.loadCache(s); err == nil {
		t.Fatal("strict loadCache accepted a salvaged entry")
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	lib2, err := strict.Characterize(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if n := lib2.SalvagedPoints(); n != 0 {
		t.Errorf("strict rebuild has %d salvaged points, want 0", n)
	}
	if n := reg.Counter("char.cache.hits").Value(); n != 0 {
		t.Errorf("strict rebuild hit the salvaged cache (%d hits)", n)
	}
	// The clean rebuild replaced the salvaged entry on disk.
	lib3, err := strict.loadCache(s)
	if err != nil {
		t.Fatal(err)
	}
	if n := lib3.SalvagedPoints(); n != 0 {
		t.Errorf("cache still holds %d salvaged points after strict rebuild", n)
	}
}

// sweepConfig returns a fast 3x3 single-cell configuration for
// scenario-sweep tests.
func sweepConfig(t *testing.T) Config {
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = t.TempDir()
	return cfg
}

// TestSweepContinuesPastFailingScenario: a scenario that fails
// permanently (its cache store errors out) no longer aborts the sweep —
// the other scenarios complete and the failure is reported per scenario.
func TestSweepContinuesPastFailingScenario(t *testing.T) {
	cfg := sweepConfig(t)
	scenarios := []aging.Scenario{aging.Fresh(), aging.WorstCase(10), aging.BalanceCase(10)}
	badPath := cfg.cachePath(scenarios[1])
	cfg.CacheFault = func(op, path string) error {
		if op == "store" && path == badPath {
			return errors.New("injected: disk full")
		}
		return nil
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	out, err := cfg.CharacterizeSweep(ctx, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if out.Libs[0] == nil || out.Libs[2] == nil {
		t.Error("healthy scenarios did not complete")
	}
	if out.Libs[1] != nil {
		t.Error("failing scenario produced a library")
	}
	if len(out.Failed) != 1 || out.Failed[0].Scenario != scenarios[1] {
		t.Fatalf("Failed = %v, want exactly scenario %s", out.Failed, scenarios[1])
	}
	if n := reg.Counter("char.sweep.failed").Value(); n != 1 {
		t.Errorf("char.sweep.failed = %d, want 1", n)
	}
	serr := out.Err()
	if serr == nil {
		t.Fatal("outcome with failures returned nil Err")
	}
	var sweepErr *SweepError
	if !errors.As(serr, &sweepErr) {
		t.Fatalf("Err() = %T, want *SweepError", serr)
	}
	if !strings.Contains(serr.Error(), "disk full") {
		t.Errorf("sweep error %q does not carry the cause", serr)
	}
}

// TestSweepCancellationAborts: cancellation is not a per-scenario
// failure — it aborts the whole sweep with ErrCanceled.
func TestSweepCancellationAborts(t *testing.T) {
	cfg := sweepConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := cfg.CharacterizeSweep(ctx, []aging.Scenario{aging.Fresh(), aging.WorstCase(10)})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestCkptStoreFaultNonFatal: checkpoint-shard write failures cost only
// resumability — the characterization still completes and the final
// library still lands in the cache.
func TestCkptStoreFaultNonFatal(t *testing.T) {
	cfg := sweepConfig(t)
	cfg.CacheFault = func(op, path string) error {
		if op == "ckpt.store" {
			return errors.New("injected: shard write failed")
		}
		return nil
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	s := aging.WorstCase(10)
	if _, err := cfg.Characterize(ctx, s); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("char.ckpt.store.errors").Value(); n == 0 {
		t.Error("char.ckpt.store.errors = 0, want > 0")
	}
	clean := cfg
	clean.CacheFault = nil
	if _, err := clean.loadCache(s); err != nil {
		t.Errorf("library missing from cache after shard-store faults: %v", err)
	}
}

// TestCkptLoadFaultIsMiss: checkpoint-read failures degrade to a cache
// miss (the cell is re-simulated), never an error.
func TestCkptLoadFaultIsMiss(t *testing.T) {
	cfg := sweepConfig(t)
	cfg.CacheFault = func(op, path string) error {
		if op == "ckpt.load" {
			return errors.New("injected: shard read failed")
		}
		return nil
	}
	if _, err := cfg.Characterize(context.Background(), aging.WorstCase(10)); err != nil {
		t.Fatalf("characterization failed on shard-load faults: %v", err)
	}
}

// TestCacheStoreFaultSurfacesError: a failing final .alib store is a real
// error (unlike shard stores, losing the library itself is not benign).
func TestCacheStoreFaultSurfacesError(t *testing.T) {
	cfg := sweepConfig(t)
	boom := errors.New("injected: store failed")
	cfg.CacheFault = func(op, path string) error {
		if op == "store" {
			return boom
		}
		return nil
	}
	if _, err := cfg.Characterize(context.Background(), aging.WorstCase(10)); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected store error", err)
	}
	// Shards from the completed cells remain for the next attempt.
	found := false
	for _, e := range mustReadDir(t, cfg.CacheDir) {
		if strings.HasSuffix(e, ".ckpt") {
			found = true
		}
	}
	if !found {
		t.Error("no checkpoint shards survive a failed library store")
	}
}

// TestGridPartialFailure: GenerateGrid finishes the rest of the
// grid when single scenarios fail permanently, visiting every completed
// library and returning a SweepError naming the failures.
func TestGridPartialFailure(t *testing.T) {
	cfg := sweepConfig(t)
	grid := aging.GridScenarios(10)
	badPath := cfg.cachePath(grid[5])
	cfg.CacheFault = func(op, path string) error {
		if op == "store" && path == badPath {
			return errors.New("injected: scenario sabotage")
		}
		return nil
	}
	// Restrict the run to a fast subset by pre-caching all but a handful:
	// characterize the full grid would be minutes; instead run the sweep
	// API directly over a 4-scenario slice including the saboteur.
	scenarios := []aging.Scenario{grid[0], grid[5], grid[60], grid[120]}
	out, err := cfg.CharacterizeSweep(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	var serr *SweepError
	if !errors.As(out.Err(), &serr) {
		t.Fatalf("Err() = %v, want *SweepError", out.Err())
	}
	if serr.Total != 4 || len(serr.Failed) != 1 {
		t.Errorf("SweepError = %d/%d failed, want 1/4", len(serr.Failed), serr.Total)
	}
	ok := 0
	for _, lib := range out.Libs {
		if lib != nil {
			ok++
		}
	}
	if ok != 3 {
		t.Errorf("%d scenarios completed, want 3", ok)
	}
}

// TestCkptSharedStemIncludesHash: shard filenames embed the same
// config-hash stem as the .alib, so shards from a different grid or cell
// set can never be resumed into this library.
func TestCkptSharedStemIncludesHash(t *testing.T) {
	a := TestConfig()
	a.CacheDir = "cache"
	b := a
	b.Slews = append([]float64(nil), a.Slews...)
	b.Slews[1] *= 1.5
	s := aging.WorstCase(10)
	if a.ckptPath(s, "INV_X1") == b.ckptPath(s, "INV_X1") {
		t.Error("different grids share a checkpoint shard path")
	}
	if !strings.HasSuffix(a.ckptPath(s, "INV_X1"), ".cell_INV_X1.ckpt") {
		t.Errorf("unexpected shard path %s", a.ckptPath(s, "INV_X1"))
	}
}

// TestErrNoCellBeforeCacheIO: an invalid cell list surfaces as ErrNoCell
// before any cache or checkpoint I/O happens — the CacheFault seam proves
// no I/O op was even attempted.
func TestErrNoCellBeforeCacheIO(t *testing.T) {
	cfg := sweepConfig(t)
	cfg.Cells = []string{"INV_X1", "NOPE_X9"}
	cfg.CacheFault = func(op, path string) error {
		t.Errorf("cache op %q on %s attempted before cell validation", op, path)
		return nil
	}
	if _, err := cfg.Characterize(context.Background(), aging.Fresh()); !errors.Is(err, ErrNoCell) {
		t.Fatalf("got %v, want ErrNoCell", err)
	}
}

// TestStrictRefusesSalvagedShard: a Strict resume re-simulates cells
// whose shards contain salvaged points instead of adopting them.
func TestStrictRefusesSalvagedShard(t *testing.T) {
	dir := t.TempDir()
	cfg := faultConfig()
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	// Store a shard with a salvage marker by hand.
	lib, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	ct := *lib.MustCell("INV_X1")
	ct.Arcs = append([]liberty.Arc(nil), ct.Arcs...)
	ct.Arcs[0].Salvaged = []liberty.SalvagePoint{{Edge: liberty.Rise, I: 0, J: 0}}
	if err := cfg.storeCellCkpt(s, &ct); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.loadCellCkpt(s, "INV_X1"); err != nil {
		t.Fatalf("non-strict load rejected the salvaged shard: %v", err)
	}
	strict := cfg
	strict.Strict = true
	if _, err := strict.loadCellCkpt(s, "INV_X1"); err == nil {
		t.Fatal("strict load accepted a salvaged shard")
	} else if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("strict rejection %v is not a miss (fs.ErrNotExist)", err)
	}
}
