package char

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ageguard/internal/liberty"
)

// RepoCacheDir returns the repository-local library cache directory
// (<repo>/.libcache), resolved relative to this source file. Experiments,
// benchmarks and tests share it so each aging scenario is characterized at
// most once per checkout; it is safe to delete at any time.
func RepoCacheDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ".libcache"
	}
	return filepath.Join(filepath.Dir(file), "..", "..", ".libcache")
}

// CachedConfig is DefaultConfig with the repository cache enabled — the
// configuration the experiment drivers use.
func CachedConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheDir = RepoCacheDir()
	return cfg
}

// VerifyCacheFile loads one on-disk .alib entry end to end: it reads
// the whole file, verifies the trailing fnv64a checksum when present
// (files written before the checksum existed fall back to the parser's
// structural ENDLIB/bounds checks), and parses the library. Every
// integrity failure — a bad checksum, a truncation, an unparseable body
// — wraps ErrCacheCorrupt; a missing file wraps fs.ErrNotExist. It is
// the shared integrity gate of the characterization cache loader and
// of ageguardd's warm-start scan and background scrubber.
func VerifyCacheFile(path string) (*liberty.Library, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, err := liberty.VerifySummed(data); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCacheCorrupt, path, err)
	}
	lib, err := liberty.Read(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCacheCorrupt, path, err)
	}
	return lib, nil
}

// CacheEntries lists the .alib files of cfg.CacheDir that were written
// under this configuration's hash — one per characterized aging
// scenario, any lifetime — sorted by name. Files written under other
// configurations (and non-library files: netlists, checkpoints,
// quarantined entries) are excluded. An empty CacheDir lists nothing.
func (cfg Config) CacheEntries() ([]string, error) {
	if cfg.CacheDir == "" {
		return nil, nil
	}
	suffix := fmt.Sprintf("_h%016x.alib", cfg.Hash())
	ents, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.Type().IsRegular() || !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		out = append(out, filepath.Join(cfg.CacheDir, e.Name()))
	}
	return out, nil
}

// CacheLibraries lists every .alib file of dir regardless of the
// configuration that wrote it — the scrubber's view, which re-verifies
// whatever is on disk, not only entries the current config would load.
func CacheLibraries(dir string) ([]string, error) {
	if dir == "" {
		return nil, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.Type().IsRegular() || !strings.HasSuffix(e.Name(), ".alib") {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	return out, nil
}
