package char

import (
	"path/filepath"
	"runtime"
)

// RepoCacheDir returns the repository-local library cache directory
// (<repo>/.libcache), resolved relative to this source file. Experiments,
// benchmarks and tests share it so each aging scenario is characterized at
// most once per checkout; it is safe to delete at any time.
func RepoCacheDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ".libcache"
	}
	return filepath.Join(filepath.Dir(file), "..", "..", ".libcache")
}

// CachedConfig is DefaultConfig with the repository cache enabled — the
// configuration the experiment drivers use.
func CachedConfig() Config {
	cfg := DefaultConfig()
	cfg.CacheDir = RepoCacheDir()
	return cfg
}
