package char

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

// writeLib serializes a library for byte-level comparison.
func writeLib(t *testing.T, lib *liberty.Library) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := liberty.Write(&b, lib); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	// The core determinism guarantee: a library characterized on 8 workers
	// serializes to exactly the bytes of the serial characterization.
	// The subset covers the tricky shapes: multi-arc (NAND), binate
	// (XOR, MUX) and sequential (DFF) cells.
	cfg := TestConfig()
	cfg.Cells = []string{"NAND2_X1", "XOR2_X1", "MUX2_X1", "DFF_X1"}
	s := aging.WorstCase(10)

	serial := cfg
	serial.Parallelism = 1
	libS, err := serial.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.Parallelism = 8
	libP, err := par.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	bs, bp := writeLib(t, libS), writeLib(t, libP)
	if !bytes.Equal(bs, bp) {
		t.Fatalf("parallel library differs from serial (serial %d bytes, parallel %d bytes)",
			len(bs), len(bp))
	}
}

// tinyGridConfig is the cheapest meaningful configuration: one cell over a
// 2x2 OPC grid (8 simulations per scenario).
func tinyGridConfig(dir string) Config {
	cfg := DefaultConfig()
	cfg.Slews = LogAxis(5*units.Ps, 947*units.Ps, 2)
	cfg.Loads = LogAxis(0.5*units.FF, 20*units.FF, 2)
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	cfg.Parallelism = 8
	return cfg
}

func TestGenerateGridConcurrentSharedCache(t *testing.T) {
	// Two GenerateGrid runs over the full 121-scenario duty-cycle grid,
	// started concurrently against ONE cache directory. The per-scenario
	// singleflight plus atomic cache writes must yield: both succeed, each
	// visits all 121 libraries in grid order, and the work is not done
	// twice (every .alib exists exactly once, no stray temp files).
	dir := t.TempDir()
	cfg := tinyGridConfig(dir)

	scens := aging.GridScenarios(10)
	run := func() ([]string, error) {
		var names []string
		err := cfg.GenerateGrid(context.Background(), 10, func(l *liberty.Library) {
			names = append(names, l.Name)
		})
		return names, err
	}
	var wg sync.WaitGroup
	names := make([][]string, 2)
	errs := make([]error, 2)
	for k := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			names[k], errs[k] = run()
		}()
	}
	wg.Wait()
	for k := range errs {
		if errs[k] != nil {
			t.Fatalf("run %d: %v", k, errs[k])
		}
		if len(names[k]) != len(scens) {
			t.Fatalf("run %d visited %d libraries, want %d", k, len(names[k]), len(scens))
		}
		for i, s := range scens {
			if want := cfg.libName(s); names[k][i] != want {
				t.Fatalf("run %d visit %d = %s, want %s (grid order)", k, i, names[k][i], want)
			}
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	alibs := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".alib") {
			alibs++
		} else {
			t.Errorf("stray cache file %s", e.Name())
		}
	}
	if alibs != len(scens) {
		t.Errorf("cache holds %d .alib files, want %d", alibs, len(scens))
	}
	// Spot check: a cached library loads back with the right cell.
	lib, err := cfg.loadCache(scens[0])
	if err != nil {
		t.Fatalf("cache miss after GenerateGrid: %v", err)
	}
	if _, ok := lib.Cell("INV_X1"); !ok {
		t.Error("cached library lacks INV_X1")
	}
}

func TestConcurrentCharacterizeSingleflight(t *testing.T) {
	// Two concurrent Characterize calls for the same scenario and cache
	// directory must characterize once: the per-cell Progress ticks across
	// both calls total exactly one run's worth.
	dir := t.TempDir()
	var mu sync.Mutex
	ticks := 0
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1", "NAND2_X1", "NOR2_X1"}
	cfg.CacheDir = dir
	cfg.Parallelism = 4
	cfg.Progress = func(done, total int) {
		mu.Lock()
		ticks++
		mu.Unlock()
	}
	s := aging.WorstCase(10)
	var wg sync.WaitGroup
	libs := make([]*liberty.Library, 2)
	errs := make([]error, 2)
	for k := range libs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			libs[k], errs[k] = cfg.Characterize(context.Background(), s)
		}()
	}
	wg.Wait()
	for k := range errs {
		if errs[k] != nil {
			t.Fatalf("call %d: %v", k, errs[k])
		}
	}
	if ticks != len(cfg.Cells) {
		t.Errorf("progress ticked %d times across both calls, want %d (work deduplicated)",
			ticks, len(cfg.Cells))
	}
	if !bytes.Equal(writeLib(t, libs[0]), writeLib(t, libs[1])) {
		t.Error("concurrent calls returned different libraries")
	}
}

func TestProgressSerialAndMonotonic(t *testing.T) {
	// The Progress contract: serial invocation with done strictly
	// increasing 1..total, even under parallelism. The callback writes to
	// unsynchronized state on purpose — the race detector fails this test
	// if the serialization guarantee is ever broken.
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1", "XOR2_X1"}
	cfg.Parallelism = 8
	var seen []int
	var totals []int
	cfg.Progress = func(done, total int) {
		seen = append(seen, done)
		totals = append(totals, total)
	}
	if _, err := cfg.Characterize(context.Background(), aging.WorstCase(10)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cfg.Cells) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(cfg.Cells))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonically increasing", seen)
		}
		if totals[i] != len(cfg.Cells) {
			t.Fatalf("progress total = %d, want %d", totals[i], len(cfg.Cells))
		}
	}
}

func TestStoreCacheErrorSurfaced(t *testing.T) {
	// A cache directory that cannot be created (its parent is a regular
	// file) must fail Characterize instead of silently dropping the store.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = filepath.Join(blocker, "cache")
	if _, err := cfg.Characterize(context.Background(), aging.WorstCase(10)); err == nil {
		t.Fatal("cache store failure was swallowed")
	}
}
