// Package char implements degradation-aware cell-library characterization —
// the paper's Fig. 4(a): for a given aging scenario it degrades the
// transistor models (package aging), instantiates each standard cell's
// transistor netlist (package cells), sweeps the operating-condition grid
// (input slew x output load) with transient simulations (package spice),
// and emits an NLDM timing library (package liberty).
//
// The paper's configuration is reproduced by DefaultConfig: 7 input slews
// in [5 ps, 947 ps] and 7 output loads in [0.5 fF, 20 fF] — 49 OPCs per
// timing arc — and a duty-cycle grid of 11x11 scenarios yielding 121
// libraries (see GenerateGrid).
//
// Characterization is deterministic, so libraries are cached on disk in
// the serialized .alib format and reused across processes. Every transient
// simulation in the sweep is independent, so cells and grid points are
// characterized concurrently on a worker pool bounded by Config.Parallelism
// (0 = all CPUs); results are bit-identical at any parallelism because
// workers fill pre-indexed table slots.
package char

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"
	"ageguard/internal/units"
)

// Sentinel errors, matchable with errors.Is through any number of %w
// wrapping layers.
var (
	// ErrNoCell reports a Config.Cells entry naming no known cell.
	ErrNoCell = errors.New("char: no such cell")

	// ErrCacheCorrupt reports an on-disk .alib cache entry that exists
	// but cannot be parsed. Characterization treats it as a miss and
	// rebuilds (atomically replacing the bad file), counting the event
	// under the char.cache.corrupt metric.
	ErrCacheCorrupt = errors.New("char: cache entry corrupt")

	// ErrCanceled aliases conc.ErrCanceled: every error caused by context
	// cancellation matches it (and the context's own error).
	ErrCanceled = conc.ErrCanceled
)

// Config controls characterization.
type Config struct {
	Tech  device.Tech
	Model aging.Model

	Slews []float64 // input-slew axis [s]
	Loads []float64 // output-load axis [F]

	// VthOnly disables the mobility degradation during device aging,
	// modelling the state-of-the-art flows the paper compares against in
	// Fig. 5(a) ([9,11,12,13]: Vth-only analysis).
	VthOnly bool

	// Perturb applies a uniform process-variation perturbation to every
	// device on top of the scenario's aging degradation (per polarity;
	// see device.Perturb). The Monte Carlo subsystem uses single-axis
	// perturbations to finite-difference per-arc delay sensitivities; the
	// zero value characterizes the nominal process and is bit-identical
	// to builds that predate the knob.
	Perturb device.Perturb

	// CacheDir, when non-empty, enables the on-disk library cache.
	CacheDir string

	// Cells restricts characterization to the named cells (nil = all 68).
	Cells []string

	// Parallelism bounds the number of concurrently running transient
	// simulations; GenerateGrid and CompleteLibrary additionally use it to
	// bound concurrently characterized scenarios. 0 selects GOMAXPROCS
	// (all CPUs); 1 reproduces the fully serial behavior. Results are
	// bit-identical at every setting: workers write into pre-indexed table
	// slots, so assembly order never affects the library.
	Parallelism int

	// Progress, when non-nil, receives (done, total) cell counts as a
	// library is characterized. It is guaranteed to be invoked serially —
	// never from two goroutines at once — with done strictly increasing
	// from 1 to total, regardless of Parallelism.
	Progress func(done, total int)

	// Retries bounds the spice escalation ladder applied to every grid
	// point: a non-convergent transient is re-run up to Retries more
	// times with progressively conservative solver options before the
	// point is declared failed. 0 selects DefaultRetries; negative
	// values disable retrying entirely.
	Retries int

	// Strict disables grid-point salvage: a point that still fails after
	// the retry ladder aborts characterization with a point-identifying
	// error instead of being interpolated from converged neighbors.
	// Strict runs also refuse cached libraries and checkpoint shards
	// that contain salvaged points (they are rebuilt instead).
	Strict bool

	// FiniteDiffJacobian characterizes with the solver's legacy
	// finite-difference MOS Jacobian instead of the analytic-derivative
	// stamps (spice.Options.FiniteDiffJacobian). Converged delays and
	// slews agree within solver tolerance either way — proven by a
	// differential test over the full cell catalog — so, like the
	// resilience knobs, this debugging mode is excluded from the cache
	// config hash.
	FiniteDiffJacobian bool

	// FaultInject, when non-nil, is invoked before every transient
	// attempt with the point identity and the retry rung (0 = first
	// try); a non-nil return is treated as that attempt's failure. It is
	// the deterministic fault-injection seam used by the regression
	// tests to exercise retry, salvage, checkpoint-replay and
	// partial-grid paths; production configurations leave it nil.
	FaultInject func(p Point, attempt int) error

	// CacheFault, when non-nil, is consulted before library-cache and
	// checkpoint I/O with the operation ("load", "store", "ckpt.load",
	// "ckpt.store") and the file path; a non-nil return is treated as
	// that operation's I/O failure. Test seam; production leaves it nil.
	CacheFault func(op, path string) error
}

// DefaultRetries is the depth of the solver escalation ladder applied to
// non-convergent grid points when Config.Retries is zero.
const DefaultRetries = 2

// retries resolves the Retries knob (0 = DefaultRetries, negative = off).
func (cfg Config) retries() int {
	switch {
	case cfg.Retries > 0:
		return cfg.Retries
	case cfg.Retries < 0:
		return 0
	default:
		return DefaultRetries
	}
}

// Point identifies one transient simulation of the OPC sweep — the unit
// of retry, salvage and fault injection.
type Point struct {
	Cell string
	Pin  string       // arc input pin (the clock pin for sequential cells)
	Edge liberty.Edge // output edge being characterized
	I, J int          // slew and load axis indices
}

// String renders the point for error messages and logs.
func (p Point) String() string {
	return fmt.Sprintf("%s/%s %s (%d,%d)", p.Cell, p.Pin, p.Edge, p.I, p.J)
}

// workers resolves the Parallelism knob.
func (cfg Config) workers() int { return conc.Workers(cfg.Parallelism) }

// DefaultConfig returns the paper's characterization setup: the full cell
// set over the 7x7 OPC grid (Smin=5ps, Smax=947ps, Cmin=0.5fF, Cmax=20fF).
func DefaultConfig() Config {
	return Config{
		Tech:  device.Default45(),
		Model: aging.DefaultModel(),
		Slews: LogAxis(5*units.Ps, 947*units.Ps, 7),
		Loads: LogAxis(0.5*units.FF, 20*units.FF, 7),
	}
}

// TestConfig returns a reduced 3x3-grid configuration for fast tests.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Slews = LogAxis(5*units.Ps, 947*units.Ps, 3)
	cfg.Loads = LogAxis(0.5*units.FF, 20*units.FF, 3)
	return cfg
}

// LogAxis returns n log-spaced points from lo to hi inclusive.
func LogAxis(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	r := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= r
	}
	out[n-1] = hi
	return out
}

// DFF timing constraints are modelled as constants: the guardband and
// synthesis experiments compare path-delay differences, which the paper's
// evaluation also does, so scenario-dependent setup shifts are second
// order. See DESIGN.md.
const (
	dffSetup = 30 * units.Ps
	dffHold  = 3 * units.Ps
)

// flight deduplicates concurrent characterizations of the same library
// (process-wide): when several goroutines — e.g. parallel experiment legs
// or scenario fan-outs sharing one CacheDir — request the same scenario,
// exactly one simulates and writes the .alib; the rest share its result.
// Returned libraries may therefore be shared between callers and must be
// treated as immutable (everything in this repository already does).
var flight conc.Flight[*liberty.Library]

// Characterize builds the timing library for one aging scenario,
// using the on-disk cache when configured. It is safe to call
// concurrently, including for the same scenario (see flight). Canceling
// ctx stops in-flight simulations within one time step; the returned
// error then matches ErrCanceled.
func (cfg Config) Characterize(ctx context.Context, s aging.Scenario) (*liberty.Library, error) {
	return cfg.characterizeShared(ctx, s, conc.NewLimiter(cfg.workers()))
}

// characterizeShared is the Characterize body with an externally supplied
// simulation limiter, so nested fan-outs (scenarios x cells x grid points)
// share one global concurrency bound.
func (cfg Config) characterizeShared(ctx context.Context, s aging.Scenario, lim conc.Limiter) (*liberty.Library, error) {
	// Validate the cell list before any cache I/O or simulation, so a bad
	// Config.Cells entry surfaces as ErrNoCell immediately instead of
	// leaking out of a cache or simulation layer minutes into a run.
	if _, err := cfg.cellSet(); err != nil {
		return nil, err
	}
	reg := obs.From(ctx)
	lib, err := flight.Do(ctx, cfg.flightKey(s), func() (*liberty.Library, error) {
		ctx, sp := obs.StartSpan(ctx, "char.library")
		defer sp.End()
		sp.SetAttr("scenario", s.String())
		sp.SetAttr("lib", cfg.libName(s))
		lib, err := cfg.loadCache(s)
		switch {
		case err == nil:
			reg.Counter("char.cache.hits").Inc()
			sp.SetAttr("cache", "hit")
			return lib, nil
		case errors.Is(err, ErrCacheCorrupt):
			reg.Counter("char.cache.corrupt").Inc()
			sp.SetAttr("cache", "corrupt")
		default:
			sp.SetAttr("cache", "miss")
		}
		reg.Counter("char.cache.misses").Inc()
		lib, err = cfg.characterize(ctx, s, lim)
		if err != nil {
			sp.SetAttr("error", err)
			return nil, err
		}
		if err := cfg.storeCache(s, lib); err != nil {
			return nil, fmt.Errorf("char: caching %s: %w", cfg.cachePath(s), err)
		}
		// The complete library landed on disk; per-cell checkpoint
		// shards are now redundant.
		cfg.clearCkpts(s)
		reg.Counter("char.libraries").Inc()
		return lib, nil
	})
	return lib, conc.WrapCanceled(err)
}

// flightKey identifies identical characterization work. The cache path
// embeds the full configuration hash (grid values, device/aging models,
// cell names), so it doubles as the deduplication key.
func (cfg Config) flightKey(s aging.Scenario) string {
	return cfg.cachePath(s)
}

func (cfg Config) cellSet() ([]*cells.Cell, error) {
	if cfg.Cells == nil {
		return cells.All(), nil
	}
	out := make([]*cells.Cell, 0, len(cfg.Cells))
	for _, n := range cfg.Cells {
		c, ok := cells.ByName(n)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoCell, n)
		}
		out = append(out, c)
	}
	return out, nil
}

func (cfg Config) libName(s aging.Scenario) string {
	suffix := ""
	if cfg.VthOnly {
		suffix = "_vthonly"
	}
	return fmt.Sprintf("aged_y%.1f_%s%s", s.Years, s.Key(), suffix)
}

// Hash fingerprints every configuration knob that affects the simulated
// tables: the device technology, the aging model, the exact grid axis
// values (not just their counts), the VthOnly mode and the cell set. The
// cache filename embeds it, so changing e.g. one OPC grid point can never
// silently reuse a stale entry characterized under the old grid. The
// hashed structs are plain numeric data, so the canonical %v dump is
// deterministic across processes and builds.
//
// Resilience knobs (Retries, Strict) and the fault-injection seams are
// deliberately excluded: they never change the value of a converged grid
// point, so libraries characterized under different ladders stay
// interchangeable. Strict runs additionally refuse cached entries with
// salvaged points at load time (see loadCache).
func (cfg Config) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "tech=%v|model=%v|slews=%v|loads=%v|vthonly=%v|cells=%q",
		cfg.Tech, cfg.Model, cfg.Slews, cfg.Loads, cfg.VthOnly, cfg.Cells)
	if !cfg.Perturb.IsZero() {
		// Appended conditionally so nominal-process hashes (and their
		// cache filenames) are unchanged from earlier builds.
		fmt.Fprintf(h, "|perturb=%v", cfg.Perturb)
	}
	return h.Sum64()
}

func (cfg Config) cachePath(s aging.Scenario) string {
	n := len(cfg.Cells)
	if cfg.Cells == nil {
		n = 0 // full set marker
	}
	fn := fmt.Sprintf("%s_g%dx%d_c%d_v%g_h%016x.alib",
		cfg.libName(s), len(cfg.Slews), len(cfg.Loads), n, cfg.Tech.Vdd, cfg.Hash())
	return filepath.Join(cfg.CacheDir, fn)
}

// loadCache loads the cached library for s. A nil error means a usable
// hit. Misses wrap fs.ErrNotExist; entries that exist but fail the
// trailing checksum or fail to parse wrap ErrCacheCorrupt (the caller
// rebuilds and atomically replaces them).
func (cfg Config) loadCache(s aging.Scenario) (*liberty.Library, error) {
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("char: cache disabled: %w", fs.ErrNotExist)
	}
	path := cfg.cachePath(s)
	if cfg.CacheFault != nil {
		if err := cfg.CacheFault("load", path); err != nil {
			return nil, err
		}
	}
	lib, err := VerifyCacheFile(path)
	if err != nil {
		return nil, err
	}
	// Strict runs never reuse a library with interpolated points: treat
	// it as a miss so it is recharacterized without salvage (and the
	// clean result atomically replaces the salvaged entry).
	if cfg.Strict {
		if n := lib.SalvagedPoints(); n > 0 {
			return nil, fmt.Errorf("char: %s has %d salvaged points (strict): %w",
				path, n, fs.ErrNotExist)
		}
	}
	// When restricted to named cells, verify the cached set covers them.
	// (Unreachable while the hash embeds the cell list; kept as defense
	// against hand-copied cache files.)
	set, err := cfg.cellSet()
	if err != nil {
		return nil, err
	}
	for _, c := range set {
		if _, ok := lib.Cell(c.Name); !ok {
			return nil, fmt.Errorf("%w: %s lacks cell %s", ErrCacheCorrupt, path, c.Name)
		}
	}
	return lib, nil
}

// storeCache writes the library atomically: a unique temp file (so
// concurrent writers — e.g. distinct processes sharing one cache dir,
// which the in-process singleflight cannot see — never clobber each
// other's half-written data) followed by a rename. An interrupted run
// therefore never leaves a partial cache entry behind: the temp file is
// removed on every error path and the rename is atomic.
func (cfg Config) storeCache(s aging.Scenario, lib *liberty.Library) error {
	if cfg.CacheDir == "" {
		return nil
	}
	path := cfg.cachePath(s)
	if cfg.CacheFault != nil {
		if err := cfg.CacheFault("store", path); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(cfg.CacheDir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := liberty.WriteSummed(f, lib); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// progress serializes Config.Progress invocations under parallelism: the
// mutex both orders the callbacks and makes the done count monotone.
type progress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

func (p *progress) tick() {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total)
	p.mu.Unlock()
}

// characterize performs the actual simulation sweep. Cells are
// characterized concurrently (one goroutine per cell, results written into
// pre-indexed slots) while lim bounds the simulations actually running;
// the first error cancels everything still pending. With one worker the
// original serial loop runs instead.
func (cfg Config) characterize(ctx context.Context, s aging.Scenario, lim conc.Limiter) (*liberty.Library, error) {
	lib := &liberty.Library{
		Name:     cfg.libName(s),
		Scenario: s,
		Vdd:      cfg.Tech.Vdd,
		Slews:    append([]float64(nil), cfg.Slews...),
		Loads:    append([]float64(nil), cfg.Loads...),
		Cells:    map[string]*liberty.CellTiming{},
	}
	set, err := cfg.cellSet()
	if err != nil {
		return nil, err
	}
	prog := &progress{total: len(set), fn: cfg.Progress}
	results := make([]*liberty.CellTiming, len(set))
	if lim.Cap() == 1 {
		for i, c := range set {
			ct, err := cfg.cellWithCheckpoint(ctx, lim, c, s)
			if err != nil {
				return nil, fmt.Errorf("char: cell %s under %s: %w", c.Name, s, err)
			}
			results[i] = ct
			prog.tick()
		}
	} else {
		g, gctx := conc.NewGroup(ctx)
		for i, c := range set {
			g.Go(func() error {
				ct, err := cfg.cellWithCheckpoint(gctx, lim, c, s)
				if err != nil {
					return fmt.Errorf("char: cell %s under %s: %w", c.Name, s, err)
				}
				results[i] = ct
				prog.tick()
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			return nil, err
		}
	}
	for i, c := range set {
		lib.Cells[c.Name] = results[i]
	}
	return lib, nil
}

// degradations resolves the per-polarity device degradation for a scenario,
// honouring the VthOnly comparison mode.
func (cfg Config) degradations(s aging.Scenario) (p, n aging.Degradation) {
	p = cfg.Model.PMOS(s)
	n = cfg.Model.NMOS(s)
	if cfg.VthOnly {
		p = p.VthOnly()
		n = n.VthOnly()
	}
	return p, n
}

func (cfg Config) characterizeCell(ctx context.Context, lim conc.Limiter, c *cells.Cell, s aging.Scenario) (*liberty.CellTiming, error) {
	reg := obs.From(ctx)
	t0 := time.Now()
	defer func() {
		reg.Counter("char.cells").Inc()
		reg.Histogram("char.cell.seconds").Since(t0)
	}()
	ct := &liberty.CellTiming{
		Name:    c.Name,
		Base:    c.Base,
		Drive:   c.Drive,
		AreaUm2: c.AreaUm2,
		Inputs:  append([]string(nil), c.Inputs...),
		Output:  c.Output,
		PinCap:  map[string]float64{},
	}
	for _, p := range c.Inputs {
		ct.PinCap[p] = c.PinCap(cfg.Tech, p)
	}
	if c.Seq {
		ct.Seq, ct.Clock, ct.Data = true, c.Clock, c.Data
		ct.SetupPS, ct.HoldPS = dffSetup, dffHold
		arc, err := cfg.clockArc(ctx, lim, c, s)
		if err != nil {
			return nil, err
		}
		ct.Arcs = []liberty.Arc{*arc}
		return ct, nil
	}
	for _, spec := range DiscoverArcs(c) {
		arc, err := cfg.combArc(ctx, lim, c, s, spec)
		if err != nil {
			return nil, fmt.Errorf("arc %s/%s: %w", spec.Pin, spec.Sense, err)
		}
		ct.Arcs = append(ct.Arcs, *arc)
	}
	if len(ct.Arcs) == 0 {
		return nil, fmt.Errorf("no sensitizable arcs")
	}
	return ct, nil
}

// ArcSpec names one combinational timing arc to characterize.
type ArcSpec struct {
	Pin   string
	Sense liberty.Sense
	When  uint // side-input assignment (bit per input, pin's own bit ignored)
}

// DiscoverArcs finds, for every input pin of a combinational cell and every
// polarity sense, the first side-input assignment under which toggling the
// pin toggles the output. Most cells are unate (one arc per pin); XOR/XNOR
// and the MUX select pin yield two arcs.
func DiscoverArcs(c *cells.Cell) []ArcSpec {
	var out []ArcSpec
	n := c.NumInputs()
	for pi, pin := range c.Inputs {
		foundPos, foundNeg := false, false
		for side := uint(0); side < 1<<n; side++ {
			if side>>pi&1 == 1 {
				continue // canonical: pin's own bit zero in When
			}
			lo := c.Eval(side)
			hi := c.Eval(side | 1<<pi)
			if lo == hi {
				continue
			}
			if hi && !foundPos {
				out = append(out, ArcSpec{Pin: pin, Sense: liberty.PositiveUnate, When: side})
				foundPos = true
			}
			if !hi && !foundNeg {
				out = append(out, ArcSpec{Pin: pin, Sense: liberty.NegativeUnate, When: side})
				foundNeg = true
			}
			if foundPos && foundNeg {
				break
			}
		}
	}
	return out
}

// CharacterizeAll characterizes the scenarios concurrently —
// bounded by Parallelism both at the scenario level and, through one
// shared limiter, at the simulation level — and returns the libraries in
// input order. Per-scenario singleflight ensures duplicate scenarios (or
// concurrent calls sharing a CacheDir) never characterize or write the
// same .alib twice at the same time. Canceling ctx stops scenario
// dispatch and in-flight simulations; the error then matches ErrCanceled.
func (cfg Config) CharacterizeAll(ctx context.Context, scenarios []aging.Scenario) ([]*liberty.Library, error) {
	ctx, sp := obs.StartSpan(ctx, "char.sweep")
	defer sp.End()
	sp.SetAttr("scenarios", len(scenarios))
	lim := conc.NewLimiter(cfg.workers())
	libs := make([]*liberty.Library, len(scenarios))
	err := conc.ParFor(ctx, cfg.workers(), len(scenarios), func(i int) error {
		lib, err := cfg.characterizeShared(ctx, scenarios[i], lim)
		if err != nil {
			return err
		}
		libs[i] = lib
		return nil
	})
	if err != nil {
		err = conc.WrapCanceled(err)
		sp.SetAttr("error", err)
		return nil, err
	}
	return libs, nil
}

// ScenarioError is one scenario's permanent characterization failure
// within a sweep.
type ScenarioError struct {
	Scenario aging.Scenario
	Err      error
}

// Error renders the scenario and its cause.
func (e *ScenarioError) Error() string {
	return fmt.Sprintf("scenario %s: %v", e.Scenario, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ScenarioError) Unwrap() error { return e.Err }

// SweepError aggregates the scenarios that failed permanently in a sweep
// that was otherwise allowed to complete. It unwraps to every per-scenario
// error, so errors.Is matches any of the underlying causes.
type SweepError struct {
	Failed []*ScenarioError
	Total  int
}

// Error summarizes the failures.
func (e *SweepError) Error() string {
	msg := fmt.Sprintf("char: %d of %d scenarios failed", len(e.Failed), e.Total)
	for _, f := range e.Failed {
		msg += "\n  " + f.Error()
	}
	return msg
}

// Unwrap exposes every scenario failure to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}

// SweepOutcome is the result of a fault-tolerant scenario sweep. Libs is
// parallel to Scenarios; a nil slot marks a scenario that failed (its
// cause is in Failed).
type SweepOutcome struct {
	Scenarios []aging.Scenario
	Libs      []*liberty.Library
	Failed    []*ScenarioError
}

// Err returns nil when every scenario succeeded, and a *SweepError
// otherwise.
func (o *SweepOutcome) Err() error {
	if len(o.Failed) == 0 {
		return nil
	}
	return &SweepError{Failed: o.Failed, Total: len(o.Scenarios)}
}

// CharacterizeSweep characterizes the scenarios concurrently like
// CharacterizeAll, but a permanently failing scenario no longer
// aborts the rest of the sweep: its error is recorded (and counted under
// char.sweep.failed) while every other scenario still completes. Only
// cancellation stops the sweep early, returning an error matching
// ErrCanceled. Callers inspect the outcome for partial results.
func (cfg Config) CharacterizeSweep(ctx context.Context, scenarios []aging.Scenario) (*SweepOutcome, error) {
	ctx, sp := obs.StartSpan(ctx, "char.sweep")
	defer sp.End()
	sp.SetAttr("scenarios", len(scenarios))
	reg := obs.From(ctx)
	lim := conc.NewLimiter(cfg.workers())
	out := &SweepOutcome{
		Scenarios: scenarios,
		Libs:      make([]*liberty.Library, len(scenarios)),
	}
	errs := make([]*ScenarioError, len(scenarios))
	err := conc.ParFor(ctx, cfg.workers(), len(scenarios), func(i int) error {
		lib, err := cfg.characterizeShared(ctx, scenarios[i], lim)
		switch {
		case err == nil:
			out.Libs[i] = lib
			return nil
		case errors.Is(err, ErrCanceled):
			return err
		default:
			// Permanent failure: record it and keep sweeping.
			errs[i] = &ScenarioError{Scenario: scenarios[i], Err: err}
			reg.Counter("char.sweep.failed").Inc()
			return nil
		}
	})
	if err != nil {
		err = conc.WrapCanceled(err)
		sp.SetAttr("error", err)
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			out.Failed = append(out.Failed, e)
		}
	}
	if len(out.Failed) > 0 {
		sp.SetAttr("failed", len(out.Failed))
	}
	return out, nil
}

// GenerateGrid characterizes the paper's full 11x11 duty-cycle
// grid (121 libraries) for the given lifetime. Scenarios run concurrently
// (see CharacterizeSweep); visit is then invoked serially, in grid
// order, once per successfully characterized library. A permanently
// failing scenario no longer aborts the remaining grid: the error
// returned after the sweep is a *SweepError listing every failed
// scenario, while all other libraries were still generated (and visited).
// Cancellation returns an error matching ErrCanceled immediately.
func (cfg Config) GenerateGrid(ctx context.Context, years float64, visit func(*liberty.Library)) error {
	out, err := cfg.CharacterizeSweep(ctx, aging.GridScenarios(years))
	if err != nil {
		return err
	}
	if visit != nil {
		for _, lib := range out.Libs {
			if lib != nil {
				visit(lib)
			}
		}
	}
	return out.Err()
}

// CompleteLibrary builds the merged, lambda-indexed "complete
// degradation-aware cell library" over the scenarios given (e.g. all 121
// grid points, or just those a netlist annotation needs). Scenarios are
// characterized concurrently; the merge order is the input order.
func (cfg Config) CompleteLibrary(ctx context.Context, name string, scenarios []aging.Scenario) (*liberty.Merged, error) {
	libs, err := cfg.CharacterizeAll(ctx, scenarios)
	if err != nil {
		return nil, err
	}
	return liberty.MergeLibraries(name, libs), nil
}
