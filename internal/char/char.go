// Package char implements degradation-aware cell-library characterization —
// the paper's Fig. 4(a): for a given aging scenario it degrades the
// transistor models (package aging), instantiates each standard cell's
// transistor netlist (package cells), sweeps the operating-condition grid
// (input slew x output load) with transient simulations (package spice),
// and emits an NLDM timing library (package liberty).
//
// The paper's configuration is reproduced by DefaultConfig: 7 input slews
// in [5 ps, 947 ps] and 7 output loads in [0.5 fF, 20 fF] — 49 OPCs per
// timing arc — and a duty-cycle grid of 11x11 scenarios yielding 121
// libraries (see GenerateGrid).
//
// Characterization is deterministic, so libraries are cached on disk in
// the serialized .alib format and reused across processes. Every transient
// simulation in the sweep is independent, so cells and grid points are
// characterized concurrently on a worker pool bounded by Config.Parallelism
// (0 = all CPUs); results are bit-identical at any parallelism because
// workers fill pre-indexed table slots.
package char

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

// Config controls characterization.
type Config struct {
	Tech  device.Tech
	Model aging.Model

	Slews []float64 // input-slew axis [s]
	Loads []float64 // output-load axis [F]

	// VthOnly disables the mobility degradation during device aging,
	// modelling the state-of-the-art flows the paper compares against in
	// Fig. 5(a) ([9,11,12,13]: Vth-only analysis).
	VthOnly bool

	// CacheDir, when non-empty, enables the on-disk library cache.
	CacheDir string

	// Cells restricts characterization to the named cells (nil = all 68).
	Cells []string

	// Parallelism bounds the number of concurrently running transient
	// simulations; GenerateGrid and CompleteLibrary additionally use it to
	// bound concurrently characterized scenarios. 0 selects GOMAXPROCS
	// (all CPUs); 1 reproduces the fully serial behavior. Results are
	// bit-identical at every setting: workers write into pre-indexed table
	// slots, so assembly order never affects the library.
	Parallelism int

	// Progress, when non-nil, receives (done, total) cell counts as a
	// library is characterized. It is guaranteed to be invoked serially —
	// never from two goroutines at once — with done strictly increasing
	// from 1 to total, regardless of Parallelism.
	Progress func(done, total int)
}

// workers resolves the Parallelism knob.
func (cfg Config) workers() int { return conc.Workers(cfg.Parallelism) }

// DefaultConfig returns the paper's characterization setup: the full cell
// set over the 7x7 OPC grid (Smin=5ps, Smax=947ps, Cmin=0.5fF, Cmax=20fF).
func DefaultConfig() Config {
	return Config{
		Tech:  device.Default45(),
		Model: aging.DefaultModel(),
		Slews: LogAxis(5*units.Ps, 947*units.Ps, 7),
		Loads: LogAxis(0.5*units.FF, 20*units.FF, 7),
	}
}

// TestConfig returns a reduced 3x3-grid configuration for fast tests.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Slews = LogAxis(5*units.Ps, 947*units.Ps, 3)
	cfg.Loads = LogAxis(0.5*units.FF, 20*units.FF, 3)
	return cfg
}

// LogAxis returns n log-spaced points from lo to hi inclusive.
func LogAxis(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	r := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= r
	}
	out[n-1] = hi
	return out
}

// DFF timing constraints are modelled as constants: the guardband and
// synthesis experiments compare path-delay differences, which the paper's
// evaluation also does, so scenario-dependent setup shifts are second
// order. See DESIGN.md.
const (
	dffSetup = 30 * units.Ps
	dffHold  = 3 * units.Ps
)

// flight deduplicates concurrent characterizations of the same library
// (process-wide): when several goroutines — e.g. parallel experiment legs
// or scenario fan-outs sharing one CacheDir — request the same scenario,
// exactly one simulates and writes the .alib; the rest share its result.
// Returned libraries may therefore be shared between callers and must be
// treated as immutable (everything in this repository already does).
var flight conc.Flight[*liberty.Library]

// Characterize builds the timing library for one aging scenario, using the
// on-disk cache when configured. It is safe to call concurrently, including
// for the same scenario (see flight).
func (cfg Config) Characterize(s aging.Scenario) (*liberty.Library, error) {
	return cfg.characterizeShared(context.Background(), s, conc.NewLimiter(cfg.workers()))
}

// characterizeShared is Characterize with an externally supplied simulation
// limiter, so nested fan-outs (scenarios x cells x grid points) share one
// global concurrency bound.
func (cfg Config) characterizeShared(ctx context.Context, s aging.Scenario, lim conc.Limiter) (*liberty.Library, error) {
	return flight.Do(ctx, cfg.flightKey(s), func() (*liberty.Library, error) {
		if lib, ok := cfg.loadCache(s); ok {
			return lib, nil
		}
		lib, err := cfg.characterize(ctx, s, lim)
		if err != nil {
			return nil, err
		}
		if err := cfg.storeCache(s, lib); err != nil {
			return nil, fmt.Errorf("char: caching %s: %w", cfg.cachePath(s), err)
		}
		return lib, nil
	})
}

// flightKey identifies identical characterization work. The cache path
// already encodes scenario, grid shape, Vdd, VthOnly and cell count; the
// cell names are appended because restricted cell sets of equal size would
// otherwise collide.
func (cfg Config) flightKey(s aging.Scenario) string {
	return cfg.cachePath(s) + "|" + strings.Join(cfg.Cells, ",")
}

func (cfg Config) cellSet() []*cells.Cell {
	if cfg.Cells == nil {
		return cells.All()
	}
	out := make([]*cells.Cell, 0, len(cfg.Cells))
	for _, n := range cfg.Cells {
		out = append(out, cells.MustByName(n))
	}
	return out
}

func (cfg Config) libName(s aging.Scenario) string {
	suffix := ""
	if cfg.VthOnly {
		suffix = "_vthonly"
	}
	return fmt.Sprintf("aged_y%.1f_%s%s", s.Years, s.Key(), suffix)
}

func (cfg Config) cachePath(s aging.Scenario) string {
	n := len(cfg.Cells)
	if cfg.Cells == nil {
		n = 0 // full set marker
	}
	fn := fmt.Sprintf("%s_g%dx%d_c%d_v%g.alib",
		cfg.libName(s), len(cfg.Slews), len(cfg.Loads), n, cfg.Tech.Vdd)
	return filepath.Join(cfg.CacheDir, fn)
}

func (cfg Config) loadCache(s aging.Scenario) (*liberty.Library, bool) {
	if cfg.CacheDir == "" {
		return nil, false
	}
	f, err := os.Open(cfg.cachePath(s))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	lib, err := liberty.Read(f)
	if err != nil {
		return nil, false
	}
	// When restricted to named cells, verify the cached set covers them.
	for _, c := range cfg.cellSet() {
		if _, ok := lib.Cell(c.Name); !ok {
			return nil, false
		}
	}
	return lib, true
}

// storeCache writes the library atomically: a unique temp file (so
// concurrent writers — distinct processes, or in-process callers the
// singleflight cannot see, like equal-sized restricted cell sets — never
// clobber each other's half-written data) followed by a rename.
func (cfg Config) storeCache(s aging.Scenario, lib *liberty.Library) error {
	if cfg.CacheDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return err
	}
	path := cfg.cachePath(s)
	f, err := os.CreateTemp(cfg.CacheDir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := liberty.Write(f, lib); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// progress serializes Config.Progress invocations under parallelism: the
// mutex both orders the callbacks and makes the done count monotone.
type progress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

func (p *progress) tick() {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total)
	p.mu.Unlock()
}

// characterize performs the actual simulation sweep. Cells are
// characterized concurrently (one goroutine per cell, results written into
// pre-indexed slots) while lim bounds the simulations actually running;
// the first error cancels everything still pending. With one worker the
// original serial loop runs instead.
func (cfg Config) characterize(ctx context.Context, s aging.Scenario, lim conc.Limiter) (*liberty.Library, error) {
	lib := &liberty.Library{
		Name:     cfg.libName(s),
		Scenario: s,
		Vdd:      cfg.Tech.Vdd,
		Slews:    append([]float64(nil), cfg.Slews...),
		Loads:    append([]float64(nil), cfg.Loads...),
		Cells:    map[string]*liberty.CellTiming{},
	}
	set := cfg.cellSet()
	prog := &progress{total: len(set), fn: cfg.Progress}
	results := make([]*liberty.CellTiming, len(set))
	if lim.Cap() == 1 {
		for i, c := range set {
			ct, err := cfg.characterizeCell(ctx, lim, c, s)
			if err != nil {
				return nil, fmt.Errorf("char: cell %s under %s: %w", c.Name, s, err)
			}
			results[i] = ct
			prog.tick()
		}
	} else {
		g, gctx := conc.NewGroup(ctx)
		for i, c := range set {
			g.Go(func() error {
				ct, err := cfg.characterizeCell(gctx, lim, c, s)
				if err != nil {
					return fmt.Errorf("char: cell %s under %s: %w", c.Name, s, err)
				}
				results[i] = ct
				prog.tick()
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			return nil, err
		}
	}
	for i, c := range set {
		lib.Cells[c.Name] = results[i]
	}
	return lib, nil
}

// degradations resolves the per-polarity device degradation for a scenario,
// honouring the VthOnly comparison mode.
func (cfg Config) degradations(s aging.Scenario) (p, n aging.Degradation) {
	p = cfg.Model.PMOS(s)
	n = cfg.Model.NMOS(s)
	if cfg.VthOnly {
		p = p.VthOnly()
		n = n.VthOnly()
	}
	return p, n
}

func (cfg Config) characterizeCell(ctx context.Context, lim conc.Limiter, c *cells.Cell, s aging.Scenario) (*liberty.CellTiming, error) {
	ct := &liberty.CellTiming{
		Name:    c.Name,
		Base:    c.Base,
		Drive:   c.Drive,
		AreaUm2: c.AreaUm2,
		Inputs:  append([]string(nil), c.Inputs...),
		Output:  c.Output,
		PinCap:  map[string]float64{},
	}
	for _, p := range c.Inputs {
		ct.PinCap[p] = c.PinCap(cfg.Tech, p)
	}
	if c.Seq {
		ct.Seq, ct.Clock, ct.Data = true, c.Clock, c.Data
		ct.SetupPS, ct.HoldPS = dffSetup, dffHold
		arc, err := cfg.clockArc(ctx, lim, c, s)
		if err != nil {
			return nil, err
		}
		ct.Arcs = []liberty.Arc{*arc}
		return ct, nil
	}
	for _, spec := range DiscoverArcs(c) {
		arc, err := cfg.combArc(ctx, lim, c, s, spec)
		if err != nil {
			return nil, fmt.Errorf("arc %s/%s: %w", spec.Pin, spec.Sense, err)
		}
		ct.Arcs = append(ct.Arcs, *arc)
	}
	if len(ct.Arcs) == 0 {
		return nil, fmt.Errorf("no sensitizable arcs")
	}
	return ct, nil
}

// ArcSpec names one combinational timing arc to characterize.
type ArcSpec struct {
	Pin   string
	Sense liberty.Sense
	When  uint // side-input assignment (bit per input, pin's own bit ignored)
}

// DiscoverArcs finds, for every input pin of a combinational cell and every
// polarity sense, the first side-input assignment under which toggling the
// pin toggles the output. Most cells are unate (one arc per pin); XOR/XNOR
// and the MUX select pin yield two arcs.
func DiscoverArcs(c *cells.Cell) []ArcSpec {
	var out []ArcSpec
	n := c.NumInputs()
	for pi, pin := range c.Inputs {
		foundPos, foundNeg := false, false
		for side := uint(0); side < 1<<n; side++ {
			if side>>pi&1 == 1 {
				continue // canonical: pin's own bit zero in When
			}
			lo := c.Eval(side)
			hi := c.Eval(side | 1<<pi)
			if lo == hi {
				continue
			}
			if hi && !foundPos {
				out = append(out, ArcSpec{Pin: pin, Sense: liberty.PositiveUnate, When: side})
				foundPos = true
			}
			if !hi && !foundNeg {
				out = append(out, ArcSpec{Pin: pin, Sense: liberty.NegativeUnate, When: side})
				foundNeg = true
			}
			if foundPos && foundNeg {
				break
			}
		}
	}
	return out
}

// CharacterizeAll characterizes the scenarios concurrently — bounded by
// Parallelism both at the scenario level and, through one shared limiter,
// at the simulation level — and returns the libraries in input order.
// Per-scenario singleflight ensures duplicate scenarios (or concurrent
// CharacterizeAll calls sharing a CacheDir) never characterize or write
// the same .alib twice at the same time.
func (cfg Config) CharacterizeAll(scenarios []aging.Scenario) ([]*liberty.Library, error) {
	lim := conc.NewLimiter(cfg.workers())
	libs := make([]*liberty.Library, len(scenarios))
	err := conc.ParFor(context.Background(), cfg.workers(), len(scenarios), func(i int) error {
		lib, err := cfg.characterizeShared(context.Background(), scenarios[i], lim)
		if err != nil {
			return err
		}
		libs[i] = lib
		return nil
	})
	if err != nil {
		return nil, err
	}
	return libs, nil
}

// GenerateGrid characterizes the paper's full 11x11 duty-cycle grid (121
// libraries) for the given lifetime. Scenarios run concurrently (see
// CharacterizeAll); visit is then invoked serially, in grid order, once
// per library. Libraries are cached on disk when CacheDir is set.
func (cfg Config) GenerateGrid(years float64, visit func(*liberty.Library)) error {
	libs, err := cfg.CharacterizeAll(aging.GridScenarios(years))
	if err != nil {
		return err
	}
	if visit != nil {
		for _, lib := range libs {
			visit(lib)
		}
	}
	return nil
}

// CompleteLibrary builds the merged, lambda-indexed "complete
// degradation-aware cell library" over the scenarios given (e.g. all 121
// grid points, or just those a netlist annotation needs). Scenarios are
// characterized concurrently; the merge order is the input order.
func (cfg Config) CompleteLibrary(name string, scenarios []aging.Scenario) (*liberty.Merged, error) {
	libs, err := cfg.CharacterizeAll(scenarios)
	if err != nil {
		return nil, err
	}
	return liberty.MergeLibraries(name, libs), nil
}
