// Package char implements degradation-aware cell-library characterization —
// the paper's Fig. 4(a): for a given aging scenario it degrades the
// transistor models (package aging), instantiates each standard cell's
// transistor netlist (package cells), sweeps the operating-condition grid
// (input slew x output load) with transient simulations (package spice),
// and emits an NLDM timing library (package liberty).
//
// The paper's configuration is reproduced by DefaultConfig: 7 input slews
// in [5 ps, 947 ps] and 7 output loads in [0.5 fF, 20 fF] — 49 OPCs per
// timing arc — and a duty-cycle grid of 11x11 scenarios yielding 121
// libraries (see GenerateGrid).
//
// Characterization is deterministic, so libraries are cached on disk in
// the serialized .alib format and reused across processes.
package char

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

// Config controls characterization.
type Config struct {
	Tech  device.Tech
	Model aging.Model

	Slews []float64 // input-slew axis [s]
	Loads []float64 // output-load axis [F]

	// VthOnly disables the mobility degradation during device aging,
	// modelling the state-of-the-art flows the paper compares against in
	// Fig. 5(a) ([9,11,12,13]: Vth-only analysis).
	VthOnly bool

	// CacheDir, when non-empty, enables the on-disk library cache.
	CacheDir string

	// Cells restricts characterization to the named cells (nil = all 68).
	Cells []string

	// Progress, when non-nil, receives (done, total) cell counts.
	Progress func(done, total int)
}

// DefaultConfig returns the paper's characterization setup: the full cell
// set over the 7x7 OPC grid (Smin=5ps, Smax=947ps, Cmin=0.5fF, Cmax=20fF).
func DefaultConfig() Config {
	return Config{
		Tech:  device.Default45(),
		Model: aging.DefaultModel(),
		Slews: LogAxis(5*units.Ps, 947*units.Ps, 7),
		Loads: LogAxis(0.5*units.FF, 20*units.FF, 7),
	}
}

// TestConfig returns a reduced 3x3-grid configuration for fast tests.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Slews = LogAxis(5*units.Ps, 947*units.Ps, 3)
	cfg.Loads = LogAxis(0.5*units.FF, 20*units.FF, 3)
	return cfg
}

// LogAxis returns n log-spaced points from lo to hi inclusive.
func LogAxis(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	r := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= r
	}
	out[n-1] = hi
	return out
}

// DFF timing constraints are modelled as constants: the guardband and
// synthesis experiments compare path-delay differences, which the paper's
// evaluation also does, so scenario-dependent setup shifts are second
// order. See DESIGN.md.
const (
	dffSetup = 30 * units.Ps
	dffHold  = 3 * units.Ps
)

// Characterize builds the timing library for one aging scenario, using the
// on-disk cache when configured.
func (cfg Config) Characterize(s aging.Scenario) (*liberty.Library, error) {
	if lib, ok := cfg.loadCache(s); ok {
		return lib, nil
	}
	lib, err := cfg.characterize(s)
	if err != nil {
		return nil, err
	}
	cfg.storeCache(s, lib)
	return lib, nil
}

func (cfg Config) cellSet() []*cells.Cell {
	if cfg.Cells == nil {
		return cells.All()
	}
	out := make([]*cells.Cell, 0, len(cfg.Cells))
	for _, n := range cfg.Cells {
		out = append(out, cells.MustByName(n))
	}
	return out
}

func (cfg Config) libName(s aging.Scenario) string {
	suffix := ""
	if cfg.VthOnly {
		suffix = "_vthonly"
	}
	return fmt.Sprintf("aged_y%.1f_%s%s", s.Years, s.Key(), suffix)
}

func (cfg Config) cachePath(s aging.Scenario) string {
	n := len(cfg.Cells)
	if cfg.Cells == nil {
		n = 0 // full set marker
	}
	fn := fmt.Sprintf("%s_g%dx%d_c%d_v%g.alib",
		cfg.libName(s), len(cfg.Slews), len(cfg.Loads), n, cfg.Tech.Vdd)
	return filepath.Join(cfg.CacheDir, fn)
}

func (cfg Config) loadCache(s aging.Scenario) (*liberty.Library, bool) {
	if cfg.CacheDir == "" {
		return nil, false
	}
	f, err := os.Open(cfg.cachePath(s))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	lib, err := liberty.Read(f)
	if err != nil {
		return nil, false
	}
	// When restricted to named cells, verify the cached set covers them.
	for _, c := range cfg.cellSet() {
		if _, ok := lib.Cell(c.Name); !ok {
			return nil, false
		}
	}
	return lib, true
}

func (cfg Config) storeCache(s aging.Scenario, lib *liberty.Library) {
	if cfg.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return
	}
	path := cfg.cachePath(s)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := liberty.Write(f, lib); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	f.Close()
	os.Rename(tmp, path)
}

// characterize performs the actual simulation sweep.
func (cfg Config) characterize(s aging.Scenario) (*liberty.Library, error) {
	lib := &liberty.Library{
		Name:     cfg.libName(s),
		Scenario: s,
		Vdd:      cfg.Tech.Vdd,
		Slews:    append([]float64(nil), cfg.Slews...),
		Loads:    append([]float64(nil), cfg.Loads...),
		Cells:    map[string]*liberty.CellTiming{},
	}
	set := cfg.cellSet()
	for i, c := range set {
		ct, err := cfg.characterizeCell(c, s)
		if err != nil {
			return nil, fmt.Errorf("char: cell %s under %s: %w", c.Name, s, err)
		}
		lib.Cells[c.Name] = ct
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(set))
		}
	}
	return lib, nil
}

// degradations resolves the per-polarity device degradation for a scenario,
// honouring the VthOnly comparison mode.
func (cfg Config) degradations(s aging.Scenario) (p, n aging.Degradation) {
	p = cfg.Model.PMOS(s)
	n = cfg.Model.NMOS(s)
	if cfg.VthOnly {
		p = p.VthOnly()
		n = n.VthOnly()
	}
	return p, n
}

func (cfg Config) characterizeCell(c *cells.Cell, s aging.Scenario) (*liberty.CellTiming, error) {
	ct := &liberty.CellTiming{
		Name:    c.Name,
		Base:    c.Base,
		Drive:   c.Drive,
		AreaUm2: c.AreaUm2,
		Inputs:  append([]string(nil), c.Inputs...),
		Output:  c.Output,
		PinCap:  map[string]float64{},
	}
	for _, p := range c.Inputs {
		ct.PinCap[p] = c.PinCap(cfg.Tech, p)
	}
	if c.Seq {
		ct.Seq, ct.Clock, ct.Data = true, c.Clock, c.Data
		ct.SetupPS, ct.HoldPS = dffSetup, dffHold
		arc, err := cfg.clockArc(c, s)
		if err != nil {
			return nil, err
		}
		ct.Arcs = []liberty.Arc{*arc}
		return ct, nil
	}
	for _, spec := range DiscoverArcs(c) {
		arc, err := cfg.combArc(c, s, spec)
		if err != nil {
			return nil, fmt.Errorf("arc %s/%s: %w", spec.Pin, spec.Sense, err)
		}
		ct.Arcs = append(ct.Arcs, *arc)
	}
	if len(ct.Arcs) == 0 {
		return nil, fmt.Errorf("no sensitizable arcs")
	}
	return ct, nil
}

// ArcSpec names one combinational timing arc to characterize.
type ArcSpec struct {
	Pin   string
	Sense liberty.Sense
	When  uint // side-input assignment (bit per input, pin's own bit ignored)
}

// DiscoverArcs finds, for every input pin of a combinational cell and every
// polarity sense, the first side-input assignment under which toggling the
// pin toggles the output. Most cells are unate (one arc per pin); XOR/XNOR
// and the MUX select pin yield two arcs.
func DiscoverArcs(c *cells.Cell) []ArcSpec {
	var out []ArcSpec
	n := c.NumInputs()
	for pi, pin := range c.Inputs {
		foundPos, foundNeg := false, false
		for side := uint(0); side < 1<<n; side++ {
			if side>>pi&1 == 1 {
				continue // canonical: pin's own bit zero in When
			}
			lo := c.Eval(side)
			hi := c.Eval(side | 1<<pi)
			if lo == hi {
				continue
			}
			if hi && !foundPos {
				out = append(out, ArcSpec{Pin: pin, Sense: liberty.PositiveUnate, When: side})
				foundPos = true
			}
			if !hi && !foundNeg {
				out = append(out, ArcSpec{Pin: pin, Sense: liberty.NegativeUnate, When: side})
				foundNeg = true
			}
			if foundPos && foundNeg {
				break
			}
		}
	}
	return out
}

// GenerateGrid characterizes the paper's full 11x11 duty-cycle grid (121
// libraries) for the given lifetime, invoking visit after each library.
// Libraries are cached on disk when CacheDir is set.
func (cfg Config) GenerateGrid(years float64, visit func(*liberty.Library)) error {
	for _, s := range aging.GridScenarios(years) {
		lib, err := cfg.Characterize(s)
		if err != nil {
			return err
		}
		if visit != nil {
			visit(lib)
		}
	}
	return nil
}

// CompleteLibrary builds the merged, lambda-indexed "complete
// degradation-aware cell library" over the scenarios given (e.g. all 121
// grid points, or just those a netlist annotation needs).
func (cfg Config) CompleteLibrary(name string, scenarios []aging.Scenario) (*liberty.Merged, error) {
	libs := make([]*liberty.Library, 0, len(scenarios))
	for _, s := range scenarios {
		l, err := cfg.Characterize(s)
		if err != nil {
			return nil, err
		}
		libs = append(libs, l)
	}
	return liberty.MergeLibraries(name, libs), nil
}
