package char

import (
	"context"
	"errors"
	"fmt"

	"ageguard/internal/liberty"
	"ageguard/internal/obs"
)

// ErrSalvage reports grid points that failed permanently (the retry
// ladder exhausted) and violated the salvage policy — too many failures
// per arc, or two failures adjacent on the grid — so their values could
// not be trusted to interpolation. Matchable with errors.Is.
var ErrSalvage = errors.New("char: unsalvageable grid points")

// salvageBudget is the per-arc cap on salvaged points: 5% of the arc's
// grid points (both edges), but always at least one. Beyond it, failures
// are no longer "isolated glitches" and the arc must be fixed, not
// papered over.
func (cfg Config) salvageBudget() int {
	b := 2 * len(cfg.Slews) * len(cfg.Loads) / 20
	if b < 1 {
		b = 1
	}
	return b
}

// failGrid records, per output edge and grid index, the post-ladder
// convergence failure of that transient (nil = converged). Workers write
// distinct slots, so no locking is needed — the same discipline as the
// table Values themselves.
type failGrid [2][][]error

func newFailGrid(ns, nl int) *failGrid {
	var g failGrid
	for e := range g {
		g[e] = make([][]error, ns)
		for i := range g[e] {
			g[e][i] = make([]error, nl)
		}
	}
	return &g
}

// salvageArc repairs an arc whose sweep left failed grid points, within
// policy: at most salvageBudget points, and never two failures adjacent
// on the same edge's grid (Manhattan distance 1) — adjacency would force
// interpolating from another interpolation. Repaired entries are the mean
// of the in-bounds 4-neighbors (all converged, by non-adjacency) in both
// the delay and output-slew tables; each is recorded in arc.Salvaged and
// counted under char.salvaged. Policy violations return an error wrapping
// both ErrSalvage and the first underlying solver failure.
func (cfg Config) salvageArc(ctx context.Context, base Point, arc *liberty.Arc, g *failGrid) error {
	// Deterministic (edge, slew, load) collection order keeps error
	// messages and Salvaged ordering stable across parallelism settings.
	var pts []liberty.SalvagePoint
	var firstErr error
	for e := range g {
		for i := range g[e] {
			for j, err := range g[e][i] {
				if err != nil {
					pts = append(pts, liberty.SalvagePoint{Edge: liberty.Edge(e), I: i, J: j})
					if firstErr == nil {
						firstErr = err
					}
				}
			}
		}
	}
	if len(pts) == 0 {
		return nil
	}
	if budget := cfg.salvageBudget(); len(pts) > budget {
		return fmt.Errorf("%w: %d failed points exceed the %d-point budget (first: %s): %w",
			ErrSalvage, len(pts), budget, cfg.pointAt(base, pts[0]), firstErr)
	}
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			if pts[a].Edge != pts[b].Edge {
				continue
			}
			if absInt(pts[a].I-pts[b].I)+absInt(pts[a].J-pts[b].J) == 1 {
				return fmt.Errorf("%w: adjacent failed points %s and %s: %w",
					ErrSalvage, cfg.pointAt(base, pts[a]), cfg.pointAt(base, pts[b]), firstErr)
			}
		}
	}
	reg := obs.From(ctx)
	for _, sp := range pts {
		for _, t := range []*liberty.Table{arc.Delay[sp.Edge], arc.OutSlew[sp.Edge]} {
			if t == nil {
				continue
			}
			t.Values[sp.I][sp.J] = neighborMean(t, sp.I, sp.J)
		}
		arc.Salvaged = append(arc.Salvaged, sp)
		reg.Counter("char.salvaged").Inc()
	}
	return nil
}

// pointAt rebinds the arc-level base point to a specific grid slot.
func (cfg Config) pointAt(base Point, sp liberty.SalvagePoint) Point {
	base.Edge, base.I, base.J = sp.Edge, sp.I, sp.J
	return base
}

// neighborMean averages the in-bounds 4-neighborhood of (i, j).
func neighborMean(t *liberty.Table, i, j int) float64 {
	var sum float64
	var n int
	for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		ni, nj := i+d[0], j+d[1]
		if ni < 0 || ni >= len(t.Values) || nj < 0 || nj >= len(t.Values[ni]) {
			continue
		}
		sum += t.Values[ni][nj]
		n++
	}
	return sum / float64(n)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
