package char

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/conc"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"

	"context"
)

// Checkpoint shards make characterization resumable: every completed cell
// is persisted as a tiny single-cell library next to the final .alib, so a
// crashed, killed or interrupted run re-simulates only the cells it had
// not finished. Shards share the .alib entry's config-hash-bearing stem —
// a shard characterized under one grid/model/cell-set can never be resumed
// into a library built under another — and are written with the same
// atomic temp+rename discipline, so a shard either exists completely or
// not at all. Once the full .alib lands, the shards are deleted.

// ckptStem is the shared filename prefix of a scenario's shards.
func (cfg Config) ckptStem(s aging.Scenario) string {
	return strings.TrimSuffix(cfg.cachePath(s), ".alib")
}

// ckptPath names the checkpoint shard for one cell of a scenario.
func (cfg Config) ckptPath(s aging.Scenario, cell string) string {
	return cfg.ckptStem(s) + ".cell_" + cell + ".ckpt"
}

// loadCellCkpt loads a cell's checkpoint shard. A nil error means a usable
// hit. Misses wrap fs.ErrNotExist; shards that exist but cannot be parsed
// or lack the cell wrap ErrCacheCorrupt.
func (cfg Config) loadCellCkpt(s aging.Scenario, cell string) (*liberty.CellTiming, error) {
	if cfg.CacheDir == "" {
		return nil, fmt.Errorf("char: cache disabled: %w", fs.ErrNotExist)
	}
	path := cfg.ckptPath(s, cell)
	if cfg.CacheFault != nil {
		if err := cfg.CacheFault("ckpt.load", path); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lib, err := liberty.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCacheCorrupt, path, err)
	}
	ct, ok := lib.Cell(cell)
	if !ok {
		return nil, fmt.Errorf("%w: %s lacks cell %s", ErrCacheCorrupt, path, cell)
	}
	// Strict runs never resume from interpolated results: treat the shard
	// as a miss so the cell is recharacterized without salvage.
	if cfg.Strict {
		for i := range ct.Arcs {
			if len(ct.Arcs[i].Salvaged) > 0 {
				return nil, fmt.Errorf("char: %s has salvaged points (strict): %w",
					path, fs.ErrNotExist)
			}
		}
	}
	return ct, nil
}

// storeCellCkpt persists one completed cell as a single-cell library,
// atomically (unique temp file + rename, removed on every error path).
func (cfg Config) storeCellCkpt(s aging.Scenario, ct *liberty.CellTiming) error {
	if cfg.CacheDir == "" {
		return nil
	}
	path := cfg.ckptPath(s, ct.Name)
	if cfg.CacheFault != nil {
		if err := cfg.CacheFault("ckpt.store", path); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return err
	}
	lib := &liberty.Library{
		Name:     cfg.libName(s) + "_ckpt",
		Scenario: s,
		Vdd:      cfg.Tech.Vdd,
		Slews:    append([]float64(nil), cfg.Slews...),
		Loads:    append([]float64(nil), cfg.Loads...),
		Cells:    map[string]*liberty.CellTiming{ct.Name: ct},
	}
	f, err := os.CreateTemp(cfg.CacheDir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := liberty.Write(f, lib); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// clearCkpts removes a scenario's checkpoint shards (best effort): once
// the complete .alib is on disk they carry no extra information.
func (cfg Config) clearCkpts(s aging.Scenario) {
	if cfg.CacheDir == "" {
		return
	}
	matches, err := filepath.Glob(cfg.ckptStem(s) + ".cell_*.ckpt")
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

// cellWithCheckpoint characterizes one cell, resuming from its checkpoint
// shard when one exists and persisting a new shard afterwards. Shard-store
// failures are deliberately non-fatal — the run loses resumability for
// that cell, nothing else — and are counted under char.ckpt.store.errors.
func (cfg Config) cellWithCheckpoint(ctx context.Context, lim conc.Limiter, c *cells.Cell, s aging.Scenario) (*liberty.CellTiming, error) {
	reg := obs.From(ctx)
	ct, err := cfg.loadCellCkpt(s, c.Name)
	switch {
	case err == nil:
		reg.Counter("char.ckpt.hits").Inc()
		return ct, nil
	case errors.Is(err, ErrCacheCorrupt):
		reg.Counter("char.ckpt.corrupt").Inc()
	}
	ct, err = cfg.characterizeCell(ctx, lim, c, s)
	if err != nil {
		return nil, err
	}
	if err := cfg.storeCellCkpt(s, ct); err != nil {
		reg.Counter("char.ckpt.store.errors").Inc()
	}
	return ct, nil
}
