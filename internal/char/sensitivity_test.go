package char

import (
	"context"
	"math"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
)

// sensConfig is a reduced-grid config over two cells with a test-local
// cache so the five sensitivity characterizations stay cheap.
func sensConfig(t *testing.T) Config {
	t.Helper()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1", "NAND2_X1"}
	cfg.CacheDir = t.TempDir()
	return cfg
}

func TestSensitivitiesFiniteAndAligned(t *testing.T) {
	cfg := sensConfig(t)
	sn, err := cfg.Sensitivities(context.Background(), aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	if sn.Base == nil || len(sn.Base.Cells) != 2 {
		t.Fatalf("base library = %+v", sn.Base)
	}
	for name, ct := range sn.Base.Cells {
		sens, ok := sn.arcs[name]
		if !ok || len(sens) != len(ct.Arcs) {
			t.Fatalf("%s: %d sensitivity arcs for %d base arcs", name, len(sens), len(ct.Arcs))
		}
		for ai := range ct.Arcs {
			for p := 0; p < numSensParams; p++ {
				for e := 0; e < 2; e++ {
					base, s := ct.Arcs[ai].Delay[e], sens[ai].Delay[p][e]
					if (base == nil) != (s == nil) {
						t.Fatalf("%s arc %d param %d edge %d: nil mismatch", name, ai, p, e)
					}
					if s == nil {
						continue
					}
					for i, row := range s.Values {
						for j, v := range row {
							if math.IsNaN(v) || math.IsInf(v, 0) {
								t.Fatalf("%s arc %d param %d: non-finite dD/dp at [%d][%d]", name, ai, p, i, j)
							}
						}
					}
				}
			}
		}
	}

	// A raised Vth slows the cell, so the Vth sensitivities must be
	// positive on average over the grid (either polarity drives at least
	// half of each cell's arcs).
	for name, sens := range sn.arcs {
		var sum float64
		for ai := range sens {
			for _, p := range []int{sensVthP, sensVthN} {
				for e := 0; e < 2; e++ {
					if tb := sens[ai].Delay[p][e]; tb != nil {
						for _, row := range tb.Values {
							for _, v := range row {
								sum += v
							}
						}
					}
				}
			}
		}
		if sum <= 0 {
			t.Errorf("%s: mean dDelay/dVth = %v, want positive", name, sum)
		}
	}
}

func TestSampleLibraryZeroDrawSharesBase(t *testing.T) {
	cfg := sensConfig(t)
	sn, err := cfg.Sensitivities(context.Background(), aging.Fresh())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := sn.SampleLibrary("zero", []InstDraw{
		{Inst: "u1", Cell: "INV_X1"},
		{Inst: "u2", Cell: "NAND2_X1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(lib.Cells))
	}
	v, ok := lib.Cells[VariantCell("INV_X1", "u1")]
	if !ok {
		t.Fatalf("variant cell missing; have %v", lib.Cells)
	}
	base := sn.Base.Cells["INV_X1"]
	// A zero draw must share the nominal tables outright, not copy them:
	// same Arcs backing array (the cell is immutable), same table pointers.
	if &v.Arcs[0] != &base.Arcs[0] {
		t.Error("zero draw copied the Arcs slice instead of sharing it")
	}
	if v.Arcs[0].Delay[liberty.Rise] != base.Arcs[0].Delay[liberty.Rise] {
		t.Error("zero draw did not share the base delay table pointer")
	}
	if v.PinCap["A"] != base.PinCap["A"] {
		t.Error("pin caps not shared")
	}
}

func TestSampleLibraryAppliesDelta(t *testing.T) {
	cfg := sensConfig(t)
	sn, err := cfg.Sensitivities(context.Background(), aging.Fresh())
	if err != nil {
		t.Fatal(err)
	}
	pb := device.Perturb{DVthP: 0.02, DVthN: 0.02}
	lib, err := sn.SampleLibrary("slow", []InstDraw{{Inst: "u1", Cell: "INV_X1", Pb: pb}})
	if err != nil {
		t.Fatal(err)
	}
	v := lib.Cells[VariantCell("INV_X1", "u1")]
	base := sn.Base.Cells["INV_X1"]
	var dsum float64
	for ai := range base.Arcs {
		for e := 0; e < 2; e++ {
			bt, vt := base.Arcs[ai].Delay[e], v.Arcs[ai].Delay[e]
			if (bt == nil) != (vt == nil) {
				t.Fatalf("arc %d edge %d: nil mismatch", ai, e)
			}
			if bt == nil {
				continue
			}
			for i, row := range vt.Values {
				for j, val := range row {
					if val < 0 || math.IsNaN(val) {
						t.Fatalf("arc %d edge %d [%d][%d]: bad delay %v", ai, e, i, j, val)
					}
					dsum += val - bt.Values[i][j]
				}
			}
		}
	}
	if dsum <= 0 {
		t.Errorf("raised-Vth instance not slower: total delta %v", dsum)
	}
	// The base library must be untouched.
	if sn.Base.Cells["INV_X1"] != base {
		t.Error("SampleLibrary replaced the base cell")
	}

	if _, err := sn.SampleLibrary("bad", []InstDraw{{Inst: "u9", Cell: "NOPE_X1"}}); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestCharacterizeCellPerturbedMatchesSensitivityStep(t *testing.T) {
	cfg := sensConfig(t)
	ctx := context.Background()
	s := aging.Fresh()
	sn, err := cfg.Sensitivities(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	// Re-characterizing at exactly the finite-difference step must land on
	// the perturbed library the sensitivities were derived from, so the
	// first-order reconstruction base + step*S reproduces it bit-exactly.
	lim := conc.NewLimiter(conc.Workers(cfg.Parallelism))
	ct, err := cfg.CharacterizeCellPerturbed(ctx, lim, "INV_X1", s, device.Perturb{DVthP: SensStepVth})
	if err != nil {
		t.Fatal(err)
	}
	base := sn.Base.Cells["INV_X1"]
	sens := sn.arcs["INV_X1"]
	for ai := range base.Arcs {
		for e := 0; e < 2; e++ {
			bt, st := base.Arcs[ai].Delay[e], sens[ai].Delay[sensVthP][e]
			if bt == nil {
				continue
			}
			got := ct.Arcs[ai].Delay[e]
			for i, row := range bt.Values {
				for j, v := range row {
					want := v + SensStepVth*st.Values[i][j]
					if math.Abs(got.Values[i][j]-want) > 1e-9*math.Abs(want)+1e-18 {
						t.Fatalf("arc %d edge %d [%d][%d]: exact %v vs reconstructed %v",
							ai, e, i, j, got.Values[i][j], want)
					}
				}
			}
		}
	}
}

func TestDiffTableAndApplyDelta(t *testing.T) {
	base := liberty.NewTable([]float64{1, 2}, []float64{1, 2})
	pert := liberty.NewTable([]float64{1, 2}, []float64{1, 2})
	for i := range base.Values {
		for j := range base.Values[i] {
			base.Values[i][j] = 10
			pert.Values[i][j] = 12
		}
	}
	d := diffTable(pert, base, 0.5)
	if d.Values[0][0] != 4 {
		t.Errorf("diffTable = %v, want 4", d.Values[0][0])
	}
	if diffTable(nil, base, 1) != nil || diffTable(pert, nil, 1) != nil {
		t.Error("nil input did not propagate")
	}

	var sens [numSensParams][2]*liberty.Table
	sens[sensVthP][0] = d
	out := applyDelta(base, sens, 0, [numSensParams]float64{sensVthP: -10})
	if out.Values[0][0] != 0 {
		t.Errorf("applyDelta floor: %v, want 0", out.Values[0][0])
	}
	out = applyDelta(base, sens, 0, [numSensParams]float64{sensVthP: 0.5})
	if out.Values[1][1] != 12 {
		t.Errorf("applyDelta = %v, want 12", out.Values[1][1])
	}
	if applyDelta(nil, sens, 0, [numSensParams]float64{}) != nil {
		t.Error("nil base did not propagate")
	}
}
