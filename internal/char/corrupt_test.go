package char

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/obs"
)

// TestTruncatedCacheDetected truncates a valid .alib cache entry at every
// byte boundary and asserts each truncation is detected as
// ErrCacheCorrupt. The serializer's mandatory ENDLIB terminator makes
// this exhaustive: any prefix that lost data also lost the terminator (or
// cut a line mid-token), so no truncation can silently parse as a
// smaller-but-valid library. The only byte that may be dropped without
// detection is the final newline, after which the content is still
// complete. A final round-trip verifies a truncated entry is rebuilt
// atomically.
func TestTruncatedCacheDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	if _, err := cfg.Characterize(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	path := cfg.cachePath(s)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 || !strings.HasSuffix(string(full), "ENDLIB\n") {
		t.Fatalf("unexpected cache serialization (%d bytes)", len(full))
	}

	// Every proper prefix except the one missing only the trailing
	// newline must fail to load as corrupt.
	for n := 0; n < len(full)-1; n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, lerr := cfg.loadCache(s)
		if !errors.Is(lerr, ErrCacheCorrupt) {
			t.Fatalf("truncation at byte %d/%d: got %v, want ErrCacheCorrupt", n, len(full), lerr)
		}
	}

	// Rebuild cycle: a truncated entry is replaced atomically; afterwards
	// the cache loads cleanly and no temp files remain.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	if _, err := cfg.Characterize(ctx, s); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("char.cache.corrupt").Value(); n != 1 {
		t.Errorf("char.cache.corrupt = %d, want 1", n)
	}
	rebuilt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != string(full) {
		t.Error("rebuilt cache entry differs from the original serialization")
	}
	if _, err := cfg.loadCache(s); err != nil {
		t.Errorf("cache entry unreadable after rebuild: %v", err)
	}
	for _, e := range mustReadDir(t, dir) {
		if strings.Contains(e, ".tmp") {
			t.Errorf("stray temp file %s after rebuild", e)
		}
	}
}
