package char

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/obs"
)

// TestTruncatedCacheDetected truncates a valid .alib cache entry at every
// byte boundary and asserts no truncation that loses library data loads
// successfully. Prefixes cut before the ENDLIB terminator lost data and
// must report ErrCacheCorrupt (the serializer's mandatory terminator
// makes this exhaustive). Prefixes cut inside the trailing checksum line
// hold the complete library: they must either load (marker gone, data
// whole) or report corrupt (marker present, digest unverifiable) — never
// anything else. A final round-trip verifies a truncated entry is
// rebuilt atomically.
func TestTruncatedCacheDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	if _, err := cfg.Characterize(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	path := cfg.cachePath(s)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	endlibEnd := strings.Index(string(full), "ENDLIB\n")
	if endlibEnd < 0 {
		t.Fatalf("unexpected cache serialization (%d bytes): no ENDLIB", len(full))
	}
	endlibEnd += len("ENDLIB\n")
	lastLine := string(full[endlibEnd:])
	if !strings.HasPrefix(lastLine, "#SUM fnv64a ") {
		t.Fatalf("cache entry does not end with a checksum line (got %q)", lastLine)
	}

	for n := 0; n < len(full)-1; n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, lerr := cfg.loadCache(s)
		// n == endlibEnd-1 keeps "ENDLIB" and drops only its newline: the
		// scanner still yields the final line, so the data is complete.
		if n < endlibEnd-1 {
			// Library data is missing: must be corrupt.
			if !errors.Is(lerr, ErrCacheCorrupt) {
				t.Fatalf("truncation at byte %d/%d: got %v, want ErrCacheCorrupt", n, len(full), lerr)
			}
		} else if lerr != nil && !errors.Is(lerr, ErrCacheCorrupt) {
			// Cut inside the checksum line: the library is complete, so a
			// load is acceptable, as is corrupt — but nothing else.
			t.Fatalf("checksum-line truncation at byte %d/%d: got %v", n, len(full), lerr)
		}
	}

	// Rebuild cycle: a truncated entry is replaced atomically; afterwards
	// the cache loads cleanly and no temp files remain.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	if _, err := cfg.Characterize(ctx, s); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("char.cache.corrupt").Value(); n != 1 {
		t.Errorf("char.cache.corrupt = %d, want 1", n)
	}
	rebuilt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(rebuilt) != string(full) {
		t.Error("rebuilt cache entry differs from the original serialization")
	}
	if _, err := cfg.loadCache(s); err != nil {
		t.Errorf("cache entry unreadable after rebuild: %v", err)
	}
	for _, e := range mustReadDir(t, dir) {
		if strings.Contains(e, ".tmp") {
			t.Errorf("stray temp file %s after rebuild", e)
		}
	}
}
