package char

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"
)

// TestResumeAfterInterrupt is the kill-and-restart guarantee: interrupt a
// characterization after the first of three cells completes, then rerun
// against the same cache directory and verify (1) completed cells are
// adopted from their checkpoint shards instead of re-simulated — the
// resumed run performs strictly fewer transient simulations than a
// from-scratch run — (2) the resumed library is bit-identical to a
// from-scratch one, and (3) the shards are cleaned up once the full
// .alib lands.
func TestResumeAfterInterrupt(t *testing.T) {
	cells := []string{"INV_X1", "NAND2_X1", "NOR2_X1"}
	s := aging.WorstCase(10)

	// Baseline: a from-scratch run in a separate cache dir, recording the
	// total transient count and the reference serialization.
	base := TestConfig()
	base.Cells = cells
	base.Parallelism = 1
	base.CacheDir = t.TempDir()
	baseReg := obs.NewRegistry()
	refLib, err := base.Characterize(obs.With(context.Background(), baseReg), s)
	if err != nil {
		t.Fatal(err)
	}
	scratchSims := baseReg.Counter("spice.transients").Value()
	if scratchSims == 0 {
		t.Fatal("baseline run recorded no transients")
	}
	var ref bytes.Buffer
	if err := liberty.Write(&ref, refLib); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel as soon as the first cell finishes. With
	// Parallelism=1 exactly that cell has a checkpoint shard.
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = cells
	cfg.Parallelism = 1
	cfg.CacheDir = dir
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Progress = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	if _, err := cfg.Characterize(ctx, s); !errors.Is(err, ErrCanceled) {
		t.Fatalf("interrupted run: got %v, want ErrCanceled", err)
	}
	shards, other := 0, 0
	for _, e := range mustReadDir(t, dir) {
		switch {
		case strings.HasSuffix(e, ".ckpt"):
			shards++
		default:
			other++
			t.Errorf("interrupted run left non-shard file %s", e)
		}
	}
	if shards == 0 {
		t.Fatal("interrupted run left no checkpoint shards")
	}

	// Resume: a fresh config (no cancel hook) over the same cache dir.
	resume := TestConfig()
	resume.Cells = cells
	resume.Parallelism = 1
	resume.CacheDir = dir
	reg := obs.NewRegistry()
	lib, err := resume.Characterize(obs.With(context.Background(), reg), s)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("char.ckpt.hits").Value(); hits != int64(shards) {
		t.Errorf("char.ckpt.hits = %d, want %d (one per shard)", hits, shards)
	}
	resumedSims := reg.Counter("spice.transients").Value()
	if resumedSims >= scratchSims {
		t.Errorf("resumed run simulated %d transients, want strictly fewer than scratch (%d)",
			resumedSims, scratchSims)
	}
	// The resumed library is bit-identical to the from-scratch reference.
	var got bytes.Buffer
	if err := liberty.Write(&got, lib); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), ref.Bytes()) {
		t.Error("resumed library differs from a from-scratch characterization")
	}
	// Shards are redundant once the .alib landed.
	for _, e := range mustReadDir(t, dir) {
		if strings.HasSuffix(e, ".ckpt") {
			t.Errorf("shard %s not cleaned up after the library landed", e)
		}
		if strings.Contains(e, ".tmp") {
			t.Errorf("stray temp file %s", e)
		}
	}
}

// TestResumeCorruptShard: a truncated shard is detected, counted and
// re-simulated rather than adopted.
func TestResumeCorruptShard(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	// Fabricate a corrupt shard where the resume would look for one.
	if err := os.WriteFile(cfg.ckptPath(s, "INV_X1"), []byte("LIBRARY half\nSLEWS 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	lib, err := cfg.Characterize(obs.With(context.Background(), reg), s)
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("char.ckpt.corrupt").Value(); n != 1 {
		t.Errorf("char.ckpt.corrupt = %d, want 1", n)
	}
	if n := reg.Counter("char.ckpt.hits").Value(); n != 0 {
		t.Errorf("char.ckpt.hits = %d, want 0", n)
	}
	if _, ok := lib.Cell("INV_X1"); !ok {
		t.Error("rebuilt library lacks INV_X1")
	}
}

// TestCkptDisabledWithoutCache: with no cache directory the checkpoint
// layer is inert — characterization works and writes nothing.
func TestCkptDisabledWithoutCache(t *testing.T) {
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = ""
	reg := obs.NewRegistry()
	if _, err := cfg.Characterize(obs.With(context.Background(), reg), aging.WorstCase(10)); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("char.ckpt.hits").Value(); n != 0 {
		t.Errorf("char.ckpt.hits = %d without a cache dir", n)
	}
	if n := reg.Counter("char.ckpt.store.errors").Value(); n != 0 {
		t.Errorf("char.ckpt.store.errors = %d without a cache dir", n)
	}
}
