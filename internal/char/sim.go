package char

import (
	"context"
	"fmt"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/conc"
	"ageguard/internal/device"
	"ageguard/internal/liberty"
	"ageguard/internal/spice"
	"ageguard/internal/units"
)

// build instantiates the cell's transistor topology as a spice circuit with
// devices degraded per the scenario. It returns the circuit and the node
// map (topology name -> node).
func (cfg Config) build(c *cells.Cell, s aging.Scenario) (*spice.Circuit, map[string]spice.NodeID) {
	degP, degN := cfg.degradations(s)
	ckt := spice.New(cfg.Tech.Vdd)
	nodes := map[string]spice.NodeID{
		cells.NodeGND: ckt.Gnd(),
		cells.NodeVDD: ckt.Vdd(),
	}
	get := func(name string) spice.NodeID {
		if n, ok := nodes[name]; ok {
			return n
		}
		n := ckt.Node(name)
		nodes[name] = n
		return n
	}
	for _, spec := range c.Topo.Devices {
		p := c.DeviceParams(cfg.Tech, spec)
		if spec.Type == device.PMOS {
			p = p.Degrade(degP.DVth, degP.MuFactor)
		} else {
			p = p.Degrade(degN.DVth, degN.MuFactor)
		}
		// Unconditional: the zero Perturb adds 0 and scales by 1, both
		// exact, so nominal builds stay bit-identical.
		p = p.Perturbed(cfg.Perturb)
		ckt.MOS(p, get(spec.D), get(spec.G), get(spec.S))
	}
	return ckt, nodes
}

// measurement is the outcome of one transient characterization point.
type measurement struct {
	delay, slew float64
}

// gridSweep fans the (edge, slew, load) operating-condition points of one
// arc out over goroutines gated by lim, the simulation limiter shared by
// the whole characterization run. Every point writes its measurement into
// the pre-allocated table slot (i, j) of its edge — distinct slots, no
// appends — so results are bit-identical to the serial sweep regardless of
// completion order. With a single-token limiter the plain nested loops run
// inline instead, preserving the exact serial execution.
//
// A point whose transient still fails to converge after the retry ladder
// does not abort the sweep (unless Config.Strict): its failure is
// recorded in a per-slot grid and, once every other point has finished,
// salvageArc repairs the isolated holes by neighbor interpolation — or
// fails the arc with a point-identifying error when the failures exceed
// the salvage policy.
func (cfg Config) gridSweep(ctx context.Context, lim conc.Limiter, base Point, arc *liberty.Arc,
	sim func(ctx context.Context, outEdge liberty.Edge, i, j int) (measurement, error)) error {

	edges := []liberty.Edge{liberty.Rise, liberty.Fall}
	for _, e := range edges {
		arc.Delay[e] = liberty.NewTable(cfg.Slews, cfg.Loads)
		arc.OutSlew[e] = liberty.NewTable(cfg.Slews, cfg.Loads)
	}
	failed := newFailGrid(len(cfg.Slews), len(cfg.Loads))
	point := func(ctx context.Context, e liberty.Edge, i, j int) error {
		m, err := sim(ctx, e, i, j)
		if err != nil {
			err = fmt.Errorf("%s slew=%s load=%s: %w",
				e, units.PsString(cfg.Slews[i]), units.FFString(cfg.Loads[j]), err)
			// Permanent convergence failures become salvage candidates;
			// cancellations, measurement errors and Strict-mode runs
			// abort the arc immediately.
			if !cfg.Strict && spice.Classify(err) == spice.FailConvergence {
				failed[e][i][j] = err
				return nil
			}
			return err
		}
		arc.Delay[e].Values[i][j] = m.delay
		arc.OutSlew[e].Values[i][j] = m.slew
		return nil
	}
	if lim.Cap() == 1 {
		for _, e := range edges {
			for i := range cfg.Slews {
				for j := range cfg.Loads {
					if err := ctx.Err(); err != nil {
						return conc.WrapCanceled(err)
					}
					if err := point(ctx, e, i, j); err != nil {
						return err
					}
				}
			}
		}
		return cfg.salvageArc(ctx, base, arc, failed)
	}
	// Bound live point goroutines by the limiter capacity instead of
	// spawning one per grid point: a sweep-wide flood (tens of thousands
	// across a library) swamps the scheduler's run queue, which on a
	// small-GOMAXPROCS host starves the signal-watcher goroutine and turns
	// Ctrl-C from milliseconds into seconds.
	g, gctx := conc.NewGroup(ctx)
	g.SetLimit(lim.Cap())
dispatch:
	for _, e := range edges {
		for i := range cfg.Slews {
			for j := range cfg.Loads {
				if gctx.Err() != nil {
					break dispatch
				}
				g.Go(func() error {
					if err := lim.Acquire(gctx); err != nil {
						return conc.WrapCanceled(err)
					}
					defer lim.Release()
					return point(gctx, e, i, j)
				})
			}
		}
	}
	if err := g.Wait(); err != nil {
		return err
	}
	// Dispatch may have stopped early on a parent cancellation that no
	// in-flight task happened to observe; an incomplete sweep must not
	// return a nil error.
	if err := conc.WrapCanceled(ctx.Err()); err != nil {
		return err
	}
	return cfg.salvageArc(ctx, base, arc, failed)
}

// combArc characterizes one combinational arc over the full OPC grid.
func (cfg Config) combArc(ctx context.Context, lim conc.Limiter, c *cells.Cell, s aging.Scenario, spec ArcSpec) (*liberty.Arc, error) {
	arc := &liberty.Arc{Pin: spec.Pin, Sense: spec.Sense, When: spec.When}
	pi := c.PinIndex(spec.Pin)
	base := Point{Cell: c.Name, Pin: spec.Pin}
	err := cfg.gridSweep(ctx, lim, base, arc, func(ctx context.Context, outEdge liberty.Edge, i, j int) (measurement, error) {
		inEdge := spec.Sense.InputEdge(outEdge)
		p := Point{Cell: c.Name, Pin: spec.Pin, Edge: outEdge, I: i, J: j}
		return cfg.simComb(ctx, c, s, spec, p, pi, inEdge, outEdge, cfg.Slews[i], cfg.Loads[j])
	})
	if err != nil {
		return nil, err
	}
	return arc, nil
}

// solverOpts binds the per-point fault-injection seam (if any) and the
// Jacobian mode into the solver options; p identifies the grid point to
// the hook.
func (cfg Config) solverOpts(opts spice.Options, p Point) spice.Options {
	opts.FiniteDiffJacobian = cfg.FiniteDiffJacobian
	if cfg.FaultInject != nil {
		opts.FaultHook = func(attempt int) error { return cfg.FaultInject(p, attempt) }
	}
	return opts
}

func (cfg Config) simComb(ctx context.Context, c *cells.Cell, s aging.Scenario, spec ArcSpec,
	p Point, pi int, inEdge, outEdge liberty.Edge, slew, load float64) (measurement, error) {

	vdd := cfg.Tech.Vdd
	ckt, nodes := cfg.build(c, s)

	// Side inputs at their sensitizing DC values.
	for k, pin := range c.Inputs {
		if k == pi {
			continue
		}
		v := 0.0
		if spec.When>>k&1 == 1 {
			v = vdd
		}
		ckt.Drive(nodes[pin], spice.DC(v))
	}
	t0 := 100 * units.Ps
	v0, v1 := 0.0, vdd
	if inEdge == liberty.Fall {
		v0, v1 = vdd, 0
	}
	ckt.Drive(nodes[spec.Pin], spice.Ramp{T0: t0, Slew: slew, V0: v0, V1: v1})
	out := nodes[c.Output]
	ckt.C(out, ckt.Gnd(), load)

	tstop := t0 + slew + 3*units.Ns
	opts := cfg.solverOpts(spice.Options{MaxStep: 25 * units.Ps}, p)
	res, err := ckt.RunRetry(ctx, tstop, opts, cfg.retries())
	if err != nil {
		return measurement{}, err
	}
	tIn := t0 + slew/2 // linear ramp crosses 50% at its midpoint
	tOut, ok := res.Cross(out, vdd/2, outEdge == liberty.Rise, t0)
	if !ok {
		return measurement{}, fmt.Errorf("output did not cross 50%%")
	}
	oslew, ok := res.Slew(out, vdd, outEdge == liberty.Rise, t0)
	if !ok {
		return measurement{}, fmt.Errorf("output slew unmeasurable")
	}
	return measurement{delay: tOut - tIn, slew: oslew}, nil
}

// clockArc characterizes the CK->Q arc of a flip-flop: Q rise with D=1 and
// Q fall with D=0, over clock slew x output load. The slave latch is
// initialized to the opposite state so the clock edge produces a Q toggle.
func (cfg Config) clockArc(ctx context.Context, lim conc.Limiter, c *cells.Cell, s aging.Scenario) (*liberty.Arc, error) {
	arc := &liberty.Arc{Pin: c.Clock, Sense: liberty.PositiveUnate}
	base := Point{Cell: c.Name, Pin: c.Clock}
	err := cfg.gridSweep(ctx, lim, base, arc, func(ctx context.Context, outEdge liberty.Edge, i, j int) (measurement, error) {
		p := Point{Cell: c.Name, Pin: c.Clock, Edge: outEdge, I: i, J: j}
		m, err := cfg.simClock(ctx, c, s, p, outEdge, cfg.Slews[i], cfg.Loads[j])
		if err != nil {
			return m, fmt.Errorf("CK->Q: %w", err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return arc, nil
}

func (cfg Config) simClock(ctx context.Context, c *cells.Cell, s aging.Scenario,
	p Point, outEdge liberty.Edge, slew, load float64) (measurement, error) {

	vdd := cfg.Tech.Vdd
	ckt, nodes := cfg.build(c, s)
	dVal := vdd // Q will rise
	if outEdge == liberty.Fall {
		dVal = 0
	}
	ckt.Drive(nodes[c.Data], spice.DC(dVal))
	t0 := 150 * units.Ps
	ckt.Drive(nodes[c.Clock], spice.Ramp{T0: t0, Slew: slew, V0: 0, V1: vdd})
	out := nodes[c.Output]
	ckt.C(out, ckt.Gnd(), load)

	// Initialize the slave latch to hold !D so the edge toggles Q.
	// Node names follow the DFF topology in cells: n4 = !Q internal.
	hold := vdd - dVal // previous Q value
	init := map[string]float64{
		"n4": vdd - hold, // n4 = !Qprev
		"n5": hold,
		"n6": vdd - hold,
		"Q":  hold,
	}
	opts := cfg.solverOpts(spice.Options{
		MaxStep: 25 * units.Ps,
		InitV: func(name string) (float64, bool) {
			v, ok := init[name]
			return v, ok
		},
	}, p)
	tstop := t0 + slew + 3*units.Ns
	res, err := ckt.RunRetry(ctx, tstop, opts, cfg.retries())
	if err != nil {
		return measurement{}, err
	}
	tCk := t0 + slew/2
	tOut, ok := res.Cross(out, vdd/2, outEdge == liberty.Rise, tCk)
	if !ok {
		return measurement{}, fmt.Errorf("Q did not toggle")
	}
	oslew, ok := res.Slew(out, vdd, outEdge == liberty.Rise, tCk)
	if !ok {
		return measurement{}, fmt.Errorf("Q slew unmeasurable")
	}
	return measurement{delay: tOut - tCk, slew: oslew}, nil
}
