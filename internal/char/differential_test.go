package char

import (
	"context"
	"math"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

// TestAnalyticJacobianMatchesFiniteDifference characterizes the full cell
// catalog twice — once with the analytic-derivative MOS stamps (plus the
// Newton predictor) and once with Config.FiniteDiffJacobian, which
// reproduces the legacy solver's trajectory — and requires every delay
// and output-slew table entry of every arc to agree tightly. Both modes
// solve the same residual to the same per-step tolerance; any systematic
// divergence here means the analytic derivatives (or the predictor) broke
// the physics, not just the iteration path.
func TestAnalyticJacobianMatchesFiniteDifference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog differential characterization")
	}
	run := func(fd bool) *liberty.Library {
		cfg := TestConfig()
		cfg.CacheDir = "" // never let one mode serve the other from cache
		cfg.FiniteDiffJacobian = fd
		lib, err := cfg.Characterize(context.Background(), aging.WorstCase(10))
		if err != nil {
			t.Fatalf("characterize (fd=%v): %v", fd, err)
		}
		return lib
	}
	ana, ref := run(false), run(true)

	// Tolerance: per-step Newton tolerance is 1e-7 V, so converged
	// waveforms agree to microvolts; table differences come only from
	// adaptive time grids diverging after voltage differences flip a
	// borderline accept/reject. 0.2% relative (plus 10 fs absolute floor
	// for near-zero entries) is far below any delay the downstream STA
	// can distinguish, yet far above what matching physics produces.
	const relTol, absTol = 2e-3, 10e-15
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= absTol+relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	checkTable := func(cell, pin, kind string, e liberty.Edge, a, b *liberty.Table) {
		t.Helper()
		if (a == nil) != (b == nil) {
			t.Fatalf("%s/%s %s %s: table present in one mode only", cell, pin, kind, e)
		}
		if a == nil {
			return
		}
		for i := range a.Values {
			for j := range a.Values[i] {
				va, vb := a.Values[i][j], b.Values[i][j]
				if !close(va, vb) {
					t.Errorf("%s/%s %s %s (%d,%d): analytic %s vs fd %s",
						cell, pin, kind, e, i, j, units.PsString(va), units.PsString(vb))
				}
			}
		}
	}
	if len(ana.Cells) == 0 || len(ana.Cells) != len(ref.Cells) {
		t.Fatalf("cell count mismatch: analytic %d, fd %d", len(ana.Cells), len(ref.Cells))
	}
	arcs := 0
	for name, ca := range ana.Cells {
		cr, ok := ref.Cells[name]
		if !ok {
			t.Fatalf("cell %s missing from fd library", name)
		}
		if len(ca.Arcs) != len(cr.Arcs) {
			t.Fatalf("%s: arc count %d vs %d", name, len(ca.Arcs), len(cr.Arcs))
		}
		for k := range ca.Arcs {
			aa, ar := &ca.Arcs[k], &cr.Arcs[k]
			if aa.Pin != ar.Pin || aa.When != ar.When {
				t.Fatalf("%s arc %d: identity mismatch (%s/%d vs %s/%d)",
					name, k, aa.Pin, aa.When, ar.Pin, ar.When)
			}
			for _, e := range []liberty.Edge{liberty.Rise, liberty.Fall} {
				checkTable(name, aa.Pin, "delay", e, aa.Delay[e], ar.Delay[e])
				checkTable(name, aa.Pin, "slew", e, aa.OutSlew[e], ar.OutSlew[e])
			}
			arcs++
		}
	}
	if arcs == 0 {
		t.Fatal("differential test compared no arcs")
	}
	t.Logf("compared %d arcs across %d cells", arcs, len(ana.Cells))
}
