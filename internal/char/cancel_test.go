package char

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"
)

// TestCancelMidGrid interrupts a characterization after the first cell
// completes and verifies the three cancellation guarantees: the error
// matches both ErrCanceled and context.Canceled, no goroutines are
// leaked, and the cache directory holds no partial entries — no temp
// files and no half-complete .alib. Complete per-cell checkpoint shards
// (.ckpt) are allowed: they are the resume mechanism, written atomically,
// and each must parse as a valid single-cell library.
func TestCancelMidGrid(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1"}
	cfg.CacheDir = dir
	cfg.Parallelism = 4

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Progress = func(done, total int) {
		if done == 1 {
			cancel() // first cell finished: interrupt the rest mid-grid
		}
	}
	_, err := cfg.Characterize(ctx, aging.WorstCase(10))
	if err == nil {
		t.Fatal("canceled characterization returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not match ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}

	// No partial cache entries: storeCache never ran (the characterize
	// error aborts first) and temp files are unlinked on every error path.
	// Checkpoint shards for cells that completed before the cancel may
	// remain — that is the resume guarantee — but each must be a complete,
	// parseable single-cell library.
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") {
			t.Errorf("canceled run left cache file %s", name)
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		_, perr := liberty.Read(f)
		f.Close()
		if perr != nil {
			t.Errorf("checkpoint shard %s is not a complete library: %v", name, perr)
		}
	}

	// All worker goroutines drain (poll: group teardown is asynchronous).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGoroutineFloodBounded: the parallel sweep must create at most
// O(cells x limiter-cap) goroutines, not one per grid point. An
// unbounded flood (tens of thousands of runnable goroutines) starves the
// scheduler on small-GOMAXPROCS hosts — most visibly the signal-watcher
// goroutine, which turns Ctrl-C latency from milliseconds into seconds.
// It also bounds the observed cancel latency generously.
func TestGoroutineFloodBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full-size characterization for ~2s")
	}
	cfg := DefaultConfig()
	cfg.CacheDir = ""
	cfg.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := cfg.Characterize(ctx, aging.WorstCase(10))
		done <- err
	}()
	time.Sleep(2 * time.Second)
	// ~68 cells + 4 points each + runtime overhead; one-per-point would
	// be several thousand.
	if n := runtime.NumGoroutine(); n > 800 {
		t.Errorf("%d goroutines during full-size characterization, want bounded fan-out", n)
	}
	t0 := time.Now()
	cancel()
	err := <-done
	if lat := time.Since(t0); lat > 2*time.Second {
		t.Errorf("cancel latency %s, want < 2s", lat)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not match ErrCanceled", err)
	}
}

// TestCancelBeforeStart: an already-canceled context fails fast without
// simulating or writing anything.
func TestCancelBeforeStart(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cfg.Characterize(ctx, aging.WorstCase(10)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled context: got %v, want ErrCanceled", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("pre-canceled run wrote %d cache files", len(ents))
	}
}

// TestHashInvalidatesCache: changing any grid axis value (not just the
// axis length) must change the cache filename, so a pre-hash entry can
// never be silently reused for a different operating-condition grid.
func TestHashInvalidatesCache(t *testing.T) {
	a := TestConfig()
	b := TestConfig()
	b.Slews = append([]float64(nil), a.Slews...)
	b.Slews[1] *= 1.5 // same count, different value
	s := aging.WorstCase(10)
	a.CacheDir, b.CacheDir = "cache", "cache"
	if a.cachePath(s) == b.cachePath(s) {
		t.Fatalf("configs with different slew values share cache path %s", a.cachePath(s))
	}
	c := TestConfig()
	c.CacheDir = "cache"
	if a.cachePath(s) != c.cachePath(s) {
		t.Error("identical configs produced different cache paths")
	}
}

// TestStaleGridNotReused characterizes under one grid, then alters a grid
// value and verifies a fresh characterization happens (cache miss, two
// distinct files) instead of stale reuse.
func TestStaleGridNotReused(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	if _, err := cfg.Characterize(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Slews = append([]float64(nil), cfg.Slews...)
	cfg2.Slews[0] *= 2
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	if _, err := cfg2.Characterize(ctx, s); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("char.cache.hits").Value(); hits != 0 {
		t.Errorf("changed grid produced %d cache hits, want 0", hits)
	}
	if misses := reg.Counter("char.cache.misses").Value(); misses != 1 {
		t.Errorf("char.cache.misses = %d, want 1", misses)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Errorf("cache holds %d entries after two distinct grids, want 2", len(ents))
	}
}

// TestErrNoCell: an unknown cell name surfaces as a wrapped ErrNoCell
// instead of a panic.
func TestErrNoCell(t *testing.T) {
	cfg := TestConfig()
	cfg.Cells = []string{"NOPE_X9"}
	_, err := cfg.Characterize(context.Background(), aging.Fresh())
	if !errors.Is(err, ErrNoCell) {
		t.Fatalf("got %v, want ErrNoCell", err)
	}
	if !strings.Contains(err.Error(), "NOPE_X9") {
		t.Errorf("error %q does not name the missing cell", err)
	}
}

// TestErrCacheCorrupt: a garbage cache entry is detected, counted, and
// transparently rebuilt (atomically replacing the bad file).
func TestErrCacheCorrupt(t *testing.T) {
	dir := t.TempDir()
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = dir
	s := aging.WorstCase(10)
	if err := os.WriteFile(cfg.cachePath(s), []byte("not a library"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.loadCache(s); !errors.Is(err, ErrCacheCorrupt) {
		t.Fatalf("loadCache on garbage: got %v, want ErrCacheCorrupt", err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	lib, err := cfg.Characterize(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.Cell("INV_X1"); !ok {
		t.Fatal("rebuilt library lacks INV_X1")
	}
	if n := reg.Counter("char.cache.corrupt").Value(); n != 1 {
		t.Errorf("char.cache.corrupt = %d, want 1", n)
	}
	// The corrupt entry was replaced: it now loads cleanly.
	if _, err := cfg.loadCache(s); err != nil {
		t.Errorf("cache entry still unreadable after rebuild: %v", err)
	}
	for _, e := range mustReadDir(t, dir) {
		if strings.Contains(e, ".tmp") {
			t.Errorf("stray temp file %s", e)
		}
	}
}

func mustReadDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, filepath.Base(e.Name()))
	}
	return names
}

// TestCharMetrics: a cold characterization populates the char and spice
// counters the run manifest is built from.
func TestCharMetrics(t *testing.T) {
	cfg := TestConfig()
	cfg.Cells = []string{"INV_X1", "NAND2_X1"}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	if _, err := cfg.Characterize(ctx, aging.WorstCase(10)); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("char.cells").Value(); n != 2 {
		t.Errorf("char.cells = %d, want 2", n)
	}
	if n := reg.Counter("spice.transients").Value(); n == 0 {
		t.Error("spice.transients = 0 after a cold characterization")
	}
	if n := reg.Counter("spice.newton.iterations").Value(); n == 0 {
		t.Error("spice.newton.iterations = 0 after a cold characterization")
	}
	if st := reg.Histogram("char.cell.seconds").Stat(); st.Count != 2 {
		t.Errorf("char.cell.seconds count = %d, want 2", st.Count)
	}
	snap := reg.Snapshot()
	if len(snap.Spans) == 0 {
		t.Error("no root spans recorded")
	}
}
