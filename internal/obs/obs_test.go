package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("x.hits").Inc()
				r.Counter("x.bytes").Add(3)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("x.hits").Value(); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	if got := r.Counter("x.bytes").Value(); got != 24000 {
		t.Errorf("bytes = %d, want 24000", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("x.level")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	if r.Gauge("x.level") != g {
		t.Error("gauge handle not stable")
	}
}

func TestHistogramStat(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.seconds")
	for _, v := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1} {
		h.Observe(v)
	}
	st := h.Stat()
	if st.Count != 5 {
		t.Fatalf("count = %d", st.Count)
	}
	if math.Abs(st.Sum-0.11111) > 1e-9 {
		t.Errorf("sum = %v", st.Sum)
	}
	if st.Min != 1e-5 || st.Max != 0.1 {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
	// p50 is an upper-bound estimate from log2 buckets: within 2x of 1e-3.
	if st.P50 < 1e-3 || st.P50 > 2e-3 {
		t.Errorf("p50 = %v", st.P50)
	}
	if st.P99 > st.Max {
		t.Errorf("p99 %v > max %v", st.P99, st.Max)
	}
	// Degenerate histogram.
	if st := NewRegistry().Histogram("empty").Stat(); st.Count != 0 || st.Mean != 0 {
		t.Errorf("empty stat = %+v", st)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewRegistry().Histogram("h")
	h.Observe(-1)
	if st := h.Stat(); st.Min != 0 || st.Count != 1 {
		t.Errorf("stat = %+v", st)
	}
}

func TestSpanTree(t *testing.T) {
	r := NewRegistry()
	ctx := With(context.Background(), r)
	ctx, root := StartSpan(ctx, "run")
	root.SetAttr("circuit", "DSP")
	_, child := StartSpan(ctx, "child")
	child.End()
	// A sibling attached concurrently.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "par")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()

	s := r.Snapshot()
	if len(s.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(s.Spans))
	}
	rt := s.Spans[0]
	if rt.Name != "run" || rt.Attrs["circuit"] != "DSP" {
		t.Errorf("root = %+v", rt)
	}
	if len(rt.Children) != 5 {
		t.Errorf("children = %d, want 5", len(rt.Children))
	}
	if rt.InFlight {
		t.Error("ended root still in flight")
	}
}

func TestSpanInFlightSnapshot(t *testing.T) {
	r := NewRegistry()
	ctx := With(context.Background(), r)
	_, sp := StartSpan(ctx, "slow")
	time.Sleep(time.Millisecond)
	s := r.Snapshot()
	if len(s.Spans) != 1 || !s.Spans[0].InFlight || s.Spans[0].Seconds <= 0 {
		t.Errorf("in-flight span = %+v", s.Spans)
	}
	sp.End()
}

func TestEndErrAndDoubleEnd(t *testing.T) {
	r := NewRegistry()
	_, sp := StartSpan(With(context.Background(), r), "op")
	sp.EndErr(os.ErrNotExist)
	d1 := sp.Stat().Seconds
	time.Sleep(time.Millisecond)
	sp.End() // second End keeps the first duration
	if d2 := sp.Stat().Seconds; d2 != d1 {
		t.Errorf("duration changed on double End: %v -> %v", d1, d2)
	}
	if sp.Stat().Attrs["error"] == "" {
		t.Error("error attr missing")
	}
}

func TestFromDefault(t *testing.T) {
	if From(context.Background()) != Default {
		t.Error("From without registry != Default")
	}
	r := NewRegistry()
	if From(With(context.Background(), r)) != r {
		t.Error("From lost the installed registry")
	}
}

func TestSinks(t *testing.T) {
	r := NewRegistry()
	r.Counter("spice.transients").Add(42)
	r.Gauge("char.workers").Set(8)
	r.Histogram("sta.analyze.seconds").Observe(0.005)
	_, sp := StartSpan(With(context.Background(), r), "char.library")
	sp.SetAttr("scenario", "worst")
	sp.End()

	var txt bytes.Buffer
	if err := r.Snapshot().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spice.transients", "42", "char.workers", "sta.analyze.seconds", "char.library", "scenario=worst"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text summary missing %q:\n%s", want, txt.String())
		}
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := r.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Counters["spice.transients"] != 42 {
		t.Errorf("manifest counters = %+v", got.Counters)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != "char.library" {
		t.Errorf("manifest spans = %+v", got.Spans)
	}
	// No temp files left next to the manifest.
	ents, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
