package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry: the run-manifest
// structure serialized by the JSON sink and rendered by the text sink.
type Snapshot struct {
	TakenAt    time.Time           `json:"taken_at"`
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
	Spans      []SpanStat          `json:"spans,omitempty"`
}

// Snapshot copies the registry's current state. It is safe to call while
// the run is still recording; in-flight spans are marked as such.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	roots := append([]*Span(nil), r.roots...)
	r.mu.Unlock()

	s := Snapshot{TakenAt: time.Now()}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(hists))
		for k, h := range hists {
			s.Histograms[k] = h.Stat()
		}
	}
	for _, sp := range roots {
		s.Spans = append(s.Spans, sp.Stat())
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON — the run-manifest
// format consumed by -trace-out.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders a human-readable summary: sorted counters and gauges,
// histogram statistics, and the indented span tree.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %12d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-36s %12g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-36s n=%-8d mean=%s p50=%s p90=%s p99=%s max=%s\n",
				k, h.Count, fmtSec(h.Mean), fmtSec(h.P50), fmtSec(h.P90), fmtSec(h.P99), fmtSec(h.Max))
		}
	}
	if len(s.Spans) > 0 {
		b.WriteString("spans:\n")
		for _, sp := range s.Spans {
			writeSpanText(&b, sp, 1)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSpanText(b *strings.Builder, sp SpanStat, depth int) {
	fmt.Fprintf(b, "%s%-*s %10s", strings.Repeat("  ", depth), 40-2*depth, sp.Name, fmtSec(sp.Seconds))
	if sp.InFlight {
		b.WriteString(" (in flight)")
	}
	for _, k := range sortedKeys(sp.Attrs) {
		fmt.Fprintf(b, " %s=%s", k, sp.Attrs[k])
	}
	b.WriteByte('\n')
	for _, c := range sp.Children {
		writeSpanText(b, c, depth+1)
	}
}

// fmtSec renders a duration in seconds with an adaptive unit.
func fmtSec(v float64) string {
	switch {
	case v <= 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	case v < 120:
		return fmt.Sprintf("%.2fs", v)
	default:
		return fmt.Sprintf("%.1fm", v/60)
	}
}

// WriteManifest snapshots the registry and writes the JSON run-manifest to
// path atomically (unique temp file + rename), so a reader polling the
// file during a long sweep never observes a torn document.
func (r *Registry) WriteManifest(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
