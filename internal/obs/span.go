package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Span is one timed operation in a hierarchical trace. Spans form a tree:
// StartSpan attaches the new span to the span already carried by the
// context (or registers it as a root of the context's registry) and
// returns a derived context carrying the new span, so nesting follows the
// call graph without any explicit parent bookkeeping.
//
// A Span is safe for concurrent use: parallel children may attach and
// attribute writes are serialized. End must be called exactly once;
// snapshots taken before End report the span as in-flight with its
// duration so far.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	attrs    []spanAttr
	children []*Span
	dur      time.Duration
	ended    bool
}

type spanAttr struct{ key, val string }

type ctxSpanKey struct{}

// StartSpan begins a span named name under the span carried by ctx (or as
// a new root of ctx's registry) and returns the derived context plus the
// span. Call End when the operation finishes:
//
//	ctx, sp := obs.StartSpan(ctx, "char.library")
//	defer sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(ctxSpanKey{}).(*Span); ok {
		parent.mu.Lock()
		parent.children = append(parent.children, sp)
		parent.mu.Unlock()
	} else {
		r := From(ctx)
		r.mu.Lock()
		r.roots = append(r.roots, sp)
		r.mu.Unlock()
	}
	return context.WithValue(ctx, ctxSpanKey{}, sp), sp
}

// SetAttr attaches a key/value attribute (value formatted with %v).
// Setting the same key again appends; sinks keep the last value.
func (s *Span) SetAttr(key string, val any) {
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, fmt.Sprint(val)})
	s.mu.Unlock()
}

// End marks the span finished, freezing its duration. Calling End more
// than once keeps the first duration.
func (s *Span) End() {
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// EndErr ends the span, recording a non-nil error as the "error"
// attribute first.
func (s *Span) EndErr(err error) {
	if err != nil {
		s.SetAttr("error", err)
	}
	s.End()
}

// SpanStat is an immutable snapshot of a span subtree.
type SpanStat struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Seconds  float64           `json:"seconds"`
	InFlight bool              `json:"in_flight,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanStat        `json:"children,omitempty"`
}

// Stat snapshots the span and its children recursively.
func (s *Span) Stat() SpanStat {
	s.mu.Lock()
	st := SpanStat{Name: s.name, Start: s.start}
	if s.ended {
		st.Seconds = s.dur.Seconds()
	} else {
		st.Seconds = time.Since(s.start).Seconds()
		st.InFlight = true
	}
	if len(s.attrs) > 0 {
		st.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			st.Attrs[a.key] = a.val
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		st.Children = append(st.Children, c.Stat())
	}
	return st
}
