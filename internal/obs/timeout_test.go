package obs

import (
	"context"
	"errors"
	"flag"
	"testing"
	"time"
)

// TestSetupTimeout: the -timeout flag puts a wall-clock deadline on the
// run context, and its expiry is distinguishable from an interrupt
// (context.DeadlineExceeded, which conc.WrapCanceled preserves for
// errors.Is).
func TestSetupTimeout(t *testing.T) {
	c := &CLIFlags{Timeout: 20 * time.Millisecond}
	ctx, _, finish := c.Setup(context.Background())
	defer finish()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("Setup with Timeout set returned a context without a deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled after the timeout elapsed")
	}
	if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v, want DeadlineExceeded", err)
	}
}

// TestSetupNoTimeout: the default (0) imposes no deadline.
func TestSetupNoTimeout(t *testing.T) {
	c := &CLIFlags{}
	ctx, _, finish := c.Setup(context.Background())
	defer finish()
	if _, ok := ctx.Deadline(); ok {
		t.Error("Setup without Timeout returned a context with a deadline")
	}
	if err := ctx.Err(); err != nil {
		t.Errorf("fresh run context already done: %v", err)
	}
}

// TestRegisterTimeoutFlag: -timeout parses standard duration syntax.
func TestRegisterTimeoutFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterFlags(fs)
	if err := fs.Parse([]string{"-timeout", "90m"}); err != nil {
		t.Fatal(err)
	}
	if c.Timeout != 90*time.Minute {
		t.Errorf("Timeout = %v, want 90m", c.Timeout)
	}
}
