package obs

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"
)

// CLIFlags bundles the run-control flags every pipeline command exposes:
// -metrics (text summary on exit), -trace-out (JSON run-manifest),
// -pprof (live net/http/pprof endpoint for long sweeps) and -timeout
// (wall-clock budget for the whole run).
type CLIFlags struct {
	Metrics  bool
	TraceOut string
	Pprof    string
	Timeout  time.Duration
}

// RegisterFlags installs the standard observability flags on fs (use
// flag.CommandLine in main) and returns the holder to Setup with after
// flag.Parse.
func RegisterFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.BoolVar(&c.Metrics, "metrics", false, "print a metrics/span summary to stderr on exit")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write a JSON run-manifest (metrics + span tree) to this file on exit")
	fs.StringVar(&c.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. :6060) while running")
	fs.DurationVar(&c.Timeout, "timeout", 0, "abort the run after this wall-clock duration (e.g. 30m; 0 = no limit)")
	return c
}

// Setup wires a command run: it returns a context that carries a fresh
// Registry and is canceled on SIGINT/SIGTERM (so Ctrl-C propagates into
// in-flight simulations) as well as when the -timeout budget elapses
// (the context error is then context.DeadlineExceeded, which commands
// report distinctly from an interrupt), starts the pprof server if
// requested, and returns a finish func that flushes the configured
// sinks. Call finish exactly once, before exiting — including on the
// error path.
func (c *CLIFlags) Setup(parent context.Context) (context.Context, *Registry, func()) {
	reg := NewRegistry()
	ctx := With(parent, reg)
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	cancelTimeout := func() {}
	if c.Timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, c.Timeout)
	}
	if c.Pprof != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(c.Pprof, nil); err != nil {
				log.Printf("pprof server on %s: %v", c.Pprof, err)
			}
		}()
	}
	finish := func() {
		cancelTimeout()
		stop()
		if c.TraceOut != "" {
			if err := reg.WriteManifest(c.TraceOut); err != nil {
				log.Printf("trace-out: %v", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote run manifest %s\n", c.TraceOut)
			}
		}
		if c.Metrics {
			if err := reg.Snapshot().WriteText(os.Stderr); err != nil {
				log.Printf("metrics: %v", err)
			}
		}
	}
	return ctx, reg, finish
}
