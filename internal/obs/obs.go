// Package obs is the pipeline's lightweight observability layer: a
// concurrency-safe metrics registry (counters, gauges, duration
// histograms), hierarchical wall-time spans, and pluggable sinks (an
// aligned text summary and a JSON run-manifest).
//
// The registry travels through context.Context: commands create one
// registry per run and install it with With; every layer of the pipeline
// (spice, char, sta, synth, core) records into obs.From(ctx), so code
// handed a bare context degrades gracefully to the process-wide Default
// registry instead of losing data.
//
// Metric names are hierarchical, dot-separated, lowercase:
// <layer>.<noun>[.<verb-or-unit>] — e.g. spice.newton.iterations,
// char.cache.hits, sta.analyze.seconds. Histograms observe seconds and
// carry the ".seconds" suffix. Span names use <layer>.<operation>
// (char.library, synth.synthesize, core.guardband.static); variable parts
// (scenario, circuit) are span attributes, never part of the name, so
// aggregation stays trivial. See DESIGN.md for the full scheme.
package obs

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds the metrics and root spans of one run. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use; Counter/Gauge/Histogram return a stable handle that is
// cheap to cache and atomic to update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	roots    []*Span
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry used when a context carries
// none, so recording never needs a nil check.
var Default = NewRegistry()

type ctxRegKey struct{}

// With returns a context carrying the registry; pipeline layers below it
// record their metrics and spans there.
func With(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxRegKey{}, r)
}

// From returns the registry carried by ctx, or Default when there is none
// (including a nil context). It never returns nil.
func From(ctx context.Context) *Registry {
	if ctx != nil {
		if r, ok := ctx.Value(ctxRegKey{}).(*Registry); ok {
			return r
		}
	}
	return Default
}

// Counter returns the named monotone counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first
// use. Histograms observe values in seconds.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Inc increments the named counter by one — the Registry side of the
// one-method metrics interfaces stdlib-only packages (e.g.
// pkg/ageguard/client) define for themselves, so a registry plugs into
// them directly.
func (r *Registry) Inc(name string) { r.Counter(name).Inc() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 (last-write-wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histogram bucket layout: bucket i counts observations in
// [boundary(i-1), boundary(i)) with boundary(i) = 1µs * 2^i, i.e. a
// log2 ladder from 1 microsecond to ~9 days; the first bucket absorbs
// everything below 1µs and the last everything above.
const histBuckets = 40

func bucketBound(i int) float64 { return 1e-6 * math.Pow(2, float64(i)) }

// Histogram accumulates a distribution of durations in seconds with
// exact count/sum/min/max and log2 buckets for quantile estimation.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

// Observe records one value (seconds; negative values clamp to zero).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := 0
	for i < histBuckets-1 && v >= bucketBound(i) {
		i++
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[i]++
	h.mu.Unlock()
}

// Since observes the wall time elapsed since t0.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// HistStat is an immutable summary of a Histogram.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_s"`
	Min   float64 `json:"min_s"`
	Max   float64 `json:"max_s"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
}

// Stat summarizes the histogram. Quantiles are upper-bound estimates from
// the log2 buckets (within 2x of the true value).
func (h *Histogram) Stat() HistStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count == 0 {
		return st
	}
	st.Mean = h.sum / float64(h.count)
	quantile := func(q float64) float64 {
		target := int64(math.Ceil(q * float64(h.count)))
		var seen int64
		for i, n := range h.buckets {
			seen += n
			if seen >= target {
				b := bucketBound(i)
				if b > h.max {
					b = h.max
				}
				return b
			}
		}
		return h.max
	}
	st.P50, st.P90, st.P99 = quantile(0.50), quantile(0.90), quantile(0.99)
	return st
}

// sortedKeys returns the keys of m in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
