package gatesim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteVCD runs the functional simulator for the given number of clock
// cycles (lane 0 of each stimulus word) and dumps every net's value
// changes as a Value Change Dump file — the waveform artifact a Modelsim
// flow would produce, loadable in GTKWave. Time is in clock cycles, one
// tick per cycle.
func (s *Sim) WriteVCD(w io.Writer, stim func(step int) map[string]uint64, cycles int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "$version ageguard gatesim $end")
	fmt.Fprintln(bw, "$timescale 1ns $end")
	fmt.Fprintf(bw, "$scope module %s $end\n", s.nl.Name)

	nets := append([]string(nil), s.nets...)
	sort.Strings(nets)
	ids := make(map[string]string, len(nets))
	for i, n := range nets {
		ids[n] = vcdID(i)
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", ids[n], vcdName(n))
	}
	fmt.Fprintln(bw, "$upscope $end")
	fmt.Fprintln(bw, "$enddefinitions $end")

	prev := make(map[string]int8, len(nets))
	for n := range ids {
		prev[n] = -1
	}
	for cyc := 0; cyc < cycles; cyc++ {
		s.Step(stim(cyc))
		fmt.Fprintf(bw, "#%d\n", cyc)
		for _, n := range nets {
			idx := s.netIdx[n]
			v := int8(s.val[idx] & 1)
			if v != prev[n] {
				fmt.Fprintf(bw, "%d%s\n", v, ids[n])
				prev[n] = v
			}
		}
	}
	fmt.Fprintf(bw, "#%d\n", cycles)
	return bw.Flush()
}

// vcdID generates compact printable identifiers (!, ", #, ... as in
// standard VCD emitters).
func vcdID(i int) string {
	const lo, hi = 33, 127
	var b []byte
	for {
		b = append(b, byte(lo+i%(hi-lo)))
		i /= hi - lo
		if i == 0 {
			break
		}
		i--
	}
	return string(b)
}

// vcdName makes net names VCD-identifier safe.
func vcdName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		case c == '[':
			out = append(out, '(')
		case c == ']':
			out = append(out, ')')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
