// Package gatesim implements gate-level simulation of mapped netlists —
// the reproduction's substitute for the Modelsim flow of the paper.
//
// Two modes are provided:
//
//   - Sim: zero-delay, 64-way bit-parallel functional simulation. Used to
//     verify mapped netlists against their RTL and, with workload stimulus,
//     to extract per-net signal probabilities from which per-instance duty
//     cycles (lambda) are derived for the paper's dynamic aging-stress
//     annotation (Sec. 4.2).
//
//   - TimedSim (timed.go): event-driven simulation with per-arc NLDM
//     delays and clock-edge sampling, which injects timing errors exactly
//     when an over-budget path is actually sensitized — the paper's
//     SDF-annotated gate-level simulation for the image-quality study.
package gatesim

import (
	"fmt"

	"ageguard/internal/cells"
	"ageguard/internal/netlist"
)

// cellFunc resolves an instance's (possibly lambda-annotated) cell name to
// the catalog cell carrying its Boolean function.
func cellFunc(name string) (*cells.Cell, error) {
	if c, ok := cells.ByName(name); ok {
		return c, nil
	}
	if _, _, plain, err := netlist.SplitAnnotated(name); err == nil {
		if c, ok := cells.ByName(plain); ok {
			return c, nil
		}
	}
	return nil, fmt.Errorf("gatesim: unknown cell %q", name)
}

// CatalogLookup is a netlist.Lookup backed by the cell catalog, resolving
// lambda-annotated names too. It lets netlist structure checks work
// without a characterized library.
func CatalogLookup(cell string) (netlist.CellInfo, bool) {
	c, err := cellFunc(cell)
	if err != nil {
		return netlist.CellInfo{}, false
	}
	return netlist.CellInfo{
		Inputs: c.Inputs, Output: c.Output,
		Seq: c.Seq, Clock: c.Clock, Data: c.Data,
		AreaUm2: c.AreaUm2,
	}, true
}

type simInst struct {
	tt     uint64
	k      int
	inNets []int
	outNet int
}

type simDFF struct {
	dNet, qNet int
}

// Sim is a zero-delay cycle simulator carrying 64 independent vectors per
// step (one per bit of the input words).
type Sim struct {
	nl      *netlist.Netlist
	netIdx  map[string]int
	nets    []string
	comb    []simInst // in topological order
	dffs    []simDFF
	val     []uint64 // current net values (bit-parallel)
	state   []uint64 // DFF captured values, aligned with dffs
	inNets  []int
	outNets []int
}

// New builds a simulator for the netlist. Annotated cell names resolve to
// their base function.
func New(nl *netlist.Netlist) (*Sim, error) {
	s := &Sim{nl: nl, netIdx: map[string]int{}}
	id := func(net string) int {
		if i, ok := s.netIdx[net]; ok {
			return i
		}
		i := len(s.nets)
		s.netIdx[net] = i
		s.nets = append(s.nets, net)
		return i
	}
	order, err := nl.Levelize(CatalogLookup)
	if err != nil {
		return nil, err
	}
	for _, in := range order {
		c, err := cellFunc(in.Cell)
		if err != nil {
			return nil, err
		}
		if c.Seq {
			s.dffs = append(s.dffs, simDFF{
				dNet: id(in.Pins[c.Data]),
				qNet: id(in.Pins[c.Output]),
			})
			continue
		}
		si := simInst{tt: c.TruthTable(), k: c.NumInputs(), outNet: id(in.Pins[c.Output])}
		for _, p := range c.Inputs {
			si.inNets = append(si.inNets, id(in.Pins[p]))
		}
		s.comb = append(s.comb, si)
	}
	for _, pi := range nl.Inputs {
		s.inNets = append(s.inNets, id(pi))
	}
	for _, po := range nl.Outputs {
		s.outNets = append(s.outNets, id(po))
	}
	s.val = make([]uint64, len(s.nets))
	s.state = make([]uint64, len(s.dffs))
	return s, nil
}

// evalInst computes the bit-parallel output of a cell by minterm expansion
// of its truth table.
func evalInst(si *simInst, val []uint64) uint64 {
	var out uint64
	n := 1 << uint(si.k)
	for m := 0; m < n; m++ {
		if si.tt>>uint(m)&1 == 0 {
			continue
		}
		word := ^uint64(0)
		for i := 0; i < si.k; i++ {
			v := val[si.inNets[i]]
			if m>>uint(i)&1 == 0 {
				v = ^v
			}
			word &= v
			if word == 0 {
				break
			}
		}
		out |= word
	}
	return out
}

// propagate evaluates the combinational logic with current PI and DFF
// state values.
func (s *Sim) propagate() {
	for i := range s.dffs {
		s.val[s.dffs[i].qNet] = s.state[i]
	}
	for i := range s.comb {
		si := &s.comb[i]
		s.val[si.outNet] = evalInst(si, s.val)
	}
}

// Step applies one clock cycle: sets primary inputs (64 vectors packed per
// word, keyed by input name), evaluates, captures flip-flops, and returns
// the primary-output words observed after capture.
func (s *Sim) Step(inputs map[string]uint64) map[string]uint64 {
	for i, pi := range s.nl.Inputs {
		s.val[s.inNets[i]] = inputs[pi]
	}
	s.propagate()
	for i := range s.dffs {
		s.state[i] = s.val[s.dffs[i].dNet]
		s.val[s.dffs[i].qNet] = s.state[i] // outputs reflect the new edge
	}
	out := make(map[string]uint64, len(s.outNets))
	for i, po := range s.nl.Outputs {
		out[po] = s.val[s.outNets[i]]
	}
	return out
}

// Eval runs a purely combinational netlist (or one whose registers should
// be treated as wires for functional checking) on one set of input words
// and returns the primary outputs *before* any register capture.
func (s *Sim) Eval(inputs map[string]uint64) map[string]uint64 {
	for i, pi := range s.nl.Inputs {
		s.val[s.inNets[i]] = inputs[pi]
	}
	// Treat DFFs as transparent for functional checks: copy D through.
	for i := range s.dffs {
		s.state[i] = 0
	}
	s.propagate()
	// Two passes let input-register outputs settle through the logic.
	for i := range s.dffs {
		s.state[i] = s.val[s.dffs[i].dNet]
	}
	s.propagate()
	for i := range s.dffs {
		s.state[i] = s.val[s.dffs[i].dNet]
	}
	s.propagate()
	out := make(map[string]uint64, len(s.outNets))
	for i, po := range s.nl.Outputs {
		out[po] = s.val[s.outNets[i]]
	}
	return out
}

// NetNames returns all net names known to the simulator.
func (s *Sim) NetNames() []string { return s.nets }

// Activities runs the stimulus for the given number of 64-vector steps and
// returns the per-net signal probability P(net = 1) — the input the
// paper's dynamic-stress flow derives transistor duty cycles from.
func (s *Sim) Activities(stim func(step int) map[string]uint64, steps int) map[string]float64 {
	ones := make([]int, len(s.nets))
	for k := 0; k < steps; k++ {
		s.Step(stim(k))
		for i, v := range s.val {
			ones[i] += popcount64(v)
		}
	}
	total := float64(steps * 64)
	out := make(map[string]float64, len(s.nets))
	for i, n := range s.nets {
		out[n] = float64(ones[i]) / total
	}
	return out
}

func popcount64(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// DeriveLambdas converts per-net signal probabilities into per-instance
// duty cycles following the paper's model: in static CMOS the pMOS devices
// of a cell are stressed while their gate inputs are low and the nMOS
// devices while high, so Avg(lambdaP) = mean over input pins of P(pin=0)
// and Avg(lambdaN) = mean of P(pin=1).
func DeriveLambdas(nl *netlist.Netlist, prob map[string]float64) (map[string]netlist.Lambdas, error) {
	out := make(map[string]netlist.Lambdas, len(nl.Insts))
	for _, in := range nl.Insts {
		c, err := cellFunc(in.Cell)
		if err != nil {
			return nil, err
		}
		out[in.Name] = lambdasFor(c, in, prob)
	}
	return out, nil
}

// lambdasFor derives one instance's duty cycles from its input signal
// probabilities. Cells with no inputs (tie-high/tie-low) would divide
// by zero under the mean-over-inputs rule and emit NaN; their devices
// instead sit at the tied output level the whole time, so the stress
// follows that level: a tie-high output holds every driven gate input
// at 1 (full nMOS stress downstream, and the cell's own pull-up network
// conducts continuously), symmetrically for tie-low.
func lambdasFor(c *cells.Cell, in *netlist.Inst, prob map[string]float64) netlist.Lambdas {
	if len(c.Inputs) == 0 {
		pn := prob[in.Pins[c.Output]]
		return netlist.Lambdas{P: 1 - pn, N: pn}
	}
	var sum float64
	for _, p := range c.Inputs {
		sum += prob[in.Pins[p]]
	}
	pn := sum / float64(len(c.Inputs))
	return netlist.Lambdas{P: 1 - pn, N: pn}
}
