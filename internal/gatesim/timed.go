package gatesim

import (
	"container/heap"
	"fmt"

	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

// TimedSim is an event-driven gate-level simulator with per-arc NLDM
// delays (the equivalent of SDF-annotated Modelsim simulation in the
// paper's flow). Flip-flops sample their data inputs exactly at the clock
// edge, so a combinational path that exceeds the clock period corrupts
// the captured value only in cycles where the late transition is actually
// sensitized — the mechanism behind the paper's image-quality results.
type TimedSim struct {
	nl     *netlist.Netlist
	netIdx map[string]int
	nets   []string

	insts []timedInst
	dffs  []timedDFF
	sinks [][]sinkRef // per net: combinational pins it feeds

	val     []bool
	state   []bool // per dff
	pendSeq []int  // per net: sequence of the pending event (0 = none)
	pendVal []bool

	queue eventQueue
	seq   int

	// maxSetup is the largest flip-flop setup time in the design; data is
	// sampled that long before the clock edge, matching STA's capture
	// requirement (arrival + setup <= period).
	maxSetup float64

	inNets  []int
	outNets []int
}

type sinkRef struct {
	inst int // index into insts
	pin  int // input pin index
}

type timedInst struct {
	tt     uint64
	k      int
	inNets []int
	outNet int
	// delay[pin][inEdge][outEdge]; seconds.
	delay [][2][2]float64
}

type timedDFF struct {
	dNet, qNet int
	clkq       [2]float64 // per output edge
}

type event struct {
	t   float64
	seq int
	net int
	val bool
}

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NewTimed builds a timed simulator using the library's delay tables
// evaluated at the STA-annotated slews and loads of each net (res must
// come from sta.Analyze of the same netlist and library).
func NewTimed(nl *netlist.Netlist, lib *liberty.Library, res *sta.Result) (*TimedSim, error) {
	ts := &TimedSim{nl: nl, netIdx: map[string]int{}}
	id := func(net string) int {
		if i, ok := ts.netIdx[net]; ok {
			return i
		}
		i := len(ts.nets)
		ts.netIdx[net] = i
		ts.nets = append(ts.nets, net)
		return i
	}
	look := netlist.LibraryLookup(lib)
	order, err := nl.Levelize(look)
	if err != nil {
		return nil, err
	}
	defaultSlew := 20 * units.Ps
	slewOf := func(net string, e liberty.Edge) float64 {
		if s, ok := res.Slew[net]; ok && s[e] > 0 {
			return s[e]
		}
		return defaultSlew
	}
	loadOf := func(net string) float64 {
		if l, ok := res.Load[net]; ok {
			return l
		}
		return 1 * units.FF
	}
	for _, in := range order {
		ct, ok := lib.Cell(in.Cell)
		if !ok {
			return nil, fmt.Errorf("gatesim: cell %q not in library", in.Cell)
		}
		cell, err := cellFunc(in.Cell)
		if err != nil {
			return nil, err
		}
		outNet := in.Pins[ct.Output]
		load := loadOf(outNet)
		if ct.Seq {
			if ct.SetupPS > ts.maxSetup {
				ts.maxSetup = ct.SetupPS
			}
			d := timedDFF{dNet: id(in.Pins[ct.Data]), qNet: id(outNet)}
			arcs := ct.ArcsFor(ct.Clock)
			if len(arcs) == 0 {
				return nil, fmt.Errorf("gatesim: %s lacks a clock arc", in.Cell)
			}
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				d.clkq[e] = arcs[0].Delay[e].At(defaultSlew, load)
			}
			ts.dffs = append(ts.dffs, d)
			continue
		}
		ti := timedInst{tt: cell.TruthTable(), k: cell.NumInputs(), outNet: id(outNet)}
		ti.inNets = make([]int, ti.k)
		ti.delay = make([][2][2]float64, ti.k)
		for pi, pin := range cell.Inputs {
			inNet := in.Pins[pin]
			ti.inNets[pi] = id(inNet)
			// Delay per (input edge, output edge): pick the arc whose
			// sense links them; fall back to any arc on the pin.
			for ie := liberty.Rise; ie <= liberty.Fall; ie++ {
				for oe := liberty.Rise; oe <= liberty.Fall; oe++ {
					var chosen *liberty.Arc
					for ai := range ct.Arcs {
						a := &ct.Arcs[ai]
						if a.Pin != pin || a.Delay[oe] == nil {
							continue
						}
						if a.Sense.InputEdge(oe) == ie {
							chosen = a
							break
						}
						if chosen == nil {
							chosen = a
						}
					}
					if chosen == nil {
						return nil, fmt.Errorf("gatesim: %s pin %s has no arc", in.Cell, pin)
					}
					ti.delay[pi][ie][oe] = chosen.Delay[oe].At(slewOf(inNet, ie), load)
				}
			}
		}
		ts.insts = append(ts.insts, ti)
	}
	// Sink lists for event fanout.
	ts.sinks = make([][]sinkRef, len(ts.nets))
	for ii := range ts.insts {
		for pi, n := range ts.insts[ii].inNets {
			ts.sinks[n] = append(ts.sinks[n], sinkRef{inst: ii, pin: pi})
		}
	}
	for _, pi := range nl.Inputs {
		ts.inNets = append(ts.inNets, id(pi))
	}
	for _, po := range nl.Outputs {
		ts.outNets = append(ts.outNets, id(po))
	}
	// Re-derive sink lists to cover nets created late (inNets/outNets ids).
	for len(ts.sinks) < len(ts.nets) {
		ts.sinks = append(ts.sinks, nil)
	}
	ts.val = make([]bool, len(ts.nets))
	ts.state = make([]bool, len(ts.dffs))
	ts.pendSeq = make([]int, len(ts.nets))
	ts.pendVal = make([]bool, len(ts.nets))
	// Settle the combinational logic to a consistent initial state
	// (all primary inputs and register outputs low): instances are
	// already in topological order.
	for i := range ts.insts {
		ti := &ts.insts[i]
		ts.val[ti.outNet] = evalBool(ti, ts.val)
	}
	return ts, nil
}

func evalBool(ti *timedInst, val []bool) bool {
	var idx uint
	for i := 0; i < ti.k; i++ {
		if val[ti.inNets[i]] {
			idx |= 1 << uint(i)
		}
	}
	return ti.tt>>idx&1 == 1
}

// schedule posts an inertial-delay event: a newer scheduled value for a
// net replaces any pending one.
func (ts *TimedSim) schedule(t float64, net int, v bool) {
	// If the net already carries v and nothing is pending, skip.
	if ts.pendSeq[net] == 0 && ts.val[net] == v {
		return
	}
	if ts.pendSeq[net] != 0 && ts.pendVal[net] == v {
		return // same value already pending: keep earlier edge (transport-ish)
	}
	ts.seq++
	ts.pendSeq[net] = ts.seq
	ts.pendVal[net] = v
	heap.Push(&ts.queue, event{t: t, seq: ts.seq, net: net, val: v})
}

// apply commits a net change and propagates to sinks at time t.
func (ts *TimedSim) apply(t float64, net int, v bool) {
	if ts.val[net] == v {
		return
	}
	ts.val[net] = v
	edge := liberty.Fall
	if v {
		edge = liberty.Rise
	}
	for _, s := range ts.sinks[net] {
		ti := &ts.insts[s.inst]
		newOut := evalBool(ti, ts.val)
		outEdge := liberty.Fall
		if newOut {
			outEdge = liberty.Rise
		}
		ts.schedule(t+ti.delay[s.pin][edge][outEdge], ti.outNet, newOut)
	}
}

// run processes events with t < until; returns when the queue is drained
// past the horizon (pending events beyond it remain queued).
func (ts *TimedSim) run(until float64) {
	for ts.queue.Len() > 0 {
		if ts.queue[0].t >= until {
			return
		}
		ev := heap.Pop(&ts.queue).(event)
		if ev.seq != ts.pendSeq[ev.net] {
			continue // superseded
		}
		ts.pendSeq[ev.net] = 0
		ts.apply(ev.t, ev.net, ev.val)
	}
}

// flush applies every remaining event irrespective of time, iterating
// until the circuit settles (start-of-cycle steady state).
func (ts *TimedSim) flush() {
	for ts.queue.Len() > 0 {
		ev := heap.Pop(&ts.queue).(event)
		if ev.seq != ts.pendSeq[ev.net] {
			continue
		}
		ts.pendSeq[ev.net] = 0
		ts.apply(ev.t, ev.net, ev.val)
	}
}

// Cycle simulates one clock period: at the edge every flip-flop captures
// its (possibly still-transitioning) data input, Q outputs change after
// their clock-to-Q delays, primary inputs take their new values, and
// events propagate until the next edge. Captured values are returned for
// primary outputs (output-register Q values after this edge).
func (ts *TimedSim) Cycle(inputs map[string]bool, period float64) map[string]bool {
	// Clock edge: capture D values exactly as they are at the edge.
	// A combinational path still in flight (its event beyond the horizon
	// of the previous cycle) is captured at its OLD value — the timing
	// error the paper's system-level study measures.
	for i := range ts.dffs {
		ts.state[i] = ts.val[ts.dffs[i].dNet]
	}
	// Let leftover transitions settle (their timestamps belong to the
	// previous cycle): the next cycle starts from the steady state of the
	// previous inputs, as in a real circuit.
	ts.flush()
	// Q outputs change after their clock-to-Q delays.
	for i := range ts.dffs {
		d := &ts.dffs[i]
		edge := liberty.Fall
		if ts.state[i] {
			edge = liberty.Rise
		}
		ts.schedule(d.clkq[edge], d.qNet, ts.state[i])
	}
	// New primary-input values arrive shortly after the edge.
	for i, pi := range ts.nl.Inputs {
		ts.seq++
		net := ts.inNets[i]
		ts.pendSeq[net] = ts.seq
		ts.pendVal[net] = inputs[pi]
		heap.Push(&ts.queue, event{t: 1 * units.Ps, seq: ts.seq, net: net, val: inputs[pi]})
	}
	// Propagate until the capture point: data must arrive a setup time
	// before the next edge to be latched, exactly as STA requires.
	horizon := period - ts.maxSetup
	if horizon < 0 {
		horizon = 0
	}
	ts.run(horizon)
	out := map[string]bool{}
	for i, po := range ts.nl.Outputs {
		out[po] = ts.val[ts.outNets[i]]
	}
	return out
}

// Settle flushes all pending events (as if the clock were stopped),
// used between workload phases.
func (ts *TimedSim) Settle() { ts.flush() }

// Value returns the current logic value of a named net.
func (ts *TimedSim) Value(net string) bool {
	if i, ok := ts.netIdx[net]; ok {
		return ts.val[i]
	}
	return false
}
