package gatesim

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/cells"
	"ageguard/internal/char"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

func testLib(t testing.TB, s aging.Scenario) *liberty.Library {
	t.Helper()
	lib, err := char.CachedConfig().Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func xorNetlist() *netlist.Netlist {
	nl := netlist.New("x")
	nl.Inputs = []string{"a", "b"}
	nl.Outputs = []string{"y"}
	nl.AddInst("g", "XOR2_X1", map[string]string{"A": "a", "B": "b", "Z": "y"})
	return nl
}

func TestSimCombinational(t *testing.T) {
	sim, err := New(xorNetlist())
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Eval(map[string]uint64{"a": 0b0101, "b": 0b0011})
	if out["y"]&0xf != 0b0110 {
		t.Errorf("xor = %04b", out["y"]&0xf)
	}
}

func TestSimAnnotatedCells(t *testing.T) {
	nl := xorNetlist()
	nl.Insts[0].Cell = "XOR2_X1_0.4_0.6"
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Eval(map[string]uint64{"a": 0b1100, "b": 0b1010})
	if out["y"]&0xf != 0b0110 {
		t.Errorf("annotated xor = %04b", out["y"]&0xf)
	}
}

func registered() *netlist.Netlist {
	nl := netlist.New("reg")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"q"}
	nl.AddInst("inv", "INV_X1", map[string]string{"A": "a", "ZN": "d"})
	nl.AddInst("r", "DFF_X1", map[string]string{"D": "d", "CK": netlist.ClockNet, "Q": "q"})
	return nl
}

func TestSimSequentialStep(t *testing.T) {
	sim, err := New(registered())
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Step(map[string]uint64{"a": 0})
	if out["q"]&1 != 1 {
		t.Errorf("q after first edge = %b, want 1 (inverted 0)", out["q"]&1)
	}
	out = sim.Step(map[string]uint64{"a": ^uint64(0)})
	if out["q"]&1 != 0 {
		t.Errorf("q = %b, want 0", out["q"]&1)
	}
}

func TestActivities(t *testing.T) {
	sim, err := New(xorNetlist())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	prob := sim.Activities(func(int) map[string]uint64 {
		return map[string]uint64{"a": rng.Uint64(), "b": rng.Uint64()}
	}, 200)
	for _, net := range []string{"a", "b", "y"} {
		if math.Abs(prob[net]-0.5) > 0.05 {
			t.Errorf("P(%s=1) = %v, want ~0.5 under random stimulus", net, prob[net])
		}
	}
}

func TestActivitiesBiased(t *testing.T) {
	// Constant-zero input: XOR output equals b.
	sim, _ := New(xorNetlist())
	rng := rand.New(rand.NewSource(2))
	prob := sim.Activities(func(int) map[string]uint64 {
		return map[string]uint64{"a": 0, "b": rng.Uint64() & rng.Uint64()} // P(b)~0.25
	}, 400)
	if prob["a"] != 0 {
		t.Errorf("P(a) = %v, want 0", prob["a"])
	}
	if math.Abs(prob["b"]-0.25) > 0.05 {
		t.Errorf("P(b) = %v, want ~0.25", prob["b"])
	}
	if math.Abs(prob["y"]-prob["b"]) > 1e-9 {
		t.Errorf("P(y) = %v, want = P(b)", prob["y"])
	}
}

func TestDeriveLambdas(t *testing.T) {
	nl := xorNetlist()
	prob := map[string]float64{"a": 0.2, "b": 0.6}
	l, err := DeriveLambdas(nl, prob)
	if err != nil {
		t.Fatal(err)
	}
	g := l["g"]
	if math.Abs(g.N-0.4) > 1e-9 || math.Abs(g.P-0.6) > 1e-9 {
		t.Errorf("lambdas = %+v, want N=0.4 P=0.6", g)
	}
	// Complementarity invariant of static CMOS (paper Sec. 4.2).
	if math.Abs(g.P+g.N-1) > 1e-9 {
		t.Error("lambdaP + lambdaN != 1")
	}
}

// timedChain builds a registered chain of n inverters for timing-error
// experiments.
func timedChain(t *testing.T, n int, lib *liberty.Library) (*netlist.Netlist, *sta.Result) {
	t.Helper()
	nl := netlist.New("chain")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"q"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "w0"})
	prev := "w0"
	for i := 0; i < n; i++ {
		out := "w" + string(rune('1'+i))
		nl.AddInst("i"+string(rune('0'+i)), "INV_X1", map[string]string{"A": prev, "ZN": out})
		prev = out
	}
	nl.AddInst("rout", "DFF_X1", map[string]string{"D": prev, "CK": netlist.ClockNet, "Q": "q"})
	res, err := sta.Analyze(context.Background(), nl, lib, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nl, res
}

func TestTimedCorrectAtRelaxedClock(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	nl, res := timedChain(t, 4, lib) // even #inverters: q = a, 2 cycles later
	ts, err := NewTimed(nl, lib, res)
	if err != nil {
		t.Fatal(err)
	}
	period := res.CP * 1.2 // comfortably meets timing
	seqIn := []bool{true, false, true, true, false, false, true, false}
	var got []bool
	for _, v := range seqIn {
		out := ts.Cycle(map[string]bool{"a": v}, period)
		got = append(got, out["q"])
	}
	// Latency 2: got[k] should equal seqIn[k-2].
	for k := 2; k < len(seqIn); k++ {
		if got[k] != seqIn[k-2] {
			t.Errorf("cycle %d: q = %v, want %v", k, got[k], seqIn[k-2])
		}
	}
}

func TestTimedErrorsAtOverClock(t *testing.T) {
	lib := testLib(t, aging.Fresh())
	nl, res := timedChain(t, 4, lib)
	ts, err := NewTimed(nl, lib, res)
	if err != nil {
		t.Fatal(err)
	}
	// Clock far below the path delay: the chain output cannot reach the
	// capture register in time, so captured values must be wrong for at
	// least some cycles of an alternating pattern.
	period := res.CP * 0.3
	var errors int
	var seqIn []bool
	for k := 0; k < 16; k++ {
		seqIn = append(seqIn, k%2 == 0)
	}
	var got []bool
	for _, v := range seqIn {
		out := ts.Cycle(map[string]bool{"a": v}, period)
		got = append(got, out["q"])
	}
	for k := 2; k < len(seqIn); k++ {
		if got[k] != seqIn[k-2] {
			errors++
		}
	}
	if errors == 0 {
		t.Error("over-clocked chain produced no timing errors")
	}
}

func TestTimedAgedSlowerThanFresh(t *testing.T) {
	// With a period between the fresh and aged path delays, the fresh
	// netlist samples correctly while the aged one fails.
	fresh := testLib(t, aging.Fresh())
	aged := testLib(t, aging.WorstCase(10))
	nl, resF := timedChain(t, 6, fresh)
	resA, err := sta.Analyze(context.Background(), nl, aged, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resA.CP <= resF.CP {
		t.Fatalf("aged CP %s <= fresh %s", units.PsString(resA.CP), units.PsString(resF.CP))
	}
	period := (resF.CP + resA.CP) / 2
	run := func(lib *liberty.Library, res *sta.Result) int {
		ts, err := NewTimed(nl, lib, res)
		if err != nil {
			t.Fatal(err)
		}
		miss := 0
		var got []bool
		var in []bool
		for k := 0; k < 20; k++ {
			v := k%2 == 0
			in = append(in, v)
			out := ts.Cycle(map[string]bool{"a": v}, period)
			got = append(got, out["q"])
		}
		for k := 2; k < len(in); k++ {
			if got[k] != in[k-2] {
				miss++
			}
		}
		return miss
	}
	if m := run(fresh, resF); m != 0 {
		t.Errorf("fresh design missed %d captures at its own speed", m)
	}
	if m := run(aged, resA); m == 0 {
		t.Error("aged design met timing at a period below its CP")
	}
}

func TestCatalogLookup(t *testing.T) {
	ci, ok := CatalogLookup("NAND2_X1")
	if !ok || ci.Output != "ZN" || len(ci.Inputs) != 2 {
		t.Fatalf("CatalogLookup = %+v %v", ci, ok)
	}
	ci, ok = CatalogLookup("NAND2_X1_0.4_0.6")
	if !ok || ci.Output != "ZN" {
		t.Fatal("annotated lookup failed")
	}
	if _, ok := CatalogLookup("NOPE_X9"); ok {
		t.Error("unknown cell accepted")
	}
}

func TestWriteVCD(t *testing.T) {
	sim, err := New(registered())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	vals := []uint64{0, 1, 1, 0}
	err = sim.WriteVCD(&buf, func(k int) map[string]uint64 {
		return map[string]uint64{"a": vals[k]}
	}, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module reg $end",
		"$var wire 1",
		"$enddefinitions $end",
		"#0", "#3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Net "a" must toggle at least twice across the stimulus.
	if strings.Count(text, "\n1!") == 0 && strings.Count(text, "\n0!") == 0 {
		// identifiers are assigned alphabetically; just require some
		// value-change lines exist after #1
		if !strings.Contains(text, "#1\n") {
			t.Error("no value changes recorded")
		}
	}
}

func TestVCDIdentifiers(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
	if vcdName("y0[13]") != "y0(13)" {
		t.Errorf("vcdName = %q", vcdName("y0[13]"))
	}
}

func TestLambdasForConstantCell(t *testing.T) {
	// A zero-input tie cell used to divide by len(inputs) == 0 and emit
	// NaN duty cycles into the aging scenarios. Stress follows the tied
	// output level instead: tie-high means full nMOS stress, tie-low full
	// pMOS stress.
	inst := func(net string) *netlist.Inst {
		return &netlist.Inst{Name: "t", Cell: "TIE", Pins: map[string]string{"Z": net}}
	}
	prob := map[string]float64{"one": 1, "zero": 0}
	high := lambdasFor(&cells.Cell{Name: "TIEH_X1", Output: "Z"}, inst("one"), prob)
	if math.IsNaN(high.P) || math.IsNaN(high.N) {
		t.Fatalf("tie-high lambdas are NaN: %+v", high)
	}
	if high.N != 1 || high.P != 0 {
		t.Errorf("tie-high lambdas = %+v, want N=1 P=0", high)
	}
	low := lambdasFor(&cells.Cell{Name: "TIEL_X1", Output: "Z"}, inst("zero"), prob)
	if low.N != 0 || low.P != 1 {
		t.Errorf("tie-low lambdas = %+v, want N=0 P=1", low)
	}
}

func TestAnnotatedScenariosRejectNaN(t *testing.T) {
	// Even if a NaN duty cycle reaches annotation, scenario validation
	// refuses to characterize it.
	if err := aging.WorstCase(10).WithLambda(math.NaN(), 0.5).Validate(); err == nil {
		t.Error("Validate accepted a NaN duty cycle")
	}
}
