package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ageguard/pkg/ageguard/api"
)

// postMC posts one /v1/mcguardband request and returns the raw body.
func postMC(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/v1/mcguardband", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if sum := resp.Header.Get(api.BodySumHeader); sum != api.BodySum(raw) {
		t.Fatalf("body checksum mismatch")
	}
	return raw
}

// TestMCGuardbandDeterministicAndMemoized asserts the endpoint's two
// determinism layers: a warm repeat on the same server replays the LRU'd
// distribution byte-identically, and a fresh server instance — empty
// in-memory caches, same configuration — recomputes the identical bytes
// (the counter-based sample streams make the whole pipeline a pure
// function of the request).
func TestMCGuardbandDeterministicAndMemoized(t *testing.T) {
	dir := sharedDir(t)
	const body = `{"circuit":"RISC-5P","scenario":{"kind":"worst"},"samples":6,"seed":42,"bins":8}`

	s1 := New(quickConfig(dir), nil)
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	cold := postMC(t, ts1.URL, body)
	missesAfterCold := s1.Registry().Snapshot().Counters["serve.cache.misses"]
	warm := postMC(t, ts1.URL, body)
	if string(cold) != string(warm) {
		t.Errorf("warm body differs from cold:\ncold %s\nwarm %s", cold, warm)
	}
	if got := s1.Registry().Snapshot().Counters["serve.cache.misses"]; got != missesAfterCold {
		t.Errorf("warm repeat missed the cache (%d -> %d misses)", missesAfterCold, got)
	}

	s2 := New(quickConfig(dir), nil)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	recomputed := postMC(t, ts2.URL, body)
	if string(cold) != string(recomputed) {
		t.Errorf("fresh server recomputed different bytes:\nfirst  %s\nsecond %s", cold, recomputed)
	}

	// A different seed must give a different distribution (the parameters
	// really reach the sampler).
	other := postMC(t, ts1.URL,
		`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"samples":6,"seed":43,"bins":8}`)
	if string(other) == string(cold) {
		t.Error("seed 43 reproduced seed 42's distribution")
	}
}
