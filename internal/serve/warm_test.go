package serve

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

// populateCache runs one guardband query against a throwaway server so
// dir holds the library (and netlist) disk-cache files a restart would
// find.
func populateCache(t *testing.T, dir string) {
	t.Helper()
	cl, shutdown := startServer(t, quickConfig(dir))
	defer shutdown()
	_, err := cl.Guardband(context.Background(), api.GuardbandRequest{
		Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// waitReady polls /readyz until it answers 200 (or the deadline hits).
func waitReady(t *testing.T, cl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := cl.Readyz(context.Background()); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func alibFiles(t *testing.T, dir string) []string {
	t.Helper()
	out, err := filepath.Glob(filepath.Join(dir, "*.alib"))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWarmStartServesRepeatQueryWithoutRecharacterizing(t *testing.T) {
	dir := t.TempDir()
	populateCache(t, dir)
	if n := len(alibFiles(t, dir)); n != 2 {
		t.Fatalf("expected 2 cached libraries (fresh + aged), found %d", n)
	}

	cfg := quickConfig(dir)
	cfg.WarmStart = true
	cl, shutdown := startServer(t, cfg)
	defer shutdown()
	waitReady(t, cl)

	if _, err := cl.Guardband(context.Background(), api.GuardbandRequest{
		Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmStartPrePopulatesLRU(t *testing.T) {
	dir := t.TempDir()
	populateCache(t, dir)

	cfg := quickConfig(dir)
	cfg.WarmStart = true
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(sctx, ln) }()
	defer func() { cancel(); <-done }()

	cl := client.New("http://" + ln.Addr().String())
	waitReady(t, cl)

	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve.warm.loaded"]; got != 2 {
		t.Fatalf("warm.loaded = %d, want 2 (fresh + aged library)", got)
	}
	if _, err := cl.Guardband(context.Background(), api.GuardbandRequest{
		Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10},
	}); err != nil {
		t.Fatal(err)
	}
	// Both library lookups must hit the pre-populated LRU: the only
	// misses are the netlist and the two analyzer compilations.
	snap = s.Registry().Snapshot()
	if got := snap.Counters["serve.cache.misses"]; got != 3 {
		t.Errorf("cache misses = %d, want 3 (netlist + 2 analyzers; libraries warm)", got)
	}
	if got := snap.Counters["serve.cache.hits"]; got < 2 {
		t.Errorf("cache hits = %d, want >= 2 (both libraries)", got)
	}
}

func TestWarmStartQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	populateCache(t, dir)
	files := alibFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no cached libraries to corrupt")
	}
	// Flip one data-region byte: the trailing checksum catches it even
	// though the file still parses as a structurally valid library.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x04
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := quickConfig(dir)
	cfg.WarmStart = true
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(sctx, ln) }()
	defer func() { cancel(); <-done }()

	cl := client.New("http://" + ln.Addr().String())
	waitReady(t, cl)

	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve.warm.quarantined"]; got != 1 {
		t.Errorf("warm.quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(files[0] + quarantineSuffix); err != nil {
		t.Errorf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(files[0]); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt file still present under its cache name")
	}
	// The quarantined scenario re-characterizes cleanly on demand.
	if _, err := cl.Guardband(context.Background(), api.GuardbandRequest{
		Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubberQuarantinesRottenFile(t *testing.T) {
	dir := t.TempDir()
	populateCache(t, dir)
	files := alibFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("no cached libraries")
	}

	cfg := quickConfig(dir)
	cfg.ScrubInterval = 20 * time.Millisecond
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(sctx, ln) }()
	defer func() { cancel(); <-done }()

	cl := client.New("http://" + ln.Addr().String())
	waitReady(t, cl)

	// Rot a file while the daemon runs; the scrubber must notice.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x10
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Wait for the quarantine AND a fully completed sweep — the rename
	// happens mid-pass, so checking passes right after spotting the
	// .corrupt file would race the tail of that sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, statErr := os.Stat(files[0] + quarantineSuffix)
		passes := s.Registry().Snapshot().Counters["serve.scrub.passes"]
		if statErr == nil && passes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber: quarantined=%v passes=%d after 10s", statErr == nil, passes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve.scrub.quarantined"]; got != 1 {
		t.Errorf("scrub.quarantined = %d, want 1", got)
	}
	// The healthy file survived the sweeps.
	healthy := 0
	for _, f := range alibFiles(t, dir) {
		if !strings.HasSuffix(f, quarantineSuffix) {
			healthy++
		}
	}
	if healthy != len(files)-1 {
		t.Errorf("healthy files = %d, want %d", healthy, len(files)-1)
	}
}

func TestReadinessLifecycle(t *testing.T) {
	// Readiness must go false -> true -> false across warm-up and drain
	// while liveness stays true throughout.
	dir := t.TempDir()
	cfg := quickConfig(dir)
	cfg.WarmStart = true
	cfg.DrainGrace = 200 * time.Millisecond
	s := New(cfg, nil)
	s.warmFence = make(chan struct{}) // hold the scan so warming is observable
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(sctx, ln) }()

	cl := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("liveness during warm-up: %v", err)
	}
	var apiErr *client.APIError
	if err := cl.Readyz(ctx); !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
		t.Fatalf("readiness during warm-up = %v, want 503", err)
	}

	close(s.warmFence)
	waitReady(t, cl)

	cancel() // begin the drain; the grace window keeps the listener open
	drainDeadline := time.Now().Add(150 * time.Millisecond)
	sawNotReady := false
	for time.Now().Before(drainDeadline) {
		if err := cl.Readyz(ctx); errors.As(err, &apiErr) && apiErr.StatusCode == 503 {
			sawNotReady = true
			if err := cl.Healthz(ctx); err != nil {
				t.Errorf("liveness during drain grace: %v", err)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawNotReady {
		t.Error("readiness never went false during the drain grace window")
	}
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v", err)
	}
}
