package serve

import (
	"context"
	"os"
	"strconv"
	"testing"
)

// TestBenchPR9Emit produces BENCH_PR9.json: one /v1/batch request
// versus the same 32 heterogeneous items as sequential singles, cold
// and warm (see EXPERIMENTS.md, "BENCH_PR9"). Skipped unless
// BENCH_PR9_OUT names the output file; BENCH_PR9_ITERS overrides the
// warm-phase repetition count (1 is the verify smoke — wall-clock
// ratios are too noisy to gate on a single warm lap, so only the full
// run asserts the speed floor; bit-identity is asserted always).
func TestBenchPR9Emit(t *testing.T) {
	out := os.Getenv("BENCH_PR9_OUT")
	if out == "" {
		t.Skip("set BENCH_PR9_OUT to emit the benchmark report")
	}
	lg := BatchLoadgenConfig{Out: out}
	if s := os.Getenv("BENCH_PR9_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_PR9_ITERS=%q", s)
		}
		lg.Iters = n
	}

	rep, err := LoadgenBatch(context.Background(), quickConfig(""), lg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold: singles %.3fs, batch %.3fs (%.2fx)",
		rep.ColdSinglesS, rep.ColdBatchS, rep.ColdBatchVsSingles)
	t.Logf("warm: singles %.5fs, batch %.5fs (%.2fx), %d unique fills for %d items",
		rep.WarmSinglesS, rep.WarmBatchS, rep.WarmBatchVsSingles,
		rep.UniqueFills, rep.BatchItems)

	if !rep.ItemsBitIdentical {
		t.Error("batch answers are not bit-identical to the singles")
	}
	if rep.BatchItems != int64(rep.Items) {
		t.Errorf("batch served %d items, want %d", rep.BatchItems, rep.Items)
	}
	if rep.UniqueFills >= int64(rep.Items) {
		t.Errorf("planner deduped nothing: %d fills for %d items", rep.UniqueFills, rep.Items)
	}
	if rep.Iters > 1 && rep.WarmBatchVsSingles > 0.25 {
		t.Errorf("warm batch took %.0f%% of sequential singles, acceptance floor is 25%%",
			100*rep.WarmBatchVsSingles)
	}
}
