package serve

import (
	"context"
	"os"
	"time"

	"ageguard/internal/char"
	"ageguard/internal/obs"
)

// Crash-safe warm start and the background scrubber.
//
// A daemon killed mid-run loses its in-memory LRU but not the disk
// caches its characterizations left behind. On boot the warm-start scan
// walks the library cache directory, verifies every entry written for
// this config hash (trailing #SUM checksum for new files, structural
// ENDLIB/bounds checks for legacy ones) and pre-populates the LRU, so
// the first repeat query after a restart is served from the warm path
// instead of re-characterizing. Files that fail verification are
// quarantined — renamed aside with a .corrupt suffix — so the next miss
// re-characterizes cleanly instead of tripping over the same bad bytes
// forever. The scrubber repeats the verification sweep periodically to
// catch corruption that lands while the daemon runs.
//
// Readiness is split from liveness: /healthz answers as soon as the
// listener is up (the process is alive), /readyz answers 200 only after
// the warm-start scan completes and until the drain begins, so load
// balancers neither route to a cold instance nor to a dying one.

// quarantineSuffix is appended to cache files that fail verification.
// The rename takes them out of every cache lookup (nothing matches
// *.alib any more) while preserving the bytes for post-mortems.
const quarantineSuffix = ".corrupt"

// quarantine moves a corrupt cache file aside and counts it.
func quarantine(path string, c *obs.Counter) {
	if err := os.Rename(path, path+quarantineSuffix); err == nil {
		c.Inc()
	}
}

// readyNow reports readiness: the warm-start scan has completed and the
// daemon is not draining.
func (s *Server) readyNow() bool {
	select {
	case <-s.warmed:
	default:
		return false
	}
	return !s.draining.Load()
}

// warm runs the boot-time scan and then marks the daemon ready (by
// closing s.warmed). With WarmStart disabled it only flips readiness.
func (s *Server) warm(ctx context.Context) {
	defer close(s.warmed)
	if s.warmFence != nil {
		<-s.warmFence
	}
	if !s.cfg.WarmStart {
		return
	}
	t0 := time.Now()
	scanned := s.reg.Counter("serve.warm.scanned")
	loaded := s.reg.Counter("serve.warm.loaded")
	quarantined := s.reg.Counter("serve.warm.quarantined")
	errs := s.reg.Counter("serve.warm.errors")

	paths, err := s.cfg.Flow.Char.CacheEntries()
	if err != nil {
		errs.Inc()
		return
	}
	for _, p := range paths {
		if ctx.Err() != nil {
			return
		}
		scanned.Inc()
		lib, err := char.VerifyCacheFile(p)
		if err != nil {
			quarantine(p, quarantined)
			continue
		}
		s.cache.put("lib|"+s.cfgHash+"|"+scenarioKey(lib.Scenario), lib)
		loaded.Inc()
	}
	s.reg.Histogram("serve.warm.seconds").Since(t0)
}

// scrub re-verifies the on-disk library cache every ScrubInterval until
// ctx is canceled, quarantining entries that rot while the daemon runs.
func (s *Server) scrub(ctx context.Context) {
	tk := time.NewTicker(s.cfg.ScrubInterval)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
		}
		s.scrubPass(ctx)
	}
}

// scrubPass verifies every .alib file in the cache directory once. It
// sweeps the whole directory, not just this config's entries: a corrupt
// file is a corrupt file no matter which config wrote it.
func (s *Server) scrubPass(ctx context.Context) {
	checked := s.reg.Counter("serve.scrub.checked")
	quarantined := s.reg.Counter("serve.scrub.quarantined")

	paths, err := char.CacheLibraries(s.cfg.Flow.Char.CacheDir)
	if err != nil {
		return
	}
	for _, p := range paths {
		if ctx.Err() != nil {
			return
		}
		checked.Inc()
		if _, err := char.VerifyCacheFile(p); err != nil {
			quarantine(p, quarantined)
		}
	}
	s.reg.Counter("serve.scrub.passes").Inc()
}
