package serve

import (
	"context"
	"strconv"

	"ageguard/internal/core"
	"ageguard/internal/device"
	"ageguard/pkg/ageguard/api"
)

// Server-side bounds on the Monte Carlo request parameters. Samples and
// bins are compute/response-size bounds; the sigma caps reject requests
// far outside any physical process spread (the device layer additionally
// clamps individual draws, so even an in-bounds pathological request
// cannot produce unphysical devices).
const (
	maxMCSamples  = 2048
	maxMCBins     = 256
	maxMCSigmaVth = 0.2 // [V]
	maxMCSigmaMu  = 0.5 // relative
)

// mcGuardband answers POST /v1/mcguardband: the process-variation Monte
// Carlo guardband distribution of a circuit under a scenario. The whole
// response is one LRU value keyed by the characterization config hash
// plus every sampling parameter, so a warm repeat replays the identical
// distribution without re-timing anything — and because the sample
// streams are counter-based, even a cold recomputation is bit-identical.
func (s *Server) mcGuardband(ctx context.Context, req *api.MCGuardbandRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	samples := req.Samples
	switch {
	case samples < 0:
		return nil, badRequest("negative samples = %d", samples)
	case samples == 0:
		samples = core.DefaultMCSamples
	case samples > maxMCSamples:
		return nil, badRequest("samples = %d too large (max %d)", samples, maxMCSamples)
	}
	bins := req.Bins
	switch {
	case bins < 0:
		return nil, badRequest("negative bins = %d", bins)
	case bins == 0:
		bins = core.DefaultMCBins
	case bins > maxMCBins:
		return nil, badRequest("bins = %d too large (max %d)", bins, maxMCBins)
	}
	if req.SigmaVthV < 0 || req.SigmaMuRel < 0 {
		return nil, badRequest("variation sigmas must be non-negative (got %g V, %g)",
			req.SigmaVthV, req.SigmaMuRel)
	}
	if req.SigmaVthV > maxMCSigmaVth {
		return nil, badRequest("sigma_vth_v = %g too large (max %g V)", req.SigmaVthV, maxMCSigmaVth)
	}
	if req.SigmaMuRel > maxMCSigmaMu {
		return nil, badRequest("sigma_mu_rel = %g too large (max %g)", req.SigmaMuRel, maxMCSigmaMu)
	}
	v := device.Variation{SigmaVth: req.SigmaVthV, SigmaMuRel: req.SigmaMuRel}
	if v.IsZero() {
		v = device.DefaultVariation()
	}

	key := "mc|" + s.cfgHash + "|" + req.Circuit + "|" + scenarioKey(sc) + "|" +
		mcParamKey(samples, req.Seed, v, bins)
	out, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		nl, err := s.netlist(ctx, req.Circuit)
		if err != nil {
			return nil, err
		}
		res, err := s.cfg.Flow.MCGuardbandNetlist(ctx, req.Circuit, nl, sc, core.MCConfig{
			Samples:     samples,
			Seed:        req.Seed,
			Variation:   v,
			Bins:        bins,
			Parallelism: s.cfg.Flow.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		s.reg.Counter("serve.mc.samples").Add(int64(res.Samples))
		return api.MCGuardbandResponse{
			Version:    api.APIVersion,
			Circuit:    req.Circuit,
			Scenario:   req.Scenario,
			Samples:    res.Samples,
			Seed:       res.Seed,
			SigmaVthV:  v.SigmaVth,
			SigmaMuRel: v.SigmaMuRel,
			FreshCPs:   res.FreshCPS,
			AgedCPs:    res.AgedCPS,
			MeanS:      res.MeanS,
			StdS:       res.StdS,
			P50S:       res.P50S,
			P95S:       res.P95S,
			P999S:      res.P999S,
			MinS:       res.MinS,
			MaxS:       res.MaxS,
			Hist: api.MCHistogram{
				LoS:    res.Hist.LoS,
				HiS:    res.Hist.HiS,
				Counts: res.Hist.Counts,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out.(api.MCGuardbandResponse), nil
}

// mcParamKey encodes the sampling parameters for the LRU key with full
// fidelity (sigmas as exact IEEE-754 bits, like scenarioKey).
func mcParamKey(samples int, seed uint64, v device.Variation, bins int) string {
	b := make([]byte, 0, 64)
	b = appendHexInt(b, int64(samples))
	b = append(b, '_')
	b = appendHexUint(b, seed)
	b = append(b, '_')
	b = appendHexFloat(b, v.SigmaVth)
	b = append(b, '_')
	b = appendHexFloat(b, v.SigmaMuRel)
	b = append(b, '_')
	b = appendHexInt(b, int64(bins))
	return string(b)
}

func appendHexUint(b []byte, u uint64) []byte { return strconv.AppendUint(b, u, 16) }
func appendHexInt(b []byte, i int64) []byte   { return strconv.AppendInt(b, i, 16) }
