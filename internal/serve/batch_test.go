package serve

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"ageguard/internal/obs"
	"ageguard/pkg/ageguard/api"
)

// decodeBatch round-trips a batch handler result through JSON into the
// public wire type — the handler returns a pre-marshaled internal
// shape, and decoding it the way a client would also asserts the two
// stay wire-compatible.
func decodeBatch(t *testing.T, v any) api.BatchResponse {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var resp api.BatchResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func worstSc() api.Scenario { return api.Scenario{Kind: "worst", Years: 10} }

// testBatchItems is the canonical 12-item heterogeneous batch the
// planner tests share: heavy duplication on purpose, so the planned
// subproblem count (3 libraries: fresh/worst/balance, 1 netlist, 3
// analyzers) is far below the item count.
func testBatchItems() []api.BatchItem {
	gb := func(sc api.Scenario) api.BatchItem {
		return api.GuardbandItem(api.GuardbandRequest{Circuit: testCircuit, Scenario: sc})
	}
	ct := api.CellTimingItem(api.CellTimingRequest{
		Cell: "INV_X1", Scenario: worstSc(), InSlewS: 20e-12, LoadF: 2e-15,
	})
	ps := api.PathsItem(api.PathsRequest{Circuit: testCircuit, Scenario: worstSc(), K: 3})
	bal := api.Scenario{Kind: "balance", Years: 10}
	return []api.BatchItem{
		gb(worstSc()), gb(worstSc()), gb(worstSc()), gb(worstSc()),
		gb(bal), gb(bal),
		ct, ct, ct,
		ps, ps, ps,
	}
}

func TestBatchPlannerDedupes(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(quickConfig(sharedDir(t)), reg)
	ctx := context.Background()

	run := func() api.BatchResponse {
		t.Helper()
		v, err := s.batch(ctx, &api.BatchRequest{Version: api.APIVersion, Items: testBatchItems()})
		if err != nil {
			t.Fatal(err)
		}
		resp := decodeBatch(t, v)
		if len(resp.Items) != 12 {
			t.Fatalf("got %d results, want 12", len(resp.Items))
		}
		for i, it := range resp.Items {
			if it.Error != nil {
				t.Fatalf("item %d failed: %+v", i, it.Error)
			}
		}
		return resp
	}
	run()
	snap := s.reg.Snapshot()
	if got := snap.Counters["serve.cache.misses"]; got != 8 {
		t.Errorf("cold batch misses = %d, want 8 (3 libs + 1 netlist + 3 analyzers + 1 paths response)", got)
	}
	if got := snap.Counters["serve.batch.unique_fills"]; got != 7 {
		t.Errorf("batch.unique_fills = %d, want 7", got)
	}
	if got := snap.Counters["serve.batch.items"]; got != 12 {
		t.Errorf("batch.items = %d, want 12", got)
	}

	run() // warm repeat: every subproblem must hit
	snap = s.reg.Snapshot()
	if got := snap.Counters["serve.cache.misses"]; got != 8 {
		t.Errorf("warm repeat added misses: %d total, want still 8", got)
	}
	if got := snap.Counters["serve.batch.item_errors"]; got != 0 {
		t.Errorf("batch.item_errors = %d, want 0", got)
	}
}

func TestBatchPerItemErrorIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(quickConfig(sharedDir(t)), reg)
	items := []api.BatchItem{
		api.CellTimingItem(api.CellTimingRequest{
			Cell: "INV_X1", Scenario: api.Scenario{Kind: "fresh"}, InSlewS: 20e-12, LoadF: 2e-15,
		}),
		api.GuardbandItem(api.GuardbandRequest{Circuit: "NOPE", Scenario: worstSc()}),
		api.PathsItem(api.PathsRequest{Circuit: testCircuit, Scenario: worstSc(), K: -1}),
		{Kind: api.BatchGuardband, Paths: &api.PathsRequest{}}, // payload does not match kind
		{Kind: "bogus"},
	}
	v, err := s.batch(context.Background(), &api.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeBatch(t, v)
	if e := resp.Items[0].Error; e != nil || resp.Items[0].CellTiming == nil {
		t.Errorf("valid item failed alongside bad siblings: %+v", e)
	}
	wantStatus := []int{0, 404, 400, 400, 400}
	for i := 1; i < len(items); i++ {
		e := resp.Items[i].Error
		if e == nil || e.Status != wantStatus[i] {
			t.Errorf("item %d: error = %+v, want status %d", i, e, wantStatus[i])
		}
	}
	if got := reg.Snapshot().Counters["serve.batch.item_errors"]; got != 4 {
		t.Errorf("batch.item_errors = %d, want 4", got)
	}
}

func TestBatchRejectsMalformedRequests(t *testing.T) {
	s := New(quickConfig(sharedDir(t)), nil)
	ctx := context.Background()
	if _, err := s.batch(ctx, &api.BatchRequest{}); status(err) != 400 {
		t.Errorf("empty batch: err = %v, want 400", err)
	}
	if _, err := s.batch(ctx, &api.BatchRequest{Version: "v9",
		Items: testBatchItems()}); status(err) != 400 {
		t.Errorf("bad version: want 400")
	}
	big := make([]api.BatchItem, maxBatchItems+1)
	for i := range big {
		big[i] = api.PathsItem(api.PathsRequest{Circuit: testCircuit, Scenario: worstSc()})
	}
	if _, err := s.batch(ctx, &api.BatchRequest{Items: big}); status(err) != 400 {
		t.Errorf("oversized batch: want 400")
	}
}

func TestBatchBitIdenticalToSingles(t *testing.T) {
	// Two daemons over the same disk cache: one answers the batch, the
	// other answers each item as a single request. Per-item payloads must
	// match bit for bit.
	dir := sharedDir(t)
	single := New(quickConfig(dir), nil)
	batched := New(quickConfig(dir), nil)
	ctx := context.Background()
	items := testBatchItems()

	v, err := batched.batch(ctx, &api.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeBatch(t, v)
	for i, it := range items {
		var want any
		switch it.Kind {
		case api.BatchGuardband:
			want, err = single.guardband(ctx, it.Guardband)
		case api.BatchCellTiming:
			want, err = single.cellTiming(ctx, it.CellTiming)
		case api.BatchPaths:
			want, err = single.paths(ctx, it.Paths)
		}
		if err != nil {
			t.Fatalf("single %s: %v", it.Kind, err)
		}
		var got any
		res := resp.Items[i]
		switch {
		case res.Guardband != nil:
			got = *res.Guardband
		case res.CellTiming != nil:
			got = *res.CellTiming
		case res.Paths != nil:
			got = *res.Paths
		default:
			t.Fatalf("item %d: no payload, error %+v", i, res.Error)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("item %d (%s): batch answer differs from single\n batch:  %+v\n single: %+v",
				i, it.Kind, got, want)
		}
	}
}
