package serve

import (
	"context"
	"math"
	"strings"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/pkg/ageguard/api"
)

// delayOnlyLibrary builds a single-cell library whose only arc carries
// delay tables but no output-slew tables — legal per the .alib format,
// which serializes OutSlew only when present.
func delayOnlyLibrary(sc aging.Scenario) *liberty.Library {
	slews := []float64{10e-12, 40e-12}
	loads := []float64{1e-15, 4e-15}
	mk := func(v float64) *liberty.Table {
		t := liberty.NewTable(slews, loads)
		for i := range t.Values {
			for j := range t.Values[i] {
				t.Values[i][j] = v
			}
		}
		return t
	}
	return &liberty.Library{
		Name: "delayonly", Scenario: sc, Vdd: 1.1, Slews: slews, Loads: loads,
		Cells: map[string]*liberty.CellTiming{
			"BUF_D": {
				Name: "BUF_D", Inputs: []string{"A"}, Output: "Z",
				Arcs: []liberty.Arc{{
					Pin:   "A",
					Delay: [2]*liberty.Table{mk(30e-12), mk(35e-12)},
				}},
			},
		},
	}
}

func TestCellTimingDelayOnlyArcDoesNotPanic(t *testing.T) {
	// cellTiming used to dereference arc.OutSlew[edge] after nil-checking
	// only arc.Delay[edge]; a delay-only arc panicked the handler.
	s := New(quickConfig(sharedDir(t)), nil)
	sc := aging.Fresh()
	s.cache.put("lib|"+s.cfgHash+"|"+scenarioKey(sc), delayOnlyLibrary(sc))

	v, err := s.cellTiming(context.Background(), &api.CellTimingRequest{
		Cell:     "BUF_D",
		Scenario: api.Scenario{Kind: "fresh"},
		InSlewS:  20e-12,
		LoadF:    2e-15,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := v.(api.CellTimingResponse)
	if len(resp.Arcs) != 2 {
		t.Fatalf("got %d arcs, want 2 (rise + fall)", len(resp.Arcs))
	}
	for _, a := range resp.Arcs {
		if a.DelayS <= 0 {
			t.Errorf("arc %+v: non-positive delay", a)
		}
		if a.OutSlewS != nil {
			t.Errorf("arc %+v: out slew reported for a delay-only arc", a)
		}
	}
}

func TestPathsNegativeKRejected(t *testing.T) {
	s := New(quickConfig(sharedDir(t)), nil)
	_, err := s.paths(context.Background(), &api.PathsRequest{
		Circuit:  testCircuit,
		Scenario: api.Scenario{Kind: "worst"},
		K:        -1,
	})
	if err == nil || status(err) != 400 {
		t.Fatalf("k = -1: err = %v (status %d), want 400", err, status(err))
	}
}

func TestResolveScenarioRejections(t *testing.T) {
	s := New(quickConfig(sharedDir(t)), nil)
	bad := []api.Scenario{
		{Kind: "fresh", Years: 10}, // contradiction, was silently ignored
		{Kind: "worst", Years: -3},
		{Kind: "duty", LambdaP: 1.5, LambdaN: 0.5},
		{Kind: "duty", LambdaP: math.NaN(), LambdaN: 0.5},
		{Kind: "duty", LambdaP: 0.5, LambdaN: math.Inf(1)},
		{Kind: "bogus"},
	}
	for _, sc := range bad {
		if _, err := s.resolveScenario(sc); err == nil || status(err) != 400 {
			t.Errorf("scenario %+v: err = %v, want a 400", sc, err)
		}
	}
	if _, err := s.resolveScenario(api.Scenario{Kind: "fresh", Years: 10}); err == nil ||
		!strings.Contains(err.Error(), "fresh") {
		t.Errorf("fresh+years error %v does not name the contradiction", err)
	}
	for _, ok := range []api.Scenario{
		{Kind: "fresh"},
		{Kind: "worst", Years: 10},
		{Kind: "duty", Years: 10, LambdaP: 0.3, LambdaN: 0.7},
	} {
		if _, err := s.resolveScenario(ok); err != nil {
			t.Errorf("scenario %+v unexpectedly rejected: %v", ok, err)
		}
	}
}

func TestLibraryKeyDistinguishesYears(t *testing.T) {
	// Two worst-case scenarios differing only in lifetime used to collide
	// in the LRU (the key carried only the duty cycles), serving one
	// scenario's library for the other.
	s := New(quickConfig(sharedDir(t)), nil)
	ctx := context.Background()
	l10, err := s.library(ctx, aging.WorstCase(10))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s.library(ctx, aging.WorstCase(2))
	if err != nil {
		t.Fatal(err)
	}
	if l10.Scenario.Years != 10 || l2.Scenario.Years != 2 {
		t.Fatalf("library scenarios %v / %v, want 10y / 2y",
			l10.Scenario, l2.Scenario)
	}
	if s.cache.len() < 2 {
		t.Errorf("cache holds %d entries, want both lifetimes resident", s.cache.len())
	}
}
