// Package serve implements ageguardd: an HTTP/JSON daemon answering
// guardband and timing queries against pre-characterized
// degradation-aware libraries. The wire types live in pkg/ageguard/api;
// a typed client in pkg/ageguard/client.
//
// The daemon keeps a bounded in-memory LRU of parsed libraries,
// synthesized netlists and compiled STA analyzers keyed by the
// characterization config hash, with per-key singleflight so a herd of
// identical cold queries characterizes once. Admission is a bounded
// queue: requests beyond the in-flight limit wait in the queue, and
// requests beyond the queue are rejected immediately with 429 and a
// Retry-After hint. Every request runs under a deadline that propagates
// into the per-time-step cancellation checks of the transient solver;
// an expired deadline reports 504 and leaves no partial cache state
// (disk caches are written atomically, the in-memory LRU only ever
// holds completed values). SIGTERM drains: the listener closes, queued
// and in-flight requests finish, then Run returns.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"ageguard/internal/conc"
	"ageguard/internal/core"
	"ageguard/internal/obs"
	"ageguard/pkg/ageguard/api"
)

// Config parameterizes the daemon. The zero value of every field picks
// a sensible default at New.
type Config struct {
	// Flow is the design-flow configuration queries are answered with;
	// its characterization config hash keys every cache entry.
	Flow core.Flow

	// CacheSize bounds the LRU entry count (default 128).
	CacheSize int

	// MaxInflight bounds the number of requests doing work concurrently
	// (default 4). QueueDepth bounds how many more may wait for a work
	// slot (default 4*MaxInflight); beyond that requests are rejected
	// with 429 and Retry-After of RetryAfter (default 1s).
	MaxInflight int
	QueueDepth  int
	RetryAfter  time.Duration

	// BatchParallelism bounds how many unique subproblems of one /v1/batch
	// request fill concurrently (default 0: GOMAXPROCS). A batch holds a
	// single admission ticket; this knob is what fans its internal work
	// out.
	BatchParallelism int

	// RequestTimeout is the per-request deadline (default 5m). It
	// propagates into characterization and STA, whose inner loops check
	// cancellation every solver time step.
	RequestTimeout time.Duration

	// DrainTimeout bounds the graceful shutdown (default 2m).
	DrainTimeout time.Duration

	// WarmStart enables the boot-time disk-cache scan: verified library
	// cache entries for this config hash pre-populate the LRU before
	// the daemon reports ready, so a restart serves repeat queries from
	// the warm path instead of re-characterizing.
	WarmStart bool

	// ScrubInterval, when positive, runs a background scrubber that
	// re-verifies every on-disk library cache entry each interval and
	// quarantines corrupt files (renamed with a .corrupt suffix).
	ScrubInterval time.Duration

	// DrainGrace is how long the daemon keeps serving while advertising
	// not-ready on /readyz before the listener closes, giving load
	// balancers time to stop routing to it (default 0: drain at once).
	DrainGrace time.Duration
}

func (c *Config) fill() {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 2 * time.Minute
	}
}

// Server answers guardband queries. Construct with New; all methods are
// safe for concurrent use.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *cache
	cfgHash string

	slots chan struct{} // work slots, cap MaxInflight
	queue chan struct{} // admission tickets, cap MaxInflight+QueueDepth

	warmed    chan struct{} // closed when the warm-start scan completes
	draining  atomic.Bool   // set when the drain begins; clears readiness
	warmFence chan struct{} // test seam: when non-nil, warm waits on it
}

// New builds a Server recording its metrics into reg (a fresh registry
// when nil).
func New(cfg Config, reg *obs.Registry) *Server {
	cfg.fill()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		cfg:     cfg,
		reg:     reg,
		cache:   newCache(cfg.CacheSize, reg),
		cfgHash: fmt.Sprintf("%016x", cfg.Flow.Char.Hash()),
		slots:   make(chan struct{}, cfg.MaxInflight),
		queue:   make(chan struct{}, cfg.MaxInflight+cfg.QueueDepth),
		warmed:  make(chan struct{}),
	}
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the daemon's routing table: the six /v1 query
// endpoints plus /healthz, /metrics (text), /metrics.json and
// /debug/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/guardband", handleJSON(s, "guardband", s.guardband))
	mux.Handle("POST /v1/celltiming", handleJSON(s, "celltiming", s.cellTiming))
	mux.Handle("POST /v1/grid", handleJSON(s, "grid", s.grid))
	mux.Handle("POST /v1/paths", handleJSON(s, "paths", s.paths))
	mux.Handle("POST /v1/mcguardband", handleJSON(s, "mc", s.mcGuardband))
	mux.Handle("POST /v1/batch", handleBatch(s))

	// Liveness: the process is up and serving HTTP. Stays 200 through
	// warm-up and drain — restarts are for dead processes, not busy ones.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Readiness: route traffic here. 503 until the warm-start scan
	// completes and again once the drain begins.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.readyNow() {
			http.Error(w, "warming up or draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.reg.Snapshot().WriteJSON(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Run listens on addr and serves until ctx is canceled, then drains
// gracefully: in-flight and queued requests complete (bounded by
// DrainTimeout) before Run returns.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on an existing listener (tests and loadgen bind :0 and
// read the port back).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	go s.warm(ctx)
	if s.cfg.ScrubInterval > 0 {
		go s.scrub(ctx)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness first and keep serving through the grace window so
	// load balancers observe not-ready before the listener closes.
	s.draining.Store(true)
	if s.cfg.DrainGrace > 0 {
		time.Sleep(s.cfg.DrainGrace)
	}
	drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	<-errc // always http.ErrServerClosed once Shutdown began
	return err
}

// statusError pins an HTTP status to an error. errors.As-visible so
// handlers can classify bad input vs. internal failures.
type statusError struct {
	code int
	err  error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &statusError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &statusError{code: http.StatusNotFound, err: fmt.Errorf(format, args...)}
}

// status maps a handler error to its HTTP status code.
func status(err error) int {
	var se *statusError
	switch {
	case errors.As(err, &se):
		return se.code
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, conc.ErrCanceled):
		// The client went away (or the run was interrupted): nothing
		// useful to say, but pick a distinguishable code for the logs.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON marshals v up front so the reply can carry an end-to-end
// body checksum (api.BodySumHeader): clients verify it and retry on
// mismatch, turning in-transit corruption from a silently wrong answer
// into a transient error.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.BodySumHeader, api.BodySum(b))
	w.WriteHeader(code)
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.ErrorResponse{Version: api.APIVersion, Error: err.Error()})
}

// checkVersion rejects requests from a different protocol generation.
// An empty version is accepted as "current" for curl-friendliness.
func checkVersion(v string) error {
	if v != "" && v != api.APIVersion {
		return badRequest("unsupported api version %q (server speaks %s)", v, api.APIVersion)
	}
	return nil
}

// admit runs the shared admission prologue: an admission ticket (or an
// immediate 429 — no ticket free means the daemon is saturated past its
// queue, so shed so callers back off instead of piling on), the
// per-request deadline, and a work slot (or 504 when the deadline
// expires first — the deadline keeps queue time bounded). On success
// the caller must defer release; on failure the response has been
// written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, errc, rejected, timeouts *obs.Counter) (ctx context.Context, release func(), ok bool) {
	select {
	case s.queue <- struct{}{}:
	default:
		rejected.Inc()
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests,
			errors.New("server saturated: admission queue full"))
		return nil, nil, false
	}

	ctx = obs.With(r.Context(), s.reg)
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)

	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		timeouts.Inc()
		errc.Inc()
		writeError(w, http.StatusGatewayTimeout,
			errors.New("deadline expired waiting for a work slot"))
		cancel()
		<-s.queue
		return nil, nil, false
	}
	return ctx, func() {
		<-s.slots
		cancel()
		<-s.queue
	}, true
}

// handleJSON wraps one endpoint with the shared request plumbing:
// admission (queue ticket or 429), the per-request deadline, body
// decode, the endpoint duration histogram and the error taxonomy.
func handleJSON[Req any](s *Server, name string, fn func(ctx context.Context, req *Req) (any, error)) http.Handler {
	hist := s.reg.Histogram("serve." + name + ".seconds")
	okc := s.reg.Counter("serve." + name + ".ok")
	errc := s.reg.Counter("serve." + name + ".err")
	rejected := s.reg.Counter("serve.rejected")
	timeouts := s.reg.Counter("serve.timeouts")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, release, ok := s.admit(w, r, errc, rejected, timeouts)
		if !ok {
			return
		}
		defer release()

		var req Req
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			errc.Inc()
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}

		t0 := time.Now()
		resp, err := fn(ctx, &req)
		hist.Since(t0)
		if err != nil {
			code := status(err)
			if code == http.StatusGatewayTimeout {
				timeouts.Inc()
			}
			errc.Inc()
			writeError(w, code, err)
			return
		}
		okc.Inc()
		writeJSON(w, http.StatusOK, resp)
	})
}

// cachedBody is one memoized whole-batch reply: the exact request bytes
// it answers (compared on hit, since the LRU key is only a hash of
// them) and the rendered body plus checksum to replay.
type cachedBody struct {
	req  []byte
	body []byte
	sum  string
}

// maxMemoBody bounds the size of a whole-batch reply kept in the memo;
// a paths-heavy batch can render megabytes, and the LRU is
// entry-counted, not byte-counted.
const maxMemoBody = 1 << 20

// handleBatch is handleJSON for /v1/batch, plus the outermost level of
// the batch memo hierarchy: a byte-identical repeat of a fully
// successful batch request replays the stored reply without decoding,
// planning or rendering anything. Item-fragment memoization (batch.go)
// covers batches that merely overlap; this covers the periodic
// monitor-sweep pattern where the same batch recurs verbatim. Replies
// carrying any per-item error are never memoized, so transient
// failures cannot stick.
func handleBatch(s *Server) http.Handler {
	hist := s.reg.Histogram("serve.batch.seconds")
	okc := s.reg.Counter("serve.batch.ok")
	errc := s.reg.Counter("serve.batch.err")
	rejected := s.reg.Counter("serve.rejected")
	timeouts := s.reg.Counter("serve.timeouts")
	bodyHits := s.reg.Counter("serve.batch.body_hits")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, release, ok := s.admit(w, r, errc, rejected, timeouts)
		if !ok {
			return
		}
		defer release()

		raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			errc.Inc()
			writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
			return
		}
		key := "body|" + s.cfgHash + "|" + api.BodySum(raw)
		if v, ok := s.cache.peek(key); ok {
			if cb := v.(*cachedBody); bytes.Equal(cb.req, raw) {
				bodyHits.Inc()
				okc.Inc()
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set(api.BodySumHeader, cb.sum)
				w.Header().Set("Content-Length", strconv.Itoa(len(cb.body)))
				w.Write(cb.body)
				return
			}
		}

		var req api.BatchRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			errc.Inc()
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}

		t0 := time.Now()
		resp, err := s.batch(ctx, &req)
		hist.Since(t0)
		if err != nil {
			code := status(err)
			if code == http.StatusGatewayTimeout {
				timeouts.Inc()
			}
			errc.Inc()
			writeError(w, code, err)
			return
		}
		okc.Inc()

		wire := resp.(batchWireResponse)
		b := wire.body()
		sum := api.BodySum(b)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(api.BodySumHeader, sum)
		w.Header().Set("Content-Length", strconv.Itoa(len(b)))
		w.Write(b)
		if wire.clean && len(b) <= maxMemoBody {
			s.cache.put(key, &cachedBody{req: raw, body: b, sum: sum})
		}
	})
}
