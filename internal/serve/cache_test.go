package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ageguard/internal/obs"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2, obs.NewRegistry())
	ctx := context.Background()
	fill := func(v string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return v, nil }
	}
	for _, k := range []string{"a", "b", "c"} { // c evicts a
		if _, err := c.get(ctx, k, fill(k)); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	refilled := false
	v, err := c.get(ctx, "a", func(context.Context) (any, error) {
		refilled = true
		return "a2", nil
	})
	if err != nil || !refilled || v != "a2" {
		t.Errorf("evicted key not refilled: v=%v refilled=%v err=%v", v, refilled, err)
	}
	// Refilling "a" evicted "b" (the cold end); "c" must still be resident.
	if _, err := c.get(ctx, "c", func(context.Context) (any, error) {
		t.Error("c should still be resident")
		return "c2", nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get(ctx, "b", fill("b")); err != nil {
		t.Fatal(err)
	}
}

func TestCacheSingleflightHerd(t *testing.T) {
	// 100 goroutines miss the same key at once: the fill must run exactly
	// once and every caller must observe its value.
	c := newCache(8, obs.NewRegistry())
	ctx := context.Background()
	var fills atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, 100)
	vals := make([]any, 100)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			vals[i], errs[i] = c.get(ctx, "k", func(context.Context) (any, error) {
				fills.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the herd window
				return "shared", nil
			})
		}()
	}
	close(start)
	wg.Wait()
	for i := range errs {
		if errs[i] != nil || vals[i] != "shared" {
			t.Fatalf("caller %d: v=%v err=%v", i, vals[i], errs[i])
		}
	}
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
	if h := c.hits.Value() + c.shared.Value(); h != 99 {
		t.Errorf("hits+shared = %d, want 99", h)
	}
}

func TestCacheLeaderDeadlineDoesNotPoisonFollowers(t *testing.T) {
	// The leader's own short deadline kills its fill; a follower with a
	// live context must retry and succeed, not inherit the foreign error.
	c := newCache(8, obs.NewRegistry())
	shortCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	entered := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.get(shortCtx, "k", func(ctx context.Context) (any, error) {
			close(entered)
			<-ctx.Done() // simulate work that honors cancellation
			return nil, ctx.Err()
		})
		leaderDone <- err
	}()
	<-entered

	var followerFilled atomic.Bool
	v, err := c.get(context.Background(), "k", func(context.Context) (any, error) {
		followerFilled.Store(true)
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("follower: v=%v err=%v", v, err)
	}
	if !followerFilled.Load() {
		t.Error("follower did not take over the fill")
	}
	if err := <-leaderDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("leader error = %v, want DeadlineExceeded", err)
	}
}

func TestCachePutRefreshUpdatesSizeGauge(t *testing.T) {
	// The refresh path (put on an existing key) used to return before the
	// size gauge update, leaving a stale reading until the next brand-new
	// insert. Poison the gauge and prove a refresh repairs it.
	reg := obs.NewRegistry()
	c := newCache(8, reg)
	gauge := reg.Gauge("serve.cache.size")
	c.put("k", "v1")
	if g := gauge.Value(); g != 1 {
		t.Fatalf("gauge after insert = %g, want 1", g)
	}
	gauge.Set(-1)
	c.put("k", "v2")
	if g := gauge.Value(); g != 1 {
		t.Errorf("gauge after refresh = %g, want 1", g)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1 (refresh must not duplicate)", c.len())
	}
	v, err := c.get(context.Background(), "k", func(context.Context) (any, error) {
		t.Error("refresh lost the entry")
		return nil, nil
	})
	if err != nil || v != "v2" {
		t.Errorf("refreshed value = %v err=%v, want v2", v, err)
	}
}

func TestCacheFillErrorNotCached(t *testing.T) {
	c := newCache(8, obs.NewRegistry())
	ctx := context.Background()
	boom := fmt.Errorf("boom")
	if _, err := c.get(ctx, "k", func(context.Context) (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.get(ctx, "k", func(context.Context) (any, error) { return "fine", nil })
	if err != nil || v != "fine" {
		t.Errorf("retry after failure: v=%v err=%v", v, err)
	}
}
