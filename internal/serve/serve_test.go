package serve

import (
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ageguard/internal/char"
	"ageguard/internal/core"
	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

// testCircuit is the cheapest benchmark to synthesize (~1 s cold).
const testCircuit = "RISC-5P"

// sharedDir is a package-wide characterization/netlist disk cache: the
// first test pays the cold cost, later tests only re-parse. Tests that
// need genuinely slow cold work use their own t.TempDir instead.
var (
	sharedDirOnce sync.Once
	sharedDirPath string
)

func sharedDir(t *testing.T) string {
	sharedDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "serve-test-cache-*")
		if err != nil {
			t.Fatal(err)
		}
		sharedDirPath = dir
	})
	return sharedDirPath
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedDirPath != "" {
		os.RemoveAll(sharedDirPath)
	}
	os.Exit(code)
}

// quickConfig builds a reduced-grid daemon config over the given cache
// directory.
func quickConfig(dir string) Config {
	charCfg := char.TestConfig()
	charCfg.CacheDir = dir
	return Config{
		Flow: core.New(core.WithCharConfig(charCfg), core.WithLifetime(10)),
	}
}

// startServer runs a Server for cfg on a loopback listener and returns
// a client plus a shutdown func that drains and waits.
func startServer(t *testing.T, cfg Config) (*client.Client, func()) {
	t.Helper()
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	cl := client.New("http://" + ln.Addr().String())
	return cl, func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v on drain", err)
		}
	}
}

func TestGuardbandEndToEnd(t *testing.T) {
	cfg := quickConfig(sharedDir(t))
	cl, shutdown := startServer(t, cfg)
	defer shutdown()
	ctx := context.Background()

	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Guardband(ctx, api.GuardbandRequest{
		Circuit:  testCircuit,
		Scenario: api.Scenario{Kind: "worst", Years: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != api.APIVersion {
		t.Errorf("version = %q", resp.Version)
	}
	if resp.FreshCPs <= 0 || resp.AgedCPs <= resp.FreshCPs {
		t.Errorf("implausible CPs: fresh=%g aged=%g", resp.FreshCPs, resp.AgedCPs)
	}
	if got := resp.AgedCPs - resp.FreshCPs; got != resp.GuardbandS {
		t.Errorf("guardband %g != aged-fresh %g", resp.GuardbandS, got)
	}

	// Warm repeat must hit the LRU and return the identical answer.
	again, err := cl.Guardband(ctx, api.GuardbandRequest{
		Circuit:  testCircuit,
		Scenario: api.Scenario{Kind: "worst", Years: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if *again != *resp {
		t.Errorf("warm answer differs: %+v vs %+v", again, resp)
	}
}

func TestCellTimingAndPathsEndpoints(t *testing.T) {
	cfg := quickConfig(sharedDir(t))
	cl, shutdown := startServer(t, cfg)
	defer shutdown()
	ctx := context.Background()

	ctr, err := cl.CellTiming(ctx, api.CellTimingRequest{
		Cell:     "INV_X1",
		Scenario: api.Scenario{Kind: "worst", Years: 10},
		InSlewS:  20e-12,
		LoadF:    2e-15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctr.Arcs) == 0 {
		t.Fatal("no arcs reported for INV_X1")
	}
	for _, a := range ctr.Arcs {
		if a.DelayS <= 0 || a.OutSlewS == nil || *a.OutSlewS <= 0 {
			t.Errorf("non-positive timing in arc %+v", a)
		}
		if a.Edge != "rise" && a.Edge != "fall" {
			t.Errorf("bad edge %q", a.Edge)
		}
	}

	pr, err := cl.Paths(ctx, api.PathsRequest{
		Circuit:  testCircuit,
		Scenario: api.Scenario{Kind: "worst", Years: 10},
		K:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Paths) == 0 || len(pr.Paths) > 3 {
		t.Fatalf("got %d paths, want 1..3", len(pr.Paths))
	}
	for i := 1; i < len(pr.Paths); i++ {
		if pr.Paths[i].DelayS > pr.Paths[i-1].DelayS {
			t.Error("paths not sorted most-critical first")
		}
	}
	if len(pr.Paths[0].Steps) == 0 {
		t.Error("critical path has no steps")
	}
}

func TestRequestValidation(t *testing.T) {
	cfg := quickConfig(sharedDir(t))
	cl, shutdown := startServer(t, cfg)
	defer shutdown()
	ctx := context.Background()

	var apiErr *client.APIError
	_, err := cl.Guardband(ctx, api.GuardbandRequest{
		Version: "v99", Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst"},
	})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("wrong version: err = %v, want 400", err)
	}
	_, err = cl.Guardband(ctx, api.GuardbandRequest{
		Circuit: "NOPE", Scenario: api.Scenario{Kind: "worst"},
	})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("unknown circuit: err = %v, want 404", err)
	}
	_, err = cl.Guardband(ctx, api.GuardbandRequest{
		Circuit: testCircuit, Scenario: api.Scenario{Kind: "sideways"},
	})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Errorf("bad scenario: err = %v, want 400", err)
	}
	_, err = cl.CellTiming(ctx, api.CellTimingRequest{
		Cell: "NOPE_X9", Scenario: api.Scenario{Kind: "fresh"}, InSlewS: 1e-12, LoadF: 1e-15,
	})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("unknown cell: err = %v, want 404", err)
	}
}

func TestHerdCharacterizesOnce(t *testing.T) {
	// 100 identical guardband queries hit a cold server at once. The LRU +
	// singleflight must do the underlying work exactly once per key: two
	// libraries, one netlist, two analyzers = 5 misses total, everything
	// else served as a hit or an in-flight share. Runs under -race in
	// make verify, which is the real assertion on the cache's locking.
	cfg := quickConfig(sharedDir(t))
	cfg.MaxInflight = 16
	cfg.QueueDepth = 200
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(sctx, ln) }()
	defer func() { cancel(); <-done }()

	cl := client.New("http://" + ln.Addr().String())
	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}

	var wg sync.WaitGroup
	errs := make([]error, 100)
	start := make(chan struct{})
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, errs[i] = cl.Guardband(context.Background(), req)
		}()
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve.cache.misses"]; got != 5 {
		t.Errorf("cache misses = %d, want exactly 5 (lib fresh, lib aged, netlist, analyzer x2)", got)
	}
	if ok := snap.Counters["serve.guardband.ok"]; ok != 100 {
		t.Errorf("ok count = %d, want 100", ok)
	}
}

func TestDeadlineReports504WithoutCacheCorruption(t *testing.T) {
	// A genuinely cold query against a 50 ms deadline dies inside
	// characterization (whose solver checks ctx every time step) and must
	// report 504. Afterwards the cache directory holds no half-written
	// temp files, and a retry with a sane deadline succeeds from the same
	// directory.
	dir := t.TempDir()
	cfg := quickConfig(dir)
	cfg.RequestTimeout = 50 * time.Millisecond
	cl, shutdown := startServer(t, cfg)

	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}
	_, err := cl.Guardband(context.Background(), req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 504 {
		t.Fatalf("err = %v, want 504", err)
	}
	shutdown()

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("partial cache file left behind: %s", e.Name())
		}
	}

	cfg2 := quickConfig(dir)
	cl2, shutdown2 := startServer(t, cfg2)
	defer shutdown2()
	if _, err := cl2.Guardband(context.Background(), req); err != nil {
		t.Fatalf("retry after timeout failed: %v", err)
	}
}

func TestBackpressure429WithRetryAfter(t *testing.T) {
	// One work slot, one queue ticket beyond it: a burst of cold queries
	// must see at least one immediate 429 carrying a Retry-After hint
	// while the admitted requests complete.
	dir := t.TempDir()
	cfg := quickConfig(dir)
	cfg.MaxInflight = 1
	cfg.QueueDepth = 1
	cfg.RetryAfter = 2 * time.Second
	cl, shutdown := startServer(t, cfg)
	defer shutdown()

	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, errs[i] = cl.Guardband(context.Background(), req)
		}()
	}
	close(start)
	wg.Wait()

	okN, shedN := 0, 0
	for _, err := range errs {
		var apiErr *client.APIError
		switch {
		case err == nil:
			okN++
		case errors.As(err, &apiErr) && apiErr.Saturated():
			shedN++
			if apiErr.RetryAfter < time.Second {
				t.Errorf("Retry-After = %v, want >= 1s", apiErr.RetryAfter)
			}
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if okN == 0 {
		t.Error("no request was admitted")
	}
	if shedN == 0 {
		t.Error("no request was shed with 429 despite a full queue")
	}
}

func TestDrainFinishesInflightRequests(t *testing.T) {
	// Cancel the serve context while a slow cold query is in flight: the
	// query must still complete with 200 (graceful drain), Serve must
	// return cleanly, and new connections must be refused afterwards.
	dir := t.TempDir()
	cfg := quickConfig(dir)
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(sctx, ln) }()

	cl := client.New("http://" + ln.Addr().String())
	req := api.GuardbandRequest{Circuit: testCircuit, Scenario: api.Scenario{Kind: "worst", Years: 10}}

	resc := make(chan error, 1)
	go func() {
		_, err := cl.Guardband(context.Background(), req)
		resc <- err
	}()
	// Wait until the cold query is genuinely in flight — its cache fill
	// has started (a miss is counted) — rather than sleeping a fixed
	// interval and hoping the goroutine got that far.
	deadline := time.Now().Add(10 * time.Second)
	for s.Registry().Snapshot().Counters["serve.cache.misses"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cold query never started its cache fill")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel() // SIGTERM equivalent

	if err := <-resc; err != nil {
		t.Errorf("in-flight request failed during drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v", err)
	}
	if err := cl.Healthz(context.Background()); err == nil {
		t.Error("server still accepting connections after drain")
	}
}
