package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ageguard/internal/aging"
	"ageguard/internal/conc"
	"ageguard/pkg/ageguard/api"
)

// Batched query planning.
//
// A batch is decomposed into its unique (library, netlist, analyzer)
// subproblems before any work runs: N items that share a scenario cost
// one characterization, not N. The unique fills then fan out over
// internal/conc in two dependency phases — libraries and netlists
// first, analyzers (which consume both) second — each fill going
// through the same LRU + singleflight as single requests, so a batch
// racing single queries or another batch still characterizes once.
// Finally every item is assembled by the unmodified single-request
// handler against the now-warm cache, which is what makes per-item
// batch answers bit-identical to their single-request counterparts by
// construction.
//
// Dedupe extends to whole items, at two levels. Within one batch,
// items with identical requests assemble once and share the resulting
// fragment. Across batches, the marshaled wire fragment of every
// successful item is memoized in the LRU under its full request key,
// and the planner serves a memo hit without registering subproblems or
// re-running assembly — a warm batch is a string of byte copies. The
// fragment is the json.Marshal of the handler's answer, so memoization
// cannot change a single byte on the wire.
//
// Failure is per-item: a subproblem that fails marks exactly the items
// depending on it (with the same status taxonomy single requests use),
// and an item whose dependency already failed is not retried — one bad
// circuit neither fails the batch nor re-runs an expensive fill per
// dependent item. Failed items are never memoized, so transient
// errors (deadlines, cancellations) cannot stick in the cache.

// maxBatchItems bounds one batch request; beyond it the batch itself is
// rejected (400), since an unbounded item list would defeat the
// admission queue, which charges a batch one ticket.
const maxBatchItems = 256

// azNeed is one planned analyzer subproblem and its phase-1 dependency
// keys.
type azNeed struct {
	circuit string
	sc      aging.Scenario
	deps    []string
}

// batchPlan accumulates the deduped subproblems of one batch and, once
// the fills run, which of them failed.
type batchPlan struct {
	libs  map[string]aging.Scenario
	nls   map[string]string
	azs   map[string]azNeed
	skeys map[aging.Scenario]string

	mu   sync.Mutex
	errs map[string]error
}

func newBatchPlan() *batchPlan {
	return &batchPlan{
		libs:  map[string]aging.Scenario{},
		nls:   map[string]string{},
		azs:   map[string]azNeed{},
		skeys: map[aging.Scenario]string{},
		errs:  map[string]error{},
	}
}

// scKey memoizes scenarioKey for the plan's lifetime: planning derives
// the key several times per item (a guardband item alone registers four
// scenario-keyed subproblems), and items overwhelmingly share their few
// distinct scenarios.
func (p *batchPlan) scKey(sc aging.Scenario) string {
	k, ok := p.skeys[sc]
	if !ok {
		k = scenarioKey(sc)
		p.skeys[sc] = k
	}
	return k
}

func (p *batchPlan) addLib(sc aging.Scenario) string {
	k := "lib|" + p.scKey(sc)
	p.libs[k] = sc
	return k
}

func (p *batchPlan) addNetlist(circuit string) string {
	k := "nl|" + circuit
	p.nls[k] = circuit
	return k
}

func (p *batchPlan) addAnalyzer(circuit string, sc aging.Scenario) string {
	libK, nlK := p.addLib(sc), p.addNetlist(circuit)
	k := "az|" + circuit + "|" + p.scKey(sc)
	p.azs[k] = azNeed{circuit: circuit, sc: sc, deps: []string{libK, nlK}}
	return k
}

// unique reports the number of deduped subproblems planned.
func (p *batchPlan) unique() int { return len(p.libs) + len(p.nls) + len(p.azs) }

// fail records a subproblem failure (first error wins).
func (p *batchPlan) fail(key string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.errs[key]; !ok {
		p.errs[key] = err
	}
}

// firstErr returns the error of the first failed dependency, if any.
func (p *batchPlan) firstErr(deps []string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range deps {
		if err, ok := p.errs[d]; ok {
			return err
		}
	}
	return nil
}

// batchItemError maps a handler error onto the wire form, reusing the
// single-request status taxonomy.
func batchItemError(err error) *api.BatchError {
	return &api.BatchError{Status: status(err), Message: err.Error()}
}

// marshalItemResult renders one item result as its wire fragment. A
// marshal failure (NaN leaking into a response, say) degrades to a
// per-item 500 instead of failing the whole batch the way a single
// request would fail its whole reply.
func marshalItemResult(res api.BatchItemResult) json.RawMessage {
	b, err := json.Marshal(res)
	if err != nil {
		b, _ = json.Marshal(api.BatchItemResult{Error: &api.BatchError{
			Status:  http.StatusInternalServerError,
			Message: "marshal item result: " + err.Error(),
		}})
	}
	return b
}

// batchWireResponse is the server-side marshaling shape of
// api.BatchResponse: each item is a pre-marshaled fragment, so a
// memoized item is emitted as a verbatim byte copy instead of being
// re-encoded. The wire bytes are identical to marshaling an
// api.BatchResponse, because every fragment is itself the json.Marshal
// of one api.BatchItemResult. clean reports that no item carries an
// error, which is what gates the whole-reply memo in handleBatch.
type batchWireResponse struct {
	Version string            `json:"version"`
	Items   []json.RawMessage `json:"items"`

	clean bool
}

// body renders the reply byte-for-byte as encoding/json would —
// Version is a separator-free constant and every fragment is already
// compact, escaped JSON — without re-scanning the fragments the way
// Marshal's RawMessage compaction does. A trailing newline matches
// writeJSON.
func (bw batchWireResponse) body() []byte {
	n := len(`{"version":"","items":[]}`) + len(bw.Version) + len(bw.Items) + 1
	for _, f := range bw.Items {
		n += len(f)
	}
	b := make([]byte, 0, n)
	b = append(b, `{"version":"`...)
	b = append(b, bw.Version...)
	b = append(b, `","items":[`...)
	for i, f := range bw.Items {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, f...)
	}
	b = append(b, ']', '}', '\n')
	return b
}

// appendWireScenario appends the scenario exactly as requested — the
// response echoes it verbatim, so two requests that resolve to the same
// aging.Scenario but spell it differently (explicit lifetime versus
// defaulted, say) still produce distinct fragments.
func appendWireScenario(b []byte, sc api.Scenario) []byte {
	b = append(b, sc.Kind...)
	b = append(b, '|')
	b = appendHexFloat(b, sc.Years)
	b = append(b, '|')
	b = appendHexFloat(b, sc.LambdaP)
	b = append(b, '|')
	b = appendHexFloat(b, sc.LambdaN)
	return b
}

// batchItemKey identifies one validated batch item's full wire request
// for the fragment memo: every field that can influence the response
// bytes. Floats are hex bit patterns (see scenarioKey). All
// variable-length fields but the cell name are validated against
// closed, separator-free sets before this runs, and the cell name is
// kept last, so distinct requests cannot build colliding keys.
func (s *Server) batchItemKey(it *api.BatchItem) string {
	b := make([]byte, 0, 128)
	b = append(b, "item|"...)
	b = append(b, s.cfgHash...)
	b = append(b, '|')
	b = append(b, it.Kind...)
	b = append(b, '|')
	switch it.Kind {
	case api.BatchGuardband:
		r := it.Guardband
		b = append(b, r.Version...)
		b = append(b, '|')
		b = append(b, r.Circuit...)
		b = append(b, '|')
		b = appendWireScenario(b, r.Scenario)
	case api.BatchCellTiming:
		r := it.CellTiming
		b = append(b, r.Version...)
		b = append(b, '|')
		b = appendWireScenario(b, r.Scenario)
		b = append(b, '|')
		b = appendHexFloat(b, r.InSlewS)
		b = append(b, '|')
		b = appendHexFloat(b, r.LoadF)
		b = append(b, '|')
		b = append(b, r.Cell...)
	case api.BatchPaths:
		r := it.Paths
		b = append(b, r.Version...)
		b = append(b, '|')
		b = append(b, r.Circuit...)
		b = append(b, '|')
		b = appendWireScenario(b, r.Scenario)
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(r.K), 10)
	}
	return string(b)
}

// plannedItem is one valid batch item after planning: either frag holds
// its memoized wire fragment, or deps/run describe how to assemble it
// (and key is where the resulting fragment is memoized).
type plannedItem struct {
	key  string
	frag json.RawMessage
	deps []string
	run  func(context.Context) (json.RawMessage, error)
}

// planItem validates one item and either resolves it from the fragment
// memo or registers its subproblems with the plan. Validation mirrors
// the single-request handlers (same helpers, same messages) so an
// invalid item fails identically to its single counterpart — without
// first triggering fills it would never use, and before the memo is
// consulted, so a malformed item can never alias a cached answer.
func (s *Server) planItem(p *batchPlan, it *api.BatchItem) (*plannedItem, error) {
	if err := it.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	switch it.Kind {
	case api.BatchGuardband:
		r := it.Guardband
		if err := checkVersion(r.Version); err != nil {
			return nil, err
		}
		if err := checkCircuit(r.Circuit); err != nil {
			return nil, err
		}
		sc, err := s.resolveScenario(r.Scenario)
		if err != nil {
			return nil, err
		}
		key := s.batchItemKey(it)
		if v, ok := s.cache.peek(key); ok {
			return &plannedItem{frag: v.(json.RawMessage)}, nil
		}
		return &plannedItem{
			key: key,
			deps: []string{
				p.addAnalyzer(r.Circuit, aging.Fresh()),
				p.addAnalyzer(r.Circuit, sc),
			},
			run: func(ctx context.Context) (json.RawMessage, error) {
				v, err := s.guardband(ctx, r)
				if err != nil {
					return nil, err
				}
				g := v.(api.GuardbandResponse)
				return marshalItemResult(api.BatchItemResult{Guardband: &g}), nil
			},
		}, nil
	case api.BatchCellTiming:
		r := it.CellTiming
		if err := checkVersion(r.Version); err != nil {
			return nil, err
		}
		if err := checkTimingPoint(r.InSlewS, r.LoadF); err != nil {
			return nil, err
		}
		sc, err := s.resolveScenario(r.Scenario)
		if err != nil {
			return nil, err
		}
		key := s.batchItemKey(it)
		if v, ok := s.cache.peek(key); ok {
			return &plannedItem{frag: v.(json.RawMessage)}, nil
		}
		return &plannedItem{
			key:  key,
			deps: []string{p.addLib(sc)},
			run: func(ctx context.Context) (json.RawMessage, error) {
				v, err := s.cellTiming(ctx, r)
				if err != nil {
					return nil, err
				}
				c := v.(api.CellTimingResponse)
				return marshalItemResult(api.BatchItemResult{CellTiming: &c}), nil
			},
		}, nil
	case api.BatchPaths:
		r := it.Paths
		if err := checkVersion(r.Version); err != nil {
			return nil, err
		}
		if err := checkCircuit(r.Circuit); err != nil {
			return nil, err
		}
		if _, err := checkPathsK(r.K); err != nil {
			return nil, err
		}
		sc, err := s.resolveScenario(r.Scenario)
		if err != nil {
			return nil, err
		}
		key := s.batchItemKey(it)
		if v, ok := s.cache.peek(key); ok {
			return &plannedItem{frag: v.(json.RawMessage)}, nil
		}
		return &plannedItem{
			key:  key,
			deps: []string{p.addNetlist(r.Circuit), p.addLib(sc)},
			run: func(ctx context.Context) (json.RawMessage, error) {
				v, err := s.paths(ctx, r)
				if err != nil {
					return nil, err
				}
				pr := v.(api.PathsResponse)
				return marshalItemResult(api.BatchItemResult{Paths: &pr}), nil
			},
		}, nil
	}
	return nil, badRequest("unknown batch item kind %q", it.Kind)
}

// fillJob is one unique subproblem fill within a phase.
type fillJob struct {
	key  string
	deps []string
	fn   func(context.Context) error
}

// pendGroup is one deduped unit of assembly work: the item to run and
// every request index that asked for exactly it.
type pendGroup struct {
	it   *plannedItem
	idxs []int
}

// batch answers POST /v1/batch.
func (s *Server) batch(ctx context.Context, req *api.BatchRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	n := len(req.Items)
	if n == 0 {
		return nil, badRequest("empty batch")
	}
	if n > maxBatchItems {
		return nil, badRequest("batch of %d items exceeds the %d-item limit", n, maxBatchItems)
	}
	s.reg.Counter("serve.batch.items").Add(int64(n))

	plan := newBatchPlan()
	results := make([]json.RawMessage, n)
	var pend []pendGroup
	byKey := map[string]int{}
	var memoHits, itemErrs int64
	for i := range req.Items {
		pi, err := s.planItem(plan, &req.Items[i])
		switch {
		case err != nil:
			results[i] = marshalItemResult(api.BatchItemResult{Error: batchItemError(err)})
			itemErrs++
		case pi.frag != nil:
			results[i] = pi.frag
			memoHits++
		case byKey[pi.key] > 0:
			g := &pend[byKey[pi.key]-1]
			g.idxs = append(g.idxs, i)
		default:
			pend = append(pend, pendGroup{it: pi, idxs: []int{i}})
			byKey[pi.key] = len(pend)
		}
	}
	s.reg.Counter("serve.batch.unique_fills").Add(int64(plan.unique()))
	s.reg.Counter("serve.batch.memo_hits").Add(memoHits)

	workers := conc.Workers(s.cfg.BatchParallelism)
	runPhase := func(jobs []fillJob) {
		if len(jobs) == 0 {
			return
		}
		// Errors stay inside the plan: a failed fill must not abort the
		// phase (sibling subproblems serve other items), so every job
		// reports nil to ParFor.
		_ = conc.ParFor(ctx, workers, len(jobs), func(i int) error {
			j := jobs[i]
			if err := plan.firstErr(j.deps); err != nil {
				plan.fail(j.key, err)
				return nil
			}
			if err := j.fn(ctx); err != nil {
				plan.fail(j.key, err)
			}
			return nil
		})
	}

	phase1 := make([]fillJob, 0, len(plan.libs)+len(plan.nls))
	for key, sc := range plan.libs {
		phase1 = append(phase1, fillJob{key: key, fn: func(ctx context.Context) error {
			_, err := s.library(ctx, sc)
			return err
		}})
	}
	for key, circuit := range plan.nls {
		phase1 = append(phase1, fillJob{key: key, fn: func(ctx context.Context) error {
			_, err := s.netlist(ctx, circuit)
			return err
		}})
	}
	runPhase(phase1)

	phase2 := make([]fillJob, 0, len(plan.azs))
	for key, need := range plan.azs {
		phase2 = append(phase2, fillJob{key: key, deps: need.deps, fn: func(ctx context.Context) error {
			_, err := s.analyzer(ctx, need.circuit, need.sc)
			return err
		}})
	}
	runPhase(phase2)

	// Assembly: every surviving group through its single-request handler
	// against the warm cache; successes are memoized for later batches.
	var asmErrs atomic.Int64
	if len(pend) > 0 {
		_ = conc.ParFor(ctx, workers, len(pend), func(gi int) error {
			g := pend[gi]
			var frag json.RawMessage
			if err := plan.firstErr(g.it.deps); err != nil {
				frag = marshalItemResult(api.BatchItemResult{Error: batchItemError(err)})
				asmErrs.Add(int64(len(g.idxs)))
			} else if f, err := g.it.run(ctx); err != nil {
				frag = marshalItemResult(api.BatchItemResult{Error: batchItemError(err)})
				asmErrs.Add(int64(len(g.idxs)))
			} else {
				frag = f
				s.cache.put(g.it.key, frag)
			}
			for _, i := range g.idxs {
				results[i] = frag
			}
			return nil
		})
	}
	// A canceled assembly can leave groups unrun; every item still gets
	// a result, carrying the cancellation's status.
	if err := ctx.Err(); err != nil {
		for _, g := range pend {
			if results[g.idxs[0]] == nil {
				frag := marshalItemResult(api.BatchItemResult{Error: batchItemError(err)})
				asmErrs.Add(int64(len(g.idxs)))
				for _, i := range g.idxs {
					results[i] = frag
				}
			}
		}
	}
	totalErrs := itemErrs + asmErrs.Load()
	s.reg.Counter("serve.batch.item_errors").Add(totalErrs)
	return batchWireResponse{Version: api.APIVersion, Items: results, clean: totalErrs == 0}, nil
}
