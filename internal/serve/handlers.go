package serve

import (
	"context"
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync"

	"ageguard/internal/aging"
	"ageguard/internal/core"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/pkg/ageguard/api"
)

// resolveScenario maps the wire scenario onto an aging.Scenario. A zero
// Years defaults to the flow lifetime; "fresh" takes no Years at all —
// a caller who sends one is asking for a contradiction (aging over a
// lifetime of a scenario defined as unaged) and gets a 400 instead of a
// silently ignored parameter.
func (s *Server) resolveScenario(a api.Scenario) (aging.Scenario, error) {
	years := a.Years
	if years == 0 {
		years = s.cfg.Flow.Lifetime
	}
	var sc aging.Scenario
	switch a.Kind {
	case "fresh":
		if a.Years != 0 {
			return aging.Scenario{}, badRequest(
				"years = %g contradicts scenario kind \"fresh\"; drop years or pick an aged kind",
				a.Years)
		}
		sc = aging.Fresh()
	case "worst":
		sc = aging.WorstCase(years)
	case "balance":
		sc = aging.BalanceCase(years)
	case "duty":
		sc = aging.WorstCase(years).WithLambda(a.LambdaP, a.LambdaN)
	default:
		return aging.Scenario{}, badRequest(
			"unknown scenario kind %q (want fresh, worst, balance or duty)", a.Kind)
	}
	if err := sc.Validate(); err != nil {
		return aging.Scenario{}, badRequest("%v", err)
	}
	return sc, nil
}

// scenarioKey identifies a scenario in LRU keys with full fidelity.
// aging.Scenario.Key() encodes only the duty cycles — the paper's
// convention for naming cells and libraries — so keying the cache on it
// alone would alias scenarios that differ in lifetime, temperature or
// supply (e.g. worst-case at 5 vs. 10 years) and serve one scenario's
// libraries for the other. Every field is encoded as the hex of its
// IEEE-754 bits: exact (distinct scenarios can never collide) and an
// order of magnitude cheaper than shortest-decimal formatting, which
// profiled as the hottest part of planning a warm batch. These keys
// never leave the process, so readability costs nothing here.
func scenarioKey(sc aging.Scenario) string {
	b := make([]byte, 0, 84)
	b = appendHexFloat(b, sc.Years)
	b = append(b, '_')
	b = appendHexFloat(b, sc.TempK)
	b = append(b, '_')
	b = appendHexFloat(b, sc.Vdd)
	b = append(b, '_')
	b = appendHexFloat(b, sc.LambdaP)
	b = append(b, '_')
	b = appendHexFloat(b, sc.LambdaN)
	return string(b)
}

// appendHexFloat appends the exact bit pattern of f in hex — the cheap
// full-fidelity float encoding the in-process cache keys use.
func appendHexFloat(b []byte, f float64) []byte {
	return strconv.AppendUint(b, math.Float64bits(f), 16)
}

// checkCircuit validates a benchmark name without building it.
func checkCircuit(name string) error {
	if !slices.Contains(core.BenchmarkCircuits(), name) {
		return notFound("unknown circuit %q", name)
	}
	return nil
}

// checkTimingPoint validates a cell-timing query point. Shared by the
// single-request handler and the batch planner so both reject with the
// same message.
func checkTimingPoint(inSlew, load float64) error {
	if inSlew <= 0 || load <= 0 {
		return badRequest("in_slew_s and load_f must be positive (got %g, %g)", inSlew, load)
	}
	return nil
}

// checkPathsK validates and resolves the path-count parameter: only an
// absent (zero) k defaults to 5; a negative k is a caller mistake, not
// a default request.
func checkPathsK(k int) (int, error) {
	if k < 0 {
		return 0, badRequest("negative k = %d", k)
	}
	if k == 0 {
		k = 5
	}
	if k > 100 {
		return 0, badRequest("k = %d too large (max 100)", k)
	}
	return k, nil
}

// library returns the characterized library for a scenario through the
// LRU; misses run the characterization (or the disk-cache load) once
// per key.
func (s *Server) library(ctx context.Context, sc aging.Scenario) (*liberty.Library, error) {
	key := "lib|" + s.cfgHash + "|" + scenarioKey(sc)
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		return s.cfg.Flow.Library(ctx, sc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*liberty.Library), nil
}

// netlist returns the traditionally synthesized netlist for a circuit
// through the LRU.
func (s *Server) netlist(ctx context.Context, circuit string) (*netlist.Netlist, error) {
	key := "nl|" + s.cfgHash + "|" + circuit
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		return s.cfg.Flow.SynthesizeTraditional(ctx, circuit)
	})
	if err != nil {
		return nil, err
	}
	return v.(*netlist.Netlist), nil
}

// analyzerEntry wraps a compiled sta.Analyzer for shared use: the
// engine's lazy traceback mutates internal state, so every read goes
// through the entry mutex.
type analyzerEntry struct {
	mu sync.Mutex
	az *sta.Analyzer
}

func (e *analyzerEntry) cp() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.az.CP()
}

// analyzer returns the compiled timing engine for (circuit, scenario)
// through the LRU: topology compilation and the forward pass happen
// once; warm queries only read the precomputed critical path.
func (s *Server) analyzer(ctx context.Context, circuit string, sc aging.Scenario) (*analyzerEntry, error) {
	key := "az|" + s.cfgHash + "|" + circuit + "|" + scenarioKey(sc)
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		nl, err := s.netlist(ctx, circuit)
		if err != nil {
			return nil, err
		}
		lib, err := s.library(ctx, sc)
		if err != nil {
			return nil, err
		}
		az, err := sta.NewAnalyzer(ctx, nl, lib, s.cfg.Flow.STA)
		if err != nil {
			return nil, err
		}
		return &analyzerEntry{az: az}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*analyzerEntry), nil
}

// guardband answers POST /v1/guardband: fresh and aged critical paths
// of a traditionally synthesized circuit, and their difference.
func (s *Server) guardband(ctx context.Context, req *api.GuardbandRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	fresh, err := s.analyzer(ctx, req.Circuit, aging.Fresh())
	if err != nil {
		return nil, fmt.Errorf("fresh analysis: %w", err)
	}
	aged, err := s.analyzer(ctx, req.Circuit, sc)
	if err != nil {
		return nil, fmt.Errorf("aged analysis: %w", err)
	}
	fcp, acp := fresh.cp(), aged.cp()
	resp := api.GuardbandResponse{
		Version:    api.APIVersion,
		Circuit:    req.Circuit,
		Scenario:   req.Scenario,
		FreshCPs:   fcp,
		AgedCPs:    acp,
		GuardbandS: acp - fcp,
	}
	if fcp > 0 {
		resp.GuardbandPct = 100 * (acp - fcp) / fcp
	}
	return resp, nil
}

// cellTiming answers POST /v1/celltiming: every arc of one cell
// interpolated at the queried (input slew, output load) point.
func (s *Server) cellTiming(ctx context.Context, req *api.CellTimingRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkTimingPoint(req.InSlewS, req.LoadF); err != nil {
		return nil, err
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	lib, err := s.library(ctx, sc)
	if err != nil {
		return nil, err
	}
	ct, ok := lib.Cell(req.Cell)
	if !ok {
		return nil, notFound("unknown cell %q in library %s", req.Cell, lib.Name)
	}
	resp := api.CellTimingResponse{
		Version: api.APIVersion,
		Cell:    req.Cell,
		Library: lib.Name,
	}
	for _, arc := range ct.Arcs {
		for _, edge := range []liberty.Edge{liberty.Rise, liberty.Fall} {
			d := arc.Delay[edge]
			if d == nil {
				continue
			}
			at := api.ArcTiming{
				Pin:    arc.Pin,
				Edge:   edge.String(),
				DelayS: d.At(req.InSlewS, req.LoadF),
			}
			// OutSlew is optional in the .alib format — a delay-only arc
			// is legal and must not be dereferenced.
			if t := arc.OutSlew[edge]; t != nil {
				os := t.At(req.InSlewS, req.LoadF)
				at.OutSlewS = &os
			}
			resp.Arcs = append(resp.Arcs, at)
		}
	}
	return resp, nil
}

// grid answers POST /v1/grid: the full 11x11 duty-cycle guardband grid
// of a circuit. The whole response is one LRU value — it is by far the
// most expensive query (121 libraries) and perfectly reusable.
func (s *Server) grid(ctx context.Context, req *api.GridRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	years := req.Years
	if years == 0 {
		years = s.cfg.Flow.Lifetime
	}
	if years < 0 {
		return nil, badRequest("negative lifetime %g", years)
	}
	key := fmt.Sprintf("grid|%s|%s|%g", s.cfgHash, req.Circuit, years)
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		fl := s.cfg.Flow
		fl.Lifetime = years
		g, err := fl.GuardbandGridFor(ctx, req.Circuit)
		if err != nil {
			return nil, err
		}
		_, _, worst := g.Worst()
		return api.GridResponse{
			Version:         api.APIVersion,
			Circuit:         req.Circuit,
			Years:           years,
			FreshCPs:        g.FreshCP,
			Lambdas:         g.Lambdas,
			AgedCPs:         g.AgedCP,
			WorstGuardbandS: worst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(api.GridResponse), nil
}

// paths answers POST /v1/paths: the K most critical paths of a circuit
// under a scenario. The traceback result is cached whole, keyed by K.
func (s *Server) paths(ctx context.Context, req *api.PathsRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	k, err := checkPathsK(req.K)
	if err != nil {
		return nil, err
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("paths|%s|%s|%s|%d", s.cfgHash, req.Circuit, scenarioKey(sc), k)
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		nl, err := s.netlist(ctx, req.Circuit)
		if err != nil {
			return nil, err
		}
		lib, err := s.library(ctx, sc)
		if err != nil {
			return nil, err
		}
		ps, err := sta.TopPaths(ctx, nl, lib, s.cfg.Flow.STA, k)
		if err != nil {
			return nil, err
		}
		resp := api.PathsResponse{Version: api.APIVersion, Circuit: req.Circuit}
		for _, p := range ps {
			ap := api.Path{
				Launch:   p.Launch,
				Endpoint: p.Endpoint,
				EndEdge:  p.EndEdge.String(),
				DelayS:   p.Delay,
				SetupS:   p.Setup,
			}
			for _, st := range p.Steps {
				ap.Steps = append(ap.Steps, api.PathStep{
					Inst:     st.Inst,
					Cell:     st.Cell,
					Pin:      st.Pin,
					InEdge:   st.InEdge.String(),
					OutEdge:  st.OutEdge.String(),
					DelayS:   st.Delay,
					ArrivalS: st.Arrival,
				})
			}
			resp.Paths = append(resp.Paths, ap)
		}
		return resp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(api.PathsResponse), nil
}
