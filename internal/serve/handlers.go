package serve

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"ageguard/internal/aging"
	"ageguard/internal/core"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/pkg/ageguard/api"
)

// resolveScenario maps the wire scenario onto an aging.Scenario. A zero
// Years defaults to the flow lifetime.
func (s *Server) resolveScenario(a api.Scenario) (aging.Scenario, error) {
	years := a.Years
	if years == 0 {
		years = s.cfg.Flow.Lifetime
	}
	if years < 0 {
		return aging.Scenario{}, badRequest("negative lifetime %g", years)
	}
	switch a.Kind {
	case "fresh":
		return aging.Fresh(), nil
	case "worst":
		return aging.WorstCase(years), nil
	case "balance":
		return aging.BalanceCase(years), nil
	case "duty":
		if a.LambdaP < 0 || a.LambdaP > 1 || a.LambdaN < 0 || a.LambdaN > 1 {
			return aging.Scenario{}, badRequest("duty cycles (%g, %g) outside [0, 1]",
				a.LambdaP, a.LambdaN)
		}
		return aging.WorstCase(years).WithLambda(a.LambdaP, a.LambdaN), nil
	default:
		return aging.Scenario{}, badRequest(
			"unknown scenario kind %q (want fresh, worst, balance or duty)", a.Kind)
	}
}

// checkCircuit validates a benchmark name without building it.
func checkCircuit(name string) error {
	if !slices.Contains(core.BenchmarkCircuits(), name) {
		return notFound("unknown circuit %q", name)
	}
	return nil
}

// library returns the characterized library for a scenario through the
// LRU; misses run the characterization (or the disk-cache load) once
// per key.
func (s *Server) library(ctx context.Context, sc aging.Scenario) (*liberty.Library, error) {
	key := "lib|" + s.cfgHash + "|" + sc.Key()
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		return s.cfg.Flow.Library(ctx, sc)
	})
	if err != nil {
		return nil, err
	}
	return v.(*liberty.Library), nil
}

// netlist returns the traditionally synthesized netlist for a circuit
// through the LRU.
func (s *Server) netlist(ctx context.Context, circuit string) (*netlist.Netlist, error) {
	key := "nl|" + s.cfgHash + "|" + circuit
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		return s.cfg.Flow.SynthesizeTraditional(ctx, circuit)
	})
	if err != nil {
		return nil, err
	}
	return v.(*netlist.Netlist), nil
}

// analyzerEntry wraps a compiled sta.Analyzer for shared use: the
// engine's lazy traceback mutates internal state, so every read goes
// through the entry mutex.
type analyzerEntry struct {
	mu sync.Mutex
	az *sta.Analyzer
}

func (e *analyzerEntry) cp() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.az.CP()
}

// analyzer returns the compiled timing engine for (circuit, scenario)
// through the LRU: topology compilation and the forward pass happen
// once; warm queries only read the precomputed critical path.
func (s *Server) analyzer(ctx context.Context, circuit string, sc aging.Scenario) (*analyzerEntry, error) {
	key := "az|" + s.cfgHash + "|" + circuit + "|" + sc.Key()
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		nl, err := s.netlist(ctx, circuit)
		if err != nil {
			return nil, err
		}
		lib, err := s.library(ctx, sc)
		if err != nil {
			return nil, err
		}
		az, err := sta.NewAnalyzer(ctx, nl, lib, s.cfg.Flow.STA)
		if err != nil {
			return nil, err
		}
		return &analyzerEntry{az: az}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*analyzerEntry), nil
}

// guardband answers POST /v1/guardband: fresh and aged critical paths
// of a traditionally synthesized circuit, and their difference.
func (s *Server) guardband(ctx context.Context, req *api.GuardbandRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	fresh, err := s.analyzer(ctx, req.Circuit, aging.Fresh())
	if err != nil {
		return nil, fmt.Errorf("fresh analysis: %w", err)
	}
	aged, err := s.analyzer(ctx, req.Circuit, sc)
	if err != nil {
		return nil, fmt.Errorf("aged analysis: %w", err)
	}
	fcp, acp := fresh.cp(), aged.cp()
	resp := api.GuardbandResponse{
		Version:    api.APIVersion,
		Circuit:    req.Circuit,
		Scenario:   req.Scenario,
		FreshCPs:   fcp,
		AgedCPs:    acp,
		GuardbandS: acp - fcp,
	}
	if fcp > 0 {
		resp.GuardbandPct = 100 * (acp - fcp) / fcp
	}
	return resp, nil
}

// cellTiming answers POST /v1/celltiming: every arc of one cell
// interpolated at the queried (input slew, output load) point.
func (s *Server) cellTiming(ctx context.Context, req *api.CellTimingRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if req.InSlewS <= 0 || req.LoadF <= 0 {
		return nil, badRequest("in_slew_s and load_f must be positive (got %g, %g)",
			req.InSlewS, req.LoadF)
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	lib, err := s.library(ctx, sc)
	if err != nil {
		return nil, err
	}
	ct, ok := lib.Cell(req.Cell)
	if !ok {
		return nil, notFound("unknown cell %q in library %s", req.Cell, lib.Name)
	}
	resp := api.CellTimingResponse{
		Version: api.APIVersion,
		Cell:    req.Cell,
		Library: lib.Name,
	}
	for _, arc := range ct.Arcs {
		for _, edge := range []liberty.Edge{liberty.Rise, liberty.Fall} {
			if arc.Delay[edge] == nil {
				continue
			}
			resp.Arcs = append(resp.Arcs, api.ArcTiming{
				Pin:      arc.Pin,
				Edge:     edge.String(),
				DelayS:   arc.Delay[edge].At(req.InSlewS, req.LoadF),
				OutSlewS: arc.OutSlew[edge].At(req.InSlewS, req.LoadF),
			})
		}
	}
	return resp, nil
}

// grid answers POST /v1/grid: the full 11x11 duty-cycle guardband grid
// of a circuit. The whole response is one LRU value — it is by far the
// most expensive query (121 libraries) and perfectly reusable.
func (s *Server) grid(ctx context.Context, req *api.GridRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	years := req.Years
	if years == 0 {
		years = s.cfg.Flow.Lifetime
	}
	if years < 0 {
		return nil, badRequest("negative lifetime %g", years)
	}
	key := fmt.Sprintf("grid|%s|%s|%g", s.cfgHash, req.Circuit, years)
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		fl := s.cfg.Flow
		fl.Lifetime = years
		g, err := fl.GuardbandGridFor(ctx, req.Circuit)
		if err != nil {
			return nil, err
		}
		_, _, worst := g.Worst()
		return api.GridResponse{
			Version:         api.APIVersion,
			Circuit:         req.Circuit,
			Years:           years,
			FreshCPs:        g.FreshCP,
			Lambdas:         g.Lambdas,
			AgedCPs:         g.AgedCP,
			WorstGuardbandS: worst,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(api.GridResponse), nil
}

// paths answers POST /v1/paths: the K most critical paths of a circuit
// under a scenario. The traceback result is cached whole, keyed by K.
func (s *Server) paths(ctx context.Context, req *api.PathsRequest) (any, error) {
	if err := checkVersion(req.Version); err != nil {
		return nil, err
	}
	if err := checkCircuit(req.Circuit); err != nil {
		return nil, err
	}
	k := req.K
	if k <= 0 {
		k = 5
	}
	if k > 100 {
		return nil, badRequest("k = %d too large (max 100)", k)
	}
	sc, err := s.resolveScenario(req.Scenario)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("paths|%s|%s|%s|%d", s.cfgHash, req.Circuit, sc.Key(), k)
	v, err := s.cache.get(ctx, key, func(ctx context.Context) (any, error) {
		nl, err := s.netlist(ctx, req.Circuit)
		if err != nil {
			return nil, err
		}
		lib, err := s.library(ctx, sc)
		if err != nil {
			return nil, err
		}
		ps, err := sta.TopPaths(ctx, nl, lib, s.cfg.Flow.STA, k)
		if err != nil {
			return nil, err
		}
		resp := api.PathsResponse{Version: api.APIVersion, Circuit: req.Circuit}
		for _, p := range ps {
			ap := api.Path{
				Launch:   p.Launch,
				Endpoint: p.Endpoint,
				EndEdge:  p.EndEdge.String(),
				DelayS:   p.Delay,
				SetupS:   p.Setup,
			}
			for _, st := range p.Steps {
				ap.Steps = append(ap.Steps, api.PathStep{
					Inst:     st.Inst,
					Cell:     st.Cell,
					Pin:      st.Pin,
					InEdge:   st.InEdge.String(),
					OutEdge:  st.OutEdge.String(),
					DelayS:   st.Delay,
					ArrivalS: st.Arrival,
				})
			}
			resp.Paths = append(resp.Paths, ap)
		}
		return resp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(api.PathsResponse), nil
}
