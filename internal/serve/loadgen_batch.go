package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"ageguard/internal/obs"
	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

// BatchLoadgenConfig parameterizes the batch self-benchmark mode
// (ageguardd -loadgen-batch): one batched request versus the same items
// issued as sequential singles, cold and warm, over real HTTP.
type BatchLoadgenConfig struct {
	Items   int    // heterogeneous item count (default 32)
	Iters   int    // warm-phase repetitions, best-of (default 5)
	Circuit string // benchmark circuit queried (default "RISC-5P")
	Out     string // report path ("" = don't write)
}

func (lg *BatchLoadgenConfig) fill() {
	if lg.Items <= 0 {
		lg.Items = 32
	}
	if lg.Iters <= 0 {
		lg.Iters = 5
	}
	if lg.Circuit == "" {
		lg.Circuit = "RISC-5P"
	}
}

// BatchBenchReport is the BENCH_PR9.json shape: wall-clock of one
// /v1/batch request against the identical workload issued as sequential
// single requests, measured cold (each side against its own empty cache
// directory, so neither benefits from the other's fills) and warm. The
// PR9 acceptance floor is WarmBatchVsSingles <= 0.25 with
// ItemsBitIdentical true.
type BatchBenchReport struct {
	Bench     string `json:"bench"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`

	Circuit string `json:"circuit"`
	Items   int    `json:"items"`
	Iters   int    `json:"iters"`

	// Cold: first contact, empty in-memory and disk caches on both
	// sides. The batch planner's dedupe is what separates the two — it
	// characterizes each unique (library, netlist, analyzer) subproblem
	// once where the sequential singles pay one round trip per item but
	// share the same server-side cache.
	ColdSinglesS       float64 `json:"cold_singles_s"`
	ColdBatchS         float64 `json:"cold_batch_s"`
	ColdBatchVsSingles float64 `json:"cold_batch_vs_singles"`

	// Warm: every subproblem cached; the comparison is N HTTP round
	// trips against one. Best-of-Iters on both sides.
	WarmSinglesS       float64 `json:"warm_singles_s"`
	WarmBatchS         float64 `json:"warm_batch_s"`
	WarmBatchVsSingles float64 `json:"warm_batch_vs_singles"`

	// UniqueFills is the planner's deduped subproblem count for the
	// cold batch; BatchItems is the per-item counter (= Items).
	UniqueFills int64 `json:"unique_fills"`
	BatchItems  int64 `json:"batch_items"`

	// ItemsBitIdentical reports whether every batch item's payload was
	// bit-identical to the answer the singles path produced for it.
	ItemsBitIdentical bool `json:"items_bit_identical"`
}

// benchBatchItems builds n deterministic heterogeneous items:
// guardband and celltiming queries interleaved across three aged
// scenarios and two cells, with the scenario rotating independently of
// the kind so the same scenario recurs across kinds and the planner has
// real duplication to collapse. Only the small-payload kinds appear —
// that is the realistic batched workload (sweep queries), and it keeps
// the measurement about per-request overhead. Multi-kilobyte paths
// listings serialize at the same cost per byte on both sides, so
// including them would only dilute the amortization being measured;
// paths items stay covered by the DTO, planner and chaos tests.
func benchBatchItems(circuit string, n int) []api.BatchItem {
	scens := []api.Scenario{
		{Kind: "worst", Years: 10},
		{Kind: "balance", Years: 10},
		{Kind: "duty", Years: 10, LambdaP: 0.25, LambdaN: 0.75},
	}
	cells := []string{"INV_X1", "NAND2_X1"}
	items := make([]api.BatchItem, 0, n)
	for i := 0; len(items) < n; i++ {
		sc := scens[(i/2)%len(scens)]
		switch {
		case i%2 == 0:
			items = append(items, api.GuardbandItem(api.GuardbandRequest{
				Circuit: circuit, Scenario: sc,
			}))
		default:
			items = append(items, api.CellTimingItem(api.CellTimingRequest{
				Cell: cells[(i/2)%len(cells)], Scenario: sc,
				InSlewS: 20e-12, LoadF: 2e-15,
			}))
		}
	}
	return items
}

// runSingles issues every item as its own single request, sequentially
// and in order — the workload a client without Batch would run.
func runSingles(ctx context.Context, cl *client.Client, items []api.BatchItem) ([]api.BatchItemResult, error) {
	out := make([]api.BatchItemResult, len(items))
	for i, it := range items {
		switch it.Kind {
		case api.BatchGuardband:
			r, err := cl.Guardband(ctx, *it.Guardband)
			if err != nil {
				return nil, fmt.Errorf("item %d (guardband): %w", i, err)
			}
			out[i] = api.BatchItemResult{Guardband: r}
		case api.BatchCellTiming:
			r, err := cl.CellTiming(ctx, *it.CellTiming)
			if err != nil {
				return nil, fmt.Errorf("item %d (celltiming): %w", i, err)
			}
			out[i] = api.BatchItemResult{CellTiming: r}
		default:
			r, err := cl.Paths(ctx, *it.Paths)
			if err != nil {
				return nil, fmt.Errorf("item %d (paths): %w", i, err)
			}
			out[i] = api.BatchItemResult{Paths: r}
		}
	}
	return out, nil
}

// benchServer boots a Server for cfg with its disk cache redirected to
// a fresh temp directory, and returns a client plus a shutdown func
// that drains the server and removes the directory.
func benchServer(ctx context.Context, cfg Config, reg *obs.Registry) (*client.Client, func(), error) {
	dir, err := os.MkdirTemp("", "ageguard-bench-*")
	if err != nil {
		return nil, nil, err
	}
	cfg.Flow.Char.CacheDir = dir
	s := New(cfg, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	serveCtx, stop := context.WithCancel(context.WithoutCancel(ctx))
	done := make(chan error, 1)
	go func() { done <- s.Serve(serveCtx, ln) }()
	cleanup := func() {
		stop()
		<-done
		os.RemoveAll(dir)
	}
	cl := client.New("http://" + ln.Addr().String())
	if err := cl.Healthz(ctx); err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("healthz: %w", err)
	}
	return cl, cleanup, nil
}

// LoadgenBatch measures batched against sequential-single query cost:
// two daemons boot on loopback listeners, each over its own empty cache
// directory (cfg's configured cache directory is deliberately ignored —
// a shared or pre-warmed directory would let one side ride the other's
// fills and void the cold comparison). One daemon answers the items as
// sequential singles, the other as /v1/batch requests; both are then
// re-measured warm, and the per-item payloads are compared bit for bit.
func LoadgenBatch(ctx context.Context, cfg Config, lg BatchLoadgenConfig) (*BatchBenchReport, error) {
	lg.fill()
	items := benchBatchItems(lg.Circuit, lg.Items)

	singleCl, stopSingles, err := benchServer(ctx, cfg, obs.NewRegistry())
	if err != nil {
		return nil, err
	}
	defer stopSingles()
	batchReg := obs.NewRegistry()
	batchCl, stopBatch, err := benchServer(ctx, cfg, batchReg)
	if err != nil {
		return nil, err
	}
	defer stopBatch()

	t0 := time.Now()
	singles, err := runSingles(ctx, singleCl, items)
	if err != nil {
		return nil, fmt.Errorf("cold singles: %w", err)
	}
	coldSingles := time.Since(t0).Seconds()

	t0 = time.Now()
	batched, err := batchCl.Batch(ctx, items)
	if err != nil {
		return nil, fmt.Errorf("cold batch: %w", err)
	}
	coldBatch := time.Since(t0).Seconds()
	// Snapshot before the warm laps: the planner re-plans (and re-counts)
	// every lap, and the report's fill count is about the cold batch.
	coldSnap := batchReg.Snapshot()

	warmSingles, warmBatch := coldSingles, coldBatch
	for i := 0; i < lg.Iters; i++ {
		t0 = time.Now()
		if _, err := runSingles(ctx, singleCl, items); err != nil {
			return nil, fmt.Errorf("warm singles: %w", err)
		}
		if d := time.Since(t0).Seconds(); d < warmSingles {
			warmSingles = d
		}
		t0 = time.Now()
		if batched, err = batchCl.Batch(ctx, items); err != nil {
			return nil, fmt.Errorf("warm batch: %w", err)
		}
		if d := time.Since(t0).Seconds(); d < warmBatch {
			warmBatch = d
		}
	}

	identical := len(batched.Items) == len(singles)
	for i := range singles {
		if !identical {
			break
		}
		if batched.Items[i].Error != nil || !reflect.DeepEqual(batched.Items[i], singles[i]) {
			identical = false
		}
	}

	rep := &BatchBenchReport{
		Bench:             "PR9",
		GoVersion:         runtime.Version(),
		CPUs:              runtime.NumCPU(),
		Circuit:           lg.Circuit,
		Items:             lg.Items,
		Iters:             lg.Iters,
		ColdSinglesS:      coldSingles,
		ColdBatchS:        coldBatch,
		WarmSinglesS:      warmSingles,
		WarmBatchS:        warmBatch,
		UniqueFills:       coldSnap.Counters["serve.batch.unique_fills"],
		BatchItems:        coldSnap.Counters["serve.batch.items"],
		ItemsBitIdentical: identical,
	}
	if coldSingles > 0 {
		rep.ColdBatchVsSingles = coldBatch / coldSingles
	}
	if warmSingles > 0 {
		rep.WarmBatchVsSingles = warmBatch / warmSingles
	}

	if lg.Out != "" {
		if err := writeReport(lg.Out, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeReport writes a benchmark report as indented JSON via an atomic
// temp+rename, like every cache write: a crash mid-write must never
// leave a truncated report behind under the real name.
func writeReport(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
