package serve

import (
	"context"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ageguard/internal/obs"
	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

// LoadgenConfig parameterizes the self-benchmark mode (ageguardd
// -loadgen): the daemon is started in-process on a loopback listener
// and measured over real HTTP.
type LoadgenConfig struct {
	Requests    int    // warm-phase request count (default 200)
	Concurrency int    // concurrent clients (default 4)
	Circuit     string // benchmark circuit queried (default "RISC-5P")
	Out         string // report path ("" = don't write)
}

func (lg *LoadgenConfig) fill() {
	if lg.Requests <= 0 {
		lg.Requests = 200
	}
	if lg.Concurrency <= 0 {
		lg.Concurrency = 4
	}
	if lg.Circuit == "" {
		lg.Circuit = "RISC-5P"
	}
}

// BenchReport is the BENCH_PR7.json shape: the cold first query (the
// same work a cold guardband CLI invocation performs — characterize,
// synthesize, compile, analyze) against the warm-cache latency
// distribution of the identical query.
type BenchReport struct {
	Bench     string `json:"bench"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`

	Circuit     string `json:"circuit"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`

	// ColdFirstQueryS is the first guardband query against empty
	// in-memory caches; disk caches are whatever the configured cache
	// directory holds, exactly as for a CLI run on the same checkout.
	ColdFirstQueryS float64 `json:"cold_first_query_s"`

	WarmP50s  float64 `json:"warm_p50_s"`
	WarmP99s  float64 `json:"warm_p99_s"`
	WarmMeanS float64 `json:"warm_mean_s"`
	WarmQPS   float64 `json:"warm_qps"`

	// SpeedupP99VsCold = ColdFirstQueryS / WarmP99s; the PR7 acceptance
	// floor is 10.
	SpeedupP99VsCold float64 `json:"speedup_p99_vs_cold"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheShared  int64   `json:"cache_shared"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// percentile returns the p-th percentile (nearest-rank) of sorted.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Loadgen starts a Server for cfg on a loopback listener, measures one
// cold guardband query followed by lg.Requests warm queries at
// lg.Concurrency, writes the report to lg.Out when set and returns it.
func Loadgen(ctx context.Context, cfg Config, lg LoadgenConfig) (*BenchReport, error) {
	lg.fill()
	reg := obs.NewRegistry()
	s := New(cfg, reg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	// The server's lifetime is managed by stop/done below, not by the
	// caller's ctx, so the drain stays clean even when ctx is canceled.
	serveCtx, stop := context.WithCancel(context.WithoutCancel(ctx))
	done := make(chan error, 1)
	go func() { done <- s.Serve(serveCtx, ln) }()
	defer func() {
		stop()
		<-done
	}()

	cl := client.New("http://" + ln.Addr().String())
	if err := cl.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}

	req := api.GuardbandRequest{Circuit: lg.Circuit, Scenario: api.Scenario{Kind: "worst"}}

	t0 := time.Now()
	if _, err := cl.Guardband(ctx, req); err != nil {
		return nil, fmt.Errorf("cold query: %w", err)
	}
	cold := time.Since(t0).Seconds()

	lat := make([]float64, lg.Requests)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	warm0 := time.Now()
	for w := 0; w < lg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if i >= int64(lg.Requests) {
					return
				}
				q0 := time.Now()
				_, err := cl.Guardband(ctx, req)
				lat[i] = time.Since(q0).Seconds()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	warmWall := time.Since(warm0).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, fmt.Errorf("warm query: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	snap := reg.Snapshot()
	hits := snap.Counters["serve.cache.hits"]
	misses := snap.Counters["serve.cache.misses"]
	shared := snap.Counters["serve.cache.shared"]

	rep := &BenchReport{
		Bench:           "PR7",
		GoVersion:       runtime.Version(),
		CPUs:            runtime.NumCPU(),
		Circuit:         lg.Circuit,
		Requests:        lg.Requests,
		Concurrency:     lg.Concurrency,
		ColdFirstQueryS: cold,
		WarmP50s:        percentile(lat, 50),
		WarmP99s:        percentile(lat, 99),
		WarmMeanS:       sum / float64(len(lat)),
		WarmQPS:         float64(lg.Requests) / warmWall,
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheShared:     shared,
	}
	if rep.WarmP99s > 0 {
		rep.SpeedupP99VsCold = cold / rep.WarmP99s
	}
	if lookups := hits + misses + shared; lookups > 0 {
		rep.CacheHitRate = float64(hits) / float64(lookups)
	}

	if lg.Out != "" {
		if err := writeReport(lg.Out, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
