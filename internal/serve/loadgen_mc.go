package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/core"
	"ageguard/internal/device"
	"ageguard/internal/netlist"
	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

// MCLoadgenConfig parameterizes the Monte Carlo self-benchmark
// (ageguardd -loadgen-mc), the BENCH_PR10.json producer. Two phases:
//
//  1. HTTP: one cold /v1/mcguardband query at Samples against the real
//     benchmark circuit, then a warm repeat whose body must be
//     byte-identical (the LRU replays the distribution; the counter-based
//     streams would make even a recomputation bit-identical).
//  2. Engine differential: the sensitivity path versus the exact
//     per-sample full-SPICE re-characterization on a small registered
//     chain (exact mode on a synthesized benchmark would re-simulate
//     thousands of instances per sample), same seed and sample count,
//     comparing per-sample cost and the p95 guardband.
type MCLoadgenConfig struct {
	Samples      int    // HTTP-phase Monte Carlo samples (default 256)
	ExactSamples int    // differential-phase samples (default 8)
	Circuit      string // benchmark circuit queried over HTTP (default "RISC-5P")
	Seed         uint64 // sample-stream seed for both phases
	Out          string // report path ("" = don't write)
}

func (lg *MCLoadgenConfig) fill() {
	if lg.Samples <= 0 {
		lg.Samples = core.DefaultMCSamples
	}
	if lg.ExactSamples <= 0 {
		lg.ExactSamples = 8
	}
	if lg.Circuit == "" {
		lg.Circuit = "RISC-5P"
	}
}

// BenchMCReport is the BENCH_PR10.json shape.
type BenchMCReport struct {
	Bench     string `json:"bench"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`

	Circuit string `json:"circuit"`
	Samples int    `json:"samples"`
	Seed    uint64 `json:"seed"`

	// HTTP phase.
	ColdMCQueryS      float64 `json:"cold_mc_query_s"`
	WarmMCQueryS      float64 `json:"warm_mc_query_s"`
	WarmByteIdentical bool    `json:"warm_byte_identical"`
	SpeedupWarmVsCold float64 `json:"speedup_warm_vs_cold"`

	// Engine differential phase (small chain; see DiffInsts).
	DiffInsts          int     `json:"diff_insts"`
	DiffSamples        int     `json:"diff_samples"`
	SensPerSampleS     float64 `json:"sens_per_sample_s"`
	ExactPerSampleS    float64 `json:"exact_per_sample_s"`
	SpeedupSensVsExact float64 `json:"speedup_sens_vs_exact"`
	SensP95S           float64 `json:"sens_p95_s"`
	ExactP95S          float64 `json:"exact_p95_s"`
	P95DiffPct         float64 `json:"p95_diff_pct"`
}

// mcBenchNetlist builds the registered chain the differential phase
// times: capture flop, n combinational stages, launch flop.
func mcBenchNetlist(n int) *netlist.Netlist {
	nl := netlist.New("mcbench")
	nl.Inputs = []string{"a", "b"}
	nl.Outputs = []string{"y"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "w0"})
	nl.AddInst("rb", "DFF_X1", map[string]string{"D": "b", "CK": netlist.ClockNet, "Q": "wb"})
	nl.AddInst("g0", "NAND2_X1", map[string]string{"A1": "w0", "A2": "wb", "ZN": "w1"})
	prev := "w1"
	for i := 1; i < n; i++ {
		out := fmt.Sprintf("w%d", i+1)
		nl.AddInst(fmt.Sprintf("g%d", i), "INV_X1", map[string]string{"A": prev, "ZN": out})
		prev = out
	}
	nl.AddInst("rout", "DFF_X1", map[string]string{"D": prev, "CK": netlist.ClockNet, "Q": "y"})
	return nl
}

// LoadgenMC runs the Monte Carlo benchmark: the HTTP cold/warm phase on
// a loopback server, then the engine-level sensitivity-vs-exact
// differential. Writes the report to lg.Out when set and returns it.
func LoadgenMC(ctx context.Context, cfg Config, lg MCLoadgenConfig) (*BenchMCReport, error) {
	lg.fill()
	rep := &BenchMCReport{
		Bench:     "PR10",
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Circuit:   lg.Circuit,
		Samples:   lg.Samples,
		Seed:      lg.Seed,
	}

	if err := loadgenMCHTTP(ctx, cfg, lg, rep); err != nil {
		return nil, err
	}
	if err := loadgenMCDiff(ctx, cfg, lg, rep); err != nil {
		return nil, err
	}

	if lg.Out != "" {
		if err := writeReport(lg.Out, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// loadgenMCHTTP measures the cold and warm /v1/mcguardband query and
// asserts byte identity of the two bodies.
func loadgenMCHTTP(ctx context.Context, cfg Config, lg MCLoadgenConfig, rep *BenchMCReport) error {
	s := New(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The server's lifetime is managed by stop/done below, not by the
	// caller's ctx, so the drain stays clean even when ctx is canceled.
	serveCtx, stop := context.WithCancel(context.WithoutCancel(ctx))
	done := make(chan error, 1)
	go func() { done <- s.Serve(serveCtx, ln) }()
	defer func() {
		stop()
		<-done
	}()

	base := "http://" + ln.Addr().String()
	if err := client.New(base).Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	body, err := json.Marshal(api.MCGuardbandRequest{
		Circuit:  lg.Circuit,
		Scenario: api.Scenario{Kind: "worst"},
		Samples:  lg.Samples,
		Seed:     lg.Seed,
	})
	if err != nil {
		return err
	}
	post := func() ([]byte, float64, error) {
		t0 := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/mcguardband", bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, 0, err
		}
		defer res.Body.Close()
		raw, err := io.ReadAll(res.Body)
		if err != nil {
			return nil, 0, err
		}
		if res.StatusCode != http.StatusOK {
			return nil, 0, fmt.Errorf("status %d: %s", res.StatusCode, raw)
		}
		return raw, time.Since(t0).Seconds(), nil
	}

	coldBody, coldS, err := post()
	if err != nil {
		return fmt.Errorf("cold mc query: %w", err)
	}
	warmBody, warmS, err := post()
	if err != nil {
		return fmt.Errorf("warm mc query: %w", err)
	}
	rep.ColdMCQueryS = coldS
	rep.WarmMCQueryS = warmS
	rep.WarmByteIdentical = bytes.Equal(coldBody, warmBody)
	if !rep.WarmByteIdentical {
		return fmt.Errorf("warm /v1/mcguardband body differs from cold")
	}
	if warmS > 0 {
		rep.SpeedupWarmVsCold = coldS / warmS
	}
	return nil
}

// loadgenMCDiff times the sensitivity path at lg.Samples and the exact
// full-SPICE path at lg.ExactSamples on the same small chain, and
// compares the p95 guardband of same-seed same-count runs of both.
func loadgenMCDiff(ctx context.Context, cfg Config, lg MCLoadgenConfig, rep *BenchMCReport) error {
	f := cfg.Flow
	nl := mcBenchNetlist(6)
	sc := aging.WorstCase(f.Lifetime)
	v := device.DefaultVariation()
	rep.DiffInsts = len(nl.Insts)
	rep.DiffSamples = lg.ExactSamples

	// Sensitivity per-sample cost, amortized at the headline sample count
	// (the five-characterization setup is part of the cost and is shared
	// with the HTTP phase through the disk cache).
	t0 := time.Now()
	if _, err := f.MCGuardbandNetlist(ctx, "mcbench", nl, sc, core.MCConfig{
		Samples: lg.Samples, Seed: lg.Seed, Variation: v,
		Parallelism: f.Parallelism,
	}); err != nil {
		return fmt.Errorf("sens mc (N=%d): %w", lg.Samples, err)
	}
	rep.SensPerSampleS = time.Since(t0).Seconds() / float64(lg.Samples)

	// Same seed, same (small) sample count through both paths for the
	// distribution differential.
	sens, err := f.MCGuardbandNetlist(ctx, "mcbench", nl, sc, core.MCConfig{
		Samples: lg.ExactSamples, Seed: lg.Seed, Variation: v,
		Parallelism: f.Parallelism,
	})
	if err != nil {
		return fmt.Errorf("sens mc (N=%d): %w", lg.ExactSamples, err)
	}
	t0 = time.Now()
	exact, err := f.MCGuardbandNetlist(ctx, "mcbench", nl, sc, core.MCConfig{
		Samples: lg.ExactSamples, Seed: lg.Seed, Variation: v, Exact: true,
	})
	if err != nil {
		return fmt.Errorf("exact mc: %w", err)
	}
	rep.ExactPerSampleS = time.Since(t0).Seconds() / float64(lg.ExactSamples)

	if rep.SensPerSampleS > 0 {
		rep.SpeedupSensVsExact = rep.ExactPerSampleS / rep.SensPerSampleS
	}
	rep.SensP95S = sens.P95S
	rep.ExactP95S = exact.P95S
	if exact.P95S != 0 {
		rep.P95DiffPct = 100 * math.Abs(sens.P95S-exact.P95S) / math.Abs(exact.P95S)
	}
	return nil
}
