package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"ageguard/pkg/ageguard/api"
	"ageguard/pkg/ageguard/client"
)

// SmokeConfig parameterizes the self-check mode (ageguardd -smoke).
type SmokeConfig struct {
	Circuit string // benchmark circuit queried (default "RISC-5P")
}

// Smoke starts a Server for cfg on a loopback listener, issues one
// query per endpoint (the six POST /v1 endpoints plus the health,
// metrics and pprof GETs), asserts every one succeeds, then cancels the
// serve context and asserts the drain is clean. It is the make
// serve-smoke / CI gate: a fast end-to-end proof that the daemon comes
// up, answers every route and shuts down without error.
func Smoke(ctx context.Context, cfg Config, sm SmokeConfig, lg *log.Logger) error {
	if sm.Circuit == "" {
		sm.Circuit = "RISC-5P"
	}
	if cfg.DrainGrace <= 0 {
		// Long enough for the drain leg below to observe not-ready
		// before the listener closes.
		cfg.DrainGrace = 250 * time.Millisecond
	}
	s := New(cfg, nil)
	fence := make(chan struct{})
	s.warmFence = fence // hold the warm scan so "not ready yet" is observable

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The server's lifetime is managed by stop/done below, not by the
	// caller's ctx, so the drain stays clean even when ctx is canceled.
	serveCtx, stop := context.WithCancel(context.WithoutCancel(ctx))
	done := make(chan error, 1)
	go func() { done <- s.Serve(serveCtx, ln) }()
	defer stop()

	base := "http://" + ln.Addr().String()
	cl := client.New(base)
	scen := api.Scenario{Kind: "worst"}

	// expectNotReady asserts /readyz answers 503 while /healthz stays OK
	// — warming up (before the fence opens) and draining both look like
	// this to a load balancer.
	expectNotReady := func() error {
		if err := cl.Healthz(ctx); err != nil {
			return fmt.Errorf("liveness lost: %w", err)
		}
		err := cl.Readyz(ctx)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("readyz = %v, want 503", err)
		}
		return nil
	}

	step := func(name string, fn func() error) error {
		t0 := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		lg.Printf("smoke: %-12s ok in %v", name, time.Since(t0).Round(time.Millisecond))
		return nil
	}
	get := func(path string) func() error {
		return func() error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
			if err != nil {
				return err
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			return nil
		}
	}

	checks := []struct {
		name string
		fn   func() error
	}{
		{"warming", expectNotReady},
		{"readyz", func() error {
			close(fence)
			deadline := time.Now().Add(10 * time.Second)
			for {
				err := cl.Readyz(ctx)
				if err == nil {
					return nil
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("never became ready: %w", err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}},
		{"healthz", func() error { return cl.Healthz(ctx) }},
		{"guardband", func() error {
			resp, err := cl.Guardband(ctx, api.GuardbandRequest{Circuit: sm.Circuit, Scenario: scen})
			if err != nil {
				return err
			}
			if resp.AgedCPs <= resp.FreshCPs {
				return fmt.Errorf("implausible CPs: fresh=%g aged=%g", resp.FreshCPs, resp.AgedCPs)
			}
			return nil
		}},
		{"celltiming", func() error {
			resp, err := cl.CellTiming(ctx, api.CellTimingRequest{
				Cell: "INV_X1", Scenario: scen, InSlewS: 20e-12, LoadF: 2e-15,
			})
			if err != nil {
				return err
			}
			if len(resp.Arcs) == 0 {
				return fmt.Errorf("no arcs for INV_X1")
			}
			return nil
		}},
		{"paths", func() error {
			resp, err := cl.Paths(ctx, api.PathsRequest{Circuit: sm.Circuit, Scenario: scen, K: 3})
			if err != nil {
				return err
			}
			if len(resp.Paths) == 0 {
				return fmt.Errorf("no paths")
			}
			return nil
		}},
		{"grid", func() error {
			resp, err := cl.Grid(ctx, api.GridRequest{Circuit: sm.Circuit})
			if err != nil {
				return err
			}
			if resp.WorstGuardbandS <= 0 {
				return fmt.Errorf("worst guardband %g not positive", resp.WorstGuardbandS)
			}
			return nil
		}},
		{"batch", func() error {
			resp, err := cl.Batch(ctx, []api.BatchItem{
				api.GuardbandItem(api.GuardbandRequest{Circuit: sm.Circuit, Scenario: scen}),
				api.CellTimingItem(api.CellTimingRequest{
					Cell: "INV_X1", Scenario: scen, InSlewS: 20e-12, LoadF: 2e-15,
				}),
				api.PathsItem(api.PathsRequest{Circuit: sm.Circuit, Scenario: scen, K: 2}),
			})
			if err != nil {
				return err
			}
			for i, it := range resp.Items {
				if it.Error != nil {
					return fmt.Errorf("item %d: %d %s", i, it.Error.Status, it.Error.Message)
				}
			}
			gb := resp.Items[0].Guardband
			if gb == nil || gb.AgedCPs <= gb.FreshCPs {
				return fmt.Errorf("implausible batched guardband: %+v", gb)
			}
			return nil
		}},
		{"mcguardband", func() error {
			resp, err := cl.MCGuardband(ctx, api.MCGuardbandRequest{
				Circuit: sm.Circuit, Scenario: scen, Samples: 8, Seed: 1, Bins: 8,
			})
			if err != nil {
				return err
			}
			if resp.Samples != 8 || resp.MeanS <= 0 || resp.MaxS < resp.MinS {
				return fmt.Errorf("implausible mc distribution: %+v", resp)
			}
			return nil
		}},
		{"metrics", get("/metrics")},
		{"metrics.json", get("/metrics.json")},
		{"pprof", get("/debug/pprof/")},
	}
	for _, c := range checks {
		if err := step(c.name, c.fn); err != nil {
			return err
		}
	}

	// Drain: readiness must flip back to 503 during the grace window
	// (liveness intact), then Serve must return cleanly.
	stop()
	if err := step("draining", func() error {
		deadline := time.Now().Add(cfg.DrainGrace)
		for {
			err := expectNotReady()
			if err == nil {
				return nil
			}
			if time.Now().After(deadline) {
				return err
			}
			time.Sleep(5 * time.Millisecond)
		}
	}); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	lg.Printf("smoke: drain        ok")
	return nil
}
