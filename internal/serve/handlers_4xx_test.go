package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandler4xxTaxonomy drives every POST /v1 endpoint through the real
// HTTP mux with malformed or out-of-range requests and asserts the
// status taxonomy: 400 for requests the server refuses to interpret, 404
// for well-formed requests naming unknown things, 405 for wrong methods.
// Every case is rejected before any characterization or timing work, so
// the table stays fast.
func TestHandler4xxTaxonomy(t *testing.T) {
	s := New(quickConfig(sharedDir(t)), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		// Body decode failures (handleJSON's shared prologue).
		{"guardband malformed json", "/v1/guardband", `{"circuit":`, 400},
		{"celltiming malformed json", "/v1/celltiming", `not json at all`, 400},
		{"paths malformed json", "/v1/paths", `[]`, 400},
		{"grid malformed json", "/v1/grid", `{"circuit": 7}`, 400},
		{"mc malformed json", "/v1/mcguardband", `{"samples": "many"}`, 400},
		{"batch malformed json", "/v1/batch", `{"items": {}}`, 400},

		// Version gate.
		{"guardband unknown version", "/v1/guardband",
			`{"version":"v9","circuit":"RISC-5P","scenario":{"kind":"worst"}}`, 400},
		{"mc unknown version", "/v1/mcguardband",
			`{"version":"v0","circuit":"RISC-5P","scenario":{"kind":"worst"}}`, 400},

		// Scenario taxonomy.
		{"unknown scenario kind", "/v1/guardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"pessimal"}}`, 400},
		{"fresh with years", "/v1/guardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"fresh","years":10}}`, 400},
		{"negative years", "/v1/paths",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst","years":-1}}`, 400},
		{"lambda above one", "/v1/guardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"duty","lambda_p":1.5,"lambda_n":0.5}}`, 400},
		{"negative lambda", "/v1/guardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"duty","lambda_p":0.5,"lambda_n":-0.1}}`, 400},

		// Unknown names are 404, not 400.
		{"unknown circuit", "/v1/guardband",
			`{"circuit":"Z80","scenario":{"kind":"worst"}}`, 404},
		{"mc unknown circuit", "/v1/mcguardband",
			`{"circuit":"Z80","scenario":{"kind":"worst"}}`, 404},

		// Endpoint-specific parameter bounds.
		{"celltiming zero slew", "/v1/celltiming",
			`{"cell":"INV_X1","scenario":{"kind":"fresh"},"in_slew_s":0,"load_f":2e-15}`, 400},
		{"celltiming negative load", "/v1/celltiming",
			`{"cell":"INV_X1","scenario":{"kind":"fresh"},"in_slew_s":2e-11,"load_f":-1e-15}`, 400},
		{"paths negative k", "/v1/paths",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"k":-2}`, 400},
		{"paths oversized k", "/v1/paths",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"k":101}`, 400},
		{"grid negative years", "/v1/grid",
			`{"circuit":"RISC-5P","years":-5}`, 400},

		// Monte Carlo sampling-parameter bounds.
		{"mc negative samples", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"samples":-1}`, 400},
		{"mc oversized samples", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"samples":1000000}`, 400},
		{"mc negative bins", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"bins":-8}`, 400},
		{"mc oversized bins", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"bins":100000}`, 400},
		{"mc negative sigma", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"sigma_vth_v":-0.01}`, 400},
		{"mc oversized sigma vth", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"sigma_vth_v":5}`, 400},
		{"mc oversized sigma mu", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"worst"},"sigma_mu_rel":2}`, 400},
		{"mc fresh with years", "/v1/mcguardband",
			`{"circuit":"RISC-5P","scenario":{"kind":"fresh","years":3}}`, 400},

		// An empty batch is a request-level mistake.
		{"batch no items", "/v1/batch", `{"items":[]}`, 400},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Errorf("%s %s: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
			}
		})
	}

	// Item shape errors don't fail the whole batch: the reply is 200 with
	// a per-item 400 (failed items carry their own error while the rest
	// of the batch still answers).
	for _, body := range []string{
		`{"items":[{"kind":"celltiming","guardband":{"circuit":"RISC-5P"}}]}`,
		`{"items":[{"kind":"teleport"}]}`,
		`{"items":[{"kind":"guardband","guardband":{},"paths":{}}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var br struct {
			Items []struct {
				Error *struct {
					Status int `json:"status"`
				} `json:"error"`
			} `json:"items"`
		}
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("batch %s: status %d, decode err %v", body, resp.StatusCode, err)
		}
		if len(br.Items) != 1 || br.Items[0].Error == nil || br.Items[0].Error.Status != 400 {
			t.Errorf("batch %s: items = %+v, want one item with a 400 error", body, br.Items)
		}
	}

	// Wrong method on a POST route.
	resp, err := http.Get(ts.URL + "/v1/guardband")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/guardband: status %d, want 405", resp.StatusCode)
	}
}
