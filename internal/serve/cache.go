package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"ageguard/internal/conc"
	"ageguard/internal/obs"
)

// cache is the daemon's bounded in-memory LRU, keyed by namespaced
// strings ("lib|...", "nl|...", "az|..."), with per-key singleflight:
// concurrent misses for one key run the fill function once and share
// its result. Values are immutable once inserted (libraries, netlists,
// response payloads) or guard their own mutation (analyzerEntry).
type cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key -> element holding *entry

	flight conc.Flight[any]

	hits, misses, shared, evictions *obs.Counter
	size                            *obs.Gauge
}

type entry struct {
	key string
	val any
}

func newCache(max int, reg *obs.Registry) *cache {
	if max <= 0 {
		max = 128
	}
	return &cache{
		max:       max,
		ll:        list.New(),
		m:         map[string]*list.Element{},
		hits:      reg.Counter("serve.cache.hits"),
		misses:    reg.Counter("serve.cache.misses"),
		shared:    reg.Counter("serve.cache.shared"),
		evictions: reg.Counter("serve.cache.evictions"),
		size:      reg.Gauge("serve.cache.size"),
	}
}

// get returns the cached value for key, filling it on miss. Only the
// singleflight leader runs fill (and counts the miss); callers that
// joined an in-flight fill count under serve.cache.shared. When the
// leader dies of its *own* deadline or cancellation while this caller's
// ctx is still live, the work is retried under this ctx instead of
// inheriting the foreign error — a client with a short deadline must
// not poison the fill for everyone queued behind it.
func (c *cache) get(ctx context.Context, key string, fill func(context.Context) (any, error)) (any, error) {
	for {
		c.mu.Lock()
		if el, ok := c.m[key]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*entry).val
			c.mu.Unlock()
			c.hits.Inc()
			return v, nil
		}
		c.mu.Unlock()

		led := false
		v, err := c.flight.Do(ctx, key, func() (any, error) {
			led = true
			c.misses.Inc()
			v, err := fill(ctx)
			if err != nil {
				return nil, err
			}
			c.put(key, v)
			return v, nil
		})
		if err == nil {
			if !led {
				c.shared.Inc()
			}
			return v, nil
		}
		if ctx.Err() == nil && !led &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, conc.ErrCanceled)) {
			continue
		}
		return nil, err
	}
}

// peek returns the cached value for key without filling on miss. A hit
// counts like any other; a miss counts nothing — peek callers fall back
// to the fill path, which attributes the miss to the key it fills.
func (c *cache) peek(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	v := el.Value.(*entry).val
	c.mu.Unlock()
	c.hits.Inc()
	return v, true
}

// put inserts (or refreshes) an entry, evicting from the cold end past
// capacity.
func (c *cache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The gauge must track every exit path, including the refresh return.
	defer func() { c.size.Set(float64(c.lenLocked())) }()
	if el, ok := c.m[key]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&entry{key: key, val: v})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*entry).key)
		c.evictions.Inc()
	}
}

// lenLocked reports the entry count; the caller must hold c.mu.
func (c *cache) lenLocked() int { return c.ll.Len() }

// len reports the current entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lenLocked()
}
