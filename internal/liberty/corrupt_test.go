package liberty

import (
	"bytes"
	"strings"
	"testing"
)

// TestSalvageRoundTrip: salvage markers survive Write/Read and land on
// the right arc, edge and indices.
func TestSalvageRoundTrip(t *testing.T) {
	l := testLibrary()
	ct := l.Cells["NAND2_X1"]
	ct.Arcs[0].Salvaged = []SalvagePoint{{Edge: Rise, I: 0, J: 1}, {Edge: Fall, I: 1, J: 0}}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SALV rise 0 1") {
		t.Error("serialization lacks the SALV rise marker")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	arcs := got.Cells["NAND2_X1"].Arcs
	want := []SalvagePoint{{Edge: Rise, I: 0, J: 1}, {Edge: Fall, I: 1, J: 0}}
	if len(arcs[0].Salvaged) != 2 || arcs[0].Salvaged[0] != want[0] || arcs[0].Salvaged[1] != want[1] {
		t.Errorf("Salvaged after round trip = %v, want %v", arcs[0].Salvaged, want)
	}
	if n := got.SalvagedPoints(); n != 2 {
		t.Errorf("SalvagedPoints = %d, want 2", n)
	}
}

// TestSalvagedPointsEmpty: a fully simulated library reports zero.
func TestSalvagedPointsEmpty(t *testing.T) {
	if n := testLibrary().SalvagedPoints(); n != 0 {
		t.Errorf("SalvagedPoints = %d on a clean library, want 0", n)
	}
}

// TestMissingEndlibRejected: the ENDLIB terminator is mandatory, so a
// file that simply stops early — the signature of a truncated writer —
// fails to parse instead of silently yielding a smaller library.
func TestMissingEndlibRejected(t *testing.T) {
	l := testLibrary()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	if !strings.HasSuffix(full, "ENDLIB\n") {
		t.Fatalf("serialization does not end with ENDLIB")
	}
	cut := strings.TrimSuffix(full, "ENDLIB\n")
	if _, err := Read(strings.NewReader(cut)); err == nil {
		t.Fatal("library without ENDLIB parsed successfully")
	} else if !strings.Contains(err.Error(), "ENDLIB") {
		t.Errorf("error %v does not mention the missing terminator", err)
	}
	// An empty file is the degenerate truncation.
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input parsed successfully")
	}
}

// TestShortLinesRejected: lines cut mid-token by a truncation surface as
// parse errors on every header type, never index panics.
func TestShortLinesRejected(t *testing.T) {
	cases := []string{
		"LIBRARY",
		"LIBRARY l\nSCENARIO 1 2 3",
		"LIBRARY l\nVDD",
		"LIBRARY l\nCELL A B",
		"LIBRARY l\nCELL A B 1 2\nOUTPUT",
		"LIBRARY l\nCELL A B 1 2\nPINCAP A",
		"LIBRARY l\nCELL A B 1 2\nSEQ CK D 1",
		"LIBRARY l\nCELL A B 1 2\nARC A positive_unate",
		"LIBRARY l\nSLEWS 1 2\nLOADS 1 2\nCELL A B 1 2\nARC A positive_unate 0\nTABLE delay",
		"LIBRARY l\nSLEWS 1 2\nLOADS 1 2\nCELL A B 1 2\nARC A positive_unate 0\nSALV rise 0",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("short input %q parsed successfully", in)
		}
	}
}
