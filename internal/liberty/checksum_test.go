package liberty

import (
	"bytes"
	"strings"
	"testing"
)

// TestSummedRoundTrip: WriteSummed output verifies and parses back to
// the identical library, and the checksum line is the final line.
func TestSummedRoundTrip(t *testing.T) {
	l := testLibrary()
	var buf bytes.Buffer
	if err := WriteSummed(&buf, l); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, sumMarker) {
		t.Fatalf("last line %q is not the checksum line", last)
	}
	summed, err := VerifySummed(data)
	if !summed || err != nil {
		t.Fatalf("VerifySummed = (%v, %v), want (true, nil)", summed, err)
	}
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name || len(got.Cells) != len(l.Cells) {
		t.Errorf("round trip lost data: %q/%d cells vs %q/%d",
			got.Name, len(got.Cells), l.Name, len(l.Cells))
	}
}

// TestSummedDetectsEveryByteFlip: flipping any single byte of the
// summed region fails verification — the whole point of the trailing
// checksum over the parser's structural checks, which a numeric digit
// flip slips past.
func TestSummedDetectsEveryByteFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummed(&buf, testLibrary()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	end := bytes.LastIndex(data, []byte("\n"+sumMarker)) + 1
	for i := 0; i < end; i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x04
		summed, err := VerifySummed(mut)
		if !summed {
			// The flip destroyed the marker itself; the data region is
			// then intact and the structural fallback applies.
			continue
		}
		if err == nil {
			t.Fatalf("flip at byte %d (%q) passed verification", i, data[i])
		}
	}
}

// TestSummedDetectsTruncation: cutting the file anywhere after the
// marker (so the marker survives) fails verification; cutting before it
// reports unsummed and falls back to the structural checks.
func TestSummedDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummed(&buf, testLibrary()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	markerEnd := bytes.LastIndex(data, []byte("\n"+sumMarker)) + 1 + len(sumMarker)
	// len(data)-1 is excluded: dropping only the final newline loses no
	// data, and the checksum (over the region before the marker) still
	// rightly verifies.
	for cut := markerEnd; cut < len(data)-1; cut++ {
		summed, err := VerifySummed(data[:cut])
		if !summed || err == nil {
			t.Fatalf("truncation at %d (of %d) passed: summed=%v err=%v",
				cut, len(data), summed, err)
		}
	}
	// Cut inside the ENDLIB body: no checksum visible, the parser's
	// mandatory terminator catches it instead.
	summed, err := VerifySummed(data[:len(data)/2])
	if summed || err != nil {
		t.Fatalf("half file: VerifySummed = (%v, %v), want (false, nil)", summed, err)
	}
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("half file parsed successfully")
	}
}

// TestLegacyUnsummedFileStillLoads: files written by plain Write (the
// pre-checksum format) verify as unsummed and parse unchanged.
func TestLegacyUnsummedFileStillLoads(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testLibrary()); err != nil {
		t.Fatal(err)
	}
	summed, err := VerifySummed(buf.Bytes())
	if summed || err != nil {
		t.Fatalf("VerifySummed on legacy file = (%v, %v), want (false, nil)", summed, err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("legacy file no longer parses: %v", err)
	}
}
