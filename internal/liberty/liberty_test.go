package liberty

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"ageguard/internal/aging"
)

func sampleTable() *Table {
	t := NewTable([]float64{1, 2, 4}, []float64{10, 20})
	t.Values = [][]float64{{1, 2}, {3, 4}, {5, 6}}
	return t
}

func TestTableAtCorners(t *testing.T) {
	tb := sampleTable()
	cases := []struct{ s, l, want float64 }{
		{1, 10, 1}, {1, 20, 2}, {4, 10, 5}, {4, 20, 6},
		{2, 10, 3}, {1, 15, 1.5}, {3, 10, 4}, {1.5, 15, 2.5},
	}
	for _, c := range cases {
		if got := tb.At(c.s, c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v,%v) = %v, want %v", c.s, c.l, got, c.want)
		}
	}
}

func TestTableClamping(t *testing.T) {
	tb := sampleTable()
	if got := tb.At(0.1, 5); got != 1 {
		t.Errorf("below-range = %v, want clamp to 1", got)
	}
	if got := tb.At(100, 100); got != 6 {
		t.Errorf("above-range = %v, want clamp to 6", got)
	}
}

func TestTableAtWithinBounds(t *testing.T) {
	tb := sampleTable()
	f := func(s, l float64) bool {
		if math.IsNaN(s) || math.IsNaN(l) || math.IsInf(s, 0) || math.IsInf(l, 0) {
			return true
		}
		v := tb.At(s, l)
		return v >= 1 && v <= 6 // interpolation must stay within value range
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableMaxScale(t *testing.T) {
	tb := sampleTable()
	if tb.Max() != 6 {
		t.Errorf("Max = %v", tb.Max())
	}
	s := tb.Scale(2)
	if s.Max() != 12 || tb.Max() != 6 {
		t.Error("Scale must not mutate the receiver")
	}
}

func TestSenseInputEdge(t *testing.T) {
	if PositiveUnate.InputEdge(Rise) != Rise || PositiveUnate.InputEdge(Fall) != Fall {
		t.Error("positive unate edges wrong")
	}
	if NegativeUnate.InputEdge(Rise) != Fall || NegativeUnate.InputEdge(Fall) != Rise {
		t.Error("negative unate edges wrong")
	}
	if Rise.Opposite() != Fall || Fall.Opposite() != Rise {
		t.Error("Opposite wrong")
	}
}

func testLibrary() *Library {
	slews := []float64{5e-12, 5e-11}
	loads := []float64{5e-16, 2e-15}
	mk := func(base float64) *Table {
		t := NewTable(slews, loads)
		for i := range slews {
			for j := range loads {
				t.Values[i][j] = base + float64(i)*1e-12 + float64(j)*2e-12
			}
		}
		return t
	}
	nand := &CellTiming{
		Name: "NAND2_X1", Base: "NAND2", Drive: 1, AreaUm2: 0.8,
		Inputs: []string{"A1", "A2"}, Output: "ZN",
		PinCap: map[string]float64{"A1": 1e-15, "A2": 1.1e-15},
		Arcs: []Arc{
			{Pin: "A1", Sense: NegativeUnate, When: 2,
				Delay:   [2]*Table{mk(10e-12), mk(12e-12)},
				OutSlew: [2]*Table{mk(8e-12), mk(9e-12)}},
			{Pin: "A2", Sense: NegativeUnate, When: 1,
				Delay:   [2]*Table{mk(11e-12), mk(13e-12)},
				OutSlew: [2]*Table{mk(8e-12), mk(9e-12)}},
		},
	}
	dff := &CellTiming{
		Name: "DFF_X1", Base: "DFF", Drive: 1, AreaUm2: 4.5,
		Inputs: []string{"D", "CK"}, Output: "Q",
		PinCap: map[string]float64{"D": 0.8e-15, "CK": 0.9e-15},
		Seq:    true, Clock: "CK", Data: "D", SetupPS: 30e-12, HoldPS: 5e-12,
		Arcs: []Arc{
			{Pin: "CK", Sense: PositiveUnate,
				Delay:   [2]*Table{mk(40e-12), mk(42e-12)},
				OutSlew: [2]*Table{mk(10e-12), mk(11e-12)}},
		},
	}
	return &Library{
		Name:     "test",
		Scenario: aging.WorstCase(10),
		Vdd:      1.1,
		Slews:    slews,
		Loads:    loads,
		Cells:    map[string]*CellTiming{"NAND2_X1": nand, "DFF_X1": dff},
	}
}

func TestRoundTrip(t *testing.T) {
	l := testLibrary()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name || got.Vdd != l.Vdd {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Scenario != l.Scenario {
		t.Errorf("scenario mismatch: %+v vs %+v", got.Scenario, l.Scenario)
	}
	if !reflect.DeepEqual(got.Slews, l.Slews) || !reflect.DeepEqual(got.Loads, l.Loads) {
		t.Error("axes mismatch")
	}
	if len(got.Cells) != len(l.Cells) {
		t.Fatalf("cell count %d, want %d", len(got.Cells), len(l.Cells))
	}
	gn := got.MustCell("NAND2_X1")
	ln := l.MustCell("NAND2_X1")
	if !reflect.DeepEqual(gn.Arcs[0].Delay[Rise].Values, ln.Arcs[0].Delay[Rise].Values) {
		t.Error("table values mismatch after round trip")
	}
	if gn.Arcs[1].When != 1 || gn.Arcs[0].Sense != NegativeUnate {
		t.Error("arc metadata mismatch")
	}
	gd := got.MustCell("DFF_X1")
	if !gd.Seq || gd.Clock != "CK" || gd.SetupPS != 30e-12 {
		t.Errorf("sequential metadata mismatch: %+v", gd)
	}
	if !reflect.DeepEqual(gn.PinCap, ln.PinCap) {
		t.Error("pin caps mismatch")
	}
}

func TestMergeLibraries(t *testing.T) {
	a := testLibrary()
	a.Scenario = aging.WorstCase(10).WithLambda(0.4, 0.6)
	b := testLibrary()
	b.Scenario = aging.WorstCase(10).WithLambda(1.0, 1.0)
	m := MergeLibraries("complete", []*Library{a, b})
	if len(m.Cells) != 4 {
		t.Fatalf("merged cells = %d, want 4", len(m.Cells))
	}
	if _, ok := m.Cell("NAND2_X1_0.4_0.6"); !ok {
		t.Error("missing indexed cell NAND2_X1_0.4_0.6 (paper naming)")
	}
	if _, ok := m.Cell("DFF_X1_1.0_1.0"); !ok {
		t.Error("missing indexed DFF")
	}
	if len(m.Keys) != 2 {
		t.Errorf("keys = %v", m.Keys)
	}
}

func TestIndexedName(t *testing.T) {
	if got := IndexedName("AND2_X1", 0.4, 0.6); got != "AND2_X1_0.4_0.6" {
		t.Errorf("IndexedName = %q", got)
	}
	if got := IndexedName("NAND2_X2", 0.9, 0.5); got != "NAND2_X2_0.9_0.5" {
		t.Errorf("IndexedName = %q", got)
	}
}

func TestCellNamesSorted(t *testing.T) {
	l := testLibrary()
	names := l.CellNames()
	if !reflect.DeepEqual(names, []string{"DFF_X1", "NAND2_X1"}) {
		t.Errorf("CellNames = %v", names)
	}
}

func TestWorstDelay(t *testing.T) {
	l := testLibrary()
	ct := l.MustCell("NAND2_X1")
	w := ct.WorstDelay(5e-12, 5e-16)
	if w != 13e-12 {
		t.Errorf("WorstDelay = %v, want 13ps (A2 fall table)", w)
	}
}

func TestArcsFor(t *testing.T) {
	l := testLibrary()
	ct := l.MustCell("NAND2_X1")
	if n := len(ct.ArcsFor("A1")); n != 1 {
		t.Errorf("ArcsFor(A1) = %d arcs", n)
	}
	if n := len(ct.ArcsFor("ZZ")); n != 0 {
		t.Errorf("ArcsFor(ZZ) = %d arcs", n)
	}
}

func TestMustCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCell should panic on unknown cell")
		}
	}()
	testLibrary().MustCell("NOPE")
}
