package liberty

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLibertySyntax(t *testing.T) {
	l := testLibrary()
	var buf bytes.Buffer
	if err := WriteLiberty(&buf, l); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"library (test)",
		"delay_model : table_lookup;",
		"lu_table_template (delay_2x2)",
		"variable_1 : input_net_transition;",
		"cell (NAND2_X1)",
		"pin (A1)",
		"direction : input;",
		"timing_sense : negative_unate;",
		"cell_rise (delay_2x2)",
		"rise_transition (delay_2x2)",
		"cell (DFF_X1)",
		"clocked_on : \"CK\";",
		"timing_type : rising_edge;",
		"timing_type : setup_rising;",
		"clock : true;",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("liberty output missing %q", want)
		}
	}
	// Balanced braces.
	if o, c := strings.Count(text, "{"), strings.Count(text, "}"); o != c {
		t.Errorf("unbalanced braces: %d vs %d", o, c)
	}
	// Axes in library units: 5ps -> 0.005 ns; 0.5fF -> 0.0005 pF.
	if !strings.Contains(text, "index_1 (\"0.005, 0.05\");") {
		t.Error("slew axis not converted to ns")
	}
	if !strings.Contains(text, "index_2 (\"0.0005, 0.002\");") {
		t.Error("load axis not converted to pF")
	}
}

func TestSanitizeLib(t *testing.T) {
	if got := sanitizeLib("aged_y10.0_1.0_1.0"); got != "aged_y10_0_1_0_1_0" {
		t.Errorf("sanitize = %q", got)
	}
}
