// Package liberty implements the timing-library data model consumed by
// the synthesis and static-timing-analysis packages — the reproduction's
// equivalent of Liberty (.lib) NLDM libraries.
//
// A Library holds, per cell, nonlinear delay-model lookup tables: for each
// timing arc (input pin -> output) two 2-D tables indexed by input slew
// and output load capacitance, one for delay and one for output slew, for
// each output edge. Degradation-aware libraries (the paper's contribution)
// are ordinary Libraries whose values were characterized with aged
// transistor models; a MergedLibrary indexes many of them by duty-cycle
// pair, implementing the paper's "complete degradation-aware cell library"
// with CELL_<lambdaP>_<lambdaN> naming.
package liberty

import (
	"fmt"
	"math"
	"sort"

	"ageguard/internal/aging"
)

// Edge is a signal transition direction.
type Edge int

const (
	// Rise is a low-to-high transition.
	Rise Edge = iota
	// Fall is a high-to-low transition.
	Fall
)

// String returns "rise" or "fall".
func (e Edge) String() string {
	if e == Fall {
		return "fall"
	}
	return "rise"
}

// Opposite returns the other edge.
func (e Edge) Opposite() Edge { return 1 - e }

// Table is a 2-D NLDM lookup table: Values[i][j] corresponds to input slew
// Slews[i] and output load Loads[j]. Axes must be strictly ascending.
type Table struct {
	Slews  []float64 // input transition times [s]
	Loads  []float64 // output load capacitances [F]
	Values [][]float64
}

// NewTable allocates a zero-filled table over the given axes.
func NewTable(slews, loads []float64) *Table {
	v := make([][]float64, len(slews))
	for i := range v {
		v[i] = make([]float64, len(loads))
	}
	return &Table{Slews: slews, Loads: loads, Values: v}
}

// At returns the bilinearly interpolated value at (slew, load). Queries
// outside the characterized region are clamped to the boundary, matching
// common STA tool behaviour.
func (t *Table) At(slew, load float64) float64 {
	i0, i1, fi := locate(t.Slews, slew)
	j0, j1, fj := locate(t.Loads, load)
	v00 := t.Values[i0][j0]
	v01 := t.Values[i0][j1]
	v10 := t.Values[i1][j0]
	v11 := t.Values[i1][j1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

// locate finds the bracketing indices and interpolation fraction for x in
// ascending axis, clamping outside the range.
func locate(axis []float64, x float64) (lo, hi int, f float64) {
	n := len(axis)
	if n == 1 || x <= axis[0] {
		return 0, 0, 0
	}
	if x >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	hi = sort.SearchFloat64s(axis, x)
	lo = hi - 1
	return lo, hi, (x - axis[lo]) / (axis[hi] - axis[lo])
}

// Max returns the largest table value.
func (t *Table) Max() float64 {
	m := math.Inf(-1)
	for _, row := range t.Values {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Scale returns a copy of the table with every value multiplied by k.
func (t *Table) Scale(k float64) *Table {
	out := NewTable(t.Slews, t.Loads)
	for i, row := range t.Values {
		for j, v := range row {
			out.Values[i][j] = v * k
		}
	}
	return out
}

// Arc is one timing arc of a cell: from input pin Pin to the cell output,
// under a fixed sensitization of the side inputs.
type Arc struct {
	Pin   string
	Sense Sense
	// When encodes the side-input values used during characterization as
	// bits over the cell's input order (pin's own bit is ignored).
	When uint

	// Tables per output edge. For a positive-unate arc the Rise tables are
	// driven by an input rise; for negative-unate, by an input fall.
	Delay   [2]*Table // indexed by Edge of the OUTPUT transition
	OutSlew [2]*Table

	// Salvaged lists grid points whose transient simulation failed
	// permanently and whose table entries were interpolated from
	// converged neighbors instead (see package char). Empty for fully
	// simulated arcs. The markers survive .alib serialization so cached
	// libraries disclose their provenance.
	Salvaged []SalvagePoint
}

// SalvagePoint identifies one interpolated (salvaged) grid point of an
// arc: the output edge and the slew/load axis indices.
type SalvagePoint struct {
	Edge Edge
	I, J int
}

// Sense is the polarity relation between input and output transitions.
type Sense int

const (
	// PositiveUnate: output follows the input direction.
	PositiveUnate Sense = iota
	// NegativeUnate: output opposes the input direction.
	NegativeUnate
)

// String returns the liberty-style sense name.
func (s Sense) String() string {
	if s == NegativeUnate {
		return "negative_unate"
	}
	return "positive_unate"
}

// InputEdge returns which input transition produces the given output edge
// under this arc's sense.
func (s Sense) InputEdge(out Edge) Edge {
	if s == PositiveUnate {
		return out
	}
	return out.Opposite()
}

// CellTiming is the timing view of one library cell.
type CellTiming struct {
	Name    string // possibly lambda-indexed name in merged libraries
	Base    string
	Drive   int
	AreaUm2 float64
	Inputs  []string
	Output  string
	PinCap  map[string]float64 // input pin name -> capacitance [F]
	Arcs    []Arc

	// Sequential cells only.
	Seq     bool
	Clock   string
	Data    string
	SetupPS float64 // setup time [s]
	HoldPS  float64 // hold time [s]
}

// ArcsFor returns all arcs originating at the given input pin.
func (ct *CellTiming) ArcsFor(pin string) []Arc {
	var out []Arc
	for _, a := range ct.Arcs {
		if a.Pin == pin {
			out = append(out, a)
		}
	}
	return out
}

// WorstDelay returns the largest delay of any arc/edge at (slew, load),
// a convenient pessimistic summary used by the mapper's quick estimates.
func (ct *CellTiming) WorstDelay(slew, load float64) float64 {
	var w float64
	for _, a := range ct.Arcs {
		for e := 0; e < 2; e++ {
			if a.Delay[e] == nil {
				continue
			}
			if d := a.Delay[e].At(slew, load); d > w {
				w = d
			}
		}
	}
	return w
}

// Library is one characterized library: all cells under a single aging
// scenario.
type Library struct {
	Name     string
	Scenario aging.Scenario
	Vdd      float64
	Slews    []float64 // characterization slew axis
	Loads    []float64 // characterization load axis
	Cells    map[string]*CellTiming
}

// Cell returns the timing view of a cell by name.
func (l *Library) Cell(name string) (*CellTiming, bool) {
	c, ok := l.Cells[name]
	return c, ok
}

// MustCell is Cell that panics on missing names.
func (l *Library) MustCell(name string) *CellTiming {
	c, ok := l.Cells[name]
	if !ok {
		panic(fmt.Sprintf("liberty: library %q has no cell %q", l.Name, name))
	}
	return c
}

// SalvagedPoints counts the interpolated (salvaged) grid points across
// all cells and arcs; 0 means every table entry was simulated.
func (l *Library) SalvagedPoints() int {
	n := 0
	for _, ct := range l.Cells {
		for i := range ct.Arcs {
			n += len(ct.Arcs[i].Salvaged)
		}
	}
	return n
}

// CellNames returns all cell names, sorted.
func (l *Library) CellNames() []string {
	out := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Merged is the paper's "complete degradation-aware cell library": the
// union of per-scenario libraries with cells renamed CELL_<lp>_<ln>.
// An annotated netlist referencing e.g. "NAND2_X1_0.4_0.6" resolves
// against it directly, making it usable by unmodified STA.
type Merged struct {
	Library
	// Keys lists the lambda keys merged in, e.g. "0.4_0.6".
	Keys []string
}

// MergeLibraries builds the complete library from per-scenario libraries.
// Cell NAME from a library with scenario key K becomes NAME_K.
func MergeLibraries(name string, libs []*Library) *Merged {
	m := &Merged{Library: Library{Name: name, Cells: map[string]*CellTiming{}}}
	for _, l := range libs {
		key := l.Scenario.Key()
		m.Keys = append(m.Keys, key)
		if m.Vdd == 0 {
			m.Vdd = l.Vdd
			m.Slews = l.Slews
			m.Loads = l.Loads
		}
		for cn, ct := range l.Cells {
			cp := *ct
			cp.Name = cn + "_" + key
			m.Cells[cp.Name] = &cp
		}
	}
	sort.Strings(m.Keys)
	return m
}

// IndexedName returns the merged-library cell name for a base cell under
// the given scenario, following the paper's convention
// (e.g. "AND2_X1" + lp=0.4, ln=0.6 -> "AND2_X1_0.4_0.6").
func IndexedName(cell string, lp, ln float64) string {
	return fmt.Sprintf("%s_%.1f_%.1f", cell, lp, ln)
}
