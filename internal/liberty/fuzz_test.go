package liberty

import (
	"bytes"

	"ageguard/internal/aging"
	"strings"
	"testing"
)

// fuzzSeedLibrary serializes a minimal two-cell library so the fuzzer
// starts from well-formed input and mutates toward the parser's edges.
func fuzzSeedLibrary() []byte {
	tb := NewTable([]float64{1e-12, 2e-12}, []float64{1e-15, 2e-15})
	for i := range tb.Values {
		for j := range tb.Values[i] {
			tb.Values[i][j] = float64(i+j+1) * 1e-12
		}
	}
	l := &Library{
		Name:     "fuzzseed",
		Scenario: aging.Fresh(),
		Vdd:      1.1,
		Slews:    tb.Slews,
		Loads:    tb.Loads,
		Cells: map[string]*CellTiming{
			"INV_X1": {
				Name:   "INV_X1",
				Base:   "INV",
				Drive:  1,
				Inputs: []string{"A"},
				Output: "ZN",
				PinCap: map[string]float64{"A": 1e-15},
				Arcs: []Arc{{
					Pin:     "A",
					Sense:   NegativeUnate,
					Delay:   [2]*Table{tb, tb},
					OutSlew: [2]*Table{tb, tb},
				}},
			},
			"DFF_X1": {
				Name:    "DFF_X1",
				Base:    "DFF",
				Drive:   1,
				Inputs:  []string{"D"},
				Output:  "Q",
				PinCap:  map[string]float64{"D": 1e-15, "CK": 1e-15},
				Seq:     true,
				Clock:   "CK",
				Data:    "D",
				SetupPS: 20,
				HoldPS:  5,
				Arcs: []Arc{{
					Pin:     "CK",
					Sense:   PositiveUnate,
					Delay:   [2]*Table{tb, tb},
					OutSlew: [2]*Table{tb, tb},
				}},
			},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLibertyRead asserts the cache deserializer's contract on arbitrary
// bytes: parse cleanly or return an error — never panic, never hang. A
// successfully parsed library must also survive re-serialization and
// re-parse (the cache writer/loader round trip).
func FuzzLibertyRead(f *testing.F) {
	seed := fuzzSeedLibrary()
	f.Add(seed)
	f.Add([]byte(""))
	f.Add([]byte("LIBRARY fuzz\nENDLIB\n"))
	f.Add([]byte("LIBRARY truncated"))
	f.Add(bytes.Repeat([]byte("CELL "), 100))
	// A prefix truncation of the valid seed must be rejected (no ENDLIB).
	f.Add(seed[:len(seed)/2])
	// Oversized axes must be refused before TABLE blocks can allocate
	// len(Slews)*len(Loads) floats per arc (found by this fuzzer).
	f.Add([]byte("LIBRARY big\nSLEWS" + strings.Repeat(" 1e-12", 5000) + "\nENDLIB\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, l); err != nil {
			t.Fatalf("parsed library failed to serialize: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

func TestFuzzSeedParses(t *testing.T) {
	l, err := Read(bytes.NewReader(fuzzSeedLibrary()))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Cells) != 2 || l.Name != "fuzzseed" {
		t.Fatalf("seed library = %+v", l)
	}
	if _, err := Read(strings.NewReader("garbage\n")); err == nil {
		t.Error("garbage parsed")
	}
}

// TestReadRejectsOversizedAxis pins the allocation guard the fuzzer
// motivated: an axis line with more points than any real grid must fail
// parsing instead of sizing table allocations.
func TestReadRejectsOversizedAxis(t *testing.T) {
	huge := "LIBRARY big\nLOADS" + strings.Repeat(" 2e-15", maxAxisPoints+1) + "\nENDLIB\n"
	if _, err := Read(strings.NewReader(huge)); err == nil {
		t.Fatal("axis with maxAxisPoints+1 entries parsed")
	}
	ok := "LIBRARY big\nLOADS" + strings.Repeat(" 2e-15", maxAxisPoints) + "\nENDLIB\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Fatalf("axis at the limit rejected: %v", err)
	}
}
