package liberty

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteLiberty serializes the library in genuine Liberty (.lib) syntax so
// the generated degradation-aware libraries can be consumed by external
// EDA tools — mirroring the paper's published artifact, which plugs into
// Synopsys flows unmodified. Units follow common industrial practice:
// time in ns, capacitance in pF, voltage in V.
//
// The emitted subset covers what timing flows need: per-cell area, pin
// directions and capacitances, NLDM timing groups (cell_rise/cell_fall,
// rise_transition/fall_transition) with lu_table templates, sequential
// cells with setup/hold constraints, and lambda-indexed cell names for
// merged libraries.
func WriteLiberty(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	name := sanitizeLib(l.Name)
	fmt.Fprintf(bw, "library (%s) {\n", name)
	fmt.Fprintf(bw, "  comment : \"degradation-aware library, scenario %s\";\n", l.Scenario)
	fmt.Fprintf(bw, "  delay_model : table_lookup;\n")
	fmt.Fprintf(bw, "  time_unit : \"1ns\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1,pf);\n")
	fmt.Fprintf(bw, "  voltage_unit : \"1V\";\n")
	fmt.Fprintf(bw, "  nom_voltage : %.2f;\n", l.Vdd)
	fmt.Fprintf(bw, "  nom_temperature : %.1f;\n", l.Scenario.TempK-273.15)
	fmt.Fprintf(bw, "  nom_process : 1.0;\n")

	fmt.Fprintf(bw, "  lu_table_template (delay_%dx%d) {\n", len(l.Slews), len(l.Loads))
	fmt.Fprintf(bw, "    variable_1 : input_net_transition;\n")
	fmt.Fprintf(bw, "    variable_2 : total_output_net_capacitance;\n")
	fmt.Fprintf(bw, "    index_1 (\"%s\");\n", axis(l.Slews, 1e9))
	fmt.Fprintf(bw, "    index_2 (\"%s\");\n", axis(l.Loads, 1e12))
	fmt.Fprintf(bw, "  }\n")

	for _, cn := range l.CellNames() {
		writeLibertyCell(bw, l, l.Cells[cn])
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func sanitizeLib(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}

func axis(v []float64, scale float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.6g", x*scale)
	}
	return strings.Join(parts, ", ")
}

func writeLibertyCell(bw *bufio.Writer, l *Library, ct *CellTiming) {
	fmt.Fprintf(bw, "  cell (%s) {\n", sanitizeLib(ct.Name))
	fmt.Fprintf(bw, "    area : %.4f;\n", ct.AreaUm2)
	if ct.Seq {
		fmt.Fprintf(bw, "    ff (IQ, IQN) {\n")
		fmt.Fprintf(bw, "      clocked_on : \"%s\";\n", ct.Clock)
		fmt.Fprintf(bw, "      next_state : \"%s\";\n", ct.Data)
		fmt.Fprintf(bw, "    }\n")
	}
	for _, pin := range ct.Inputs {
		fmt.Fprintf(bw, "    pin (%s) {\n", pin)
		fmt.Fprintf(bw, "      direction : input;\n")
		fmt.Fprintf(bw, "      capacitance : %.6g;\n", ct.PinCap[pin]*1e12)
		if ct.Seq && pin == ct.Clock {
			fmt.Fprintf(bw, "      clock : true;\n")
		}
		if ct.Seq && pin == ct.Data {
			writeConstraint(bw, "setup_rising", ct.Clock, ct.SetupPS*1e9)
			writeConstraint(bw, "hold_rising", ct.Clock, ct.HoldPS*1e9)
		}
		fmt.Fprintf(bw, "    }\n")
	}
	fmt.Fprintf(bw, "    pin (%s) {\n", ct.Output)
	fmt.Fprintf(bw, "      direction : output;\n")
	if ct.Seq {
		fmt.Fprintf(bw, "      function : \"IQ\";\n")
	}
	for _, arc := range ct.Arcs {
		fmt.Fprintf(bw, "      timing () {\n")
		fmt.Fprintf(bw, "        related_pin : \"%s\";\n", arc.Pin)
		if ct.Seq && arc.Pin == ct.Clock {
			fmt.Fprintf(bw, "        timing_type : rising_edge;\n")
		} else {
			fmt.Fprintf(bw, "        timing_sense : %s;\n", arc.Sense)
		}
		writeLuTable(bw, l, "cell_rise", arc.Delay[Rise])
		writeLuTable(bw, l, "rise_transition", arc.OutSlew[Rise])
		writeLuTable(bw, l, "cell_fall", arc.Delay[Fall])
		writeLuTable(bw, l, "fall_transition", arc.OutSlew[Fall])
		fmt.Fprintf(bw, "      }\n")
	}
	fmt.Fprintf(bw, "    }\n")
	fmt.Fprintf(bw, "  }\n")
}

func writeConstraint(bw *bufio.Writer, kind, clock string, valueNS float64) {
	fmt.Fprintf(bw, "      timing () {\n")
	fmt.Fprintf(bw, "        related_pin : \"%s\";\n", clock)
	fmt.Fprintf(bw, "        timing_type : %s;\n", kind)
	fmt.Fprintf(bw, "        rise_constraint (scalar) { values (\"%.6g\"); }\n", valueNS)
	fmt.Fprintf(bw, "        fall_constraint (scalar) { values (\"%.6g\"); }\n", valueNS)
	fmt.Fprintf(bw, "      }\n")
}

func writeLuTable(bw *bufio.Writer, l *Library, kind string, t *Table) {
	if t == nil {
		return
	}
	fmt.Fprintf(bw, "        %s (delay_%dx%d) {\n", kind, len(l.Slews), len(l.Loads))
	fmt.Fprintf(bw, "          values ( \\\n")
	for i, row := range t.Values {
		vals := make([]string, len(row))
		for j, v := range row {
			vals[j] = fmt.Sprintf("%.6g", v*1e9)
		}
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(bw, "            \"%s\"%s\n", strings.Join(vals, ", "), sep)
	}
	fmt.Fprintf(bw, "          );\n")
	fmt.Fprintf(bw, "        }\n")
}
