package liberty

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
)

// sumMarker introduces the trailing integrity line of a summed .alib
// file: "#SUM fnv64a <16 hex digits>\n", covering every byte that
// precedes the line. The marker is a comment, so parsers that predate
// the checksum (and Read itself) skip it unchanged — old files without
// the line remain valid, protected only by the ENDLIB/bounds checks.
const sumMarker = "#SUM fnv64a "

// WriteSummed serializes the library exactly like Write and appends the
// trailing checksum line. Any later truncation or bit flip of the file
// — including one that removes the checksum line itself, since the
// summed region ends with ENDLIB followed by the marker — is detected
// by VerifySummed.
func WriteSummed(w io.Writer, l *Library) error {
	h := fnv.New64a()
	if err := Write(io.MultiWriter(w, h), l); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s%016x\n", sumMarker, h.Sum64())
	return err
}

// VerifySummed checks the trailing checksum of a serialized library.
// summed reports whether the file carries one at all: legacy files
// (written before the checksum existed) return (false, nil) and the
// caller falls back to the parser's structural ENDLIB/bounds checks.
// A present-but-wrong checksum — truncation inside the line, a
// corrupted digest, or data bytes that no longer hash to it — returns a
// non-nil error.
func VerifySummed(data []byte) (summed bool, err error) {
	i := bytes.LastIndex(data, []byte("\n"+sumMarker))
	if i < 0 {
		return false, nil
	}
	region, line := data[:i+1], data[i+1:]
	line = bytes.TrimRight(line, "\n")
	hexDigits := string(line[len(sumMarker):])
	want, perr := strconv.ParseUint(hexDigits, 16, 64)
	if perr != nil || len(hexDigits) != 16 {
		return true, fmt.Errorf("liberty: malformed checksum line %q", line)
	}
	h := fnv.New64a()
	h.Write(region)
	if got := h.Sum64(); got != want {
		return true, fmt.Errorf("liberty: checksum mismatch: file says %016x, data hashes to %016x", want, got)
	}
	return true, nil
}
