package liberty

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ageguard/internal/aging"
)

// Write serializes the library in the reproduction's line-oriented .alib
// format (a simplified Liberty equivalent carrying the same NLDM data).
// All arcs must use the library-global slew/load axes, which is what the
// characterizer produces.
func Write(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "LIBRARY %s\n", l.Name)
	s := l.Scenario
	fmt.Fprintf(bw, "SCENARIO %g %g %g %g %g\n", s.Years, s.TempK, s.Vdd, s.LambdaP, s.LambdaN)
	fmt.Fprintf(bw, "VDD %g\n", l.Vdd)
	fmt.Fprintf(bw, "SLEWS%s\n", floats(l.Slews))
	fmt.Fprintf(bw, "LOADS%s\n", floats(l.Loads))
	for _, name := range l.CellNames() {
		ct := l.Cells[name]
		fmt.Fprintf(bw, "CELL %s %s %d %g\n", ct.Name, ct.Base, ct.Drive, ct.AreaUm2)
		fmt.Fprintf(bw, "OUTPUT %s\n", ct.Output)
		fmt.Fprintf(bw, "INPUTS %s\n", strings.Join(ct.Inputs, " "))
		for _, p := range ct.Inputs {
			fmt.Fprintf(bw, "PINCAP %s %g\n", p, ct.PinCap[p])
		}
		if ct.Seq {
			fmt.Fprintf(bw, "SEQ %s %s %g %g\n", ct.Clock, ct.Data, ct.SetupPS, ct.HoldPS)
		}
		for _, a := range ct.Arcs {
			fmt.Fprintf(bw, "ARC %s %s %d\n", a.Pin, a.Sense, a.When)
			for e := Rise; e <= Fall; e++ {
				if a.Delay[e] != nil {
					fmt.Fprintf(bw, "TABLE delay %s\n", e)
					writeTable(bw, a.Delay[e])
				}
				if a.OutSlew[e] != nil {
					fmt.Fprintf(bw, "TABLE slew %s\n", e)
					writeTable(bw, a.OutSlew[e])
				}
			}
			for _, sp := range a.Salvaged {
				fmt.Fprintf(bw, "SALV %s %d %d\n", sp.Edge, sp.I, sp.J)
			}
		}
		fmt.Fprintln(bw, "ENDCELL")
	}
	fmt.Fprintln(bw, "ENDLIB")
	return bw.Flush()
}

func floats(v []float64) string {
	var sb strings.Builder
	for _, x := range v {
		fmt.Fprintf(&sb, " %g", x)
	}
	return sb.String()
}

func writeTable(w io.Writer, t *Table) {
	for _, row := range t.Values {
		fmt.Fprintln(w, strings.TrimSpace(floats(row)))
	}
}

// Read parses a library previously produced by Write. The ENDLIB
// terminator is mandatory: a file that ends before it — e.g. a cache
// entry truncated by a crashed or killed writer — is rejected rather
// than silently parsed as a smaller library, so cache loaders can detect
// every prefix truncation as corruption and rebuild.
func Read(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	p := &parser{sc: sc}
	lib, err := p.library()
	if err != nil {
		return nil, fmt.Errorf("liberty: line %d: %w", p.lineNo, err)
	}
	return lib, nil
}

type parser struct {
	sc     *bufio.Scanner
	lineNo int
	peeked []string
	done   bool
}

func (p *parser) next() ([]string, error) {
	if p.peeked != nil {
		f := p.peeked
		p.peeked = nil
		return f, nil
	}
	for p.sc.Scan() {
		p.lineNo++
		line := strings.TrimSpace(p.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	p.done = true
	return nil, io.EOF
}

func (p *parser) unread(f []string) { p.peeked = f }

// need guards field accesses against lines a truncation cut mid-token:
// they must surface as parse errors, never index panics.
func need(f []string, n int) error {
	if len(f) < n {
		return fmt.Errorf("short %s line", f[0])
	}
	return nil
}

// maxAxisPoints bounds a table axis read from disk. Real
// characterization grids are tens of points per axis; the cap exists
// because every TABLE block allocates len(Slews)*len(Loads) floats up
// front, so a corrupted cache entry carrying a megabyte-long axis line
// must fail parsing instead of driving a multi-gigabyte allocation.
const maxAxisPoints = 1024

func parseAxis(fields []string) ([]float64, error) {
	if len(fields) > maxAxisPoints {
		return nil, fmt.Errorf("axis has %d points, limit %d", len(fields), maxAxisPoints)
	}
	return parseFloats(fields)
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *parser) library() (*Library, error) {
	l := &Library{Cells: map[string]*CellTiming{}}
	for {
		f, err := p.next()
		if err == io.EOF {
			return nil, fmt.Errorf("truncated library: missing ENDLIB terminator")
		}
		if err != nil {
			return nil, err
		}
		switch f[0] {
		case "LIBRARY":
			if err := need(f, 2); err != nil {
				return nil, err
			}
			l.Name = f[1]
		case "SCENARIO":
			if err := need(f, 6); err != nil {
				return nil, err
			}
			v, err := parseFloats(f[1:6])
			if err != nil {
				return nil, err
			}
			l.Scenario = aging.Scenario{Years: v[0], TempK: v[1], Vdd: v[2], LambdaP: v[3], LambdaN: v[4]}
		case "VDD":
			if err := need(f, 2); err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, err
			}
			l.Vdd = v
		case "SLEWS":
			v, err := parseAxis(f[1:])
			if err != nil {
				return nil, err
			}
			l.Slews = v
		case "LOADS":
			v, err := parseAxis(f[1:])
			if err != nil {
				return nil, err
			}
			l.Loads = v
		case "CELL":
			ct, err := p.cell(l, f)
			if err != nil {
				return nil, err
			}
			l.Cells[ct.Name] = ct
		case "ENDLIB":
			// Write always emits a LIBRARY header; a file reaching ENDLIB
			// without one would re-serialize as a short LIBRARY line that
			// Read itself rejects, so refuse the round-trip asymmetry here.
			if l.Name == "" {
				return nil, fmt.Errorf("missing LIBRARY header")
			}
			return l, nil
		default:
			return nil, fmt.Errorf("unexpected token %q", f[0])
		}
	}
}

func (p *parser) cell(l *Library, hdr []string) (*CellTiming, error) {
	if len(hdr) < 5 {
		return nil, fmt.Errorf("short CELL header")
	}
	drive, err := strconv.Atoi(hdr[3])
	if err != nil {
		return nil, err
	}
	areaV, err := strconv.ParseFloat(hdr[4], 64)
	if err != nil {
		return nil, err
	}
	ct := &CellTiming{
		Name: hdr[1], Base: hdr[2], Drive: drive, AreaUm2: areaV,
		PinCap: map[string]float64{},
	}
	for {
		f, err := p.next()
		if err != nil {
			return nil, err
		}
		switch f[0] {
		case "OUTPUT":
			if err := need(f, 2); err != nil {
				return nil, err
			}
			ct.Output = f[1]
		case "INPUTS":
			ct.Inputs = append([]string(nil), f[1:]...)
		case "PINCAP":
			if err := need(f, 3); err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, err
			}
			ct.PinCap[f[1]] = v
		case "SEQ":
			if err := need(f, 5); err != nil {
				return nil, err
			}
			ct.Seq = true
			ct.Clock, ct.Data = f[1], f[2]
			if ct.SetupPS, err = strconv.ParseFloat(f[3], 64); err != nil {
				return nil, err
			}
			if ct.HoldPS, err = strconv.ParseFloat(f[4], 64); err != nil {
				return nil, err
			}
		case "ARC":
			arc, err := p.arc(l, f)
			if err != nil {
				return nil, err
			}
			ct.Arcs = append(ct.Arcs, *arc)
		case "ENDCELL":
			return ct, nil
		default:
			return nil, fmt.Errorf("unexpected token %q in cell", f[0])
		}
	}
}

// parseSalv decodes a "SALV <edge> <i> <j>" salvage marker.
func parseSalv(f []string) (SalvagePoint, error) {
	var sp SalvagePoint
	if len(f) < 4 {
		return sp, fmt.Errorf("short SALV line")
	}
	switch f[1] {
	case "rise":
		sp.Edge = Rise
	case "fall":
		sp.Edge = Fall
	default:
		return sp, fmt.Errorf("bad SALV edge %q", f[1])
	}
	i, err := strconv.Atoi(f[2])
	if err != nil {
		return sp, err
	}
	j, err := strconv.Atoi(f[3])
	if err != nil {
		return sp, err
	}
	sp.I, sp.J = i, j
	return sp, nil
}

func (p *parser) arc(l *Library, hdr []string) (*Arc, error) {
	if len(hdr) < 4 {
		return nil, fmt.Errorf("short ARC header")
	}
	a := &Arc{Pin: hdr[1]}
	switch hdr[2] {
	case "positive_unate":
		a.Sense = PositiveUnate
	case "negative_unate":
		a.Sense = NegativeUnate
	default:
		return nil, fmt.Errorf("bad sense %q", hdr[2])
	}
	when, err := strconv.ParseUint(hdr[3], 10, 32)
	if err != nil {
		return nil, err
	}
	a.When = uint(when)
	for {
		f, err := p.next()
		if err != nil {
			return nil, err
		}
		if f[0] == "SALV" {
			sp, err := parseSalv(f)
			if err != nil {
				return nil, err
			}
			a.Salvaged = append(a.Salvaged, sp)
			continue
		}
		if f[0] != "TABLE" {
			p.unread(f)
			return a, nil
		}
		if err := need(f, 3); err != nil {
			return nil, err
		}
		var edge Edge
		switch f[2] {
		case "rise":
			edge = Rise
		case "fall":
			edge = Fall
		default:
			return nil, fmt.Errorf("bad edge %q", f[2])
		}
		t := NewTable(l.Slews, l.Loads)
		for i := range l.Slews {
			row, err := p.next()
			if err != nil {
				return nil, err
			}
			vals, err := parseFloats(row)
			if err != nil {
				return nil, err
			}
			if len(vals) != len(l.Loads) {
				return nil, fmt.Errorf("table row %d has %d values, want %d", i, len(vals), len(l.Loads))
			}
			t.Values[i] = vals
		}
		switch f[1] {
		case "delay":
			a.Delay[edge] = t
		case "slew":
			a.OutSlew[edge] = t
		default:
			return nil, fmt.Errorf("bad table kind %q", f[1])
		}
	}
}
