package sta

import (
	"context"
	"fmt"
	"time"

	"ageguard/internal/conc"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
)

// AnalyzeBatch times one netlist under every library in libs and
// returns one Result per library, in order — the shape of the paper's
// Fig. 5 duty-cycle grid, where the same synthesized netlist is re-timed
// under up to 121 aged libraries. The netlist topology (levelization, net
// numbering, fanout sinks, endpoint lists) is compiled once and shared
// read-only across all legs; each leg only rebinds cell timing views and
// runs the arrival propagation. Legs fan out over internal/conc with the
// given worker bound (conc.Workers semantics: <=0 selects GOMAXPROCS,
// 1 runs serial).
//
// Every Result is bit-identical to a standalone Analyze of the same
// (netlist, library) pair. A library whose cell footprints deviate from
// the shared topology (different pin names/order — impossible for the
// aged-variant libraries the flow produces, but allowed) falls back to the
// reference analysis for that leg and is counted in
// sta.incremental.fallbacks.
//
// On cancellation mid-batch the remaining legs stop, every worker
// goroutine exits before the call returns, and the error matches
// conc.ErrCanceled.
func AnalyzeBatch(ctx context.Context, n *netlist.Netlist, libs []*liberty.Library, cfg Config, workers int) ([]*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, conc.WrapCanceled(fmt.Errorf("sta: %s: %w", n.Name, err))
	}
	if len(libs) == 0 {
		return nil, nil
	}
	reg := obs.From(ctx)
	t0 := time.Now()
	defer func() {
		reg.Counter("sta.batch.runs").Inc()
		reg.Counter("sta.batch.libraries").Add(int64(len(libs)))
		reg.Histogram("sta.batch.seconds").Since(t0)
	}()
	cfg.fill()
	// Compile the shared topology against the first library; footprints are
	// library-invariant across the flow's aged variants, so any library
	// works as the template. Legs that disagree fall back below.
	topo, err := newTopology(n, libs[0])
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(libs))
	err = conc.ParFor(ctx, workers, len(libs), func(i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sta: %s: %w", n.Name, err)
		}
		reg.Counter("sta.analyses").Inc()
		b, err := newBinding(topo, libs[i])
		if err == errFootprint {
			reg.Counter("sta.incremental.fallbacks").Inc()
			results[i], err = analyzeReference(n, libs[i], cfg)
			return err
		}
		if err != nil {
			return err
		}
		s := newState(len(topo.nets))
		if err := forwardFull(topo, b, s, &cfg); err != nil {
			return err
		}
		results[i] = materialize(topo, b, s, &cfg)
		return nil
	})
	if err != nil {
		return nil, conc.WrapCanceled(err)
	}
	return results, nil
}
