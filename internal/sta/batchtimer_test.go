package sta

import (
	"context"
	"sync"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
)

func TestBatchTimerMatchesAnalyze(t *testing.T) {
	fresh := lib(t, aging.Fresh())
	aged := lib(t, aging.WorstCase(10))
	nl := chain(4)
	ctx := context.Background()

	bt, err := NewBatchTimer(ctx, nl, fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*liberty.Library{fresh, aged} {
		want, err := Analyze(ctx, nl, l, Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := bt.CP(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		// The batch timer re-binds a precompiled topology; it must be
		// bit-identical to a standalone analysis, not merely close.
		if got != want.CP {
			t.Errorf("%s: batch CP %v != Analyze CP %v", l.Scenario, got, want.CP)
		}
	}
}

func TestBatchTimerConcurrent(t *testing.T) {
	fresh := lib(t, aging.Fresh())
	aged := lib(t, aging.WorstCase(10))
	nl := chain(3)
	ctx := context.Background()
	bt, err := NewBatchTimer(ctx, nl, fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bt.CP(ctx, aged)
	if err != nil {
		t.Fatal(err)
	}
	// One timer, many goroutines, alternating libraries: every call must
	// reproduce its library's CP exactly (bindings and states are
	// per-call; the shared topology is immutable).
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				cp, err := bt.CP(ctx, aged)
				if err != nil {
					errs <- err
					return
				}
				if cp != ref {
					t.Errorf("concurrent CP %v != %v", cp, ref)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBatchTimerFootprintFallback(t *testing.T) {
	fresh := lib(t, aging.Fresh())
	nl := chain(2)
	ctx := context.Background()
	bt, err := NewBatchTimer(ctx, nl, fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A library missing a cell the topology was compiled against cannot be
	// fast-bound; the timer must fall back to a reference analysis and
	// still fail cleanly (the cell is genuinely absent).
	broken := &liberty.Library{
		Name:     "broken",
		Scenario: fresh.Scenario,
		Vdd:      fresh.Vdd,
		Slews:    fresh.Slews,
		Loads:    fresh.Loads,
		Cells:    map[string]*liberty.CellTiming{},
	}
	if _, err := bt.CP(ctx, broken); err == nil {
		t.Error("empty library produced a CP")
	}
}
