// Package sta implements static timing analysis over gate-level netlists
// with NLDM liberty libraries: levelized arrival-time and slew propagation,
// per-net load computation, critical-path extraction, and re-evaluation of
// a fixed path under a different library (needed to reproduce the paper's
// Fig. 5(c) critical-path-switching comparison).
//
// Timing semantics follow standard industrial STA: per-edge (rise/fall)
// arrival times, table-interpolated arc delays as a function of the
// propagated input slew and the capacitive load of the driven net, worst
// (latest) arrival selection, and slew propagated from the winning arc.
// Sequential cells launch paths at their clock-to-Q arc and capture paths
// at their data pin plus setup time; the critical-path delay is therefore
// the minimum usable clock period.
package sta

import (
	"context"
	"fmt"
	"math"

	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/units"
)

// Config parameterizes the analysis. The zero value selects defaults.
// The documented defaults are the values fill() actually applies — pinned
// by TestConfigFillDefaults so comments and code cannot drift apart again.
type Config struct {
	InputSlew  float64 // slew assumed at primary inputs [s]; default 20ps
	ClockSlew  float64 // slew of the clock at sequential pins [s]; default 20ps
	OutputLoad float64 // load on primary outputs [F]; default 4fF
	WireCap    float64 // base wire cap per net [F]; default 2fF
	WireCapFan float64 // additional wire cap per extra fanout [F]; default 0.5fF
}

func (c *Config) fill() {
	if c.InputSlew == 0 {
		c.InputSlew = 20 * units.Ps
	}
	if c.ClockSlew == 0 {
		c.ClockSlew = 20 * units.Ps
	}
	if c.OutputLoad == 0 {
		c.OutputLoad = 4 * units.FF
	}
	if c.WireCap == 0 {
		// 45 nm global-average net: ~10 um of wire at ~0.2 fF/um.
		c.WireCap = 2 * units.FF
	}
	if c.WireCapFan == 0 {
		c.WireCapFan = 0.5 * units.FF
	}
}

// Step is one instance traversal on a timing path.
type Step struct {
	Inst    string
	Cell    string
	Pin     string // input pin entered (clock pin for launch steps)
	FromNet string
	ToNet   string
	InEdge  liberty.Edge
	OutEdge liberty.Edge
	Delay   float64 // arc delay contributed [s]
	Arrival float64 // arrival at ToNet after this step [s]
}

// Path is a complete timing path from a launch point to an endpoint.
type Path struct {
	Launch   string // launch net (primary input or DFF output)
	Endpoint string // endpoint net (primary output or DFF data input)
	EndEdge  liberty.Edge
	Delay    float64 // total path delay including setup at a DFF endpoint
	Setup    float64 // setup component (zero at primary outputs)
	Steps    []Step
}

// Result is the outcome of one timing analysis.
type Result struct {
	CP    float64 // critical-path delay = minimum clock period [s]
	Worst Path

	// Per-net annotations (by net name, indexed by liberty.Edge):
	Arrival map[string][2]float64
	Slew    map[string][2]float64
	Load    map[string]float64 // capacitive load of each driven net [F]

	// Required times and slacks (computed by backward propagation against
	// CP as the timing target). Slack[net] is the worst slack over edges.
	Required map[string][2]float64
	Slack    map[string]float64
}

type pred struct {
	inst    *netlist.Inst
	pin     string
	fromNet string
	inEdge  liberty.Edge
	delay   float64
}

// Analyze runs static timing analysis on the netlist against the
// library, counting the run (sta.analyses) and its wall time
// (sta.analyze.seconds) in the registry carried by ctx. The analysis
// itself is pure CPU work over in-memory tables and is not interruptible
// mid-run; ctx is consulted once on entry so canceled pipelines stop
// before starting another analysis.
//
// Since the incremental engine landed this is a thin wrapper over
// NewAnalyzer + Result — one-shot callers get the compiled fast path.
// Callers that re-time the same netlist repeatedly should
// hold an Analyzer (or use AnalyzeBatch for many libraries) to
// amortize the topology compilation too.
func Analyze(ctx context.Context, n *netlist.Netlist, lib *liberty.Library, cfg Config) (*Result, error) {
	a, err := NewAnalyzer(ctx, n, lib, cfg)
	if err != nil {
		return nil, err
	}
	return a.Result(), nil
}

// analyzeReference is the original straight-line analysis: it recomputes
// levelization, fanout maps and loads from scratch on every call. It is
// retained verbatim as the executable specification the compiled engine
// is property-tested against bit-for-bit (see analyzer_test.go), and as
// the fallback for batch legs whose library footprints don't match the
// shared topology. New callers should use Analyze.
func analyzeReference(n *netlist.Netlist, lib *liberty.Library, cfg Config) (*Result, error) {
	cfg.fill()
	look := netlist.LibraryLookup(lib)
	order, err := n.Levelize(look)
	if err != nil {
		return nil, err
	}
	fanouts, err := n.FanoutMap(look)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Arrival: map[string][2]float64{},
		Slew:    map[string][2]float64{},
		Load:    map[string]float64{},
	}
	preds := map[string][2]pred{}

	// Net loads: sink pin caps + wire estimate (+ PO load).
	loadOf := func(net string) float64 {
		if l, ok := res.Load[net]; ok {
			return l
		}
		sinks := fanouts[net]
		l := cfg.WireCap
		if len(sinks) > 1 {
			l += cfg.WireCapFan * float64(len(sinks)-1)
		}
		for _, s := range sinks {
			ct := lib.MustCell(s.Inst.Cell)
			l += ct.PinCap[s.Pin]
		}
		for _, po := range n.Outputs {
			if po == net {
				l += cfg.OutputLoad
				break
			}
		}
		res.Load[net] = l
		return l
	}

	neg := math.Inf(-1)
	// Launch points: primary inputs.
	for _, pi := range n.Inputs {
		res.Arrival[pi] = [2]float64{0, 0}
		res.Slew[pi] = [2]float64{cfg.InputSlew, cfg.InputSlew}
	}

	arrOf := func(net string) ([2]float64, bool) {
		a, ok := res.Arrival[net]
		return a, ok
	}

	for _, in := range order {
		ct := lib.MustCell(in.Cell)
		outNet := in.Pins[ct.Output]
		load := loadOf(outNet)
		arr := [2]float64{neg, neg}
		slw := [2]float64{0, 0}
		var pr [2]pred

		if ct.Seq {
			// Clock-to-Q launch.
			for _, arc := range ct.ArcsFor(ct.Clock) {
				for e := liberty.Rise; e <= liberty.Fall; e++ {
					if arc.Delay[e] == nil {
						continue
					}
					d := arc.Delay[e].At(cfg.ClockSlew, load)
					if d > arr[e] {
						arr[e] = d
						slw[e] = arc.OutSlew[e].At(cfg.ClockSlew, load)
						pr[e] = pred{inst: in, pin: ct.Clock, fromNet: netlist.ClockNet, inEdge: liberty.Rise, delay: d}
					}
				}
			}
		} else {
			for _, arc := range ct.Arcs {
				inNet := in.Pins[arc.Pin]
				ia, ok := arrOf(inNet)
				if !ok {
					continue // unreachable input (e.g. tied elsewhere)
				}
				is := res.Slew[inNet]
				for e := liberty.Rise; e <= liberty.Fall; e++ {
					if arc.Delay[e] == nil {
						continue
					}
					ie := arc.Sense.InputEdge(e)
					if math.IsInf(ia[ie], -1) {
						continue
					}
					d := arc.Delay[e].At(is[ie], load)
					if cand := ia[ie] + d; cand > arr[e] {
						arr[e] = cand
						slw[e] = arc.OutSlew[e].At(is[ie], load)
						pr[e] = pred{inst: in, pin: arc.Pin, fromNet: inNet, inEdge: ie, delay: d}
					}
				}
			}
		}
		if math.IsInf(arr[0], -1) && math.IsInf(arr[1], -1) {
			return nil, fmt.Errorf("sta: instance %s has no arrival (undriven inputs?)", in.Name)
		}
		res.Arrival[outNet] = arr
		res.Slew[outNet] = slw
		preds[outNet] = pr
	}

	// Endpoints: primary outputs and DFF data pins (+ setup).
	bestEnd := ""
	bestEdge := liberty.Rise
	bestDelay := neg
	bestSetup := 0.0
	consider := func(net string, setup float64) {
		a, ok := res.Arrival[net]
		if !ok {
			return
		}
		for e := liberty.Rise; e <= liberty.Fall; e++ {
			if a[e]+setup > bestDelay {
				bestDelay = a[e] + setup
				bestEnd, bestEdge, bestSetup = net, e, setup
			}
		}
	}
	for _, po := range n.Outputs {
		consider(po, 0)
	}
	for _, in := range n.Insts {
		ct := lib.MustCell(in.Cell)
		if ct.Seq {
			consider(in.Pins[ct.Data], ct.SetupPS)
		}
	}
	if bestEnd == "" {
		return nil, fmt.Errorf("sta: no timing endpoints in %s", n.Name)
	}
	res.CP = bestDelay
	res.Worst = tracePath(res, preds, bestEnd, bestEdge, bestSetup)
	res.backward(n, lib, order, cfg)
	return res, nil
}

// backward propagates required times from the endpoints (target = CP) and
// derives per-net slacks, enabling slack-driven optimization passes.
func (res *Result) backward(n *netlist.Netlist, lib *liberty.Library, order []*netlist.Inst, cfg Config) {
	inf := math.Inf(1)
	res.Required = map[string][2]float64{}
	res.Slack = map[string]float64{}
	setReq := func(net string, e liberty.Edge, v float64) {
		r, ok := res.Required[net]
		if !ok {
			r = [2]float64{inf, inf}
		}
		if v < r[e] {
			r[e] = v
		}
		res.Required[net] = r
	}
	for _, po := range n.Outputs {
		setReq(po, liberty.Rise, res.CP)
		setReq(po, liberty.Fall, res.CP)
	}
	for _, in := range n.Insts {
		ct := lib.MustCell(in.Cell)
		if ct.Seq {
			d := in.Pins[ct.Data]
			setReq(d, liberty.Rise, res.CP-ct.SetupPS)
			setReq(d, liberty.Fall, res.CP-ct.SetupPS)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		in := order[i]
		ct := lib.MustCell(in.Cell)
		if ct.Seq {
			continue
		}
		outNet := in.Pins[ct.Output]
		load := res.Load[outNet]
		outReq, ok := res.Required[outNet]
		if !ok {
			continue // dangling output: unconstrained
		}
		for _, arc := range ct.Arcs {
			inNet := in.Pins[arc.Pin]
			is := res.Slew[inNet]
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				if arc.Delay[e] == nil || math.IsInf(outReq[e], 1) {
					continue
				}
				ie := arc.Sense.InputEdge(e)
				d := arc.Delay[e].At(is[ie], load)
				setReq(inNet, ie, outReq[e]-d)
			}
		}
	}
	for net, arr := range res.Arrival {
		req, ok := res.Required[net]
		if !ok {
			res.Slack[net] = inf
			continue
		}
		s := inf
		for e := 0; e < 2; e++ {
			if math.IsInf(arr[e], -1) || math.IsInf(req[e], 1) {
				continue
			}
			if v := req[e] - arr[e]; v < s {
				s = v
			}
		}
		res.Slack[net] = s
	}
}

// tracePath reconstructs the critical path by following predecessors.
func tracePath(res *Result, preds map[string][2]pred, endNet string, endEdge liberty.Edge, setup float64) Path {
	p := Path{Endpoint: endNet, EndEdge: endEdge, Setup: setup}
	p.Delay = res.Arrival[endNet][endEdge] + setup
	net, edge := endNet, endEdge
	for {
		pr, ok := preds[net]
		if !ok || pr[edge].inst == nil {
			break
		}
		q := pr[edge]
		p.Steps = append(p.Steps, Step{
			Inst:    q.inst.Name,
			Cell:    q.inst.Cell,
			Pin:     q.pin,
			FromNet: q.fromNet,
			ToNet:   net,
			InEdge:  q.inEdge,
			OutEdge: edge,
			Delay:   q.delay,
			Arrival: res.Arrival[net][edge],
		})
		net, edge = q.fromNet, q.inEdge
		if net == netlist.ClockNet {
			break
		}
	}
	p.Launch = net
	// Reverse steps to launch->endpoint order.
	for i, j := 0, len(p.Steps)-1; i < j; i, j = i+1, j-1 {
		p.Steps[i], p.Steps[j] = p.Steps[j], p.Steps[i]
	}
	return p
}

// PathDelayUnder recomputes the delay of a previously extracted path with
// a different library, keeping the path's structure (instances, pins and
// edges) fixed. This models the state-of-the-art flows of Fig. 5(c) that
// estimate aged timing on the *initially* critical path, ignoring that
// another path may have become critical.
//
// Loads and launch/endpoint conventions follow Analyze with the same
// Config. The path's step slews are re-propagated with the new library.
func PathDelayUnder(n *netlist.Netlist, p Path, lib *liberty.Library, cfg Config) (float64, error) {
	cfg.fill()
	look := netlist.LibraryLookup(lib)
	fanouts, err := n.FanoutMap(look)
	if err != nil {
		return 0, err
	}
	loadOf := func(net string) float64 {
		sinks := fanouts[net]
		l := cfg.WireCap
		if len(sinks) > 1 {
			l += cfg.WireCapFan * float64(len(sinks)-1)
		}
		for _, s := range sinks {
			l += lib.MustCell(s.Inst.Cell).PinCap[s.Pin]
		}
		for _, po := range n.Outputs {
			if po == net {
				l += cfg.OutputLoad
				break
			}
		}
		return l
	}
	instByName := map[string]*netlist.Inst{}
	for _, in := range n.Insts {
		instByName[in.Name] = in
	}

	arrival := 0.0
	slew := cfg.InputSlew
	for i, st := range p.Steps {
		in, ok := instByName[st.Inst]
		if !ok {
			return 0, fmt.Errorf("sta: path instance %s missing", st.Inst)
		}
		ct := lib.MustCell(in.Cell)
		load := loadOf(st.ToNet)
		if ct.Seq && i == 0 {
			arc := ct.ArcsFor(ct.Clock)
			if len(arc) == 0 {
				return 0, fmt.Errorf("sta: %s has no clock arc", in.Cell)
			}
			arrival = arc[0].Delay[st.OutEdge].At(cfg.ClockSlew, load)
			slew = arc[0].OutSlew[st.OutEdge].At(cfg.ClockSlew, load)
			continue
		}
		var chosen *liberty.Arc
		for ai := range ct.Arcs {
			a := &ct.Arcs[ai]
			if a.Pin == st.Pin && a.Sense.InputEdge(st.OutEdge) == st.InEdge && a.Delay[st.OutEdge] != nil {
				chosen = a
				break
			}
		}
		if chosen == nil {
			return 0, fmt.Errorf("sta: no arc %s->%s (%v) on %s", st.Pin, st.ToNet, st.OutEdge, in.Cell)
		}
		arrival += chosen.Delay[st.OutEdge].At(slew, load)
		slew = chosen.OutSlew[st.OutEdge].At(slew, load)
	}
	return arrival + p.Setup, nil
}
