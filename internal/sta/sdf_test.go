package sta

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ageguard/internal/aging"
)

func TestWriteSDF(t *testing.T) {
	l := lib(t, aging.Fresh())
	nl := chain(2)
	res, err := Analyze(context.Background(), nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSDF(&buf, nl, l, res, Config{}); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"(DELAYFILE",
		"(SDFVERSION \"3.0\")",
		"(DESIGN \"chain\")",
		"(TIMESCALE 1ps)",
		"(CELLTYPE \"INV_X1\")",
		"(INSTANCE inv0)",
		"(IOPATH A ZN (",
		"(CELLTYPE \"DFF_X1\")",
		"(IOPATH (posedge CK) Q (",
		"(SETUP D (posedge CK)",
		"(HOLD D (posedge CK)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("SDF missing %q", want)
		}
	}
	if o, c := strings.Count(text, "("), strings.Count(text, ")"); o != c {
		t.Errorf("unbalanced parens: %d vs %d", o, c)
	}
	// Deterministic output: two writes must be identical.
	var buf2 bytes.Buffer
	if err := WriteSDF(&buf2, nl, l, res, Config{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("SDF output not deterministic")
	}
	// The aged SDF must carry larger IOPATH values than the fresh one.
	agedLib := lib(t, aging.WorstCase(10))
	ares, err := Analyze(context.Background(), nl, agedLib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var abuf bytes.Buffer
	if err := WriteSDF(&abuf, nl, agedLib, ares, Config{}); err != nil {
		t.Fatal(err)
	}
	if abuf.String() == buf.String() {
		t.Error("aged SDF identical to fresh SDF")
	}
}
