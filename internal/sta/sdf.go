package sta

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
)

// WriteSDF emits a Standard Delay Format (SDF 3.0) annotation of the
// netlist under the analyzed library: one IOPATH entry per timing arc,
// evaluated at the STA-propagated slews and loads — the file the paper's
// flow hands to Modelsim for aged gate-level simulation. Both numbers of
// each (rise, fall) pair carry the single analyzed corner.
func WriteSDF(w io.Writer, n *netlist.Netlist, lib *liberty.Library, res *Result, cfg Config) error {
	cfg.fill()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(DELAYFILE\n")
	fmt.Fprintf(bw, "  (SDFVERSION \"3.0\")\n")
	fmt.Fprintf(bw, "  (DESIGN \"%s\")\n", n.Name)
	fmt.Fprintf(bw, "  (VENDOR \"ageguard\")\n")
	fmt.Fprintf(bw, "  (PROGRAM \"ageguard sta\")\n")
	fmt.Fprintf(bw, "  (DATE \"%s\")\n", time.Time{}.Format("2006-01-02")) // deterministic output
	fmt.Fprintf(bw, "  (DIVIDER /)\n")
	fmt.Fprintf(bw, "  (TIMESCALE 1ps)\n")

	slewOf := func(net string, e liberty.Edge) float64 {
		if s, ok := res.Slew[net]; ok && s[e] > 0 {
			return s[e]
		}
		return cfg.InputSlew
	}
	ps := func(v float64) string { return fmt.Sprintf("%.2f", v*1e12) }

	for _, in := range n.Insts {
		ct, ok := lib.Cell(in.Cell)
		if !ok {
			return fmt.Errorf("sta: cell %q not in library", in.Cell)
		}
		load := res.Load[in.Pins[ct.Output]]
		var entries []string
		if ct.Seq {
			arcs := ct.ArcsFor(ct.Clock)
			if len(arcs) > 0 {
				r := arcs[0].Delay[liberty.Rise].At(cfg.ClockSlew, load)
				f := arcs[0].Delay[liberty.Fall].At(cfg.ClockSlew, load)
				entries = append(entries, fmt.Sprintf(
					"        (IOPATH (posedge %s) %s (%s) (%s))",
					ct.Clock, ct.Output, ps(r), ps(f)))
			}
		} else {
			seen := map[string]bool{}
			for _, arc := range ct.Arcs {
				if seen[arc.Pin] {
					continue // one IOPATH per pin: worst arc values below
				}
				seen[arc.Pin] = true
				inNet := in.Pins[arc.Pin]
				var d [2]float64
				for _, a := range ct.Arcs {
					if a.Pin != arc.Pin {
						continue
					}
					for e := liberty.Rise; e <= liberty.Fall; e++ {
						if a.Delay[e] == nil {
							continue
						}
						ie := a.Sense.InputEdge(e)
						if v := a.Delay[e].At(slewOf(inNet, ie), load); v > d[e] {
							d[e] = v
						}
					}
				}
				entries = append(entries, fmt.Sprintf(
					"        (IOPATH %s %s (%s) (%s))",
					arc.Pin, ct.Output, ps(d[liberty.Rise]), ps(d[liberty.Fall])))
			}
		}
		if len(entries) == 0 {
			continue
		}
		fmt.Fprintf(bw, "  (CELL\n")
		fmt.Fprintf(bw, "    (CELLTYPE \"%s\")\n", in.Cell)
		fmt.Fprintf(bw, "    (INSTANCE %s)\n", sdfName(in.Name))
		fmt.Fprintf(bw, "    (DELAY\n      (ABSOLUTE\n%s\n      )\n    )\n", strings.Join(entries, "\n"))
		if ct.Seq {
			fmt.Fprintf(bw, "    (TIMINGCHECK\n")
			fmt.Fprintf(bw, "      (SETUP %s (posedge %s) (%s))\n", ct.Data, ct.Clock, ps(ct.SetupPS))
			fmt.Fprintf(bw, "      (HOLD %s (posedge %s) (%s))\n", ct.Data, ct.Clock, ps(ct.HoldPS))
			fmt.Fprintf(bw, "    )\n")
		}
		fmt.Fprintf(bw, "  )\n")
	}
	fmt.Fprintln(bw, ")")
	return bw.Flush()
}

func sdfName(s string) string {
	ok := true
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_') {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('\\')
			b.WriteRune(r)
		}
	}
	return b.String()
}
