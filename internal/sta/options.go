package sta

import "ageguard/internal/opt"

// Option configures a Config under construction; see New.
type Option = opt.Option[Config]

// New returns a Config with the options applied over the zero value (whose
// unset fields resolve to the documented defaults at analysis time):
//
//	cfg := sta.New(sta.WithOutputLoad(2 * units.FF))
func New(opts ...Option) Config {
	return opt.Apply(Config{}, opts...)
}

// WithInputSlew sets the slew assumed at primary inputs [s].
func WithInputSlew(s float64) Option { return func(c *Config) { c.InputSlew = s } }

// WithClockSlew sets the clock slew at sequential pins [s].
func WithClockSlew(s float64) Option { return func(c *Config) { c.ClockSlew = s } }

// WithOutputLoad sets the load on primary outputs [F].
func WithOutputLoad(l float64) Option { return func(c *Config) { c.OutputLoad = l } }

// WithWireCap sets the base wire capacitance per net [F].
func WithWireCap(w float64) Option { return func(c *Config) { c.WireCap = w } }

// WithWireCapFan sets the additional wire cap per extra fanout [F].
func WithWireCapFan(w float64) Option { return func(c *Config) { c.WireCapFan = w } }
