package sta

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/conc"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/units"
)

// TestConfigFillDefaults pins the filled defaults to the values the doc
// comments on Config promise, so comments and code cannot drift apart
// silently again (they did once: the comments claimed 1.5fF/0.25fF/0.12fF
// while fill() applied 4fF/2fF/0.5fF).
func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.fill()
	want := Config{
		InputSlew:  20 * units.Ps,
		ClockSlew:  20 * units.Ps,
		OutputLoad: 4 * units.FF,
		WireCap:    2 * units.FF,
		WireCapFan: 0.5 * units.FF,
	}
	if c != want {
		t.Errorf("fill() = %+v, want %+v", c, want)
	}
	// Explicit values survive fill untouched.
	c = Config{InputSlew: 1 * units.Ps, ClockSlew: 2 * units.Ps,
		OutputLoad: 3 * units.FF, WireCap: 4 * units.FF, WireCapFan: 5 * units.FF}
	want = c
	c.fill()
	if c != want {
		t.Errorf("fill() overwrote explicit values: %+v, want %+v", c, want)
	}
}

// gateKind describes one combinational cell footprint usable by the
// random netlist generator.
type gateKind struct {
	base   string
	inputs []string
	output string
	drives []int
}

var gateKinds = []gateKind{
	{"INV", []string{"A"}, "ZN", []int{1, 2, 4, 8}},
	{"BUF", []string{"A"}, "Z", []int{1, 2, 4, 8}},
	{"NAND2", []string{"A1", "A2"}, "ZN", []int{1, 2, 4}},
	{"NOR2", []string{"A1", "A2"}, "ZN", []int{1, 2, 4}},
	{"AND2", []string{"A1", "A2"}, "Z", []int{1, 2, 4}},
	{"OR2", []string{"A1", "A2"}, "Z", []int{1, 2, 4}},
	{"XOR2", []string{"A", "B"}, "Z", []int{1, 2, 4}},
	{"AOI21", []string{"A1", "A2", "B"}, "ZN", []int{1, 2, 4}},
	{"MUX2", []string{"A", "B", "S"}, "Z", []int{1, 2, 4}},
}

// randNetlist builds a random registered DAG with nGates combinational
// gates of mixed kinds and drives. Construction is topological (gate
// inputs are drawn from already-driven nets), so the result always
// levelizes.
func randNetlist(rng *rand.Rand, nGates int) *netlist.Netlist {
	nl := netlist.New(fmt.Sprintf("rand%d", nGates))
	var pool []string
	for i := 0; i < 3; i++ {
		pi := fmt.Sprintf("pi%d", i)
		nl.Inputs = append(nl.Inputs, pi)
		pool = append(pool, pi)
	}
	for i := 0; i < 2; i++ {
		q := fmt.Sprintf("r%d", i)
		nl.AddInst(fmt.Sprintf("rin%d", i), "DFF_X1", map[string]string{
			"D": pool[rng.Intn(len(pool))], "CK": netlist.ClockNet, "Q": q})
		pool = append(pool, q)
	}
	for g := 0; g < nGates; g++ {
		k := gateKinds[rng.Intn(len(gateKinds))]
		pins := map[string]string{}
		for _, in := range k.inputs {
			pins[in] = pool[rng.Intn(len(pool))]
		}
		out := fmt.Sprintf("n%d", g)
		pins[k.output] = out
		cell := fmt.Sprintf("%s_X%d", k.base, k.drives[rng.Intn(len(k.drives))])
		nl.AddInst(fmt.Sprintf("g%d", g), cell, pins)
		pool = append(pool, out)
	}
	for i := 0; i < 2; i++ {
		q := fmt.Sprintf("cq%d", i)
		nl.AddInst(fmt.Sprintf("cap%d", i), "DFF_X1", map[string]string{
			"D": pool[len(pool)-1-rng.Intn(4)], "CK": netlist.ClockNet, "Q": q})
	}
	// Primary outputs: the deepest net plus a couple of random picks
	// (distinct), so both PO and register endpoints exist.
	nl.Outputs = []string{pool[len(pool)-1]}
	for i := 0; i < 2; i++ {
		cand := pool[rng.Intn(len(pool))]
		dup := false
		for _, o := range nl.Outputs {
			dup = dup || o == cand
		}
		if !dup {
			nl.Outputs = append(nl.Outputs, cand)
		}
	}
	return nl
}

// mustEqualResults fails unless a and b are deeply (bit-for-bit) equal.
func mustEqualResults(t *testing.T, ctxt string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		if got.CP != want.CP {
			t.Fatalf("%s: CP %v != reference %v", ctxt, got.CP, want.CP)
		}
		for net, w := range want.Arrival {
			if g := got.Arrival[net]; g != w {
				t.Fatalf("%s: arrival[%s] %v != reference %v", ctxt, net, g, w)
			}
		}
		t.Fatalf("%s: results differ (beyond CP/arrivals — slews, loads, slacks or path)", ctxt)
	}
}

// TestAnalyzeContextMatchesReference locks the compiled one-shot engine to
// the straight-line reference implementation, bit for bit, across
// structured and random netlists and both fresh and aged libraries.
func TestAnalyzeContextMatchesReference(t *testing.T) {
	libs := []*liberty.Library{lib(t, aging.Fresh()), lib(t, aging.WorstCase(10))}
	rng := rand.New(rand.NewSource(7))
	nls := []*netlist.Netlist{chain(2), chain(6), randNetlist(rng, 40), randNetlist(rng, 150)}
	for _, l := range libs {
		for _, nl := range nls {
			got, err := Analyze(context.Background(), nl, l, Config{})
			if err != nil {
				t.Fatalf("%s/%s: %v", nl.Name, l.Name, err)
			}
			want, err := analyzeReference(nl, l, Config{})
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, nl.Name+"/"+l.Name, got, want)
		}
	}
	// Non-default config too (the synthesis threading depends on it).
	cfg := Config{OutputLoad: 12 * units.FF, WireCap: 1 * units.FF, InputSlew: 35 * units.Ps}
	got, err := Analyze(context.Background(), nls[3], libs[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := analyzeReference(nls[3], libs[0], cfg)
	mustEqualResults(t, "nondefault-cfg", got, want)
}

// variantCells returns the drive variants of in's current cell present in
// lib, excluding the current cell itself.
func variantCells(l *liberty.Library, cur string) []string {
	base := l.MustCell(cur).Base
	var out []string
	for _, d := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("%s_X%d", base, d)
		if _, ok := l.Cell(name); ok && name != cur {
			out = append(out, name)
		}
	}
	return out
}

// TestIncrementalSwapBitIdentical is the differential property test the
// tentpole hangs on: after every randomized footprint-preserving cell
// swap (single and batched, including undo), the incremental engine's
// result must be bit-identical to a fresh reference analysis of the
// mutated netlist. Run under -race in tier-1.
func TestIncrementalSwapBitIdentical(t *testing.T) {
	l := lib(t, aging.WorstCase(10))
	cfg := Config{OutputLoad: 6 * units.FF}
	ctx := context.Background()
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nl := randNetlist(rng, 60+rng.Intn(120))
		a, err := NewAnalyzer(ctx, nl, l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		check := func(what string) {
			t.Helper()
			want, err := analyzeReference(nl, l, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: reference: %v", seed, what, err)
			}
			if a.CP() != want.CP {
				t.Fatalf("seed %d %s: CP() %v != reference %v", seed, what, a.CP(), want.CP)
			}
			mustEqualResults(t, fmt.Sprintf("seed %d %s", seed, what), a.Result(), want)
		}
		check("initial")
		insts := nl.Insts
		for it := 0; it < 30; it++ {
			// Draw 1–3 distinct instances with available variants.
			var swaps []CellSwap
			seen := map[string]bool{}
			for len(swaps) < 1+rng.Intn(3) {
				in := insts[rng.Intn(len(insts))]
				vars := variantCells(l, in.Cell)
				if seen[in.Name] || len(vars) == 0 {
					continue
				}
				seen[in.Name] = true
				swaps = append(swaps, CellSwap{Inst: in.Name, Cell: vars[rng.Intn(len(vars))]})
			}
			undo, err := a.Swap(ctx, swaps...)
			if err != nil {
				t.Fatalf("seed %d it %d: swap: %v", seed, it, err)
			}
			check(fmt.Sprintf("it %d after swap %v", it, swaps))
			if it%3 == 0 {
				// Reject the move: undo must restore the previous state
				// bit-for-bit too.
				if _, err := a.Swap(ctx, undo...); err != nil {
					t.Fatalf("seed %d it %d: undo: %v", seed, it, err)
				}
				check(fmt.Sprintf("it %d after undo", it))
			}
		}
	}
}

// TestAnalyzerRebuildAfterStructuralEdit covers the fallback-to-full path:
// after a structural netlist edit (new instance), Rebuild must resync the
// engine with the reference analysis.
func TestAnalyzerRebuildAfterStructuralEdit(t *testing.T) {
	l := lib(t, aging.Fresh())
	nl := chain(4)
	ctx := context.Background()
	a, err := NewAnalyzer(ctx, nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Splice an extra inverter stage onto the chain output net.
	nl.AddInst("extra", "INV_X4", map[string]string{"A": "w4", "ZN": "x"})
	nl.Outputs = append(nl.Outputs, "x")
	if err := a.Rebuild(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := analyzeReference(nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "after rebuild", a.Result(), want)
}

// TestSwapValidation: unknown instances or cells must error without
// disturbing the engine state.
func TestSwapValidation(t *testing.T) {
	l := lib(t, aging.Fresh())
	nl := chain(3)
	ctx := context.Background()
	a, err := NewAnalyzer(ctx, nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cp := a.CP()
	if _, err := a.Swap(ctx, CellSwap{Inst: "nope", Cell: "INV_X2"}); err == nil {
		t.Error("unknown instance not rejected")
	}
	if _, err := a.Swap(ctx, CellSwap{Inst: "inv0", Cell: "INV_X99"}); err == nil {
		t.Error("unknown cell not rejected")
	}
	if a.CP() != cp {
		t.Error("failed swap changed engine state")
	}
	if nl.Insts[1].Cell != "INV_X1" {
		t.Error("failed swap mutated the netlist")
	}
}

// TestSwapMetrics checks the obs wiring: queries and cone sizes are
// recorded, and fallbacks only on Rebuild.
func TestSwapMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), reg)
	l := lib(t, aging.Fresh())
	a, err := NewAnalyzer(ctx, chain(6), l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range []string{"INV_X4", "INV_X1", "INV_X8"} {
		if _, err := a.Swap(ctx, CellSwap{Inst: "inv2", Cell: cell}); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	if got := reg.Counter("sta.incremental.queries").Value(); got != 3 {
		t.Errorf("queries = %d, want 3", got)
	}
	if got := reg.Histogram("sta.incremental.cone_size").Stat().Count; got != 3 {
		t.Errorf("cone_size observations = %d, want 3", got)
	}
	if got := reg.Counter("sta.incremental.fallbacks").Value(); got != 0 {
		t.Errorf("fallbacks = %d, want 0", got)
	}
	if err := a.Rebuild(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sta.incremental.fallbacks").Value(); got != 1 {
		t.Errorf("fallbacks after Rebuild = %d, want 1", got)
	}
}

// TestAnalyzeBatchMatchesReference locks the multi-library batch mode to
// per-library reference analyses, in order, bit for bit.
func TestAnalyzeBatchMatchesReference(t *testing.T) {
	libs := []*liberty.Library{
		lib(t, aging.Fresh()),
		lib(t, aging.BalanceCase(10)),
		lib(t, aging.WorstCase(10)),
		lib(t, aging.Fresh()), // repeats are legal
	}
	rng := rand.New(rand.NewSource(11))
	nl := randNetlist(rng, 120)
	for _, workers := range []int{1, 4} {
		got, err := AnalyzeBatch(context.Background(), nl, libs, Config{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(libs) {
			t.Fatalf("workers=%d: %d results for %d libraries", workers, len(got), len(libs))
		}
		for i, l := range libs {
			want, err := analyzeReference(nl, l, Config{})
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, fmt.Sprintf("workers=%d leg %d (%s)", workers, i, l.Name), got[i], want)
		}
	}
	// Empty batch is a no-op.
	if res, err := AnalyzeBatch(context.Background(), nl, nil, Config{}, 4); err != nil || res != nil {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

// TestAnalyzeBatchCancellation: canceling mid-batch must stop the
// remaining legs, return an error matching conc.ErrCanceled, and leave no
// worker goroutines behind.
func TestAnalyzeBatchCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(obs.With(context.Background(), reg))
	defer cancel()
	l := lib(t, aging.Fresh())
	rng := rand.New(rand.NewSource(3))
	nl := randNetlist(rng, 2500)
	libs := make([]*liberty.Library, 600)
	for i := range libs {
		libs[i] = l
	}
	before := runtime.NumGoroutine()
	go func() {
		// Cancel as soon as the first leg has started analysing.
		for reg.Counter("sta.analyses").Value() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}()
	_, err := AnalyzeBatch(ctx, nl, libs, Config{}, 4)
	if !errors.Is(err, conc.ErrCanceled) {
		t.Fatalf("err = %v, want conc.ErrCanceled", err)
	}
	// Every worker goroutine must have exited before the call returned;
	// allow a short grace period for the canceler goroutine itself.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d > %d before", n, before)
	}
	// A pre-canceled context fails fast with the same sentinel.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := AnalyzeBatch(done, nl, libs, Config{}, 4); !errors.Is(err, conc.ErrCanceled) {
		t.Errorf("pre-canceled err = %v, want conc.ErrCanceled", err)
	}
}
