package sta

import (
	"context"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/units"
)

func lib(t testing.TB, s aging.Scenario) *liberty.Library {
	t.Helper()
	cfg := char.CachedConfig()
	l, err := cfg.Characterize(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// chain builds a registered inverter chain of length n.
func chain(n int) *netlist.Netlist {
	nl := netlist.New("chain")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"y"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "w0"})
	prev := "w0"
	for i := 0; i < n; i++ {
		out := "w" + string(rune('1'+i))
		nl.AddInst("inv"+string(rune('0'+i)), "INV_X1", map[string]string{"A": prev, "ZN": out})
		prev = out
	}
	nl.AddInst("rout", "DFF_X1", map[string]string{"D": prev, "CK": netlist.ClockNet, "Q": "y"})
	return nl
}

func TestChainTiming(t *testing.T) {
	l := lib(t, aging.Fresh())
	r2, err := Analyze(context.Background(), chain(2), l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Analyze(context.Background(), chain(6), l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r6.CP <= r2.CP {
		t.Errorf("longer chain not slower: %v vs %v", r6.CP, r2.CP)
	}
	// CP must include clk->Q + 2 inverters + setup: at least ~50ps, and
	// well under a nanosecond for a 2-inverter chain.
	if r2.CP < 40*units.Ps || r2.CP > 1*units.Ns {
		t.Errorf("chain2 CP = %s implausible", units.PsString(r2.CP))
	}
	// Path endpoints and steps.
	if r2.Worst.Endpoint != prevNet(2) {
		t.Errorf("endpoint = %s, want %s", r2.Worst.Endpoint, prevNet(2))
	}
	// Steps: clk->Q launch + 2 inverters = 3.
	if len(r2.Worst.Steps) != 3 {
		t.Errorf("steps = %d, want 3", len(r2.Worst.Steps))
	}
	if r2.Worst.Setup <= 0 {
		t.Error("setup not included at DFF endpoint")
	}
}

func prevNet(n int) string { return "w" + string(rune('1'+n-1)) }

func TestAgedSlower(t *testing.T) {
	fresh := lib(t, aging.Fresh())
	aged := lib(t, aging.WorstCase(10))
	nl := chain(6)
	rf, err := Analyze(context.Background(), nl, fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Analyze(context.Background(), nl, aged, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.CP <= rf.CP {
		t.Errorf("aged CP %s not above fresh %s", units.PsString(ra.CP), units.PsString(rf.CP))
	}
	gb := (ra.CP - rf.CP) / rf.CP
	if gb > 0.5 {
		t.Errorf("guardband fraction %v implausibly large", gb)
	}
}

func TestLoadSlewAnnotations(t *testing.T) {
	l := lib(t, aging.Fresh())
	// Fanout tree: one inverter driving three.
	nl := netlist.New("fan")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"y0", "y1", "y2"}
	nl.AddInst("drv", "INV_X1", map[string]string{"A": "a", "ZN": "m"})
	for i := 0; i < 3; i++ {
		s := string(rune('0' + i))
		nl.AddInst("l"+s, "INV_X2", map[string]string{"A": "m", "ZN": "y" + s})
	}
	res, err := Analyze(context.Background(), nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Net m load: 3x INV_X2 pin caps + wire.
	pin := l.MustCell("INV_X2").PinCap["A"]
	if res.Load["m"] < 3*pin {
		t.Errorf("load of m = %s too small", units.FFString(res.Load["m"]))
	}
	if res.Slew["m"][liberty.Rise] <= 0 {
		t.Error("slew not annotated")
	}
	if res.Arrival["y0"][liberty.Fall] <= res.Arrival["m"][liberty.Rise] {
		t.Error("arrival must grow along the path")
	}
}

func TestPathDelayUnder(t *testing.T) {
	fresh := lib(t, aging.Fresh())
	aged := lib(t, aging.WorstCase(10))
	nl := chain(4)
	rf, err := Analyze(context.Background(), nl, fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-evaluating the fresh critical path under the fresh library must
	// reproduce its delay.
	same, err := PathDelayUnder(nl, rf.Worst, fresh, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := same - rf.Worst.Delay; d > 1e-15 || d < -1e-15 {
		t.Errorf("self path delay %v != %v", same, rf.Worst.Delay)
	}
	// Under the aged library the same path must be slower.
	agedD, err := PathDelayUnder(nl, rf.Worst, aged, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if agedD <= rf.Worst.Delay {
		t.Error("aged path not slower")
	}
	// And it cannot exceed the full aged analysis (which maximizes over
	// all paths).
	ra, err := Analyze(context.Background(), nl, aged, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if agedD > ra.CP+1e-15 {
		t.Errorf("fixed-path delay %v above aged CP %v", agedD, ra.CP)
	}
}

func TestAnalyzeAnnotatedNetlistWithMergedLibrary(t *testing.T) {
	cfg := char.CachedConfig()
	base := aging.WorstCase(10)
	nl := chain(2)
	ann := nl.Annotate(map[string]netlist.Lambdas{
		"rin": {P: 1, N: 1}, "inv0": {P: 0.5, N: 0.5},
		"inv1": {P: 1, N: 1}, "rout": {P: 1, N: 1},
	})
	scen, err := netlist.AnnotatedScenarios(ann, base)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := cfg.CompleteLibrary(context.Background(), "complete", scen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(context.Background(), ann, &merged.Library, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic stress must land between fresh and full worst case.
	fresh, _ := Analyze(context.Background(), nl, lib(t, aging.Fresh()), Config{})
	worst, _ := Analyze(context.Background(), nl, lib(t, base), Config{})
	if !(res.CP > fresh.CP && res.CP < worst.CP) {
		t.Errorf("dynamic CP %s not within (%s, %s)",
			units.PsString(res.CP), units.PsString(fresh.CP), units.PsString(worst.CP))
	}
}

func TestMissingDriverError(t *testing.T) {
	l := lib(t, aging.Fresh())
	nl := netlist.New("bad")
	nl.Outputs = []string{"y"}
	nl.AddInst("g", "INV_X1", map[string]string{"A": "nowhere", "ZN": "y"})
	if _, err := Analyze(context.Background(), nl, l, Config{}); err == nil {
		t.Error("undriven input not reported")
	}
}

func TestRequiredAndSlack(t *testing.T) {
	l := lib(t, aging.Fresh())
	nl := chain(4)
	res, err := Analyze(context.Background(), nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The endpoint (rout D pin net) carries zero slack by construction:
	// required = CP - setup = arrival.
	end := res.Worst.Endpoint
	if s := res.Slack[end]; s < -1e-15 || s > 1e-15 {
		t.Errorf("critical endpoint slack = %v, want 0", s)
	}
	// Every net on the worst path has (near-)zero slack; others have
	// non-negative slack.
	for _, st := range res.Worst.Steps {
		if s := res.Slack[st.ToNet]; s > 1e-13 {
			t.Errorf("critical net %s slack = %v", st.ToNet, s)
		}
	}
	for net, s := range res.Slack {
		if s < -1e-12 {
			t.Errorf("negative slack on %s: %v", net, s)
		}
	}
}

func TestSlackOrdersSidePaths(t *testing.T) {
	l := lib(t, aging.Fresh())
	// Two parallel paths of different depth between registers: the short
	// one must have positive slack, the long one ~zero.
	nl := netlist.New("two")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"q1", "q2"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "s"})
	nl.AddInst("i1", "INV_X1", map[string]string{"A": "s", "ZN": "w1"})
	prev := "s"
	for i := 0; i < 5; i++ {
		out := "l" + string(rune('0'+i))
		nl.AddInst("li"+string(rune('0'+i)), "INV_X1", map[string]string{"A": prev, "ZN": out})
		prev = out
	}
	nl.AddInst("c1", "DFF_X1", map[string]string{"D": "w1", "CK": netlist.ClockNet, "Q": "q1"})
	nl.AddInst("c2", "DFF_X1", map[string]string{"D": prev, "CK": netlist.ClockNet, "Q": "q2"})
	res, err := Analyze(context.Background(), nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slack["w1"] <= res.Slack[prev]+1e-13 {
		t.Errorf("short path slack %v should exceed long path %v",
			res.Slack["w1"], res.Slack[prev])
	}
}

func TestEndpointsAndTopPaths(t *testing.T) {
	l := lib(t, aging.Fresh())
	// Two endpoints of different depth.
	nl := netlist.New("two")
	nl.Inputs = []string{"a"}
	nl.Outputs = []string{"q1", "q2"}
	nl.AddInst("rin", "DFF_X1", map[string]string{"D": "a", "CK": netlist.ClockNet, "Q": "s"})
	nl.AddInst("i1", "INV_X1", map[string]string{"A": "s", "ZN": "w1"})
	prev := "s"
	for i := 0; i < 4; i++ {
		out := "l" + string(rune('0'+i))
		nl.AddInst("li"+string(rune('0'+i)), "INV_X1", map[string]string{"A": prev, "ZN": out})
		prev = out
	}
	nl.AddInst("c1", "DFF_X1", map[string]string{"D": "w1", "CK": netlist.ClockNet, "Q": "q1"})
	nl.AddInst("c2", "DFF_X1", map[string]string{"D": prev, "CK": netlist.ClockNet, "Q": "q2"})
	res, err := Analyze(context.Background(), nl, l, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eps, err := Endpoints(nl, l, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) == 0 || eps[0].Delay != res.CP {
		t.Fatalf("worst endpoint %v != CP %v", eps[0].Delay, res.CP)
	}
	for i := 1; i < len(eps); i++ {
		if eps[i].Delay > eps[i-1].Delay {
			t.Fatal("endpoints not sorted")
		}
	}
	paths, err := TopPaths(context.Background(), nl, l, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d", len(paths))
	}
	if paths[0].Delay != res.CP {
		t.Errorf("worst path delay %v != CP %v", paths[0].Delay, res.CP)
	}
	if paths[0].Endpoint != res.Worst.Endpoint {
		t.Errorf("worst path endpoint %s != %s", paths[0].Endpoint, res.Worst.Endpoint)
	}
	// The deep-path endpoint must appear before the shallow one.
	if paths[0].Endpoint != prev {
		t.Errorf("deepest endpoint should be %s, got %s", prev, paths[0].Endpoint)
	}
	if len(paths[0].Steps) <= len(paths[2].Steps) {
		t.Error("worst path should be deeper than the 3rd worst")
	}
}
