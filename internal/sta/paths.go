package sta

import (
	"context"
	"math"
	"sort"

	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
)

// EndpointArrival is one timing endpoint with its worst arrival.
type EndpointArrival struct {
	Net   string
	Edge  liberty.Edge
	Delay float64 // arrival + setup [s]
	Setup float64
}

// Endpoints returns every timing endpoint (primary outputs and register
// data pins) sorted by decreasing delay — the raw material of "top x%
// critical paths" analyses like the ones the paper's related work relies
// on ([12]), and of the per-endpoint optimization passes in synth.
func Endpoints(n *netlist.Netlist, lib *liberty.Library, res *Result) ([]EndpointArrival, error) {
	var out []EndpointArrival
	add := func(net string, setup float64) {
		a, ok := res.Arrival[net]
		if !ok {
			return
		}
		for e := liberty.Rise; e <= liberty.Fall; e++ {
			out = append(out, EndpointArrival{Net: net, Edge: e, Delay: a[e] + setup, Setup: setup})
		}
	}
	for _, po := range n.Outputs {
		add(po, 0)
	}
	for _, in := range n.Insts {
		ct, ok := lib.Cell(in.Cell)
		if !ok {
			continue
		}
		if ct.Seq {
			add(in.Pins[ct.Data], ct.SetupPS)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Delay > out[j].Delay })
	return out, nil
}

// TopPaths extracts the k worst register-to-register/output paths,
// one per endpoint-edge, by re-running the analysis traceback from each
// of the k latest endpoints. (Industrial tools enumerate multiple paths
// per endpoint too; one-per-endpoint is the granularity the optimization
// passes and the paper's comparisons need.) The analysis runs on the
// compiled engine via Analyze.
func TopPaths(ctx context.Context, n *netlist.Netlist, lib *liberty.Library, cfg Config, k int) ([]Path, error) {
	cfg.fill()
	res, err := Analyze(ctx, n, lib, cfg)
	if err != nil {
		return nil, err
	}
	eps, err := Endpoints(n, lib, res)
	if err != nil {
		return nil, err
	}
	// Rebuild predecessor information by re-walking arrivals: the public
	// API stores only the worst path, so we retrace each endpoint path
	// with a fresh analysis pass over the stored annotations.
	preds, err := predecessors(n, lib, res, cfg)
	if err != nil {
		return nil, err
	}
	var out []Path
	for _, ep := range eps {
		if len(out) == k {
			break
		}
		p := tracePath(res, preds, ep.Net, ep.Edge, ep.Setup)
		out = append(out, p)
	}
	return out, nil
}

// predecessors recomputes, for every net and edge, the winning (latest)
// arc that produced its arrival, using the annotations already in res.
func predecessors(n *netlist.Netlist, lib *liberty.Library, res *Result, cfg Config) (map[string][2]pred, error) {
	look := netlist.LibraryLookup(lib)
	order, err := n.Levelize(look)
	if err != nil {
		return nil, err
	}
	preds := map[string][2]pred{}
	for _, in := range order {
		ct := lib.MustCell(in.Cell)
		outNet := in.Pins[ct.Output]
		load := res.Load[outNet]
		var pr [2]pred
		best := [2]float64{negInf, negInf}
		if ct.Seq {
			for _, arc := range ct.ArcsFor(ct.Clock) {
				for e := liberty.Rise; e <= liberty.Fall; e++ {
					if arc.Delay[e] == nil {
						continue
					}
					d := arc.Delay[e].At(cfg.ClockSlew, load)
					if d > best[e] {
						best[e] = d
						pr[e] = pred{inst: in, pin: ct.Clock, fromNet: netlist.ClockNet, inEdge: liberty.Rise, delay: d}
					}
				}
			}
		} else {
			for _, arc := range ct.Arcs {
				inNet := in.Pins[arc.Pin]
				ia, ok := res.Arrival[inNet]
				if !ok {
					continue
				}
				is := res.Slew[inNet]
				for e := liberty.Rise; e <= liberty.Fall; e++ {
					if arc.Delay[e] == nil {
						continue
					}
					ie := arc.Sense.InputEdge(e)
					if ia[ie] == negInf {
						continue
					}
					d := arc.Delay[e].At(is[ie], load)
					if cand := ia[ie] + d; cand > best[e] {
						best[e] = cand
						pr[e] = pred{inst: in, pin: arc.Pin, fromNet: inNet, inEdge: ie, delay: d}
					}
				}
			}
		}
		preds[outNet] = pr
	}
	return preds, nil
}

var negInf = math.Inf(-1)
