package sta

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"ageguard/internal/aging"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
)

// This file measures the two workloads the incremental engine exists for:
//
//  1. the synthesis inner loop — swap a handful of cells, re-query the
//     critical path, repeat — comparing Analyzer.Swap against a full
//     Analyze of the mutated netlist each round;
//  2. the 121-library duty-cycle grid fan-out — one netlist timed under
//     every grid library — comparing AnalyzeBatch (topology
//     compiled once, legs fanned out over all CPUs) against a serial
//     full analysis per library.
//
// Besides the regular go-test benchmarks, TestBenchPR4Emit runs both
// comparisons head-to-head and writes the speedups to the JSON file
// named by BENCH_PR4_OUT ("make bench" points it at BENCH_PR4.json;
// "make verify" runs it once against a throwaway file as a smoke test).

// benchSwaps picks footprint-preserving drive changes for n random
// combinational instances, paired with the swaps that undo them.
func benchSwaps(rng *rand.Rand, nl *netlist.Netlist, l *liberty.Library, n int) (do, undo []CellSwap) {
	for len(do) < n {
		in := nl.Insts[rng.Intn(len(nl.Insts))]
		ct := l.MustCell(in.Cell)
		if ct.Seq {
			continue
		}
		vars := variantCells(l, in.Cell)
		if len(vars) == 0 {
			continue
		}
		do = append(do, CellSwap{Inst: in.Name, Cell: vars[rng.Intn(len(vars))]})
		undo = append(undo, CellSwap{Inst: in.Name, Cell: in.Cell})
	}
	return do, undo
}

func BenchmarkInnerLoopIncremental(b *testing.B) {
	l := lib(b, aging.Fresh())
	rng := rand.New(rand.NewSource(7))
	nl := randNetlist(rng, 400)
	ctx := context.Background()
	a, err := NewAnalyzer(ctx, nl, l, Config{})
	if err != nil {
		b.Fatal(err)
	}
	do, undo := benchSwaps(rng, nl, l, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := do
		if i%2 == 1 {
			s = undo
		}
		if _, err := a.Swap(ctx, s...); err != nil {
			b.Fatal(err)
		}
		_ = a.CP()
	}
}

func BenchmarkInnerLoopFull(b *testing.B) {
	l := lib(b, aging.Fresh())
	rng := rand.New(rand.NewSource(7))
	nl := randNetlist(rng, 400)
	ctx := context.Background()
	do, undo := benchSwaps(rng, nl, l, 3)
	byName := map[string]*netlist.Inst{}
	for _, in := range nl.Insts {
		byName[in.Name] = in
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := do
		if i%2 == 1 {
			s = undo
		}
		for _, sw := range s {
			byName[sw.Inst].Cell = sw.Cell
		}
		res, err := Analyze(ctx, nl, l, Config{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.CP
	}
}

func BenchmarkGridBatch(b *testing.B) {
	l := lib(b, aging.Fresh())
	nl := randNetlist(rand.New(rand.NewSource(7)), 400)
	libs := make([]*liberty.Library, 121)
	for i := range libs {
		libs[i] = l
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeBatch(ctx, nl, libs, Config{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridSerialFull(b *testing.B) {
	l := lib(b, aging.Fresh())
	nl := randNetlist(rand.New(rand.NewSource(7)), 400)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 121; j++ {
			if _, err := Analyze(ctx, nl, l, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchReport is the BENCH_PR4.json document.
type benchReport struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	CPUs       int      `json:"cpus"`
	Gates      int      `json:"gates"`
	Iterations int      `json:"iterations"`
	InnerLoop  benchCmp `json:"synth_inner_loop"`
	GridFanout benchCmp `json:"grid_fanout_121_libs"`
}

type benchCmp struct {
	BaselineMs    float64 `json:"baseline_ms"`
	OptimizedMs   float64 `json:"optimized_ms"`
	Speedup       float64 `json:"speedup"`
	Baseline      string  `json:"baseline"`
	Optimized     string  `json:"optimized"`
	RoundsPerIter int     `json:"rounds_per_iter"`
}

// medianOf runs f iters times and returns the median duration in ms.
func medianOf(iters int, f func()) float64 {
	times := make([]float64, iters)
	for i := range times {
		t0 := time.Now()
		f()
		times[i] = float64(time.Since(t0).Microseconds()) / 1e3
	}
	for i := range times {
		for j := i + 1; j < len(times); j++ {
			if times[j] < times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	return times[len(times)/2]
}

// TestBenchPR4Emit produces BENCH_PR4.json. Skipped unless BENCH_PR4_OUT
// names the output file; BENCH_PR4_ITERS overrides the per-measurement
// repetition count (1 = smoke mode, used by "make verify").
func TestBenchPR4Emit(t *testing.T) {
	out := os.Getenv("BENCH_PR4_OUT")
	if out == "" {
		t.Skip("set BENCH_PR4_OUT to emit the benchmark report")
	}
	iters := 5
	if s := os.Getenv("BENCH_PR4_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad BENCH_PR4_ITERS=%q", s)
		}
		iters = n
	}
	l := lib(t, aging.Fresh())
	ctx := context.Background()
	const gates, rounds = 400, 40

	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Gates:      gates,
		Iterations: iters,
	}

	// Synthesis inner loop: `rounds` accept/reject probes of 3 swaps each.
	mkSwapPlan := func() (*netlist.Netlist, [][]CellSwap) {
		rng := rand.New(rand.NewSource(7))
		nl := randNetlist(rng, gates)
		plan := make([][]CellSwap, rounds)
		for i := range plan {
			do, undo := benchSwaps(rng, nl, l, 3)
			if i%2 == 0 {
				plan[i] = do
			} else {
				plan[i] = undo
			}
		}
		return nl, plan
	}
	fullMs := medianOf(iters, func() {
		nl, plan := mkSwapPlan()
		byName := map[string]*netlist.Inst{}
		for _, in := range nl.Insts {
			byName[in.Name] = in
		}
		for _, swaps := range plan {
			for _, sw := range swaps {
				byName[sw.Inst].Cell = sw.Cell
			}
			if _, err := Analyze(ctx, nl, l, Config{}); err != nil {
				t.Fatal(err)
			}
		}
	})
	incrMs := medianOf(iters, func() {
		nl, plan := mkSwapPlan()
		a, err := NewAnalyzer(ctx, nl, l, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, swaps := range plan {
			if _, err := a.Swap(ctx, swaps...); err != nil {
				t.Fatal(err)
			}
			_ = a.CP()
		}
	})
	rep.InnerLoop = benchCmp{
		BaselineMs:    fullMs,
		OptimizedMs:   incrMs,
		Speedup:       fullMs / incrMs,
		Baseline:      fmt.Sprintf("full Analyze per round (%d rounds x 3 swaps)", rounds),
		Optimized:     "Analyzer.Swap incremental re-propagation",
		RoundsPerIter: rounds,
	}

	// Grid fan-out: one netlist under 121 libraries.
	nl := randNetlist(rand.New(rand.NewSource(7)), gates)
	libs := make([]*liberty.Library, 121)
	for i := range libs {
		libs[i] = l
	}
	serialMs := medianOf(iters, func() {
		for range libs {
			if _, err := Analyze(ctx, nl, l, Config{}); err != nil {
				t.Fatal(err)
			}
		}
	})
	batchMs := medianOf(iters, func() {
		if _, err := AnalyzeBatch(ctx, nl, libs, Config{}, 0); err != nil {
			t.Fatal(err)
		}
	})
	rep.GridFanout = benchCmp{
		BaselineMs:    serialMs,
		OptimizedMs:   batchMs,
		Speedup:       serialMs / batchMs,
		Baseline:      "serial Analyze per library",
		Optimized:     "AnalyzeBatch, shared topology, all CPUs",
		RoundsPerIter: len(libs),
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("inner loop: full %.2fms vs incremental %.2fms (%.1fx)",
		fullMs, incrMs, rep.InnerLoop.Speedup)
	t.Logf("grid fan-out: serial %.2fms vs batch %.2fms (%.1fx)",
		serialMs, batchMs, rep.GridFanout.Speedup)
	if iters > 1 {
		if rep.InnerLoop.Speedup < 2 {
			t.Errorf("inner-loop speedup %.2fx < 2x", rep.InnerLoop.Speedup)
		}
		if rep.GridFanout.Speedup < 2 {
			t.Errorf("grid fan-out speedup %.2fx < 2x", rep.GridFanout.Speedup)
		}
	}
}
