package sta

import (
	"context"
	"fmt"

	"ageguard/internal/conc"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
)

// BatchTimer is the many-libraries counterpart of Analyzer for workloads
// that re-time ONE fixed netlist under a stream of libraries and only need
// the critical-path delay — the Monte Carlo statistical STA inner loop,
// where every sample materializes its own instance-variant library. The
// netlist topology (levelization, net numbering, fanout sinks, endpoint
// lists) is compiled once at construction; each CP call performs only the
// per-library binding and arrival propagation, exactly the per-leg work of
// AnalyzeBatch.
//
// Unlike Analyzer, a BatchTimer is safe for concurrent use: the compiled
// topology is immutable and every CP call allocates its own binding and
// state. CP results are bit-identical to a standalone Analyze of the same
// (netlist, library) pair — the same floating-point operations run in the
// same order (AnalyzeBatch's property, inherited by construction).
type BatchTimer struct {
	topo *topology
	cfg  Config
}

// NewBatchTimer compiles the netlist topology against the template
// library's cell footprints. Any library whose footprints match the
// template (the flow's aged and instance-variant libraries all do) can
// then be timed with CP; one that deviates falls back transparently.
// The netlist must not be mutated while the BatchTimer is in use.
func NewBatchTimer(ctx context.Context, n *netlist.Netlist, template *liberty.Library, cfg Config) (*BatchTimer, error) {
	if err := ctx.Err(); err != nil {
		return nil, conc.WrapCanceled(fmt.Errorf("sta: %s: %w", n.Name, err))
	}
	cfg.fill()
	topo, err := newTopology(n, template)
	if err != nil {
		return nil, err
	}
	return &BatchTimer{topo: topo, cfg: cfg}, nil
}

// CP times the compiled netlist under lib and returns the critical-path
// delay, bit-identical to Analyze(ctx, netlist, lib, cfg).CP. A library
// whose cell footprints deviate from the compiled topology falls back to
// the reference analysis (counted in sta.incremental.fallbacks).
func (bt *BatchTimer) CP(ctx context.Context, lib *liberty.Library) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, conc.WrapCanceled(fmt.Errorf("sta: %s: %w", bt.topo.n.Name, err))
	}
	reg := obs.From(ctx)
	reg.Counter("sta.analyses").Inc()
	b, err := newBinding(bt.topo, lib)
	if err == errFootprint {
		reg.Counter("sta.incremental.fallbacks").Inc()
		res, err := analyzeReference(bt.topo.n, lib, bt.cfg)
		if err != nil {
			return 0, err
		}
		return res.CP, nil
	}
	if err != nil {
		return 0, err
	}
	s := newState(len(bt.topo.nets))
	if err := forwardFull(bt.topo, b, s, &bt.cfg); err != nil {
		return 0, err
	}
	return s.cp, nil
}
