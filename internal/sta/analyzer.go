package sta

import (
	"context"
	"fmt"
	"math"
	"time"

	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
)

// This file implements the incremental/batched STA engine. The naive
// single-shot analysis (analyzeReference in sta.go) recomputes
// levelization, fanout maps, per-net loads and the full arrival front on
// every call — fine for one query, wasteful for the synthesis inner loop
// (thousands of re-analyses of one slowly-mutating netlist) and for the
// multi-library guardband fan-out (one netlist timed under up to 121
// duty-cycle libraries). The Analyzer compiles the netlist topology once
// into dense integer-indexed arrays, answers repeated queries from that
// compiled form, and after a footprint-preserving cell swap re-propagates
// arrivals only through the affected fanout cone, terminating early where
// arrivals converge. Results are bit-identical to analyzeReference: every
// floating-point operation is performed in the same order on the same
// operands (see analyzer_test.go for the differential property tests).

// CellSwap is one footprint-preserving cell substitution: the instance
// keeps its pins and nets, only the library cell (typically a different
// drive strength of the same base) changes.
type CellSwap struct {
	Inst string // instance name
	Cell string // replacement library cell name
}

// cSink is one fanout sink of a net: an instance (by topological index)
// and the input pin through which it loads the net.
type cSink struct {
	inst int32
	pin  string
}

// topology is the library-independent compiled view of a netlist: net and
// instance numbering, traversal order, fanout sinks in deterministic
// reference order, and endpoint lists. It can be shared read-only between
// bindings against different libraries (the batch mode does exactly that).
type topology struct {
	n     *netlist.Netlist
	nets  []string         // net id -> name
	netID map[string]int32 // net name -> id
	clk   int32            // id of netlist.ClockNet (always allocated)

	order   []*netlist.Inst  // instances in reference topological order
	instIdx map[string]int32 // instance name -> index into order

	outNet []int32            // per instance: output net id
	pinNet []map[string]int32 // per instance: pin name -> net id
	sinks  [][]cSink          // per net: sinks in reference FanoutMap order
	driver []int32            // per net: driving instance index, -1 = none
	isPO   []bool             // per net: appears in n.Outputs

	poNets  []int32 // n.Outputs in order (duplicates preserved)
	seqTopo []int32 // sequential instances in n.Insts order
	piNets  []int32 // n.Inputs in order

	// Footprint expectations recorded from the library the topology was
	// built with; a binding against another library must match them, or
	// the traversal order and load summation order would differ.
	inputsOf [][]string // per instance: cell input pin names in order
	outputOf []string   // per instance: cell output pin name
	seqOf    []bool     // per instance: sequential?
}

// newTopology compiles the netlist against the cell footprints of lib.
func newTopology(n *netlist.Netlist, lib *liberty.Library) (*topology, error) {
	look := netlist.LibraryLookup(lib)
	order, err := n.Levelize(look)
	if err != nil {
		return nil, err
	}
	t := &topology{
		n:       n,
		netID:   make(map[string]int32, 2*len(n.Insts)),
		order:   order,
		instIdx: make(map[string]int32, len(order)),
	}
	id := func(net string) int32 {
		if i, ok := t.netID[net]; ok {
			return i
		}
		i := int32(len(t.nets))
		t.netID[net] = i
		t.nets = append(t.nets, net)
		return i
	}
	t.clk = id(netlist.ClockNet)
	for _, pi := range n.Inputs {
		t.piNets = append(t.piNets, id(pi))
	}
	for _, po := range n.Outputs {
		t.poNets = append(t.poNets, id(po))
	}
	t.outNet = make([]int32, len(order))
	t.pinNet = make([]map[string]int32, len(order))
	t.inputsOf = make([][]string, len(order))
	t.outputOf = make([]string, len(order))
	t.seqOf = make([]bool, len(order))
	for i, in := range order {
		t.instIdx[in.Name] = int32(i)
		ct := lib.MustCell(in.Cell)
		pn := make(map[string]int32, len(in.Pins))
		for pin, net := range in.Pins {
			pn[pin] = id(net)
		}
		t.pinNet[i] = pn
		t.outNet[i] = pn[ct.Output]
		t.inputsOf[i] = ct.Inputs
		t.outputOf[i] = ct.Output
		t.seqOf[i] = ct.Seq
	}
	nn := len(t.nets)
	t.sinks = make([][]cSink, nn)
	t.driver = make([]int32, nn)
	t.isPO = make([]bool, nn)
	for i := range t.driver {
		t.driver[i] = -1
	}
	for _, po := range n.Outputs {
		t.isPO[t.netID[po]] = true
	}
	for i := range order {
		t.driver[t.outNet[i]] = int32(i)
	}
	// Sinks in the exact order FanoutMap produces them: n.Insts order,
	// then cell input order.
	for _, in := range n.Insts {
		ti := t.instIdx[in.Name]
		for _, pin := range t.inputsOf[ti] {
			net := t.pinNet[ti][pin]
			t.sinks[net] = append(t.sinks[net], cSink{inst: ti, pin: pin})
		}
	}
	// Sequential endpoint scan order: n.Insts order.
	for _, in := range n.Insts {
		ti := t.instIdx[in.Name]
		if t.seqOf[ti] {
			t.seqTopo = append(t.seqTopo, ti)
		}
	}
	return t, nil
}

// binding resolves one library against a topology: per-instance timing
// views, clock arcs and per-arc input net ids.
type binding struct {
	lib       *liberty.Library
	ct        []*liberty.CellTiming
	clockArcs [][]liberty.Arc // sequential instances only
	arcNet    [][]int32       // per instance, per arc: input net id
}

// errFootprint signals a cell whose pin footprint deviates from the
// topology's expectations; the caller falls back to a full analysis.
var errFootprint = fmt.Errorf("sta: cell footprint differs from compiled topology")

func footprintMatches(t *topology, i int, ct *liberty.CellTiming) bool {
	if ct.Seq != t.seqOf[i] || ct.Output != t.outputOf[i] || len(ct.Inputs) != len(t.inputsOf[i]) {
		return false
	}
	for k, pin := range t.inputsOf[i] {
		if ct.Inputs[k] != pin {
			return false
		}
	}
	return true
}

// bindInst (re)binds one instance slot against the binding's library.
func (b *binding) bindInst(t *topology, i int, cell string) error {
	ct, ok := b.lib.Cell(cell)
	if !ok {
		return fmt.Errorf("sta: library %q has no cell %q (inst %s)", b.lib.Name, cell, t.order[i].Name)
	}
	if !footprintMatches(t, i, ct) {
		return errFootprint
	}
	b.ct[i] = ct
	if ct.Seq {
		b.clockArcs[i] = ct.ArcsFor(ct.Clock)
	} else {
		b.clockArcs[i] = nil
	}
	nets := b.arcNet[i][:0]
	for ai := range ct.Arcs {
		nets = append(nets, t.pinNet[i][ct.Arcs[ai].Pin])
	}
	b.arcNet[i] = nets
	return nil
}

// newBinding binds every instance of the topology against lib, using each
// instance's current Cell name.
func newBinding(t *topology, lib *liberty.Library) (*binding, error) {
	b := &binding{
		lib:       lib,
		ct:        make([]*liberty.CellTiming, len(t.order)),
		clockArcs: make([][]liberty.Arc, len(t.order)),
		arcNet:    make([][]int32, len(t.order)),
	}
	for i, in := range t.order {
		if err := b.bindInst(t, i, in.Cell); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// cPred mirrors pred with integer net/instance references. inst < 0 means
// "no predecessor" (primary inputs, unreached edges).
type cPred struct {
	inst    int32
	pin     string
	fromNet int32
	inEdge  liberty.Edge
	delay   float64
}

// state holds the per-query timing annotations over a (topology, binding)
// pair. The forward arrays persist across incremental swaps; the backward
// arrays are rebuilt lazily per materialized Result.
type state struct {
	arr     [][2]float64
	slw     [][2]float64
	hasArr  []bool
	load    []float64
	hasLoad []bool
	preds   [][2]cPred

	cp        float64
	bestEnd   int32
	bestEdge  liberty.Edge
	bestSetup float64
}

func newState(nn int) *state {
	s := &state{
		arr:     make([][2]float64, nn),
		slw:     make([][2]float64, nn),
		hasArr:  make([]bool, nn),
		load:    make([]float64, nn),
		hasLoad: make([]bool, nn),
		preds:   make([][2]cPred, nn),
	}
	s.resetForward()
	return s
}

func (s *state) resetForward() {
	for i := range s.preds {
		s.arr[i] = [2]float64{}
		s.slw[i] = [2]float64{}
		s.hasArr[i] = false
		s.load[i] = 0
		s.hasLoad[i] = false
		s.preds[i] = [2]cPred{{inst: -1}, {inst: -1}}
	}
}

// loadOf computes (and caches) the load of a net exactly the way
// analyzeReference does: wire cap, fanout wire adder, sink pin caps in
// fanout order, then the primary-output load.
func (s *state) loadOf(t *topology, b *binding, cfg *Config, net int32) float64 {
	if s.hasLoad[net] {
		return s.load[net]
	}
	l := s.computeLoad(t, b, cfg, net)
	s.load[net] = l
	s.hasLoad[net] = true
	return l
}

func (s *state) computeLoad(t *topology, b *binding, cfg *Config, net int32) float64 {
	sinks := t.sinks[net]
	l := cfg.WireCap
	if len(sinks) > 1 {
		l += cfg.WireCapFan * float64(len(sinks)-1)
	}
	for _, sk := range sinks {
		l += b.ct[sk.inst].PinCap[sk.pin]
	}
	if t.isPO[net] {
		l += cfg.OutputLoad
	}
	return l
}

// evalInst recomputes the arrival, slew and winning predecessors at one
// instance's output, byte-for-byte the way analyzeReference's main loop
// does. It does not write the state.
func evalInst(t *topology, b *binding, s *state, cfg *Config, i int) (arr, slw [2]float64, pr [2]cPred, err error) {
	neg := math.Inf(-1)
	arr = [2]float64{neg, neg}
	pr = [2]cPred{{inst: -1}, {inst: -1}}
	ct := b.ct[i]
	load := s.loadOf(t, b, cfg, t.outNet[i])
	if ct.Seq {
		for ai := range b.clockArcs[i] {
			arc := &b.clockArcs[i][ai]
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				if arc.Delay[e] == nil {
					continue
				}
				d := arc.Delay[e].At(cfg.ClockSlew, load)
				if d > arr[e] {
					arr[e] = d
					slw[e] = arc.OutSlew[e].At(cfg.ClockSlew, load)
					pr[e] = cPred{inst: int32(i), pin: ct.Clock, fromNet: t.clk, inEdge: liberty.Rise, delay: d}
				}
			}
		}
	} else {
		for ai := range ct.Arcs {
			arc := &ct.Arcs[ai]
			inNet := b.arcNet[i][ai]
			if !s.hasArr[inNet] {
				continue // unreachable input (e.g. tied elsewhere)
			}
			ia := s.arr[inNet]
			is := s.slw[inNet]
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				if arc.Delay[e] == nil {
					continue
				}
				ie := arc.Sense.InputEdge(e)
				if math.IsInf(ia[ie], -1) {
					continue
				}
				d := arc.Delay[e].At(is[ie], load)
				if cand := ia[ie] + d; cand > arr[e] {
					arr[e] = cand
					slw[e] = arc.OutSlew[e].At(is[ie], load)
					pr[e] = cPred{inst: int32(i), pin: arc.Pin, fromNet: inNet, inEdge: ie, delay: d}
				}
			}
		}
	}
	if math.IsInf(arr[0], -1) && math.IsInf(arr[1], -1) {
		return arr, slw, pr, fmt.Errorf("sta: instance %s has no arrival (undriven inputs?)", t.order[i].Name)
	}
	return arr, slw, pr, nil
}

// forwardFull runs the complete arrival propagation.
func forwardFull(t *topology, b *binding, s *state, cfg *Config) error {
	s.resetForward()
	for _, pi := range t.piNets {
		s.arr[pi] = [2]float64{0, 0}
		s.slw[pi] = [2]float64{cfg.InputSlew, cfg.InputSlew}
		s.hasArr[pi] = true
	}
	for i := range t.order {
		arr, slw, pr, err := evalInst(t, b, s, cfg, i)
		if err != nil {
			return err
		}
		out := t.outNet[i]
		s.arr[out] = arr
		s.slw[out] = slw
		s.hasArr[out] = true
		s.preds[out] = pr
	}
	return scanEndpoints(t, b, s)
}

// scanEndpoints recomputes the critical endpoint exactly in reference
// order: primary outputs first, then sequential data pins in n.Insts
// order, with strictly-greater tie-breaking.
func scanEndpoints(t *topology, b *binding, s *state) error {
	neg := math.Inf(-1)
	bestEnd := int32(-1)
	bestEdge := liberty.Rise
	bestDelay := neg
	bestSetup := 0.0
	consider := func(net int32, setup float64) {
		if !s.hasArr[net] {
			return
		}
		a := s.arr[net]
		for e := liberty.Rise; e <= liberty.Fall; e++ {
			if a[e]+setup > bestDelay {
				bestDelay = a[e] + setup
				bestEnd, bestEdge, bestSetup = net, e, setup
			}
		}
	}
	for _, po := range t.poNets {
		consider(po, 0)
	}
	for _, i := range t.seqTopo {
		ct := b.ct[i]
		consider(t.pinNet[i][ct.Data], ct.SetupPS)
	}
	if bestEnd < 0 {
		return fmt.Errorf("sta: no timing endpoints in %s", t.n.Name)
	}
	s.cp = bestDelay
	s.bestEnd, s.bestEdge, s.bestSetup = bestEnd, bestEdge, bestSetup
	return nil
}

// materialize builds the public Result (maps keyed by net name, worst
// path, required times and slacks) from the compiled state. The backward
// pass runs here, so pure accept/reject queries that only read CP never
// pay for it.
func materialize(t *topology, b *binding, s *state, cfg *Config) *Result {
	res := &Result{
		CP:       s.cp,
		Arrival:  make(map[string][2]float64, len(t.nets)),
		Slew:     make(map[string][2]float64, len(t.nets)),
		Load:     make(map[string]float64, len(t.nets)),
		Required: make(map[string][2]float64, len(t.nets)),
		Slack:    make(map[string]float64, len(t.nets)),
	}
	inf := math.Inf(1)
	nn := len(t.nets)
	req := make([][2]float64, nn)
	hasReq := make([]bool, nn)
	setReq := func(net int32, e liberty.Edge, v float64) {
		if !hasReq[net] {
			req[net] = [2]float64{inf, inf}
			hasReq[net] = true
		}
		if v < req[net][e] {
			req[net][e] = v
		}
	}
	for _, po := range t.poNets {
		setReq(po, liberty.Rise, s.cp)
		setReq(po, liberty.Fall, s.cp)
	}
	for _, i := range t.seqTopo {
		ct := b.ct[i]
		d := t.pinNet[i][ct.Data]
		setReq(d, liberty.Rise, s.cp-ct.SetupPS)
		setReq(d, liberty.Fall, s.cp-ct.SetupPS)
	}
	for i := len(t.order) - 1; i >= 0; i-- {
		ct := b.ct[i]
		if ct.Seq {
			continue
		}
		out := t.outNet[i]
		if !hasReq[out] {
			continue // dangling output: unconstrained
		}
		load := s.load[out]
		outReq := req[out]
		for ai := range ct.Arcs {
			arc := &ct.Arcs[ai]
			inNet := b.arcNet[i][ai]
			is := s.slw[inNet]
			for e := liberty.Rise; e <= liberty.Fall; e++ {
				if arc.Delay[e] == nil || math.IsInf(outReq[e], 1) {
					continue
				}
				ie := arc.Sense.InputEdge(e)
				d := arc.Delay[e].At(is[ie], load)
				setReq(inNet, ie, outReq[e]-d)
			}
		}
	}
	for id, name := range t.nets {
		if s.hasLoad[id] {
			res.Load[name] = s.load[id]
		}
		if hasReq[id] {
			res.Required[name] = req[id]
		}
		if !s.hasArr[id] {
			continue
		}
		res.Arrival[name] = s.arr[id]
		res.Slew[name] = s.slw[id]
		if !hasReq[id] {
			res.Slack[name] = inf
			continue
		}
		sl := inf
		for e := 0; e < 2; e++ {
			if math.IsInf(s.arr[id][e], -1) || math.IsInf(req[id][e], 1) {
				continue
			}
			if v := req[id][e] - s.arr[id][e]; v < sl {
				sl = v
			}
		}
		res.Slack[name] = sl
	}
	res.Worst = traceCompiled(t, s)
	return res
}

// traceCompiled reconstructs the critical path from compiled predecessors,
// mirroring tracePath.
func traceCompiled(t *topology, s *state) Path {
	p := Path{Endpoint: t.nets[s.bestEnd], EndEdge: s.bestEdge, Setup: s.bestSetup}
	p.Delay = s.arr[s.bestEnd][s.bestEdge] + s.bestSetup
	net, edge := s.bestEnd, s.bestEdge
	for {
		pr := s.preds[net][edge]
		if pr.inst < 0 {
			break
		}
		in := t.order[pr.inst]
		p.Steps = append(p.Steps, Step{
			Inst:    in.Name,
			Cell:    in.Cell,
			Pin:     pr.pin,
			FromNet: t.nets[pr.fromNet],
			ToNet:   t.nets[net],
			InEdge:  pr.inEdge,
			OutEdge: edge,
			Delay:   pr.delay,
			Arrival: s.arr[net][edge],
		})
		net, edge = pr.fromNet, pr.inEdge
		if net == t.clk {
			break
		}
	}
	p.Launch = t.nets[net]
	for i, j := 0, len(p.Steps)-1; i < j; i, j = i+1, j-1 {
		p.Steps[i], p.Steps[j] = p.Steps[j], p.Steps[i]
	}
	return p
}

// ----------------------------------------------------------------------------
// Analyzer: the reusable incremental engine.

// Analyzer is a reusable STA engine bound to one netlist and one library.
// Construction compiles the netlist topology (levelization, net numbering,
// fanout sinks, endpoint lists) and runs a full analysis; afterwards
// repeated timing queries reuse all of that work, and footprint-preserving
// cell swaps (see Swap) re-propagate arrivals only through the affected
// fanout cone.
//
// The Analyzer takes ownership of the netlist: Swap updates Inst.Cell in
// place so the netlist and the compiled state never diverge. It is not
// safe for concurrent use; run one Analyzer per goroutine (the batch mode
// in batch.go shares only the immutable topology).
type Analyzer struct {
	t     *topology
	b     *binding
	s     *state
	cfg   Config
	dirty []bool // per instance, scratch for Swap propagation

	res *Result // cached materialized result, nil after a mutation
}

// NewAnalyzer compiles the netlist against the library and runs the
// initial full analysis. The returned Analyzer owns n (see type comment).
// The construction is counted as one sta.analyses in the registry carried
// by ctx.
func NewAnalyzer(ctx context.Context, n *netlist.Netlist, lib *liberty.Library, cfg Config) (*Analyzer, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sta: %s: %w", n.Name, err)
	}
	reg := obs.From(ctx)
	t0 := time.Now()
	defer func() {
		reg.Counter("sta.analyses").Inc()
		reg.Histogram("sta.analyze.seconds").Since(t0)
	}()
	cfg.fill()
	t, err := newTopology(n, lib)
	if err != nil {
		return nil, err
	}
	b, err := newBinding(t, lib)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{t: t, b: b, s: newState(len(t.nets)), cfg: cfg, dirty: make([]bool, len(t.order))}
	if err := forwardFull(t, b, a.s, &a.cfg); err != nil {
		return nil, err
	}
	return a, nil
}

// Netlist returns the netlist the Analyzer is bound to.
func (a *Analyzer) Netlist() *netlist.Netlist { return a.t.n }

// Library returns the library the Analyzer is bound to.
func (a *Analyzer) Library() *liberty.Library { return a.b.lib }

// CP returns the current critical-path delay without materializing a full
// Result — the cheap accept/reject query of optimization loops.
func (a *Analyzer) CP() float64 { return a.s.cp }

// Result materializes the full analysis result (arrivals, slews, loads,
// required times, slacks and the worst path) for the current netlist
// state. The result is bit-identical to a fresh Analyze of the
// same netlist and cached until the next mutation; treat it as read-only.
func (a *Analyzer) Result() *Result {
	if a.res == nil {
		a.res = materialize(a.t, a.b, a.s, &a.cfg)
	}
	return a.res
}

// Swap applies footprint-preserving cell substitutions and incrementally
// re-times the netlist: only the loads of nets feeding swapped instances
// are recomputed, and arrivals re-propagate through the affected fanout
// cone with early termination where arrival, slew and winning arc all
// converge to their previous values. The returned swaps restore the
// previous cells when passed back to Swap — the undo an optimization loop
// applies after rejecting a trial move.
//
// A replacement cell whose pin footprint differs from the compiled one
// (different pin names or order, or sequential/combinational mismatch)
// cannot be retimed incrementally; Swap then falls back to a full
// re-analysis of the whole netlist (counted as sta.incremental.fallbacks).
// Unknown instances or cells leave the Analyzer unchanged and return an
// error.
func (a *Analyzer) Swap(ctx context.Context, swaps ...CellSwap) ([]CellSwap, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sta: %s: %w", a.t.n.Name, err)
	}
	if len(swaps) == 0 {
		return nil, nil
	}
	reg := obs.From(ctx)
	// Validate everything before mutating anything.
	idx := make([]int32, len(swaps))
	for k, sw := range swaps {
		i, ok := a.t.instIdx[sw.Inst]
		if !ok {
			return nil, fmt.Errorf("sta: %s: no instance %q", a.t.n.Name, sw.Inst)
		}
		if _, ok := a.b.lib.Cell(sw.Cell); !ok {
			return nil, fmt.Errorf("sta: library %q has no cell %q", a.b.lib.Name, sw.Cell)
		}
		idx[k] = i
	}
	undo := make([]CellSwap, len(swaps))
	fallback := false
	loadDirty := make(map[int32]struct{})
	for k, sw := range swaps {
		i := idx[k]
		undo[k] = CellSwap{Inst: sw.Inst, Cell: a.t.order[i].Cell}
		a.t.order[i].Cell = sw.Cell
		if err := a.b.bindInst(a.t, int(i), sw.Cell); err == errFootprint {
			fallback = true
			continue
		} else if err != nil {
			return nil, err // unreachable: cell presence checked above
		}
		a.dirty[i] = true
		for _, pin := range a.t.inputsOf[i] {
			loadDirty[a.t.pinNet[i][pin]] = struct{}{}
		}
	}
	a.res = nil
	reg.Counter("sta.incremental.queries").Inc()
	if fallback {
		// A footprint change invalidates the compiled traversal order;
		// recompile against the mutated netlist and re-run in full.
		reg.Counter("sta.incremental.fallbacks").Inc()
		if err := a.rebuild(); err != nil {
			return nil, err
		}
		return undo, nil
	}
	// Recompute the loads of nets whose sink pin caps changed; a changed
	// load dirties the driving instance (its delay and slew depend on it).
	for net := range loadDirty {
		if !a.s.hasLoad[net] {
			continue // never queried (e.g. a primary input net)
		}
		nl := a.s.computeLoad(a.t, a.b, &a.cfg, net)
		if nl == a.s.load[net] {
			continue
		}
		a.s.load[net] = nl
		if d := a.t.driver[net]; d >= 0 {
			a.dirty[d] = true
		}
	}
	// Propagate in topological order through the dirty cone.
	cone := 0
	for i := range a.t.order {
		if !a.dirty[i] {
			continue
		}
		a.dirty[i] = false
		cone++
		arr, slw, pr, err := evalInst(a.t, a.b, a.s, &a.cfg, i)
		if err != nil {
			// The netlist no longer times (should be impossible for pure
			// cell swaps); resync with a full rebuild before reporting.
			reg.Counter("sta.incremental.fallbacks").Inc()
			if rerr := a.rebuild(); rerr != nil {
				return undo, rerr
			}
			return undo, err
		}
		out := a.t.outNet[i]
		if arr == a.s.arr[out] && slw == a.s.slw[out] && pr == a.s.preds[out] {
			continue // converged: the cone stops here
		}
		a.s.arr[out] = arr
		a.s.slw[out] = slw
		a.s.preds[out] = pr
		for _, sk := range a.t.sinks[out] {
			if !a.t.seqOf[sk.inst] {
				a.dirty[sk.inst] = true
			}
		}
	}
	reg.Histogram("sta.incremental.cone_size").Observe(float64(cone))
	return undo, scanEndpoints(a.t, a.b, a.s)
}

// rebuild recompiles topology and binding from the current netlist and
// re-runs the full analysis — the fallback for structural edits.
func (a *Analyzer) rebuild() error {
	t, err := newTopology(a.t.n, a.b.lib)
	if err != nil {
		return err
	}
	b, err := newBinding(t, a.b.lib)
	if err != nil {
		return err
	}
	a.t, a.b = t, b
	a.s = newState(len(t.nets))
	a.dirty = make([]bool, len(t.order))
	a.res = nil
	return forwardFull(t, b, a.s, &a.cfg)
}

// Rebuild re-times the netlist from scratch after external structural
// edits (added instances, rewired pins). Counted as an incremental
// fallback: prefer Swap for footprint-preserving changes.
func (a *Analyzer) Rebuild(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sta: %s: %w", a.t.n.Name, err)
	}
	obs.From(ctx).Counter("sta.incremental.fallbacks").Inc()
	return a.rebuild()
}
