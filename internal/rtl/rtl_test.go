package rtl

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"ageguard/internal/logic"
)

// evalCircuit drives the named input buses with the given integer values
// (single vector; bits replicated across all 64 lanes) and decodes every
// output bus back to a signed integer keyed by bus name.
func evalCircuit(t *testing.T, a *logic.AIG, vals map[string]int64) map[string]int64 {
	t.Helper()
	in := make([]uint64, a.NumInputs())
	for i := 0; i < a.NumInputs(); i++ {
		name, bit := splitBit(a.InputName(i))
		v, ok := vals[name]
		if !ok {
			t.Fatalf("missing input %q", name)
		}
		if v>>uint(bit)&1 == 1 {
			in[i] = ^uint64(0)
		}
	}
	out, _ := a.Eval64(in, nil)
	width := map[string]int{}
	raw := map[string]uint64{}
	for i, o := range a.Outputs() {
		name, bit := splitBit(o.Name)
		if out[i]&1 == 1 {
			raw[name] |= 1 << uint(bit)
		}
		if bit+1 > width[name] {
			width[name] = bit + 1
		}
	}
	res := map[string]int64{}
	for name, v := range raw {
		res[name] = signExtend(v, width[name])
	}
	for name, w := range width {
		if _, ok := res[name]; !ok {
			res[name] = signExtend(0, w)
		}
	}
	return res
}

func splitBit(s string) (string, int) {
	i := strings.IndexByte(s, '[')
	if i < 0 {
		return s, 0
	}
	b, _ := strconv.Atoi(strings.TrimSuffix(s[i+1:], "]"))
	return s[:i], b
}

func signExtend(v uint64, w int) int64 {
	if w >= 64 {
		return int64(v)
	}
	if v>>(uint(w)-1)&1 == 1 {
		v |= ^uint64(0) << uint(w)
	}
	return int64(v)
}

func mask(v int64, w int) int64 { return signExtend(uint64(v)&(1<<uint(w)-1), w) }

func TestAdders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fast := range []bool{false, true} {
		b := NewBuilder()
		x := b.Input("x", 16)
		y := b.Input("y", 16)
		var s Bus
		if fast {
			s, _ = b.AddFast(x, y, logic.False)
		} else {
			s, _ = b.Add(x, y, logic.False)
		}
		b.Output("s", s)
		for i := 0; i < 200; i++ {
			xv := int64(int16(rng.Uint64()))
			yv := int64(int16(rng.Uint64()))
			got := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})["s"]
			if want := mask(xv+yv, 16); got != want {
				t.Fatalf("fast=%v: %d+%d = %d, want %d", fast, xv, yv, got, want)
			}
		}
	}
}

func TestSubNeg(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 12)
	y := b.Input("y", 12)
	d, _ := b.Sub(x, y)
	b.Output("d", d)
	b.Output("n", b.Neg(x))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		xv := int64(rng.Intn(4096) - 2048)
		yv := int64(rng.Intn(4096) - 2048)
		res := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})
		if want := mask(xv-yv, 12); res["d"] != want {
			t.Fatalf("%d-%d = %d, want %d", xv, yv, res["d"], want)
		}
		if want := mask(-xv, 12); res["n"] != want {
			t.Fatalf("-%d = %d, want %d", xv, res["n"], want)
		}
	}
}

func TestMulCSA(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 12)
	y := b.Input("y", 12)
	b.Output("p", b.MulCSA(x, y))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		xv := int64(rng.Intn(4096) - 2048)
		yv := int64(rng.Intn(4096) - 2048)
		got := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})["p"]
		if want := xv * yv; got != want {
			t.Fatalf("%d*%d = %d, want %d", xv, yv, got, want)
		}
	}
}

func TestMulConstCSD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range []int64{0, 1, -1, 3, 5, 7, 11, 100, 723, -1024, 1023, 4096} {
		b := NewBuilder()
		x := b.Input("x", 14)
		b.Output("p", b.MulConst(x, c, 28))
		for i := 0; i < 30; i++ {
			xv := int64(rng.Intn(1<<14) - 1<<13)
			got := evalCircuit(t, b.A, map[string]int64{"x": xv})["p"]
			if want := mask(xv*c, 28); got != want {
				t.Fatalf("%d*%d = %d, want %d", xv, c, got, want)
			}
		}
	}
}

func TestComparators(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 10)
	y := b.Input("y", 10)
	b.OutputBit("eq", b.Eq(x, y))
	b.OutputBit("ltu", b.LtU(x, y))
	b.OutputBit("lts", b.LtS(x, y))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		xv := int64(rng.Intn(1024) - 512)
		yv := int64(rng.Intn(1024) - 512)
		if i == 0 {
			yv = xv
		}
		res := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})
		xu, yu := uint64(xv)&1023, uint64(yv)&1023
		if got, want := res["eq"] != 0, xv == yv; got != want {
			t.Fatalf("eq(%d,%d) = %v", xv, yv, got)
		}
		if got, want := res["ltu"] != 0, xu < yu; got != want {
			t.Fatalf("ltu(%d,%d) = %v", xu, yu, got)
		}
		if got, want := res["lts"] != 0, xv < yv; got != want {
			t.Fatalf("lts(%d,%d) = %v", xv, yv, got)
		}
	}
}

func TestBarrel(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 16)
	sh := b.Input("sh", 4)
	right := b.InputBit("right")
	b.Output("y", b.Barrel(x, sh, right, true))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		xv := int64(int16(rng.Uint64()))
		s := int64(rng.Intn(16))
		r := int64(rng.Intn(2))
		got := evalCircuit(t, b.A, map[string]int64{"x": xv, "sh": s, "right": r})["y"]
		var want int64
		if r == 1 {
			want = mask(xv>>uint(s), 16) // arithmetic
		} else {
			want = mask(xv<<uint(s), 16)
		}
		if got != want {
			t.Fatalf("shift(%d, %d, right=%d) = %d, want %d", xv, s, r, got, want)
		}
	}
}

func TestSaturate(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 12)
	b.Output("y", b.Saturate(x, 8))
	cases := map[int64]int64{0: 0, 100: 100, 127: 127, 128: 127, 2000: 127, -128: -128, -129: -128, -2000: -128}
	for in, want := range cases {
		got := evalCircuit(t, b.A, map[string]int64{"x": in})["y"]
		if got != want {
			t.Fatalf("sat(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMuxN(t *testing.T) {
	b := NewBuilder()
	s := b.Input("s", 2)
	var ch []Bus
	for i := 0; i < 4; i++ {
		ch = append(ch, b.Const(int64(10+i), 8))
	}
	b.Output("y", b.MuxN(s, ch))
	for i := int64(0); i < 4; i++ {
		got := evalCircuit(t, b.A, map[string]int64{"s": i})["y"]
		if got != 10+i {
			t.Fatalf("mux(%d) = %d", i, got)
		}
	}
}

// dctGolden computes the fixed-point golden model matching the circuit.
func dctGolden(m [8][8]int64, x [8]int64) [8]int64 {
	var y [8]int64
	for k := 0; k < 8; k++ {
		var sum int64
		for n := 0; n < 8; n++ {
			sum += x[n] * m[k][n]
		}
		v := (sum + 1<<(DCTFrac-1)) >> DCTFrac
		if v > 1<<(DCTWidth-1)-1 {
			v = 1<<(DCTWidth-1) - 1
		}
		if v < -(1 << (DCTWidth - 1)) {
			v = -(1 << (DCTWidth - 1))
		}
		y[k] = v
	}
	return y
}

func TestDCTCircuitMatchesGolden(t *testing.T) {
	a := GenDCT()
	m := DCTCoeff()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var x [8]int64
		vals := map[string]int64{}
		for i := range x {
			x[i] = int64(rng.Intn(256) - 128)
			vals[busName("x", i)] = x[i]
		}
		res := evalCircuit(t, a, vals)
		want := dctGolden(m, x)
		for k := 0; k < 8; k++ {
			if res[outName(k)] != want[k] {
				t.Fatalf("trial %d: y%d = %d, want %d", trial, k, res[outName(k)], want[k])
			}
		}
	}
}

func TestDCTIDCTRoundTrip(t *testing.T) {
	// Forward then inverse must reconstruct pixels within rounding error.
	dct := GenDCT()
	idct := GenIDCT()
	rng := rand.New(rand.NewSource(8))
	var worst float64
	for trial := 0; trial < 30; trial++ {
		var x [8]int64
		vals := map[string]int64{}
		for i := range x {
			x[i] = int64(rng.Intn(256) - 128)
			vals[busName("x", i)] = x[i]
		}
		ycirc := evalCircuit(t, dct, vals)
		zvals := map[string]int64{}
		for k := 0; k < 8; k++ {
			zvals[busName("z", k)] = ycirc[outName(k)]
		}
		back := evalCircuit(t, idct, zvals)
		for n := 0; n < 8; n++ {
			err := math.Abs(float64(back[outName(n)] - x[n]))
			if err > worst {
				worst = err
			}
		}
	}
	if worst > 2 {
		t.Errorf("DCT->IDCT reconstruction error %v LSB, want <= 2", worst)
	}
}

func TestDSPMac(t *testing.T) {
	a := GenDSP()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		av := int64(int16(rng.Uint64()))
		bv := int64(int16(rng.Uint64()))
		cv := int64(int16(rng.Uint64()))
		accv := int64(int32(rng.Uint64()))
		for op := int64(0); op < 4; op++ {
			res := evalCircuit(t, a, map[string]int64{
				"a": av, "b": bv, "c": cv, "acc": accv, "op": op,
			})["y"]
			var want int64
			switch op {
			case 0:
				want = accv + av*bv
			case 1:
				want = accv - av*bv
			case 2:
				want = accv + cv
			case 3:
				want = accv >> uint(cv&31)
			}
			want = sat32(want)
			if res != want {
				t.Fatalf("op %d: got %d, want %d", op, res, want)
			}
		}
	}
}

func sat32(v int64) int64 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return v
}

func TestFFTButterfly(t *testing.T) {
	a := GenFFT()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 60; i++ {
		arv := int64(rng.Intn(8192) - 4096)
		aiv := int64(rng.Intn(8192) - 4096)
		brv := int64(rng.Intn(8192) - 4096)
		biv := int64(rng.Intn(8192) - 4096)
		ang := rng.Float64() * 2 * math.Pi
		wrv := int64(math.Round(4096 * math.Cos(ang)))
		wiv := int64(math.Round(4096 * math.Sin(ang)))
		res := evalCircuit(t, a, map[string]int64{
			"ar": arv, "ai": aiv, "br": brv, "bi": biv, "wr": wrv, "wi": wiv,
		})
		round := func(v int64) int64 { return sat16((v + 2048) >> 12) }
		tr := round(brv*wrv - biv*wiv)
		ti := round(brv*wiv + biv*wrv)
		checks := map[string]int64{
			"xr": sat16(arv + tr), "xi": sat16(aiv + ti),
			"yr": sat16(arv - tr), "yi": sat16(aiv - ti),
		}
		for k, want := range checks {
			if res[k] != want {
				t.Fatalf("%s = %d, want %d", k, res[k], want)
			}
		}
	}
}

func sat16(v int64) int64 {
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16 {
		return math.MinInt16
	}
	return v
}

func TestRISCALU(t *testing.T) {
	for _, gen := range []func() *logic.AIG{GenRISC5, GenRISC6} {
		a := gen()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 40; i++ {
			rs1 := int64(int32(rng.Uint64()))
			rs2 := int64(int32(rng.Uint64()))
			imm := int64(int16(rng.Uint64()))
			vals := map[string]int64{
				"rs1": rs1, "rs2": rs2, "imm": imm,
				"selA": 0, "selB": 0, "useImm": 0,
				"fwd0": 0, "fwd1": 0, "fwd2": 0,
			}
			for op := int64(0); op < 8; op++ {
				vals["aluOp"] = op
				res := evalCircuit(t, a, vals)
				var want int64
				switch op {
				case 0:
					want = mask(rs1+rs2, 32)
				case 1:
					want = mask(rs1-rs2, 32)
				case 2:
					want = rs1 & rs2
				case 3:
					want = rs1 | rs2
				case 4:
					want = rs1 ^ rs2
				case 5:
					if rs1 < rs2 {
						want = 1
					}
				case 6:
					want = mask(rs1<<uint(rs2&31), 32)
				case 7:
					want = mask(rs1>>uint(rs2&31), 32)
				}
				if res["result"] != want {
					t.Fatalf("op %d: result = %d, want %d", op, res["result"], want)
				}
			}
			if got, want := res32(t, a, vals, "addr"), mask(rs1+imm, 32); got != want {
				t.Fatalf("addr = %d, want %d", got, want)
			}
		}
	}
}

func res32(t *testing.T, a *logic.AIG, vals map[string]int64, key string) int64 {
	t.Helper()
	return evalCircuit(t, a, vals)[key]
}

func TestRISCForwarding(t *testing.T) {
	a := GenRISC5()
	vals := map[string]int64{
		"rs1": 111, "rs2": 222, "imm": 0, "useImm": 0, "aluOp": 0,
		"fwd0": 1000, "fwd1": 2000, "selA": 1, "selB": 2,
	}
	got := evalCircuit(t, a, vals)["result"]
	if got != 3000 {
		t.Fatalf("forwarded add = %d, want 3000", got)
	}
}

func TestVLIWCrossBypass(t *testing.T) {
	a := GenVLIW()
	vals := map[string]int64{
		"a0": 5, "b0": 7, "op0": 0,
		"a1": 100, "b1": 1, "op1": 0,
		"cross": 2, "sh": 0, // slot1 B <- slot0 A
	}
	res := evalCircuit(t, a, vals)
	if res["r0"] != 12 {
		t.Fatalf("r0 = %d, want 12", res["r0"])
	}
	if res["r1"] != 105 {
		t.Fatalf("r1 = %d, want 105 (cross bypass)", res["r1"])
	}
}

func TestBenchmarkSizes(t *testing.T) {
	for name, gen := range Benchmarks() {
		a := gen()
		if a.NumAnds() < 500 {
			t.Errorf("%s: only %d AND nodes; too small to be a realistic benchmark", name, a.NumAnds())
		}
		if a.MaxLevel() < 10 {
			t.Errorf("%s: depth %d too shallow", name, a.MaxLevel())
		}
		t.Logf("%s: %d ands, depth %d, %d in, %d out",
			name, a.NumAnds(), a.MaxLevel(), a.NumInputs(), len(a.Outputs()))
	}
	if len(BenchmarkNames()) != 7 {
		t.Error("want 7 benchmarks")
	}
}
