package rtl

import (
	"math/rand"
	"testing"

	"ageguard/internal/logic"
)

func TestMulBooth(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 12)
	y := b.Input("y", 12)
	b.Output("p", b.MulBooth(x, y))
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		xv := int64(rng.Intn(4096) - 2048)
		yv := int64(rng.Intn(4096) - 2048)
		if i == 0 {
			xv, yv = -2048, -2048 // extreme corner
		}
		got := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})["p"]
		if want := xv * yv; got != want {
			t.Fatalf("booth %d*%d = %d, want %d", xv, yv, got, want)
		}
	}
}

func TestMulBoothMatchesCSA(t *testing.T) {
	// Two multiplier architectures must agree bit-for-bit.
	b := NewBuilder()
	x := b.Input("x", 10)
	y := b.Input("y", 10)
	b.Output("pb", b.MulBooth(x, y))
	b.Output("pc", b.MulCSA(x, y))
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		xv := int64(rng.Intn(1024) - 512)
		yv := int64(rng.Intn(1024) - 512)
		res := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})
		if res["pb"] != res["pc"] {
			t.Fatalf("booth %d != csa %d for %d*%d", res["pb"], res["pc"], xv, yv)
		}
	}
}

func TestAddCarrySelect(t *testing.T) {
	for _, block := range []int{1, 3, 4, 7} {
		b := NewBuilder()
		x := b.Input("x", 16)
		y := b.Input("y", 16)
		s, _ := b.AddCarrySelect(x, y, logic.False, block)
		b.Output("s", s)
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 100; i++ {
			xv := int64(int16(rng.Uint64()))
			yv := int64(int16(rng.Uint64()))
			got := evalCircuit(t, b.A, map[string]int64{"x": xv, "y": yv})["s"]
			if want := mask(xv+yv, 16); got != want {
				t.Fatalf("block %d: %d+%d = %d, want %d", block, xv, yv, got, want)
			}
		}
	}
}

func TestCarrySelectShallowerThanRipple(t *testing.T) {
	mkDepth := func(fast bool) int {
		b := NewBuilder()
		x := b.Input("x", 32)
		y := b.Input("y", 32)
		var s Bus
		if fast {
			s, _ = b.AddCarrySelect(x, y, logic.False, 8)
		} else {
			s, _ = b.Add(x, y, logic.False)
		}
		b.Output("s", s)
		return b.A.MaxLevel()
	}
	if cs, rca := mkDepth(true), mkDepth(false); cs >= rca {
		t.Errorf("carry-select depth %d not below ripple %d", cs, rca)
	}
}

func TestLFSR(t *testing.T) {
	g := LFSR(16, 1)
	seen := map[uint64]bool{}
	period := 0
	first := g()
	for {
		v := g()
		period++
		if v == first {
			break
		}
		if seen[v] {
			t.Fatal("LFSR revisited a state before closing its cycle")
		}
		seen[v] = true
		if period > 1<<16 {
			t.Fatal("LFSR period exceeds state space")
		}
	}
	// Maximal-length for width 16: 2^16 - 1 states.
	if period != 1<<16-1 {
		t.Errorf("LFSR period = %d, want %d", period, 1<<16-1)
	}
}

func TestLFSRDeterministicAndSeeded(t *testing.T) {
	a1, a2 := LFSR(32, 7), LFSR(32, 7)
	b1 := LFSR(32, 8)
	same, diff := true, false
	for i := 0; i < 100; i++ {
		x, y, z := a1(), a2(), b1()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must give the same stream")
	}
	if !diff {
		t.Error("different seeds should diverge")
	}
}

func TestWorkloadStimulus(t *testing.T) {
	stim := WorkloadStimulus([]string{"a", "b"}, 42)
	v0 := stim(0)
	if len(v0) != 2 {
		t.Fatalf("stimulus keys = %v", v0)
	}
	// Streams must be dense-ish (not stuck at zero) and per-input distinct.
	var onesA, onesB int
	for k := 0; k < 50; k++ {
		v := stim(k)
		onesA += popcount64(v["a"])
		onesB += popcount64(v["b"])
		if v["a"] == v["b"] {
			t.Fatal("inputs share a stream")
		}
	}
	if onesA < 50*16 || onesB < 50*16 {
		t.Errorf("streams too sparse: %d %d", onesA, onesB)
	}
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
