package rtl

import "ageguard/internal/logic"

// This file extends the arithmetic library with the alternative datapath
// structures real designs mix in: radix-4 Booth multipliers (fewer partial
// products, different path shape than the CSA array), carry-select adders
// (the classic delay/area trade between ripple and prefix), and an LFSR
// used as a deterministic workload generator for the dynamic aging-stress
// flow.

// MulBooth returns the len(x)+len(y)-bit signed product using radix-4
// Booth recoding: roughly half the partial products of the schoolbook
// array, each selected from {0, ±x, ±2x} by a 3-bit window of y.
func (b *Builder) MulBooth(x, y Bus) Bus {
	n, m := len(x), len(y)
	w := n + m
	xw := b.Resize(x, w)
	negX := b.Neg(xw)
	x2 := b.ShiftLeftConst(xw, 1)
	negX2 := b.Neg(x2)
	zero := b.Const(0, w)

	var rows []Bus
	for j := 0; j < m; j += 2 {
		// Booth window bits: y[j-1], y[j], y[j+1] (y[-1] = 0).
		lo := logic.False
		if j > 0 {
			lo = y[j-1]
		}
		mid := y[j]
		hi := lo // placeholder replaced below
		if j+1 < m {
			hi = y[j+1]
		} else {
			hi = y[m-1] // sign extension of the multiplier
		}
		// Recode: value = -2*hi + mid + lo in {-2,-1,0,1,2}.
		// one  <=> mid XOR lo
		// two  <=> hi & !mid & !lo  (select 2x)  or !hi & mid & lo (sel +2x)
		one := b.A.Xor(mid, lo)
		twoNeg := b.A.And(hi, b.A.And(mid.Not(), lo.Not()))
		twoPos := b.A.And(hi.Not(), b.A.And(mid, lo))
		neg := hi

		pp := b.Mux2(one, b.Mux2(neg, negX, xw), zero)
		pp = b.Mux2(twoPos, x2, pp)
		pp = b.Mux2(twoNeg, negX2, pp)
		rows = append(rows, b.ShiftLeftConst(pp, j))
	}
	// Carry-save reduce then final add (same reducer as MulCSA).
	for len(rows) > 2 {
		var next []Bus
		for i := 0; i+2 < len(rows); i += 3 {
			s := make(Bus, w)
			c := make(Bus, w)
			c[0] = logic.False
			for k := 0; k < w; k++ {
				sum, carry := b.fullAdder(rows[i][k], rows[i+1][k], rows[i+2][k])
				s[k] = sum
				if k+1 < w {
					c[k+1] = carry
				}
			}
			next = append(next, s, c)
		}
		rem := len(rows) % 3
		next = append(next, rows[len(rows)-rem:]...)
		rows = next
	}
	if len(rows) == 1 {
		return rows[0]
	}
	out, _ := b.Add(rows[0], rows[1], logic.False)
	return out
}

// AddCarrySelect returns x + y + cin using a carry-select structure with
// the given block size: each block is computed twice (carry 0 and 1) and
// the real block carry selects the result — log-ish depth at ~2x ripple
// area, the intermediate point between Add and AddFast.
func (b *Builder) AddCarrySelect(x, y Bus, cin logic.Lit, block int) (Bus, logic.Lit) {
	if len(x) != len(y) {
		panic("rtl: width mismatch")
	}
	if block < 1 {
		block = 4
	}
	n := len(x)
	out := make(Bus, n)
	carry := cin
	for base := 0; base < n; base += block {
		end := min(base+block, n)
		xs, ys := x[base:end], y[base:end]
		s0, c0 := b.Add(xs, ys, logic.False)
		s1, c1 := b.Add(xs, ys, logic.True)
		for i := range s0 {
			out[base+i] = b.A.Mux(carry, s1[i], s0[i])
		}
		carry = b.A.Mux(carry, c1, c0)
	}
	return out, carry
}

// LFSR builds a Galois linear-feedback shift register as a *sequential
// netlist stimulus generator in software*: it returns a step function
// producing the register's successive states. Used to generate
// deterministic pseudo-random workloads for the dynamic aging-stress
// analysis without importing math/rand into circuit code.
func LFSR(width int, seed uint64) func() uint64 {
	if width < 2 || width > 64 {
		panic("rtl: LFSR width out of range")
	}
	// Taps for maximal-length sequences (Xilinx app note table), indexed
	// by a few common widths; other widths fall back to a decent pair.
	taps := map[int]uint64{
		8:  0xB8,
		16: 0xB400,
		24: 0xE10000,
		32: 0xA3000000,
		48: 0xC00000400000,
		64: 0xD800000000000000,
	}
	mask := ^uint64(0) >> uint(64-width)
	tap, ok := taps[width]
	if !ok {
		tap = (1 << uint(width-1)) | (1 << uint(width-3)) | 1<<1 | 1
	}
	state := seed & mask
	if state == 0 {
		state = 1
	}
	return func() uint64 {
		out := state
		lsb := state & 1
		state >>= 1
		if lsb == 1 {
			state ^= tap & mask
		}
		return out
	}
}

// WorkloadStimulus adapts an LFSR into the map-based stimulus the
// gate-level simulator consumes: each primary input gets an independent
// stream derived from one generator.
func WorkloadStimulus(inputs []string, seed uint64) func(step int) map[string]uint64 {
	gens := make(map[string]func() uint64, len(inputs))
	for i, in := range inputs {
		gens[in] = LFSR(48, seed+uint64(i)*0x9E3779B97F4A7C15+1)
	}
	return func(int) map[string]uint64 {
		out := make(map[string]uint64, len(inputs))
		for in, g := range gens {
			// Two 48-bit draws concatenated give 64 dense bits.
			out[in] = g() ^ g()<<16
		}
		return out
	}
}
