// Package rtl generates the benchmark circuits of the paper's evaluation —
// DSP, FFT, RISC-5P, RISC-6P, VLIW, DCT and IDCT — as technology-
// independent logic networks ready for synthesis.
//
// It provides a word-level builder (buses of AIG literals with two's-
// complement arithmetic: ripple and prefix adders, carry-save array
// multipliers, CSD constant multipliers, barrel shifters, comparators)
// and one generator per benchmark (see circuits.go).
package rtl

import (
	"fmt"

	"ageguard/internal/logic"
)

// Bus is a little-endian vector of literals (bit 0 first).
type Bus []logic.Lit

// Builder constructs word-level logic on an underlying AIG.
type Builder struct {
	A *logic.AIG
}

// NewBuilder returns a Builder over a fresh AIG.
func NewBuilder() *Builder { return &Builder{A: logic.New()} }

// Input creates a named w-bit input bus (bits named name[i]).
func (b *Builder) Input(name string, w int) Bus {
	bus := make(Bus, w)
	for i := range bus {
		bus[i] = b.A.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// InputBit creates a single named input bit.
func (b *Builder) InputBit(name string) logic.Lit { return b.A.Input(name) }

// Output registers bus as a named output (bits name[i]).
func (b *Builder) Output(name string, bus Bus) {
	for i, l := range bus {
		b.A.AddOutput(fmt.Sprintf("%s[%d]", name, i), l)
	}
}

// OutputBit registers a single named output bit.
func (b *Builder) OutputBit(name string, l logic.Lit) { b.A.AddOutput(name, l) }

// Const returns a w-bit constant bus holding v (two's complement).
func (b *Builder) Const(v int64, w int) Bus {
	bus := make(Bus, w)
	for i := range bus {
		if v>>uint(i)&1 == 1 {
			bus[i] = logic.True
		} else {
			bus[i] = logic.False
		}
	}
	return bus
}

// Width returns len(x); a convenience for call sites.
func (x Bus) Width() int { return len(x) }

// Resize returns x truncated or sign-extended to w bits.
func (b *Builder) Resize(x Bus, w int) Bus {
	out := make(Bus, w)
	for i := range out {
		switch {
		case i < len(x):
			out[i] = x[i]
		case len(x) > 0:
			out[i] = x[len(x)-1] // sign extend
		default:
			out[i] = logic.False
		}
	}
	return out
}

// ZeroExtend returns x zero-extended to w bits (or truncated).
func (b *Builder) ZeroExtend(x Bus, w int) Bus {
	out := make(Bus, w)
	for i := range out {
		if i < len(x) {
			out[i] = x[i]
		} else {
			out[i] = logic.False
		}
	}
	return out
}

// Not returns the bitwise complement.
func (b *Builder) Not(x Bus) Bus {
	out := make(Bus, len(x))
	for i := range out {
		out[i] = x[i].Not()
	}
	return out
}

// AndB returns the bitwise AND of equal-width buses.
func (b *Builder) AndB(x, y Bus) Bus { return b.zip(x, y, b.A.And) }

// OrB returns the bitwise OR.
func (b *Builder) OrB(x, y Bus) Bus { return b.zip(x, y, b.A.Or) }

// XorB returns the bitwise XOR.
func (b *Builder) XorB(x, y Bus) Bus { return b.zip(x, y, b.A.Xor) }

func (b *Builder) zip(x, y Bus, f func(a, c logic.Lit) logic.Lit) Bus {
	if len(x) != len(y) {
		panic("rtl: width mismatch")
	}
	out := make(Bus, len(x))
	for i := range out {
		out[i] = f(x[i], y[i])
	}
	return out
}

// ReduceOr returns the OR of all bits.
func (b *Builder) ReduceOr(x Bus) logic.Lit {
	r := logic.False
	for _, l := range x {
		r = b.A.Or(r, l)
	}
	return r
}

// ReduceAnd returns the AND of all bits.
func (b *Builder) ReduceAnd(x Bus) logic.Lit {
	r := logic.True
	for _, l := range x {
		r = b.A.And(r, l)
	}
	return r
}

// fullAdder returns (sum, carry) of three bits.
func (b *Builder) fullAdder(x, y, c logic.Lit) (logic.Lit, logic.Lit) {
	return b.A.Xor(b.A.Xor(x, y), c), b.A.Maj(x, y, c)
}

// Add returns x + y + cin as a ripple-carry sum of width len(x), plus the
// carry out. Widths must match.
func (b *Builder) Add(x, y Bus, cin logic.Lit) (Bus, logic.Lit) {
	if len(x) != len(y) {
		panic("rtl: width mismatch")
	}
	out := make(Bus, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

// AddFast returns x + y + cin using a Kogge-Stone parallel-prefix carry
// network — a shallower (but larger) adder that diversifies the path
// structure of generated datapaths.
func (b *Builder) AddFast(x, y Bus, cin logic.Lit) (Bus, logic.Lit) {
	if len(x) != len(y) {
		panic("rtl: width mismatch")
	}
	n := len(x)
	g := make([]logic.Lit, n) // generate
	p := make([]logic.Lit, n) // propagate
	for i := 0; i < n; i++ {
		g[i] = b.A.And(x[i], y[i])
		p[i] = b.A.Xor(x[i], y[i])
	}
	// Incorporate cin as generate into bit -1 via first combine step.
	carry := make([]logic.Lit, n+1)
	carry[0] = cin
	// Prefix combine: (G,P) spans.
	G := append([]logic.Lit(nil), g...)
	P := append([]logic.Lit(nil), p...)
	for d := 1; d < n; d <<= 1 {
		ng := append([]logic.Lit(nil), G...)
		np := append([]logic.Lit(nil), P...)
		for i := d; i < n; i++ {
			ng[i] = b.A.Or(G[i], b.A.And(P[i], G[i-d]))
			np[i] = b.A.And(P[i], P[i-d])
		}
		G, P = ng, np
	}
	for i := 0; i < n; i++ {
		// carry[i+1] = G[0..i] | P[0..i]&cin
		carry[i+1] = b.A.Or(G[i], b.A.And(P[i], cin))
	}
	out := make(Bus, n)
	for i := 0; i < n; i++ {
		out[i] = b.A.Xor(p[i], carry[i])
	}
	return out, carry[n]
}

// Sub returns x - y (two's complement) and the borrow-free carry out.
func (b *Builder) Sub(x, y Bus) (Bus, logic.Lit) {
	return b.Add(x, b.Not(y), logic.True)
}

// Neg returns -x.
func (b *Builder) Neg(x Bus) Bus {
	out, _ := b.Add(b.Not(x), b.Const(0, len(x)), logic.True)
	return out
}

// Mux2 returns s ? t : f for equal-width buses.
func (b *Builder) Mux2(s logic.Lit, t, f Bus) Bus {
	if len(t) != len(f) {
		panic("rtl: width mismatch")
	}
	out := make(Bus, len(t))
	for i := range out {
		out[i] = b.A.Mux(s, t[i], f[i])
	}
	return out
}

// MuxN selects choices[sel] with a binary select bus; missing choices
// default to the last provided one.
func (b *Builder) MuxN(sel Bus, choices []Bus) Bus {
	if len(choices) == 0 {
		panic("rtl: MuxN with no choices")
	}
	cur := choices
	for level := 0; level < len(sel); level++ {
		next := make([]Bus, (len(cur)+1)/2)
		for i := range next {
			a := cur[2*i]
			if 2*i+1 < len(cur) {
				next[i] = b.Mux2(sel[level], cur[2*i+1], a)
			} else {
				next[i] = a
			}
		}
		cur = next
	}
	return cur[0]
}

// Eq returns 1 when x == y.
func (b *Builder) Eq(x, y Bus) logic.Lit {
	return b.ReduceOr(b.XorB(x, y)).Not()
}

// LtU returns 1 when x < y, unsigned.
func (b *Builder) LtU(x, y Bus) logic.Lit {
	_, c := b.Sub(x, y)
	return c.Not() // borrow
}

// LtS returns 1 when x < y, signed.
func (b *Builder) LtS(x, y Bus) logic.Lit {
	n := len(x)
	diff, _ := b.Sub(x, y)
	sx, sy := x[n-1], y[n-1]
	// x<y iff (sx&!sy) | (sx==sy & diff<0)
	return b.A.Or(b.A.And(sx, sy.Not()),
		b.A.And(b.A.Xnor(sx, sy), diff[n-1]))
}

// ShiftLeftConst shifts left by k, keeping width.
func (b *Builder) ShiftLeftConst(x Bus, k int) Bus {
	out := make(Bus, len(x))
	for i := range out {
		if i >= k {
			out[i] = x[i-k]
		} else {
			out[i] = logic.False
		}
	}
	return out
}

// ShiftRightConst shifts right by k; arith selects sign fill.
func (b *Builder) ShiftRightConst(x Bus, k int, arith bool) Bus {
	out := make(Bus, len(x))
	fill := logic.False
	if arith && len(x) > 0 {
		fill = x[len(x)-1]
	}
	for i := range out {
		if i+k < len(x) {
			out[i] = x[i+k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// Barrel implements a logarithmic barrel shifter: right when right is
// true, else left; arith selects arithmetic right shifts.
func (b *Builder) Barrel(x Bus, sh Bus, right logic.Lit, arith bool) Bus {
	cur := x
	for s := 0; s < len(sh); s++ {
		k := 1 << s
		if k >= len(x) {
			break
		}
		l := b.ShiftLeftConst(cur, k)
		r := b.ShiftRightConst(cur, k, arith)
		shifted := b.Mux2(right, r, l)
		cur = b.Mux2(sh[s], shifted, cur)
	}
	return cur
}

// MulCSA returns the len(x)+len(y)-bit signed product using a carry-save
// (3:2 compressor) reduction tree with a final ripple adder — the
// structure of real datapath multipliers (Baugh-Wooley sign handling).
func (b *Builder) MulCSA(x, y Bus) Bus {
	n, m := len(x), len(y)
	w := n + m
	xs := b.Resize(x, w)
	// Partial products: pp[j] = (y[j] ? x<<j : 0), sign-extended.
	var rows []Bus
	for j := 0; j < m; j++ {
		row := make(Bus, w)
		sx := b.ShiftLeftConst(xs, j)
		for i := range row {
			row[i] = b.A.And(sx[i], y[j])
		}
		if j == m-1 {
			// Subtract the last row for the signed multiplier bit:
			// x*y = sum_{j<m-1} x*2^j*y_j - x*2^(m-1)*y_{m-1}.
			row = b.Neg(row)
		}
		rows = append(rows, row)
	}
	// Carry-save reduction.
	for len(rows) > 2 {
		var next []Bus
		for i := 0; i+2 < len(rows); i += 3 {
			s := make(Bus, w)
			c := make(Bus, w)
			c[0] = logic.False
			for k := 0; k < w; k++ {
				sum, carry := b.fullAdder(rows[i][k], rows[i+1][k], rows[i+2][k])
				s[k] = sum
				if k+1 < w {
					c[k+1] = carry
				}
			}
			next = append(next, s, c)
		}
		rem := len(rows) % 3
		next = append(next, rows[len(rows)-rem:]...)
		rows = next
	}
	if len(rows) == 1 {
		return rows[0]
	}
	out, _ := b.Add(rows[0], rows[1], logic.False)
	return out
}

// MulConst returns x * c (signed x, integer constant c) at width w using
// canonical-signed-digit shift-and-add — the structure used for the
// DCT/IDCT coefficient multipliers.
func (b *Builder) MulConst(x Bus, c int64, w int) Bus {
	if c == 0 {
		return b.Const(0, w)
	}
	neg := c < 0
	if neg {
		c = -c
	}
	xs := b.Resize(x, w)
	var acc Bus
	// CSD recoding: digits in {-1, 0, +1} with no adjacent nonzeros.
	for i := 0; c != 0; i++ {
		if c&1 == 1 {
			var d int64 = 1
			if c&3 == 3 {
				d = -1 // ...11 -> +100...(-1)
			}
			term := b.ShiftLeftConst(xs, i)
			switch {
			case acc == nil && d > 0:
				acc = term
			case acc == nil:
				acc = b.Neg(term)
			case d > 0:
				acc, _ = b.Add(acc, term, logic.False)
			default:
				acc, _ = b.Sub(acc, term)
			}
			c -= d
		}
		c >>= 1
	}
	if neg {
		acc = b.Neg(acc)
	}
	return acc
}

// RoundShiftRight returns (x + 2^(k-1)) >> k, arithmetic, keeping width
// len(x)-k but at least 1.
func (b *Builder) RoundShiftRight(x Bus, k int) Bus {
	half := b.Const(1<<(k-1), len(x))
	sum, _ := b.Add(x, half, logic.False)
	sh := b.ShiftRightConst(sum, k, true)
	return sh[:max(1, len(x)-k)]
}

// Saturate clamps a signed value to w bits (keeping w bits out).
func (b *Builder) Saturate(x Bus, w int) Bus {
	if len(x) <= w {
		return b.Resize(x, w)
	}
	sign := x[len(x)-1]
	// Overflow iff the discarded top bits plus new sign bit are not all
	// equal to the sign.
	ovf := logic.False
	for i := w - 1; i < len(x); i++ {
		ovf = b.A.Or(ovf, b.A.Xor(x[i], sign))
	}
	maxv := b.Const(1<<(w-1)-1, w)
	minv := b.Const(-(1 << (w - 1)), w)
	clamped := b.Mux2(sign, minv, maxv)
	return b.Mux2(ovf, clamped, x[:w])
}
