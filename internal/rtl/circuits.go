package rtl

import (
	"math"
	"sort"

	"ageguard/internal/logic"
)

// Benchmarks returns the generator for every evaluation circuit of the
// paper, keyed by the names used in Figs. 5 and 6: DSP, FFT, RISC-6P,
// RISC-5P, VLIW, DCT, IDCT.
func Benchmarks() map[string]func() *logic.AIG {
	return map[string]func() *logic.AIG{
		"DSP":     GenDSP,
		"FFT":     GenFFT,
		"RISC-6P": GenRISC6,
		"RISC-5P": GenRISC5,
		"VLIW":    GenVLIW,
		"DCT":     GenDCT,
		"IDCT":    GenIDCT,
	}
}

// BenchmarkNames returns the circuit names in the paper's figure order.
func BenchmarkNames() []string {
	names := []string{"DSP", "FFT", "RISC-6P", "RISC-5P", "VLIW", "DCT", "IDCT"}
	sort.SliceStable(names, func(i, j int) bool { return false }) // keep order
	return names
}

// ---------------------------------------------------------------------------
// DCT / IDCT: 8-point fixed-point 1-D transforms (14-bit datapath,
// Q10 coefficients, CSD constant multipliers, rounded and saturated).
// A 2-D transform is two passes through the same circuit with a transpose
// in between, exactly like a hardware row/column architecture; the image
// pipeline in package image drives it that way.

// DCTWidth is the signed datapath width of the DCT/IDCT circuits.
const DCTWidth = 14

// DCTFrac is the number of fractional bits of the coefficient encoding.
const DCTFrac = 10

// DCTCoeff returns the orthonormal DCT-II coefficient matrix scaled to
// Q10 integers: C[k][n] = round(2^10 * c(k) * cos((2n+1) k pi / 16)).
func DCTCoeff() [8][8]int64 {
	var c [8][8]int64
	for k := 0; k < 8; k++ {
		scale := math.Sqrt(2.0 / 8.0)
		if k == 0 {
			scale = math.Sqrt(1.0 / 8.0)
		}
		for n := 0; n < 8; n++ {
			v := scale * math.Cos(float64(2*n+1)*float64(k)*math.Pi/16)
			c[k][n] = int64(math.Round(v * (1 << DCTFrac)))
		}
	}
	return c
}

// genTransform builds an 8-point constant-matrix transform y = M*x.
func genTransform(name string, m [8][8]int64) *logic.AIG {
	b := NewBuilder()
	const acc = DCTWidth + DCTFrac + 2 // product+sum headroom
	var x [8]Bus
	for i := range x {
		x[i] = b.Input(busName(name, i), DCTWidth)
	}
	for k := 0; k < 8; k++ {
		var sum Bus
		for n := 0; n < 8; n++ {
			if m[k][n] == 0 {
				continue
			}
			term := b.MulConst(x[n], m[k][n], acc)
			if sum == nil {
				sum = term
			} else {
				sum, _ = b.Add(sum, term, logic.False)
			}
		}
		if sum == nil {
			sum = b.Const(0, acc)
		}
		y := b.RoundShiftRight(sum, DCTFrac)
		b.Output(outName(k), b.Saturate(y, DCTWidth))
	}
	return b.A
}

func busName(prefix string, i int) string { return prefix + string(rune('a'+i)) }
func outName(k int) string                { return "y" + string(rune('0'+k)) }

// GenDCT generates the 8-point forward DCT circuit used by the paper's
// image-processing evaluation (encoder side).
func GenDCT() *logic.AIG { return genTransform("x", DCTCoeff()) }

// GenIDCT generates the inverse transform (decoder side): the transpose
// of the orthonormal DCT matrix.
func GenIDCT() *logic.AIG {
	c := DCTCoeff()
	var tr [8][8]int64
	for k := 0; k < 8; k++ {
		for n := 0; n < 8; n++ {
			tr[k][n] = c[n][k]
		}
	}
	return genTransform("z", tr)
}

// ---------------------------------------------------------------------------
// DSP: a multiply-accumulate slice (16x16 multiplier, 32-bit accumulator,
// saturating update, mode-selectable add/sub/shift), representative of the
// datapath of an audio/filter DSP.

// GenDSP generates the DSP benchmark.
func GenDSP() *logic.AIG {
	b := NewBuilder()
	a := b.Input("a", 16)
	x := b.Input("b", 16)
	c := b.Input("c", 16)
	acc := b.Input("acc", 32)
	op := b.Input("op", 2)

	prod := b.MulCSA(a, x) // 32-bit signed product
	acc34 := b.Resize(acc, 34)
	prod34 := b.Resize(prod, 34)
	mac, _ := b.AddFast(acc34, prod34, logic.False)
	msub, _ := b.Sub(acc34, prod34)
	addc, _ := b.Add(acc34, b.Resize(c, 34), logic.False)
	shift := b.Resize(b.Barrel(acc, c[:5], logic.True, true), 34)

	y := b.MuxN(op, []Bus{mac, msub, addc, shift})
	b.Output("y", b.Saturate(y, 32))
	return b.A
}

// ---------------------------------------------------------------------------
// FFT: a radix-2 decimation-in-time butterfly on 16-bit complex samples
// with Q12 twiddle factors — the inner kernel of the FFT processor.

// GenFFT generates the FFT butterfly benchmark.
func GenFFT() *logic.AIG {
	b := NewBuilder()
	ar := b.Input("ar", 16)
	ai := b.Input("ai", 16)
	br := b.Input("br", 16)
	bi := b.Input("bi", 16)
	wr := b.Input("wr", 14) // Q12 twiddle real
	wi := b.Input("wi", 14) // Q12 twiddle imag

	// t = b * w (complex), rounded back to Q0.
	brwr := b.MulCSA(br, wr) // 30 bits
	biwi := b.MulCSA(bi, wi)
	brwi := b.MulCSA(br, wi)
	biwr := b.MulCSA(bi, wr)
	trFull, _ := b.Sub(brwr, biwi)
	tiFull, _ := b.Add(brwi, biwr, logic.False)
	tr := b.Saturate(b.RoundShiftRight(trFull, 12), 16)
	ti := b.Saturate(b.RoundShiftRight(tiFull, 12), 16)

	sum := func(p, q Bus) Bus {
		s, _ := b.Add(b.Resize(p, 17), b.Resize(q, 17), logic.False)
		return b.Saturate(s, 16)
	}
	diff := func(p, q Bus) Bus {
		s, _ := b.Sub(b.Resize(p, 17), b.Resize(q, 17))
		return b.Saturate(s, 16)
	}
	b.Output("xr", sum(ar, tr))
	b.Output("xi", sum(ai, ti))
	b.Output("yr", diff(ar, tr))
	b.Output("yi", diff(ai, ti))
	return b.A
}

// ---------------------------------------------------------------------------
// RISC execute-stage slices. The combinational core of the EX stage is the
// critical-path carrier of in-order RISC pipelines: operand bypass
// multiplexers, the ALU, the branch comparator and the address generator.
// The 5-stage variant forwards from two later stages with a fast ALU
// adder; the 6-stage variant has a third forwarding source (the deeper
// pipeline), a ripple ALU adder and a separate branch unit.

func riscCore(b *Builder, fwdSources int, fastAdder bool) {
	rs1 := b.Input("rs1", 32)
	rs2 := b.Input("rs2", 32)
	fwd := make([]Bus, fwdSources)
	for i := range fwd {
		fwd[i] = b.Input("fwd"+string(rune('0'+i)), 32)
	}
	selA := b.Input("selA", 2)
	selB := b.Input("selB", 2)
	imm := b.Input("imm", 16)
	useImm := b.InputBit("useImm")
	aluOp := b.Input("aluOp", 3)

	choicesA := append([]Bus{rs1}, fwd...)
	choicesB := append([]Bus{rs2}, fwd...)
	opA := b.MuxN(selA, choicesA)
	opB := b.Mux2(useImm, b.Resize(imm, 32), b.MuxN(selB, choicesB))

	var addv Bus
	if fastAdder {
		addv, _ = b.AddFast(opA, opB, logic.False)
	} else {
		addv, _ = b.Add(opA, opB, logic.False)
	}
	subv, _ := b.Sub(opA, opB)
	andv := b.AndB(opA, opB)
	orv := b.OrB(opA, opB)
	xorv := b.XorB(opA, opB)
	slt := b.ZeroExtend(Bus{b.LtS(opA, opB)}, 32)
	sll := b.Barrel(opA, opB[:5], logic.False, false)
	srl := b.Barrel(opA, opB[:5], logic.True, true)

	res := b.MuxN(aluOp, []Bus{addv, subv, andv, orv, xorv, slt, sll, srl})
	b.Output("result", res)

	addr, _ := b.Add(opA, b.Resize(imm, 32), logic.False)
	b.Output("addr", addr)

	b.OutputBit("takenEq", b.Eq(opA, opB))
	b.OutputBit("takenLt", b.LtS(opA, opB))
}

// GenRISC5 generates the 5-pipeline-stage RISC EX slice.
func GenRISC5() *logic.AIG {
	b := NewBuilder()
	riscCore(b, 2, true)
	return b.A
}

// GenRISC6 generates the 6-pipeline-stage RISC EX slice (extra forwarding
// source, ripple ALU adder).
func GenRISC6() *logic.AIG {
	b := NewBuilder()
	riscCore(b, 3, false)
	return b.A
}

// ---------------------------------------------------------------------------
// VLIW: a 2-issue slot pair with cross-slot operand bypassing and a shared
// shifter — the characteristic mux-heavy structure of VLIW datapaths.

// GenVLIW generates the VLIW benchmark.
func GenVLIW() *logic.AIG {
	b := NewBuilder()
	type slot struct {
		a, b Bus
		op   Bus
	}
	var slots [2]slot
	for i := range slots {
		suffix := string(rune('0' + i))
		slots[i] = slot{
			a:  b.Input("a"+suffix, 32),
			b:  b.Input("b"+suffix, 32),
			op: b.Input("op"+suffix, 3),
		}
	}
	cross := b.Input("cross", 2) // cross-bypass selects
	sh := b.Input("sh", 5)

	// Cross-slot bypass: each slot's B operand may come from the other
	// slot's A operand.
	b0 := b.Mux2(cross[0], slots[1].a, slots[0].b)
	b1 := b.Mux2(cross[1], slots[0].a, slots[1].b)

	shared := b.Barrel(slots[0].a, sh, logic.True, true)

	alu := func(a, x Bus, op Bus) Bus {
		add, _ := b.AddFast(a, x, logic.False)
		sub, _ := b.Sub(a, x)
		return b.MuxN(op, []Bus{
			add, sub, b.AndB(a, x), b.OrB(a, x),
			b.XorB(a, x), shared,
			b.ZeroExtend(Bus{b.LtU(a, x)}, 32),
			b.ZeroExtend(Bus{b.Eq(a, x)}, 32),
		})
	}
	b.Output("r0", alu(slots[0].a, b0, slots[0].op))
	b.Output("r1", alu(slots[1].a, b1, slots[1].op))
	return b.A
}
