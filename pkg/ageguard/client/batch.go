package client

import (
	"context"
	"fmt"

	"ageguard/pkg/ageguard/api"
)

// Batch issues a heterogeneous list of queries in one round trip
// against POST /v1/batch. The exchange itself travels through the same
// retry/hedge/checksum machinery as single queries; on top of that,
// items that come back with a retryable per-item error (429 or 5xx in
// the item's status field) are re-dispatched in follow-up sub-batches
// containing only the failed items, under the client's RetryPolicy.
// Every /v1 query is an idempotent read, so partial re-dispatch never
// changes what a previously succeeded item would have answered.
//
// The returned response always has one result per input item, in input
// order. A nil error does not mean every item succeeded — partial
// failure lives in the per-item Error fields.
func (c *Client) Batch(ctx context.Context, items []api.BatchItem) (*api.BatchResponse, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("client: empty batch")
	}
	c.metrics.Inc("client.batch.requests")
	for range items {
		c.metrics.Inc("client.batch.items")
	}

	out := &api.BatchResponse{
		Version: api.APIVersion,
		Items:   make([]api.BatchItemResult, len(items)),
	}
	pending := make([]int, len(items))
	for i := range pending {
		pending[i] = i
	}
	rounds := 1
	if c.retry != nil {
		rounds = c.retry.attempts()
	}
	for r := 0; ; r++ {
		sub := make([]api.BatchItem, len(pending))
		for j, i := range pending {
			sub[j] = items[i]
		}
		var resp api.BatchResponse
		err := c.do(ctx, "/v1/batch",
			api.BatchRequest{Version: api.APIVersion, Items: sub}, &resp)
		if err != nil {
			return nil, err
		}
		if len(resp.Items) != len(sub) {
			return nil, &IntegrityError{Path: "/v1/batch",
				Reason: fmt.Sprintf("%d results for %d items", len(resp.Items), len(sub))}
		}
		var failed []int
		for j, i := range pending {
			out.Items[i] = resp.Items[j]
			if e := resp.Items[j].Error; e != nil && retryableStatus(e.Status) {
				failed = append(failed, i)
			}
		}
		pending = failed
		if len(pending) == 0 || r+1 >= rounds || ctx.Err() != nil {
			return out, nil
		}
		c.metrics.Inc("client.batch.redispatches")
		for range pending {
			c.metrics.Inc("client.batch.item_retries")
		}
		if werr := c.backoffWait(ctx, r, nil); werr != nil {
			// The context died mid-backoff; the caller keeps whatever
			// answers already landed, with the failures still marked.
			return out, nil
		}
	}
}
