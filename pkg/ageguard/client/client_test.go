package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ageguard/pkg/ageguard/api"
)

func TestGuardbandFillsVersionAndDecodes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.GuardbandRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Fatal(err)
		}
		if req.Version != api.APIVersion {
			t.Errorf("client sent version %q, want %q", req.Version, api.APIVersion)
		}
		json.NewEncoder(w).Encode(api.GuardbandResponse{
			Version: api.APIVersion, Circuit: req.Circuit,
			FreshCPs: 1e-9, AgedCPs: 1.2e-9, GuardbandS: 0.2e-9,
		})
	}))
	defer srv.Close()

	resp, err := New(srv.URL).Guardband(context.Background(),
		api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Circuit != "DSP" || resp.GuardbandS != 0.2e-9 {
		t.Errorf("decoded %+v", resp)
	}
}

func TestAPIErrorCarriesStatusAndRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.APIVersion, Error: "saturated"})
	}))
	defer srv.Close()

	_, err := New(srv.URL).Guardband(context.Background(),
		api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if !apiErr.Saturated() || apiErr.RetryAfter != 3*time.Second || apiErr.Message != "saturated" {
		t.Errorf("apiErr = %+v", apiErr)
	}
}

// TestAPIErrorStatusTable drives every status class through a real
// server and checks the derived views in one place: Saturated() is
// exactly 429, retryability is 429 + 5xx, and the message survives the
// wire round-trip.
func TestAPIErrorStatusTable(t *testing.T) {
	cases := []struct {
		status    int
		saturated bool
		retryable bool
	}{
		{http.StatusBadRequest, false, false},
		{http.StatusNotFound, false, false},
		{http.StatusGone, false, false},
		{http.StatusTooManyRequests, true, true},
		{http.StatusInternalServerError, false, true},
		{http.StatusBadGateway, false, true},
		{http.StatusServiceUnavailable, false, true},
		{http.StatusGatewayTimeout, false, true},
	}
	for _, tc := range cases {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tc.status)
			json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.APIVersion, Error: "boom"})
		}))
		_, err := New(srv.URL).Guardband(context.Background(),
			api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
		srv.Close()

		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%d: err = %v, want *APIError", tc.status, err)
		}
		if apiErr.StatusCode != tc.status || apiErr.Message != "boom" {
			t.Errorf("%d: apiErr = %+v", tc.status, apiErr)
		}
		if apiErr.RetryAfter != 0 {
			t.Errorf("%d: RetryAfter = %v without a header", tc.status, apiErr.RetryAfter)
		}
		if got := apiErr.Saturated(); got != tc.saturated {
			t.Errorf("%d: Saturated() = %v, want %v", tc.status, got, tc.saturated)
		}
		if got := Retryable(err); got != tc.retryable {
			t.Errorf("%d: Retryable() = %v, want %v", tc.status, got, tc.retryable)
		}
		if !strings.Contains(apiErr.Error(), strconv.Itoa(tc.status)) {
			t.Errorf("%d: Error() = %q lacks the status code", tc.status, apiErr.Error())
		}
	}
}
