package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ageguard/pkg/ageguard/api"
)

func TestGuardbandFillsVersionAndDecodes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.GuardbandRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Fatal(err)
		}
		if req.Version != api.APIVersion {
			t.Errorf("client sent version %q, want %q", req.Version, api.APIVersion)
		}
		json.NewEncoder(w).Encode(api.GuardbandResponse{
			Version: api.APIVersion, Circuit: req.Circuit,
			FreshCPs: 1e-9, AgedCPs: 1.2e-9, GuardbandS: 0.2e-9,
		})
	}))
	defer srv.Close()

	resp, err := New(srv.URL).Guardband(context.Background(),
		api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Circuit != "DSP" || resp.GuardbandS != 0.2e-9 {
		t.Errorf("decoded %+v", resp)
	}
}

func TestAPIErrorCarriesStatusAndRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.APIVersion, Error: "saturated"})
	}))
	defer srv.Close()

	_, err := New(srv.URL).Guardband(context.Background(),
		api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if !apiErr.Saturated() || apiErr.RetryAfter != 3*time.Second || apiErr.Message != "saturated" {
		t.Errorf("apiErr = %+v", apiErr)
	}
}
