package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ageguard/pkg/ageguard/api"
)

// testMetrics is a concurrency-safe Metrics capture.
type testMetrics struct {
	mu sync.Mutex
	m  map[string]int
}

func newTestMetrics() *testMetrics { return &testMetrics{m: map[string]int{}} }

func (t *testMetrics) Inc(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[name]++
}

func (t *testMetrics) get(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[name]
}

// TestRetryableClassification: the status→classification table. 429 and
// every 5xx are retryable, every other 4xx is terminal, transport and
// integrity errors are retryable, context errors are not.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"400", &APIError{StatusCode: 400}, false},
		{"403", &APIError{StatusCode: 403}, false},
		{"404", &APIError{StatusCode: 404}, false},
		{"429", &APIError{StatusCode: 429}, true},
		{"500", &APIError{StatusCode: 500}, true},
		{"502", &APIError{StatusCode: 502}, true},
		{"503", &APIError{StatusCode: 503}, true},
		{"504", &APIError{StatusCode: 504}, true},
		{"wrapped 503", fmt.Errorf("query: %w", &APIError{StatusCode: 503}), true},
		{"wrapped 404", fmt.Errorf("query: %w", &APIError{StatusCode: 404}), false},
		{"integrity", &IntegrityError{Path: "/v1/guardband", Reason: "checksum mismatch"}, true},
		{"transport", errors.New("read tcp 127.0.0.1:1->127.0.0.1:2: connection reset by peer"), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"wrapped canceled", fmt.Errorf("do: %w", context.Canceled), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRetriesUntilSuccess: two 503s then a good reply — the client
// converges and the counters record two retries and no exhaustion.
func TestRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.APIVersion, Error: "warming"})
			return
		}
		json.NewEncoder(w).Encode(api.GuardbandResponse{Version: api.APIVersion, Circuit: "DSP", GuardbandS: 1e-10})
	}))
	defer srv.Close()

	tm := newTestMetrics()
	cl := New(srv.URL,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
		WithMetrics(tm))
	resp, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.GuardbandS != 1e-10 {
		t.Errorf("decoded %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if tm.get("client.retry.retries") != 2 || tm.get("client.retry.attempts") != 3 {
		t.Errorf("metrics = %v", tm.m)
	}
	if tm.get("client.retry.exhausted") != 0 {
		t.Error("exhausted counted on a successful call")
	}
}

// TestTerminal4xxNotRetried: a 404 returns immediately after one
// attempt.
func TestTerminal4xxNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.APIVersion, Error: "unknown circuit"})
	}))
	defer srv.Close()

	cl := New(srv.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	_, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "NOPE", Scenario: api.Scenario{Kind: "worst"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("err = %v, want 404", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1", got)
	}
}

// TestRetriesExhausted: a permanently failing server burns MaxAttempts
// and reports exhaustion wrapping the last error.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	tm := newTestMetrics()
	cl := New(srv.URL,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
		WithMetrics(tm))
	_, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 500 {
		t.Fatalf("err = %v, want wrapped 500", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if tm.get("client.retry.exhausted") != 1 {
		t.Errorf("metrics = %v", tm.m)
	}
}

// TestPerAttemptTimeout: the first attempt hangs past AttemptTimeout,
// the retry succeeds — the call survives inside the caller's budget.
func TestPerAttemptTimeout(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-block:
			case <-r.Context().Done():
			}
			return
		}
		json.NewEncoder(w).Encode(api.GuardbandResponse{Version: api.APIVersion, Circuit: "DSP"})
	}))
	defer srv.Close()
	defer close(block) // LIFO: release the hung handler before Close waits on it

	cl := New(srv.URL, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, AttemptTimeout: 100 * time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Guardband(ctx, api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}}); err != nil {
		t.Fatalf("call did not survive a hung attempt: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// TestCallerDeadlineTerminal: when the caller's own context expires,
// the client stops instead of retrying into a dead deadline.
func TestCallerDeadlineTerminal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Stall well past the caller's deadline. (Not on r.Context():
		// with an unconsumed POST body the server never cancels it.)
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	}))
	defer srv.Close()

	cl := New(srv.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := cl.Guardband(ctx, api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	if err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(t0) > 2*time.Second {
		t.Error("client kept retrying long past the caller's deadline")
	}
}

// TestRetryAfterRaisesBackoffFloor: backoffWait sleeps at least the
// server's Retry-After hint even when the jittered backoff is smaller.
func TestRetryAfterRaisesBackoffFloor(t *testing.T) {
	cl := New("http://unused",
		WithRetryPolicy(RetryPolicy{BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond}))
	cl.rng = func() float64 { return 0 } // jitter would pick zero sleep
	hint := 30 * time.Millisecond
	t0 := time.Now()
	if err := cl.backoffWait(context.Background(), 0, &APIError{StatusCode: 429, RetryAfter: hint}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < hint {
		t.Errorf("slept %v, want at least the Retry-After hint %v", d, hint)
	}
}

// TestBackoffCappedFullJitter: the sleep for retry k is uniform in
// [0, min(MaxDelay, BaseDelay<<k)) — never above the cap.
func TestBackoffCappedFullJitter(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	one := func() float64 { return 0.999999 }
	for k, wantCap := range []time.Duration{10, 20, 40, 40, 40} {
		wantCap *= time.Millisecond
		if d := p.backoff(k, one); d > wantCap {
			t.Errorf("backoff(%d) = %v, cap %v", k, d, wantCap)
		}
	}
	if d := p.backoff(3, func() float64 { return 0 }); d != 0 {
		t.Errorf("zero jitter should sleep zero, got %v", d)
	}
	// Far rungs must not overflow the shift.
	if d := p.backoff(62, one); d > 40*time.Millisecond {
		t.Errorf("backoff(62) = %v exceeds MaxDelay", d)
	}
}

// TestCorruptBodyRetried: a response whose body does not match its
// checksum header is rejected as *IntegrityError and retried.
func TestCorruptBodyRetried(t *testing.T) {
	var calls atomic.Int32
	good, _ := json.Marshal(api.GuardbandResponse{Version: api.APIVersion, Circuit: "DSP", GuardbandS: 2e-10})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.BodySumHeader, api.BodySum(good))
		if calls.Add(1) == 1 {
			bad := append([]byte(nil), good...)
			bad[len(bad)/2] ^= 0x20 // flipped in transit; header still promises `good`
			w.Write(bad)
			return
		}
		w.Write(good)
	}))
	defer srv.Close()

	cl := New(srv.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	resp, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.GuardbandS != 2e-10 {
		t.Errorf("decoded %+v from corrupt exchange", resp)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// TestTruncatedBodyRetried: a body cut short of its Content-Length is a
// transport error and retried.
func TestTruncatedBodyRetried(t *testing.T) {
	var calls atomic.Int32
	good, _ := json.Marshal(api.GuardbandResponse{Version: api.APIVersion, Circuit: "DSP"})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Length", fmt.Sprint(len(good)))
			w.Write(good[:len(good)/2])
			// Returning now closes the connection mid-body.
			return
		}
		w.Write(good)
	}))
	defer srv.Close()

	cl := New(srv.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if _, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}}); err != nil {
		t.Fatalf("truncated body not recovered: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// TestHedgeWinsOverStraggler: the primary attempt hangs, the hedge
// answers — the call returns at hedge latency, not straggler latency,
// and the win is counted.
func TestHedgeWinsOverStraggler(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // straggler: never answers, released at test end
			case <-block:
			case <-r.Context().Done():
			}
			return
		}
		json.NewEncoder(w).Encode(api.GuardbandResponse{Version: api.APIVersion, Circuit: "DSP"})
	}))
	defer srv.Close()
	defer close(block) // LIFO: release the straggler before Close waits on it

	tm := newTestMetrics()
	cl := New(srv.URL,
		WithHedgePolicy(HedgePolicy{Delay: 20 * time.Millisecond}),
		WithMetrics(tm))
	t0 := time.Now()
	if _, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("hedged call took %v — the straggler was waited out", d)
	}
	if tm.get("client.hedge.launched") != 1 || tm.get("client.hedge.won") != 1 {
		t.Errorf("hedge metrics = %v", tm.m)
	}
}

// TestHedgeNotLaunchedWhenFast: a prompt reply never triggers hedging.
func TestHedgeNotLaunchedWhenFast(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.GuardbandResponse{Version: api.APIVersion, Circuit: "DSP"})
	}))
	defer srv.Close()

	tm := newTestMetrics()
	cl := New(srv.URL, WithHedgePolicy(HedgePolicy{Delay: 5 * time.Second}), WithMetrics(tm))
	if _, err := cl.Guardband(context.Background(), api.GuardbandRequest{Circuit: "DSP", Scenario: api.Scenario{Kind: "worst"}}); err != nil {
		t.Fatal(err)
	}
	if tm.get("client.hedge.launched") != 0 {
		t.Errorf("hedge launched on a fast reply: %v", tm.m)
	}
}
