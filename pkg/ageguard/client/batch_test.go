package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ageguard/pkg/ageguard/api"
)

func gbItem(circuit string) api.BatchItem {
	return api.GuardbandItem(api.GuardbandRequest{
		Circuit: circuit, Scenario: api.Scenario{Kind: "worst", Years: 10},
	})
}

func gbResult(circuit string) api.BatchItemResult {
	return api.BatchItemResult{Guardband: &api.GuardbandResponse{
		Version: api.APIVersion, Circuit: circuit,
		FreshCPs: 1e-9, AgedCPs: 1.2e-9, GuardbandS: 0.2e-9,
	}}
}

// TestBatchRetriesOnlyFailedItems: a three-item batch where the first
// exchange answers item 0, fails item 1 with a retryable 503 and item 2
// with a terminal 400. The follow-up sub-batch must contain only item 1
// — not the succeeded item, not the terminally failed one — and the
// merged response keeps every item in input order.
func TestBatchRetriesOnlyFailedItems(t *testing.T) {
	var mu sync.Mutex
	var calls [][]string // circuits seen per exchange
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		mu.Lock()
		var circuits []string
		for _, it := range req.Items {
			circuits = append(circuits, it.Guardband.Circuit)
		}
		calls = append(calls, circuits)
		first := len(calls) == 1
		mu.Unlock()

		res := make([]api.BatchItemResult, len(req.Items))
		for i, it := range req.Items {
			switch {
			case first && it.Guardband.Circuit == "FLAKY":
				res[i] = api.BatchItemResult{Error: &api.BatchError{Status: 503, Message: "warming"}}
			case it.Guardband.Circuit == "NOPE":
				res[i] = api.BatchItemResult{Error: &api.BatchError{Status: 400, Message: "bad"}}
			default:
				res[i] = gbResult(it.Guardband.Circuit)
			}
		}
		json.NewEncoder(w).Encode(api.BatchResponse{Version: api.APIVersion, Items: res})
	}))
	defer srv.Close()

	tm := newTestMetrics()
	cl := New(srv.URL,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
		WithMetrics(tm))
	resp, err := cl.Batch(context.Background(),
		[]api.BatchItem{gbItem("OK"), gbItem("FLAKY"), gbItem("NOPE")})
	if err != nil {
		t.Fatal(err)
	}

	if r := resp.Items[0]; r.Error != nil || r.Guardband == nil || r.Guardband.Circuit != "OK" {
		t.Errorf("item 0 = %+v, want clean OK answer", r)
	}
	if r := resp.Items[1]; r.Error != nil || r.Guardband == nil || r.Guardband.Circuit != "FLAKY" {
		t.Errorf("item 1 = %+v, want recovered FLAKY answer", r)
	}
	if r := resp.Items[2]; r.Error == nil || r.Error.Status != 400 {
		t.Errorf("item 2 = %+v, want terminal 400 kept as-is", r)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("server saw %d exchanges, want 2: %v", len(calls), calls)
	}
	if len(calls[1]) != 1 || calls[1][0] != "FLAKY" {
		t.Errorf("re-dispatch carried %v, want only FLAKY", calls[1])
	}
	if tm.get("client.batch.requests") != 1 || tm.get("client.batch.items") != 3 {
		t.Errorf("request metrics = %v", tm.m)
	}
	if tm.get("client.batch.redispatches") != 1 || tm.get("client.batch.item_retries") != 1 {
		t.Errorf("retry metrics = %v", tm.m)
	}
}

// TestBatchStopsAfterRetryBudget: an item that never recovers is
// re-dispatched at most MaxAttempts-1 times and keeps its last error.
func TestBatchStopsAfterRetryBudget(t *testing.T) {
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		var req api.BatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		res := make([]api.BatchItemResult, len(req.Items))
		for i := range res {
			res[i] = api.BatchItemResult{Error: &api.BatchError{Status: 503, Message: "down"}}
		}
		json.NewEncoder(w).Encode(api.BatchResponse{Version: api.APIVersion, Items: res})
	}))
	defer srv.Close()

	cl := New(srv.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}))
	resp, err := cl.Batch(context.Background(), []api.BatchItem{gbItem("DSP")})
	if err != nil {
		t.Fatal(err)
	}
	if e := resp.Items[0].Error; e == nil || e.Status != 503 {
		t.Errorf("item 0 = %+v, want the 503 it never recovered from", resp.Items[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Errorf("server saw %d exchanges, want 2 (MaxAttempts)", calls)
	}
}

// TestBatchResultCountMismatchIsIntegrityError: a reply with the wrong
// number of results is corruption, not something to merge.
func TestBatchResultCountMismatchIsIntegrityError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.BatchResponse{Version: api.APIVersion,
			Items: []api.BatchItemResult{gbResult("DSP")}})
	}))
	defer srv.Close()

	_, err := New(srv.URL).Batch(context.Background(),
		[]api.BatchItem{gbItem("DSP"), gbItem("FFT")})
	if _, ok := err.(*IntegrityError); !ok {
		t.Errorf("err = %v, want *IntegrityError", err)
	}
}

func TestBatchRejectsEmptyInput(t *testing.T) {
	if _, err := New("http://127.0.0.1:0").Batch(context.Background(), nil); err == nil {
		t.Error("empty batch accepted")
	}
}

// batchEchoServer answers every guardband item with a well-formed
// response and records the circuits of each exchange it serves.
func batchEchoServer(t *testing.T, mu *sync.Mutex, seen map[string]int, tag int) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		res := make([]api.BatchItemResult, len(req.Items))
		for i, it := range req.Items {
			mu.Lock()
			seen[it.Guardband.Circuit] = tag
			mu.Unlock()
			res[i] = gbResult(it.Guardband.Circuit)
		}
		json.NewEncoder(w).Encode(api.BatchResponse{Version: api.APIVersion, Items: res})
	}))
}

// TestRouterRoutingIsStable: the shard→backend assignment is a pure
// function of the key and the endpoint list — rebuilt routers agree,
// and every query for one identity picks the same backend.
func TestRouterRoutingIsStable(t *testing.T) {
	eps := []string{"http://a.invalid", "http://b.invalid", "http://c.invalid"}
	r1, err := NewRouter(eps)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRouter(eps)
	used := map[int]bool{}
	for _, circuit := range []string{"DSP", "FFT", "RISC", "AES", "MUL", "DIV", "ALU", "CRC"} {
		key, err := shardKey(gbItem(circuit))
		if err != nil {
			t.Fatal(err)
		}
		a := r1.pickIdx(key)
		if b := r1.pickIdx(key); b != a {
			t.Errorf("%s: same router disagrees with itself: %d vs %d", circuit, a, b)
		}
		if b := r2.pickIdx(key); b != a {
			t.Errorf("%s: rebuilt router remapped %d -> %d", circuit, a, b)
		}
		used[a] = true
	}
	if len(used) < 2 {
		t.Errorf("8 circuits all landed on one backend; ring is not spreading")
	}
	if _, err := NewRouter(nil); err == nil {
		t.Error("empty endpoint list accepted")
	}
}

// TestRouterBatchScatterGather: a mixed batch scatters to the backends
// owning each item's shard and reassembles in input order; both
// occurrences of a circuit land on the same backend.
func TestRouterBatchScatterGather(t *testing.T) {
	var mu sync.Mutex
	seenA, seenB := map[string]int{}, map[string]int{}
	a := batchEchoServer(t, &mu, seenA, 0)
	defer a.Close()
	b := batchEchoServer(t, &mu, seenB, 1)
	defer b.Close()

	r, err := NewRouter([]string{a.URL, b.URL})
	if err != nil {
		t.Fatal(err)
	}
	circuits := []string{"DSP", "FFT", "RISC", "AES", "MUL", "DIV", "ALU", "CRC"}
	var items []api.BatchItem
	for _, c := range circuits {
		items = append(items, gbItem(c), gbItem(c)) // duplicates must co-locate
	}
	resp, err := r.Batch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != len(items) {
		t.Fatalf("got %d results for %d items", len(resp.Items), len(items))
	}
	for i, it := range items {
		res := resp.Items[i]
		if res.Error != nil || res.Guardband == nil || res.Guardband.Circuit != it.Guardband.Circuit {
			t.Errorf("item %d: %+v, want answer for %s", i, res, it.Guardband.Circuit)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, c := range circuits {
		_, onA := seenA[c]
		_, onB := seenB[c]
		if onA == onB {
			t.Errorf("circuit %s served by %d backends, want exactly one", c, btoi(onA)+btoi(onB))
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestRouterBatchBackendFailureIsolated: when one backend's whole
// exchange fails, only its items carry errors; the healthy backend's
// answers stand.
func TestRouterBatchBackendFailureIsolated(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	healthy := batchEchoServer(t, &mu, seen, 0)
	defer healthy.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.APIVersion, Error: "disk on fire"})
	}))
	defer broken.Close()

	r, err := NewRouter([]string{healthy.URL, broken.URL})
	if err != nil {
		t.Fatal(err)
	}
	// Pick one circuit per backend so both shards are exercised. The
	// ring hashes the backends' random httptest ports, so a fixed name
	// list could land entirely on one backend under an unlucky split;
	// generate names until both are covered.
	byBackend := map[int]string{}
	for i := 0; len(byBackend) < 2 && i < 10000; i++ {
		c := fmt.Sprintf("CIRC%d", i)
		key, kerr := shardKey(gbItem(c))
		if kerr != nil {
			t.Fatal(kerr)
		}
		idx := r.pickIdx(key)
		if _, ok := byBackend[idx]; !ok {
			byBackend[idx] = c
		}
	}
	if len(byBackend) != 2 {
		t.Fatalf("could not find circuits covering both backends: %v", byBackend)
	}

	items := []api.BatchItem{gbItem(byBackend[0]), gbItem(byBackend[1]), gbItem(byBackend[0])}
	resp, err := r.Batch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if res := resp.Items[i]; res.Error != nil || res.Guardband == nil {
			t.Errorf("healthy-shard item %d = %+v, want clean answer", i, res)
		}
	}
	if res := resp.Items[1]; res.Error == nil || res.Error.Status != 500 {
		t.Errorf("broken-shard item = %+v, want status-500 error", res)
	}
}
