// Package client is a thin typed client for the ageguardd HTTP/JSON
// service. It depends only on the standard library and the wire types
// of pkg/ageguard/api.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ageguard/pkg/ageguard/api"
)

// Client issues queries against one ageguardd instance. The zero value
// is not usable; construct with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8347").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx reply. RetryAfter carries the server's
// backpressure hint on 429 (zero otherwise).
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ageguardd: %d %s: %s",
		e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Saturated reports whether the server shed this request for load; the
// caller should back off for RetryAfter.
func (e *APIError) Saturated() bool { return e.StatusCode == http.StatusTooManyRequests }

// do posts req to path and decodes the reply into resp.
func (c *Client) do(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: res.StatusCode}
		var eb api.ErrorResponse
		if json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&eb) == nil {
			apiErr.Message = eb.Error
		}
		if s, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(s) * time.Second
		}
		return apiErr
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

// Guardband queries the fresh/aged critical paths and guardband of a
// circuit. A missing request version is filled with api.APIVersion.
func (c *Client) Guardband(ctx context.Context, req api.GuardbandRequest) (*api.GuardbandResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.GuardbandResponse
	if err := c.do(ctx, "/v1/guardband", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CellTiming queries one cell's interpolated aged timing.
func (c *Client) CellTiming(ctx context.Context, req api.CellTimingRequest) (*api.CellTimingResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.CellTimingResponse
	if err := c.do(ctx, "/v1/celltiming", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Grid queries the full duty-cycle guardband grid of a circuit.
func (c *Client) Grid(ctx context.Context, req api.GridRequest) (*api.GridResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.GridResponse
	if err := c.do(ctx, "/v1/grid", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Paths queries the K most critical timing paths of a circuit.
func (c *Client) Paths(ctx context.Context, req api.PathsRequest) (*api.PathsResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.PathsResponse
	if err := c.do(ctx, "/v1/paths", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz probes the liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return &APIError{StatusCode: res.StatusCode, Message: "healthz"}
	}
	return nil
}
