// Package client is a typed client for the ageguardd HTTP/JSON
// service. It depends only on the standard library and the wire types
// of pkg/ageguard/api.
//
// Resilience is opt-in and layered: WithRetryPolicy re-issues failed
// queries with capped exponential backoff, full jitter and Retry-After
// honoring; WithHedgePolicy races a duplicate against a slow attempt;
// and every response carrying an api.BodySumHeader checksum is verified
// before it is decoded, so transport-level corruption surfaces as a
// retryable error instead of a silently wrong answer. Every /v1 query
// is an idempotent read, which is what makes both retrying and hedging
// safe.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ageguard/pkg/ageguard/api"
)

// maxBodyBytes bounds how much of any response the client will read;
// the largest legitimate reply (a deep paths listing) is well under it.
const maxBodyBytes = 1 << 26

// Client issues queries against one ageguardd instance. The zero value
// is not usable; construct with New.
type Client struct {
	base    string
	hc      *http.Client
	retry   *RetryPolicy
	hedge   *HedgePolicy
	metrics Metrics
	rng     func() float64
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy enables retries under p. Without it the client makes
// exactly one attempt per call, as it always has.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = &p } }

// WithHedgePolicy enables hedged reads under h (requires h.Delay > 0).
func WithHedgePolicy(h HedgePolicy) Option { return func(c *Client) { c.hedge = &h } }

// WithMetrics directs the client's client.retry.* / client.hedge.*
// counters into m (discarded by default).
func WithMetrics(m Metrics) Option { return func(c *Client) { c.metrics = m } }

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8347").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		metrics: noopMetrics{},
		rng:     defaultRNG,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx reply. RetryAfter carries the server's
// backpressure hint on 429 (zero otherwise).
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ageguardd: %d %s: %s",
		e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Saturated reports whether the server shed this request for load; the
// caller should back off for RetryAfter.
func (e *APIError) Saturated() bool { return e.StatusCode == http.StatusTooManyRequests }

// IntegrityError reports a response whose body failed its end-to-end
// checksum or was not valid JSON — corruption or truncation in transit.
// It is always retryable.
type IntegrityError struct {
	Path   string
	Reason string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("ageguardd: %s: corrupt response body: %s", e.Path, e.Reason)
}

// attempt performs one HTTP exchange and returns the verified body
// bytes of a 200 reply. Non-2xx replies return *APIError; checksum or
// JSON-validity failures return *IntegrityError.
func (c *Client) attempt(ctx context.Context, path string, body []byte) ([]byte, error) {
	if c.retry != nil && c.retry.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		defer cancel()
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := c.hc.Do(hr)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	var raw []byte
	if n := res.ContentLength; n > 0 && n <= maxBodyBytes {
		// A declared length sizes the buffer up front; ReadAll's
		// grow-and-copy loop is measurable on large batch bodies.
		raw = make([]byte, n)
		if _, err := io.ReadFull(res.Body, raw); err != nil {
			return nil, fmt.Errorf("read response: %w", err)
		}
	} else if raw, err = io.ReadAll(io.LimitReader(res.Body, maxBodyBytes)); err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if res.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: res.StatusCode}
		var eb api.ErrorResponse
		if json.Unmarshal(raw, &eb) == nil {
			apiErr.Message = eb.Error
		}
		if s, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(s) * time.Second
		}
		return nil, apiErr
	}
	if sum := res.Header.Get(api.BodySumHeader); sum != "" {
		if sum != api.BodySum(raw) {
			return nil, &IntegrityError{Path: path, Reason: "checksum mismatch"}
		}
	} else if !json.Valid(raw) {
		// Only checksum-less replies (old servers) need the JSON
		// validity probe: a verified checksum already rules out the
		// truncation and corruption the probe exists to catch, and
		// skipping the second full parse matters on large batch bodies.
		return nil, &IntegrityError{Path: path, Reason: "invalid JSON"}
	}
	return raw, nil
}

// do posts req to path through the retry/hedge machinery and decodes
// the winning reply into resp.
func (c *Client) do(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	raw, err := c.exchange(ctx, path, body)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, resp)
}

// Guardband queries the fresh/aged critical paths and guardband of a
// circuit. A missing request version is filled with api.APIVersion.
func (c *Client) Guardband(ctx context.Context, req api.GuardbandRequest) (*api.GuardbandResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.GuardbandResponse
	if err := c.do(ctx, "/v1/guardband", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CellTiming queries one cell's interpolated aged timing.
func (c *Client) CellTiming(ctx context.Context, req api.CellTimingRequest) (*api.CellTimingResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.CellTimingResponse
	if err := c.do(ctx, "/v1/celltiming", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Grid queries the full duty-cycle guardband grid of a circuit.
func (c *Client) Grid(ctx context.Context, req api.GridRequest) (*api.GridResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.GridResponse
	if err := c.do(ctx, "/v1/grid", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Paths queries the K most critical timing paths of a circuit.
func (c *Client) Paths(ctx context.Context, req api.PathsRequest) (*api.PathsResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.PathsResponse
	if err := c.do(ctx, "/v1/paths", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MCGuardband queries the process-variation Monte Carlo guardband
// distribution of a circuit. Like every /v1 endpoint it is an
// idempotent read — the seeded sample streams make even recomputed
// replies bit-identical — so retrying and hedging stay safe.
func (c *Client) MCGuardband(ctx context.Context, req api.MCGuardbandRequest) (*api.MCGuardbandResponse, error) {
	if req.Version == "" {
		req.Version = api.APIVersion
	}
	var resp api.MCGuardbandResponse
	if err := c.do(ctx, "/v1/mcguardband", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// probe issues a bare GET and maps non-200 to *APIError.
func (c *Client) probe(ctx context.Context, path string) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	io.Copy(io.Discard, io.LimitReader(res.Body, 1<<16))
	if res.StatusCode != http.StatusOK {
		return &APIError{StatusCode: res.StatusCode, Message: strings.TrimPrefix(path, "/")}
	}
	return nil
}

// Healthz probes liveness: the process is up and serving HTTP.
func (c *Client) Healthz(ctx context.Context) error { return c.probe(ctx, "/healthz") }

// Readyz probes readiness: the daemon has finished its warm-start scan
// and is not draining. Load balancers route only to ready instances; a
// non-200 returns *APIError with the status (503 while warming or
// draining).
func (c *Client) Readyz(ctx context.Context) error { return c.probe(ctx, "/readyz") }
