package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy bounds how the client re-issues failed queries. Every
// /v1 endpoint is an idempotent read (see pkg/ageguard/api), so
// retrying is always safe; the policy only decides how hard to try.
//
// Backoff is capped exponential with full jitter: before retry k the
// client sleeps a uniformly random duration in [0, min(MaxDelay,
// BaseDelay<<k)), which decorrelates a herd of clients that failed
// together (e.g. all shed by one saturated daemon). A server-provided
// Retry-After hint raises the sleep floor to the hinted duration — the
// daemon knows its queue better than the client's dice do.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (default 4; negative means exactly one attempt, i.e. no retries).
	MaxAttempts int

	// BaseDelay caps the first backoff sleep (default 50ms); MaxDelay
	// caps every later one (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// AttemptTimeout, when positive, bounds each individual attempt
	// with its own deadline nested under the caller's context — a hung
	// connection burns one attempt, not the whole call budget.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy returns the zero policy, which resolves to 4
// attempts, 50ms initial backoff capped at 2s, and no per-attempt
// timeout. Pass it to WithRetryPolicy to opt a client into retries.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{} }

func (p RetryPolicy) attempts() int {
	switch {
	case p.MaxAttempts > 0:
		return p.MaxAttempts
	case p.MaxAttempts < 0:
		return 1
	default:
		return 4
	}
}

// backoff returns the full-jitter sleep before retry k (0-based).
func (p RetryPolicy) backoff(k int, rng func() float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	cap := max
	if k < 30 && base<<k < max {
		cap = base << k
	}
	return time.Duration(rng() * float64(cap))
}

// HedgePolicy enables hedged reads: when an attempt has produced no
// reply within Delay, an identical duplicate is launched and the first
// reply wins (the loser is canceled). Hedging trades a bounded amount
// of duplicate work for tail latency — a query stuck behind one slow
// connection or one saturated server completes via the duplicate
// instead of waiting out the straggler. Safe because every query is an
// idempotent read.
type HedgePolicy struct {
	// Delay is how long an attempt may stay unanswered before a hedge
	// launches. Zero disables hedging.
	Delay time.Duration

	// Max bounds the extra in-flight duplicates per attempt (default 1).
	Max int
}

func (h HedgePolicy) max() int {
	if h.Max <= 0 {
		return 1
	}
	return h.Max
}

// Metrics is the counter sink the client reports into, named after the
// repository's §7 scheme (client.retry.*, client.hedge.*). The obs
// registry satisfies it; the default discards. Implementations must be
// safe for concurrent use.
type Metrics interface {
	Inc(name string)
}

type noopMetrics struct{}

func (noopMetrics) Inc(string) {}

// Retryable classifies an error from a query: true means a retry may
// succeed (transport failures — connection resets, refused connections,
// truncated or corrupted bodies — and 429/5xx server replies), false
// means the request itself is at fault (any other 4xx) or the caller's
// context is done.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return retryableStatus(apiErr.StatusCode)
	}
	// Everything below the API layer — dial errors, resets mid-body,
	// malformed HTTP, integrity failures — is transient by assumption:
	// the server never speaks non-HTTP on purpose.
	return true
}

// retryableStatus reports whether an HTTP status may clear on retry:
// backpressure (429) and server-side failures (5xx). Shared with the
// per-item classification of batch results, which carry the same
// status taxonomy as whole replies.
func retryableStatus(code int) bool {
	return code == 429 || code >= 500
}

// shouldRetry decides whether the retry loop goes around again: the
// caller's context must still be live, and the error must either be
// generally retryable or a per-attempt deadline (the attempt timed out
// but the call as a whole has budget left).
func shouldRetry(parent context.Context, err error) bool {
	if parent.Err() != nil {
		return false
	}
	return Retryable(err) || errors.Is(err, context.DeadlineExceeded)
}

// exchange runs the retry loop around roundTrip and returns the winning
// attempt's verified body bytes.
func (c *Client) exchange(ctx context.Context, path string, body []byte) ([]byte, error) {
	max := 1
	if c.retry != nil {
		max = c.retry.attempts()
	}
	var err error
	for a := 0; a < max; a++ {
		if a > 0 {
			c.metrics.Inc("client.retry.retries")
			if werr := c.backoffWait(ctx, a-1, err); werr != nil {
				return nil, err // context died mid-backoff; report the real failure
			}
		}
		c.metrics.Inc("client.retry.attempts")
		var raw []byte
		raw, err = c.roundTrip(ctx, path, body)
		if err == nil {
			return raw, nil
		}
		if !shouldRetry(ctx, err) {
			return nil, err
		}
	}
	if max > 1 {
		c.metrics.Inc("client.retry.exhausted")
		return nil, fmt.Errorf("client: %d attempts exhausted: %w", max, err)
	}
	return nil, err
}

// backoffWait sleeps the jittered backoff before retry k, honoring a
// Retry-After hint carried by the previous failure as the floor, and
// returns early if ctx is done.
func (c *Client) backoffWait(ctx context.Context, k int, lastErr error) error {
	d := c.retry.backoff(k, c.rng)
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// roundTrip performs one logical attempt: a single HTTP exchange, or a
// hedged race of up to 1+Max identical exchanges when hedging is
// configured.
func (c *Client) roundTrip(ctx context.Context, path string, body []byte) ([]byte, error) {
	h := c.hedge
	if h == nil || h.Delay <= 0 {
		return c.attempt(ctx, path, body)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // losers are canceled as soon as a winner returns

	type result struct {
		raw    []byte
		err    error
		hedged bool
	}
	ch := make(chan result, 1+h.max())
	launch := func(hedged bool) {
		go func() {
			raw, err := c.attempt(hctx, path, body)
			ch <- result{raw, err, hedged}
		}()
	}
	launch(false)
	inflight, launched := 1, 0
	timer := time.NewTimer(h.Delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedged {
					c.metrics.Inc("client.hedge.won")
				}
				return r.raw, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				// Everything in flight failed; further hedges would only
				// repeat the same attempt — that is the retry loop's job,
				// with backoff.
				return nil, firstErr
			}
		case <-timer.C:
			if launched < h.max() {
				launched++
				inflight++
				c.metrics.Inc("client.hedge.launched")
				launch(true)
				if launched < h.max() {
					timer.Reset(h.Delay)
				}
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// defaultRNG is the jitter source (the shared math/rand generator is
// concurrency-safe); tests substitute a deterministic one.
func defaultRNG() float64 { return rand.Float64() }
