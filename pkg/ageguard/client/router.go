package client

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"

	"ageguard/pkg/ageguard/api"
)

// Router spreads queries across several ageguardd backends by
// consistent-hashing each query's cache identity — the (circuit,
// scenario) pair that keys the daemon's LRU — onto a hash ring. Every
// query for one identity lands on the same backend, so each
// horizontally scaled daemon stays hot on its shard instead of every
// daemon cold-filling every shard. Adding or removing a backend only
// remaps the identities adjacent to its ring points, not the whole key
// space.
//
// The Router is opt-in and purely client-side: backends are plain
// independent daemons that need not know about each other.
type Router struct {
	clients []*Client
	ring    []ringPoint
}

// ringPoint is one virtual node: a hash position owned by a backend.
type ringPoint struct {
	hash uint64
	idx  int
}

// ringReplicas is the virtual-node count per backend. Enough points
// that shard sizes even out across a handful of backends; cheap enough
// that ring construction and lookup stay trivial.
const ringReplicas = 64

// NewRouter builds a router over the given base URLs. opts apply to
// every per-backend client (retry, hedging, metrics, HTTP transport).
func NewRouter(endpoints []string, opts ...Option) (*Router, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("client: router needs at least one endpoint")
	}
	r := &Router{}
	for i, ep := range endpoints {
		r.clients = append(r.clients, New(ep, opts...))
		for v := 0; v < ringReplicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", ep, v)
			r.ring = append(r.ring, ringPoint{hash: h.Sum64(), idx: i})
		}
	}
	sort.Slice(r.ring, func(a, b int) bool { return r.ring[a].hash < r.ring[b].hash })
	return r, nil
}

// Clients returns the per-backend clients in endpoint order.
func (r *Router) Clients() []*Client { return r.clients }

// pickIdx returns the index of the backend owning a shard key: the
// first ring point at or after the key's hash, wrapping at the top.
func (r *Router) pickIdx(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= v })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].idx
}

func (r *Router) pick(key string) *Client { return r.clients[r.pickIdx(key)] }

// scenarioShard canonicalizes a scenario for sharding. Fields a kind
// does not use are zero on the wire (the API omits them), so identical
// scenarios shard identically regardless of construction.
func scenarioShard(sc api.Scenario) string {
	return fmt.Sprintf("%s|%g|%g|%g", sc.Kind, sc.Years, sc.LambdaP, sc.LambdaN)
}

// shardKey maps one batch item to its cache identity. Guardband and
// paths queries are keyed by (circuit, scenario); cell-timing queries
// by scenario alone — their server-side cost is the scenario's library,
// which every cell of the scenario shares.
func shardKey(it api.BatchItem) (string, error) {
	if err := it.Validate(); err != nil {
		return "", err
	}
	switch it.Kind {
	case api.BatchGuardband:
		return "gb|" + it.Guardband.Circuit + "|" + scenarioShard(it.Guardband.Scenario), nil
	case api.BatchCellTiming:
		return "ct|" + scenarioShard(it.CellTiming.Scenario), nil
	default:
		return "ps|" + it.Paths.Circuit + "|" + scenarioShard(it.Paths.Scenario), nil
	}
}

// Guardband routes a guardband query to its shard's backend.
func (r *Router) Guardband(ctx context.Context, req api.GuardbandRequest) (*api.GuardbandResponse, error) {
	return r.pick("gb|"+req.Circuit+"|"+scenarioShard(req.Scenario)).Guardband(ctx, req)
}

// CellTiming routes a cell-timing query to its scenario's backend.
func (r *Router) CellTiming(ctx context.Context, req api.CellTimingRequest) (*api.CellTimingResponse, error) {
	return r.pick("ct|"+scenarioShard(req.Scenario)).CellTiming(ctx, req)
}

// Paths routes a paths query to its shard's backend.
func (r *Router) Paths(ctx context.Context, req api.PathsRequest) (*api.PathsResponse, error) {
	return r.pick("ps|"+req.Circuit+"|"+scenarioShard(req.Scenario)).Paths(ctx, req)
}

// Grid routes a grid query by (circuit, years).
func (r *Router) Grid(ctx context.Context, req api.GridRequest) (*api.GridResponse, error) {
	return r.pick(fmt.Sprintf("grid|%s|%g", req.Circuit, req.Years)).Grid(ctx, req)
}

// Batch scatters a batch across the backends owning its items' shards
// and gathers the per-item results back into input order. Sub-batches
// run concurrently; each travels through its backend client's full
// Batch machinery (retries, item re-dispatch). A backend whose whole
// sub-batch exchange fails marks only its own items — with the failure
// status when the backend spoke HTTP, 503 when it was unreachable —
// and the other backends' answers stand, mirroring the server's
// per-item failure semantics.
func (r *Router) Batch(ctx context.Context, items []api.BatchItem) (*api.BatchResponse, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("client: empty batch")
	}
	groups := map[int][]int{}
	for i, it := range items {
		key, err := shardKey(it)
		if err != nil {
			// Malformed items still go to a backend (the ring origin), so
			// the server rejects them per-item exactly as a direct Batch
			// call would.
			key = ""
		}
		idx := r.pickIdx(key)
		groups[idx] = append(groups[idx], i)
	}

	out := &api.BatchResponse{
		Version: api.APIVersion,
		Items:   make([]api.BatchItemResult, len(items)),
	}
	var wg sync.WaitGroup
	for idx, ids := range groups {
		wg.Add(1)
		go func(cl *Client, ids []int) {
			defer wg.Done()
			sub := make([]api.BatchItem, len(ids))
			for j, i := range ids {
				sub[j] = items[i]
			}
			resp, err := cl.Batch(ctx, sub)
			if err != nil {
				be := &api.BatchError{Status: http.StatusServiceUnavailable, Message: err.Error()}
				var apiErr *APIError
				if errors.As(err, &apiErr) {
					be.Status = apiErr.StatusCode
				}
				for _, i := range ids {
					out.Items[i] = api.BatchItemResult{Error: be}
				}
				return
			}
			for j, i := range ids {
				out.Items[i] = resp.Items[j]
			}
		}(r.clients[idx], ids)
	}
	wg.Wait()
	return out, nil
}
