package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// roundTrip encodes v, decodes into a fresh value of the same type and
// returns it alongside the wire bytes.
func roundTrip(t *testing.T, v any) (any, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	out := reflect.New(reflect.TypeOf(v)).Interface()
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return reflect.ValueOf(out).Elem().Interface(), b
}

func ptr[T any](v T) *T { return &v }

func TestRoundTrip(t *testing.T) {
	duty := Scenario{Kind: "duty", Years: 10, LambdaP: 0.3, LambdaN: 0.7}
	values := []any{
		GuardbandRequest{Version: APIVersion, Circuit: "DSP", Scenario: duty},
		GuardbandResponse{Version: APIVersion, Circuit: "DSP", Scenario: duty,
			FreshCPs: 1.1e-9, AgedCPs: 1.3e-9, GuardbandS: 0.2e-9, GuardbandPct: 18.2},
		CellTimingRequest{Version: APIVersion, Cell: "NAND2_X1", Scenario: duty,
			InSlewS: 20e-12, LoadF: 2e-15},
		CellTimingResponse{Version: APIVersion, Cell: "NAND2_X1", Library: "worst_10y",
			Arcs: []ArcTiming{{Pin: "A", Edge: "rise", DelayS: 31e-12, OutSlewS: ptr(14e-12)}}},
		GridRequest{Version: APIVersion, Circuit: "FFT", Years: 10},
		GridResponse{Version: APIVersion, Circuit: "FFT", Years: 10, FreshCPs: 2e-9,
			Lambdas: []float64{0, 0.5, 1}, AgedCPs: [][]float64{{2.1e-9, 2.2e-9, 2.3e-9}},
			WorstGuardbandS: 0.3e-9},
		PathsRequest{Version: APIVersion, Circuit: "DSP", Scenario: duty, K: 5},
		PathsResponse{Version: APIVersion, Circuit: "DSP", Paths: []Path{{
			Launch: "reg1/Q", Endpoint: "reg9/D", EndEdge: "rise",
			DelayS: 1.2e-9, SetupS: 40e-12,
			Steps: []PathStep{{Inst: "u1", Cell: "INV_X1", Pin: "A",
				InEdge: "fall", OutEdge: "rise", DelayS: 12e-12, ArrivalS: 30e-12}},
		}}},
		ErrorResponse{Version: APIVersion, Error: "unknown circuit"},
	}
	for _, v := range values {
		got, wire := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%T: round-trip mismatch\n got %#v\nwant %#v", v, got, v)
		}
		if !strings.Contains(string(wire), `"version":"v1"`) {
			t.Errorf("%T: wire form lacks version tag: %s", v, wire)
		}
	}
}

func TestScenarioOmitsUnusedKnobs(t *testing.T) {
	// A "fresh" scenario must not leak zero-valued lambda/years fields
	// onto the wire — v1 treats absence as "not applicable".
	b, err := json.Marshal(Scenario{Kind: "fresh"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `{"kind":"fresh"}`; got != want {
		t.Errorf("fresh scenario wire form = %s, want %s", got, want)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	duty := Scenario{Kind: "duty", Years: 10, LambdaP: 0.3, LambdaN: 0.7}
	req := BatchRequest{Version: APIVersion, Items: []BatchItem{
		GuardbandItem(GuardbandRequest{Version: APIVersion, Circuit: "DSP", Scenario: duty}),
		CellTimingItem(CellTimingRequest{Version: APIVersion, Cell: "INV_X1",
			Scenario: duty, InSlewS: 20e-12, LoadF: 2e-15}),
		PathsItem(PathsRequest{Version: APIVersion, Circuit: "FFT", Scenario: duty, K: 3}),
	}}
	resp := BatchResponse{Version: APIVersion, Items: []BatchItemResult{
		{Guardband: &GuardbandResponse{Version: APIVersion, Circuit: "DSP",
			Scenario: duty, FreshCPs: 1e-9, AgedCPs: 1.2e-9, GuardbandS: 0.2e-9}},
		{Error: &BatchError{Status: 404, Message: "unknown cell"}},
		{Paths: &PathsResponse{Version: APIVersion, Circuit: "FFT"}},
	}}
	for _, v := range []any{req, resp} {
		got, wire := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%T: round-trip mismatch\n got %#v\nwant %#v", v, got, v)
		}
		if !strings.Contains(string(wire), `"version":"v1"`) {
			t.Errorf("%T: wire form lacks version tag", v)
		}
	}
	// Unset payloads and errors must stay off the wire entirely.
	b, err := json.Marshal(BatchItemResult{Error: &BatchError{Status: 400, Message: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"guardband", "celltiming", "paths"} {
		if strings.Contains(string(b), leak) {
			t.Errorf("error-only result leaks %q: %s", leak, b)
		}
	}
}

func TestBatchItemValidate(t *testing.T) {
	good := GuardbandItem(GuardbandRequest{Circuit: "DSP"})
	if err := good.Validate(); err != nil {
		t.Errorf("constructor item invalid: %v", err)
	}
	bad := []BatchItem{
		{},
		{Kind: "bogus"},
		{Kind: BatchGuardband}, // no payload
		{Kind: BatchGuardband, Paths: &PathsRequest{}},                               // wrong payload
		{Kind: BatchPaths, Paths: &PathsRequest{}, CellTiming: &CellTimingRequest{}}, // two payloads
	}
	for i, it := range bad {
		if err := it.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted malformed item", i)
		}
	}
}
