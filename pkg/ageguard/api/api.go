// Package api defines the versioned wire types of the ageguardd
// HTTP/JSON interface. The package is importable by out-of-tree clients:
// it depends on nothing but the standard library and carries only plain
// data — all physical quantities are SI floats, with the unit suffixed
// to the field name (_s seconds, _f farads).
//
// Every request and response embeds the protocol version; servers reject
// requests whose version they do not speak, so a future v2 can change
// shapes without silently misreading v1 traffic.
//
// All /v1 query endpoints are idempotent reads: re-issuing a request —
// a retry after a transport failure, or a hedged duplicate racing a
// slow attempt — never changes server state and always converges to
// the same answer, so clients are free to retry and hedge them.
package api

import (
	"fmt"
	"hash/fnv"
)

// APIVersion is the protocol generation this package describes. Clients
// put it in requests; servers echo it in responses.
const APIVersion = "v1"

// BodySumHeader is the header carrying an end-to-end integrity checksum
// of the JSON body, computed with BodySum. Servers stamp it on
// responses; clients verify it when present, so bit corruption in
// transit — which can turn one valid JSON number into another that no
// decoder would flag — is detected and the request retried instead of a
// silently wrong answer being accepted. Absent on replies from servers
// that predate it; verification is then skipped.
const BodySumHeader = "Ageguard-Body-Sum"

// BodySum returns the checksum header value for a body: the FNV-1a
// 64-bit digest of the exact bytes on the wire.
func BodySum(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("fnv64a %016x", h.Sum64())
}

// Scenario selects the aging stress a query is evaluated under.
//
// Kind is one of "fresh", "worst", "balance" or "duty". Years is the
// projected lifetime (ignored for "fresh"). LambdaP/LambdaN are the
// pMOS/nMOS duty cycles in [0, 1], used by "duty" only.
type Scenario struct {
	Kind    string  `json:"kind"`
	Years   float64 `json:"years,omitempty"`
	LambdaP float64 `json:"lambda_p,omitempty"`
	LambdaN float64 `json:"lambda_n,omitempty"`
}

// GuardbandRequest asks for the timing guardband of a benchmark circuit
// under a static aging scenario: the circuit is synthesized
// traditionally (cached server-side) and timed fresh and aged.
type GuardbandRequest struct {
	Version  string   `json:"version"`
	Circuit  string   `json:"circuit"`
	Scenario Scenario `json:"scenario"`
}

// GuardbandResponse reports the fresh and aged critical paths and their
// difference. GuardbandPct is the guardband relative to the fresh
// critical path, in percent.
type GuardbandResponse struct {
	Version      string   `json:"version"`
	Circuit      string   `json:"circuit"`
	Scenario     Scenario `json:"scenario"`
	FreshCPs     float64  `json:"fresh_cp_s"`
	AgedCPs      float64  `json:"aged_cp_s"`
	GuardbandS   float64  `json:"guardband_s"`
	GuardbandPct float64  `json:"guardband_pct"`
}

// CellTimingRequest asks for the aged timing of one standard cell at a
// given input slew and output load, interpolated from the
// characterized library of the scenario.
type CellTimingRequest struct {
	Version  string   `json:"version"`
	Cell     string   `json:"cell"`
	Scenario Scenario `json:"scenario"`
	InSlewS  float64  `json:"in_slew_s"`
	LoadF    float64  `json:"load_f"`
}

// ArcTiming is the interpolated delay and output slew of one timing arc
// at the queried (slew, load) point. Edge names the output transition,
// "rise" or "fall". OutSlewS is nil (and absent from the wire) for
// delay-only arcs — the library format treats output slew as optional.
type ArcTiming struct {
	Pin      string   `json:"pin"`
	Edge     string   `json:"edge"`
	DelayS   float64  `json:"delay_s"`
	OutSlewS *float64 `json:"out_slew_s,omitempty"`
}

// CellTimingResponse reports every arc of the cell at the queried
// point. Library names the characterized library that served the
// lookup.
type CellTimingResponse struct {
	Version string      `json:"version"`
	Cell    string      `json:"cell"`
	Library string      `json:"library"`
	Arcs    []ArcTiming `json:"arcs"`
}

// GridRequest asks for the full duty-cycle guardband grid of a circuit:
// the netlist is timed under every (lambdaP, lambdaN) combination of
// the paper's 11x11 grid for the given lifetime.
type GridRequest struct {
	Version string  `json:"version"`
	Circuit string  `json:"circuit"`
	Years   float64 `json:"years"`
}

// GridResponse carries the grid slice. AgedCPs is indexed
// [iLambdaP][iLambdaN] over the Lambdas axis; the guardband at a point
// is AgedCPs[i][j] - FreshCPs.
type GridResponse struct {
	Version         string      `json:"version"`
	Circuit         string      `json:"circuit"`
	Years           float64     `json:"years"`
	FreshCPs        float64     `json:"fresh_cp_s"`
	Lambdas         []float64   `json:"lambdas"`
	AgedCPs         [][]float64 `json:"aged_cp_s"`
	WorstGuardbandS float64     `json:"worst_guardband_s"`
}

// PathsRequest asks for the K most critical register-to-register or
// register-to-output paths of a circuit under a scenario.
type PathsRequest struct {
	Version  string   `json:"version"`
	Circuit  string   `json:"circuit"`
	Scenario Scenario `json:"scenario"`
	K        int      `json:"k"`
}

// PathStep is one cell traversal on a reported timing path.
type PathStep struct {
	Inst     string  `json:"inst"`
	Cell     string  `json:"cell"`
	Pin      string  `json:"pin"`
	InEdge   string  `json:"in_edge"`
	OutEdge  string  `json:"out_edge"`
	DelayS   float64 `json:"delay_s"`
	ArrivalS float64 `json:"arrival_s"`
}

// Path is one critical path: total delay includes the setup component
// at a register endpoint (SetupS, zero at primary outputs).
type Path struct {
	Launch   string     `json:"launch"`
	Endpoint string     `json:"endpoint"`
	EndEdge  string     `json:"end_edge"`
	DelayS   float64    `json:"delay_s"`
	SetupS   float64    `json:"setup_s,omitempty"`
	Steps    []PathStep `json:"steps"`
}

// PathsResponse reports the paths, most critical first.
type PathsResponse struct {
	Version string `json:"version"`
	Circuit string `json:"circuit"`
	Paths   []Path `json:"paths"`
}

// MCGuardbandRequest asks for the process-variation Monte Carlo
// guardband distribution of a circuit under an aging scenario: the
// server samples per-instance Vth0/mobility perturbations from seeded
// deterministic streams, re-times the fresh and aged critical paths per
// sample, and reduces the per-sample guardbands to quantiles and a
// histogram. Equal requests — including the seed — always reproduce
// bit-identical responses.
//
// Samples defaults to 256 (bounded server-side), Bins to 32. SigmaVthV
// and SigmaMuRel are the per-instance variation magnitudes; when both
// are zero the server substitutes its default process spread
// (sigma(Vth0) = 15 mV, sigma(mu)/mu = 3%).
type MCGuardbandRequest struct {
	Version    string   `json:"version"`
	Circuit    string   `json:"circuit"`
	Scenario   Scenario `json:"scenario"`
	Samples    int      `json:"samples,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	SigmaVthV  float64  `json:"sigma_vth_v,omitempty"`
	SigmaMuRel float64  `json:"sigma_mu_rel,omitempty"`
	Bins       int      `json:"bins,omitempty"`
}

// MCHistogram is a fixed-width histogram of the per-sample guardbands
// over [LoS, HiS] (the observed extremes).
type MCHistogram struct {
	LoS    float64 `json:"lo_s"`
	HiS    float64 `json:"hi_s"`
	Counts []int   `json:"counts"`
}

// MCGuardbandResponse reports the guardband distribution: the nominal
// (zero-variation) fresh/aged critical paths, then mean, standard
// deviation, interpolated quantiles and extremes of the per-sample
// guardbands, plus the histogram. Per-sample arrays stay server-side.
type MCGuardbandResponse struct {
	Version    string      `json:"version"`
	Circuit    string      `json:"circuit"`
	Scenario   Scenario    `json:"scenario"`
	Samples    int         `json:"samples"`
	Seed       uint64      `json:"seed"`
	SigmaVthV  float64     `json:"sigma_vth_v"`
	SigmaMuRel float64     `json:"sigma_mu_rel"`
	FreshCPs   float64     `json:"fresh_cp_s"`
	AgedCPs    float64     `json:"aged_cp_s"`
	MeanS      float64     `json:"mean_s"`
	StdS       float64     `json:"std_s"`
	P50S       float64     `json:"p50_s"`
	P95S       float64     `json:"p95_s"`
	P999S      float64     `json:"p999_s"`
	MinS       float64     `json:"min_s"`
	MaxS       float64     `json:"max_s"`
	Hist       MCHistogram `json:"hist"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Version string `json:"version"`
	Error   string `json:"error"`
}

// Batch item kinds. Grid is deliberately excluded: one grid query is
// itself a 121-library batch and dwarfs everything else a batch could
// carry; issue it as a single request.
const (
	BatchGuardband  = "guardband"
	BatchCellTiming = "celltiming"
	BatchPaths      = "paths"
)

// BatchItem is one query inside a batch: Kind selects which of the
// payload pointers is populated. Exactly the payload named by Kind must
// be non-nil; servers reject malformed items per-item, not per-batch.
type BatchItem struct {
	Kind       string             `json:"kind"`
	Guardband  *GuardbandRequest  `json:"guardband,omitempty"`
	CellTiming *CellTimingRequest `json:"celltiming,omitempty"`
	Paths      *PathsRequest      `json:"paths,omitempty"`
}

// GuardbandItem wraps a guardband request as a batch item.
func GuardbandItem(r GuardbandRequest) BatchItem {
	return BatchItem{Kind: BatchGuardband, Guardband: &r}
}

// CellTimingItem wraps a cell-timing request as a batch item.
func CellTimingItem(r CellTimingRequest) BatchItem {
	return BatchItem{Kind: BatchCellTiming, CellTiming: &r}
}

// PathsItem wraps a paths request as a batch item.
func PathsItem(r PathsRequest) BatchItem {
	return BatchItem{Kind: BatchPaths, Paths: &r}
}

// Validate checks the item's shape: a known Kind carrying exactly its
// own payload.
func (it BatchItem) Validate() error {
	switch it.Kind {
	case BatchGuardband, BatchCellTiming, BatchPaths:
	default:
		return fmt.Errorf("unknown batch item kind %q (want %s, %s or %s)",
			it.Kind, BatchGuardband, BatchCellTiming, BatchPaths)
	}
	var set []string
	if it.Guardband != nil {
		set = append(set, BatchGuardband)
	}
	if it.CellTiming != nil {
		set = append(set, BatchCellTiming)
	}
	if it.Paths != nil {
		set = append(set, BatchPaths)
	}
	if len(set) != 1 || set[0] != it.Kind {
		return fmt.Errorf("batch item of kind %q must carry exactly the %q payload (has %v)",
			it.Kind, it.Kind, set)
	}
	return nil
}

// BatchRequest asks for a heterogeneous list of queries answered in one
// round trip. The server decomposes the list into its unique
// subproblems (libraries, netlists, analyzers), fills each once, and
// answers every item — items that fail carry their own error while the
// rest of the batch still succeeds.
type BatchRequest struct {
	Version string      `json:"version"`
	Items   []BatchItem `json:"items"`
}

// BatchError is one item's failure: the same HTTP status taxonomy a
// single request would have received (400 bad parameters, 404 unknown
// name, 504 deadline, ...) plus the error message.
type BatchError struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// BatchItemResult answers one batch item: either Error is set, or the
// response pointer matching the item's Kind is.
type BatchItemResult struct {
	Error      *BatchError         `json:"error,omitempty"`
	Guardband  *GuardbandResponse  `json:"guardband,omitempty"`
	CellTiming *CellTimingResponse `json:"celltiming,omitempty"`
	Paths      *PathsResponse      `json:"paths,omitempty"`
}

// BatchResponse carries one result per request item, in request order.
type BatchResponse struct {
	Version string            `json:"version"`
	Items   []BatchItemResult `json:"items"`
}
