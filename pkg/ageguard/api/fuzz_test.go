package api

import (
	"encoding/json"
	"testing"
)

// FuzzBatchRequestDecode asserts the wire-decoding path a hostile client
// controls: arbitrary bytes either fail to decode, fail item validation,
// or yield a batch whose every item re-encodes cleanly. No input may
// panic — this is exactly what the server runs on each /v1/batch body.
func FuzzBatchRequestDecode(f *testing.F) {
	good, _ := json.Marshal(BatchRequest{
		Version: APIVersion,
		Items: []BatchItem{
			GuardbandItem(GuardbandRequest{Circuit: "DSP", Scenario: Scenario{Kind: "worst"}}),
			CellTimingItem(CellTimingRequest{Cell: "INV_X1", InSlewS: 2e-11, LoadF: 2e-15}),
			PathsItem(PathsRequest{Circuit: "DSP", K: 3}),
		},
	})
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":"v1","items":[{"kind":"guardband"}]}`))
	f.Add([]byte(`{"items":[{"kind":"celltiming","guardband":{}}]}`))
	f.Add([]byte(`{"items":null}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"items":[{"kind":"?"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req BatchRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		for _, it := range req.Items {
			if err := it.Validate(); err != nil {
				continue
			}
			if _, err := json.Marshal(it); err != nil {
				t.Fatalf("valid item failed to re-encode: %v", err)
			}
		}
	})
}
