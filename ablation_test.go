// Ablation benchmarks for the design choices DESIGN.md calls out: how
// much each stage of the synthesis flow contributes, and what the mapping
// strategies cost — run with `go test -bench Ablation -benchtime 1x`.
package main

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ageguard/internal/liberty"
	"ageguard/internal/logic"
	"ageguard/internal/netlist"
	"ageguard/internal/rtl"
	"ageguard/internal/sta"
	"ageguard/internal/synth"
	"ageguard/internal/units"
)

var ablOnce sync.Once

// BenchmarkAblation_FlowStages quantifies each optimization stage of the
// synthesis flow on RISC-5P: raw mapping, design-rule fixing, sizing,
// buffering, area recovery — under both the fresh and the worst-case aged
// library, showing where the aging-awareness enters.
func BenchmarkAblation_FlowStages(b *testing.B) {
	ablOnce.Do(func() {
		fresh, err := flow.FreshLibrary(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		aged, err := flow.WorstLibrary(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		a := rtl.GenRISC5()
		fmt.Println("\n=== Ablation: flow stages (RISC-5P) ===")
		fmt.Printf("%-22s %12s %12s\n", "stage", "freshLib CP", "agedLib CP")
		stageCP := func(lib *liberty.Library) []float64 {
			var cps []float64
			cfg := synth.Config{Buffering: true}
			nl, err := synth.Map(a, lib, "r5", cfg)
			if err != nil {
				b.Fatal(err)
			}
			nl = synth.WrapSequential(nl)
			add := func(n *netlist.Netlist) *netlist.Netlist {
				res, err := sta.Analyze(context.Background(), n, lib, sta.Config{})
				if err != nil {
					b.Fatal(err)
				}
				cps = append(cps, res.CP)
				return n
			}
			nl = add(nl)
			nl = add(synth.FixDesignRules(nl, lib))
			nl, err = synth.SizeGates(context.Background(), nl, lib, cfg)
			if err != nil {
				b.Fatal(err)
			}
			nl = add(nl)
			nl, err = synth.BufferCriticalNets(context.Background(), nl, lib, cfg)
			if err != nil {
				b.Fatal(err)
			}
			nl = add(nl)
			nl, err = synth.RecoverArea(context.Background(), nl, lib, cfg)
			if err != nil {
				b.Fatal(err)
			}
			add(nl)
			return cps
		}
		f := stageCP(fresh)
		g := stageCP(aged)
		names := []string{"mapped", "+design rules", "+sizing", "+buffering", "+area recovery"}
		for i, n := range names {
			fmt.Printf("%-22s %12s %12s\n", n, units.PsString(f[i]), units.PsString(g[i]))
		}
	})
	nl := kernelNetlist.get(b, loadKernelNetlist)
	lib := kernelLib.get(b, func() (*liberty.Library, error) { return flow.FreshLibrary(context.Background()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(context.Background(), nl, lib, sta.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

var ablSeedsOnce sync.Once

// BenchmarkAblation_MapperSeeds compares the multi-start mapping
// strategies (library-driven at several drive assumptions vs the
// library-agnostic unit-delay modes) after full optimization.
func BenchmarkAblation_MapperSeeds(b *testing.B) {
	ablSeedsOnce.Do(func() {
		fresh, err := flow.FreshLibrary(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		a := rtl.GenVLIW()
		type seed struct {
			name string
			cfg  synth.Config
		}
		seeds := []seed{
			{"lib-driven d1", synth.Config{DPDrive: 1}},
			{"lib-driven d2", synth.Config{DPDrive: 2}},
			{"lib-driven d4", synth.Config{DPDrive: 4}},
			{"unit-delay", synth.Config{UnitDelay: true}},
			{"unit+area", synth.Config{UnitDelay: true, UnitMode: 1}},
			{"unit+wide", synth.Config{UnitDelay: true, UnitMode: 2}},
		}
		fmt.Println("\n=== Ablation: mapping strategies (VLIW, fresh library) ===")
		fmt.Printf("%-16s %12s %8s\n", "strategy", "CP", "insts")
		for _, s := range seeds {
			nl, err := synth.Map(a, fresh, "v", s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			nl = synth.WrapSequential(nl)
			nl = synth.FixDesignRules(nl, fresh)
			nl, err = synth.SizeGates(context.Background(), nl, fresh, s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sta.Analyze(context.Background(), nl, fresh, sta.Config{})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-16s %12s %8d\n", s.name, units.PsString(res.CP), len(nl.Insts))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = logic.New()
	}
}

// BenchmarkAblation_MapDCT measures raw technology-mapping throughput on
// the largest benchmark (DCT, ~45k AIG nodes).
func BenchmarkAblation_MapDCT(b *testing.B) {
	lib := kernelLib.get(b, func() (*liberty.Library, error) { return flow.FreshLibrary(context.Background()) })
	a := rtl.GenDCT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Map(a, lib, "dct", synth.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

var ablTightOnce sync.Once

// BenchmarkAblation_IterativeTightening compares the related-work
// baseline [14] (aging analysis points at critical paths; a
// degradation-unaware flow re-optimizes them) against this work's
// degradation-aware synthesis on two circuits.
func BenchmarkAblation_IterativeTightening(b *testing.B) {
	ablTightOnce.Do(func() {
		fmt.Println("\n=== Ablation: iterative tightening [14] vs degradation-aware synthesis ===")
		fmt.Printf("%-10s %10s %12s %12s %8s %8s\n",
			"circuit", "reqGB", "[14] GB", "aware GB", "[14]%", "aware%")
		for _, c := range []string{"RISC-5P", "VLIW"} {
			row, err := flow.IterativeTightening(context.Background(), c)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-10s %10s %12s %12s %+8.1f %+8.1f\n", c,
				units.PsString(row.RequiredGB), units.PsString(row.TightenedGB),
				units.PsString(row.ContainedGB), row.BaselinePct, row.AgingAwarePct)
		}
	})
	nl := kernelNetlist.get(b, loadKernelNetlist)
	lib := kernelLib.get(b, func() (*liberty.Library, error) { return flow.FreshLibrary(context.Background()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(context.Background(), nl, lib, sta.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
