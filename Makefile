GO ?= go

.PHONY: all build test race verify fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# verify is the tier-1 gate every change must pass (see ROADMAP.md):
# it fails on any build/vet error, any unformatted file, or any test
# failure with and without the race detector.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) test ./...
	$(GO) test -race ./...
