GO ?= go

.PHONY: all build test race verify fmt faults chaos bench serve-smoke fuzz-smoke cover-gate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# verify is the tier-1 gate every change must pass (see ROADMAP.md):
# it fails on any build/vet error, any unformatted file, or any test
# failure with and without the race detector. staticcheck runs when the
# tool is on PATH and is skipped (with a notice) otherwise, so verify
# works in minimal containers without network access.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) test ./...
	$(GO) test -race ./...
	BENCH_PR4_OUT=$$(mktemp) BENCH_PR4_ITERS=1 $(GO) test ./internal/sta/ -run TestBenchPR4Emit -count=1
	BENCH_PR6_OUT=$$(mktemp) BENCH_PR6_ITERS=1 $(GO) test ./internal/char/ -run TestBenchPR6Emit -count=1
	BENCH_PR9_OUT=$$(mktemp) BENCH_PR9_ITERS=1 $(GO) test ./internal/serve/ -run TestBenchPR9Emit -count=1
	$(MAKE) fuzz-smoke
	$(MAKE) chaos
	$(MAKE) serve-smoke

# fuzz-smoke runs each native fuzz target for a short wall-clock budget
# (coverage-guided mutation on top of the committed seeds). Go allows one
# -fuzz pattern per invocation, hence one line per target. Minimization
# is capped at 10 exec attempts per interesting input: the default 60s
# budget can eat the whole smoke window on a 1-CPU runner while the
# execs counter sits at zero. A crash or a violated round-trip property
# fails the build; real fuzzing sessions can raise -fuzztime arbitrarily.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/liberty/ -run XXX -fuzz 'FuzzLibertyRead$$' \
		-fuzztime $(FUZZTIME) -fuzzminimizetime 10x
	$(GO) test ./pkg/ageguard/api/ -run XXX -fuzz 'FuzzBatchRequestDecode$$' \
		-fuzztime $(FUZZTIME) -fuzzminimizetime 10x

# cover-gate re-runs the full test suite with a coverage profile and
# fails if total statement coverage drops below the committed baseline
# (COVERAGE_BASELINE, a single percentage). The baseline is set ~2 points
# under the measured value so refactors have headroom; raise it when
# coverage climbs. Runs as its own CI step, not inside verify, because
# the profiled run duplicates the whole suite.
cover-gate:
	@profile=$$(mktemp); \
	$(GO) test -coverprofile=$$profile ./... || exit 1; \
	total=$$($(GO) tool cover -func=$$profile | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	rm -f $$profile; \
	baseline=$$(cat $(CURDIR)/COVERAGE_BASELINE); \
	echo "total coverage $$total% (baseline $$baseline%)"; \
	awk -v t="$$total" -v b="$$baseline" 'BEGIN { exit (t+0 < b+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $$baseline% baseline"; exit 1; }

# serve-smoke boots a real ageguardd (quick characterization grid,
# repo disk cache so repeated local runs stay warm), issues one query
# per endpoint over HTTP, and fails unless every query succeeds and the
# drain is clean. Runs as part of verify and in CI.
serve-smoke:
	$(GO) run ./cmd/ageguardd -quick -smoke

# bench reproduces the checked-in benchmark reports:
#   BENCH_PR4.json — incremental-STA inner loop vs full re-analysis, and
#                    the 121-library grid fan-out vs serial analysis;
#   BENCH_PR6.json — analytic-Jacobian transient kernel per-arc time and
#                    allocation counts vs the pre-PR6 finite-difference
#                    solver (plus a small Characterize wall clock);
#   BENCH_PR7.json — ageguardd cold-vs-warm guardband query latency over
#                    real HTTP (see EXPERIMENTS.md, "BENCH_PR7");
#   BENCH_PR9.json — one warm /v1/batch request of 32 heterogeneous items
#                    vs the same items as sequential singles, cold and
#                    warm, with bit-identity asserted per item (see
#                    EXPERIMENTS.md, "BENCH_PR9");
#   BENCH_PR10.json — Monte Carlo guardband distribution: cold-vs-warm
#                    /v1/mcguardband over real HTTP on RISC-5P with warm
#                    bytes asserted identical, plus the sensitivity-MC
#                    vs exact-full-SPICE differential (per-sample speedup
#                    and p95 agreement; see EXPERIMENTS.md, "BENCH_PR10").
# The checked-in files are the reference results; regenerate after
# touching the engines and commit the update if the speedups moved.
bench:
	BENCH_PR4_OUT=$(CURDIR)/BENCH_PR4.json $(GO) test ./internal/sta/ -run TestBenchPR4Emit -count=1 -v
	BENCH_PR6_OUT=$(CURDIR)/BENCH_PR6.json $(GO) test ./internal/char/ -run TestBenchPR6Emit -count=1 -v
	$(GO) run ./cmd/ageguardd -quick -cache $$(mktemp -d) -loadgen \
		-loadgen-requests 200 -loadgen-conc 4 -bench-out $(CURDIR)/BENCH_PR7.json
	BENCH_PR9_OUT=$(CURDIR)/BENCH_PR9.json $(GO) test ./internal/serve/ -run TestBenchPR9Emit -count=1 -v
	$(GO) run ./cmd/ageguardd -quick -cache $$(mktemp -d) -loadgen-mc \
		-loadgen-mc-samples 256 -loadgen-mc-exact 8 -bench-out $(CURDIR)/BENCH_PR10.json
	$(GO) test ./internal/char/ -run XXX -bench 'BenchmarkArcTransient|BenchmarkCharacterizeINVX1' -benchtime 1s

# chaos runs the end-to-end fault-injection suite under the race
# detector: a retrying/hedging client driven through a seeded TCP proxy
# and a fault-injecting transport (resets, truncation, corruption,
# latency, forced 5xx) must converge to the bit-identical fault-free
# answers — for single queries and for heterogeneous /v1/batch
# requests, whose per-item answers must match their single-request
# baselines bit for bit — leave no corrupt or partial cache files
# behind, and a warm-restarted daemon must serve repeat queries without
# re-characterizing. Runs as part of verify.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/

# faults runs the fault-injection and recovery suite — solver retry
# ladder, grid-point salvage, checkpoint/resume, cache corruption and
# partial-sweep paths — under the race detector.
faults:
	$(GO) test -race -run 'Fault|Retry|Salvage|Strict|Resume|Ckpt|Corrupt|Sweep|Truncat|Classify|Escalat|Timeout' \
		./internal/spice/ ./internal/char/ ./internal/liberty/ ./internal/obs/
