module ageguard

go 1.24
