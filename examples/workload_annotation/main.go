// Workload-driven netlist annotation (the paper's Sec. 4.2, right side of
// Fig. 4b) shown end to end on the FFT butterfly:
//
//  1. a deterministic LFSR workload is simulated at gate level,
//  2. per-net signal probabilities give each instance's average pMOS/nMOS
//     duty cycles,
//  3. the netlist is annotated with lambda indexes (NAND2_X1 ->
//     NAND2_X1_0.6_0.4, ...),
//  4. the merged complete degradation-aware library — containing exactly
//     the referenced lambda points — times the annotated netlist,
//
// and the resulting workload-specific guardband is compared against the
// workload-independent worst case.
//
// Run with: go run ./examples/workload_annotation
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ageguard/internal/aging"
	"ageguard/internal/core"
	"ageguard/internal/gatesim"
	"ageguard/internal/netlist"
	"ageguard/internal/rtl"
	"ageguard/internal/units"
)

func main() {
	ctx := context.Background()
	f := core.Default()
	fmt.Println("synthesizing FFT with the initial library...")
	nl, err := f.SynthesizeTraditional(ctx, "FFT")
	if err != nil {
		log.Fatal(err)
	}

	// A biased workload: twiddle inputs mostly small, data dense.
	stim := rtl.WorkloadStimulus(nl.Inputs, 2026)
	biased := func(step int) map[string]uint64 {
		in := stim(step)
		for _, pi := range nl.Inputs {
			if len(pi) > 1 && pi[0] == 'w' { // twiddle buses wr/wi
				in[pi] &= in[pi] >> 1 // thin the ones
			}
		}
		return in
	}

	gb, annotated, err := f.DynamicGuardband(ctx, "FFT", nl, biased, 48)
	if err != nil {
		log.Fatal(err)
	}
	worst, err := f.StaticGuardband(ctx, "FFT", nl, aging.WorstCase(f.Lifetime))
	if err != nil {
		log.Fatal(err)
	}

	// Show the annotation outcome: which lambda-indexed variants appear.
	counts := map[string]int{}
	for _, in := range annotated.Insts {
		lp, ln, _, err := netlist.SplitAnnotated(in.Cell)
		if err == nil {
			counts[fmt.Sprintf("lambdaP=%.1f lambdaN=%.1f", lp, ln)]++
		}
	}
	fmt.Println("\nduty-cycle population over the netlist (from the workload):")
	keys := core.SortedKeys(counts)
	sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
	for i, k := range keys {
		if i == 8 {
			fmt.Printf("  ... and %d more lambda combinations\n", len(keys)-8)
			break
		}
		fmt.Printf("  %-28s %5d instances\n", k, counts[k])
	}

	fmt.Printf("\n%-34s %12s\n", "scenario", "guardband")
	fmt.Printf("%-34s %12s\n", "this workload (dynamic stress)", units.PsString(gb.Guardband))
	fmt.Printf("%-34s %12s\n", "any workload (worst-case static)", units.PsString(worst.Guardband))
	fmt.Println("\nThe dynamic analysis is only valid for this workload (other")
	fmt.Println("workloads need re-annotation); the worst-case static guardband")
	fmt.Println("suppresses aging under any workload, as the paper recommends.")

	// Check the annotated netlist still simulates identically.
	simA, err := gatesim.New(annotated)
	if err != nil {
		log.Fatal(err)
	}
	simB, err := gatesim.New(nl)
	if err != nil {
		log.Fatal(err)
	}
	in := stim(0)
	oa, ob := simA.Eval(in), simB.Eval(in)
	for k := range ob {
		if oa[k] != ob[k] {
			log.Fatalf("annotation changed functionality at %s", k)
		}
	}
	fmt.Println("\n(annotated netlist verified functionally identical)")
}
