// Guardband estimation for the DSP benchmark (the paper's Fig. 4b flow).
//
// The example synthesizes the DSP circuit traditionally, then estimates
// the timing guardband needed for ten years of operation three ways:
//
//  1. static worst-case stress (lambda = 1.0/1.0) — workload independent,
//  2. static balanced stress (lambda = 0.5/0.5) — what duty-cycle
//     balancing mitigation techniques achieve,
//  3. dynamic stress: a workload is simulated at gate level, per-instance
//     duty cycles are extracted, the netlist is annotated with lambda
//     indexes (AND2_X1 -> AND2_X1_0.4_0.6, ...) and timed against the
//     merged degradation-aware library.
//
// Run with: go run ./examples/guardband_dsp
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ageguard/internal/aging"
	"ageguard/internal/core"
	"ageguard/internal/units"
)

func main() {
	ctx := context.Background()
	f := core.Default()
	fmt.Println("synthesizing DSP with the initial (degradation-unaware) library...")
	nl, err := f.SynthesizeTraditional(ctx, "DSP")
	if err != nil {
		log.Fatal(err)
	}
	st, _ := core.Area(nl)
	fmt.Printf("netlist: %d instances, %.0f um^2\n\n", len(nl.Insts), st)

	worst, err := f.StaticGuardband(ctx, "DSP", nl, aging.WorstCase(10))
	if err != nil {
		log.Fatal(err)
	}
	balance, err := f.StaticGuardband(ctx, "DSP", nl, aging.BalanceCase(10))
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic stress: a biased workload (e.g. mostly-idle MAC with small
	// coefficients) keeps many nodes at constant values, so the extracted
	// duty cycles — and hence the guardband — sit between fresh and worst.
	rng := rand.New(rand.NewSource(7))
	stim := func(int) map[string]uint64 {
		in := make(map[string]uint64, len(nl.Inputs))
		for _, pi := range nl.Inputs {
			in[pi] = rng.Uint64() & rng.Uint64() & rng.Uint64() // P(1) = 1/8
		}
		return in
	}
	dyn, _, err := f.DynamicGuardband(ctx, "DSP", nl, stim, 32)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s %12s\n", "stress scenario", "freshCP", "agedCP", "guardband")
	for _, g := range []struct {
		name string
		gb   core.Guardband
	}{
		{"static worst (1.0/1.0)", worst},
		{"static balance (0.5/0.5)", balance},
		{"dynamic (simulated workload)", dyn},
	} {
		fmt.Printf("%-28s %12s %12s %12s\n", g.name,
			units.PsString(g.gb.FreshCP), units.PsString(g.gb.AgedCP), units.PsString(g.gb.Guardband))
	}
	fmt.Println("\nThe dynamic guardband is valid only for this workload; the static")
	fmt.Println("worst-case guardband suppresses aging under any workload (Sec. 4.2).")
}
