// Aging-aware synthesis (the paper's Sec. 4.3 / Fig. 6a-b).
//
// The VLIW benchmark is synthesized twice: traditionally, with the initial
// cell library, and aging-aware, by handing the *unmodified* synthesis
// flow the worst-case degradation-aware library. The example reports the
// required guardband of the traditional design, the contained guardband
// of the aging-aware design, and what the containment costs in area.
//
// Run with: go run ./examples/agingaware_synthesis
package main

import (
	"context"
	"fmt"
	"log"

	"ageguard/internal/core"
	"ageguard/internal/gatesim"
	"ageguard/internal/units"
)

func main() {
	ctx := context.Background()
	f := core.Default()
	fmt.Println("synthesizing VLIW twice (fresh library vs worst-case aged library)...")
	row, err := f.Containment(ctx, "VLIW")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(`
traditional design (initial library):
  critical path fresh: %s
  critical path aged:  %s
  required guardband:  %s
aging-aware design (degradation-aware library):
  critical path aged:  %s
  contained guardband: %s

guardband reduction: %.1f%%
frequency gain under aging: %.2f%%
area: %.0f -> %.0f um^2 (%+.2f%%)
`,
		units.PsString(row.TradFreshCP), units.PsString(row.TradAgedCP),
		units.PsString(row.RequiredGB),
		units.PsString(row.AwareAgedCP), units.PsString(row.ContainedGB),
		row.ReductionPct, row.FreqGainPct,
		row.TradArea, row.AwareArea, row.AreaOvhPct)

	// Show how the cell mix shifted: the aging-aware run picks, per
	// operating condition, the cells that age least.
	trad, err := f.SynthesizeTraditional(ctx, "VLIW")
	if err != nil {
		log.Fatal(err)
	}
	aware, err := f.SynthesizeAgingAware(ctx, "VLIW")
	if err != nil {
		log.Fatal(err)
	}
	stT, _ := trad.ComputeStats(gatesim.CatalogLookup)
	stA, _ := aware.ComputeStats(gatesim.CatalogLookup)
	fmt.Println("cell usage changes (traditional -> aging-aware):")
	for _, cell := range core.SortedKeys(stT.CellCount) {
		a, t := stA.CellCount[cell], stT.CellCount[cell]
		if a != t {
			fmt.Printf("  %-12s %4d -> %4d\n", cell, t, a)
		}
	}
	for _, cell := range core.SortedKeys(stA.CellCount) {
		if _, ok := stT.CellCount[cell]; !ok {
			fmt.Printf("  %-12s %4d -> %4d\n", cell, 0, stA.CellCount[cell])
		}
	}
}
