// System-level aging study on an image pipeline (the paper's Fig. 6c/7).
//
// A test image is encoded and decoded through gate-level simulations of
// the synthesized DCT and IDCT circuits, clocked at the maximum frequency
// of the fresh traditional design with NO guardband. Aged delay tables
// make late transitions miss the capture registers exactly when the
// violating paths are sensitized; the PSNR then measures how transistor-
// level wear shows up as user-visible quality loss — and how synthesis
// with the degradation-aware library suppresses it.
//
// Run with: go run ./examples/image_aging  (writes PGM files to ./out)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ageguard/internal/aging"
	"ageguard/internal/core"
	"ageguard/internal/image"
)

func main() {
	ctx := context.Background()
	f := core.Default()
	img := image.TestImage(48, 48)

	cases := []core.ImageCase{
		{Label: "unaware-year0", Aware: false, Scenario: aging.Fresh()},
		{Label: "unaware-worst-1y", Aware: false, Scenario: aging.WorstCase(1)},
		{Label: "aware-worst-10y", Aware: true, Scenario: aging.WorstCase(10)},
	}
	fmt.Println("running gate-level DCT-IDCT simulations (first run synthesizes")
	fmt.Println("and characterizes; afterwards everything is cached)...")
	results, err := f.ImageStudy(ctx, img, cases)
	if err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	save := func(name string, g *image.Gray) {
		fh, err := os.Create(filepath.Join("out", name))
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		if err := image.WritePGM(fh, g); err != nil {
			log.Fatal(err)
		}
	}
	save("original.pgm", img)
	fmt.Printf("\n%-20s %10s\n", "scenario", "PSNR [dB]")
	for _, r := range results {
		save(r.Label+".pgm", r.Out)
		verdict := "acceptable"
		if r.PSNR < 30 {
			verdict = "UNACCEPTABLE (< 30 dB)"
		}
		fmt.Printf("%-20s %10.2f   %s\n", r.Label, r.PSNR, verdict)
	}
	fmt.Println("\nimages written to ./out/*.pgm")
}
