// Quickstart: create a degradation-aware view of a single cell.
//
// This example characterizes a NAND2 gate with the transistor-level
// simulator twice — fresh and after 10 years of worst-case BTI stress —
// and prints the delay tables side by side, showing the operating-
// condition dependence of aging that motivates the whole flow (the
// paper's Fig. 1): the impact grows dramatically with input slew and
// shrinks with output load.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/liberty"
	"ageguard/internal/units"
)

func main() {
	ctx := context.Background()
	cfg := char.DefaultConfig()
	cfg.CacheDir = char.RepoCacheDir()
	cfg.Cells = []string{"NAND2_X1"}

	fresh, err := cfg.Characterize(ctx, aging.Fresh())
	if err != nil {
		log.Fatal(err)
	}
	aged, err := cfg.Characterize(ctx, aging.WorstCase(10))
	if err != nil {
		log.Fatal(err)
	}

	deg := aging.DefaultModel()
	fmt.Println("device degradation after 10 years of worst-case stress:")
	fmt.Printf("  pMOS (NBTI): %s\n", deg.PMOS(aging.WorstCase(10)))
	fmt.Printf("  nMOS (PBTI): %s\n\n", deg.NMOS(aging.WorstCase(10)))

	fArc := fresh.MustCell("NAND2_X1").Arcs[0]
	aArc := aged.MustCell("NAND2_X1").Arcs[0]
	e := liberty.Rise // output rise: the pull-up fights the aged nMOS

	fmt.Println("NAND2_X1 A1->ZN rise delay: fresh -> aged (change)")
	fmt.Printf("%12s", "slew\\load")
	for _, l := range fresh.Loads {
		fmt.Printf("%24s", units.FFString(l))
	}
	fmt.Println()
	for i, s := range fresh.Slews {
		fmt.Printf("%12s", units.PsString(s))
		for j := range fresh.Loads {
			fd := fArc.Delay[e].Values[i][j]
			ad := aArc.Delay[e].Values[i][j]
			fmt.Printf("  %8s->%8s (%+4.0f%%)",
				units.PsString(fd), units.PsString(ad), (ad-fd)/fd*100)
		}
		fmt.Println()
	}
	fmt.Println("\nNote how the same amount of transistor aging costs a few percent")
	fmt.Println("at fast input slews but several times the fresh delay at slow ones:")
	fmt.Println("guardbands cannot be estimated from a single operating condition.")
}
