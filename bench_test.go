// Benchmark harness regenerating every figure of the paper's evaluation.
//
// Each BenchmarkFigN_* prints the figure's data series once (stdout) and
// then measures a representative kernel of that experiment per iteration,
// so the full suite remains usable with the default -benchtime. Heavy
// artifacts (characterized libraries, synthesized netlists) are cached
// under .libcache/ and shared with the tests; the first run is slow.
//
// Regenerate everything with:
//
//	go test -bench . -benchmem
package main

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/core"
	"ageguard/internal/image"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

var flow = core.Default()

// once guards each experiment's expensive setup across bench iterations.
type onceResult[T any] struct {
	once sync.Once
	v    T
	err  error
}

func (o *onceResult[T]) get(b *testing.B, f func() (T, error)) T {
	o.once.Do(func() { o.v, o.err = f() })
	if o.err != nil {
		b.Fatal(o.err)
	}
	return o.v
}

// ---------------------------------------------------------------------------
// Fig. 1: aging impact surfaces of NAND and NOR over operating conditions.

var fig1NAND, fig1NOR onceResult[*core.Surface]

func BenchmarkFig1_NANDSurface(b *testing.B) {
	s := fig1NAND.get(b, func() (*core.Surface, error) {
		s, err := flow.AgingSurface(context.Background(), "NAND2_X1", liberty.Rise)
		if err == nil {
			fmt.Println("\n=== Fig 1(a) ===")
			fmt.Print(s.Format())
		}
		return s, err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Kernel: one surface cell recomputation via table lookups.
		_ = s.DeltaPct[len(s.Slews)-1][0]
	}
}

func BenchmarkFig1_NORSurface(b *testing.B) {
	s := fig1NOR.get(b, func() (*core.Surface, error) {
		s, err := flow.AgingSurface(context.Background(), "NOR2_X1", liberty.Fall)
		if err == nil {
			fmt.Println("\n=== Fig 1(b) ===")
			fmt.Print(s.Format())
		}
		return s, err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.DeltaPct[len(s.Slews)-1][0]
	}
}

// ---------------------------------------------------------------------------
// Fig. 2: delay-change distributions, single OPC vs multiple OPCs.

var fig2 onceResult[*core.Distribution]

func BenchmarkFig2_Histograms(b *testing.B) {
	d := fig2.get(b, func() (*core.Distribution, error) {
		d, err := flow.DelayChangeDistribution(context.Background())
		if err != nil {
			return nil, err
		}
		lo, hi := d.Range()
		fmt.Println("\n=== Fig 2 ===")
		fmt.Printf("single OPC: %d observations, improved %.1f%%\n",
			len(d.Single), d.ImprovedFractionSingle()*100)
		printHisto("single", d.Single, 0, 20, 10)
		fmt.Printf("multiple OPCs: %d observations, range [%.0f%%, %.0f%%], improved %.1f%%\n",
			len(d.Multi), lo, hi, d.ImprovedFractionMulti()*100)
		printHisto("multi", d.Multi, -60, 400, 23)
		return d, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Histogram(d.Multi, -60, 400, 23)
	}
}

func printHisto(label string, v []float64, lo, hi float64, bins int) {
	h := core.Histogram(v, lo, hi, bins)
	w := (hi - lo) / float64(bins)
	for i, n := range h {
		if n == 0 {
			continue
		}
		fmt.Printf("  %s [%+6.0f%%, %+6.0f%%): %d\n", label, lo+float64(i)*w, lo+float64(i+1)*w, n)
	}
}

// ---------------------------------------------------------------------------
// Fig. 3: critical-path switching under aging.

var fig3 onceResult[*core.Fig3Report]

func BenchmarkFig3_PathSwitch(b *testing.B) {
	r := fig3.get(b, func() (*core.Fig3Report, error) {
		r, err := flow.Fig3PathSwitch(context.Background())
		if err == nil {
			fmt.Println("\n=== Fig 3 ===")
			fmt.Print(r.Format())
		}
		return r, err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Path1Aged - r.Path2Aged
	}
}

// ---------------------------------------------------------------------------
// Fig. 5: guardband estimation comparisons across the benchmark set.

var fig5a, fig5b, fig5c onceResult[*core.Fig5Report]

func benchFig5(b *testing.B, o *onceResult[*core.Fig5Report], tag string,
	run func(context.Context, []string) (*core.Fig5Report, error)) {
	r := o.get(b, func() (*core.Fig5Report, error) {
		r, err := run(context.Background(), core.BenchmarkCircuits())
		if err == nil {
			fmt.Printf("\n=== Fig 5(%s) ===\n", tag)
			fmt.Print(r.Format())
		}
		return r, err
	})
	nl := kernelNetlist.get(b, loadKernelNetlist)
	lib := kernelLib.get(b, func() (*liberty.Library, error) { return flow.FreshLibrary(context.Background()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Kernel: one full STA of a benchmark netlist (the dominant
		// per-experiment operation).
		if _, err := sta.Analyze(context.Background(), nl, lib, sta.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	_ = r
}

var (
	kernelNetlist onceResult[*netlist.Netlist]
	kernelLib     onceResult[*liberty.Library]
)

func loadKernelNetlist() (*netlist.Netlist, error) {
	return flow.SynthesizeTraditional(context.Background(), "RISC-5P")
}

func BenchmarkFig5a_MuNeglect(b *testing.B) { benchFig5(b, &fig5a, "a", flow.Fig5a) }
func BenchmarkFig5b_SingleOPC(b *testing.B) { benchFig5(b, &fig5b, "b", flow.Fig5b) }
func BenchmarkFig5c_CPSwitch(b *testing.B)  { benchFig5(b, &fig5c, "c", flow.Fig5c) }

// ---------------------------------------------------------------------------
// Fig. 6a/b: guardband containment and area overhead.

var fig6ab onceResult[*core.ContainmentReport]

func BenchmarkFig6a_Containment(b *testing.B) {
	r := fig6ab.get(b, func() (*core.ContainmentReport, error) {
		r, err := flow.ContainmentAll(context.Background(), core.BenchmarkCircuits())
		if err == nil {
			fmt.Println("\n=== Fig 6(a)+(b) ===")
			fmt.Print(r.Format())
		}
		return r, err
	})
	nl := kernelNetlist.get(b, loadKernelNetlist)
	lib := kernelLib.get(b, func() (*liberty.Library, error) { return flow.FreshLibrary(context.Background()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(context.Background(), nl, lib, sta.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	_ = r
}

func BenchmarkFig6b_Area(b *testing.B) {
	r := fig6ab.get(b, func() (*core.ContainmentReport, error) {
		r, err := flow.ContainmentAll(context.Background(), core.BenchmarkCircuits())
		if err == nil {
			fmt.Println("\n=== Fig 6(a)+(b) ===")
			fmt.Print(r.Format())
		}
		return r, err
	})
	nl := kernelNetlist.get(b, loadKernelNetlist)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Area(nl); err != nil {
			b.Fatal(err)
		}
	}
	fig6bPrint.Do(func() {
		fmt.Printf("Fig6b avg area overhead: %+.2f%%\n", r.AvgAreaOvhPct)
	})
}

var fig6bPrint sync.Once

// ---------------------------------------------------------------------------
// Fig. 6c / Fig. 7: the system-level DCT-IDCT image study.

const benchImageSize = 48

var fig6c onceResult[[]core.ImageOutcome]

func runImageStudy() ([]core.ImageOutcome, error) {
	img := image.TestImage(benchImageSize, benchImageSize)
	out, err := flow.ImageStudy(context.Background(), img, core.StandardImageCases())
	if err != nil {
		return nil, err
	}
	fmt.Println("\n=== Fig 6(c) ===")
	fmt.Printf("%-22s %10s\n", "scenario", "PSNR [dB]")
	for _, r := range out {
		fmt.Printf("%-22s %10.2f\n", r.Label, r.PSNR)
	}
	return out, nil
}

func BenchmarkFig6c_PSNR(b *testing.B) {
	out := fig6c.get(b, runImageStudy)
	ref := image.TestImage(benchImageSize, benchImageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range out {
			_ = image.PSNR(ref, r.Out)
		}
	}
}

func BenchmarkFig7_Images(b *testing.B) {
	out := fig6c.get(b, runImageStudy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Kernel: the golden software chain on the same image (the
		// reference each hardware simulation is compared against).
		img := image.TestImage(benchImageSize, benchImageSize)
		_ = image.RunChain(img, image.GoldenDCT(), image.GoldenIDCT())
	}
	fig7Print.Do(func() {
		fmt.Println("\n=== Fig 7 === (use cmd/imagepipe to write the PGM files)")
		for _, r := range out {
			qual := "high quality"
			if r.PSNR < 30 {
				qual = "below 30dB threshold"
			}
			fmt.Printf("%-22s %6.2f dB  %s\n", r.Label, r.PSNR, qual)
		}
	})
}

var fig7Print sync.Once

// ---------------------------------------------------------------------------
// Library-creation microbenchmarks (the cost of the Fig. 4a flow).

func BenchmarkCharacterizeCell(b *testing.B) {
	cfg := flow.Char
	cfg.CacheDir = "" // force real simulation work
	cfg.Cells = []string{"NAND2_X1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Characterize(context.Background(), aging.WorstCase(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCharacterizeLibrary measures one library build (8 representative
// cells — unate, binate, multi-stage and sequential — on the reduced 3x3
// OPC grid) with the given worker count. The Serial/Parallel pair is the
// PR's headline speedup comparison; on an N-core machine the parallel
// variant should approach N x (the sweep is embarrassingly parallel, the
// per-point simulations are the whole cost).
func benchCharacterizeLibrary(b *testing.B, parallelism int) {
	cfg := char.TestConfig()
	cfg.CacheDir = "" // force real simulation work
	cfg.Parallelism = parallelism
	cfg.Cells = []string{
		"INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1",
		"OR2_X1", "XOR2_X1", "MUX2_X1", "DFF_X1",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Characterize(context.Background(), aging.WorstCase(10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacterizeLibrarySerial(b *testing.B)   { benchCharacterizeLibrary(b, 1) }
func BenchmarkCharacterizeLibraryParallel(b *testing.B) { benchCharacterizeLibrary(b, 0) }

// benchGenerateGrid measures the full 121-scenario duty-cycle grid on the
// cheapest meaningful configuration (one cell, 2x2 OPC grid, no cache), so
// the scenario-level fan-out — not the disk — dominates.
func benchGenerateGrid(b *testing.B, parallelism int) {
	cfg := char.TestConfig()
	cfg.Slews = char.LogAxis(5*units.Ps, 947*units.Ps, 2)
	cfg.Loads = char.LogAxis(0.5*units.FF, 20*units.FF, 2)
	cfg.Cells = []string{"INV_X1"}
	cfg.CacheDir = ""
	cfg.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := cfg.GenerateGrid(context.Background(), 10, func(*liberty.Library) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n != 121 {
			b.Fatalf("visited %d libraries, want 121", n)
		}
	}
}

func BenchmarkGenerateGridSerial(b *testing.B)   { benchGenerateGrid(b, 1) }
func BenchmarkGenerateGridParallel(b *testing.B) { benchGenerateGrid(b, 0) }

var dctNetlist onceResult[*netlist.Netlist]

func BenchmarkSTALargeNetlist(b *testing.B) {
	nl := dctNetlist.get(b, func() (*netlist.Netlist, error) {
		return flow.SynthesizeTraditional(context.Background(), "DCT")
	})
	lib := kernelLib.get(b, func() (*liberty.Library, error) { return flow.FreshLibrary(context.Background()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sta.Analyze(context.Background(), nl, lib, sta.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.CP < 100*units.Ps {
			b.Fatal("implausible CP")
		}
	}
}
