// Command libgen generates degradation-aware cell libraries (the paper's
// Sec. 4.1 artifact): one .alib per duty-cycle scenario, optionally the
// full 121-library grid, and the merged lambda-indexed complete library.
//
// Usage:
//
//	libgen -out libs -years 10            # fresh + worst-case + balance
//	libgen -out libs -years 10 -grid      # all 121 lambda combinations
//	libgen -out libs -years 10 -merged    # additionally write complete.alib
//	libgen -grid -j 4                     # cap the simulation worker pool
//
// Characterization runs on a worker pool using every CPU by default; -j
// bounds it (1 = serial). Scenario output order is always deterministic.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/liberty"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("libgen: ")
	var (
		out    = flag.String("out", "libs", "output directory")
		years  = flag.Float64("years", 10, "projected lifetime in years")
		grid   = flag.Bool("grid", false, "generate the full 11x11 duty-cycle grid (121 libraries)")
		merged = flag.Bool("merged", false, "also write the merged complete library")
		libFmt = flag.Bool("liberty", false, "additionally emit genuine Liberty (.lib) syntax")
		cache  = flag.String("cache", char.RepoCacheDir(), "characterization cache directory ('' disables)")
		par    = flag.Int("j", 0, "parallel simulation workers (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	cfg := char.DefaultConfig()
	cfg.CacheDir = *cache
	cfg.Parallelism = *par
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	scenarios := []aging.Scenario{
		aging.Fresh(),
		aging.WorstCase(*years),
		aging.BalanceCase(*years),
	}
	if *grid {
		scenarios = append([]aging.Scenario{aging.Fresh()}, aging.GridScenarios(*years)...)
	}

	var libs []*liberty.Library
	for i, s := range scenarios {
		cfg.Progress = func(done, total int) {
			fmt.Printf("\r[%d/%d] %-24s cell %d/%d   ", i+1, len(scenarios), s, done, total)
		}
		lib, err := cfg.Characterize(s)
		if err != nil {
			log.Fatalf("scenario %s: %v", s, err)
		}
		libs = append(libs, lib)
		path := filepath.Join(*out, lib.Name+".alib")
		if err := writeLib(path, lib); err != nil {
			log.Fatal(err)
		}
		if *libFmt {
			if err := writeDotLib(filepath.Join(*out, lib.Name+".lib"), lib); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("\r[%d/%d] %-24s -> %s%20s\n", i+1, len(scenarios), s, path, "")
	}

	if *merged {
		m := liberty.MergeLibraries("complete", libs)
		path := filepath.Join(*out, "complete.alib")
		if err := writeLib(path, &m.Library); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged %d libraries (%d cells) -> %s\n", len(libs), len(m.Cells), path)
	}
}

func writeLib(path string, lib *liberty.Library) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return liberty.Write(f, lib)
}

func writeDotLib(path string, lib *liberty.Library) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return liberty.WriteLiberty(f, lib)
}
